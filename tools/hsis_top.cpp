// hsis_top — live terminal dashboard for a running hsis_serve daemon.
//
//   hsis_top --socket PATH [--interval-ms N] [--count N] [--no-ansi]
//
// Subscribes to the daemon's stats-stream and redraws a one-screen summary
// on every hsis-serve-stats-v1 tick: request counters, worker/queue
// occupancy, cache hit rate, RSS, and the per-stage latency quantiles
// (p50/p90/p99/max of the serve.latency.* histograms, in microseconds).
//
// On a TTY each tick repaints in place (ANSI home+clear); when stdout is
// redirected — or with --no-ansi — frames are printed one after another,
// so piping to a file keeps every snapshot. --count N exits 0 after N
// ticks (CI smoke); 0 streams until the server goes away or Ctrl-C.
//
// Exit codes: 0 clean (count reached, or EOF after at least one tick),
// 2 usage/connection error or EOF before any tick arrived.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/jsonlite.hpp"
#include "obs/version.hpp"
#include "serve/protocol.hpp"

namespace {

namespace jl = hsis::obs::jsonlite;

int usage() {
  std::fprintf(stderr,
               "usage: hsis_top --socket PATH [--interval-ms N] "
               "[--count N] [--no-ansi]\n");
  return 2;
}

int connectTo(const std::string& socketPath) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "hsis_top: socket path too long\n");
    return -1;
  }
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("hsis_top: socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::fprintf(stderr, "hsis_top: connect(%s): %s\n", socketPath.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

bool sendLine(int fd, std::string line) {
  line += '\n';
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::send(fd, line.data() + off, line.size() - off, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool readLine(int fd, std::string& buf, std::string& line) {
  for (;;) {
    size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

const jl::Object* objField(const jl::Object& obj, const char* key) {
  const jl::Value* v = jl::find(obj, key);
  return v != nullptr && v->isObject() ? &v->object() : nullptr;
}

double numField(const jl::Object& obj, const char* key) {
  const jl::Value* v = jl::find(obj, key);
  return v != nullptr && v->isNumber() ? v->number() : 0.0;
}

void renderLatencyRow(const jl::Object& latency, const char* stage) {
  const jl::Object* row = objField(latency, stage);
  if (row == nullptr) return;
  std::printf("  %-8s %8.0f %10.0f %10.0f %10.0f %10.0f\n", stage,
              numField(*row, "count"), numField(*row, "p50"),
              numField(*row, "p90"), numField(*row, "p99"),
              numField(*row, "max"));
}

void renderTick(const std::string& socketPath, double seq,
                const jl::Object& stats) {
  std::printf("hsis_top — %s   up %.1fs   tick #%.0f\n", socketPath.c_str(),
              numField(stats, "t_s"), seq);
  std::printf("workers: %.0f/%.0f busy   queue: %.0f   rss: %.1f MB\n",
              numField(stats, "busy_workers"), numField(stats, "workers"),
              numField(stats, "queue_depth"),
              numField(stats, "rss_kb") / 1024.0);
  if (const jl::Object* req = objField(stats, "requests")) {
    std::printf(
        "requests: accepted=%.0f completed=%.0f failed=%.0f aborted=%.0f "
        "rejected=%.0f\n",
        numField(*req, "accepted"), numField(*req, "completed"),
        numField(*req, "failed"), numField(*req, "aborted"),
        numField(*req, "rejected"));
  }
  if (const jl::Object* cache = objField(stats, "cache")) {
    std::printf("cache: hits=%.0f misses=%.0f evictions=%.0f hit_rate=%.2f\n",
                numField(*cache, "hits"), numField(*cache, "misses"),
                numField(*cache, "evictions"),
                numField(*cache, "hit_rate"));
  }
  if (const jl::Object* latency = objField(stats, "latency_us")) {
    std::printf("  %-8s %8s %10s %10s %10s %10s\n", "stage", "count", "p50",
                "p90", "p99", "max");
    for (const char* stage :
         {"queue", "parse", "tr", "reach", "check", "render", "total"}) {
      renderLatencyRow(*latency, stage);
    }
  }
  if (const jl::Object* cov = objField(stats, "coverage")) {
    std::printf(
        "coverage: reports=%.0f state=%.1f%% values=%.0f/%.0f "
        "bins=%.0f/%.0f\n",
        numField(*cov, "reports"),
        numField(*cov, "state_fraction") * 100.0,
        numField(*cov, "values_reached"), numField(*cov, "values_total"),
        numField(*cov, "bins_hit"), numField(*cov, "bins_total"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (hsis::obs::handleVersionFlag(argc, argv, "hsis_top")) return 0;

  std::string socketPath;
  uint64_t intervalMs = 1000;
  uint64_t count = 0;
  bool ansi = ::isatty(STDOUT_FILENO) != 0;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const bool hasValue = i + 1 < argc;
    if (std::strcmp(a, "--socket") == 0 && hasValue) {
      socketPath = argv[++i];
    } else if (std::strcmp(a, "--interval-ms") == 0 && hasValue) {
      intervalMs = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(a, "--count") == 0 && hasValue) {
      count = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(a, "--no-ansi") == 0) {
      ansi = false;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "hsis_top: unknown argument %s\n", a);
      return usage();
    }
  }
  if (socketPath.empty()) return usage();

  int fd = connectTo(socketPath);
  if (fd < 0) return 2;

  hsis::serve::Request req;
  req.id = "hsis-top";
  req.op = hsis::serve::Request::Op::StatsStream;
  req.statsIntervalMs = intervalMs;
  if (!sendLine(fd, renderRequest(req))) {
    std::fprintf(stderr, "hsis_top: send failed\n");
    ::close(fd);
    return 2;
  }

  std::string buf, line;
  uint64_t seen = 0;
  while (readLine(fd, buf, line)) {
    if (line.empty()) continue;
    jl::Value doc;
    try {
      doc = jl::parse(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hsis_top: bad frame: %s\n", e.what());
      continue;
    }
    if (!doc.isObject()) continue;
    const jl::Object& frame = doc.object();
    const jl::Value* event = jl::find(frame, "event");
    if (event == nullptr || !event->isString()) continue;
    if (event->str() == "error") {
      const jl::Value* msg = jl::find(frame, "message");
      std::fprintf(stderr, "hsis_top: server error: %s\n",
                   msg != nullptr && msg->isString() ? msg->str().c_str()
                                                     : "?");
      ::close(fd);
      return 2;
    }
    if (event->str() != "stats-tick") continue;
    const jl::Object* stats = objField(frame, "stats");
    if (stats == nullptr) continue;
    if (ansi) std::printf("\x1b[H\x1b[2J");  // home + clear, repaint in place
    renderTick(socketPath, numField(frame, "seq"), *stats);
    if (!ansi) std::printf("\n");
    std::fflush(stdout);
    ++seen;
    if (count > 0 && seen >= count) break;
  }
  ::close(fd);
  if (seen == 0) {
    std::fprintf(stderr, "hsis_top: no stats frames received\n");
    return 2;
  }
  return 0;
}
