// hsis_serve — the long-lived verification service.
//
//   hsis_serve --socket PATH [--workers N] [--max-queue N]
//              [--default-wall-s S] [--default-rss-mb M]
//              [--max-wall-s S] [--max-rss-mb M]
//              [--slow-threshold-s S --artifact-dir DIR]
//              [--jobs N]
//
// --jobs N > 1 fans a multi-property request out onto N batch worker
// threads (par::checkBatch), each with its own replica manager; verdict
// frames then arrive after the batch completes, in property order.
//
// --slow-threshold-s/--artifact-dir arm slow-request auto-capture: any
// request whose enqueue->done wall time exceeds S gets its trace/profile/
// census bundle written under DIR/<trace-id>/ (telemetry.hpp).
//
// --artifact-dir alone also arms counterexample capture (hsis_cex): the
// first failing CTL check of a request writes a replay-verified
// DIR/<trace-id>/cex.json + cex.vcd pair, pointed at by the done frame and
// the ledger record (disable with HSIS_CEX_DISABLE=1; see
// docs/debugging.md).
//
// Boots a SessionPool (one hsis::Session per worker — one BddManager, one
// resident compiled design), binds a Unix-domain socket speaking the
// hsis-serve-v1 line protocol, prints a readiness line
// (`hsis_serve: listening on PATH`), and serves until SIGINT/SIGTERM or a
// client `shutdown` request.
//
// The shared obs flags all apply (--ledger, --log-level, --stats-json,
// --heartbeat, --flight-dir, ...); each finished request appends its own
// ledger record, so `hsis_report list` shows server traffic like any other
// driver's runs. See docs/serve.md.
//
// Exit codes: 0 clean shutdown, 2 usage/bind error.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/control.hpp"
#include "obs/version.hpp"
#include "serve/server.hpp"

namespace {

std::atomic<hsis::serve::Server*> g_server{nullptr};

extern "C" void onSignal(int) {
  // stop() is one relaxed atomic store — async-signal-safe.
  if (hsis::serve::Server* s = g_server.load()) s->stop();
}

int usage() {
  std::fprintf(stderr,
               "usage: hsis_serve --socket PATH [--workers N] "
               "[--max-queue N]\n"
               "                  [--default-wall-s S] [--default-rss-mb M]\n"
               "                  [--max-wall-s S] [--max-rss-mb M]\n"
               "                  [--slow-threshold-s S --artifact-dir DIR]\n"
               "                  [--jobs N]\n"
               "plus the shared obs flags (--ledger, --log-level, ...)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (hsis::obs::handleVersionFlag(argc, argv, "hsis_serve")) return 0;
  // ownLedger: the pool writes one record per request; the process-level
  // exit record still marks daemon start/stop in the same file.
  hsis::obs::initDriverObs(argc, argv,
                           {.driverName = "hsis_serve", .ownLedger = true});

  hsis::serve::ServerOptions opts;
  opts.version = hsis::obs::versionString("hsis_serve");
  opts.pool.ledgerPath = hsis::obs::activeLedgerPath();

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const bool hasValue = i + 1 < argc;
    if (std::strcmp(a, "--socket") == 0 && hasValue) {
      opts.socketPath = argv[++i];
    } else if (std::strcmp(a, "--workers") == 0 && hasValue) {
      opts.pool.workers =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(a, "--max-queue") == 0 && hasValue) {
      opts.pool.maxQueue =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(a, "--default-wall-s") == 0 && hasValue) {
      opts.pool.defaultBudget.wallSeconds = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(a, "--default-rss-mb") == 0 && hasValue) {
      opts.pool.defaultBudget.rssMb = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(a, "--max-wall-s") == 0 && hasValue) {
      opts.pool.maxBudget.wallSeconds = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(a, "--max-rss-mb") == 0 && hasValue) {
      opts.pool.maxBudget.rssMb = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(a, "--slow-threshold-s") == 0 && hasValue) {
      opts.pool.slowThresholdSeconds = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(a, "--artifact-dir") == 0 && hasValue) {
      opts.pool.artifactDir = argv[++i];
    } else if (std::strcmp(a, "--jobs") == 0 && hasValue) {
      opts.pool.batchJobs = std::atoi(argv[++i]);
      if (opts.pool.batchJobs < 1) opts.pool.batchJobs = 1;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "hsis_serve: unknown argument %s\n", a);
      return usage();
    }
  }
  if (opts.socketPath.empty()) {
    std::fprintf(stderr, "hsis_serve: --socket PATH is required\n");
    return usage();
  }

  hsis::serve::Server server(std::move(opts));
  std::string error;
  if (!server.bind(&error)) {
    std::fprintf(stderr, "hsis_serve: %s\n", error.c_str());
    return 2;
  }
  g_server.store(&server);
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::printf("hsis_serve: listening on %s (workers=%zu)\n",
              server.socketPath().c_str(), server.pool().stats().workers);
  std::fflush(stdout);

  server.run();

  g_server.store(nullptr);
  server.pool().shutdown(true);
  hsis::serve::SessionPool::Stats s = server.pool().stats();
  std::printf(
      "hsis_serve: shut down (accepted=%llu completed=%llu aborted=%llu "
      "failed=%llu cache hit=%llu miss=%llu)\n",
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.aborted),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.cacheHits),
      static_cast<unsigned long long>(s.cacheMisses));
  hsis::obs::noteRunResult("completed",
                           "requests=" + std::to_string(s.accepted));
  return 0;
}
