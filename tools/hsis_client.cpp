// hsis_client — submit work to a running hsis_serve daemon.
//
//   hsis_client --socket PATH check --model NAME [options]
//   hsis_client --socket PATH check --verilog F --pif F [--top M] [options]
//   hsis_client --socket PATH check --blifmv F --pif F [options]
//       options: [--name SUBJECT] [--wall-s S] [--rss-mb M] [--no-trace]
//                [--id ID] [--trace HEX16] [--json] [--cex-out FILE]
//   hsis_client --socket PATH ping
//   hsis_client --socket PATH stats
//   hsis_client --socket PATH stats-stream [--interval-ms N] [--count N]
//   hsis_client --socket PATH shutdown
//
// Streams the server's frames as they arrive: human-readable by default
// (the `done` line carries `cache=hit|miss`, which CI greps), raw JSON
// frames with --json.
//
// --trace supplies the request's 16-hex-digit trace id (the server mints
// one otherwise); the id comes back on every frame and the human rendering
// shows it with the per-stage breakdown on the done line. stats-stream
// subscribes to hsis-serve-stats-v1 ticks and prints each frame as one
// JSON line; --count N exits 0 after N ticks (0 = stream until EOF).
//
// When the server captured a counterexample artifact (hsis_cex, requires
// the daemon's --artifact-dir), the done rendering prints its server-side
// path and replay status; --cex-out FILE additionally copies the cex.json
// to FILE (same-host daemon — the socket is local anyway).
//
// Exit codes: 0 all properties pass, 1 some property failed, 2 usage /
// connection / server error, 3 the request was aborted (budget breach).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "models/models.hpp"
#include "obs/jsonlite.hpp"
#include "obs/version.hpp"
#include "serve/protocol.hpp"

namespace {

using hsis::serve::Frame;
using hsis::serve::Request;

int usage() {
  std::fprintf(
      stderr,
      "usage: hsis_client --socket PATH COMMAND\n"
      "  check --model NAME | --verilog F --pif F [--top M] |"
      " --blifmv F --pif F\n"
      "        [--name SUBJECT] [--wall-s S] [--rss-mb M] [--no-trace]"
      " [--id ID]\n"
      "        [--trace HEX16] [--cex-out FILE]\n"
      "  ping | stats | shutdown\n"
      "  stats-stream [--interval-ms N] [--count N]\n"
      "common: --json (raw frames), --version\n"
      "exit codes: 0 all properties pass, 1 some property failed,\n"
      "            2 usage / connection / server error, 3 request aborted\n"
      "            (budget breach)\n");
  return 2;
}

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "hsis_client: cannot read %s\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int connectTo(const std::string& socketPath) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "hsis_client: socket path too long\n");
    return -1;
  }
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("hsis_client: socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::fprintf(stderr, "hsis_client: connect(%s): %s\n",
                 socketPath.c_str(), std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

bool sendLine(int fd, std::string line) {
  line += '\n';
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::send(fd, line.data() + off, line.size() - off, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      std::fprintf(stderr, "hsis_client: send failed\n");
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Read one newline-terminated line; false on EOF/error.
bool readLine(int fd, std::string& buf, std::string& line) {
  for (;;) {
    size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

const hsis::obs::jsonlite::Value* field(const Frame& f, const char* key) {
  return hsis::obs::jsonlite::find(f.body.object(), key);
}

std::string strField(const Frame& f, const char* key) {
  const auto* v = field(f, key);
  return v != nullptr && v->isString() ? v->str() : "";
}

double numField(const Frame& f, const char* key) {
  const auto* v = field(f, key);
  return v != nullptr && v->isNumber() ? v->number() : 0.0;
}

/// Handle one frame, printing the human rendering when `print` (--json
/// suppresses it — the raw line was already echoed). Returns the exit code
/// when the frame is terminal for this interaction, -1 otherwise. When the
/// done frame carries a cex pointer its server-side directory is written
/// to `cexDirOut` (for --cex-out).
int handleFrame(const Frame& f, bool print, std::string* cexDirOut) {
  if (f.event == "accepted") {
    if (print) {
      std::string trace = strField(f, "trace_id");
      std::printf("accepted (queue depth %.0f)%s%s\n",
                  numField(f, "queue_depth"),
                  trace.empty() ? "" : " trace=", trace.c_str());
    }
  } else if (f.event == "loaded") {
    if (print)
      std::printf("loaded: cache=%s read_micros=%.0f\n",
                  strField(f, "cache").c_str(), numField(f, "read_micros"));
  } else if (f.event == "verdict") {
    const auto* holds = field(f, "holds");
    bool ok = holds != nullptr &&
              std::holds_alternative<bool>(holds->v) && holds->boolean();
    if (print) {
      std::printf("%s [%s]: %s (%.3fs)\n", strField(f, "property").c_str(),
                  strField(f, "paradigm").c_str(), ok ? "PASS" : "FAIL",
                  numField(f, "seconds"));
      std::string trace = strField(f, "trace");
      if (!trace.empty()) std::printf("%s\n", trace.c_str());
    }
  } else if (f.event == "done") {
    std::string verdict = strField(f, "verdict");
    std::string cexPath, cexReplay;
    if (const auto* stats = field(f, "stats");
        stats != nullptr && stats->isObject()) {
      if (const auto* cex = hsis::obs::jsonlite::find(stats->object(), "cex");
          cex != nullptr && cex->isObject()) {
        if (const auto* p = hsis::obs::jsonlite::find(cex->object(), "path");
            p != nullptr && p->isString())
          cexPath = p->str();
        if (const auto* r =
                hsis::obs::jsonlite::find(cex->object(), "replay");
            r != nullptr && r->isString())
          cexReplay = r->str();
      }
    }
    if (cexDirOut != nullptr) *cexDirOut = cexPath;
    if (print) {
      std::string cache = "?";
      double wall = 0.0;
      std::string stages;  // "queue=1 parse=2 ..." in frame order
      if (const auto* stats = field(f, "stats");
          stats != nullptr && stats->isObject()) {
        if (const auto* c =
                hsis::obs::jsonlite::find(stats->object(), "cache");
            c != nullptr && c->isString())
          cache = c->str();
        if (const auto* w =
                hsis::obs::jsonlite::find(stats->object(), "wall_s");
            w != nullptr && w->isNumber())
          wall = w->number();
        if (const auto* st =
                hsis::obs::jsonlite::find(stats->object(), "stages");
            st != nullptr && st->isObject()) {
          for (const auto& [key, value] : st->object()) {
            if (!value.isNumber()) continue;
            if (!stages.empty()) stages += ' ';
            stages += key + "=" + std::to_string(
                                      static_cast<long long>(value.number()));
          }
        }
      }
      std::string detail = strField(f, "detail");
      std::string trace = strField(f, "trace_id");
      std::printf("verdict: %s cache=%s wall_s=%.3f%s%s%s%s\n",
                  verdict.c_str(), cache.c_str(), wall,
                  trace.empty() ? "" : " trace=", trace.c_str(),
                  detail.empty() ? "" : " detail=", detail.c_str());
      if (!stages.empty()) std::printf("stages_us: %s\n", stages.c_str());
      if (!cexPath.empty())
        std::printf("cex: %s replay=%s\n", cexPath.c_str(),
                    cexReplay.c_str());
    }
    if (verdict == "pass") return 0;
    if (verdict == "fail") return 1;
    if (verdict == "aborted") return 3;
    return 2;
  } else if (f.event == "pong") {
    if (print) std::printf("pong: %s\n", strField(f, "version").c_str());
    return 0;
  } else if (f.event == "bye") {
    if (print) std::printf("server shutting down\n");
    return 0;
  } else if (f.event == "error") {
    std::fprintf(stderr, "error: %s\n", strField(f, "message").c_str());
    return 2;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  if (hsis::obs::handleVersionFlag(argc, argv, "hsis_client")) return 0;

  std::string socketPath;
  std::string command;
  std::string model, verilog, blifmv, pif, top, name, id = "req-1";
  std::string traceId;
  std::string cexOut;
  double wallS = 0.0;
  uint64_t rssMb = 0;
  uint64_t intervalMs = 1000;
  uint64_t tickCount = 0;
  bool wantTrace = true;
  bool rawJson = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const bool hasValue = i + 1 < argc;
    if (std::strcmp(a, "--socket") == 0 && hasValue) {
      socketPath = argv[++i];
    } else if (std::strcmp(a, "--model") == 0 && hasValue) {
      model = argv[++i];
    } else if (std::strcmp(a, "--verilog") == 0 && hasValue) {
      verilog = argv[++i];
    } else if (std::strcmp(a, "--blifmv") == 0 && hasValue) {
      blifmv = argv[++i];
    } else if (std::strcmp(a, "--pif") == 0 && hasValue) {
      pif = argv[++i];
    } else if (std::strcmp(a, "--top") == 0 && hasValue) {
      top = argv[++i];
    } else if (std::strcmp(a, "--name") == 0 && hasValue) {
      name = argv[++i];
    } else if (std::strcmp(a, "--id") == 0 && hasValue) {
      id = argv[++i];
    } else if (std::strcmp(a, "--wall-s") == 0 && hasValue) {
      wallS = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(a, "--rss-mb") == 0 && hasValue) {
      rssMb = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(a, "--trace") == 0 && hasValue) {
      traceId = argv[++i];
    } else if (std::strcmp(a, "--cex-out") == 0 && hasValue) {
      cexOut = argv[++i];
    } else if (std::strcmp(a, "--interval-ms") == 0 && hasValue) {
      intervalMs = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(a, "--count") == 0 && hasValue) {
      tickCount = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(a, "--no-trace") == 0) {
      wantTrace = false;
    } else if (std::strcmp(a, "--json") == 0) {
      rawJson = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage();
      return 0;
    } else if (a[0] == '-') {
      std::fprintf(stderr, "hsis_client: unknown flag %s\n", a);
      return usage();
    } else if (command.empty()) {
      command = a;
    } else {
      return usage();
    }
  }
  if (socketPath.empty() || command.empty()) return usage();

  Request req;
  req.id = id;
  if (command == "ping") {
    req.op = Request::Op::Ping;
  } else if (command == "stats") {
    req.op = Request::Op::Stats;
  } else if (command == "stats-stream") {
    req.op = Request::Op::StatsStream;
    req.statsIntervalMs = intervalMs;
  } else if (command == "shutdown") {
    req.op = Request::Op::Shutdown;
  } else if (command == "check") {
    req.op = Request::Op::Check;
    hsis::serve::CheckRequest& c = req.check;
    c.id = id;
    c.budget = {wallS, rssMb};
    c.wantTrace = wantTrace;
    c.traceId = traceId;
    if (!model.empty()) {
      const hsis::models::ModelDef* m = hsis::models::find(model);
      if (m == nullptr) {
        std::fprintf(stderr, "hsis_client: unknown model %s\n",
                     model.c_str());
        return 2;
      }
      c.name = name.empty() ? model : name;
      c.design.kind = hsis::Session::DesignSource::Kind::Verilog;
      c.design.text = std::string(m->verilog);
      c.design.top = std::string(m->top);
      c.pif = std::string(m->pif);
    } else if (!verilog.empty() && !pif.empty()) {
      c.name = name.empty() ? verilog : name;
      c.design.kind = hsis::Session::DesignSource::Kind::Verilog;
      c.design.text = slurp(verilog.c_str());
      c.design.top = top;
      c.pif = slurp(pif.c_str());
    } else if (!blifmv.empty() && !pif.empty()) {
      c.name = name.empty() ? blifmv : name;
      c.design.kind = hsis::Session::DesignSource::Kind::BlifMv;
      c.design.text = slurp(blifmv.c_str());
      c.pif = slurp(pif.c_str());
    } else {
      std::fprintf(stderr,
                   "hsis_client: check needs --model, --verilog + --pif, "
                   "or --blifmv + --pif\n");
      return usage();
    }
  } else {
    std::fprintf(stderr, "hsis_client: unknown command %s\n",
                 command.c_str());
    return usage();
  }

  int fd = connectTo(socketPath);
  if (fd < 0) return 2;
  if (!sendLine(fd, renderRequest(req))) {
    ::close(fd);
    return 2;
  }

  std::string buf, line;
  int exitCode = 2;  // EOF before a terminal frame = server died
  uint64_t ticksSeen = 0;
  std::string cexServerDir;
  while (readLine(fd, buf, line)) {
    if (line.empty()) continue;
    if (rawJson) std::printf("%s\n", line.c_str());
    Frame frame;
    try {
      frame = hsis::serve::parseFrame(line);
    } catch (const hsis::serve::ProtocolError& e) {
      std::fprintf(stderr, "hsis_client: bad frame: %s\n", e.what());
      continue;
    }
    if (frame.event == "stats") {
      if (!rawJson) std::printf("%s\n", line.c_str());  // JSON either way
      exitCode = 0;
      break;
    }
    if (frame.event == "stats-tick") {
      if (!rawJson) std::printf("%s\n", line.c_str());  // JSON either way
      std::fflush(stdout);  // consumers pipe the stream; don't batch it
      if (tickCount > 0 && ++ticksSeen >= tickCount) {
        exitCode = 0;
        break;
      }
      continue;
    }
    int r = handleFrame(frame, !rawJson, &cexServerDir);
    if (r >= 0) {
      exitCode = r;
      break;
    }
  }
  // --cex-out: copy the server-side artifact locally (the daemon is on
  // this host — the transport is a unix socket).
  if (!cexOut.empty()) {
    if (cexServerDir.empty()) {
      std::fprintf(stderr,
                   "hsis_client: no counterexample artifact captured "
                   "(server needs --artifact-dir and a failing check)\n");
    } else {
      std::ifstream in(cexServerDir + "/cex.json");
      std::ofstream out(cexOut);
      if (!in || !out) {
        std::fprintf(stderr, "hsis_client: cannot copy %s/cex.json to %s\n",
                     cexServerDir.c_str(), cexOut.c_str());
      } else {
        out << in.rdbuf();
        std::printf("cex copied to %s\n", cexOut.c_str());
      }
    }
  }
  // An unbounded stats-stream ends at server EOF; that is a clean exit as
  // long as the subscription actually delivered frames.
  if (command == "stats-stream" && exitCode == 2 && ticksSeen > 0)
    exitCode = 0;
  ::close(fd);
  return exitCode;
}
