// hsis_report — query the cross-run verification ledger.
//
//   hsis_report list [--limit N]             recent runs, one line each
//   hsis_report show RUN                     every record of one run id
//                                            (RUN may be a unique prefix)
//   hsis_report diff SHA1 SHA2               per-subject wall/RSS deltas
//                                            between two commits
//   hsis_report regressions [--threshold PCT] [--mem-threshold PCT]
//                           [--report-only]  latest run vs the previous one
//   hsis_report requests [--threshold SECONDS] [--limit N] [--report-only]
//                                            per-request stage breakdowns
//                                            (hsis_serve records carrying
//                                            trace ids + stage timings);
//                                            rows past the threshold are
//                                            flagged SLOW
//   hsis_report coverage FILE... [--threshold PCT] [--report-only]
//                                            render hsis-cov-v1 coverage
//                                            artifacts (hsis_cli --cov-json)
//                                            as markdown; with --threshold,
//                                            exit 1 when any latch's value
//                                            occupancy is below PCT
//   hsis_report cex FILE... [--replay]       render hsis-cex-v1
//                                            counterexample artifacts
//                                            (hsis_cli --cex-dir, hsis_serve
//                                            --artifact-dir) as a markdown
//                                            step table with source lines;
//                                            with --replay, recompile the
//                                            embedded design and re-verify
//                                            the trace (exit 1 when any
//                                            artifact fails to replay)
//
// Common flags: --ledger PATH (default $HSIS_LEDGER or ~/.hsis/ledger.jsonl),
// --markdown (tables render as GitHub markdown).
//
// Exit codes: 0 ok / no regressions, 1 regressions found (unless
// --report-only), 2 usage or I/O error.
//
// All query and rendering logic lives in obs/ledger.{hpp,cpp} so the unit
// tests cover it without spawning this binary.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cex/cex.hpp"
#include "cov/cov.hpp"
#include "obs/ledger.hpp"
#include "obs/version.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: hsis_report [--ledger PATH] [--markdown] COMMAND\n"
               "  list [--limit N]\n"
               "  show RUN\n"
               "  diff SHA1 SHA2 [--threshold PCT] [--mem-threshold PCT]\n"
               "  regressions [--threshold PCT] [--mem-threshold PCT] "
               "[--report-only]\n"
               "  requests [--threshold SECONDS] [--limit N] "
               "[--report-only]\n"
               "  coverage FILE... [--threshold PCT] [--report-only]\n"
               "  cex FILE... [--replay]\n");
}

/// `hsis_report coverage`: render hsis-cov-v1 artifacts; exit 1 when a
/// --threshold gate fails (unless --report-only), 2 on I/O/parse errors.
int runCoverage(const std::vector<std::string>& files, bool thresholdSet,
                double thresholdPct, bool reportOnly) {
  size_t gated = 0;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "hsis_report: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    hsis::cov::Report rep;
    try {
      rep = hsis::cov::parseReportJson(text.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hsis_report: %s: %s\n", file.c_str(), e.what());
      return 2;
    }
    hsis::cov::RenderOptions ro;
    if (thresholdSet) ro.threshold = thresholdPct;
    std::fputs(hsis::cov::renderReport(rep, ro).c_str(), stdout);
    std::fputs("\n", stdout);
    if (thresholdSet) gated += hsis::cov::latchesBelow(rep, thresholdPct);
  }
  return gated > 0 && !reportOnly ? 1 : 0;
}

/// `hsis_report cex`: render hsis-cex-v1 artifacts; with --replay,
/// recompile the embedded design source and re-verify the trace. Exit 0
/// when everything (re-)verifies, 1 when any replay fails, 2 on I/O/parse
/// errors.
int runCex(const std::vector<std::string>& files, bool replay) {
  size_t unverified = 0;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "hsis_report: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    hsis::cex::Artifact art;
    try {
      art = hsis::cex::parseJson(text.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hsis_report: %s: %s\n", file.c_str(), e.what());
      return 2;
    }
    if (replay) {
      hsis::cex::ReplayResult r = hsis::cex::replayFromSource(art);
      art.replay = r.verified ? "verified" : "unverified";
      art.replayNote = r.note;
      if (!r.verified) ++unverified;
    }
    std::fputs(hsis::cex::renderMarkdown(art).c_str(), stdout);
    std::fputs("\n", stdout);
  }
  return unverified > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsis::obs;
  if (handleVersionFlag(argc, argv, "hsis_report")) return 0;

  std::string ledgerFlag;
  bool markdown = false;
  double wallPct = 10.0;
  double rssPct = 10.0;
  bool thresholdSet = false;
  bool reportOnly = false;
  bool replay = false;
  size_t limit = 20;
  std::vector<std::string> pos;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const bool hasValue = i + 1 < argc;
    if (std::strcmp(a, "--ledger") == 0 && hasValue) {
      ledgerFlag = argv[++i];
    } else if (std::strcmp(a, "--markdown") == 0) {
      markdown = true;
    } else if (std::strcmp(a, "--threshold") == 0 && hasValue) {
      wallPct = std::strtod(argv[++i], nullptr);
      thresholdSet = true;
    } else if (std::strcmp(a, "--mem-threshold") == 0 && hasValue) {
      rssPct = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(a, "--report-only") == 0) {
      reportOnly = true;
    } else if (std::strcmp(a, "--replay") == 0) {
      replay = true;
    } else if (std::strcmp(a, "--limit") == 0 && hasValue) {
      limit = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage();
      return 0;
    } else if (a[0] == '-') {
      std::fprintf(stderr, "hsis_report: unknown flag %s\n", a);
      usage();
      return 2;
    } else {
      pos.emplace_back(a);
    }
  }
  if (pos.empty()) {
    usage();
    return 2;
  }

  // `coverage` reads hsis-cov-v1 artifacts, not the ledger — dispatch it
  // before any ledger resolution so it works with no ledger configured.
  if (pos[0] == "coverage") {
    if (pos.size() < 2) {
      std::fprintf(stderr, "hsis_report: coverage needs at least one file\n");
      usage();
      return 2;
    }
    return runCoverage({pos.begin() + 1, pos.end()}, thresholdSet, wallPct,
                       reportOnly);
  }

  // `cex` reads hsis-cex-v1 artifacts, not the ledger — same early
  // dispatch.
  if (pos[0] == "cex") {
    if (pos.size() < 2) {
      std::fprintf(stderr, "hsis_report: cex needs at least one file\n");
      usage();
      return 2;
    }
    return runCex({pos.begin() + 1, pos.end()}, replay);
  }

  const std::string path = ledger::resolvePath(ledgerFlag);
  if (path.empty()) {
    std::fprintf(stderr, "hsis_report: no ledger path (--ledger or "
                         "$HSIS_LEDGER or $HOME required)\n");
    return 2;
  }
  size_t skipped = 0;
  std::vector<ledger::Record> records = ledger::load(path, &skipped);
  if (skipped > 0)
    std::fprintf(stderr, "hsis_report: %zu malformed line(s) skipped in %s\n",
                 skipped, path.c_str());
  if (records.empty()) {
    std::fprintf(stderr, "hsis_report: no records in %s\n", path.c_str());
    return 2;
  }

  const std::string& cmd = pos[0];
  if (cmd == "list") {
    std::fputs(ledger::renderList(records, limit).c_str(), stdout);
    return 0;
  }
  if (cmd == "show") {
    if (pos.size() != 2) {
      usage();
      return 2;
    }
    std::string out = ledger::renderShow(records, pos[1]);
    if (out.empty()) {
      std::fprintf(stderr, "hsis_report: no run matching \"%s\"\n",
                   pos[1].c_str());
      return 2;
    }
    std::fputs(out.c_str(), stdout);
    return 0;
  }
  if (cmd == "diff") {
    if (pos.size() != 3) {
      usage();
      return 2;
    }
    ledger::DiffResult diff =
        ledger::diffByGitSha(records, pos[1], pos[2], wallPct, rssPct);
    if (diff.rows.empty()) {
      std::fprintf(stderr,
                   "hsis_report: no overlapping subjects for %s vs %s\n",
                   pos[1].c_str(), pos[2].c_str());
      return 2;
    }
    std::fputs(ledger::renderDiff(diff, markdown).c_str(), stdout);
    return diff.wallRegressions + diff.rssRegressions > 0 && !reportOnly ? 1
                                                                         : 0;
  }
  if (cmd == "requests") {
    // --threshold is SECONDS here (a latency bar), not a percentage: a
    // request slower than it is flagged SLOW and counted as an outlier.
    size_t outliers = 0;
    std::string out =
        ledger::renderRequests(records, wallPct, limit, &outliers);
    if (out.empty()) {
      std::fprintf(stderr,
                   "hsis_report: no per-request records (stage timings) "
                   "in %s\n",
                   path.c_str());
      return 2;
    }
    std::fputs(out.c_str(), stdout);
    return outliers > 0 && !reportOnly ? 1 : 0;
  }
  if (cmd == "regressions") {
    std::optional<ledger::DiffResult> diff =
        ledger::diffLatestRuns(records, wallPct, rssPct);
    if (!diff.has_value()) {
      std::fprintf(stderr,
                   "hsis_report: need at least two runs in the ledger\n");
      return 2;
    }
    std::fputs(ledger::renderDiff(*diff, markdown).c_str(), stdout);
    return diff->wallRegressions + diff->rssRegressions > 0 && !reportOnly ? 1
                                                                           : 0;
  }
  std::fprintf(stderr, "hsis_report: unknown command \"%s\"\n", cmd.c_str());
  usage();
  return 2;
}
