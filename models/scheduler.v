// scheduler — Milner's distributed cyclic scheduler [Milner 1989], ten
// cells in a ring. A single scheduling token circulates; a cell holding the
// token starts its task (if the previous run of that task has finished) and
// passes the token on. Tasks run for a nondeterministic, fairness-bounded
// amount of time.
module scheduler;
  wire clk;
  wire s0, s1, s2, s3, s4, s5, s6, s7, s8, s9;   // token-passing pulses
  wire b0, b1, b2, b3, b4, b5, b6, b7, b8, b9;   // task busy flags

  cell #(.HASTOKEN(1)) c0(s9, s0, b0);
  cell c1(s0, s1, b1);
  cell c2(s1, s2, b2);
  cell c3(s2, s3, b3);
  cell c4(s3, s4, b4);
  cell c5(s4, s5, b5);
  cell c6(s5, s6, b6);
  cell c7(s6, s7, b7);
  cell c8(s7, s8, b8);
  cell c9(s8, s9, b9);
endmodule

module cell(start_in, start_out, busy);
  parameter HASTOKEN = 0;
  input start_in;
  output start_out, busy;
  wire clk;

  reg token;      // this cell holds the scheduling token
  reg running;    // this cell's task is running
  reg [1:0] tmr;  // task progress; completion possible once it saturates

  wire finish;
  assign finish = running && (tmr == 3) && $ND(0, 1);

  // Start the task and pass the token in the same tick: only when the
  // token is here and the previous run has completed (Milner's condition
  // that task i's runs do not overlap).
  wire canstart;
  assign canstart = token && !running;
  assign start_out = canstart;
  assign busy = running;

  always @(posedge clk) begin
    if (canstart) token <= 0;
    else if (start_in) token <= 1;
    if (canstart) begin
      running <= 1;
      tmr <= 0;
    end else if (finish) begin
      running <= 0;
      tmr <= 0;
    end else if (running) begin
      tmr <= tmr + $ND(0, 1);   // tasks progress at their own pace
    end
  end
  initial token = HASTOKEN;
  initial running = 0;
  initial tmr = 0;
endmodule
