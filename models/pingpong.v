// pingpong — two players exchanging a ball (toy example).
// A player holding the ball may keep it for a nondeterministic but, under
// the fairness constraints in pingpong.pif, finite number of clock ticks
// before hitting it back.
module pingpong;
  wire clk;

  enum { ping_side, to_pong, pong_side, to_ping } ball;

  wire ping_hits, pong_hits;
  assign ping_hits = (ball == ping_side) && $ND(0, 1);
  assign pong_hits = (ball == pong_side) && $ND(0, 1);

  always @(posedge clk) begin
    case (ball)
      ping_side: if (ping_hits) ball <= to_pong;
      to_pong:   ball <= pong_side;
      pong_side: if (pong_hits) ball <= to_ping;
      to_ping:   ball <= ping_side;
    endcase
  end
  initial ball = ping_side;

  wire ping_has, pong_has, in_flight;
  assign ping_has = (ball == ping_side);
  assign pong_has = (ball == pong_side);
  assign in_flight = (ball == to_pong) || (ball == to_ping);
endmodule
