// gigamax — a cache-consistency protocol modeled after the Encore Gigamax
// [McMillan-Schwalbe 1991]: three processors snooping one bus, each holding
// one cache line in state invalid / shared / owned. A nondeterministic
// arbiter grants the bus each cycle; the grantee issues a command suited to
// its state, everyone else snoops.
//
// Commands: 0 = idle, 1 = read_shared, 2 = read_owned, 3 = invalidate.
module gigamax;
  wire clk;

  // Arbitration is latched so fairness constraints can refer to it:
  // master = 0..2 grants a processor, 3 leaves the bus idle.
  reg [1:0] master;
  always @(posedge clk) master <= $ND(0, 1, 2, 3);
  initial master = 3;

  wire [1:0] want0, want1, want2;
  wire [1:0] cmd;
  assign cmd = (master == 0) ? want0
             : (master == 1) ? want1
             : (master == 2) ? want2
             : 0;

  wire inv0, shr0, own0;
  wire inv1, shr1, own1;
  wire inv2, shr2, own2;

  cache p0(master == 0, cmd, want0, inv0, shr0, own0);
  cache p1(master == 1, cmd, want1, inv1, shr1, own1);
  cache p2(master == 2, cmd, want2, inv2, shr2, own2);

  // coherence observers
  wire two_owners, owner_with_sharer;
  assign two_owners = (own0 && own1) || (own1 && own2) || (own0 && own2);
  assign owner_with_sharer = (own0 && (shr1 || shr2))
                          || (own1 && (shr0 || shr2))
                          || (own2 && (shr0 || shr1));
endmodule

module cache(granted, cmd, want, inv, shr, own);
  input granted;
  input [1:0] cmd;
  output [1:0] want;
  output inv, shr, own;
  wire clk;

  enum { invalid, shared, owned } st;

  assign inv = (st == invalid);
  assign shr = (st == shared);
  assign own = (st == owned);

  // What this processor would put on the bus if granted: a miss wants the
  // line (shared or owned), a sharer may upgrade, an owner is content.
  assign want = (st == invalid) ? $ND(1, 2)
              : (st == shared)  ? $ND(0, 3)
              : 0;

  always @(posedge clk) begin
    if (granted) begin
      case (st)
        invalid: if (cmd == 1) st <= shared;
                 else if (cmd == 2) st <= owned;
        shared:  if (cmd == 3) st <= owned;
        owned:   st <= owned;
      endcase
    end else begin
      // snoop a foreign command
      if (cmd == 1) begin
        if (st == owned) st <= shared;   // supply data, demote
      end else if (cmd == 2 || cmd == 3) begin
        st <= invalid;                   // foreign exclusive request
      end
    end
  end
  initial st = invalid;
endmodule
