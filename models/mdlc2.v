// 2mdlc — a two-channel message data-link controller (industrial-style
// substitute; see DESIGN.md "Substitutions"). Each link runs an
// alternating-bit protocol over a lossy, corrupting wire: the sender
// attaches a linear checksum to {seq, data}; the wire may drop the frame or
// corrupt the payload; the receiver recomputes the checksum, accepts
// in-sequence clean frames, and acknowledges over an equally lossy ack
// wire; the sender retransmits on timeout. A sticky `err` flag records any
// delivery whose payload differs from what the sender offered — the
// data-integrity property of mdlc2.pif.
//
// The checksum datapath intentionally uses wide multi-valued operators:
// compiling it produces the large BLIF-MV tables characteristic of the
// paper's 2mdlc row.
module mdlc2;
  wire clk;
  wire dlv0, dlv1;
  link l0(dlv0);
  link l1(dlv1);
endmodule

module link(delivered);
  output delivered;
  wire clk;

  // ---- sender ----
  enum { make, send, wait_ack } tx_st;
  reg [3:0] tx_data;
  reg tx_seq;
  reg [1:0] timer;

  // checksum over the frame {seq, data} — a 5-bit linear code
  wire [4:0] tx_frame, tx_crc;
  assign tx_frame = {tx_seq, tx_data};
  assign tx_crc = tx_frame ^ (tx_frame >> 2);

  // ---- frame wire ----
  reg ch_valid;
  reg [3:0] ch_data;
  reg ch_seq;
  reg [4:0] ch_crc;
  reg drop, corrupt;   // latched channel weather (so fairness can see it)
  always @(posedge clk) begin
    drop <= $ND(0, 1);
    corrupt <= $ND(0, 1);
  end
  initial drop = 0;
  initial corrupt = 0;

  // ---- receiver ----
  reg rx_seq;
  reg [3:0] rx_data;
  reg deliver;   // pulse: a new payload was accepted last cycle
  reg acked;     // pulse: a clean ack was sent last cycle
  reg err;       // sticky: delivered payload differed from the offered one

  wire [4:0] rx_frame, rx_crc;
  assign rx_frame = {ch_seq, ch_data};
  assign rx_crc = rx_frame ^ (rx_frame >> 2);

  wire rok, raccept;
  assign rok = ch_valid && (rx_crc == ch_crc);
  assign raccept = rok && (ch_seq == rx_seq);

  // ---- ack wire ----
  reg ack_valid;
  reg ack_seq;
  reg ackdrop;
  always @(posedge clk) ackdrop <= $ND(0, 1);
  initial ackdrop = 0;

  wire ack_here;
  assign ack_here = ack_valid && (ack_seq == tx_seq);

  assign delivered = deliver;

  always @(posedge clk) begin
    // sender
    case (tx_st)
      make: begin
        tx_data <= $ND(2, 5, 9, 14);
        tx_st <= send;
        timer <= 0;
      end
      send: begin
        tx_st <= wait_ack;
        timer <= 0;
      end
      wait_ack: begin
        if (ack_here) begin
          tx_seq <= !tx_seq;
          tx_st <= make;
        end else if (timer == 3) begin
          tx_st <= send;
        end else begin
          timer <= timer + 1;
        end
      end
    endcase

    // frame wire: loaded on send (unless dropped), expires after one cycle
    if (tx_st == send) begin
      ch_valid <= !drop;
      ch_data <= corrupt ? ~tx_data : tx_data;
      ch_seq <= tx_seq;
      ch_crc <= tx_crc;
    end else begin
      ch_valid <= 0;
    end

    // receiver
    if (raccept) begin
      rx_data <= ch_data;
      rx_seq <= !rx_seq;
      deliver <= 1;
      if (!(ch_data == tx_data)) err <= 1;
    end else begin
      deliver <= 0;
    end

    // ack wire: every clean frame (new or duplicate) is acknowledged
    if (rok) begin
      ack_valid <= !ackdrop;
      ack_seq <= ch_seq;
      acked <= !ackdrop;
    end else begin
      ack_valid <= 0;
      acked <= 0;
    end
  end

  initial tx_st = make;
  initial tx_data = 0;
  initial tx_seq = 0;
  initial timer = 0;
  initial ch_valid = 0;
  initial ch_data = 0;
  initial ch_seq = 0;
  initial ch_crc = 0;
  initial rx_seq = 0;
  initial rx_data = 0;
  initial deliver = 0;
  initial acked = 0;
  initial err = 0;
  initial ack_valid = 0;
  initial ack_seq = 0;
endmodule
