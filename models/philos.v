// philos — four dining philosophers around a table (toy example).
//
// Every philosopher grabs the left fork first, then the right fork; the
// classic deadlock (all four holding their left fork) is reachable on
// purpose — the properties in philos.pif demonstrate how HSIS exposes it.
// Fork i sits between philosopher i (its left fork) and philosopher i-1
// (whose right fork it is). A grab is blocked while the left neighbour is
// poised to eat, which keeps a fork from being claimed by both sides in
// the same tick.
module philos;
  wire clk;
  wire h0, h1, h2, h3;  // philosopher i holds its left fork
  wire g0, g1, g2, g3;  // poised: holds left fork, not yet eating
  wire e0, e1, e2, e3;  // eating
  wire f0free, f1free, f2free, f3free;

  // fork i is free unless held as a left fork by phil i or used by the
  // eating right neighbour (phil i-1)
  assign f0free = !(h0 || e3);
  assign f1free = !(h1 || e0);
  assign f2free = !(h2 || e1);
  assign f3free = !(h3 || e2);

  // grabbing the left fork yields to the left neighbour's pending eat
  philosopher p0(f0free && !g3, f1free, h0, g0, e0);
  philosopher p1(f1free && !g0, f2free, h1, g1, e1);
  philosopher p2(f2free && !g1, f3free, h2, g2, e2);
  philosopher p3(f3free && !g2, f0free, h3, g3, e3);

  wire deadlock;
  assign deadlock = g0 && g1 && g2 && g3;
endmodule

module philosopher(leftok, rightfree, holdsleft, poised, eating);
  input leftok, rightfree;
  output holdsleft, poised, eating;
  wire clk;

  enum { thinking, hungry, hasleft, eat } st;

  assign holdsleft = (st == hasleft) || (st == eat);
  assign poised = (st == hasleft);
  assign eating = (st == eat);

  always @(posedge clk) begin
    case (st)
      thinking: if ($ND(0, 1)) st <= hungry;
      hungry:   if (leftok) st <= hasleft;
      hasleft:  if (rightfree) st <= eat;
      eat:      if ($ND(0, 1)) st <= thinking;
    endcase
  end
  initial st = thinking;
endmodule
