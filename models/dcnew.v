// dcnew — a three-channel data-transfer controller (industrial-style
// substitute; see DESIGN.md "Substitutions"). Channels request a shared
// bus; a priority arbiter grants it to the lowest-numbered requester when
// the bus is free; the winner performs a transfer of nondeterministic
// length, tracked by a down-counter. A word counter and a parity flag
// accumulate completed transfers.
module dcnew;
  wire clk;

  wire r0, r1, r2;   // request
  wire t0, t1, t2;   // transferring
  wire d0, d1, d2;   // completing this cycle

  wire busfree;
  assign busfree = !(t0 || t1 || t2);

  // fixed-priority arbitration: channel 0 wins ties (channel 2 can starve —
  // the ch2_served property in dcnew.pif fails with a lasso trace)
  wire g0, g1, g2;
  assign g0 = busfree && r0;
  assign g1 = busfree && r1 && !r0;
  assign g2 = busfree && r2 && !r0 && !r1;

  channel ch0(g0, r0, t0, d0);
  channel ch1(g1, r1, t1, d1);
  channel ch2(g2, r2, t2, d2);

  // completed-transfer accounting
  reg [3:0] total;
  reg parity;
  always @(posedge clk) begin
    if (d0 || d1 || d2) begin
      total <= total + 1;
      parity <= !parity;
    end
  end
  initial total = 0;
  initial parity = 0;
endmodule

module channel(grant, req, xfer, done);
  input grant;
  output req, xfer, done;
  wire clk;

  enum { idle, request, transfer, complete } st;
  reg [3:0] cnt;

  assign req = (st == request);
  assign xfer = (st == transfer);
  assign done = (st == transfer) && (cnt == 0);

  always @(posedge clk) begin
    case (st)
      idle:     if ($ND(0, 1)) st <= request;
      request:  if (grant) begin
                  st <= transfer;
                  cnt <= $ND(3, 7, 15);   // transfer length
                end
      transfer: if (cnt == 0) st <= complete;
                else cnt <= cnt - 1;
      complete: st <= idle;
    endcase
  end
  initial st = idle;
  initial cnt = 0;
endmodule
