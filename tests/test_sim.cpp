// Tests for the state-based simulator.
#include <gtest/gtest.h>

#include <set>

#include "blifmv/blifmv.hpp"
#include "sim/simulator.hpp"

namespace hsis {
namespace {

struct SimFixture : ::testing::Test {
  void SetUp() override {
    auto design = blifmv::parse(R"(
.model branchy
.mv s, ns 4
.table s ns
0 (1,2)
1 3
2 3
3 0
.latch ns s
.reset s
0
.end
)");
    flat = blifmv::flatten(design);
    fsm = std::make_unique<Fsm>(mgr, flat);
    tr = TransitionRelation::monolithic(*fsm);
  }
  BddManager mgr;
  blifmv::Model flat;
  std::unique_ptr<Fsm> fsm;
  std::optional<TransitionRelation> tr;
};

TEST_F(SimFixture, ResetAndShow) {
  Simulator sim(*fsm, *tr);
  EXPECT_EQ(fsm->decodeState(sim.currentState())[0], 0u);
  EXPECT_NE(sim.show().find("s=0"), std::string::npos);
  EXPECT_EQ(sim.stepsTaken(), 0u);
}

TEST_F(SimFixture, SuccessorsEnumerated) {
  Simulator sim(*fsm, *tr);
  auto succ = sim.successors();
  ASSERT_EQ(succ.size(), 2u);
  std::set<uint32_t> vals;
  for (const auto& s : succ) vals.insert(fsm->decodeState(s)[0]);
  EXPECT_EQ(vals, (std::set<uint32_t>{1, 2}));
  // limit respected
  EXPECT_EQ(sim.successors(1).size(), 1u);
}

TEST_F(SimFixture, StepByChoice) {
  Simulator sim(*fsm, *tr);
  ASSERT_TRUE(sim.step(0));
  uint32_t v = fsm->decodeState(sim.currentState())[0];
  EXPECT_TRUE(v == 1 || v == 2);
  EXPECT_EQ(sim.stepsTaken(), 1u);
  EXPECT_FALSE(sim.step(7));  // out of range
  sim.reset();
  EXPECT_EQ(fsm->decodeState(sim.currentState())[0], 0u);
}

TEST_F(SimFixture, RandomWalkFollowsTransitions) {
  Simulator sim(*fsm, *tr, 99);
  uint32_t prev = fsm->decodeState(sim.currentState())[0];
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(sim.randomStep());
    uint32_t cur = fsm->decodeState(sim.currentState())[0];
    Bdd prevCube = fsm->stateFromValues({prev});
    Bdd curCube = fsm->stateFromValues({cur});
    EXPECT_FALSE((tr->image(prevCube) & curCube).isZero());
    prev = cur;
  }
  EXPECT_EQ(sim.stepsTaken(), 20u);
}

TEST_F(SimFixture, RandomWalkHelper) {
  Simulator sim(*fsm, *tr, 5);
  EXPECT_EQ(sim.randomWalk(15), 15u);
}

TEST_F(SimFixture, EnumerateVisitsAllStates) {
  Simulator sim(*fsm, *tr);
  std::set<uint32_t> seen;
  size_t n = sim.enumerate(100, [&](const std::vector<int8_t>& s) {
    seen.insert(fsm->decodeState(s)[0]);
  });
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(seen, (std::set<uint32_t>{0, 1, 2, 3}));
  // bounded enumeration stops early
  EXPECT_EQ(sim.enumerate(2, [](const std::vector<int8_t>&) {}), 2u);
}

TEST_F(SimFixture, ReachableCount) {
  Simulator sim(*fsm, *tr);
  EXPECT_DOUBLE_EQ(sim.reachableCount(), 4.0);
}

TEST(SimDeadlock, StopsAtDeadlock) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(R"(
.model dead
.mv s, ns 2
.table s ns
0 1
.latch ns s
.reset s
0
.end
)"));
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  Simulator sim(fsm, tr);
  EXPECT_TRUE(sim.randomStep());
  EXPECT_FALSE(sim.randomStep());  // s=1 is a deadlock
  EXPECT_EQ(sim.randomWalk(10), 0u);
}

}  // namespace
}  // namespace hsis
