// Tests for hsis::obs::prof — the sampling profiler, the BDD census
// rendezvous, and the exit-time profile export. Like test_obs.cpp, every
// test passes in both build modes: the census and the rendezvous stay live
// under HSIS_OBS_DISABLE (they are introspection/control flow), while
// assertions about recorded samples are gated on obs::kEnabled because the
// sampler itself compiles to a no-op there.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "bdd/bdd.hpp"
#include "obs/control.hpp"
#include "obs/jsonlite.hpp"
#include "obs/obs.hpp"
#include "obs/prof.hpp"

namespace hsis::obs::prof {
namespace {

std::string slurpFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string firstLine(const std::string& text) {
  return text.substr(0, text.find('\n'));
}

/// Sum of the per-level populations — must equal liveNodes.
uint64_t levelSum(const BddCensus& c) {
  uint64_t sum = 0;
  for (uint64_t n : c.levelNodes) sum += n;
  return sum;
}

void expectCensusInvariants(const BddCensus& c) {
  EXPECT_EQ(levelSum(c), c.liveNodes);
  EXPECT_EQ(c.allocatedNodes, c.liveNodes + c.freeNodes);
  EXPECT_LE(c.deadNodes, c.liveNodes);
  EXPECT_GE(c.peakLiveNodes, c.liveNodes);
  EXPECT_LE(c.cacheUsed, c.cacheEntries);
  EXPECT_LE(c.cacheHits, c.cacheLookups);
}

/// A function with enough structure to populate several levels: the
/// pairwise conjunction-of-xors over 2k variables.
hsis::Bdd buildXorChain(hsis::BddManager& mgr, uint32_t pairs) {
  hsis::Bdd f = mgr.bddOne();
  for (uint32_t i = 0; i < pairs; ++i) {
    f &= mgr.bddVar(2 * i) ^ mgr.bddVar(2 * i + 1);
  }
  return f;
}

// ------------------------------------------------------------- BDD census

TEST(ProfCensus, InvariantsHoldAfterBuilding) {
  hsis::BddManager mgr(12);
  hsis::Bdd f = buildXorChain(mgr, 6);
  BddCensus c = mgr.census();
  expectCensusInvariants(c);
  EXPECT_GT(c.liveNodes, 0u);
  EXPECT_EQ(c.levelNodes.size(), 12u);
  EXPECT_EQ(c.liveNodes, mgr.liveNodeCount());
  // The xor chain touches every variable, so every level is populated.
  for (uint64_t n : c.levelNodes) EXPECT_GT(n, 0u);
}

TEST(ProfCensus, GcDrivesDeadNodesToZero) {
  hsis::BddManager mgr(12);
  hsis::Bdd keep = buildXorChain(mgr, 3);
  {
    // Garbage: referenced only inside this scope.
    hsis::Bdd tmp = buildXorChain(mgr, 6) ^ mgr.bddVar(11);
  }
  BddCensus before = mgr.census();
  expectCensusInvariants(before);
  EXPECT_GT(before.deadNodes, 0u);

  mgr.gc();
  BddCensus after = mgr.census();
  expectCensusInvariants(after);
  EXPECT_EQ(after.deadNodes, 0u);
  EXPECT_LT(after.liveNodes, before.liveNodes);
  EXPECT_EQ(after.gcRuns, before.gcRuns + 1);
  // gc frees slots instead of shrinking the arena.
  EXPECT_GT(after.freeNodes, before.freeNodes);
}

TEST(ProfCensus, InvariantsSurviveReordering) {
  hsis::BddManager mgr(12);
  hsis::Bdd f = buildXorChain(mgr, 6);
  BddCensus before = mgr.census();
  mgr.sift();
  BddCensus after = mgr.census();
  expectCensusInvariants(after);
  EXPECT_EQ(after.reorderings, before.reorderings + 1);
  EXPECT_GT(after.liveNodes, 0u);
  EXPECT_EQ(after.levelNodes.size(), 12u);
}

TEST(ProfCensus, CacheOccupancyGrowsWithWork) {
  hsis::BddManager mgr(8);
  EXPECT_EQ(mgr.census().cacheUsed, 0u);
  hsis::Bdd f = buildXorChain(mgr, 4);
  BddCensus c = mgr.census();
  EXPECT_GT(c.cacheUsed, 0u);
  EXPECT_GT(c.cacheLookups, 0u);
  mgr.clearCaches();
  EXPECT_EQ(mgr.census().cacheUsed, 0u);
}

// -------------------------------------------------------------- rendezvous

TEST(ProfRendezvous, ManagerPublishesAtSafePoint) {
  clearCensus();
  EXPECT_FALSE(latestCensus().has_value());
  EXPECT_FALSE(censusRequested());

  requestCensus();
  EXPECT_TRUE(censusRequested());

  // Any public op boundary answers the request.
  hsis::BddManager mgr(6);
  hsis::Bdd f = mgr.bddVar(0) & mgr.bddVar(1);

  EXPECT_FALSE(censusRequested());
  auto c = latestCensus();
  ASSERT_TRUE(c.has_value());
  expectCensusInvariants(*c);
  EXPECT_GT(c->seq, 0u);
  EXPECT_GT(c->tNs, 0u);
  clearCensus();
}

TEST(ProfRendezvous, NoPublicationWithoutRequest) {
  clearCensus();
  hsis::BddManager mgr(6);
  hsis::Bdd f = mgr.bddVar(0) | mgr.bddVar(1);
  EXPECT_FALSE(latestCensus().has_value());
}

// ----------------------------------------------------------------- sampler

TEST(ProfSampler, StartStopIsIdempotent) {
  Profiler& p = Profiler::instance();
  p.stop();
  EXPECT_FALSE(p.running());
  p.stop();  // stop without start: no-op

  ProfOptions opts;
  opts.intervalMs = 1000;  // never ticks within this test
  p.start(opts);
  EXPECT_EQ(p.running(), kEnabled);
  p.start(opts);  // restart while running
  EXPECT_EQ(p.running(), kEnabled);
  p.stop();
  EXPECT_FALSE(p.running());
  p.stop();
  EXPECT_FALSE(p.running());
}

TEST(ProfSampler, FoldedAggregationMatchesPhaseScript) {
  Profiler& p = Profiler::instance();
  p.stop();
  p.clear();
  {
    Span outer("prof.test.alpha");
    {
      Span inner("prof.test.beta");
      p.sampleOnce();
      p.sampleOnce();
    }
    p.sampleOnce();
  }
  p.sampleOnce();  // idle: no open phase anywhere

  if (kEnabled) {
    EXPECT_EQ(p.sampleCount(), 4u);
    std::string folded = p.foldedStacks();
    EXPECT_NE(folded.find("prof.test.alpha;prof.test.beta 2\n"),
              std::string::npos);
    EXPECT_NE(folded.find("prof.test.alpha 1\n"), std::string::npos);
    std::vector<ProfSample> samples = p.samples();
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples[0].folded.size(), 1u);
    EXPECT_EQ(samples[3].folded.size(), 0u);  // idle tick records no stack
    EXPECT_GT(samples[0].rssKb, 0u);
  } else {
    EXPECT_EQ(p.sampleCount(), 0u);
    EXPECT_TRUE(p.foldedStacks().empty());
  }
  p.clear();
}

TEST(ProfSampler, CapturesStacksOfOtherThreads) {
  if (!kEnabled) GTEST_SKIP() << "spans compile to no-ops";
  Profiler& p = Profiler::instance();
  p.stop();
  p.clear();

  std::mutex mu;
  std::condition_variable cv;
  bool opened = false;
  bool release = false;
  std::thread worker([&] {
    Span s("prof.test.worker");
    std::unique_lock<std::mutex> lock(mu);
    opened = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return opened; });
  }
  p.sampleOnce();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  worker.join();

  EXPECT_NE(p.foldedStacks().find("prof.test.worker"), std::string::npos);
  p.clear();
}

TEST(ProfSampler, SampleRecordsParseAndCarryCensus) {
  Profiler& p = Profiler::instance();
  p.stop();
  p.clear();
  clearCensus();

  // Publish a census, then tick once inside a phase.
  requestCensus();
  hsis::BddManager mgr(8);
  hsis::Bdd f = buildXorChain(mgr, 4);
  {
    Span span("prof.test.jsonl");
    p.sampleOnce();
  }

  // The header parses in both modes and declares the schema.
  jsonlite::Value header = jsonlite::parse(p.headerJson());
  ASSERT_TRUE(header.isObject());
  EXPECT_EQ(jsonlite::find(header.object(), "schema")->str(), "hsis-prof-v1");
  EXPECT_EQ(jsonlite::find(header.object(), "enabled")->boolean(), kEnabled);
  EXPECT_EQ(firstLine(p.censusJsonl()), p.headerJson());

  if (kEnabled) {
    std::vector<ProfSample> samples = p.samples();
    ASSERT_EQ(samples.size(), 1u);
    const ProfSample& s = samples[0];
    ASSERT_TRUE(s.census.has_value());
    expectCensusInvariants(*s.census);

    jsonlite::Value rec = jsonlite::parse(s.toJsonl());
    ASSERT_TRUE(rec.isObject());
    const jsonlite::Object& o = rec.object();
    EXPECT_EQ(jsonlite::find(o, "kind")->str(), "sample");
    EXPECT_EQ(jsonlite::find(o, "live_nodes")->number(),
              static_cast<double>(s.census->liveNodes));
    ASSERT_NE(jsonlite::find(o, "stacks"), nullptr);
    const jsonlite::Array& stacks = jsonlite::find(o, "stacks")->array();
    ASSERT_EQ(stacks.size(), 1u);
    EXPECT_EQ(stacks[0].str(), "prof.test.jsonl");
    EXPECT_EQ(jsonlite::find(o, "level_nodes")->array().size(), 8u);
  }
  p.clear();
  clearCensus();
}

TEST(ProfSampler, BackgroundThreadTicksAndSpills) {
  std::string spillPath =
      testing::TempDir() + "hsis_prof_spill_test.census.jsonl";
  std::remove(spillPath.c_str());

  Profiler& p = Profiler::instance();
  ProfOptions opts;
  opts.intervalMs = 1;
  opts.jsonlPath = spillPath;
  p.start(opts);
  {
    // Keep a BDD manager busy so ticks see phases and censuses.
    Span span("prof.test.busy");
    hsis::BddManager mgr(16);
    for (int round = 0; round < 40; ++round) {
      hsis::Bdd f = buildXorChain(mgr, 8);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  p.stop();

  if (kEnabled) {
    EXPECT_GT(p.sampleCount(), 0u);
    std::string spilled = slurpFile(spillPath);
    ASSERT_FALSE(spilled.empty());
    EXPECT_EQ(firstLine(spilled), p.headerJson());
    // Every spilled line is valid JSON (the whole point of JSONL).
    std::istringstream lines(spilled);
    std::string line;
    size_t n = 0;
    while (std::getline(lines, line)) {
      EXPECT_NO_THROW(jsonlite::parse(line)) << "line " << n;
      ++n;
    }
    EXPECT_EQ(n, 1 + p.sampleCount() - p.droppedSamples());
  }
  p.clear();
  std::remove(spillPath.c_str());
}

// ------------------------------------------------------------ exit export

TEST(ProfFiles, WriteProfileFilesLandsBothFilesEvenAfterAbort) {
  std::string base = testing::TempDir() + "hsis_prof_abort_test";
  std::remove((base + ".folded").c_str());
  std::remove((base + ".census.jsonl").c_str());

  Profiler& p = Profiler::instance();
  p.stop();
  p.clear();
  ProfOptions opts;
  opts.intervalMs = 1000;
  p.start(opts);
  {
    Span span("prof.test.aborted");
    p.sampleOnce();
  }
  // Simulate a watchdog breach mid-run; the export must still happen.
  requestAbort("test abort", "prof.test.aborted");
  writeProfileFiles(base);
  clearAbort();

  EXPECT_FALSE(p.running());  // writeProfileFiles stops the sampler
  std::string folded = slurpFile(base + ".folded");
  std::string census = slurpFile(base + ".census.jsonl");
  ASSERT_FALSE(census.empty());
  jsonlite::Value header = jsonlite::parse(firstLine(census));
  EXPECT_EQ(jsonlite::find(header.object(), "schema")->str(), "hsis-prof-v1");
  if (kEnabled) {
    EXPECT_NE(folded.find("prof.test.aborted 1\n"), std::string::npos);
  } else {
    EXPECT_TRUE(folded.empty());
  }
  p.clear();
  std::remove((base + ".folded").c_str());
  std::remove((base + ".census.jsonl").c_str());
}

// --------------------------------------------------------------- CLI flags

TEST(ProfCli, StripRecognizesProfileFlags) {
  const char* raw[] = {"prog",           "--profile-out", "out/myprof",
                       "--profile-interval-ms", "5",      "design.v"};
  int argc = 6;
  char* argv[6];
  for (int i = 0; i < argc; ++i) argv[i] = const_cast<char*>(raw[i]);

  ObsCliOptions opts = stripObsCliFlags(argc, argv);
  EXPECT_TRUE(opts.profile);
  EXPECT_EQ(opts.profileBasePath, "out/myprof");
  EXPECT_EQ(opts.profileIntervalMs, 5u);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "design.v");
}

TEST(ProfCli, BareProfileFlagUsesDefaults) {
  const char* raw[] = {"prog", "--profile"};
  int argc = 2;
  char* argv[2];
  for (int i = 0; i < argc; ++i) argv[i] = const_cast<char*>(raw[i]);

  ObsCliOptions opts = stripObsCliFlags(argc, argv);
  EXPECT_TRUE(opts.profile);
  EXPECT_TRUE(opts.profileBasePath.empty());
  EXPECT_EQ(opts.profileIntervalMs, 0u);
  EXPECT_EQ(argc, 1);
}

}  // namespace
}  // namespace hsis::obs::prof
