// Unit and property-based tests for the BDD package.
#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "bdd/bdd.hpp"

namespace hsis {
namespace {

TEST(Bdd, TerminalBasics) {
  BddManager m(2);
  EXPECT_TRUE(m.bddOne().isOne());
  EXPECT_TRUE(m.bddZero().isZero());
  EXPECT_NE(m.bddOne(), m.bddZero());
  EXPECT_TRUE((!m.bddZero()).isOne());
  EXPECT_TRUE(m.bddOne().isConstant());
  Bdd nullBdd;
  EXPECT_TRUE(nullBdd.isNull());
  EXPECT_FALSE(m.bddOne().isNull());
}

TEST(Bdd, VarStructure) {
  BddManager m(3);
  Bdd a = m.bddVar(0);
  EXPECT_EQ(a.var(), 0u);
  EXPECT_TRUE(a.low().isZero());
  EXPECT_TRUE(a.high().isOne());
  Bdd na = m.bddLiteral(0, false);
  EXPECT_EQ(na, !a);
}

TEST(Bdd, HandleRefCounting) {
  BddManager m(4);
  size_t before = m.liveNodeCount();
  {
    Bdd f = m.bddVar(0) & m.bddVar(1) & m.bddVar(2);
    EXPECT_GT(m.liveNodeCount(), before);
  }
  m.gc();
  // After dropping the only handle, intermediate nodes are collectable;
  // only the single-variable nodes referenced by nothing remain collectable
  // too, so we are back at (or below) the initial live count.
  EXPECT_LE(m.liveNodeCount(), before + 3);
}

TEST(Bdd, BooleanAlgebraLaws) {
  BddManager m(4);
  Bdd a = m.bddVar(0), b = m.bddVar(1), c = m.bddVar(2);
  EXPECT_EQ(a & b, b & a);
  EXPECT_EQ(a | b, b | a);
  EXPECT_EQ((a & b) & c, a & (b & c));
  EXPECT_EQ(a & (b | c), (a & b) | (a & c));
  EXPECT_EQ(!(a & b), (!a) | (!b));
  EXPECT_EQ(!(a | b), (!a) & (!b));
  EXPECT_EQ(a ^ b, (a & (!b)) | ((!a) & b));
  EXPECT_TRUE((a | !a).isOne());
  EXPECT_TRUE((a & !a).isZero());
  EXPECT_EQ(!(!a), a);
}

TEST(Bdd, IteIsCanonical) {
  BddManager m(3);
  Bdd a = m.bddVar(0), b = m.bddVar(1), c = m.bddVar(2);
  EXPECT_EQ(m.ite(a, b, c), (a & b) | ((!a) & c));
  EXPECT_EQ(m.ite(a, m.bddOne(), m.bddZero()), a);
  EXPECT_EQ(m.ite(a, m.bddZero(), m.bddOne()), !a);
  EXPECT_EQ(m.ite(m.bddOne(), b, c), b);
  EXPECT_EQ(m.ite(m.bddZero(), b, c), c);
}

TEST(Bdd, Quantification) {
  BddManager m(4);
  Bdd a = m.bddVar(0), b = m.bddVar(1), c = m.bddVar(2);
  Bdd f = (a & b) | c;
  EXPECT_EQ(m.exists(f, a), b | c);
  EXPECT_EQ(m.forall(f, a), c);
  // quantifying a variable not in the support is identity
  Bdd d = m.bddVar(3);
  EXPECT_EQ(m.exists(f, d), f);
  EXPECT_EQ(m.forall(f, d), f);
  // multi-variable cube
  EXPECT_TRUE(m.exists(f, a & b & c).isOne());
  EXPECT_TRUE(m.forall(f, a & b & c).isZero());
  // duality
  EXPECT_EQ(m.forall(f, a & b), !m.exists(!f, a & b));
}

TEST(Bdd, AndExistsMatchesComposition) {
  BddManager m(6);
  std::mt19937 rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    // random functions over 6 vars from random minterm sets
    auto randomFn = [&]() {
      Bdd f = m.bddZero();
      for (int k = 0; k < 8; ++k) {
        Bdd cube = m.bddOne();
        for (BddVar v = 0; v < 6; ++v) {
          int r = static_cast<int>(rng() % 3);
          if (r == 0) cube &= m.bddVar(v);
          if (r == 1) cube &= !m.bddVar(v);
        }
        f |= cube;
      }
      return f;
    };
    Bdd f = randomFn(), g = randomFn();
    Bdd cube = m.bddVar(1) & m.bddVar(3) & m.bddVar(5);
    EXPECT_EQ(m.andExists(f, g, cube), m.exists(f & g, cube));
  }
}

TEST(Bdd, ConstrainAndRestrictAgreeOnCareSet) {
  BddManager m(5);
  std::mt19937 rng(42);
  auto randomFn = [&]() {
    Bdd f = m.bddZero();
    for (int k = 0; k < 6; ++k) {
      Bdd cube = m.bddOne();
      for (BddVar v = 0; v < 5; ++v) {
        int r = static_cast<int>(rng() % 3);
        if (r == 0) cube &= m.bddVar(v);
        if (r == 1) cube &= !m.bddVar(v);
      }
      f |= cube;
    }
    return f;
  };
  for (int iter = 0; iter < 30; ++iter) {
    Bdd f = randomFn();
    Bdd c = randomFn();
    if (c.isZero()) continue;
    // Both generalized cofactors agree with f wherever c holds.
    EXPECT_EQ(m.constrain(f, c) & c, f & c);
    EXPECT_EQ(m.restrict(f, c) & c, f & c);
  }
  EXPECT_THROW(m.constrain(m.bddVar(0), m.bddZero()), std::invalid_argument);
  EXPECT_THROW(m.restrict(m.bddVar(0), m.bddZero()), std::invalid_argument);
}

TEST(Bdd, RestrictShrinks) {
  BddManager m(6);
  Bdd a = m.bddVar(0), b = m.bddVar(1), c = m.bddVar(2);
  Bdd f = (a & b & c) | ((!a) & b & (!c)) | (a & (!b));
  // On the care set a=1, f loses its dependence on much of the structure.
  Bdd r = m.restrict(f, a);
  EXPECT_LE(r.nodeCount(), f.nodeCount());
  EXPECT_EQ(r & a, f & a);
}

TEST(Bdd, Cofactor) {
  BddManager m(3);
  Bdd a = m.bddVar(0), b = m.bddVar(1);
  Bdd f = (a & b) | ((!a) & (!b));
  EXPECT_EQ(m.cofactor(f, 0, true), b);
  EXPECT_EQ(m.cofactor(f, 0, false), !b);
}

TEST(Bdd, PermuteSwapsRails) {
  BddManager m(6);
  Bdd f = (m.bddVar(0) & m.bddVar(2)) | m.bddVar(4);
  std::vector<BddVar> map{1, 0, 3, 2, 5, 4};
  Bdd g = m.permute(f, map);
  EXPECT_EQ(g, (m.bddVar(1) & m.bddVar(3)) | m.bddVar(5));
  // applying the swap twice is the identity
  EXPECT_EQ(m.permute(g, map), f);
}

TEST(Bdd, Leq) {
  BddManager m(4);
  Bdd a = m.bddVar(0), b = m.bddVar(1);
  EXPECT_TRUE((a & b).leq(a));
  EXPECT_TRUE(a.leq(a | b));
  EXPECT_FALSE(a.leq(a & b));
  EXPECT_TRUE(m.bddZero().leq(a));
  EXPECT_TRUE(a.leq(m.bddOne()));
  // leq(f,g) <=> (f & !g) == 0
  Bdd f = a ^ b;
  Bdd g = a | b;
  EXPECT_EQ(f.leq(g), (f & !g).isZero());
}

TEST(Bdd, Support) {
  BddManager m(5);
  Bdd f = (m.bddVar(0) & m.bddVar(3)) | m.bddVar(4);
  std::vector<BddVar> s = m.support(f);
  EXPECT_EQ(s, (std::vector<BddVar>{0, 3, 4}));
  Bdd cube = m.supportCube(f);
  EXPECT_EQ(cube, m.bddVar(0) & m.bddVar(3) & m.bddVar(4));
  EXPECT_TRUE(m.support(m.bddOne()).empty());
}

TEST(Bdd, SatCount) {
  BddManager m(4);
  Bdd a = m.bddVar(0), b = m.bddVar(1);
  EXPECT_DOUBLE_EQ(m.satCount(a, 4), 8.0);
  EXPECT_DOUBLE_EQ(m.satCount(a & b, 4), 4.0);
  EXPECT_DOUBLE_EQ(m.satCount(a | b, 4), 12.0);
  EXPECT_DOUBLE_EQ(m.satCount(m.bddOne(), 4), 16.0);
  EXPECT_DOUBLE_EQ(m.satCount(m.bddZero(), 4), 0.0);
  EXPECT_DOUBLE_EQ(m.satCount(a ^ b, 2), 2.0);
}

TEST(Bdd, PickCubeSatisfies) {
  BddManager m(5);
  std::mt19937 rng(3);
  for (int iter = 0; iter < 20; ++iter) {
    Bdd f = m.bddZero();
    for (int k = 0; k < 4; ++k) {
      Bdd cube = m.bddOne();
      for (BddVar v = 0; v < 5; ++v) {
        int r = static_cast<int>(rng() % 3);
        if (r == 0) cube &= m.bddVar(v);
        if (r == 1) cube &= !m.bddVar(v);
      }
      f |= cube;
    }
    if (f.isZero()) continue;
    std::vector<int8_t> pick = m.pickCube(f);
    Bdd cube = m.cubeFromAssignment(pick);
    EXPECT_TRUE(cube.leq(f)) << "picked cube must imply f";
  }
  EXPECT_TRUE(m.pickCube(m.bddZero()).empty());
}

TEST(Bdd, ImpliesOperator) {
  BddManager m(2);
  Bdd a = m.bddVar(0), b = m.bddVar(1);
  EXPECT_EQ(a.implies(b), (!a) | b);
}

TEST(Bdd, GarbageCollectionKeepsLiveNodes) {
  BddManager m(8);
  Bdd keep = (m.bddVar(0) & m.bddVar(1)) | (m.bddVar(2) ^ m.bddVar(3));
  size_t keepCount = keep.nodeCount();
  // create garbage
  for (int i = 0; i < 1000; ++i) {
    Bdd tmp = m.bddVar(static_cast<BddVar>(i % 8)) ^ m.bddVar(static_cast<BddVar>((i + 1) % 8));
    (void)tmp;
  }
  m.gc();
  EXPECT_EQ(keep.nodeCount(), keepCount);
  EXPECT_EQ(keep, (m.bddVar(0) & m.bddVar(1)) | (m.bddVar(2) ^ m.bddVar(3)));
}

TEST(Bdd, ComputedCacheSurvivesGc) {
  BddManager m(16);
  std::mt19937 rng(11);
  auto randomFn = [&] {
    Bdd f = m.bddZero();
    for (int k = 0; k < 24; ++k) {
      Bdd cube = m.bddOne();
      for (BddVar v = 0; v < 16; ++v) {
        if (rng() % 3 == 0) cube &= m.bddVar(v);
        else if (rng() % 2 == 0) cube &= !m.bddVar(v);
      }
      f |= cube;
    }
    return f;
  };
  Bdd f = randomFn(), g = randomFn();
  Bdd fg = f & g;  // populates the computed cache
  m.gc();          // keep-alive sweep: every cached operand is still live
  size_t hitsBefore = m.stats().cacheHits;
  Bdd again = m.andOp(f, g);  // should be answered from the surviving cache
  EXPECT_EQ(again, fg);
  EXPECT_GT(m.stats().cacheHits, hitsBefore);
}

TEST(Bdd, SetOrderPreservesFunctions) {
  BddManager m(6);
  Bdd f = (m.bddVar(0) & m.bddVar(1)) | (m.bddVar(2) & m.bddVar(3)) |
          (m.bddVar(4) & m.bddVar(5));
  double count = m.satCount(f, 6);
  m.setOrder({0, 2, 4, 1, 3, 5});
  EXPECT_DOUBLE_EQ(m.satCount(f, 6), count);
  // rebuilding the same function still yields the same node
  Bdd g = (m.bddVar(0) & m.bddVar(1)) | (m.bddVar(2) & m.bddVar(3)) |
          (m.bddVar(4) & m.bddVar(5));
  EXPECT_EQ(f, g);
}

TEST(Bdd, SiftReducesInterleavedConjunction) {
  BddManager m(16);
  // Force the worst order for (x0&y0)|(x1&y1)|... : all x's above all y's.
  std::vector<BddVar> badOrder;
  for (BddVar v = 0; v < 16; v += 2) badOrder.push_back(v);
  for (BddVar v = 1; v < 16; v += 2) badOrder.push_back(v);
  m.setOrder(badOrder);
  Bdd f = m.bddZero();
  for (BddVar v = 0; v < 16; v += 2) f |= m.bddVar(v) & m.bddVar(v + 1);
  size_t before = f.nodeCount();
  double count = m.satCount(f, 16);
  m.sift();
  EXPECT_LT(f.nodeCount(), before);
  EXPECT_DOUBLE_EQ(m.satCount(f, 16), count);
}

TEST(Bdd, NewVarAtLevel) {
  BddManager m(2);
  Bdd a = m.bddVar(0), b = m.bddVar(1);
  Bdd f = a & b;
  BddVar v = m.newVarAtLevel(0);
  EXPECT_EQ(m.level(v), 0u);
  EXPECT_EQ(m.level(0), 1u);
  EXPECT_EQ(f, m.bddVar(0) & m.bddVar(1));  // unaffected
}

TEST(Bdd, ToDotContainsStructure) {
  BddManager m(2);
  Bdd f = m.bddVar(0) & m.bddVar(1);
  std::vector<Bdd> roots{f};
  std::vector<std::string> names{"f"};
  std::string dot = m.toDot(roots, names, {"alpha", "beta"});
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("beta"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Bdd, SharedNodeCount) {
  BddManager m(4);
  Bdd f = m.bddVar(0) & m.bddVar(1);
  Bdd g = m.bddVar(0) & m.bddVar(1) & m.bddVar(2);
  std::vector<Bdd> roots{f, g};
  // shared count is less than the sum of individual counts
  EXPECT_LT(m.sharedNodeCount(roots), f.nodeCount() + g.nodeCount());
}

// Property-style sweep: exhaustive semantics check against truth tables on
// a small variable count.
class BddTruthTable : public ::testing::TestWithParam<int> {};

TEST_P(BddTruthTable, OperationsMatchTruthTables) {
  int seed = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed));
  constexpr int kVars = 4;
  BddManager m(kVars);

  // random truth tables
  uint16_t tf = static_cast<uint16_t>(rng());
  uint16_t tg = static_cast<uint16_t>(rng());

  auto buildFromTable = [&](uint16_t t) {
    Bdd f = m.bddZero();
    for (int minterm = 0; minterm < 16; ++minterm) {
      if ((t >> minterm & 1) == 0) continue;
      Bdd cube = m.bddOne();
      for (int v = 0; v < kVars; ++v)
        cube &= m.bddLiteral(static_cast<BddVar>(v), (minterm >> v & 1) != 0);
      f |= cube;
    }
    return f;
  };
  auto evalBdd = [&](const Bdd& f, int minterm) {
    Bdd cube = m.bddOne();
    for (int v = 0; v < kVars; ++v)
      cube &= m.bddLiteral(static_cast<BddVar>(v), (minterm >> v & 1) != 0);
    return !(f & cube).isZero();
  };

  Bdd f = buildFromTable(tf), g = buildFromTable(tg);
  for (int minterm = 0; minterm < 16; ++minterm) {
    bool vf = (tf >> minterm & 1) != 0;
    bool vg = (tg >> minterm & 1) != 0;
    EXPECT_EQ(evalBdd(f, minterm), vf);
    EXPECT_EQ(evalBdd(f & g, minterm), vf && vg);
    EXPECT_EQ(evalBdd(f | g, minterm), vf || vg);
    EXPECT_EQ(evalBdd(f ^ g, minterm), vf != vg);
    EXPECT_EQ(evalBdd(!f, minterm), !vf);
  }
  // exists over var 0 == f|x0=0 OR f|x0=1
  Bdd ex = m.exists(f, m.bddVar(0));
  for (int minterm = 0; minterm < 16; ++minterm) {
    bool expected = (tf >> (minterm & ~1) & 1) != 0 || (tf >> (minterm | 1) & 1) != 0;
    EXPECT_EQ(evalBdd(ex, minterm), expected);
  }
  EXPECT_DOUBLE_EQ(m.satCount(f, kVars), static_cast<double>(std::popcount(tf)));
}

INSTANTIATE_TEST_SUITE_P(RandomTables, BddTruthTable, ::testing::Range(0, 25));

}  // namespace
}  // namespace hsis
