// Tests for bisimulation minimization and equivalence don't cares.
#include <gtest/gtest.h>

#include "blifmv/blifmv.hpp"
#include "fsm/image.hpp"
#include "minimize/bisim.hpp"

namespace hsis {
namespace {

struct BisimFixture {
  BisimFixture(const char* text) {
    flat = blifmv::flatten(blifmv::parse(text));
    fsm = std::make_unique<Fsm>(mgr, flat);
    tr = TransitionRelation::monolithic(*fsm);
    reached = reachableStates(*tr, fsm->initialStates()).reached;
  }
  BddManager mgr;
  blifmv::Model flat;
  std::unique_ptr<Fsm> fsm;
  std::optional<TransitionRelation> tr;
  Bdd reached;
};

// Two redundant copies of the same bit: (a, b) always move in lockstep,
// and only `a` is observable — states (0,0)/(1,1) are the only reachable
// ones, and a 4-state machine collapses to 2 classes.
const char* kLockstep = R"(
.model lockstep
.table a x
0 1
1 0
.table a y
0 1
1 0
.latch x a
.latch y b
.reset a
0
.reset b
0
.end
)";

TEST(Bisim, LockstepCollapses) {
  BisimFixture f(kLockstep);
  MvVarId a = *f.fsm->signalVar("a");
  std::vector<Bdd> obs{f.fsm->space().literal(a, 1)};
  BisimResult r = bisimulation(*f.fsm, *f.tr, obs, f.reached);
  EXPECT_DOUBLE_EQ(r.classCount, 2.0);
  EXPECT_GE(r.refinementIterations, 1u);
  // the equivalence is reflexive on the care set
  // E(x,x): substituting shadow = original keeps all care states
  Bdd diag = r.equivalence;
  for (MvVarId v : f.fsm->stateVars()) {
    for (BddVar bit : f.fsm->space().bits(v)) {
      BddVar shadow = r.shadowMap[bit];
      // constrain shadow bit == original bit
      diag &= (f.mgr.bddVar(bit) & f.mgr.bddVar(shadow)) |
              ((!f.mgr.bddVar(bit)) & (!f.mgr.bddVar(shadow)));
    }
  }
  Bdd diagProj = f.mgr.exists(
      diag, [&] {
        Bdd cube = f.mgr.bddOne();
        for (MvVarId v : f.fsm->stateVars())
          for (BddVar bit : f.fsm->space().bits(v))
            cube &= f.mgr.bddVar(r.shadowMap[bit]);
        return cube;
      }());
  EXPECT_EQ(diagProj, f.reached);
}

TEST(Bisim, DistinguishesObservations) {
  BisimFixture f(kLockstep);
  MvVarId a = *f.fsm->signalVar("a");
  MvVarId b = *f.fsm->signalVar("b");
  // observing both bits separately still collapses nothing more than
  // reachability already does: 2 reachable states, 2 classes
  std::vector<Bdd> obs{f.fsm->space().literal(a, 1), f.fsm->space().literal(b, 1)};
  BisimResult r = bisimulation(*f.fsm, *f.tr, obs, f.reached);
  EXPECT_DOUBLE_EQ(r.classCount, 2.0);
}

TEST(Bisim, NoObservationsCollapseEverything) {
  BisimFixture f(kLockstep);
  BisimResult r = bisimulation(*f.fsm, *f.tr, {}, f.reached);
  // with no observations every reachable state is equivalent (both states
  // can mimic each other forever)
  EXPECT_DOUBLE_EQ(r.classCount, 1.0);
}

// A counter whose upper value is unobservable: 8 states fold onto 4 when
// only the low 2 bits are observed... here: mod-4 behaviour duplicated in
// s=4..7.
const char* kFolded = R"(
.model folded
.mv s, ns 8
.table s ns
0 1
1 2
2 3
3 0
4 5
5 6
6 7
7 4
.latch ns s
.reset s
(0,4)
.end
)";

TEST(Bisim, FoldedCounter) {
  BisimFixture f(kFolded);
  MvVarId s = *f.fsm->signalVar("s");
  // observe s mod 4 == 0
  std::vector<Bdd> obs{f.fsm->space().literal(s, 0) | f.fsm->space().literal(s, 4)};
  BisimResult r = bisimulation(*f.fsm, *f.tr, obs, f.reached);
  EXPECT_DOUBLE_EQ(f.fsm->countStates(f.reached), 8.0);
  EXPECT_DOUBLE_EQ(r.classCount, 4.0);

  // shrink/expand round trip on a class-closed set
  Bdd set = f.fsm->space().literal(s, 1) | f.fsm->space().literal(s, 5);
  Bdd shrunk = shrinkToRepresentatives(*f.fsm, r, set);
  Bdd expanded = expandByEquivalence(*f.fsm, r, shrunk & r.representatives);
  EXPECT_EQ(expanded, set);
  EXPECT_LE(shrunk.nodeCount(), set.nodeCount() + 1);
}

TEST(Bisim, InequivalentStatesStaySeparate) {
  BisimFixture f(kFolded);
  MvVarId s = *f.fsm->signalVar("s");
  // observing the exact value keeps all 8 states distinct
  std::vector<Bdd> obs;
  for (uint32_t k = 0; k < 8; ++k) obs.push_back(f.fsm->space().literal(s, k));
  BisimResult r = bisimulation(*f.fsm, *f.tr, obs, f.reached);
  EXPECT_DOUBLE_EQ(r.classCount, 8.0);
}

TEST(Bisim, NondeterminismRespected) {
  // s=0 may stay or advance; s=2 must advance. With the observation
  // "s==1", states 0 and 2 are NOT bisimilar (0 can refuse to reach 1's
  // successor pattern... actually 0 has a self-loop option 2 lacks).
  BisimFixture f(R"(
.model nd
.mv s, ns 4
.table s ns
0 (0,1)
1 0
2 1
3 3
.latch ns s
.reset s
(0,2)
.end
)");
  MvVarId s = *f.fsm->signalVar("s");
  std::vector<Bdd> obs{f.fsm->space().literal(s, 1)};
  BisimResult r = bisimulation(*f.fsm, *f.tr, obs, f.reached);
  // 0 and 2 both unobservable and both can reach 1 in one step, but 0 can
  // also loop to itself (an unobservable state that can loop), while 2's
  // only move hits 1. They must be distinguished.
  Bdd zero = f.fsm->space().literal(s, 0);
  Bdd two = f.mgr.permute(f.fsm->space().literal(s, 2), r.shadowMap);
  EXPECT_TRUE((r.equivalence & zero & two).isZero());
}

}  // namespace
}  // namespace hsis
