// hsis::Session — the reusable verification session under Environment and
// the hsis_serve worker pool: digest-keyed load (the compiled-design cache
// primitive), abort safety, and multi-session isolation.
#include <gtest/gtest.h>

#include <thread>

#include "hsis/session.hpp"
#include "models/models.hpp"
#include "obs/control.hpp"
#include "obs/prof.hpp"

namespace {

using namespace hsis;

Session::DesignSource modelSource(const char* name) {
  const models::ModelDef* m = models::find(name);
  EXPECT_NE(m, nullptr) << name;
  Session::DesignSource src;
  src.kind = Session::DesignSource::Kind::Verilog;
  src.text = std::string(m->verilog);
  src.top = std::string(m->top);
  return src;
}

PifFile modelPif(const char* name) {
  return parsePif(std::string(models::find(name)->pif));
}

TEST(Session, LoadBuildCheckThenResidentReloadIsNoOp) {
  Session s;
  EXPECT_FALSE(s.resident());
  Session::DesignSource src = modelSource("pingpong");

  EXPECT_TRUE(s.load(src));  // cold: compiled
  s.build();
  EXPECT_TRUE(s.resident());
  EXPECT_EQ(s.digest(), src.digest());
  EXPECT_GT(s.lastBuildMicros(), 0u);

  PifFile pif = modelPif("pingpong");
  s.setFairness(pif.fairness);
  size_t checked = 0;
  for (const PifProperty& p : pif.properties) {
    BugReport r = s.check(p);
    EXPECT_TRUE(r.holds) << r.propertyName;
    ++checked;
  }
  EXPECT_GT(checked, 0u);

  // Same source again: resident no-op — nothing parsed or rebuilt.
  EXPECT_FALSE(s.load(src));
  s.build();
  EXPECT_EQ(s.lastBuildMicros(), 0u);
  EXPECT_TRUE(s.resident());

  // The resident design still answers checks after the no-op reload.
  BugReport again = s.check(pif.properties.front());
  EXPECT_TRUE(again.holds);
}

TEST(Session, LoadingDifferentDesignRecompiles) {
  Session s;
  ASSERT_TRUE(s.load(modelSource("pingpong")));
  s.build();
  std::string first = s.digest();

  ASSERT_TRUE(s.load(modelSource("philos")));  // different digest: recompile
  s.build();
  EXPECT_NE(s.digest(), first);
  EXPECT_GT(s.lastBuildMicros(), 0u);

  PifFile pif = modelPif("philos");
  s.setFairness(pif.fairness);
  BugReport r = s.check(pif.properties.front());  // mutex: holds
  EXPECT_TRUE(r.holds);
}

TEST(Session, UnloadLeavesSessionReusable) {
  Session s;
  ASSERT_TRUE(s.load(modelSource("pingpong")));
  s.build();
  s.unload();
  EXPECT_FALSE(s.resident());
  EXPECT_TRUE(s.digest().empty());

  // A fresh load after unload is a full (re)compile.
  EXPECT_TRUE(s.load(modelSource("pingpong")));
  s.build();
  EXPECT_TRUE(s.resident());
}

TEST(Session, AbortDuringCheckLeavesDesignResident) {
  obs::clearAbort();
  Session s;
  ASSERT_TRUE(s.load(modelSource("philos")));
  s.build();
  PifFile pif = modelPif("philos");
  s.setFairness(pif.fairness);

  // Pre-raise a bound task slot: the first safe point inside the check
  // unwinds, like a per-request watchdog breach in the hsis_serve worker.
  obs::TaskAbort slot;
  obs::bindTaskAbort(&slot);
  slot.request("test: simulated budget breach");
  EXPECT_THROW(s.check(pif.properties.front()), obs::AbortedError);
  slot.clear();
  obs::bindTaskAbort(nullptr);

  // The worker-survival contract: the built design stays resident and the
  // session keeps answering.
  EXPECT_TRUE(s.resident());
  BugReport r = s.check(pif.properties.front());
  EXPECT_TRUE(r.holds);
}

TEST(Session, AbortDuringBuildLeavesSessionEmpty) {
  obs::clearAbort();
  Session s;
  obs::TaskAbort slot;
  obs::bindTaskAbort(&slot);
  slot.request("test: abort before build");
  ASSERT_TRUE(s.load(modelSource("scheduler")));
  EXPECT_THROW(s.build(), obs::AbortedError);
  slot.clear();
  obs::bindTaskAbort(nullptr);

  // No half-built machine, no digest claim: the next load starts clean.
  EXPECT_FALSE(s.resident());
  EXPECT_TRUE(s.digest().empty());
  EXPECT_TRUE(s.load(modelSource("scheduler")));
  s.build();
  EXPECT_TRUE(s.resident());
}

TEST(Session, TwoConcurrentSessionsStayIndependent) {
  // Two Sessions (two BddManagers, one process) running reachability + CTL
  // on different models from different threads — the hsis_serve pool's
  // parallelism in miniature. Each thread records its own verdicts and its
  // manager's census; the BDD heaps must not bleed into each other.
  struct Result {
    double reached = 0.0;
    size_t passed = 0, total = 0;
    hsis::obs::prof::BddCensus census;
  };
  Result r1, r2;

  auto run = [](const char* model, Result& out) {
    Session s;
    ASSERT_TRUE(s.load(modelSource(model)));
    s.build();
    PifFile pif = modelPif(model);
    s.setFairness(pif.fairness);
    out.reached = s.reachedStates();
    for (const PifProperty& p : pif.properties) {
      if (p.kind != PifProperty::Kind::Ctl) continue;  // CTL: same manager
      BugReport r = s.check(p);
      ++out.total;
      if (r.holds) ++out.passed;
    }
    out.census = s.manager().census();
  };

  std::thread t1([&] { run("pingpong", r1); });
  std::thread t2([&] { run("gigamax", r2); });
  t1.join();
  t2.join();

  // Both sessions produced their documented single-session results even
  // though they ran concurrently.
  EXPECT_GT(r1.reached, 0.0);
  EXPECT_GT(r2.reached, 0.0);
  EXPECT_NE(r1.reached, r2.reached);  // different models, different spaces
  EXPECT_EQ(r1.passed, r1.total);
  EXPECT_EQ(r2.passed, r2.total);
  EXPECT_GT(r1.total, 0u);
  EXPECT_GT(r2.total, 0u);

  // Census accounting is per manager: each heap holds its own live nodes
  // and each census satisfies its own level-sum invariant.
  EXPECT_GT(r1.census.liveNodes, 0u);
  EXPECT_GT(r2.census.liveNodes, 0u);
  auto levelSum = [](const hsis::obs::prof::BddCensus& c) {
    uint64_t sum = 0;
    for (uint64_t n : c.levelNodes) sum += n;
    return sum;
  };
  EXPECT_EQ(levelSum(r1.census), r1.census.liveNodes);
  EXPECT_EQ(levelSum(r2.census), r2.census.liveNodes);
  // gigamax is a much larger design than pingpong; if the managers shared
  // state the counts could not stay this far apart.
  EXPECT_NE(r1.census.liveNodes, r2.census.liveNodes);
}

}  // namespace
