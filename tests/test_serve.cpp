// hsis::serve — wire protocol round-trips, the LRU compiled-design cache,
// the SessionPool (cold/warm hits, budget aborts, admission control), and
// a socket-level end-to-end pass over the Unix-domain server.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "cex/cex.hpp"
#include "models/models.hpp"
#include "serve/cache.hpp"
#include "serve/pool.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace hsis::serve;

hsis::Session::DesignSource modelSource(const char* name) {
  const hsis::models::ModelDef* m = hsis::models::find(name);
  EXPECT_NE(m, nullptr) << name;
  hsis::Session::DesignSource src;
  src.kind = hsis::Session::DesignSource::Kind::Verilog;
  src.text = std::string(m->verilog);
  src.top = std::string(m->top);
  return src;
}

CheckRequest modelCheck(const char* name, const char* id) {
  CheckRequest c;
  c.id = id;
  c.name = name;
  c.design = modelSource(name);
  c.pif = std::string(hsis::models::find(name)->pif);
  return c;
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, CheckRequestRoundTrips) {
  Request req;
  req.op = Request::Op::Check;
  req.id = "r-42";
  req.check.id = "r-42";
  req.check.name = "my design";
  req.check.design.kind = hsis::Session::DesignSource::Kind::BlifMv;
  req.check.design.text = ".model m\n.inputs a\n.end\n";
  req.check.pif = "CTL \"p\": AG(a=1);\n";
  req.check.budget = {2.5, 64};
  req.check.wantTrace = false;

  Request back = parseRequest(renderRequest(req));
  EXPECT_EQ(back.op, Request::Op::Check);
  EXPECT_EQ(back.id, "r-42");
  EXPECT_EQ(back.check.name, "my design");
  EXPECT_EQ(back.check.design.kind,
            hsis::Session::DesignSource::Kind::BlifMv);
  EXPECT_EQ(back.check.design.text, req.check.design.text);
  EXPECT_EQ(back.check.pif, req.check.pif);
  EXPECT_DOUBLE_EQ(back.check.budget.wallSeconds, 2.5);
  EXPECT_EQ(back.check.budget.rssMb, 64u);
  EXPECT_FALSE(back.check.wantTrace);
  // Round-tripping preserves the digest — the cache key survives the wire.
  EXPECT_EQ(back.check.design.digest(), req.check.design.digest());
}

TEST(ServeProtocol, ControlRequestsRoundTrip) {
  for (Request::Op op :
       {Request::Op::Ping, Request::Op::Stats, Request::Op::Shutdown}) {
    Request req;
    req.op = op;
    req.id = "c-1";
    Request back = parseRequest(renderRequest(req));
    EXPECT_EQ(back.op, op);
    EXPECT_EQ(back.id, "c-1");
  }
}

TEST(ServeProtocol, MalformedRequestsThrow) {
  EXPECT_THROW(parseRequest("not json"), ProtocolError);
  EXPECT_THROW(parseRequest("[1,2]"), ProtocolError);
  EXPECT_THROW(parseRequest(R"({"op": "launch", "id": "x"})"),
               ProtocolError);
  EXPECT_THROW(parseRequest(R"({"op": "check", "id": "x"})"),
               ProtocolError);  // no design
  EXPECT_THROW(
      parseRequest(
          R"({"op": "check", "id": "x", "design": {"kind": "vhdl", "text": "e"}})"),
      ProtocolError);  // bad kind
  EXPECT_THROW(
      parseRequest(
          R"({"op": "check", "id": "x", "design": {"kind": "verilog", "text": ""}})"),
      ProtocolError);  // empty text
}

TEST(ServeProtocol, FramesParseBackWithEscapes) {
  VerdictInfo v;
  v.property = "no \"deadlock\"";
  v.holds = false;
  v.seconds = 0.25;
  v.trace = "step 0: a=1\nstep 1: a=0";
  Frame f = parseFrame(verdictFrame("id-1", v));
  EXPECT_EQ(f.event, "verdict");
  EXPECT_EQ(f.id, "id-1");
  const auto* prop = hsis::obs::jsonlite::find(f.body.object(), "property");
  ASSERT_NE(prop, nullptr);
  EXPECT_EQ(prop->str(), v.property);
  const auto* trace = hsis::obs::jsonlite::find(f.body.object(), "trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->str(), v.trace);

  DoneStats stats;
  stats.cacheHit = true;
  stats.properties = 3;
  Frame done = parseFrame(doneFrame("id-1", "pass", "", stats));
  EXPECT_EQ(done.event, "done");
  Frame err = parseFrame(errorFrame("id-2", "queue full"));
  EXPECT_EQ(err.event, "error");
  EXPECT_EQ(err.id, "id-2");
}

// ------------------------------------------------------------------- cache

TEST(ServeCache, LruAssignsEmptyThenEvictsColdest) {
  DesignCache cache(2);
  EXPECT_FALSE(cache.find("a").has_value());

  size_t slotA = cache.assign("a");
  size_t slotB = cache.assign("b");
  EXPECT_NE(slotA, slotB);
  EXPECT_EQ(cache.evictions(), 0u);  // both landed in empty slots
  EXPECT_EQ(cache.find("a"), std::optional<size_t>(slotA));

  // Touch "a" so "b" is the LRU victim for the next assignment.
  cache.touch("a");
  size_t slotC = cache.assign("c");
  EXPECT_EQ(slotC, slotB);  // cold design evicted
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.find("b").has_value());
  EXPECT_EQ(cache.find("a"), std::optional<size_t>(slotA));

  // assign() is idempotent for a mapped digest.
  EXPECT_EQ(cache.assign("a"), slotA);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ServeCache, DropFreesTheSlot) {
  DesignCache cache(1);
  size_t slot = cache.assign("x");
  cache.drop("x");
  EXPECT_FALSE(cache.find("x").has_value());
  // The freed slot is reused without counting an eviction.
  EXPECT_EQ(cache.assign("y"), slot);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.residents().size(), 1u);
  EXPECT_EQ(cache.residents()[0], "y");
}

// -------------------------------------------------------------------- pool

/// Collects a request's frames and lets the test block on the terminal one.
struct FrameLog {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Frame> frames;
  bool done = false;

  FrameSink sink() {
    return [this](const std::string& line) {
      Frame f = parseFrame(line);
      std::lock_guard<std::mutex> lock(mu);
      if (f.event == "done" || f.event == "error") done = true;
      frames.push_back(std::move(f));
      cv.notify_all();
    };
  }
  bool waitDone(int seconds = 60) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::seconds(seconds),
                       [&] { return done; });
  }
  const Frame* find(const char* event) {
    std::lock_guard<std::mutex> lock(mu);
    for (const Frame& f : frames) {
      if (f.event == event) return &f;
    }
    return nullptr;
  }
  std::string doneVerdict() {
    const Frame* f = find("done");
    if (f == nullptr) return "";
    const auto* v = hsis::obs::jsonlite::find(f->body.object(), "verdict");
    return v != nullptr && v->isString() ? v->str() : "";
  }
  std::string doneCache() {
    const Frame* f = find("done");
    if (f == nullptr) return "";
    const auto* stats = hsis::obs::jsonlite::find(f->body.object(), "stats");
    if (stats == nullptr || !stats->isObject()) return "";
    const auto* c = hsis::obs::jsonlite::find(stats->object(), "cache");
    return c != nullptr && c->isString() ? c->str() : "";
  }
  double doneReadMicros() {
    const Frame* f = find("done");
    if (f == nullptr) return -1;
    const auto* stats = hsis::obs::jsonlite::find(f->body.object(), "stats");
    if (stats == nullptr || !stats->isObject()) return -1;
    const auto* r = hsis::obs::jsonlite::find(stats->object(), "read_micros");
    return r != nullptr && r->isNumber() ? r->number() : -1;
  }
};

TEST(ServePool, ColdMissThenWarmHitSkipsCompile) {
  PoolOptions opts;
  opts.workers = 1;
  SessionPool pool(opts);

  FrameLog cold;
  ASSERT_TRUE(pool.submit(modelCheck("pingpong", "cold"), cold.sink()));
  ASSERT_TRUE(cold.waitDone());
  EXPECT_EQ(cold.doneVerdict(), "pass");
  EXPECT_EQ(cold.doneCache(), "miss");
  EXPECT_GT(cold.doneReadMicros(), 0.0);

  FrameLog warm;
  ASSERT_TRUE(pool.submit(modelCheck("pingpong", "warm"), warm.sink()));
  ASSERT_TRUE(warm.waitDone());
  EXPECT_EQ(warm.doneVerdict(), "pass");
  // The acceptance-criteria invariant: a cache-resident request skips
  // parse/flatten/TR entirely — hit with zero read time.
  EXPECT_EQ(warm.doneCache(), "hit");
  EXPECT_EQ(warm.doneReadMicros(), 0.0);

  SessionPool::Stats s = pool.stats();
  EXPECT_EQ(s.cacheHits, 1u);
  EXPECT_EQ(s.cacheMisses, 1u);
  EXPECT_EQ(s.completed, 2u);
  pool.shutdown(false);
}

TEST(ServePool, BudgetAbortAnswersAbortedAndWorkerSurvives) {
  PoolOptions opts;
  opts.workers = 1;
  SessionPool pool(opts);

  // 2mdlc runs for hundreds of milliseconds; a 50 ms wall budget breaches
  // mid-request. The watchdog targets the worker's TaskAbort slot, so the
  // request unwinds at a safe point and answers `aborted`.
  CheckRequest slow = modelCheck("2mdlc", "over-budget");
  slow.budget.wallSeconds = 0.05;
  FrameLog aborted;
  ASSERT_TRUE(pool.submit(slow, aborted.sink()));
  ASSERT_TRUE(aborted.waitDone());
  EXPECT_EQ(aborted.doneVerdict(), "aborted");

  // The worker (and its Session) survives: the next request on the same
  // worker completes normally.
  FrameLog after;
  ASSERT_TRUE(pool.submit(modelCheck("pingpong", "after"), after.sink()));
  ASSERT_TRUE(after.waitDone());
  EXPECT_EQ(after.doneVerdict(), "pass");

  SessionPool::Stats s = pool.stats();
  EXPECT_EQ(s.aborted, 1u);
  EXPECT_EQ(s.completed, 1u);
  pool.shutdown(false);
}

TEST(ServePool, FullQueueRejectsWithErrorFrame) {
  PoolOptions opts;
  opts.workers = 1;
  opts.maxQueue = 0;  // reject everything at admission
  SessionPool pool(opts);

  FrameLog rejected;
  EXPECT_FALSE(pool.submit(modelCheck("pingpong", "r"), rejected.sink()));
  ASSERT_TRUE(rejected.waitDone(5));
  const Frame* err = rejected.find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(pool.stats().rejected, 1u);
  pool.shutdown(false);
}

TEST(ServePool, ShutdownRejectsLateSubmissions) {
  PoolOptions opts;
  opts.workers = 1;
  SessionPool pool(opts);
  pool.shutdown(false);
  FrameLog late;
  EXPECT_FALSE(pool.submit(modelCheck("pingpong", "late"), late.sink()));
  ASSERT_TRUE(late.waitDone(5));
  EXPECT_NE(late.find("error"), nullptr);
}

TEST(ServePool, FailingCheckCapturesCexArtifact) {
  if (!hsis::cex::cexEnabled()) GTEST_SKIP() << "cex disabled";
  PoolOptions opts;
  opts.workers = 1;
  opts.artifactDir = ::testing::TempDir() + "hsis_cex_pool_" +
                     std::to_string(::getpid());
  SessionPool pool(opts);

  // philos ships a deliberately failing property (no_deadlock), so the
  // request must come back "fail" with a replay-verified artifact pointed
  // at by the done frame.
  FrameLog log;
  ASSERT_TRUE(pool.submit(modelCheck("philos", "cex1"), log.sink()));
  ASSERT_TRUE(log.waitDone());
  EXPECT_EQ(log.doneVerdict(), "fail");

  const Frame* done = log.find("done");
  ASSERT_NE(done, nullptr);
  const auto* stats = hsis::obs::jsonlite::find(done->body.object(), "stats");
  ASSERT_NE(stats, nullptr);
  const auto* cexObj = hsis::obs::jsonlite::find(stats->object(), "cex");
  ASSERT_NE(cexObj, nullptr) << "done frame carries no cex pointer";
  ASSERT_TRUE(cexObj->isObject());
  const auto* path = hsis::obs::jsonlite::find(cexObj->object(), "path");
  const auto* replay = hsis::obs::jsonlite::find(cexObj->object(), "replay");
  ASSERT_NE(path, nullptr);
  ASSERT_NE(replay, nullptr);
  EXPECT_EQ(replay->str(), "verified");

  // The artifact pair exists on disk and the JSON parses back.
  std::string jsonPath = path->str() + "/cex.json";
  std::ifstream in(jsonPath);
  ASSERT_TRUE(in.good()) << jsonPath;
  std::ostringstream text;
  text << in.rdbuf();
  hsis::cex::Artifact art = hsis::cex::parseJson(text.str());
  EXPECT_EQ(art.propertyName, "no_deadlock");
  EXPECT_FALSE(art.steps.empty());
  EXPECT_EQ(art.replay, "verified");
  std::ifstream vcd(path->str() + "/cex.vcd");
  EXPECT_TRUE(vcd.good());

  EXPECT_EQ(pool.stats().cexCaptures, 1u);
  pool.shutdown(false);
  std::remove((path->str() + "/cex.json").c_str());
  std::remove((path->str() + "/cex.vcd").c_str());
}

// ------------------------------------------------------------ socket e2e

int connectTo(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << strerror(errno);
  return fd;
}

void sendLine(int fd, std::string line) {
  line += '\n';
  ASSERT_EQ(::send(fd, line.data(), line.size(), 0),
            static_cast<ssize_t>(line.size()));
}

std::string readLine(int fd, std::string& buf) {
  for (;;) {
    size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return "";
    buf.append(chunk, static_cast<size_t>(n));
  }
}

TEST(ServeServer, SocketEndToEnd) {
  ServerOptions opts;
  opts.socketPath =
      "/tmp/hsis_serve_test_" + std::to_string(::getpid()) + ".sock";
  opts.version = "hsis_serve test";
  opts.pool.workers = 1;
  Server server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.bind(&error)) << error;
  std::thread serverThread([&] { server.run(); });

  int fd = connectTo(server.socketPath());
  std::string buf;

  Request ping;
  ping.op = Request::Op::Ping;
  ping.id = "p1";
  sendLine(fd, renderRequest(ping));
  Frame pong = parseFrame(readLine(fd, buf));
  EXPECT_EQ(pong.event, "pong");
  EXPECT_EQ(pong.id, "p1");

  Request check;
  check.op = Request::Op::Check;
  check.id = "c1";
  check.check = modelCheck("pingpong", "c1");
  sendLine(fd, renderRequest(check));
  std::string verdict, cache;
  for (;;) {
    std::string line = readLine(fd, buf);
    ASSERT_FALSE(line.empty()) << "connection died mid-stream";
    Frame f = parseFrame(line);
    EXPECT_EQ(f.id, "c1");
    if (f.event == "loaded") {
      const auto* c = hsis::obs::jsonlite::find(f.body.object(), "cache");
      if (c != nullptr && c->isString()) cache = c->str();
    }
    if (f.event == "done") {
      const auto* v = hsis::obs::jsonlite::find(f.body.object(), "verdict");
      if (v != nullptr && v->isString()) verdict = v->str();
      break;
    }
    ASSERT_NE(f.event, "error");
  }
  EXPECT_EQ(verdict, "pass");
  EXPECT_EQ(cache, "miss");

  Request bye;
  bye.op = Request::Op::Shutdown;
  bye.id = "s1";
  sendLine(fd, renderRequest(bye));
  Frame byeReply = parseFrame(readLine(fd, buf));
  EXPECT_EQ(byeReply.event, "bye");

  serverThread.join();
  server.pool().shutdown(false);
  ::close(fd);
  ::unlink(server.socketPath().c_str());
}

}  // namespace
