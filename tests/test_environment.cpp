// Tests for the top-level hsis::Environment (the Figure-1 toolflow).
#include <gtest/gtest.h>

#include "hsis/environment.hpp"

namespace hsis {
namespace {

const char* kMutexVerilog = R"(
module top;
  wire clk;
  enum { idle, trying, critical } p0, p1;
  wire grant0, grant1, req0, req1;
  assign req0 = $ND(0, 1);
  assign req1 = $ND(0, 1);
  assign grant0 = (p0 == trying) && !(p1 == critical);
  assign grant1 = (p1 == trying) && !(p0 == critical) && !grant0;
  always @(posedge clk) begin
    case (p0)
      idle:     if (req0) p0 <= trying;
      trying:   if (grant0) p0 <= critical;
      critical: p0 <= idle;
    endcase
  end
  always @(posedge clk) begin
    case (p1)
      idle:     if (req1) p1 <= trying;
      trying:   if (grant1) p1 <= critical;
      critical: p1 <= idle;
    endcase
  end
  initial p0 = idle;
  initial p1 = idle;
endmodule
)";

const char* kMutexPif = R"PIF(
ctl mutex "AG !(p0=critical & p1=critical)";
ctl no_both_trying "AG !(p0=trying & p1=trying)";
automaton never_both {
  state A init;
  state B;
  edge A -> A on "!(p0=critical & p1=critical)";
  edge A -> B on "p0=critical & p1=critical";
  edge B -> B on "1";
  accept stay A;
}
)PIF";

TEST(Environment, FullFlow) {
  Environment env;
  env.readVerilog(kMutexVerilog);
  env.readPif(kMutexPif);
  std::vector<BugReport> reports = env.verifyAll();
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_TRUE(reports[0].holds);
  EXPECT_EQ(reports[0].paradigm, BugReport::Paradigm::ModelChecking);
  EXPECT_FALSE(reports[1].holds);
  EXPECT_TRUE(reports[1].trace.has_value());
  EXPECT_TRUE(reports[2].holds);
  EXPECT_EQ(reports[2].paradigm, BugReport::Paradigm::LanguageContainment);

  const Environment::Metrics& m = env.metrics();
  EXPECT_GT(m.linesVerilog, 0u);
  EXPECT_GT(m.linesBlifMv, m.linesVerilog);
  EXPECT_EQ(m.numCtlFormulas, 2u);
  EXPECT_EQ(m.numLcProps, 1u);
  EXPECT_GE(m.readSeconds, 0.0);
  EXPECT_DOUBLE_EQ(env.reachedStates(), 8.0);
}

TEST(Environment, ReadBlifMvDirectly) {
  Environment env;
  env.readBlifMv(R"(
.model counter
.mv s, ns 4
.table s ns
0 1
1 2
2 3
3 0
.latch ns s
.reset s
0
.end
)");
  EXPECT_DOUBLE_EQ(env.reachedStates(), 4.0);
  EXPECT_EQ(env.metrics().linesVerilog, 0u);
  BugReport r = env.verifyCtl("loops", parseCtl("AG EF s=0"));
  EXPECT_TRUE(r.holds);
}

TEST(Environment, FairnessAppliesAcrossParadigms) {
  Environment env;
  env.readBlifMv(R"(
.model stall
.mv s, ns 2
.table s ns
0 (0,1)
1 0
.latch ns s
.reset s
0
.end
)");
  // without fairness the liveness fails
  EXPECT_FALSE(env.verifyCtl("live", parseCtl("AG (s=0 -> AF s=1)")).holds);
  env.readPif("fairness { nostay \"s=0\"; }");
  EXPECT_TRUE(env.verifyCtl("live", parseCtl("AG (s=0 -> AF s=1)")).holds);

  // the same fairness feeds language containment
  Automaton live("live");
  live.addState("wait");
  live.addState("seen");
  live.addEdge("wait", "seen", parseSigExpr("s=1"));
  live.addEdge("wait", "wait", parseSigExpr("s!=1"));
  live.addEdge("seen", "seen", parseSigExpr("s=1"));
  live.addEdge("seen", "wait", parseSigExpr("s!=1"));
  live.setBuchiAcceptance({"seen"});
  EXPECT_TRUE(env.verifyAutomaton("keeps_visiting", live).holds);
}

TEST(Environment, SimulatorAccess) {
  Environment env;
  env.readVerilog(kMutexVerilog);
  Simulator sim = env.makeSimulator(3);
  EXPECT_GE(sim.successors().size(), 1u);
  EXPECT_DOUBLE_EQ(sim.reachableCount(), 8.0);
}

TEST(Environment, ErrorsWithoutDesign) {
  Environment env;
  EXPECT_THROW(env.build(), std::runtime_error);
}

TEST(Environment, OptionsRespected) {
  Environment::Options opts;
  opts.partitionedTr = false;
  opts.quantMethod = QuantMethod::Tree;
  opts.earlyFailureDetection = false;
  opts.wantTraces = false;
  Environment env(opts);
  env.readVerilog(kMutexVerilog);
  BugReport r = env.verifyCtl("fails", parseCtl("AG !(p0=trying & p1=trying)"));
  EXPECT_FALSE(r.holds);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_FALSE(r.usedEarlyFailure);
  EXPECT_TRUE(env.tr().isMonolithic());
}

TEST(Environment, VerilogTopSelection) {
  Environment env;
  env.readVerilog(R"(
module one;
  wire clk;
  reg r;
  always @(posedge clk) r <= !r;
  initial r = 0;
endmodule
module two;
  wire clk;
  reg [1:0] q;
  always @(posedge clk) q <= q + 1;
  initial q = 0;
endmodule
)",
                  "two");
  EXPECT_DOUBLE_EQ(env.reachedStates(), 4.0);
}

}  // namespace
}  // namespace hsis
