// Tests for ω-automata and the language-containment checker.
#include <gtest/gtest.h>

#include "blifmv/blifmv.hpp"
#include "lc/lc.hpp"
#include "vl2mv/vl2mv.hpp"

namespace hsis {
namespace {

// ------------------------------------------------------------- automaton

Automaton figure2Automaton(const std::string& badExpr) {
  // The paper's Figure 2: stay in A unless the bad condition fires.
  Automaton aut("invariance");
  aut.addState("A");
  aut.addState("B");
  aut.setInitial("A");
  aut.addEdge("A", "A", sigNot(parseSigExpr(badExpr)));
  aut.addEdge("A", "B", parseSigExpr(badExpr));
  aut.addEdge("B", "B", sigTrue());
  aut.setStayAcceptance({"A"});
  return aut;
}

TEST(Automaton, Structure) {
  Automaton aut = figure2Automaton("x=1");
  EXPECT_EQ(aut.numStates(), 2u);
  EXPECT_EQ(aut.initialState(), 0u);
  EXPECT_EQ(aut.stateName(1), "B");
  EXPECT_EQ(aut.findState("B"), std::optional<uint32_t>(1));
  EXPECT_EQ(aut.findState("C"), std::nullopt);
  EXPECT_EQ(aut.edges().size(), 3u);
  ASSERT_EQ(aut.rabinPairs().size(), 1u);
  // stay {A} == Rabin(fin = {B}, inf = all)
  EXPECT_EQ(aut.rabinPairs()[0].fin, std::vector<uint32_t>{1});
}

TEST(Automaton, DeadStates) {
  Automaton aut = figure2Automaton("x=1");
  std::vector<bool> dead = aut.deadStates();
  EXPECT_FALSE(dead[0]);  // A can accept
  EXPECT_TRUE(dead[1]);   // B is the rejecting trap
  // Büchi acceptance on a two-state ping automaton: nothing is dead.
  Automaton b("buchi");
  b.addState("p");
  b.addState("q");
  b.addEdge("p", "q", sigTrue());
  b.addEdge("q", "p", sigTrue());
  b.setBuchiAcceptance({"q"});
  std::vector<bool> bd = b.deadStates();
  EXPECT_FALSE(bd[0]);
  EXPECT_FALSE(bd[1]);
}

TEST(Automaton, ErrorsAndChecks) {
  Automaton aut("t");
  aut.addState("A");
  EXPECT_THROW(aut.addState("A"), std::runtime_error);
  EXPECT_THROW(aut.setInitial("Z"), std::runtime_error);
  EXPECT_THROW(aut.addEdge("A", "Z", sigTrue()), std::runtime_error);
  EXPECT_THROW(aut.addRabinPair({"Z"}, {}), std::runtime_error);

  blifmv::Model flat;
  // no acceptance condition
  Automaton na("na");
  na.addState("A");
  na.addEdge("A", "A", sigTrue());
  EXPECT_THROW(na.compose(flat, "_m"), std::runtime_error);
  // nondeterministic guards
  Automaton nd("nd");
  nd.addState("A");
  nd.addState("B");
  nd.addEdge("A", "A", parseSigExpr("x=1"));
  nd.addEdge("A", "B", parseSigExpr("x=1"));
  nd.addEdge("B", "B", sigTrue());
  nd.setStayAcceptance({"A"});
  EXPECT_THROW(nd.compose(flat, "_m"), std::runtime_error);
  // incomplete guards
  Automaton inc("inc");
  inc.addState("A");
  inc.addEdge("A", "A", parseSigExpr("x=1"));
  inc.setStayAcceptance({"A"});
  EXPECT_THROW(inc.compose(flat, "_m"), std::runtime_error);
}

TEST(Automaton, ComposeBuildsMonitor) {
  blifmv::Model flat = blifmv::flatten(blifmv::parse(R"(
.model m
.table x
(0,1)
.end
)"));
  Automaton aut = figure2Automaton("x=1");
  aut.compose(flat, "_monitor");
  ASSERT_EQ(flat.latches.size(), 1u);
  EXPECT_EQ(flat.latches[0].output, "_monitor");
  EXPECT_EQ(flat.latches[0].resetValues, std::vector<std::string>{"A"});
  ASSERT_NE(flat.declOf("_monitor"), nullptr);
  EXPECT_EQ(flat.declOf("_monitor")->domain, 2u);
  EXPECT_EQ(flat.declOf("_monitor")->valueNames,
            (std::vector<std::string>{"A", "B"}));
  // 2 assignments of x times 2 states = 4 rows
  EXPECT_EQ(flat.tables.back().rows.size(), 4u);
}

// ------------------------------------------------------------ containment

/// Modulo-4 counter; out=1 exactly at s=3.
const char* kCounter = R"(
.model counter
.mv s, ns 4
.table s ns
0 1
1 2
2 3
3 0
.latch ns s
.reset s
0
.table s out
3 1
.default 0
.end
)";

TEST(Lc, InvarianceHolds) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(kCounter));
  // "out and s=1 never coincide" — true, out only at s=3.
  LcChecker lc(mgr, flat, figure2Automaton("out=1 & s=1"));
  LcResult r = lc.check();
  EXPECT_TRUE(r.contained);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_GT(r.stats.reachedStates, 0.0);
}

TEST(Lc, InvarianceFailsWithEarlyDetectionAndTrace) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(kCounter));
  LcChecker lc(mgr, flat, figure2Automaton("out=1"));
  LcResult r = lc.check();
  EXPECT_FALSE(r.contained);
  EXPECT_TRUE(r.stats.usedEarlyFailure);
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_TRUE(r.trace->isLasso());
  std::string text = lc.formatTrace(*r.trace);
  EXPECT_NE(text.find("_monitor"), std::string::npos);
}

TEST(Lc, EarlyFailureCanBeDisabled) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(kCounter));
  LcOptions opts;
  opts.earlyFailureDetection = false;
  LcChecker lc(mgr, flat, figure2Automaton("out=1"), {}, opts);
  LcResult r = lc.check();
  EXPECT_FALSE(r.contained);
  EXPECT_FALSE(r.stats.usedEarlyFailure);
  EXPECT_TRUE(r.trace.has_value());
}

TEST(Lc, BuchiLiveness) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(kCounter));
  // the counter passes s=3 infinitely often
  Automaton live("live");
  live.addState("wait");
  live.addState("seen");
  live.addEdge("wait", "seen", parseSigExpr("s=3"));
  live.addEdge("wait", "wait", parseSigExpr("s!=3"));
  live.addEdge("seen", "seen", parseSigExpr("s=3"));
  live.addEdge("seen", "wait", parseSigExpr("s!=3"));
  live.setBuchiAcceptance({"seen"});
  LcChecker lc(mgr, flat, live);
  EXPECT_TRUE(lc.check().contained);
}

TEST(Lc, BuchiLivenessFailsWithLasso) {
  BddManager mgr;
  // A machine that may stall forever at s=0.
  auto flat = blifmv::flatten(blifmv::parse(R"(
.model stall
.mv s, ns 2
.table s ns
0 (0,1)
1 0
.latch ns s
.reset s
0
.end
)"));
  Automaton live("live");
  live.addState("wait");
  live.addState("seen");
  live.addEdge("wait", "seen", parseSigExpr("s=1"));
  live.addEdge("wait", "wait", parseSigExpr("s!=1"));
  live.addEdge("seen", "seen", parseSigExpr("s=1"));
  live.addEdge("seen", "wait", parseSigExpr("s!=1"));
  live.setBuchiAcceptance({"seen"});
  LcChecker lc(mgr, flat, live);
  LcResult r = lc.check();
  ASSERT_FALSE(r.contained);
  ASSERT_TRUE(r.trace.has_value());
  // the counterexample cycle never visits s=1
  for (size_t i = static_cast<size_t>(r.trace->cycleStart);
       i < r.trace->states.size(); ++i) {
    EXPECT_EQ(lc.fsm().decodeState(r.trace->states[i])[0], 0u);
  }
}

TEST(Lc, NoStayFairnessRescuesLiveness) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(R"(
.model stall
.mv s, ns 2
.table s ns
0 (0,1)
1 0
.latch ns s
.reset s
0
.end
)"));
  Automaton live("live");
  live.addState("wait");
  live.addState("seen");
  live.addEdge("wait", "seen", parseSigExpr("s=1"));
  live.addEdge("wait", "wait", parseSigExpr("s!=1"));
  live.addEdge("seen", "seen", parseSigExpr("s=1"));
  live.addEdge("seen", "wait", parseSigExpr("s!=1"));
  live.setBuchiAcceptance({"seen"});
  FairnessSpec fair;
  fair.noStay.push_back(parseSigExpr("s=0"));  // cannot stall forever
  LcChecker lc(mgr, flat, live, fair);
  EXPECT_TRUE(lc.check().contained);
}

TEST(Lc, FairEdgeConstraint) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(R"(
.model stall
.mv s, ns 2
.table s ns
0 (0,1)
1 0
.latch ns s
.reset s
0
.end
)"));
  Automaton live("live");
  live.addState("wait");
  live.addState("seen");
  live.addEdge("wait", "seen", parseSigExpr("s=1"));
  live.addEdge("wait", "wait", parseSigExpr("s!=1"));
  live.addEdge("seen", "seen", parseSigExpr("s=1"));
  live.addEdge("seen", "wait", parseSigExpr("s!=1"));
  live.setBuchiAcceptance({"seen"});
  FairnessSpec fair;
  // the edge s=0 -> s=1 must be taken infinitely often
  fair.fairEdges.emplace_back(parseSigExpr("s=0"), parseSigExpr("s=1"));
  LcChecker lc(mgr, flat, live, fair);
  EXPECT_TRUE(lc.check().contained);
  EXPECT_EQ(lc.edgeSets().size(), 1u);
}

TEST(Lc, FairEdgeRejectsCombinationalGuards) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(kCounter));
  FairnessSpec fair;
  fair.fairEdges.emplace_back(parseSigExpr("s=0"), parseSigExpr("s=1"));
  {
    // fine: both sides over latches
    LcChecker lc(mgr, flat, figure2Automaton("out=1 & s=1"), fair);
  }
  FairnessSpec bad;
  bad.fairEdges.emplace_back(parseSigExpr("out=1"), parseSigExpr("s=1"));
  BddManager mgr2;
  EXPECT_THROW(
      LcChecker(mgr2, flat, figure2Automaton("out=1 & s=1"), bad),
      std::runtime_error);
}

TEST(Lc, VacuousPassWhenFairnessUnsatisfiable) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(kCounter));
  FairnessSpec fair;
  // s=1 and s=2 simultaneously is impossible: no fair runs at all
  fair.buchi.push_back(parseSigExpr("s=1 & s=2"));
  LcChecker lc(mgr, flat, figure2Automaton("out=1"), fair);
  LcResult r = lc.check();
  EXPECT_TRUE(r.contained);
  ASSERT_FALSE(r.notes.empty());
  EXPECT_NE(r.notes[0].find("vacuous"), std::string::npos);
}

TEST(Lc, MonolithicAndPartitionedAgree) {
  for (bool partitioned : {false, true}) {
    BddManager mgr;
    auto flat = blifmv::flatten(blifmv::parse(kCounter));
    LcOptions opts;
    opts.partitionedTr = partitioned;
    LcChecker lc(mgr, flat, figure2Automaton("out=1 & s=1"), {}, opts);
    EXPECT_TRUE(lc.check().contained);
    BddManager mgr2;
    LcChecker lc2(mgr2, flat, figure2Automaton("out=1"), {}, opts);
    EXPECT_FALSE(lc2.check().contained);
  }
}

TEST(Lc, RabinPairAcceptance) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(kCounter));
  // explicit Rabin pair equivalent to the stay-acceptance
  Automaton aut("rabin");
  aut.addState("A");
  aut.addState("B");
  aut.addEdge("A", "A", parseSigExpr("!(out=1 & s=1)"));
  aut.addEdge("A", "B", parseSigExpr("out=1 & s=1"));
  aut.addEdge("B", "B", sigTrue());
  aut.addRabinPair({"B"}, {"A"});
  LcChecker lc(mgr, flat, aut);
  EXPECT_TRUE(lc.check().contained);
}

TEST(Lc, MonitorNameAvoidsCollision) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(R"(
.model m
.table _monitor
(0,1)
.table _monitor x
- =_monitor
.end
)"));
  // design already uses "_monitor": the checker must pick another name
  LcChecker lc(mgr, flat, figure2Automaton("x=1"));
  EXPECT_NE(lc.monitorSignal(), "_monitor");
}

}  // namespace
}  // namespace hsis
