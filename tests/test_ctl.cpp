// Tests for the CTL parser and the fair CTL model checker.
#include <gtest/gtest.h>

#include "blifmv/blifmv.hpp"
#include "ctl/mc.hpp"
#include "vl2mv/vl2mv.hpp"

namespace hsis {
namespace {

// ------------------------------------------------------------------ parse

TEST(CtlParse, OperatorsAndPrecedence) {
  EXPECT_EQ(parseCtl("AG p=1")->kind, CtlFormula::Kind::AG);
  EXPECT_EQ(parseCtl("EF p=1")->kind, CtlFormula::Kind::EF);
  EXPECT_EQ(parseCtl("A[p=1 U q=1]")->kind, CtlFormula::Kind::AU);
  EXPECT_EQ(parseCtl("E[p=1 U q=1]")->kind, CtlFormula::Kind::EU);
  EXPECT_EQ(parseCtl("!p=1")->kind, CtlFormula::Kind::Not);
  // implication rewrites to !a | b
  CtlRef imp = parseCtl("p=1 -> q=1");
  EXPECT_EQ(imp->kind, CtlFormula::Kind::Or);
  EXPECT_EQ(imp->left->kind, CtlFormula::Kind::Not);
  // & binds tighter than |
  CtlRef f = parseCtl("a=1 | b=1 & c=1");
  EXPECT_EQ(f->kind, CtlFormula::Kind::Or);
  EXPECT_EQ(f->right->kind, CtlFormula::Kind::And);
  // nesting
  CtlRef g = parseCtl("AG (req=1 -> AF ack=1)");
  EXPECT_EQ(g->kind, CtlFormula::Kind::AG);
}

TEST(CtlParse, RoundTripThroughToString) {
  const char* formulas[] = {
      "AG !(a=1 & b=1)", "AG (a=1 -> AF b=1)", "E[a=1 U b=1]",
      "A[a=1 U b=1]",    "EX EG a=1",          "AX AF b=0",
  };
  for (const char* text : formulas) {
    CtlRef f = parseCtl(text);
    CtlRef g = parseCtl(f->toString());
    EXPECT_EQ(f->toString(), g->toString()) << text;
  }
}

TEST(CtlParse, Classification) {
  EXPECT_TRUE(parseCtl("AG !(a=1 & b=1)")->isInvariant());
  EXPECT_FALSE(parseCtl("AG AF a=1")->isInvariant());
  EXPECT_FALSE(parseCtl("EF a=1")->isInvariant());
  EXPECT_TRUE(parseCtl("a=1 & !b=0")->isPropositional());
  EXPECT_FALSE(parseCtl("EX a=1")->isPropositional());
}

TEST(CtlParse, Errors) {
  EXPECT_THROW(parseCtl(""), std::runtime_error);
  EXPECT_THROW(parseCtl("AG"), std::runtime_error);
  EXPECT_THROW(parseCtl("A[p=1 q=1]"), std::runtime_error);
  EXPECT_THROW(parseCtl("(p=1"), std::runtime_error);
  EXPECT_THROW(parseCtl("p=1 trailing=2 junk !"), std::runtime_error);
}

// -------------------------------------------------------------- semantics

/// A 3-state loop with a one-way escape:
///   s: 0 -> 1 -> 2 -> 0 ... and from 1 the machine may jump to sink 3.
struct McFixture : ::testing::Test {
  void SetUp() override {
    auto design = blifmv::parse(R"(
.model loop
.mv s, ns 4
.table s ns
0 1
1 (2,3)
2 0
3 3
.latch ns s
.reset s
0
.end
)");
    flat = blifmv::flatten(design);
    fsm = std::make_unique<Fsm>(mgr, flat);
    tr = TransitionRelation::monolithic(*fsm);
  }

  McResult check(const std::string& f, std::vector<Bdd> fair = {},
                 McOptions opts = {}) {
    CtlChecker mc(*fsm, *tr, std::move(fair), opts);
    return mc.check(parseCtl(f));
  }

  BddManager mgr;
  blifmv::Model flat;
  std::unique_ptr<Fsm> fsm;
  std::optional<TransitionRelation> tr;
};

TEST_F(McFixture, Invariants) {
  EXPECT_TRUE(check("AG (s=0 | s=1 | s=2 | s=3)").holds);
  EXPECT_TRUE(check("AG !(s=0 & s=1)").holds);
}

TEST_F(McFixture, BasicOperators) {
  EXPECT_TRUE(check("EF s=3").holds);
  EXPECT_TRUE(check("EF s=2").holds);
  EXPECT_FALSE(check("AF s=3").holds);   // can loop forever
  EXPECT_FALSE(check("AG s!=3").holds);  // can fall into the sink
  EXPECT_TRUE(check("EG s!=3").holds);   // the loop avoids the sink
  EXPECT_TRUE(check("AX s=1").holds);    // from 0 the only move is to 1
  EXPECT_FALSE(check("AX s=2").holds);
  EXPECT_TRUE(check("E[s!=3 U s=2]").holds);
  EXPECT_TRUE(check("A[s!=3 U s=1]").holds);  // must pass through 1 first
  EXPECT_FALSE(check("A[s!=1 U s=2]").holds);
  EXPECT_TRUE(check("AG (s=3 -> AG s=3)").holds);  // sink is absorbing
  EXPECT_TRUE(check("AG (s=0 -> EX s=1)").holds);
}

TEST_F(McFixture, FairnessChangesVerdict) {
  // Unfair: the run may cycle 0,1,2 forever, so AF s=3 fails.
  EXPECT_FALSE(check("AF s=3").holds);
  // Under the fairness constraint "visit s=3 infinitely often", every fair
  // path ends in the sink.
  Bdd f3 = fsm->space().literal(fsm->stateVar(0), 3);
  EXPECT_TRUE(check("AF s=3", {f3}).holds);
  // EG over fair paths: the loop is no longer a fair path.
  EXPECT_FALSE(check("EG s!=3", {f3}).holds);
}

TEST_F(McFixture, SatisfyingSets) {
  CtlChecker mc(*fsm, *tr);
  Bdd sat = mc.states(parseCtl("EX s=2"));
  EXPECT_EQ(sat, fsm->space().literal(fsm->stateVar(0), 1) & mc.reached());
  // duality: AX p == !EX !p on the reached care set
  Bdd ax = mc.states(parseCtl("AX s=1"));
  Bdd viaDual = mc.reached() & !mc.states(parseCtl("EX s!=1"));
  EXPECT_EQ(ax, viaDual);
}

TEST_F(McFixture, CounterexampleForInvariant) {
  McResult r = check("AG s!=3");
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  const Trace& t = *r.counterexample;
  // shortest path to the sink: 0 -> 1 -> 3
  EXPECT_EQ(t.states.size(), 3u);
  EXPECT_EQ(fsm->decodeState(t.states.back())[0], 3u);
  EXPECT_TRUE(r.stats.usedEarlyFailure);
}

TEST_F(McFixture, CounterexampleForLiveness) {
  McResult r = check("AF s=3");
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_TRUE(r.counterexample->isLasso());
  // the lasso cycle avoids the sink
  for (size_t i = static_cast<size_t>(r.counterexample->cycleStart);
       i < r.counterexample->states.size(); ++i) {
    EXPECT_NE(fsm->decodeState(r.counterexample->states[i])[0], 3u);
  }
}

TEST_F(McFixture, EarlyFailureDetectionToggle) {
  McOptions noEfd;
  noEfd.earlyFailureDetection = false;
  McResult r = check("AG s!=3", {}, noEfd);
  EXPECT_FALSE(r.holds);
  EXPECT_FALSE(r.stats.usedEarlyFailure);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->states.size(), 3u);
}

TEST_F(McFixture, DontCareToggleAgrees) {
  McOptions a, b;
  a.useReachedDontCares = true;
  b.useReachedDontCares = false;
  const char* formulas[] = {"EF s=3", "AF s=3", "EG s!=3", "A[s!=3 U s=2]",
                            "AG (s=1 -> EX s=2)"};
  for (const char* f : formulas) {
    EXPECT_EQ(check(f, {}, a).holds, check(f, {}, b).holds) << f;
  }
}

TEST_F(McFixture, StatsPopulated) {
  McResult r = check("AG (s=0 -> AF s=1)");
  EXPECT_TRUE(r.holds);
  EXPECT_GT(r.stats.preimageCalls + r.stats.reachabilitySteps, 0u);
  EXPECT_GE(r.stats.seconds, 0.0);
}

// Deadlock handling: states without successors have no infinite path, so
// even EG true ("there is some fair path") excludes them.
TEST(CtlDeadlock, NoFairPathFromDeadlock) {
  BddManager mgr;
  auto flat = blifmv::flatten(blifmv::parse(R"(
.model dead
.mv s, ns 2
.table s ns
0 1
.latch ns s
.reset s
0
.end
)"));
  // from 1 the table has no row: deadlock at s=1
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  CtlChecker mc(fsm, tr);
  Bdd fair = mc.fairStates();
  EXPECT_TRUE((fair & fsm.space().literal(fsm.stateVar(0), 1)).isZero());
  McResult r = mc.check(parseCtl("EX s=1"));
  EXPECT_FALSE(r.holds);  // the successor is not on any fair (infinite) path
}

// Model-checking a Verilog design end to end (the mutual-exclusion example
// from the paper's Figure 2 discussion).
TEST(CtlIntegration, MutexFromVerilog) {
  auto design = vl2mv::compile(R"(
module top;
  wire clk;
  enum { idle, trying, critical } p0, p1;
  wire grant0, grant1, req0, req1;
  assign req0 = $ND(0, 1);
  assign req1 = $ND(0, 1);
  assign grant0 = (p0 == trying) && !(p1 == critical);
  assign grant1 = (p1 == trying) && !(p0 == critical) && !grant0;
  always @(posedge clk) begin
    case (p0)
      idle:     if (req0) p0 <= trying;
      trying:   if (grant0) p0 <= critical;
      critical: p0 <= idle;
    endcase
  end
  always @(posedge clk) begin
    case (p1)
      idle:     if (req1) p1 <= trying;
      trying:   if (grant1) p1 <= critical;
      critical: p1 <= idle;
    endcase
  end
  initial p0 = idle;
  initial p1 = idle;
endmodule
)");
  auto flat = blifmv::flatten(design);
  BddManager mgr;
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::partitioned(fsm);
  CtlChecker mc(fsm, tr);
  EXPECT_TRUE(mc.check(parseCtl("AG !(p0=critical & p1=critical)")).holds);
  EXPECT_TRUE(mc.check(parseCtl("EF p0=critical")).holds);
  EXPECT_TRUE(mc.check(parseCtl("EF p1=critical")).holds);
  EXPECT_FALSE(mc.check(parseCtl("AG !(p0=trying & p1=trying)")).holds);
}

}  // namespace
}  // namespace hsis
