// Tests for hsis_cov: occupancy, coverpoints/bins, the symbolic-vs-sim
// differential, the spec language, frontier series, and the hsis-cov-v1
// round trip.
#include <gtest/gtest.h>

#include <cstdlib>

#include "blifmv/blifmv.hpp"
#include "cov/cov.hpp"
#include "ctl/mc.hpp"
#include "obs/obs.hpp"

namespace hsis {
namespace {

// s cycles 0 -> 1 -> 2 -> 0 (value 3 unreachable); t toggles under the
// free input w. Reachable set: {0,1,2} x {0,1} = 6 of 8 states.
constexpr const char* kCovModel = R"(
.model covm
.mv s, ns 4
.table s ns
0 1
1 2
2 0
3 3
.table w t nt
0 - =t
1 0 1
1 1 0
.latch ns s
.latch nt t
.reset s
0
.reset t
0
.end
)";

struct CovFixture : ::testing::Test {
  void SetUp() override {
    flat = blifmv::flatten(blifmv::parse(kCovModel));
    fsm = std::make_unique<Fsm>(mgr, flat);
    tr = TransitionRelation::monolithic(*fsm);
    ReachOptions ro;
    ro.recordFrontierStates = true;
    reach = reachableStates(*tr, fsm->initialStates(), ro);
  }
  BddManager mgr;
  blifmv::Model flat;
  std::unique_ptr<Fsm> fsm;
  std::optional<TransitionRelation> tr;
  ReachResult reach;
};

TEST_F(CovFixture, StructuralOccupancy) {
  if (!cov::coverageEnabled()) GTEST_SKIP() << "coverage disabled";
  cov::Options opts;
  opts.frontierNewStates = reach.frontierStates;
  cov::Report rep = cov::analyze(*fsm, *tr, reach.reached, opts);
  EXPECT_TRUE(rep.enabled);
  EXPECT_EQ(rep.design, "covm");
  EXPECT_DOUBLE_EQ(rep.stateSpace, 8.0);
  EXPECT_DOUBLE_EQ(rep.reachableStates, 6.0);
  EXPECT_DOUBLE_EQ(rep.stateFraction(), 0.75);
  EXPECT_EQ(rep.valuesTotal, 6u);    // 4 (s) + 2 (t)
  EXPECT_EQ(rep.valuesReached, 5u);  // s misses value 3
  ASSERT_EQ(rep.latches.size(), 2u);
  const cov::LatchOccupancy* s = nullptr;
  for (const auto& occ : rep.latches)
    if (occ.latch == "s") s = &occ;
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->domain, 4u);
  EXPECT_EQ(s->reachedValues, 3u);
  EXPECT_DOUBLE_EQ(s->pct(), 75.0);
  ASSERT_EQ(s->valueReached.size(), 4u);
  EXPECT_TRUE(s->valueReached[0]);
  EXPECT_TRUE(s->valueReached[1]);
  EXPECT_TRUE(s->valueReached[2]);
  EXPECT_FALSE(s->valueReached[3]);
}

TEST_F(CovFixture, DefaultCoverpointsAndSymbolicCounts) {
  if (!cov::coverageEnabled()) GTEST_SKIP() << "coverage disabled";
  cov::Report rep = cov::analyze(*fsm, *tr, reach.reached);
  EXPECT_EQ(rep.binsTotal, 6u);
  EXPECT_EQ(rep.binsHit, 5u);
  const cov::PointResult* sp = nullptr;
  for (const auto& p : rep.points)
    if (p.name == "s") sp = &p;
  ASSERT_NE(sp, nullptr);
  ASSERT_EQ(sp->bins.size(), 4u);
  EXPECT_EQ(sp->binsHit, 3u);
  // Each reachable s value pairs with both t values: 2 states per bin.
  EXPECT_DOUBLE_EQ(sp->bins[1].symbolicStates, 2.0);
  EXPECT_FALSE(sp->bins[3].symbolicHit);
  EXPECT_DOUBLE_EQ(sp->bins[3].symbolicStates, 0.0);
  EXPECT_TRUE(sp->bins[0].simEvaluable);
  EXPECT_EQ(sp->bins[0].simHits, -1);  // no sim pass requested
}

TEST_F(CovFixture, DifferentialSimAgreesWithSymbolic) {
  if (!cov::coverageEnabled()) GTEST_SKIP() << "coverage disabled";
  cov::Options opts;
  opts.simMaxStates = 100;
  cov::Report rep = cov::analyze(*fsm, *tr, reach.reached, opts);
  EXPECT_EQ(rep.simStates, 6u);
  EXPECT_TRUE(rep.simExhaustive);
  EXPECT_TRUE(rep.simAgrees);
  for (const auto& p : rep.points) {
    for (const auto& b : p.bins) {
      ASSERT_TRUE(b.simEvaluable);
      EXPECT_EQ(static_cast<double>(b.simHits), b.symbolicStates)
          << p.name << "/" << b.name;
    }
  }
}

TEST_F(CovFixture, InputReferencingBinIsSymbolicOnly) {
  if (!cov::coverageEnabled()) GTEST_SKIP() << "coverage disabled";
  cov::Options opts;
  cov::PointSpec p;
  p.name = "mixed";
  p.bins.push_back({"toggling", parseSigExpr("w=1 & t=0")});
  p.bins.push_back({"stateonly", parseSigExpr("t=1")});
  opts.points.push_back(p);
  opts.simMaxStates = 100;
  cov::Report rep = cov::analyze(*fsm, *tr, reach.reached, opts);
  ASSERT_EQ(rep.points.size(), 1u);
  const cov::BinResult& toggling = rep.points[0].bins[0];
  EXPECT_FALSE(toggling.simEvaluable);
  EXPECT_TRUE(toggling.symbolicHit);
  // Projection onto the state rail: every reached state with t=0 has some
  // w=1 assignment -> 3 states.
  EXPECT_DOUBLE_EQ(toggling.symbolicStates, 3.0);
  EXPECT_EQ(toggling.simHits, -1);  // never concretely evaluated
  const cov::BinResult& stateonly = rep.points[0].bins[1];
  EXPECT_TRUE(stateonly.simEvaluable);
  EXPECT_EQ(stateonly.simHits, 3);
  EXPECT_TRUE(rep.simAgrees);
}

TEST_F(CovFixture, FrontierSeriesSumsToReachable) {
  if (!cov::coverageEnabled()) GTEST_SKIP() << "coverage disabled";
  ASSERT_FALSE(reach.frontierStates.empty());
  cov::Options opts;
  opts.frontierNewStates = reach.frontierStates;
  cov::Report rep = cov::analyze(*fsm, *tr, reach.reached, opts);
  ASSERT_EQ(rep.frontier.size(), reach.frontierStates.size());
  EXPECT_EQ(rep.depth, rep.frontier.size() - 1);
  double sum = 0.0;
  double prevTotal = 0.0;
  for (const auto& fp : rep.frontier) {
    sum += fp.newStates;
    EXPECT_GE(fp.totalStates, prevTotal);
    prevTotal = fp.totalStates;
  }
  EXPECT_DOUBLE_EQ(sum, rep.reachableStates);
  EXPECT_DOUBLE_EQ(prevTotal, rep.reachableStates);
}

TEST_F(CovFixture, CheckerRecordsFrontierSeries) {
  if (!cov::coverageEnabled()) GTEST_SKIP() << "coverage disabled";
  CtlChecker mc(*fsm, *tr);
  EXPECT_TRUE(mc.frontierNewStates().empty());  // nothing before reached()
  (void)mc.reached();
  double sum = 0.0;
  for (double d : mc.frontierNewStates()) sum += d;
  EXPECT_DOUBLE_EQ(sum, fsm->countStates(mc.reached()));
}

TEST_F(CovFixture, CoverSpecLanguage) {
  auto points = cov::parseCoverSpec(R"(
# explicit bins over both latches
coverpoint phases {
  bin start = s=0 & t=0;
  bin wrap = s=2;
  bin never = s=3;
}
coverpoint tvals auto t
cross both = phases, tvals
)",
                                    *fsm);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].name, "phases");
  ASSERT_EQ(points[0].bins.size(), 3u);
  EXPECT_EQ(points[0].bins[0].name, "start");
  EXPECT_EQ(points[1].name, "tvals");
  EXPECT_EQ(points[1].bins.size(), 2u);  // t is binary
  EXPECT_EQ(points[2].name, "both");
  EXPECT_EQ(points[2].bins.size(), 6u);  // 3 x 2 cross
  EXPECT_EQ(points[2].bins[0].name, "start/0");

  EXPECT_THROW(cov::parseCoverSpec("coverpoint x auto nosuch", *fsm),
               std::runtime_error);
  EXPECT_THROW(cov::parseCoverSpec("cross c = a, b", *fsm),
               std::runtime_error);
  EXPECT_THROW(cov::parseCoverSpec("coverpoint x { bin a = s=0 }", *fsm),
               std::runtime_error);  // missing ';'
  EXPECT_THROW(cov::parseCoverSpec("widget x", *fsm), std::runtime_error);
}

TEST_F(CovFixture, SpecDrivenAnalysis) {
  if (!cov::coverageEnabled()) GTEST_SKIP() << "coverage disabled";
  cov::Options opts;
  opts.points = cov::parseCoverSpec(
      "coverpoint phases { bin wrap = s=2; bin never = s=3; }", *fsm);
  opts.simMaxStates = 100;
  cov::Report rep = cov::analyze(*fsm, *tr, reach.reached, opts);
  EXPECT_EQ(rep.binsTotal, 2u);
  EXPECT_EQ(rep.binsHit, 1u);
  EXPECT_TRUE(rep.simAgrees);
  EXPECT_EQ(rep.points[0].bins[0].simHits, 2);
  EXPECT_EQ(rep.points[0].bins[1].simHits, 0);
}

TEST_F(CovFixture, DisabledEnvVarYieldsValidEmptyReport) {
  ::setenv("HSIS_COV_DISABLE", "1", 1);
  EXPECT_FALSE(cov::coverageEnabled());
  cov::Report rep = cov::analyze(*fsm, *tr, reach.reached);
  ::unsetenv("HSIS_COV_DISABLE");
  EXPECT_FALSE(rep.enabled);
  EXPECT_EQ(rep.design, "covm");
  EXPECT_TRUE(rep.latches.empty());
  EXPECT_TRUE(rep.points.empty());
  EXPECT_EQ(rep.binsTotal, 0u);
  // The renderer still produces a valid document for a disabled report.
  std::string md = cov::renderReport(rep);
  EXPECT_NE(md.find("disabled"), std::string::npos);
}

// Hand-built report: serialization and rendering must work even in
// HSIS_OBS_DISABLE builds (pure data transforms).
cov::Report sampleReport() {
  cov::Report r;
  r.enabled = true;
  r.design = "sample";
  r.reachableStates = 6;
  r.stateSpace = 8;
  r.depth = 3;
  r.valuesTotal = 6;
  r.valuesReached = 5;
  r.binsTotal = 4;
  r.binsHit = 3;
  cov::LatchOccupancy occ;
  occ.latch = "s";
  occ.domain = 4;
  occ.valueNames = {"0", "1", "2", "3"};
  occ.valueReached = {true, true, true, false};
  occ.reachedValues = 3;
  r.latches.push_back(occ);
  r.frontier.push_back({0, 1, 1});
  r.frontier.push_back({1, 2, 3});
  r.frontier.push_back({2, 2, 5});
  r.frontier.push_back({3, 1, 6});
  cov::PointResult pr;
  pr.name = "s";
  pr.binsHit = 1;
  cov::BinResult br;
  br.name = "wrap";
  br.expr = "s=2";
  br.symbolicHit = true;
  br.symbolicStates = 2;
  br.simEvaluable = true;
  br.simHits = 2;
  pr.bins.push_back(br);
  cov::BinResult miss;
  miss.name = "never";
  miss.expr = "w=1";
  miss.symbolicHit = false;
  miss.simEvaluable = false;
  miss.simHits = -1;
  pr.bins.push_back(miss);
  r.points.push_back(pr);
  r.simStates = 6;
  r.simExhaustive = true;
  r.simAgrees = true;
  return r;
}

TEST(CovJson, RoundTrip) {
  cov::Report r = sampleReport();
  std::string json = cov::reportToJson(r);
  EXPECT_NE(json.find("\"schema\": \"hsis-cov-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_hits\": null"), std::string::npos);
  cov::Report back = cov::parseReportJson(json);
  EXPECT_TRUE(back.enabled);
  EXPECT_EQ(back.design, "sample");
  EXPECT_DOUBLE_EQ(back.reachableStates, 6.0);
  EXPECT_DOUBLE_EQ(back.stateSpace, 8.0);
  EXPECT_EQ(back.depth, 3u);
  EXPECT_EQ(back.valuesReached, 5u);
  EXPECT_EQ(back.binsHit, 3u);
  ASSERT_EQ(back.latches.size(), 1u);
  EXPECT_EQ(back.latches[0].reachedValues, 3u);
  EXPECT_FALSE(back.latches[0].valueReached[3]);
  ASSERT_EQ(back.frontier.size(), 4u);
  EXPECT_DOUBLE_EQ(back.frontier[3].totalStates, 6.0);
  ASSERT_EQ(back.points.size(), 1u);
  ASSERT_EQ(back.points[0].bins.size(), 2u);
  EXPECT_EQ(back.points[0].bins[0].simHits, 2);
  EXPECT_EQ(back.points[0].bins[1].simHits, -1);
  EXPECT_FALSE(back.points[0].bins[1].simEvaluable);
  EXPECT_TRUE(back.simExhaustive);
}

TEST(CovJson, RejectsWrongSchema) {
  EXPECT_THROW(cov::parseReportJson("{\"schema\": \"hsis-obs-v1\"}"),
               std::runtime_error);
  EXPECT_THROW(cov::parseReportJson("not json"), std::runtime_error);
  EXPECT_THROW(cov::parseReportJson("{\"schema\": \"hsis-cov-v1\"}"),
               std::runtime_error);  // missing fields
}

TEST(CovRender, MarkdownTablesAndThresholdGate) {
  cov::Report r = sampleReport();
  std::string md = cov::renderReport(r);
  EXPECT_NE(md.find("# Coverage report: sample"), std::string::npos);
  EXPECT_NE(md.find("## Latch occupancy"), std::string::npos);
  EXPECT_NE(md.find("## Coverpoints"), std::string::npos);
  EXPECT_NE(md.find("## Frontier occupancy"), std::string::npos);
  EXPECT_NE(md.find("| s | 4 | 3 | 75.0% | 3 |"), std::string::npos);
  EXPECT_EQ(md.find("Threshold gate"), std::string::npos);

  EXPECT_EQ(cov::latchesBelow(r, 50.0), 0u);
  EXPECT_EQ(cov::latchesBelow(r, 80.0), 1u);

  cov::RenderOptions ro;
  ro.threshold = 80.0;
  std::string gated = cov::renderReport(r, ro);
  EXPECT_NE(gated.find("Threshold gate"), std::string::npos);
  EXPECT_NE(gated.find("1 latch(es) below threshold"), std::string::npos);

  ro.threshold = 50.0;
  std::string clean = cov::renderReport(r, ro);
  EXPECT_NE(clean.find("All latches meet"), std::string::npos);
}

TEST(CovCross, NamesAndPairing) {
  cov::PointSpec a{"a", {{"x", parseSigExpr("1")}, {"y", parseSigExpr("0")}}};
  cov::PointSpec b{"b", {{"p", parseSigExpr("1")}}};
  cov::PointSpec c = cov::crossPoint(a, b);
  EXPECT_EQ(c.name, "a_x_b");
  ASSERT_EQ(c.bins.size(), 2u);
  EXPECT_EQ(c.bins[0].name, "x/p");
  EXPECT_EQ(c.bins[1].name, "y/p");
  cov::PointSpec named = cov::crossPoint(a, b, "combo");
  EXPECT_EQ(named.name, "combo");
}

}  // namespace
}  // namespace hsis
