// Tests for the multi-valued (MDD) layer.
#include <gtest/gtest.h>

#include "mvf/mvf.hpp"

namespace hsis {
namespace {

TEST(MvSpace, BitsFor) {
  EXPECT_EQ(MvSpace::bitsFor(1), 1u);
  EXPECT_EQ(MvSpace::bitsFor(2), 1u);
  EXPECT_EQ(MvSpace::bitsFor(3), 2u);
  EXPECT_EQ(MvSpace::bitsFor(4), 2u);
  EXPECT_EQ(MvSpace::bitsFor(5), 3u);
  EXPECT_EQ(MvSpace::bitsFor(8), 3u);
  EXPECT_EQ(MvSpace::bitsFor(9), 4u);
}

TEST(MvSpace, AddVarAndLookup) {
  BddManager mgr;
  MvSpace sp(mgr);
  MvVarId s = sp.addVar("state", 3, {"idle", "busy", "done"});
  EXPECT_EQ(sp.numVars(), 1u);
  EXPECT_EQ(sp.domain(s), 3u);
  EXPECT_EQ(sp.name(s), "state");
  EXPECT_EQ(sp.bits(s).size(), 2u);
  EXPECT_EQ(sp.findVar("state"), std::optional<MvVarId>(s));
  EXPECT_EQ(sp.findVar("nope"), std::nullopt);
  EXPECT_EQ(sp.valueName(s, 1), "busy");
  EXPECT_EQ(sp.valueOf(s, "done"), std::optional<uint32_t>(2));
  EXPECT_EQ(sp.valueOf(s, "2"), std::optional<uint32_t>(2));
  EXPECT_EQ(sp.valueOf(s, "7"), std::nullopt);
  EXPECT_EQ(sp.valueOf(s, "unknown"), std::nullopt);
}

TEST(MvSpace, RejectsBadDeclarations) {
  BddManager mgr;
  MvSpace sp(mgr);
  EXPECT_THROW(sp.addVar("x", 0), std::invalid_argument);
  EXPECT_THROW(sp.addVar("y", 3, {"a", "b"}), std::invalid_argument);
}

TEST(MvSpace, LiteralsPartitionValidEncodings) {
  BddManager mgr;
  MvSpace sp(mgr);
  MvVarId s = sp.addVar("s", 3);
  Bdd all = mgr.bddZero();
  for (uint32_t k = 0; k < 3; ++k) {
    for (uint32_t j = k + 1; j < 3; ++j) {
      EXPECT_TRUE((sp.literal(s, k) & sp.literal(s, j)).isZero());
    }
    all |= sp.literal(s, k);
  }
  EXPECT_EQ(all, sp.validEncodings(s));
  // power-of-two domains have no invalid encodings
  MvVarId t = sp.addVar("t", 4);
  EXPECT_TRUE(sp.validEncodings(t).isOne());
  EXPECT_THROW(sp.literal(s, 3), std::out_of_range);
}

TEST(MvSpace, DecodeInverseOfLiteral) {
  BddManager mgr;
  MvSpace sp(mgr);
  MvVarId s = sp.addVar("s", 5);
  for (uint32_t k = 0; k < 5; ++k) {
    std::vector<int8_t> pick = mgr.pickCube(sp.literal(s, k));
    EXPECT_EQ(sp.decode(s, pick), k);
  }
}

TEST(MvSpace, ExplicitBits) {
  BddManager mgr(4);
  MvSpace sp(mgr);
  MvVarId s = sp.addVar("s", 4, {}, std::vector<BddVar>{1, 3});
  EXPECT_EQ(sp.bits(s), (std::vector<BddVar>{1, 3}));
  EXPECT_THROW(sp.addVar("t", 4, {}, std::vector<BddVar>{0}),
               std::invalid_argument);
}

TEST(MvSpace, CubeCoversBits) {
  BddManager mgr;
  MvSpace sp(mgr);
  MvVarId a = sp.addVar("a", 4);
  MvVarId b = sp.addVar("b", 2);
  Bdd cube = sp.cube(std::vector<MvVarId>{a, b});
  EXPECT_EQ(mgr.support(cube).size(), 3u);
  EXPECT_EQ(sp.totalBits({a, b}), 3u);
}

TEST(Mvf, ConstantAndVarFunction) {
  BddManager mgr;
  MvSpace sp(mgr);
  MvVarId s = sp.addVar("s", 3);
  Mvf c = Mvf::constant(mgr, 3, 1);
  EXPECT_TRUE(c.part(0).isZero());
  EXPECT_TRUE(c.part(1).isOne());
  EXPECT_TRUE(c.part(2).isZero());
  Mvf f = Mvf::varFunction(sp, s);
  EXPECT_EQ(f.part(2), sp.literal(s, 2));
  EXPECT_TRUE(f.isDeterministic(sp.validEncodings(s)));
}

TEST(Mvf, MayEqualAndRelations) {
  BddManager mgr;
  MvSpace sp(mgr);
  MvVarId a = sp.addVar("a", 3);
  MvVarId b = sp.addVar("b", 3);
  Mvf fa = Mvf::varFunction(sp, a);
  Mvf fb = Mvf::varFunction(sp, b);
  Bdd eq = fa.mayEqual(fb);
  // eq == OR_k (a=k & b=k)
  Bdd expected = mgr.bddZero();
  for (uint32_t k = 0; k < 3; ++k)
    expected |= sp.literal(a, k) & sp.literal(b, k);
  EXPECT_EQ(eq, expected);
}

TEST(Mvf, NondetSet) {
  BddManager mgr;
  MvSpace sp(mgr);
  MvVarId a = sp.addVar("a", 2);
  // A relation that allows both values when a=1.
  Mvf f(std::vector<Bdd>{sp.literal(a, 0) | sp.literal(a, 1), sp.literal(a, 1)});
  EXPECT_EQ(f.nondetSet(), sp.literal(a, 1));
  EXPECT_FALSE(f.isDeterministic(mgr.bddOne()));
  EXPECT_TRUE(f.isDeterministic(sp.literal(a, 0)));
  EXPECT_TRUE(f.definedSet().isOne());
}

TEST(Mvf, ToRelation) {
  BddManager mgr;
  MvSpace sp(mgr);
  MvVarId in = sp.addVar("in", 2);
  MvVarId out = sp.addVar("out", 3);
  // f(in) = in + 1
  Mvf f(std::vector<Bdd>{mgr.bddZero(), sp.literal(in, 0), sp.literal(in, 1)});
  Bdd rel = f.toRelation(sp, out);
  EXPECT_EQ(rel, (sp.literal(in, 0) & sp.literal(out, 1)) |
                     (sp.literal(in, 1) & sp.literal(out, 2)));
}

}  // namespace
}  // namespace hsis
