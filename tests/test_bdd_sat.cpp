// Randomized satCount oracle: random expression DAGs over up to 16
// variables are built simultaneously as a BDD and as an explicit truth
// vector; the model count must match the popcount exactly (satCount works
// in exact powers of two well inside double precision here). Negations in
// the expression stream exercise complement-edge inputs directly.
#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <vector>

#include "bdd/bdd.hpp"

namespace hsis {
namespace {

// Truth vector over n vars: bit i of word i/64 is f(assignment i), where
// bit v of i is the value of variable v.
struct TruthVec {
  explicit TruthVec(uint32_t n) : nbits(1u << n), w((nbits + 63) / 64, 0) {}
  uint32_t nbits;
  std::vector<uint64_t> w;

  uint64_t popcount() const {
    uint64_t total = 0;
    for (uint64_t x : w) total += static_cast<uint64_t>(std::popcount(x));
    return total;
  }
};

TruthVec varVec(uint32_t v, uint32_t n) {
  TruthVec tv(n);
  for (uint32_t i = 0; i < tv.nbits; ++i) {
    if ((i >> v) & 1u) tv.w[i / 64] |= 1ull << (i % 64);
  }
  return tv;
}

void applyNot(TruthVec& a) {
  for (size_t i = 0; i < a.w.size(); ++i) a.w[i] = ~a.w[i];
  // Mask the tail so popcount stays honest for n < 6.
  uint32_t tail = a.nbits % 64;
  if (tail != 0) a.w.back() &= (1ull << tail) - 1;
}

TEST(BddSatCount, RandomizedOracle) {
  std::mt19937 rng(20260809);
  for (int trial = 0; trial < 30; ++trial) {
    uint32_t n = 3 + rng() % 14;  // 3..16 variables
    BddManager m(n);
    // Seed with one literal, then fold in random ops against fresh
    // literals or the accumulated function itself.
    uint32_t v0 = rng() % n;
    Bdd f = m.bddVar(v0);
    TruthVec tf = varVec(v0, n);
    int ops = 8 + static_cast<int>(rng() % 24);
    for (int k = 0; k < ops; ++k) {
      uint32_t v = rng() % n;
      Bdd g = m.bddVar(v);
      TruthVec tg = varVec(v, n);
      if (rng() % 2 == 0) {
        g = !g;
        applyNot(tg);
      }
      switch (rng() % 4) {
        case 0:
          f = f & g;
          for (size_t i = 0; i < tf.w.size(); ++i) tf.w[i] &= tg.w[i];
          break;
        case 1:
          f = f | g;
          for (size_t i = 0; i < tf.w.size(); ++i) tf.w[i] |= tg.w[i];
          break;
        case 2:
          f = f ^ g;
          for (size_t i = 0; i < tf.w.size(); ++i) tf.w[i] ^= tg.w[i];
          break;
        default:
          f = !f;  // complement edge on the accumulated root
          applyNot(tf);
          break;
      }
    }
    double expected = static_cast<double>(tf.popcount());
    EXPECT_DOUBLE_EQ(m.satCount(f, n), expected)
        << "trial " << trial << " n=" << n;
    // The complement must count the rest of the space (complement-edge
    // root into satCount).
    EXPECT_DOUBLE_EQ(m.satCount(!f, n),
                     static_cast<double>(tf.nbits) - expected)
        << "trial " << trial << " n=" << n;
    // Span overload over the full variable set agrees.
    std::vector<BddVar> all(n);
    for (uint32_t v = 0; v < n; ++v) all[v] = v;
    EXPECT_DOUBLE_EQ(m.satCount(f, std::span<const BddVar>(all)), expected);
  }
}

TEST(BddSatCount, ConstantsAndScaling) {
  BddManager m(8);
  EXPECT_DOUBLE_EQ(m.satCount(m.bddOne(), 8), 256.0);
  EXPECT_DOUBLE_EQ(m.satCount(m.bddZero(), 8), 0.0);
  EXPECT_DOUBLE_EQ(m.satCount(m.bddOne(), 0), 1.0);
  // Counting a sparse function over a wider space scales by 2^extra.
  Bdd f = m.bddVar(0) & m.bddVar(1);
  EXPECT_DOUBLE_EQ(m.satCount(f, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.satCount(f, 8), 64.0);
}

TEST(BddSatCount, ThrowsWhenSpaceTooSmall) {
  // The space is a variable *count*, so the check is on support size: a
  // 3-variable function cannot be counted over a 2-variable space.
  BddManager m(8);
  Bdd f = m.bddVar(0) & m.bddVar(1) & m.bddVar(5);
  EXPECT_THROW(m.satCount(f, 2), std::invalid_argument);
  // Complemented root hits the same validation.
  EXPECT_THROW(m.satCount(!f, 2), std::invalid_argument);
  EXPECT_DOUBLE_EQ(m.satCount(f, 3), 1.0);
  EXPECT_DOUBLE_EQ(m.satCount(f, 8), 32.0);
}

TEST(BddSatCount, SpanOverloadValidation) {
  BddManager m(4);
  Bdd f = m.bddVar(0) & m.bddVar(1);
  std::vector<BddVar> unknown{0, 1, 99};
  EXPECT_THROW(m.satCount(f, std::span<const BddVar>(unknown)),
               std::invalid_argument);
  std::vector<BddVar> missing{0};  // support var 1 outside the set
  EXPECT_THROW(m.satCount(f, std::span<const BddVar>(missing)),
               std::invalid_argument);
  // Duplicates count once: space {0,1}, one satisfying assignment.
  std::vector<BddVar> dup{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(m.satCount(f, std::span<const BddVar>(dup)), 1.0);
  // Extra non-support vars widen the space.
  std::vector<BddVar> wide{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(m.satCount(f, std::span<const BddVar>(wide)), 4.0);
}

}  // namespace
}  // namespace hsis
