// Tests for the symbolic FSM layer: construction, early quantification,
// image computation, reachability, and trace generation.
#include <gtest/gtest.h>

#include "blifmv/blifmv.hpp"
#include "fsm/fsm.hpp"
#include "fsm/image.hpp"
#include "fsm/quantify.hpp"
#include "fsm/trace.hpp"

namespace hsis {
namespace {

blifmv::Model flatOf(const char* text) {
  return blifmv::flatten(blifmv::parse(text));
}

const char* kCounter = R"(
.model counter
.mv s, ns 4
.table s ns
0 1
1 2
2 3
3 0
.latch ns s
.reset s
0
.end
)";

const char* kNondetPair = R"(
.model pair
.mv a, na, b, nb 3
.table a na
0 (0,1)
1 (1,2)
2 (2,0)
.table b nb
- =b
.latch na a
.latch nb b
.reset a
0
.reset b
1
.end
)";

TEST(Fsm, CounterStructure) {
  BddManager mgr;
  auto flat = flatOf(kCounter);
  Fsm fsm(mgr, flat);
  EXPECT_EQ(fsm.numLatches(), 1u);
  EXPECT_EQ(fsm.latchName(0), "s");
  EXPECT_EQ(fsm.stateVars().size(), 1u);
  EXPECT_EQ(fsm.nextVars().size(), 1u);
  EXPECT_TRUE(fsm.inputVars().empty());
  EXPECT_EQ(fsm.internalVars().size(), 1u);  // ns
  EXPECT_EQ(fsm.stateBits(), 2u);
  EXPECT_EQ(fsm.relations().size(), 2u);  // table + latch link
  EXPECT_TRUE(fsm.signalVar("s").has_value());
  EXPECT_FALSE(fsm.signalVar("zz").has_value());
  EXPECT_TRUE(fsm.diagnostics().empty());
}

TEST(Fsm, InterleavedStateBits) {
  BddManager mgr;
  auto flat = flatOf(kCounter);
  Fsm fsm(mgr, flat);
  const auto& xb = fsm.space().bits(fsm.stateVar(0));
  const auto& yb = fsm.space().bits(fsm.nextVar(0));
  // present/next bits pairwise adjacent in the order
  for (size_t i = 0; i < xb.size(); ++i) {
    EXPECT_EQ(mgr.level(yb[i]), mgr.level(xb[i]) + 1);
  }
}

TEST(Fsm, InitialStates) {
  BddManager mgr;
  auto flat = flatOf(kNondetPair);
  Fsm fsm(mgr, flat);
  Bdd init = fsm.initialStates();
  EXPECT_DOUBLE_EQ(fsm.countStates(init), 1.0);
  EXPECT_EQ(init, fsm.stateFromValues({0, 1}));
}

TEST(Fsm, NondeterministicReset) {
  BddManager mgr;
  auto flat = flatOf(R"(
.model m
.table x
1
.latch x s
.reset s
0
1
.end
)");
  Fsm fsm(mgr, flat);
  EXPECT_DOUBLE_EQ(fsm.countStates(fsm.initialStates()), 2.0);
}

TEST(Fsm, RenameRails) {
  BddManager mgr;
  auto flat = flatOf(kCounter);
  Fsm fsm(mgr, flat);
  Bdd sIs2 = fsm.space().literal(fsm.stateVar(0), 2);
  Bdd next = fsm.presentToNext(sIs2);
  EXPECT_EQ(next, fsm.space().literal(fsm.nextVar(0), 2));
  EXPECT_EQ(fsm.nextToPresent(next), sIs2);
}

TEST(Fsm, FormatAndDecode) {
  BddManager mgr;
  auto flat = flatOf(kNondetPair);
  Fsm fsm(mgr, flat);
  std::vector<int8_t> cube = concretizeState(fsm, fsm.initialStates());
  EXPECT_EQ(fsm.decodeState(cube), (std::vector<uint32_t>{0, 1}));
  std::string s = fsm.formatState(cube);
  EXPECT_NE(s.find("a=0"), std::string::npos);
  EXPECT_NE(s.find("b=1"), std::string::npos);
}

TEST(Fsm, ConstructionErrors) {
  BddManager mgr;
  // two latches driving one output
  EXPECT_THROW(Fsm(mgr, flatOf(R"(
.model m
.table x
1
.latch x s
.latch x s
.reset s
0
.end
)")),
               std::runtime_error);
  // table drives latch output
  BddManager mgr2;
  EXPECT_THROW(Fsm(mgr2, flatOf(R"(
.model m
.table x
1
.table s
0
.latch x s
.reset s
0
.end
)")),
               std::runtime_error);
  // missing reset
  BddManager mgr3;
  EXPECT_THROW(Fsm(mgr3, flatOf(R"(
.model m
.table x
1
.latch x s
.end
)")),
               std::runtime_error);
  // combinational cycle
  BddManager mgr4;
  EXPECT_THROW(Fsm(mgr4, flatOf(R"(
.model m
.table b a
- =b
.table a b
- =a
.end
)")),
               std::runtime_error);
  // bad symbolic value
  BddManager mgr5;
  EXPECT_THROW(Fsm(mgr5, flatOf(R"(
.model m
.mv x 2
.table x
purple
.end
)")),
               std::runtime_error);
}

TEST(Fsm, UndrivenSignalDiagnostic) {
  BddManager mgr;
  auto flat = flatOf(R"(
.model m
.table w out
- =w
.end
)");
  Fsm fsm(mgr, flat);
  EXPECT_FALSE(fsm.diagnostics().empty());
  EXPECT_EQ(fsm.inputVars().size(), 1u);  // w treated as free input
}

// --------------------------------------------------------- quantification

class QuantMethods : public ::testing::TestWithParam<QuantMethod> {};

TEST_P(QuantMethods, AllPlannersAgree) {
  BddManager mgr;
  auto flat = flatOf(kNondetPair);
  Fsm fsm(mgr, flat);
  Bdd naive = productAndQuantify(mgr, fsm.relations(), fsm.nonStateCube(),
                                 QuantMethod::Naive);
  Bdd other = productAndQuantify(mgr, fsm.relations(), fsm.nonStateCube(),
                                 GetParam());
  EXPECT_EQ(naive, other);
}

INSTANTIATE_TEST_SUITE_P(Planners, QuantMethods,
                         ::testing::Values(QuantMethod::Naive,
                                           QuantMethod::Greedy,
                                           QuantMethod::Tree));

TEST(Quantify, StatsAndPeak) {
  BddManager mgr;
  auto flat = flatOf(kNondetPair);
  Fsm fsm(mgr, flat);
  QuantExecStats naive, greedy;
  productAndQuantify(mgr, fsm.relations(), fsm.nonStateCube(),
                     QuantMethod::Naive, &naive);
  productAndQuantify(mgr, fsm.relations(), fsm.nonStateCube(),
                     QuantMethod::Greedy, &greedy);
  EXPECT_GT(naive.peakIntermediateNodes, 0u);
  EXPECT_GT(greedy.peakIntermediateNodes, 0u);
  EXPECT_LE(greedy.peakIntermediateNodes, naive.peakIntermediateNodes * 2);
}

TEST(Quantify, HandlesConstantOneRelations) {
  BddManager mgr(4);
  std::vector<Bdd> rels{mgr.bddOne(), mgr.bddVar(0) & mgr.bddVar(1), mgr.bddOne()};
  Bdd r = productAndQuantify(mgr, rels, mgr.bddVar(0), QuantMethod::Greedy);
  EXPECT_EQ(r, mgr.bddVar(1));
}

TEST(Quantify, ToStringNames) {
  EXPECT_EQ(toString(QuantMethod::Naive), "naive");
  EXPECT_EQ(toString(QuantMethod::Greedy), "greedy");
  EXPECT_EQ(toString(QuantMethod::Tree), "tree");
}

// ------------------------------------------------------------------ image

TEST(Image, MonolithicAndPartitionedAgree) {
  BddManager mgr;
  auto flat = flatOf(kNondetPair);
  Fsm fsm(mgr, flat);
  auto mono = TransitionRelation::monolithic(fsm);
  auto part = TransitionRelation::partitioned(fsm, 16);  // force many clusters
  EXPECT_TRUE(mono.isMonolithic());
  Bdd s = fsm.initialStates();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(mono.image(s), part.image(s)) << "step " << i;
    EXPECT_EQ(mono.preimage(s), part.preimage(s)) << "step " << i;
    s = mono.image(s);
  }
  if (!part.isMonolithic()) {
    EXPECT_GT(part.clusterCount(), 1u);
    EXPECT_THROW((void)part.monolithicRelation(), std::logic_error);
  }
}

TEST(Image, ImagePreimageGaloisConnection) {
  BddManager mgr;
  auto flat = flatOf(kNondetPair);
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  Bdd s = fsm.initialStates();
  // S ⊆ pre(img(S)) whenever every state of S has a successor
  Bdd img = tr.image(s);
  EXPECT_TRUE(s.leq(tr.preimage(img)));
  // img(pre(T) ∩ ...) ⊆ T-ish: image of preimage intersected is inside
  Bdd t = fsm.space().literal(fsm.stateVar(0), 1);
  Bdd pre = tr.preimage(t);
  if (!pre.isZero()) {
    EXPECT_FALSE((tr.image(pre) & t).isZero());
  }
}

TEST(Image, ReachabilityCounter) {
  BddManager mgr;
  auto flat = flatOf(kCounter);
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  ReachResult r = reachableStates(tr, fsm.initialStates());
  EXPECT_DOUBLE_EQ(fsm.countStates(r.reached), 4.0);
  EXPECT_EQ(r.depth, 3u);
  EXPECT_FALSE(r.stoppedEarly);
}

TEST(Image, ReachabilityOnionRings) {
  BddManager mgr;
  auto flat = flatOf(kCounter);
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  ReachOptions opts;
  opts.keepOnionRings = true;
  ReachResult r = reachableStates(tr, fsm.initialStates(), opts);
  ASSERT_EQ(r.onionRings.size(), 4u);
  // rings are disjoint and union to reached
  Bdd all = mgr.bddZero();
  for (const Bdd& ring : r.onionRings) {
    EXPECT_TRUE((all & ring).isZero());
    all |= ring;
  }
  EXPECT_EQ(all, r.reached);
}

TEST(Image, WatchStopsEarly) {
  BddManager mgr;
  auto flat = flatOf(kCounter);
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  ReachOptions opts;
  size_t calls = 0;
  opts.watch = [&](const Bdd&, size_t) { return ++calls == 2; };
  ReachResult r = reachableStates(tr, fsm.initialStates(), opts);
  EXPECT_TRUE(r.stoppedEarly);
  EXPECT_LT(fsm.countStates(r.reached), 4.0);
}

TEST(Image, MaxStepsBound) {
  BddManager mgr;
  auto flat = flatOf(kCounter);
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  ReachOptions opts;
  opts.maxSteps = 1;
  ReachResult r = reachableStates(tr, fsm.initialStates(), opts);
  EXPECT_TRUE(r.stoppedEarly);
  EXPECT_DOUBLE_EQ(fsm.countStates(r.reached), 2.0);
}

TEST(Image, MinimizedAgreesOnCareSet) {
  BddManager mgr;
  auto flat = flatOf(kNondetPair);
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::partitioned(fsm, 100);
  ReachResult r = reachableStates(tr, fsm.initialStates());
  auto trMin = tr.minimized(r.reached);
  Bdd s = fsm.initialStates();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(trMin.image(s), tr.image(s));
    s = tr.image(s);
  }
}

// ------------------------------------------------------------------ trace

TEST(Trace, ShortestPath) {
  BddManager mgr;
  auto flat = flatOf(kCounter);
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  Bdd target = fsm.space().literal(fsm.stateVar(0), 3);
  auto t = shortestPathTo(tr, fsm.initialStates(), target);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->states.size(), 4u);  // 0,1,2,3
  EXPECT_FALSE(t->isLasso());
  // decode endpoints
  EXPECT_EQ(fsm.decodeState(t->states.front()), std::vector<uint32_t>{0});
  EXPECT_EQ(fsm.decodeState(t->states.back()), std::vector<uint32_t>{3});
  // consecutive states are actually connected
  for (size_t i = 0; i + 1 < t->states.size(); ++i) {
    Bdd cur = fsm.stateFromValues(fsm.decodeState(t->states[i]));
    Bdd nxt = fsm.stateFromValues(fsm.decodeState(t->states[i + 1]));
    EXPECT_FALSE((tr.image(cur) & nxt).isZero());
  }
}

TEST(Trace, UnreachableTarget) {
  BddManager mgr;
  auto flat = flatOf(kNondetPair);
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  // b is frozen at 1, so b=2 is unreachable
  Bdd target = fsm.space().literal(fsm.stateVar(1), 2);
  EXPECT_EQ(shortestPathTo(tr, fsm.initialStates(), target), std::nullopt);
}

TEST(Trace, FairLassoOnCycle) {
  BddManager mgr;
  auto flat = flatOf(kCounter);
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  ReachResult r = reachableStates(tr, fsm.initialStates());
  Bdd constraint = fsm.space().literal(fsm.stateVar(0), 2);
  auto t = fairLasso(tr, fsm.initialStates(), r.reached, {constraint});
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->isLasso());
  // the cycle visits s=2
  bool hits = false;
  for (size_t i = static_cast<size_t>(t->cycleStart); i < t->states.size(); ++i) {
    if (fsm.decodeState(t->states[i])[0] == 2) hits = true;
  }
  EXPECT_TRUE(hits);
  // every consecutive pair (and the back edge) is a real transition
  for (size_t i = 0; i + 1 < t->states.size(); ++i) {
    Bdd cur = fsm.stateFromValues(fsm.decodeState(t->states[i]));
    Bdd nxt = fsm.stateFromValues(fsm.decodeState(t->states[i + 1]));
    EXPECT_FALSE((tr.image(cur) & nxt).isZero());
  }
  Bdd last = fsm.stateFromValues(fsm.decodeState(t->states.back()));
  Bdd loop = fsm.stateFromValues(
      fsm.decodeState(t->states[static_cast<size_t>(t->cycleStart)]));
  EXPECT_FALSE((tr.image(last) & loop).isZero());
}

TEST(Trace, LassoRespectsHull) {
  BddManager mgr;
  auto flat = flatOf(kNondetPair);
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  ReachResult r = reachableStates(tr, fsm.initialStates());
  auto t = fairLasso(tr, fsm.initialStates(), r.reached, {});
  ASSERT_TRUE(t.has_value());
  for (const auto& s : t->states) {
    Bdd cube = fsm.stateFromValues(fsm.decodeState(s));
    EXPECT_TRUE(cube.leq(r.reached));
  }
}

}  // namespace
}  // namespace hsis
