// Tests for the property library (paper future-work item 8): every template
// is checked against designs where it should pass and where it should fail.
#include <gtest/gtest.h>

#include "hsis/environment.hpp"
#include "proplib/proplib.hpp"

namespace hsis {
namespace {

// A requester/server pair: req pulses nondeterministically, ack follows one
// cycle later; gnt0/gnt1 are mutually exclusive grants; a 2-bit counter
// cycles forever.
const char* kDesign = R"(
module m;
  wire clk;
  reg req, ack, gnt0, gnt1, turn;
  reg [1:0] cnt;
  always @(posedge clk) begin
    req <= $ND(0, 1);
    ack <= req;
    turn <= !turn;
    gnt0 <= turn;
    gnt1 <= !turn;
    cnt <= cnt + 1;
  end
  initial req = 0;
  initial ack = 0;
  initial turn = 0;
  initial gnt0 = 0;
  initial gnt1 = 0;
  initial cnt = 0;
endmodule
)";

struct ProplibFixture : ::testing::Test {
  void SetUp() override {
    env.readVerilog(kDesign);
  }
  bool verify(const PifProperty& p) { return env.verify(p).holds; }
  Environment env;
};

TEST_F(ProplibFixture, Invariant) {
  EXPECT_TRUE(verify(proplib::invariant("i1", parseSigExpr("cnt!=0 | ack=0 | ack=1"))));
  EXPECT_FALSE(verify(proplib::invariant("i2", parseSigExpr("cnt!=3"))));
}

TEST_F(ProplibFixture, InvariantAutomatonAgreesWithCtl) {
  for (const char* expr : {"!(gnt0=1 & gnt1=1)", "cnt!=2", "req=0"}) {
    bool ctl = verify(proplib::invariant("c", parseSigExpr(expr)));
    bool lc = verify(proplib::invariantAutomaton("a", parseSigExpr(expr)));
    EXPECT_EQ(ctl, lc) << expr;
  }
}

TEST_F(ProplibFixture, MutualExclusion) {
  EXPECT_TRUE(verify(proplib::mutualExclusion("m1", parseSigExpr("gnt0=1"),
                                              parseSigExpr("gnt1=1"))));
  EXPECT_FALSE(verify(proplib::mutualExclusion("m2", parseSigExpr("req=1"),
                                               parseSigExpr("ack=1"))));
}

TEST_F(ProplibFixture, Response) {
  // ack follows req one cycle later on every path
  EXPECT_TRUE(verify(proplib::response("r1", parseSigExpr("req=1"),
                                       parseSigExpr("ack=1"))));
  // but cnt=0 does not guarantee a future req
  EXPECT_FALSE(verify(proplib::response("r2", parseSigExpr("cnt=0"),
                                        parseSigExpr("req=1"))));
}

TEST_F(ProplibFixture, ResponseAutomatonAgreesWithCtl) {
  struct Pair {
    const char* trig;
    const char* resp;
  } pairs[] = {{"req=1", "ack=1"}, {"cnt=0", "req=1"}, {"gnt0=1", "gnt1=1"}};
  for (const Pair& p : pairs) {
    bool ctl = verify(
        proplib::response("c", parseSigExpr(p.trig), parseSigExpr(p.resp)));
    bool lc = verify(proplib::responseAutomaton("a", parseSigExpr(p.trig),
                                                parseSigExpr(p.resp)));
    EXPECT_EQ(ctl, lc) << p.trig << " -> " << p.resp;
  }
}

TEST_F(ProplibFixture, ExistenceAndResettable) {
  EXPECT_TRUE(verify(proplib::existence("e1", parseSigExpr("cnt=3"))));
  EXPECT_TRUE(verify(proplib::resettable("s1", parseSigExpr("cnt=0"))));
  EXPECT_FALSE(verify(proplib::existence("e2", parseSigExpr("gnt0=1 & gnt1=1"))));
}

TEST_F(ProplibFixture, Recurrence) {
  // the counter passes 3 infinitely often — both formalisms agree
  EXPECT_TRUE(verify(proplib::recurrence("rec1", parseSigExpr("cnt=3"))));
  EXPECT_TRUE(verify(proplib::recurrenceCtl("rec2", parseSigExpr("cnt=3"))));
  // req=1 recurrence fails (the environment may stop requesting)...
  EXPECT_FALSE(verify(proplib::recurrence("rec3", parseSigExpr("req=1"))));
  EXPECT_FALSE(verify(proplib::recurrenceCtl("rec4", parseSigExpr("req=1"))));
  // ...unless fairness forbids starving the requester
  env.addFairness(proplib::noStarvation(parseSigExpr("req=0")));
  EXPECT_TRUE(verify(proplib::recurrence("rec5", parseSigExpr("req=1"))));
  EXPECT_TRUE(verify(proplib::recurrenceCtl("rec6", parseSigExpr("req=1"))));
}

TEST_F(ProplibFixture, Precedence) {
  // cnt=1 precedes cnt=2 (the counter counts up)
  EXPECT_TRUE(verify(proplib::precedence("p1", parseSigExpr("cnt=1"),
                                         parseSigExpr("cnt=2"))));
  EXPECT_FALSE(verify(proplib::precedence("p2", parseSigExpr("cnt=2"),
                                          parseSigExpr("cnt=1"))));
}

TEST_F(ProplibFixture, AbsenceAfter) {
  // after cnt=3 the counter wraps, so cnt=3 recurs: absence fails
  EXPECT_FALSE(verify(proplib::absenceAfter("a1", parseSigExpr("cnt=3"),
                                            parseSigExpr("cnt=3"))));
}

TEST_F(ProplibFixture, CyclicOrder) {
  // the counter values occur in cyclic order 1, 2, 3, 0... but the guards
  // overlap with "no event" only if exclusive; counter values are exclusive
  std::vector<SigExprRef> events{parseSigExpr("cnt=1"), parseSigExpr("cnt=2"),
                                 parseSigExpr("cnt=3"), parseSigExpr("cnt=0")};
  // initial state has cnt=0, which is event 3 out of order => start at 1:
  std::vector<SigExprRef> fromOne{parseSigExpr("cnt=1"), parseSigExpr("cnt=2"),
                                  parseSigExpr("cnt=3")};
  // events 1,2,3 occur in cyclic order (cnt=0 steps are "no event")
  EXPECT_TRUE(verify(proplib::cyclicOrder("cyc1", fromOne)));
  // the reverse order fails
  std::vector<SigExprRef> wrong{parseSigExpr("cnt=3"), parseSigExpr("cnt=2"),
                                parseSigExpr("cnt=1")};
  EXPECT_FALSE(verify(proplib::cyclicOrder("cyc2", wrong)));
  EXPECT_THROW(proplib::cyclicOrder("cyc3", {parseSigExpr("cnt=1")}),
               std::invalid_argument);
}

TEST(ProplibShapes, GeneratedAutomataAreWellFormed) {
  PifProperty r = proplib::responseAutomaton("r", sigAtom("a"), sigAtom("b"));
  EXPECT_EQ(r.kind, PifProperty::Kind::Automaton);
  EXPECT_EQ(r.aut.numStates(), 2u);
  EXPECT_EQ(r.aut.rabinPairs().size(), 1u);
  PifProperty c = proplib::cyclicOrder(
      "c", {sigAtom("x"), sigAtom("y"), sigAtom("z")});
  EXPECT_EQ(c.aut.numStates(), 4u);  // 3 expects + bad
  // none of the generated automata have dead accepting structure
  std::vector<bool> dead = c.aut.deadStates();
  EXPECT_FALSE(dead[0]);
  EXPECT_TRUE(dead[3]);  // bad is the trap
}

}  // namespace
}  // namespace hsis
