// Tests for the BLIF-MV parser, writer, and flattener.
#include <gtest/gtest.h>

#include "blifmv/blifmv.hpp"

namespace hsis::blifmv {
namespace {

const char* kCounter = R"(
# a 4-valued counter
.model counter
.mv s, ns 4
.table s ns
0 1
1 2
2 3
3 0
.latch ns s
.reset s
0
.end
)";

TEST(BlifmvParse, BasicModel) {
  Design d = parse(kCounter);
  ASSERT_EQ(d.models.size(), 1u);
  const Model& m = d.root();
  EXPECT_EQ(m.name, "counter");
  ASSERT_EQ(m.tables.size(), 1u);
  EXPECT_EQ(m.tables[0].inputs, std::vector<std::string>{"s"});
  EXPECT_EQ(m.tables[0].output, "ns");
  EXPECT_EQ(m.tables[0].rows.size(), 4u);
  ASSERT_EQ(m.latches.size(), 1u);
  EXPECT_EQ(m.latches[0].input, "ns");
  EXPECT_EQ(m.latches[0].output, "s");
  EXPECT_EQ(m.latches[0].resetValues, std::vector<std::string>{"0"});
  ASSERT_NE(m.declOf("s"), nullptr);
  EXPECT_EQ(m.declOf("s")->domain, 4u);
  EXPECT_EQ(m.declOf("unknown"), nullptr);
}

TEST(BlifmvParse, EntryKinds) {
  Design d = parse(R"(
.model kinds
.mv a 4
.table a b out
- 1 (0,1)
!2 - =a
.default 0
.end
)");
  const Table& t = d.root().tables[0];
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0].entries[0].kind, RowEntry::Kind::Any);
  EXPECT_EQ(t.rows[0].entries[1].kind, RowEntry::Kind::Values);
  EXPECT_EQ(t.rows[0].entries[2].kind, RowEntry::Kind::Values);
  EXPECT_EQ(t.rows[0].entries[2].values, (std::vector<std::string>{"0", "1"}));
  EXPECT_EQ(t.rows[1].entries[0].kind, RowEntry::Kind::Complement);
  EXPECT_EQ(t.rows[1].entries[0].values, std::vector<std::string>{"2"});
  EXPECT_EQ(t.rows[1].entries[2].kind, RowEntry::Kind::Equal);
  EXPECT_EQ(t.rows[1].entries[2].eqVar, "a");
  EXPECT_EQ(t.defaultValue, std::optional<std::string>("0"));
}

TEST(BlifmvParse, SymbolicValues) {
  Design d = parse(R"(
.model sym
.mv st 3 red green blue
.table st nx
red green
green blue
blue red
.mv nx 3 red green blue
.latch nx st
.reset st
red
.end
)");
  const Model& m = d.root();
  EXPECT_EQ(m.declOf("st")->valueNames,
            (std::vector<std::string>{"red", "green", "blue"}));
  EXPECT_EQ(m.latches[0].resetValues, std::vector<std::string>{"red"});
}

TEST(BlifmvParse, Continuations) {
  Design d = parse(".model c\n.inputs a \\\nb\n.end\n");
  EXPECT_EQ(d.root().inputs, (std::vector<std::string>{"a", "b"}));
}

TEST(BlifmvParse, Errors) {
  EXPECT_THROW(parse(""), ParseException);
  EXPECT_THROW(parse(".inputs a\n"), ParseException);           // before .model
  EXPECT_THROW(parse(".model m\n.table a b\n0\n.end\n"), ParseException);  // row width
  EXPECT_THROW(parse(".model m\n.reset q\n.end\n"), ParseException);  // unknown latch
  EXPECT_THROW(parse(".model m\n.bogus x\n.end\n"), ParseException);
  EXPECT_THROW(parse(".model m\n.mv x\n.end\n"), ParseException);
  EXPECT_THROW(parse(".model m\n0 1\n.end\n"), ParseException);  // stray row
  try {
    parse(".model m\n.table a b\n0\n.end\n");
    FAIL();
  } catch (const ParseException& e) {
    EXPECT_EQ(e.error().line, 3);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(BlifmvWrite, RoundTrip) {
  Design d1 = parse(kCounter);
  std::string text = write(d1);
  Design d2 = parse(text);
  EXPECT_EQ(write(d2), text);  // fixpoint after one round
  EXPECT_EQ(d2.root().tables[0].rows.size(), 4u);
  EXPECT_EQ(d2.root().latches[0].resetValues, std::vector<std::string>{"0"});
}

TEST(BlifmvWrite, LineCount) {
  Design d = parse(kCounter);
  // .model + 2x .mv (one per signal) + .table + 4 rows + .latch + .reset
  // + value + .end = 12
  EXPECT_EQ(lineCount(d), 12u);
}

const char* kHier = R"(
.model top
.subckt cell u1 out=a
.subckt cell u2 out=b
.table a b both
1 1 1
.default 0
.end
.model cell
.outputs out
.table out
(0,1)
.end
)";

TEST(BlifmvFlatten, Hierarchy) {
  Design d = parse(kHier);
  Model flat = flatten(d);
  EXPECT_TRUE(flat.subckts.empty());
  // one table per instance plus the top-level one
  EXPECT_EQ(flat.tables.size(), 3u);
  // instance-internal outputs connected to actuals keep the actual name
  bool sawA = false, sawB = false;
  for (const Table& t : flat.tables) {
    if (t.output == "a") sawA = true;
    if (t.output == "b") sawB = true;
  }
  EXPECT_TRUE(sawA);
  EXPECT_TRUE(sawB);
}

TEST(BlifmvFlatten, PrefixesInternalSignals) {
  Design d = parse(R"(
.model top
.subckt sub u1 o=x
.end
.model sub
.outputs o
.table w
1
.table w o
- =w
.end
)");
  Model flat = flatten(d);
  bool sawPrefixed = false;
  for (const Table& t : flat.tables)
    if (t.output == "u1.w") sawPrefixed = true;
  EXPECT_TRUE(sawPrefixed);
}

TEST(BlifmvFlatten, Errors) {
  // unknown model
  EXPECT_THROW(flatten(parse(".model t\n.subckt nope u1 a=b\n.end\n")),
               std::runtime_error);
  // unknown port
  EXPECT_THROW(flatten(parse(R"(
.model t
.subckt sub u1 bogus=x
.end
.model sub
.outputs o
.table o
1
.end
)")),
               std::runtime_error);
  // unconnected input
  EXPECT_THROW(flatten(parse(R"(
.model t
.subckt sub u1 o=x
.end
.model sub
.inputs i
.outputs o
.table i o
- =i
.end
)")),
               std::runtime_error);
  // recursive instantiation
  EXPECT_THROW(flatten(parse(R"(
.model a
.subckt a u1
.end
)")),
               std::runtime_error);
  // domain mismatch across a connection (both ends declared)
  EXPECT_THROW(flatten(parse(R"(
.model t
.mv x 4
.subckt sub u1 o=x
.end
.model sub
.outputs o
.mv o 2
.table o
1
.end
)")),
               std::runtime_error);
}

TEST(BlifmvFlatten, MergesValueNames) {
  Design d = parse(R"(
.model t
.mv x 3
.subckt sub u1 o=x
.end
.model sub
.outputs o
.mv o 3 lo mid hi
.table o
mid
.end
)");
  Model flat = flatten(d);
  ASSERT_NE(flat.declOf("x"), nullptr);
  EXPECT_EQ(flat.declOf("x")->valueNames,
            (std::vector<std::string>{"lo", "mid", "hi"}));
}

}  // namespace
}  // namespace hsis::blifmv
