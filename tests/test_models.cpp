// Integration tests over the Table-1 model suite: every design compiles,
// builds, and every property produces its designed verdict.
#include <gtest/gtest.h>

#include "hsis/environment.hpp"
#include "models/models.hpp"

namespace hsis {
namespace {

TEST(Models, RegistryComplete) {
  EXPECT_EQ(models::all().size(), 6u);
  for (const char* name :
       {"philos", "pingpong", "gigamax", "scheduler", "dcnew", "2mdlc"}) {
    const models::ModelDef* m = models::find(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_FALSE(m->verilog.empty());
    EXPECT_FALSE(m->pif.empty());
    EXPECT_FALSE(m->description.empty());
  }
  EXPECT_EQ(models::find("nope"), nullptr);
}

struct Expected {
  const char* model;
  const char* property;
  bool holds;
};

// The designed verdict of every property in the suite. philos deliberately
// contains the left-fork deadlock; dcnew deliberately starves channel 2.
const Expected kExpected[] = {
    {"philos", "mutex", true},
    {"philos", "no_deadlock", false},
    {"philos", "neighbours_exclusive", true},
    {"philos", "progress_p0", false},
    {"pingpong", "one_owner", true},
    {"pingpong", "ping_to_pong", true},
    {"pingpong", "pong_to_ping", true},
    {"pingpong", "always_return", true},
    {"pingpong", "flight_lands", true},
    {"pingpong", "can_rally", true},
    {"pingpong", "never_both", true},
    {"pingpong", "pong_infinitely_often", true},
    {"pingpong", "alternation", true},
    {"pingpong", "ping_infinitely_often", true},
    {"pingpong", "flight_is_transient", true},
    {"pingpong", "eventually_rally", true},
    {"gigamax", "no_two_owners", true},
    {"gigamax", "owner_excludes_sharers", true},
    {"gigamax", "can_own", true},
    {"gigamax", "can_share_two", true},
    {"gigamax", "sharer_safe", true},
    {"gigamax", "can_lose_line", true},
    {"gigamax", "owner_can_demote", true},
    {"gigamax", "miss_is_served", true},
    {"gigamax", "ownership_rotates", true},
    {"gigamax", "coherence", true},
    {"scheduler", "single_token", true},
    {"scheduler", "cyclic_order", true},
    {"scheduler", "task0_runs_forever", true},
    {"dcnew", "bus_exclusive", true},
    {"dcnew", "xfer_completes", true},
    {"dcnew", "ch0_served", true},
    {"dcnew", "ch1_served", true},
    {"dcnew", "ch2_served", false},
    {"dcnew", "totals_move", true},
    {"dcnew", "parity_flips", true},
    {"dcnew", "one_transfer_at_a_time", true},
    {"2mdlc", "data_integrity", true},
    {"2mdlc", "keeps_delivering", true},
};

class ModelSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelSuite, AllVerdictsAsDesigned) {
  const models::ModelDef* m = models::find(GetParam());
  ASSERT_NE(m, nullptr);
  Environment env;
  env.readVerilog(std::string(m->verilog), std::string(m->top));
  env.readPif(std::string(m->pif));
  std::vector<BugReport> reports = env.verifyAll();

  size_t checked = 0;
  for (const BugReport& r : reports) {
    for (const Expected& e : kExpected) {
      if (e.model == std::string_view(GetParam()) &&
          e.property == r.propertyName) {
        EXPECT_EQ(r.holds, e.holds) << m->name << "." << r.propertyName;
        ++checked;
        // failing properties come with a usable error trace (either inline
        // for MC or rendered into the notes for LC)
        if (!r.holds) {
          EXPECT_TRUE(r.trace.has_value() || !r.notes.empty());
        }
      }
    }
  }
  EXPECT_EQ(checked, reports.size()) << "every property has an expectation";
  EXPECT_GT(env.reachedStates(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Table1, ModelSuite,
                         ::testing::Values("philos", "pingpong", "gigamax",
                                           "scheduler", "dcnew", "2mdlc"));

TEST(Models, Table1Shape) {
  // The shape facts EXPERIMENTS.md reports: BLIF-MV is larger than the
  // Verilog source everywhere; 2mdlc has by far the largest BLIF-MV; the
  // scheduler has the largest reachable state space.
  size_t mdlcLines = 0, maxOtherLines = 0;
  double schedulerStates = 0, maxOtherStates = 0;
  for (const auto& m : models::all()) {
    Environment env;
    env.readVerilog(std::string(m.verilog), std::string(m.top));
    env.build();
    EXPECT_GT(env.metrics().linesBlifMv, env.metrics().linesVerilog) << m.name;
    double states = env.reachedStates();
    if (m.name == "2mdlc") {
      mdlcLines = env.metrics().linesBlifMv;
    } else {
      maxOtherLines = std::max(maxOtherLines, env.metrics().linesBlifMv);
    }
    if (m.name == "scheduler") {
      schedulerStates = states;
    } else {
      maxOtherStates = std::max(maxOtherStates, states);
    }
  }
  EXPECT_GT(mdlcLines, maxOtherLines * 4);
  EXPECT_GT(schedulerStates, maxOtherStates);
}

}  // namespace
}  // namespace hsis
