# CTest script: prove that a build with -DHSIS_OBS_DISABLE=ON (all
# instrumentation compiled to no-ops) still passes the full test suite.
# Run by the `obs_disabled_build` test registered in tests/CMakeLists.txt:
#
#   cmake -DSOURCE_DIR=... -DBUILD_DIR=... -DGENERATOR=... -DBUILD_TYPE=...
#         -P obs_disabled_check.cmake
#
# The nested build configures into BUILD_DIR (inside the primary build
# tree, so it is covered by .gitignore and `clean` semantics) and runs the
# hsis_tests binary directly rather than through ctest, avoiding recursive
# test discovery.

foreach(var SOURCE_DIR BUILD_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "obs_disabled_check: ${var} not set")
  endif()
endforeach()

set(configure_args
    -S ${SOURCE_DIR} -B ${BUILD_DIR} -DHSIS_OBS_DISABLE=ON)
if(DEFINED GENERATOR AND NOT GENERATOR STREQUAL "")
  list(APPEND configure_args -G ${GENERATOR})
endif()
if(DEFINED BUILD_TYPE AND NOT BUILD_TYPE STREQUAL "")
  list(APPEND configure_args -DCMAKE_BUILD_TYPE=${BUILD_TYPE})
endif()

message(STATUS "obs_disabled_check: configuring ${BUILD_DIR}")
execute_process(COMMAND ${CMAKE_COMMAND} ${configure_args}
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_disabled_check: configure failed (${rc})")
endif()

include(ProcessorCount)
ProcessorCount(ncpu)
if(ncpu EQUAL 0)
  set(ncpu 2)
endif()

message(STATUS "obs_disabled_check: building hsis_tests (-j${ncpu})")
execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --target hsis_tests
            --parallel ${ncpu}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_disabled_check: build failed (${rc})")
endif()

message(STATUS "obs_disabled_check: running full suite")
execute_process(COMMAND ${BUILD_DIR}/tests/hsis_tests
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "obs_disabled_check: suite failed under HSIS_OBS_DISABLE (${rc})")
endif()
