// Tests for hsis_cex: artifact assembly from failing checks (latch + input
// bindings, lassos), the hsis-cex-v1 JSON round trip, VCD export, replay
// verification (including tamper detection and recompile-from-source), the
// markdown renderer, and the HSIS_CEX_DISABLE gate.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "blifmv/blifmv.hpp"
#include "cex/cex.hpp"
#include "ctl/mc.hpp"
#include "hsis/session.hpp"
#include "vl2mv/vl2mv.hpp"

namespace hsis {
namespace {

// s cycles 0 -> 1 -> 2 -> 0 deterministically (value 3 is an unreachable
// sink); t toggles only when the free input w is 1. Open system: every
// failing trace that flips t must record w=1 stimulus.
constexpr const char* kOpenModel = R"(
.model openm
.mv s, ns 4
.table s ns
0 1
1 2
2 0
3 3
.table w t nt
0 - =t
1 0 1
1 1 0
.latch ns s
.latch nt t
.reset s
0
.reset t
0
.end
)";

struct CexFixture : ::testing::Test {
  void SetUp() override {
    if (!cex::cexEnabled()) GTEST_SKIP() << "cex disabled";
    flat = blifmv::flatten(blifmv::parse(kOpenModel));
    fsm = std::make_unique<Fsm>(mgr, flat);
    tr = TransitionRelation::monolithic(*fsm);
    mc = std::make_unique<CtlChecker>(*fsm, *tr);
  }

  /// Check `prop` (must fail with a trace) and build an artifact from it.
  cex::Artifact failingArtifact(const char* prop) {
    McResult r = mc->check(parseCtl(prop));
    EXPECT_FALSE(r.holds) << prop;
    EXPECT_TRUE(r.counterexample.has_value()) << prop;
    cex::BuildInputs in;
    in.propertyName = "p";
    in.propertyText = prop;
    in.designName = "openm";
    return cex::build(*fsm, *r.counterexample, in);
  }

  BddManager mgr;
  blifmv::Model flat;
  std::unique_ptr<Fsm> fsm;
  std::optional<TransitionRelation> tr;
  std::unique_ptr<CtlChecker> mc;
};

TEST_F(CexFixture, BuildCapturesLatchesInputsAndSteps) {
  // AG t=0 fails in one step: w=1 flips t. The stimulus must be recorded.
  cex::Artifact a = failingArtifact("AG t=0");
  ASSERT_EQ(a.latches.size(), 2u);
  EXPECT_EQ(a.latches[0].name, "s");
  EXPECT_EQ(a.latches[0].domain, 4u);
  EXPECT_EQ(a.latches[0].bits, 2u);
  EXPECT_EQ(a.latches[1].name, "t");
  EXPECT_EQ(a.latches[1].domain, 2u);
  ASSERT_EQ(a.inputs.size(), 1u);
  EXPECT_EQ(a.inputs[0].name, "w");
  EXPECT_FALSE(a.isLasso());
  ASSERT_EQ(a.steps.size(), 2u);
  EXPECT_EQ(a.steps[0].latchValues, (std::vector<uint32_t>{0, 0}));
  EXPECT_EQ(a.steps[1].latchValues, (std::vector<uint32_t>{1, 1}));
  // the only way to flip t is w=1; the final plain-path step has no
  // outgoing transition, so no stimulus.
  EXPECT_EQ(a.steps[0].inputValues, (std::vector<uint32_t>{1}));
  EXPECT_TRUE(a.steps[1].inputValues.empty());
  EXPECT_EQ(a.propertyText, "AG t=0");
  EXPECT_FALSE(a.propertyDigest.empty());
  EXPECT_EQ(a.replay, "unverified");
}

TEST_F(CexFixture, AfFailureBuildsLasso) {
  // s never reaches 3, so AF s=3 fails with a fair lasso over the 0-1-2
  // cycle. Lassos carry one extra stimulus entry for the back edge.
  cex::Artifact a = failingArtifact("AF s=3");
  EXPECT_TRUE(a.isLasso());
  ASSERT_GE(a.steps.size(), 1u);
  EXPECT_GE(a.cycleStart, 0);
  EXPECT_LT(static_cast<size_t>(a.cycleStart), a.steps.size());
  // every step (including the last: it has the back-edge transition)
  // carries stimulus for the one free input.
  for (const cex::Step& st : a.steps) EXPECT_EQ(st.inputValues.size(), 1u);
}

TEST_F(CexFixture, JsonRoundTrips) {
  cex::Artifact a = failingArtifact("AG t=0");
  a.traceId = "00e1ab4401c0ffee";
  a.designDigest = "feedbead00000001";
  a.designKind = "blifmv";
  a.designText = kOpenModel;
  cex::verifyAndStamp(a, *fsm, *tr);
  cex::Artifact b = cex::parseJson(cex::toJson(a));
  EXPECT_EQ(b.traceId, a.traceId);
  EXPECT_EQ(b.designName, "openm");
  EXPECT_EQ(b.designDigest, a.designDigest);
  EXPECT_EQ(b.designKind, "blifmv");
  EXPECT_EQ(b.designText, a.designText);
  EXPECT_EQ(b.propertyText, a.propertyText);
  EXPECT_EQ(b.propertyDigest, a.propertyDigest);
  EXPECT_EQ(b.cycleStart, a.cycleStart);
  EXPECT_EQ(b.replay, a.replay);
  ASSERT_EQ(b.latches.size(), a.latches.size());
  EXPECT_EQ(b.latches[0].name, a.latches[0].name);
  EXPECT_EQ(b.latches[0].domain, a.latches[0].domain);
  EXPECT_EQ(b.latches[0].bits, a.latches[0].bits);
  ASSERT_EQ(b.inputs.size(), 1u);
  EXPECT_EQ(b.inputs[0].name, "w");
  ASSERT_EQ(b.steps.size(), a.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(b.steps[i].latchValues, a.steps[i].latchValues);
    EXPECT_EQ(b.steps[i].inputValues, a.steps[i].inputValues);
  }
}

TEST_F(CexFixture, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(cex::parseJson("not json"), std::runtime_error);
  EXPECT_THROW(cex::parseJson("{\"schema\": \"bogus-v1\"}"),
               std::runtime_error);
  // step width must match the latch list
  cex::Artifact a = failingArtifact("AG t=0");
  a.steps[0].latchValues.pop_back();
  EXPECT_THROW(cex::parseJson(cex::toJson(a)), std::runtime_error);
}

TEST_F(CexFixture, VcdExportsSignalsAndUnrollsLasso) {
  cex::Artifact path = failingArtifact("AG t=0");
  std::string vcd = cex::toVcd(path);
  EXPECT_NE(vcd.find("$var wire 2 ! s $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 \" t $end"), std::string::npos);
  EXPECT_NE(vcd.find("w $end"), std::string::npos);  // input has a $var too
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_EQ(vcd.find("lasso"), std::string::npos);  // plain path: no unroll

  cex::Artifact lasso = failingArtifact("AF s=3");
  std::string lvcd = cex::toVcd(lasso);
  EXPECT_NE(lvcd.find("lasso: cycle re-enters step"), std::string::npos);
  // the cycle is unrolled twice: one timestamp per step plus one per
  // cycle state beyond the steps themselves.
  size_t cycleLen =
      lasso.steps.size() - static_cast<size_t>(lasso.cycleStart);
  std::string lastTs =
      "#" + std::to_string(lasso.steps.size() + cycleLen);
  EXPECT_NE(lvcd.find(lastTs), std::string::npos);
}

TEST_F(CexFixture, ReplayVerifiesGenuineTraces) {
  cex::Artifact ag = failingArtifact("AG t=0");
  cex::ReplayResult r = cex::replay(ag, *fsm, *tr);
  EXPECT_TRUE(r.verified) << r.note;

  cex::Artifact af = failingArtifact("AF s=3");
  r = cex::replay(af, *fsm, *tr);
  EXPECT_TRUE(r.verified) << r.note;

  cex::verifyAndStamp(ag, *fsm, *tr);
  EXPECT_EQ(ag.replay, "verified");
  EXPECT_TRUE(ag.replayNote.empty());
}

TEST_F(CexFixture, ReplayDetectsTampering) {
  // Not an initial state.
  cex::Artifact a = failingArtifact("AG t=0");
  a.steps[0].latchValues = {1, 0};
  cex::ReplayResult r = cex::replay(a, *fsm, *tr);
  EXPECT_FALSE(r.verified);
  EXPECT_FALSE(r.note.empty());

  // Value outside the latch domain.
  a = failingArtifact("AG t=0");
  a.steps[1].latchValues[0] = 7;
  r = cex::replay(a, *fsm, *tr);
  EXPECT_FALSE(r.verified);

  // Final state no longer violates AG t=0 (and contradicts the recorded
  // w=1 stimulus).
  a = failingArtifact("AG t=0");
  a.steps[1].latchValues = {1, 0};
  r = cex::replay(a, *fsm, *tr);
  EXPECT_FALSE(r.verified);

  // Impossible transition: s jumps 0 -> 2.
  a = failingArtifact("AG t=0");
  a.steps[1].latchValues = {2, 1};
  r = cex::replay(a, *fsm, *tr);
  EXPECT_FALSE(r.verified);
}

TEST_F(CexFixture, NonReplayableShapesComeBackUnverified) {
  // EF is not a universal pattern: the checker yields no trace, so fake a
  // single-state artifact and ask for a replay of an unsupported shape.
  McResult r = mc->check(parseCtl("AG t=0"));
  ASSERT_TRUE(r.counterexample.has_value());
  cex::BuildInputs in;
  in.propertyText = "EF t=1 & AG s!=3";  // conjunction: not AG/AF-shaped
  cex::Artifact a = cex::build(*fsm, *r.counterexample, in);
  cex::ReplayResult rr = cex::replay(a, *fsm, *tr);
  EXPECT_FALSE(rr.verified);
  EXPECT_NE(rr.note.find("not replayable"), std::string::npos) << rr.note;
}

TEST_F(CexFixture, MarkdownRendersStepTable) {
  cex::Artifact a = failingArtifact("AG t=0");
  cex::verifyAndStamp(a, *fsm, *tr);
  std::string md = cex::renderMarkdown(a);
  EXPECT_NE(md.find("# Counterexample"), std::string::npos);
  EXPECT_NE(md.find("AG t=0"), std::string::npos);
  EXPECT_NE(md.find("verified"), std::string::npos);
  EXPECT_NE(md.find("| step |"), std::string::npos);
  EXPECT_NE(md.find("in: w"), std::string::npos);
}

TEST_F(CexFixture, WriteFilesCreatesParentDirectories) {
  cex::Artifact a = failingArtifact("AG t=0");
  std::string dir = ::testing::TempDir() + "cex_nested/deeper";
  std::string json = dir + "/a.cex.json";
  std::string vcd = dir + "/a.cex.vcd";
  ASSERT_TRUE(cex::writeFiles(a, json, vcd));
  std::ifstream jin(json);
  ASSERT_TRUE(jin.good());
  std::ostringstream text;
  text << jin.rdbuf();
  cex::Artifact back = cex::parseJson(text.str());
  EXPECT_EQ(back.steps.size(), a.steps.size());
  std::ifstream vin(vcd);
  EXPECT_TRUE(vin.good());
  std::remove(json.c_str());
  std::remove(vcd.c_str());
}

// ---- recompile-from-source replay (the hsis_report cex --replay path) ----

constexpr const char* kVerilogSrc = R"(
module m;
  wire clk;
  wire en;
  reg a;
  reg [1:0] b;
  always @(posedge clk) begin
    a <= !a;
    if (en) b <= b + 1;
  end
  initial a = 0;
  initial b = 0;
endmodule
)";

TEST(CexReplayFromSource, RecompilesEmbeddedDesign) {
  if (!cex::cexEnabled()) GTEST_SKIP() << "cex disabled";
  auto flat = blifmv::flatten(vl2mv::compile(kVerilogSrc));
  BddManager mgr;
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  CtlChecker mc(fsm, tr);
  McResult r = mc.check(parseCtl("AG b!=2"));
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());

  Session::DesignSource src{Session::DesignSource::Kind::Verilog,
                            kVerilogSrc, ""};
  cex::BuildInputs in;
  in.propertyName = "bcap";
  in.propertyText = "AG b!=2";
  in.designName = "m";
  in.designDigest = src.digest();
  in.designKind = "verilog";
  in.designText = kVerilogSrc;
  cex::Artifact a = cex::build(fsm, *r.counterexample, in);

  // Verilog line attribution flowed through .lineinfo into the artifact.
  bool sawLine = false;
  for (const cex::SignalInfo& l : a.latches)
    if (l.name == "b") sawLine = l.sourceLine == 6;
  EXPECT_TRUE(sawLine);

  cex::ReplayResult rr = cex::replayFromSource(a);
  EXPECT_TRUE(rr.verified) << rr.note;

  // A digest mismatch means the embedded source is not what was checked.
  cex::Artifact stale = a;
  stale.designDigest = "0000000000000000";
  rr = cex::replayFromSource(stale);
  EXPECT_FALSE(rr.verified);
  EXPECT_NE(rr.note.find("digest"), std::string::npos) << rr.note;

  // No embedded source at all: unverified with a note, no crash.
  cex::Artifact bare = a;
  bare.designKind.clear();
  bare.designText.clear();
  rr = cex::replayFromSource(bare);
  EXPECT_FALSE(rr.verified);
  EXPECT_FALSE(rr.note.empty());
}

// ---- the HSIS_CEX_DISABLE gate ----

TEST(CexGate, EnvVarDisablesArtifacts) {
  ::setenv("HSIS_CEX_DISABLE", "1", 1);
  EXPECT_FALSE(cex::cexEnabled());
  ::unsetenv("HSIS_CEX_DISABLE");
}

}  // namespace
}  // namespace hsis
