// Cross-cutting consistency sweep over the whole model suite: the two
// transition-relation forms and all quantification planners must agree on
// the reachable state count of every bundled design.
#include <gtest/gtest.h>

#include "hsis/environment.hpp"
#include "models/models.hpp"
#include "vl2mv/vl2mv.hpp"

namespace hsis {
namespace {

class SuiteConsistency : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteConsistency, TrFormsAgreeOnReachability) {
  const models::ModelDef* m = models::find(GetParam());
  ASSERT_NE(m, nullptr);
  auto design = vl2mv::compile(std::string(m->verilog), std::string(m->top));
  auto flat = blifmv::flatten(design);

  double counts[3];
  size_t depths[3];
  int i = 0;
  for (auto build : {+[](Fsm& f) { return TransitionRelation::monolithic(f); },
                     +[](Fsm& f) {
                       return TransitionRelation::monolithic(f, QuantMethod::Tree);
                     },
                     +[](Fsm& f) { return TransitionRelation::partitioned(f, 2000); }}) {
    BddManager mgr;
    Fsm fsm(mgr, flat);
    auto tr = build(fsm);
    ReachResult r = reachableStates(tr, fsm.initialStates());
    counts[i] = fsm.countStates(r.reached);
    depths[i] = r.depth;
    ++i;
  }
  EXPECT_DOUBLE_EQ(counts[0], counts[1]);
  EXPECT_DOUBLE_EQ(counts[0], counts[2]);
  EXPECT_EQ(depths[0], depths[1]);
  EXPECT_EQ(depths[0], depths[2]);
  EXPECT_GT(counts[0], 0.0);
}

TEST_P(SuiteConsistency, BlifMvRoundTripsThroughWriter) {
  const models::ModelDef* m = models::find(GetParam());
  auto design = vl2mv::compile(std::string(m->verilog), std::string(m->top));
  // write -> parse -> write is a fixpoint, and the re-parsed design builds
  // an FSM with the same state space
  std::string text = blifmv::write(design);
  auto design2 = blifmv::parse(text);
  EXPECT_EQ(blifmv::write(design2), text);

  BddManager mgr;
  Fsm fsm(mgr, blifmv::flatten(design2));
  auto tr = TransitionRelation::monolithic(fsm);
  double viaText = fsm.countStates(reachableStates(tr, fsm.initialStates()).reached);

  BddManager mgr2;
  Fsm fsm2(mgr2, blifmv::flatten(design));
  auto tr2 = TransitionRelation::monolithic(fsm2);
  double direct = fsm2.countStates(reachableStates(tr2, fsm2.initialStates()).reached);
  EXPECT_DOUBLE_EQ(viaText, direct);
}

INSTANTIATE_TEST_SUITE_P(AllModels, SuiteConsistency,
                         ::testing::Values("philos", "pingpong", "gigamax",
                                           "scheduler", "dcnew", "2mdlc"));

}  // namespace
}  // namespace hsis
