// Request-scoped tracing and live service telemetry: TraceContext
// propagation (frames, log events, ledger records, flight dumps), per-stage
// timing invariants, the stats-stream protocol, slow-request auto-capture,
// and the `hsis_report requests` rendering.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "models/models.hpp"
#include "obs/ledger.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "obs/tracectx.hpp"
#include "serve/pool.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/telemetry.hpp"

namespace {

using namespace hsis::serve;
namespace obs = hsis::obs;
namespace jl = hsis::obs::jsonlite;

// ------------------------------------------------------------ TraceContext

TEST(TraceContext, HexRoundTripAndJunkRejected) {
  EXPECT_EQ(obs::traceIdHex(0x00000000deadbeefULL), "00000000deadbeef");
  EXPECT_EQ(obs::parseTraceId("00000000deadbeef"), 0x00000000deadbeefULL);
  EXPECT_EQ(obs::parseTraceId("ffffffffffffffff"), ~0ULL);
  EXPECT_EQ(obs::parseTraceId(""), 0u);
  EXPECT_EQ(obs::parseTraceId("deadbeef"), 0u);           // too short
  EXPECT_EQ(obs::parseTraceId("00000000deadbeefa"), 0u);  // too long
  EXPECT_EQ(obs::parseTraceId("00000000deadbeeg"), 0u);   // bad digit
  EXPECT_EQ(obs::parseTraceId("0000000000000000"), 0u);   // zero reserved
}

TEST(TraceContext, NewIdsAreNonzeroAndDistinct) {
  uint64_t a = obs::newTraceId();
  uint64_t b = obs::newTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceContext, ScopeBindsAndUnbindsPerThread) {
  EXPECT_EQ(obs::currentTraceId(), 0u);
  {
    obs::TraceContext ctx{0xabcULL, "req-7"};
    obs::TraceScope scope(ctx);
    EXPECT_EQ(obs::currentTraceId(), 0xabcULL);
    ASSERT_NE(obs::currentTraceContext(), nullptr);
    EXPECT_EQ(obs::currentTraceContext()->requestId, "req-7");
    // Another thread sees its own (empty) binding.
    std::thread([] { EXPECT_EQ(obs::currentTraceId(), 0u); }).join();
    // The active-trace table mirrors the binding for the crash path.
    bool found = false;
    for (const auto& [tid, trace] : obs::activeTraces()) {
      if (trace == 0xabcULL) found = true;
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(obs::currentTraceId(), 0u);
  for (const auto& [tid, trace] : obs::activeTraces()) {
    EXPECT_NE(trace, 0xabcULL);
  }
}

TEST(TraceContext, FlightDumpCarriesActiveTraces) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("hsis_trace_flight_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  obs::TraceContext ctx{0x1234000056780000ULL, "flight-req"};
  obs::TraceScope scope(ctx);
  obs::flight::install(dir.string(), "test_telemetry");
  ASSERT_TRUE(obs::flight::dump("telemetry test"));
  std::ifstream in(obs::flight::dumpPath());
  std::stringstream ss;
  ss << in.rdbuf();
  std::string dump = ss.str();
  EXPECT_NE(dump.find("\"kind\": \"active_trace\""), std::string::npos);
  EXPECT_NE(dump.find("1234000056780000"), std::string::npos);
  obs::flight::uninstall();
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- propagation helpers

CheckRequest modelCheck(const char* name, const char* id) {
  const hsis::models::ModelDef* m = hsis::models::find(name);
  EXPECT_NE(m, nullptr) << name;
  CheckRequest c;
  c.id = id;
  c.name = name;
  c.design.kind = hsis::Session::DesignSource::Kind::Verilog;
  c.design.text = std::string(m->verilog);
  c.design.top = std::string(m->top);
  c.pif = std::string(m->pif);
  return c;
}

struct FrameLog {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Frame> frames;
  bool done = false;

  FrameSink sink() {
    return [this](const std::string& line) {
      Frame f = parseFrame(line);
      std::lock_guard<std::mutex> lock(mu);
      if (f.event == "done" || f.event == "error") done = true;
      frames.push_back(std::move(f));
      cv.notify_all();
    };
  }
  bool waitDone(int seconds = 60) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::seconds(seconds),
                       [&] { return done; });
  }
  const Frame* find(const char* event) {
    std::lock_guard<std::mutex> lock(mu);
    for (const Frame& f : frames) {
      if (f.event == event) return &f;
    }
    return nullptr;
  }
};

std::string frameTraceId(const Frame& f) {
  const jl::Value* v = jl::find(f.body.object(), "trace_id");
  return v != nullptr && v->isString() ? v->str() : "";
}

const jl::Object* frameStats(const Frame& f) {
  const jl::Value* v = jl::find(f.body.object(), "stats");
  return v != nullptr && v->isObject() ? &v->object() : nullptr;
}

double numAt(const jl::Object& obj, const char* key) {
  const jl::Value* v = jl::find(obj, key);
  return v != nullptr && v->isNumber() ? v->number() : -1.0;
}

// ------------------------------------------------------------- propagation

TEST(ServeTelemetry, ClientTraceIdEchoesThroughEveryChannel) {
  const std::string kTrace = "00000000deadbeef";
  std::filesystem::path ledgerPath =
      std::filesystem::temp_directory_path() /
      ("hsis_trace_ledger_" + std::to_string(::getpid()) + ".jsonl");
  std::filesystem::remove(ledgerPath);

  obs::log::clearRing();
  PoolOptions opts;
  opts.workers = 1;
  opts.ledgerPath = ledgerPath.string();
  SessionPool pool(opts);

  CheckRequest req = modelCheck("pingpong", "traced");
  req.traceId = kTrace;
  FrameLog log;
  ASSERT_TRUE(pool.submit(req, log.sink()));
  ASSERT_TRUE(log.waitDone());
  pool.shutdown(false);  // joins the worker: ledger + ring are settled

  // Every frame of the request's stream carries the client-supplied id.
  for (const char* event : {"accepted", "loaded", "verdict", "done"}) {
    const Frame* f = log.find(event);
    ASSERT_NE(f, nullptr) << event;
    EXPECT_EQ(frameTraceId(*f), kTrace) << event;
  }

  // The ledger record joins on the same id and has the stage breakdown.
  std::vector<obs::ledger::Record> records =
      obs::ledger::load(ledgerPath.string());
  ASSERT_FALSE(records.empty());
  const obs::ledger::Record& rec = records.back();
  EXPECT_EQ(rec.traceId, kTrace);
  ASSERT_EQ(rec.stages.size(), 6u);
  // Loaded records carry stages in jsonlite's key-sorted order, not
  // pipeline order — assert the set, not the sequence.
  std::vector<std::string> names;
  for (const auto& [name, micros] : rec.stages) names.push_back(name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"check", "parse", "queue",
                                             "reach", "render", "tr"}));

  if (obs::kEnabled) {
    // Log events emitted while the request ran were stamped with it too
    // ("design loaded" at least — engine events ride along at debug level).
    bool stamped = false;
    for (const std::string& line : obs::log::ringLines()) {
      if (line.find("\"trace\": \"" + kTrace + "\"") != std::string::npos)
        stamped = true;
    }
    EXPECT_TRUE(stamped);
  }
  std::filesystem::remove(ledgerPath);
}

TEST(ServeTelemetry, ServerMintsTraceIdWhenClientOmitsIt) {
  PoolOptions opts;
  opts.workers = 1;
  SessionPool pool(opts);
  FrameLog log;
  ASSERT_TRUE(pool.submit(modelCheck("pingpong", "untraced"), log.sink()));
  ASSERT_TRUE(log.waitDone());
  pool.shutdown(false);

  const Frame* done = log.find("done");
  ASSERT_NE(done, nullptr);
  std::string trace = frameTraceId(*done);
  EXPECT_EQ(trace.size(), 16u);
  EXPECT_NE(obs::parseTraceId(trace), 0u);  // valid hex, nonzero
  // Same id on the accepted frame — minted once at admission.
  const Frame* accepted = log.find("accepted");
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(frameTraceId(*accepted), trace);
}

// ------------------------------------------------------------ stage timing

TEST(ServeTelemetry, StageMicrosSumStaysWithinReportedWall) {
  PoolOptions opts;
  opts.workers = 1;
  SessionPool pool(opts);
  FrameLog log;
  ASSERT_TRUE(pool.submit(modelCheck("pingpong", "staged"), log.sink()));
  ASSERT_TRUE(log.waitDone());
  pool.shutdown(false);

  const Frame* done = log.find("done");
  ASSERT_NE(done, nullptr);
  const jl::Object* stats = frameStats(*done);
  ASSERT_NE(stats, nullptr);
  const jl::Value* stagesV = jl::find(*stats, "stages");
  ASSERT_NE(stagesV, nullptr);
  ASSERT_TRUE(stagesV->isObject());
  const jl::Object& stages = stagesV->object();

  double sum = 0.0;
  for (const char* name :
       {"queue", "parse", "tr", "reach", "check", "render"}) {
    double v = numAt(stages, name);
    ASSERT_GE(v, 0.0) << name;  // present and numeric, even when 0
    sum += v;
  }
  double wallMicros = numAt(*stats, "wall_s") * 1e6;
  ASSERT_GT(wallMicros, 0.0);
  // The stages are disjoint sub-intervals of [enqueue, done]: their sum
  // can never exceed the wall (small slack for per-stage rounding).
  EXPECT_LE(sum, wallMicros + 10.0);
  // And a real check did happen, so some stage is nonzero.
  EXPECT_GT(sum, 0.0);
}

// ------------------------------------------------------------ stats-stream

int connectTo(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << strerror(errno);
  return fd;
}

void sendLine(int fd, std::string line) {
  line += '\n';
  ASSERT_EQ(::send(fd, line.data(), line.size(), 0),
            static_cast<ssize_t>(line.size()));
}

std::string readLine(int fd, std::string& buf) {
  for (;;) {
    size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return "";
    buf.append(chunk, static_cast<size_t>(n));
  }
}

TEST(ServeTelemetry, StatsStreamTicksMatchSchema) {
  ServerOptions opts;
  opts.socketPath =
      "/tmp/hsis_stats_stream_" + std::to_string(::getpid()) + ".sock";
  opts.version = "test";
  opts.pool.workers = 1;
  Server server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.bind(&error)) << error;
  std::thread serverThread([&] { server.run(); });

  int fd = connectTo(server.socketPath());
  std::string buf;

  // Run one check first so the latency histograms have data.
  Request check;
  check.op = Request::Op::Check;
  check.id = "warm";
  check.check = modelCheck("pingpong", "warm");
  sendLine(fd, renderRequest(check));
  for (;;) {
    std::string line = readLine(fd, buf);
    ASSERT_FALSE(line.empty());
    Frame f = parseFrame(line);
    ASSERT_NE(f.event, "error");
    if (f.event == "done") break;
  }

  Request sub;
  sub.op = Request::Op::StatsStream;
  sub.id = "sub-1";
  sub.statsIntervalMs = 100;
  sendLine(fd, renderRequest(sub));

  uint64_t lastSeq = 0;
  for (int tick = 0; tick < 2; ++tick) {
    std::string line = readLine(fd, buf);
    ASSERT_FALSE(line.empty());
    jl::Value doc = jl::parse(line);
    ASSERT_TRUE(doc.isObject());
    const jl::Object& frame = doc.object();
    const jl::Value* schema = jl::find(frame, "schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str(), "hsis-serve-stats-v1");
    const jl::Value* event = jl::find(frame, "event");
    ASSERT_NE(event, nullptr);
    EXPECT_EQ(event->str(), "stats-tick");
    double seq = numAt(frame, "seq");
    EXPECT_EQ(seq, static_cast<double>(tick));
    lastSeq = static_cast<uint64_t>(seq);

    const jl::Value* statsV = jl::find(frame, "stats");
    ASSERT_NE(statsV, nullptr);
    ASSERT_TRUE(statsV->isObject());
    const jl::Object& stats = statsV->object();
    EXPECT_GE(numAt(stats, "t_s"), 0.0);
    EXPECT_GE(numAt(stats, "workers"), 1.0);
    EXPECT_GE(numAt(stats, "queue_depth"), 0.0);
    EXPECT_GT(numAt(stats, "rss_kb"), 0.0);
    const jl::Value* requests = jl::find(stats, "requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_EQ(numAt(requests->object(), "accepted"), 1.0);
    const jl::Value* cache = jl::find(stats, "cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(numAt(cache->object(), "misses"), 1.0);
    const jl::Value* latency = jl::find(stats, "latency_us");
    ASSERT_NE(latency, nullptr);
    ASSERT_TRUE(latency->isObject());
    for (const char* stage :
         {"queue", "parse", "tr", "reach", "check", "render", "total"}) {
      const jl::Value* row = jl::find(latency->object(), stage);
      ASSERT_NE(row, nullptr) << stage;
      ASSERT_TRUE(row->isObject()) << stage;
      // Quantiles of an empty histogram render as null ("no data"), not 0
      // ("instant"); every disabled-build row is empty by construction.
      double rowCount = numAt(row->object(), "count");
      EXPECT_GE(rowCount, 0.0) << stage;
      for (const char* field : {"p50", "p90", "p99", "max"}) {
        const jl::Value* qv = jl::find(row->object(), field);
        ASSERT_NE(qv, nullptr) << stage << field;
        if (rowCount > 0.0) {
          EXPECT_GE(numAt(row->object(), field), 0.0) << stage << field;
        } else {
          EXPECT_TRUE(qv->isNull()) << stage << field;
        }
      }
      if (obs::kEnabled) {
        // The warm-up check recorded into every stage histogram (they are
        // process-wide, so earlier pool tests may have contributed too).
        EXPECT_GE(numAt(row->object(), "count"), 1.0) << stage;
      }
    }
    if (obs::kEnabled) {
      const jl::Value* total = jl::find(latency->object(), "total");
      EXPECT_GT(numAt(total->object(), "max"), 0.0);
    }
    // The coverage rollup is constant-shape: present on every tick, zeros
    // until a request produces an enabled coverage report.
    const jl::Value* cov = jl::find(stats, "coverage");
    ASSERT_NE(cov, nullptr);
    ASSERT_TRUE(cov->isObject());
    EXPECT_GE(numAt(cov->object(), "reports"), 0.0);
    EXPECT_GE(numAt(cov->object(), "bins_total"), 0.0);
    if (obs::kEnabled) {
      EXPECT_GE(numAt(cov->object(), "reports"), 1.0);  // warm-up check ran
    }
  }
  EXPECT_EQ(lastSeq, 1u);

  // interval_ms 0 cancels the subscription; the connection keeps serving.
  Request cancel;
  cancel.op = Request::Op::StatsStream;
  cancel.id = "sub-1";
  cancel.statsIntervalMs = 0;
  sendLine(fd, renderRequest(cancel));
  Request ping;
  ping.op = Request::Op::Ping;
  ping.id = "p1";
  sendLine(fd, renderRequest(ping));
  for (;;) {
    std::string line = readLine(fd, buf);
    ASSERT_FALSE(line.empty());
    Frame f = parseFrame(line);
    if (f.event == "stats-tick") continue;  // one may already be in flight
    EXPECT_EQ(f.event, "pong");
    break;
  }

  server.stop();
  serverThread.join();
  server.pool().shutdown(false);
  ::close(fd);
  ::unlink(server.socketPath().c_str());
}

TEST(ServeProtocol, StatsStreamRequestRoundTripsAndRejectsNegative) {
  Request req;
  req.op = Request::Op::StatsStream;
  req.id = "s-1";
  req.statsIntervalMs = 250;
  Request back = parseRequest(renderRequest(req));
  EXPECT_EQ(back.op, Request::Op::StatsStream);
  EXPECT_EQ(back.statsIntervalMs, 250u);
  EXPECT_THROW(
      parseRequest(
          R"({"op": "stats-stream", "id": "x", "interval_ms": -5})"),
      ProtocolError);
}

TEST(ServeProtocol, CheckRequestCarriesTraceId) {
  Request req;
  req.op = Request::Op::Check;
  req.id = "t-1";
  req.check.id = "t-1";
  req.check.design.kind = hsis::Session::DesignSource::Kind::BlifMv;
  req.check.design.text = ".model m\n.inputs a\n.end\n";
  req.check.pif = "";
  req.check.traceId = "00ff00ff00ff00ff";
  Request back = parseRequest(renderRequest(req));
  EXPECT_EQ(back.check.traceId, "00ff00ff00ff00ff");
}

// ------------------------------------------------------------ slow capture

TEST(ServeTelemetry, SlowCaptureFiresExactlyOncePerBreachingRequest) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("hsis_slow_capture_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  PoolOptions opts;
  opts.workers = 1;
  opts.slowThresholdSeconds = 1e-9;  // everything is "slow"
  opts.artifactDir = dir.string();
  SessionPool pool(opts);

  CheckRequest req = modelCheck("pingpong", "slow");
  req.traceId = "0000feed0000beef";
  FrameLog log;
  ASSERT_TRUE(pool.submit(req, log.sink()));
  ASSERT_TRUE(log.waitDone());
  pool.shutdown(false);  // joins the worker: capture I/O has finished

  // Exactly one artifact directory, named by the trace id.
  std::vector<std::string> entries;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    entries.push_back(e.path().filename().string());
  }
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0], "0000feed0000beef");
  for (const char* file :
       {"request.json", "trace.json", "profile.folded", "census.jsonl"}) {
    EXPECT_TRUE(std::filesystem::exists(dir / entries[0] / file)) << file;
  }
  std::ifstream in(dir / entries[0] / "request.json");
  std::stringstream ss;
  ss << in.rdbuf();
  std::string meta = ss.str();
  EXPECT_NE(meta.find("\"schema\": \"hsis-slow-request-v1\""),
            std::string::npos);
  EXPECT_NE(meta.find("0000feed0000beef"), std::string::npos);
  EXPECT_NE(meta.find("\"stages\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ServeTelemetry, NoCaptureWithoutThreshold) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("hsis_no_capture_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  PoolOptions opts;
  opts.workers = 1;
  opts.artifactDir = dir.string();  // dir set but threshold 0 => disabled
  SessionPool pool(opts);
  FrameLog log;
  ASSERT_TRUE(pool.submit(modelCheck("pingpong", "fast"), log.sink()));
  ASSERT_TRUE(log.waitDone());
  pool.shutdown(false);
  EXPECT_FALSE(std::filesystem::exists(dir));
}

// -------------------------------------------------------- report rendering

TEST(LedgerRequests, RenderFlagsOutliersPastThreshold) {
  obs::ledger::Record fast;
  fast.time = "2026-08-09T00:00:00Z";
  fast.subject = "fast-model";
  fast.result = "pass";
  fast.traceId = "aaaaaaaaaaaaaaaa";
  fast.wallSeconds = 0.010;
  fast.stages = {{"queue", 100},  {"parse", 2000}, {"tr", 500},
                 {"reach", 300},  {"check", 6000}, {"render", 0}};
  obs::ledger::Record slow = fast;
  slow.subject = "slow-model";
  slow.traceId = "bbbbbbbbbbbbbbbb";
  slow.wallSeconds = 3.5;
  obs::ledger::Record noStages;  // pre-telemetry record: filtered out
  noStages.subject = "legacy";
  noStages.result = "pass";

  size_t outliers = 0;
  std::string out = obs::ledger::renderRequests({fast, slow, noStages}, 1.0,
                                                20, &outliers);
  EXPECT_EQ(outliers, 1u);
  EXPECT_NE(out.find("slow-model"), std::string::npos);
  EXPECT_NE(out.find("SLOW"), std::string::npos);
  EXPECT_NE(out.find("fast-model"), std::string::npos);
  EXPECT_NE(out.find("bbbbbbbbbbbbbbbb"), std::string::npos);
  EXPECT_EQ(out.find("legacy"), std::string::npos);
  EXPECT_NE(out.find("2 request(s), 1 outlier(s)"), std::string::npos);
}

TEST(LedgerRequests, RecordRoundTripsTraceAndStages) {
  obs::ledger::Record rec;
  rec.runId = "run-1";
  rec.time = "2026-08-09T00:00:00Z";
  rec.driver = "hsis_serve";
  rec.subject = "m";
  rec.result = "pass";
  rec.traceId = "00000000cafef00d";
  rec.wallSeconds = 0.5;
  rec.stages = {{"queue", 1}, {"parse", 2}, {"tr", 3},
                {"reach", 4}, {"check", 5}, {"render", 6}};
  std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("hsis_req_roundtrip_" + std::to_string(::getpid()) + ".jsonl");
  std::filesystem::remove(path);
  ASSERT_TRUE(obs::ledger::append(path.string(), rec));
  std::vector<obs::ledger::Record> back = obs::ledger::load(path.string());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].traceId, "00000000cafef00d");
  ASSERT_EQ(back[0].stages.size(), 6u);
  uint64_t total = 0;
  for (const auto& [name, micros] : back[0].stages) total += micros;
  EXPECT_EQ(total, 21u);
  std::filesystem::remove(path);
}

}  // namespace
