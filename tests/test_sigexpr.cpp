// Tests for the shared signal-expression language.
#include <gtest/gtest.h>

#include "blifmv/blifmv.hpp"
#include "fsm/fsm.hpp"
#include "pif/sigexpr.hpp"

namespace hsis {
namespace {

struct SigFixture : ::testing::Test {
  void SetUp() override {
    auto design = blifmv::parse(R"(
.model m
.mv st, nst 3 idle busy done
.table st nst
idle busy
busy done
done idle
.latch nst st
.reset st
idle
.table st flag
idle 0
.default 1
.end
)");
    flat = blifmv::flatten(design);
    fsm = std::make_unique<Fsm>(mgr, flat);
  }
  BddManager mgr;
  blifmv::Model flat;
  std::unique_ptr<Fsm> fsm;
};

TEST_F(SigFixture, ParseAndPrint) {
  SigExprRef e = parseSigExpr("!(st=idle | st=busy) & 1");
  EXPECT_EQ(e->kind, SigExpr::Kind::And);
  std::string s = e->toString();
  EXPECT_NE(s.find("st=idle"), std::string::npos);
  // reparsing the printed form is stable
  SigExprRef e2 = parseSigExpr(e->toString());
  EXPECT_EQ(evalSigExpr(e, *fsm), evalSigExpr(e2, *fsm));
}

TEST_F(SigFixture, Evaluation) {
  const MvSpace& sp = fsm->space();
  MvVarId st = *fsm->signalVar("st");
  EXPECT_EQ(evalSigExpr(parseSigExpr("st=busy"), *fsm), sp.literal(st, 1));
  EXPECT_EQ(evalSigExpr(parseSigExpr("st=1"), *fsm), sp.literal(st, 1));
  EXPECT_EQ(evalSigExpr(parseSigExpr("st!=busy"), *fsm),
            sp.validEncodings(st) & !sp.literal(st, 1));
  EXPECT_EQ(evalSigExpr(parseSigExpr("st=idle | st=done"), *fsm),
            sp.literal(st, 0) | sp.literal(st, 2));
  EXPECT_TRUE(evalSigExpr(parseSigExpr("1"), *fsm).isOne());
  EXPECT_TRUE(evalSigExpr(parseSigExpr("0"), *fsm).isZero());
  EXPECT_EQ(evalSigExpr(parseSigExpr("!(st=idle)"), *fsm),
            !sp.literal(st, 0));
}

TEST_F(SigFixture, DoubleOperators) {
  // && and || and == are tolerated
  EXPECT_EQ(evalSigExpr(parseSigExpr("st==busy && st==busy"), *fsm),
            evalSigExpr(parseSigExpr("st=busy & st=busy"), *fsm));
  EXPECT_EQ(evalSigExpr(parseSigExpr("st=idle || st=busy"), *fsm),
            evalSigExpr(parseSigExpr("st=idle | st=busy"), *fsm));
}

TEST_F(SigFixture, Errors) {
  EXPECT_THROW(parseSigExpr(""), std::runtime_error);
  EXPECT_THROW(parseSigExpr("(st=1"), std::runtime_error);
  EXPECT_THROW(parseSigExpr("st=1 trailing"), std::runtime_error);
  EXPECT_THROW(evalSigExpr(parseSigExpr("bogus=1"), *fsm), std::runtime_error);
  EXPECT_THROW(evalSigExpr(parseSigExpr("st=purple"), *fsm), std::runtime_error);
  EXPECT_THROW(evalSigExpr(parseSigExpr("st=5"), *fsm), std::runtime_error);
  // bare atom on a non-binary signal
  EXPECT_THROW(evalSigExpr(parseSigExpr("st"), *fsm), std::runtime_error);
  // combinational signal rejected for state predicates
  EXPECT_THROW(evalSigExpr(parseSigExpr("flag=1"), *fsm), std::runtime_error);
}

TEST(SigExpr, Builders) {
  SigExprRef e = sigAnd(sigNot(sigAtom("a")), sigOr(sigTrue(), sigFalse()));
  EXPECT_EQ(e->kind, SigExpr::Kind::And);
  EXPECT_EQ(e->toString(), "(!(a) & (1 | 0))");
}

}  // namespace
}  // namespace hsis
