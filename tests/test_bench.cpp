// Tests for the benchmark harness layer (bench/bench_schema.hpp) and for
// the cooperative-abort unwinding contract the harness depends on: a
// watchdog abort mid-reachability or mid-LC must unwind via AbortedError
// without corrupting the BDD manager, and a subsequent run in the same
// process must still produce correct results.
//
// Everything here is control flow, so every test also passes in the
// HSIS_OBS_DISABLE build (live-value assertions are gated on obs::kEnabled).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_schema.hpp"
#include "hsis/environment.hpp"
#include "models/models.hpp"
#include "obs/control.hpp"
#include "obs/jsonlite.hpp"
#include "obs/obs.hpp"

namespace hsisbench {
namespace {

BenchDoc sampleDoc() {
  BenchDoc doc;
  doc.suite = "unit";
  doc.gitSha = "abc1234";
  doc.repeat = 2;
  doc.warmup = 1;
  CaseResult fast;
  fast.name = "unit/fast";
  fast.runs = {{10.0, 9.0, 4096, false, "", ""},
               {12.0, 11.0, 4100, false, "", ""}};
  CaseResult slow;
  slow.name = "unit/slow";
  slow.runs = {{100.0, 95.0, 8192, false, "", ""}};
  CaseResult dead;
  dead.name = "unit/aborted";
  dead.runs = {{50.0, 48.0, 8192, true, "wall-clock limit 1s exceeded",
                "fsm.reach"}};
  doc.cases = {fast, slow, dead};
  return doc;
}

// ------------------------------------------------------ schema round-trip

TEST(BenchSchema, JsonRoundTrip) {
  BenchDoc doc = sampleDoc();
  std::string json = toJson(doc);
  BenchDoc back = parseBenchJson(json);

  EXPECT_EQ(back.suite, "unit");
  EXPECT_EQ(back.gitSha, "abc1234");
  EXPECT_EQ(back.repeat, 2);
  EXPECT_EQ(back.warmup, 1);
  ASSERT_EQ(back.cases.size(), 3u);

  const CaseResult* fast = back.findCase("unit/fast");
  ASSERT_NE(fast, nullptr);
  ASSERT_EQ(fast->runs.size(), 2u);
  EXPECT_DOUBLE_EQ(fast->runs[0].wallMs, 10.0);
  EXPECT_DOUBLE_EQ(fast->runs[1].userMs, 11.0);
  EXPECT_EQ(fast->runs[0].peakRssKb, 4096u);
  EXPECT_FALSE(fast->anyAborted());
  EXPECT_DOUBLE_EQ(fast->wallMsMin(), 10.0);

  const CaseResult* dead = back.findCase("unit/aborted");
  ASSERT_NE(dead, nullptr);
  EXPECT_TRUE(dead->anyAborted());
  EXPECT_EQ(dead->runs[0].abortReason, "wall-clock limit 1s exceeded");
  EXPECT_EQ(dead->runs[0].abortPhase, "fsm.reach");
}

TEST(BenchSchema, RejectsWrongSchemaTag) {
  EXPECT_THROW(parseBenchJson(R"({"schema": "something-else", "cases": []})"),
               std::runtime_error);
  EXPECT_THROW(parseBenchJson("not json at all"), std::runtime_error);
  EXPECT_THROW(parseBenchJson(R"({"schema": "hsis-bench-v1"})"),
               std::runtime_error);  // missing cases
}

TEST(BenchSchema, EmbeddedObsSnapshotStaysParseable) {
  // A real runCase result splices the hsis-obs-v1 snapshot into the case;
  // the whole document must still be one valid JSON value.
  hsis::obs::clearAbort();
  CaseResult c = runCase("unit/obs", [] {
    hsis::obs::counter("test.bench.counter").add(3);
  }, 2, 0);
  BenchDoc doc;
  doc.suite = "unit";
  doc.gitSha = "abc";
  doc.repeat = 2;
  doc.cases = {c};
  std::string json = toJson(doc);
  namespace jl = hsis::obs::jsonlite;
  jl::Value root = jl::parse(json);  // throws on malformed splice
  const jl::Value* cases = jl::find(root.object(), "cases");
  ASSERT_NE(cases, nullptr);
  const jl::Value* obs = jl::find(cases->array().at(0).object(), "obs");
  ASSERT_NE(obs, nullptr);
  const jl::Value* schema = jl::find(obs->object(), "schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str(), "hsis-obs-v1");
}

// -------------------------------------------------------------- runCase

TEST(BenchRunCase, RecordsTimingsPerRun) {
  hsis::obs::clearAbort();
  int calls = 0;
  CaseResult result = runCase("unit/work", [&calls] {
    ++calls;
    volatile uint64_t sink = 0;
    for (int i = 0; i < 200000; ++i) sink = sink + static_cast<uint64_t>(i);
  }, 3, 1);
  EXPECT_EQ(calls, 4);  // 1 warmup + 3 measured
  ASSERT_EQ(result.runs.size(), 3u);
  for (const RunStats& r : result.runs) {
    EXPECT_FALSE(r.aborted);
    EXPECT_GE(r.wallMs, 0.0);
    EXPECT_GT(r.peakRssKb, 0u);
  }
  EXPECT_FALSE(result.anyAborted());
  EXPECT_GT(result.wallMsMin(), 0.0);
}

TEST(BenchRunCase, MarksAbortedRunsAndStops) {
  hsis::obs::clearAbort();
  int calls = 0;
  CaseResult result = runCase("unit/abort", [&calls] {
    ++calls;
    hsis::obs::requestAbort("test abort", "unit.phase");
    hsis::obs::checkAbort();
  }, 3, 0);
  EXPECT_EQ(calls, 1);  // later repeats skipped: they would only re-abort
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_TRUE(result.runs[0].aborted);
  EXPECT_EQ(result.runs[0].abortReason, "test abort");
  EXPECT_TRUE(result.anyAborted());
  hsis::obs::clearAbort();
}

// -------------------------------------------------------------- compare

TEST(BenchCompare, IdenticalDocsPass) {
  BenchDoc doc = sampleDoc();
  CompareResult cmp = compareBench(doc, doc, 10.0);
  EXPECT_EQ(cmp.regressions, 0);
  // The aborted case is listed but never counted.
  bool sawAborted = false;
  for (const CompareRow& row : cmp.rows)
    if (row.name == "unit/aborted") sawAborted = row.note == "aborted";
  EXPECT_TRUE(sawAborted);
}

TEST(BenchCompare, FlagsInjectedSlowdown) {
  BenchDoc oldDoc = sampleDoc();
  BenchDoc newDoc = sampleDoc();
  for (CaseResult& c : newDoc.cases)
    for (RunStats& r : c.runs) r.wallMs *= 2.0;  // injected 2x slowdown
  CompareResult cmp = compareBench(oldDoc, newDoc, 10.0);
  EXPECT_EQ(cmp.regressions, 2);  // fast + slow; the aborted case is skipped
  for (const CompareRow& row : cmp.rows) {
    if (row.note.empty()) {
      EXPECT_NEAR(row.ratio, 2.0, 1e-9);
      EXPECT_TRUE(row.regression);
    }
  }
  // A generous threshold lets the same slowdown through.
  EXPECT_EQ(compareBench(oldDoc, newDoc, 150.0).regressions, 0);
}

TEST(BenchCompare, HandlesMissingCasesWithoutFailing) {
  BenchDoc oldDoc = sampleDoc();
  BenchDoc newDoc = sampleDoc();
  newDoc.cases.pop_back();
  CaseResult fresh;
  fresh.name = "unit/new-case";
  fresh.runs = {{1.0, 1.0, 100, false, "", ""}};
  newDoc.cases.push_back(fresh);
  CompareResult cmp = compareBench(oldDoc, newDoc, 10.0);
  EXPECT_EQ(cmp.regressions, 0);
  bool onlyOld = false, onlyNew = false;
  for (const CompareRow& row : cmp.rows) {
    if (row.name == "unit/aborted") onlyOld = row.note == "only in old";
    if (row.name == "unit/new-case") onlyNew = row.note == "only in new";
  }
  EXPECT_TRUE(onlyOld);
  EXPECT_TRUE(onlyNew);
}

// ------------------------------------------- abort unwinding (reach, LC)
//
// The contract hsis_bench and the watchdog rely on: an abort raised while
// reachability or the LC hull is running unwinds cleanly, and after
// clearAbort() the same Environment-level computation succeeds with the
// correct answer — no BDD-manager state was corrupted by the unwind.

TEST(BenchAbort, ReachabilityUnwindsAndRecovers) {
  const auto* model = hsis::models::find("philos");
  ASSERT_NE(model, nullptr);

  hsis::obs::clearAbort();
  double expected;
  {
    hsis::Environment env;
    env.readVerilog(std::string(model->verilog), std::string(model->top));
    env.build();
    expected = env.reachedStates();
    EXPECT_GT(expected, 0.0);
  }

  hsis::Environment env;
  env.readVerilog(std::string(model->verilog), std::string(model->top));
  hsis::obs::requestAbort("test: kill reach", "test.phase");
  EXPECT_THROW(
      {
        env.build();  // TR build + reach both poll the abort flag
        (void)env.reachedStates();
      },
      hsis::obs::AbortedError);

  // Recovery: same process, fresh environment, correct fixpoint.
  hsis::obs::clearAbort();
  hsis::Environment env2;
  env2.readVerilog(std::string(model->verilog), std::string(model->top));
  env2.build();
  EXPECT_DOUBLE_EQ(env2.reachedStates(), expected);
}

TEST(BenchAbort, LanguageContainmentUnwindsAndRecovers) {
  const char* kAutomaton =
      R"PIF(automaton p { state ok init; state bad;
        edge ok -> ok on "!(ping_has & pong_has)";
        edge ok -> bad on "ping_has & pong_has";
        edge bad -> bad on "1"; accept stay ok; })PIF";
  const auto* model = hsis::models::find("pingpong");
  ASSERT_NE(model, nullptr);

  hsis::obs::clearAbort();
  hsis::Environment env;
  env.readVerilog(std::string(model->verilog), std::string(model->top));
  env.build();
  hsis::PifFile pif = hsis::parsePif(kAutomaton);

  hsis::obs::requestAbort("test: kill lc", "test.phase");
  EXPECT_THROW((void)env.verify(pif.properties.at(0)),
               hsis::obs::AbortedError);

  // Recovery on the SAME environment: the unwind left its manager usable.
  hsis::obs::clearAbort();
  hsis::BugReport report = env.verify(pif.properties.at(0));
  EXPECT_TRUE(report.holds);
}

}  // namespace
}  // namespace hsisbench
