// Randomized oracle tests for the BDD package: every public operation is
// cross-checked against explicit truth-table evaluation on seeded random
// expression DAGs, both before and after a forced gc() + sift() pass. This
// is the safety net for representation changes (complement edges, apply
// kernels, cache keep-alive) — any divergence between the package and the
// semantic ground truth fails here with the offending seed in the message.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "bdd/bdd.hpp"
#include "obs/obs.hpp"
#include "par/fj.hpp"

namespace hsis {
namespace {

// A truth table over n vars: tt[a] is f at assignment a, where bit v of the
// index `a` is the value of variable v.
using TT = std::vector<uint8_t>;

TT ttConst(uint32_t n, bool v) { return TT(size_t{1} << n, v ? 1 : 0); }

TT ttVar(uint32_t n, BddVar v) {
  TT t(size_t{1} << n);
  for (size_t a = 0; a < t.size(); ++a) t[a] = (a >> v) & 1;
  return t;
}

TT ttApply(const TT& f, const TT& g, char op) {
  TT r(f.size());
  for (size_t a = 0; a < f.size(); ++a) {
    switch (op) {
      case '&': r[a] = f[a] & g[a]; break;
      case '|': r[a] = f[a] | g[a]; break;
      case '^': r[a] = f[a] ^ g[a]; break;
      default: ADD_FAILURE() << "bad op"; break;
    }
  }
  return r;
}

TT ttNot(const TT& f) {
  TT r(f.size());
  for (size_t a = 0; a < f.size(); ++a) r[a] = 1 - f[a];
  return r;
}

TT ttIte(const TT& f, const TT& g, const TT& h) {
  TT r(f.size());
  for (size_t a = 0; a < f.size(); ++a) r[a] = f[a] ? g[a] : h[a];
  return r;
}

// Existentially quantify variable v out of f.
TT ttExistsVar(const TT& f, BddVar v) {
  TT r(f.size());
  size_t bit = size_t{1} << v;
  for (size_t a = 0; a < f.size(); ++a) r[a] = f[a | bit] | f[a & ~bit];
  return r;
}

TT ttExists(TT f, const std::vector<BddVar>& vars) {
  for (BddVar v : vars) f = ttExistsVar(f, v);
  return f;
}

// Evaluate a BDD at one assignment through the public cofactor API, so the
// walk exercises complement-bit application in Bdd::low()/high().
bool evalBdd(Bdd f, size_t assignment) {
  while (!f.isConstant()) {
    BddVar v = f.var();
    f = ((assignment >> v) & 1) ? f.high() : f.low();
  }
  return f.isOne();
}

// Compute the truth table of an arbitrary BDD by evaluation.
TT ttOf(const Bdd& f, uint32_t n) {
  TT r(size_t{1} << n);
  for (size_t a = 0; a < r.size(); ++a) r[a] = evalBdd(f, a) ? 1 : 0;
  return r;
}

void expectMatches(const Bdd& f, const TT& tt, uint32_t seed, const char* what) {
  for (size_t a = 0; a < tt.size(); ++a) {
    if (evalBdd(f, a) != (tt[a] != 0)) {
      ADD_FAILURE() << what << " diverges from truth table at assignment " << a
                    << " (seed " << seed << ")";
      return;
    }
  }
}

// One randomized round: build a small DAG of named functions, then check
// every public operation against the table oracle.
void oracleRound(uint32_t seed) {
  std::mt19937 rng(seed);
  uint32_t n = 3 + seed % 8;      // 3..10 vars exhaustively checked
  if (seed % 97 == 0) n = 14;     // occasional large case (16384 rows)
  BddManager m(n);

  // Pool of (BDD, truth table) pairs grown by random operations.
  std::vector<std::pair<Bdd, TT>> pool;
  pool.emplace_back(m.bddOne(), ttConst(n, true));
  pool.emplace_back(m.bddZero(), ttConst(n, false));
  for (BddVar v = 0; v < n; ++v) {
    pool.emplace_back(m.bddVar(v), ttVar(n, v));
    pool.emplace_back(!m.bddVar(v), ttNot(ttVar(n, v)));
  }
  auto pick = [&]() -> std::pair<Bdd, TT>& {
    return pool[rng() % pool.size()];
  };

  uint32_t steps = 8 + rng() % 10;
  for (uint32_t i = 0; i < steps; ++i) {
    auto& [f, tf] = pick();
    auto& [g, tg] = pick();
    switch (rng() % 5) {
      case 0: pool.emplace_back(f & g, ttApply(tf, tg, '&')); break;
      case 1: pool.emplace_back(f | g, ttApply(tf, tg, '|')); break;
      case 2: pool.emplace_back(f ^ g, ttApply(tf, tg, '^')); break;
      case 3: pool.emplace_back(!f, ttNot(tf)); break;
      default: {
        auto& [h, th] = pick();
        pool.emplace_back(m.ite(f, g, h), ttIte(tf, tg, th));
        break;
      }
    }
    const auto& [r, tr] = pool.back();
    expectMatches(r, tr, seed, "combinator result");
  }

  // Pick two interesting operands and a random positive cube.
  const auto& [f, tf] = pool[pool.size() - 1];
  const auto& [g, tg] = pool[pool.size() - 2];
  std::vector<BddVar> cubeVars;
  Bdd cube = m.bddOne();
  for (BddVar v = 0; v < n; ++v) {
    if (rng() % 3 == 0) {
      cubeVars.push_back(v);
      cube &= m.bddVar(v);
    }
  }

  // Quantification and the relational product.
  TT tEx = ttExists(tf, cubeVars);
  expectMatches(m.exists(f, cube), tEx, seed, "exists");
  expectMatches(m.forall(f, cube), ttNot(ttExists(ttNot(tf), cubeVars)), seed,
                "forall");
  expectMatches(m.andExists(f, g, cube),
                ttExists(ttApply(tf, tg, '&'), cubeVars), seed, "andExists");

  // Generalized cofactors agree with f on the care set, and restrict never
  // leaves supp(f) ∪ supp(c).
  if (!g.isZero()) {
    Bdd con = m.constrain(f, g);
    Bdd res = m.restrict(f, g);
    TT tCon = ttOf(con, n), tRes = ttOf(res, n);
    for (size_t a = 0; a < tf.size(); ++a) {
      if (!tg[a]) continue;
      EXPECT_EQ(tCon[a], tf[a]) << "constrain diverges on care set, seed " << seed;
      EXPECT_EQ(tRes[a], tf[a]) << "restrict diverges on care set, seed " << seed;
    }
    std::vector<BddVar> fgSupp = m.support(f & g);
    for (BddVar v : m.support(res)) {
      EXPECT_TRUE(std::find(fgSupp.begin(), fgSupp.end(), v) != fgSupp.end() ||
                  std::find(m.support(f).begin(), m.support(f).end(), v) !=
                      m.support(f).end() ||
                  std::find(m.support(g).begin(), m.support(g).end(), v) !=
                      m.support(g).end())
          << "restrict introduced variable " << v << ", seed " << seed;
    }
  }

  // Renaming under a random permutation of all variables.
  std::vector<BddVar> map(n);
  std::iota(map.begin(), map.end(), 0);
  std::shuffle(map.begin(), map.end(), rng);
  TT tPerm(tf.size());
  for (size_t a = 0; a < tf.size(); ++a) {
    size_t b = 0;  // permute(f)(a) = f(b) with b[v] = a[map[v]]
    for (BddVar v = 0; v < n; ++v) b |= ((a >> map[v]) & 1) << v;
    tPerm[a] = tf[b];
  }
  expectMatches(m.permute(f, map), tPerm, seed, "permute");

  // Containment, counting, witness extraction.
  bool leqOracle = true;
  size_t ones = 0;
  for (size_t a = 0; a < tf.size(); ++a) {
    leqOracle &= tf[a] <= tg[a];
    ones += tf[a];
  }
  EXPECT_EQ(f.leq(g), leqOracle) << "leq, seed " << seed;
  EXPECT_EQ(m.satCount(f, n), static_cast<double>(ones)) << "satCount, seed " << seed;
  if (ones > 0) {
    std::vector<int8_t> cubeAssign = m.pickCube(f);
    size_t a = 0;
    for (BddVar v = 0; v < n; ++v) {
      if (cubeAssign[v] == 1) a |= size_t{1} << v;
    }
    EXPECT_TRUE(evalBdd(f, a)) << "pickCube returned a non-model, seed " << seed;
  }

  // Survive a forced collection and a sifting pass: handles must keep
  // denoting the same functions (indices are stable; caches keep-alive).
  m.gc();
  m.sift();
  for (const auto& [b, tt] : pool) expectMatches(b, tt, seed, "post-gc/sift");
  expectMatches(m.exists(f, cube), tEx, seed, "exists post-gc/sift");
}

TEST(BddOracle, RandomDagsMatchTruthTables) {
  // ~1000 seeded rounds; any failure reports its seed for replay.
  for (uint32_t seed = 0; seed < 1000; ++seed) oracleRound(seed);
}

TEST(BddOracle, NegationAllocatesNothing) {
  // Complement edges make negation O(1): flipping the complement bit must
  // not create a single node, even on a BDD with >10k of them.
  BddManager m(28);
  std::mt19937 rng(7);
  Bdd f = m.bddZero();
  for (int i = 0; i < 4000; ++i) {
    Bdd minterm = m.bddOne();
    for (BddVar v = 0; v < 28; ++v)
      minterm &= m.bddLiteral(v, rng() % 2 == 0);
    f |= minterm;
  }
  ASSERT_GE(f.nodeCount(), 10000u);

  uint64_t before = obs::counter("bdd.nodes.created").value();
  Bdd nf = m.notOp(f);
  Bdd nnf = !nf;
  EXPECT_EQ(obs::counter("bdd.nodes.created").value(), before)
      << "negation allocated nodes";
  EXPECT_EQ(nnf, f);
  EXPECT_NE(nf, f);
  EXPECT_EQ(nf.nodeCount(), f.nodeCount());  // f and !f share all nodes
  EXPECT_TRUE((f | nf).isOne());
  EXPECT_TRUE((f & nf).isZero());
}

TEST(BddOracle, SharedModeThreadsMatchTruthTables) {
  // The multi-threaded safety net for the sharded unique table and the
  // per-thread computed caches: several threads hammer one manager inside
  // a shared phase, each cross-checking every result against its own
  // truth-table oracle. The threads' node demands force concurrent
  // CAS-inserts into the same shard segments and (with enough steps)
  // shallow stop-the-world table growth under contention; any lost insert,
  // stale cache entry, or refcount race shows up as a truth-table
  // divergence or a corrupted handle after endShared().
  constexpr uint32_t n = 10;
  constexpr int kThreads = 4;
  BddManager m(n);
  m.beginShared(size_t{1} << 20);

  std::atomic<int> divergences{0};
  auto hammer = [&](uint32_t seed) {
    std::mt19937 rng(seed);
    std::vector<std::pair<Bdd, TT>> pool;
    pool.emplace_back(m.bddOne(), ttConst(n, true));
    pool.emplace_back(m.bddZero(), ttConst(n, false));
    for (BddVar v = 0; v < n; ++v) pool.emplace_back(m.bddVar(v), ttVar(n, v));
    auto pick = [&]() -> std::pair<Bdd, TT>& {
      return pool[rng() % pool.size()];
    };
    for (int i = 0; i < 120; ++i) {
      auto& [f, tf] = pick();
      auto& [g, tg] = pick();
      switch (rng() % 6) {
        case 0: pool.emplace_back(f & g, ttApply(tf, tg, '&')); break;
        case 1: pool.emplace_back(f | g, ttApply(tf, tg, '|')); break;
        case 2: pool.emplace_back(f ^ g, ttApply(tf, tg, '^')); break;
        case 3: pool.emplace_back(!f, ttNot(tf)); break;
        case 4: {
          auto& [h, th] = pick();
          pool.emplace_back(m.ite(f, g, h), ttIte(tf, tg, th));
          break;
        }
        default: {
          BddVar v = static_cast<BddVar>(rng() % n);
          pool.emplace_back(m.andExists(f, g, m.bddVar(v)),
                            ttExists(ttApply(tf, tg, '&'), {v}));
          break;
        }
      }
      const auto& [r, tr] = pool.back();
      for (size_t a = 0; a < tr.size(); ++a) {
        if (evalBdd(r, a) != (tr[a] != 0)) {
          divergences.fetch_add(1);
          return;  // one report per thread is enough to fail the test
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(hammer, 0x5eed0000u + static_cast<uint32_t>(t));
  for (auto& t : threads) t.join();
  m.endShared();
  EXPECT_EQ(divergences.load(), 0);

  // Back in serial mode the manager is fully functional: a gc + sift pass
  // and a fresh oracle round on the same heap must still agree.
  m.gc();
  m.sift();
  Bdd f = (m.bddVar(0) & m.bddVar(3)) | ((!m.bddVar(0)) & m.bddVar(7));
  expectMatches(f, ttIte(ttVar(n, 0), ttVar(n, 3), ttVar(n, 7)), 0,
                "post-shared serial op");
}

TEST(BddOracle, ForkJoinApplyMatchesSerialResults) {
  // Fine-grained parallel apply must be bit-identical to serial apply:
  // compute reference edges serially, then recompute the same operations
  // with cold caches under a fork-join pool with an aggressive split
  // policy (cutoff 1 node, full depth) so the cofactor recursion really
  // does fan out. Canonicity makes equality exact — same edge word or bug.
  constexpr uint32_t n = 14;
  BddManager m(n);
  std::mt19937 rng(42);
  auto randomFn = [&] {
    Bdd f = m.bddZero();
    for (int c = 0; c < 24; ++c) {
      Bdd cube = m.bddOne();
      for (BddVar v = 0; v < n; ++v)
        if (rng() % 3 != 0) cube &= m.bddLiteral(v, rng() % 2 == 0);
      f |= cube;
    }
    return f;
  };
  Bdd f = randomFn(), g = randomFn(), h = randomFn();
  Bdd cube = m.bddVar(2) & m.bddVar(5) & m.bddVar(9);

  Bdd serialAnd = f & g;
  Bdd serialIte = m.ite(f, g, h);
  Bdd serialAndEx = m.andExists(f, g, cube);

  par::ForkJoin fj(3);
  m.beginShared(size_t{1} << 20);
  m.setParallel(&fj, /*cutoffNodes=*/1, /*splitDepth=*/6);
  m.clearCaches();
  EXPECT_EQ(f & g, serialAnd);
  EXPECT_EQ(m.ite(f, g, h), serialIte);
  EXPECT_EQ(m.andExists(f, g, cube), serialAndEx);
  m.setParallel(nullptr);
  m.endShared();
}

TEST(BddOracle, ComplementCanonicalForm) {
  // The canonical-form invariant: no low edge is ever complemented, and
  // there is exactly one terminal, so f == g iff same edge word.
  BddManager m(6);
  Bdd a = m.bddVar(0), b = m.bddVar(1), c = m.bddVar(2);
  Bdd f = (a & b) | (!a & c);
  // Two routes to the same function must collapse to the identical edge.
  EXPECT_EQ(m.ite(a, b, c).index(), f.index());
  EXPECT_EQ((!(!f)).index(), f.index());
  // De Morgan through the complement bit only.
  EXPECT_EQ((!(a & b)).index(), ((!a) | (!b)).index());
}

}  // namespace
}  // namespace hsis
