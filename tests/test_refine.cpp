// Tests for hierarchical refinement checking (paper future-work item 3).
#include <gtest/gtest.h>

#include "blifmv/blifmv.hpp"
#include "minimize/refine.hpp"

namespace hsis {
namespace {

struct Machine {
  std::unique_ptr<Fsm> fsm;
  std::optional<TransitionRelation> tr;
  Bdd reached;
};

Machine build(BddManager& mgr, const char* text) {
  Machine m;
  m.fsm = std::make_unique<Fsm>(mgr, blifmv::flatten(blifmv::parse(text)));
  m.tr = TransitionRelation::monolithic(*m.fsm);
  m.reached = reachableStates(*m.tr, m.fsm->initialStates()).reached;
  return m;
}

// Deterministic mod-4 counter (the "low-level" implementation).
const char* kCounter = R"(
.model counter
.mv s, ns 4
.table s ns
0 1
1 2
2 3
3 0
.latch ns s
.reset s
0
.end
)";

// Abstract spec: a bit that may stay or toggle (covers "low bit of s").
const char* kToggleSpec = R"(
.model spec
.table b nb
0 (0,1)
1 (1,0)
.latch nb b
.reset b
0
.end
)";

// Overly strict spec: the bit must stay 0 forever.
const char* kStuckSpec = R"(
.model stuck
.table b nb
0 0
1 1
.latch nb b
.reset b
0
.end
)";

TEST(Refinement, CounterRefinesToggleAbstraction) {
  BddManager mgr;
  Machine impl = build(mgr, kCounter);
  Machine spec = build(mgr, kToggleSpec);
  // observation: low bit of the counter vs the spec bit
  Bdd pImpl = impl.fsm->space().literal(impl.fsm->stateVar(0), 1) |
              impl.fsm->space().literal(impl.fsm->stateVar(0), 3);
  Bdd pSpec = spec.fsm->space().literal(spec.fsm->stateVar(0), 1);
  RefinementResult r = simulationRefinement(
      *impl.fsm, *impl.tr, impl.reached, *spec.fsm, *spec.tr, spec.reached,
      {{pImpl, pSpec}});
  EXPECT_TRUE(r.refines);
  EXPECT_GE(r.refinementIterations, 1u);
  EXPECT_FALSE(r.simulation.isZero());
}

TEST(Refinement, CounterDoesNotRefineStuckSpec) {
  BddManager mgr;
  Machine impl = build(mgr, kCounter);
  Machine spec = build(mgr, kStuckSpec);
  Bdd pImpl = impl.fsm->space().literal(impl.fsm->stateVar(0), 1) |
              impl.fsm->space().literal(impl.fsm->stateVar(0), 3);
  Bdd pSpec = spec.fsm->space().literal(spec.fsm->stateVar(0), 1);
  RefinementResult r = simulationRefinement(
      *impl.fsm, *impl.tr, impl.reached, *spec.fsm, *spec.tr, spec.reached,
      {{pImpl, pSpec}});
  // the counter toggles its low bit; the stuck spec cannot follow
  EXPECT_FALSE(r.refines);
  EXPECT_FALSE(r.unmatchedInitial.isNull());
}

TEST(Refinement, AbstractionDoesNotRefineImplementation) {
  // The nondeterministic spec has a stutter move the deterministic counter
  // cannot match: refinement is not symmetric.
  BddManager mgr;
  Machine impl = build(mgr, kToggleSpec);
  Machine spec = build(mgr, kCounter);
  Bdd pImpl = impl.fsm->space().literal(impl.fsm->stateVar(0), 1);
  Bdd pSpec = spec.fsm->space().literal(spec.fsm->stateVar(0), 1) |
              spec.fsm->space().literal(spec.fsm->stateVar(0), 3);
  RefinementResult r = simulationRefinement(
      *impl.fsm, *impl.tr, impl.reached, *spec.fsm, *spec.tr, spec.reached,
      {{pImpl, pSpec}});
  EXPECT_FALSE(r.refines);
}

TEST(Refinement, SelfRefinement) {
  BddManager mgr;
  Machine impl = build(mgr, kCounter);
  Machine spec = build(mgr, kCounter);
  Bdd pImpl = impl.fsm->space().literal(impl.fsm->stateVar(0), 0);
  Bdd pSpec = spec.fsm->space().literal(spec.fsm->stateVar(0), 0);
  RefinementResult r = simulationRefinement(
      *impl.fsm, *impl.tr, impl.reached, *spec.fsm, *spec.tr, spec.reached,
      {{pImpl, pSpec}});
  EXPECT_TRUE(r.refines);
}

TEST(Refinement, RefinementPreservesInvariants) {
  // The point of the methodology (paper Section 2): a property proved on
  // the abstraction holds on the implementation. "AG (b=0 | b=1)" is
  // trivial; use the toggle spec's real invariant "never two consecutive
  // unobserved changes" — here we check a simpler transfer: any state set
  // closed on the spec side pulls back to a superset of reachable impl
  // states via the simulation.
  BddManager mgr;
  Machine impl = build(mgr, kCounter);
  Machine spec = build(mgr, kToggleSpec);
  Bdd pImpl = impl.fsm->space().literal(impl.fsm->stateVar(0), 1) |
              impl.fsm->space().literal(impl.fsm->stateVar(0), 3);
  Bdd pSpec = spec.fsm->space().literal(spec.fsm->stateVar(0), 1);
  RefinementResult r = simulationRefinement(
      *impl.fsm, *impl.tr, impl.reached, *spec.fsm, *spec.tr, spec.reached,
      {{pImpl, pSpec}});
  ASSERT_TRUE(r.refines);
  // every reachable impl state is related to some reachable spec state
  Bdd related = mgr.andExists(r.simulation, spec.reached, spec.fsm->presentCube());
  EXPECT_TRUE(impl.reached.leq(related | !impl.reached));
  EXPECT_TRUE((impl.fsm->initialStates() & related) ==
              impl.fsm->initialStates());
}

}  // namespace
}  // namespace hsis
