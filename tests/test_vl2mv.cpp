// Tests for the vl2mv Verilog front end: lexer, parser, and code generation
// semantics checked end-to-end through the symbolic FSM.
#include <gtest/gtest.h>

#include "fsm/fsm.hpp"
#include "fsm/image.hpp"
#include "vl2mv/lexer.hpp"
#include "vl2mv/ast.hpp"
#include "vl2mv/vl2mv.hpp"

namespace hsis::vl2mv {
namespace {

// ------------------------------------------------------------------ lexer

TEST(Vl2mvLexer, TokensAndLiterals) {
  auto toks = lex("module m; wire [3:0] w; assign w = 4'b1010 + 12; endmodule");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, Tok::KwModule);
  EXPECT_EQ(toks[1].kind, Tok::Identifier);
  EXPECT_EQ(toks[1].text, "m");
  bool sawSized = false, sawBare = false;
  for (const Token& t : toks) {
    if (t.kind == Tok::Number && t.width == 4 && t.value == 10) sawSized = true;
    if (t.kind == Tok::Number && t.width == -1 && t.value == 12) sawBare = true;
  }
  EXPECT_TRUE(sawSized);
  EXPECT_TRUE(sawBare);
}

TEST(Vl2mvLexer, BasesAndComments) {
  auto toks = lex("8'hff 3'd5 2'o3 /* block\ncomment */ // line\n  x");
  EXPECT_EQ(toks[0].value, 255u);
  EXPECT_EQ(toks[1].value, 5u);
  EXPECT_EQ(toks[2].value, 3u);
  EXPECT_EQ(toks[3].kind, Tok::Identifier);
  EXPECT_EQ(toks[3].line, 3);
}

TEST(Vl2mvLexer, OperatorsAndNd) {
  auto toks = lex("&& || == != <= >= << >> $ND");
  Tok expect[] = {Tok::AmpAmp, Tok::PipePipe, Tok::EqEq, Tok::BangEq,
                  Tok::NonBlocking, Tok::GtEq, Tok::Shl, Tok::Shr, Tok::KwNd};
  for (size_t i = 0; i < std::size(expect); ++i) EXPECT_EQ(toks[i].kind, expect[i]);
}

TEST(Vl2mvLexer, Errors) {
  EXPECT_THROW(lex("$bogus"), std::runtime_error);
  EXPECT_THROW(lex("4'q0"), std::runtime_error);
  EXPECT_THROW(lex("/* unterminated"), std::runtime_error);
  EXPECT_THROW(lex("`tick"), std::runtime_error);
}

// ----------------------------------------------------------------- parser

TEST(Vl2mvParser, ModuleShape) {
  SourceFile sf = parseVerilog(R"(
module m(a, b);
  input a;
  output b;
  parameter W = 3;
  wire [W:0] x;
  enum { s0, s1 } st;
  assign b = a && x[0];
  always @(posedge clk) begin
    if (a) st <= s1;
    else st <= s0;
  end
  initial st = s0;
endmodule
)");
  ASSERT_EQ(sf.modules.size(), 1u);
  const ModuleDecl& m = sf.modules[0];
  EXPECT_EQ(m.name, "m");
  EXPECT_EQ(m.portOrder, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(m.params.size(), 1u);
  EXPECT_EQ(m.nets.size(), 4u);
  EXPECT_EQ(m.assigns.size(), 1u);
  EXPECT_EQ(m.always.size(), 1u);
  EXPECT_EQ(m.initials.size(), 1u);
}

TEST(Vl2mvParser, InstancesNamedAndPositional) {
  SourceFile sf = parseVerilog(R"(
module top;
  sub #(.N(4)) u1(.a(x), .b(y));
  sub u2(x, y);
  sub #(2) u3(x, y);
endmodule
module sub(a, b);
  parameter N = 1;
  input a;
  output b;
endmodule
)");
  const ModuleDecl& m = sf.modules[0];
  ASSERT_EQ(m.instances.size(), 3u);
  EXPECT_EQ(m.instances[0].namedParams.size(), 1u);
  EXPECT_EQ(m.instances[0].namedConns.size(), 2u);
  EXPECT_EQ(m.instances[1].posConns.size(), 2u);
  EXPECT_EQ(m.instances[2].posParams.size(), 1u);
}

TEST(Vl2mvParser, Errors) {
  EXPECT_THROW(parseVerilog("module m; assign ; endmodule"), std::runtime_error);
  EXPECT_THROW(parseVerilog("module m; wire w endmodule"), std::runtime_error);
  EXPECT_THROW(parseVerilog("module m;"), std::runtime_error);
  EXPECT_THROW(parseVerilog("garbage"), std::runtime_error);
}

// ---------------------------------------------------- codegen (semantics)

/// Helper: compile, flatten, build FSM, return reachable state count.
struct Built {
  blifmv::Design design;
  blifmv::Model flat;
  std::unique_ptr<BddManager> mgr;
  std::unique_ptr<Fsm> fsm;
  std::optional<TransitionRelation> tr;
  Bdd reached;
};

Built buildAndReach(const std::string& src) {
  Built b;
  b.design = compile(src);
  b.flat = blifmv::flatten(b.design);
  b.mgr = std::make_unique<BddManager>();
  b.fsm = std::make_unique<Fsm>(*b.mgr, b.flat);
  b.tr = TransitionRelation::monolithic(*b.fsm);
  b.reached = reachableStates(*b.tr, b.fsm->initialStates()).reached;
  return b;
}

TEST(Vl2mvCodegen, CounterSemantics) {
  Built b = buildAndReach(R"(
module m;
  wire clk;
  reg [2:0] c;
  always @(posedge clk) c <= c + 1;
  initial c = 0;
endmodule
)");
  EXPECT_DOUBLE_EQ(b.fsm->countStates(b.reached), 8.0);
}

TEST(Vl2mvCodegen, ArithmeticOperators) {
  // Each op is validated by reaching exactly the expected fixed values.
  Built b = buildAndReach(R"(
module m;
  wire clk;
  wire [3:0] s, d, p, q, r, sh;
  assign s = 4'd9 + 4'd8;    // 1 (wraps)
  assign d = 4'd3 - 4'd5;    // 14
  assign p = 4'd5 * 4'd3;    // 15
  assign q = 4'd14 / 4'd4;   // 3
  assign r = 4'd14 % 4'd4;   // 2
  assign sh = (4'd1 << 2) | (4'd8 >> 3);  // 4 | 1 = 5
  reg [3:0] a, b2, c, e, f, g;
  always @(posedge clk) begin
    a <= s; b2 <= d; c <= p; e <= q; f <= r; g <= sh;
  end
  initial a = 0; initial b2 = 0; initial c = 0;
  initial e = 0; initial f = 0; initial g = 0;
endmodule
)");
  auto holds = [&](const char* sig, uint32_t val) {
    auto v = b.fsm->signalVar(sig);
    ASSERT_TRUE(v.has_value());
    // after one step the register holds the constant; the set of reached
    // values is {0 (initial), val}
    Bdd lit = b.fsm->space().literal(*v, val);
    Bdd zero = b.fsm->space().literal(*v, 0);
    EXPECT_EQ(b.reached & !zero & !lit, b.mgr->bddZero()) << sig;
    EXPECT_FALSE((b.reached & lit).isZero()) << sig;
  };
  holds("a", 1);
  holds("b2", 14);
  holds("c", 15);
  holds("e", 3);
  holds("f", 2);
  holds("g", 5);
}

TEST(Vl2mvCodegen, ComparisonsAndLogic) {
  Built b = buildAndReach(R"(
module m;
  wire clk;
  wire t1, t2, t3, t4, t5, t6;
  assign t1 = 4'd3 < 4'd5;
  assign t2 = 4'd5 <= 4'd5;
  assign t3 = (4'd7 > 4'd2) && !(4'd1 != 4'd1);
  assign t4 = 4'd0 || 4'd2;
  assign t5 = (2'd3 & 2'd1) == 2'd1;
  assign t6 = ((2'd2 | 2'd1) ^ 2'd3) == 2'd0;
  reg ok;
  always @(posedge clk) ok <= t1 && t2 && t3 && t4 && t5 && t6;
  initial ok = 0;
endmodule
)");
  auto v = b.fsm->signalVar("ok");
  Bdd one = b.fsm->space().literal(*v, 1);
  EXPECT_FALSE((b.reached & one).isZero());
  // ok=1 is the only non-initial value => reached = {ok=0, ok=1}
  EXPECT_DOUBLE_EQ(b.fsm->countStates(b.reached), 2.0);
}

TEST(Vl2mvCodegen, IndexSliceConcat) {
  Built b = buildAndReach(R"(
module m;
  wire clk;
  wire [3:0] x;
  wire bit2;
  wire [1:0] mid;
  wire [3:0] cat;
  assign x = 4'b1010;
  assign bit2 = x[1];
  assign mid = x[2:1];
  assign cat = {x[3:2], 2'b01};
  reg r1;
  reg [1:0] r2;
  reg [3:0] r3;
  always @(posedge clk) begin r1 <= bit2; r2 <= mid; r3 <= cat; end
  initial r1 = 0; initial r2 = 0; initial r3 = 0;
endmodule
)");
  auto val = [&](const char* sig, uint32_t k) {
    auto v = b.fsm->signalVar(sig);
    return !(b.reached & b.fsm->space().literal(*v, k)).isZero();
  };
  EXPECT_TRUE(val("r1", 1));   // x[1] = 1
  EXPECT_TRUE(val("r2", 1));   // x[2:1] = 01
  EXPECT_TRUE(val("r3", 9));   // {10, 01} = 1001
}

TEST(Vl2mvCodegen, TernaryAndCase) {
  Built b = buildAndReach(R"(
module m;
  wire clk;
  reg [1:0] st;
  wire [1:0] nxt;
  assign nxt = (st == 2'd3) ? 2'd0 : st + 1;
  always @(posedge clk) begin
    case (st)
      0: st <= 1;
      1, 2: st <= nxt;
      default: st <= 0;
    endcase
  end
  initial st = 0;
endmodule
)");
  EXPECT_DOUBLE_EQ(b.fsm->countStates(b.reached), 4.0);
}

TEST(Vl2mvCodegen, NdIsNondeterministic) {
  Built b = buildAndReach(R"(
module m;
  wire clk;
  reg [1:0] r;
  always @(posedge clk) r <= $ND(0, 2, 3);
  initial r = 0;
endmodule
)");
  auto v = b.fsm->signalVar("r");
  EXPECT_FALSE((b.reached & b.fsm->space().literal(*v, 2)).isZero());
  EXPECT_FALSE((b.reached & b.fsm->space().literal(*v, 3)).isZero());
  EXPECT_TRUE((b.reached & b.fsm->space().literal(*v, 1)).isZero());
}

TEST(Vl2mvCodegen, NdOverExpressions) {
  Built b = buildAndReach(R"(
module m;
  wire clk;
  reg [1:0] a;
  wire [1:0] pick;
  assign pick = $ND(a, a + 1);
  always @(posedge clk) a <= pick;
  initial a = 0;
endmodule
)");
  // a may stay or increment (mod 4): all 4 values reachable
  EXPECT_DOUBLE_EQ(b.fsm->countStates(b.reached), 4.0);
}

TEST(Vl2mvCodegen, NondeterministicReset) {
  Built b = buildAndReach(R"(
module m;
  wire clk;
  reg [1:0] r;
  always @(posedge clk) r <= r;
  initial r = $ND(1, 3);
endmodule
)");
  EXPECT_DOUBLE_EQ(b.fsm->countStates(b.reached), 2.0);
}

TEST(Vl2mvCodegen, EnumsAndStateMachines) {
  Built b = buildAndReach(R"(
module m;
  wire clk;
  enum { red, yellow, green } light;
  always @(posedge clk) begin
    case (light)
      red: light <= green;
      green: light <= yellow;
      yellow: light <= red;
    endcase
  end
  initial light = red;
endmodule
)");
  EXPECT_DOUBLE_EQ(b.fsm->countStates(b.reached), 3.0);
  auto v = b.fsm->signalVar("light");
  EXPECT_EQ(b.fsm->space().valueName(*v, 0), "red");
  EXPECT_EQ(b.fsm->space().valueName(*v, 2), "green");
}

TEST(Vl2mvCodegen, ParametersSpecializeModules) {
  blifmv::Design d = compile(R"(
module top;
  wire clk;
  wire [3:0] a, b;
  counter #(.LIMIT(2)) u1(a);
  counter #(.LIMIT(2)) u2(b);
  counter u3(b);
endmodule
module counter(o);
  parameter LIMIT = 9;
  output [3:0] o;
  reg [3:0] c;
  always @(posedge clk) c <= (c == LIMIT) ? 0 : c + 1;
  initial c = 0;
  assign o = c;
endmodule
)");
  // two distinct specializations + top = 3 models (u1/u2 share one)
  EXPECT_EQ(d.models.size(), 3u);
}

TEST(Vl2mvCodegen, HierarchySemantics) {
  Built b = buildAndReach(R"(
module top;
  wire clk;
  wire [2:0] v;
  modcounter #(.LIMIT(4)) u(v);
endmodule
module modcounter(o);
  parameter LIMIT = 7;
  output [2:0] o;
  reg [2:0] c;
  always @(posedge clk) c <= (c == LIMIT) ? 0 : c + 1;
  initial c = 0;
  assign o = c;
endmodule
)");
  EXPECT_DOUBLE_EQ(b.fsm->countStates(b.reached), 5.0);
}

TEST(Vl2mvCodegen, RegisterHoldsWithoutAssignment) {
  Built b = buildAndReach(R"(
module m;
  wire clk;
  reg [1:0] a;
  reg go;
  always @(posedge clk) begin
    go <= 1;
    if (go == 0) a <= 2;
  end
  initial a = 1;
  initial go = 0;
endmodule
)");
  // a: 1 -> 2 then holds; (a,go) reaches (1,0), (2,1): 2 states... plus (1,1)?
  // step1: go 0->1, a 1->2 (go==0). step2 on: hold. So states: (1,0),(2,1).
  EXPECT_DOUBLE_EQ(b.fsm->countStates(b.reached), 2.0);
}


TEST(Vl2mvCodegen, DistinctNdOccurrencesAreIndependent) {
  // Regression: two textually identical $ND expressions must compile to
  // independent nondeterministic sources (memoizing them once made
  // "drop" and "corrupt" below perfectly correlated).
  Built b = buildAndReach(R"(
module m;
  wire clk;
  reg drop, corrupt;
  always @(posedge clk) begin
    drop <= $ND(0, 1);
    corrupt <= $ND(0, 1);
  end
  initial drop = 0;
  initial corrupt = 0;
endmodule
)");
  // all four (drop, corrupt) combinations must be reachable
  EXPECT_DOUBLE_EQ(b.fsm->countStates(b.reached), 4.0);
}

TEST(Vl2mvCodegen, DeterministicSubexpressionsAreShared) {
  // The flip side: identical deterministic subtrees compile once. The two
  // assigns below reuse the same adder table, keeping the netlist compact.
  blifmv::Design d1 = compile(R"(
module m;
  wire clk;
  wire [3:0] x, y;
  reg [3:0] a;
  assign x = a + 1;
  assign y = a + 1;
  always @(posedge clk) a <= x;
  initial a = 0;
endmodule
)");
  blifmv::Design d2 = compile(R"(
module m;
  wire clk;
  wire [3:0] x;
  reg [3:0] a;
  assign x = a + 1;
  always @(posedge clk) a <= x;
  initial a = 0;
endmodule
)");
  // one extra alias table for y, but no duplicated 16-row adder
  EXPECT_LE(blifmv::lineCount(d1), blifmv::lineCount(d2) + 4);
}

TEST(Vl2mvCodegen, LineCount) {
  EXPECT_EQ(verilogLineCount("// comment\nmodule m;\n\n/* x */ endmodule\n"), 2u);
}

TEST(Vl2mvCodegen, Errors) {
  EXPECT_THROW(compile("module m; assign x = 1; endmodule"), std::runtime_error);
  EXPECT_THROW(compile("module m; wire w; assign w = bogus; endmodule"),
               std::runtime_error);
  EXPECT_THROW(compile("module m; unknownmod u(); endmodule"), std::runtime_error);
  EXPECT_THROW(compile(R"(
module m;
  enum { a, b } s;
  reg t;
  always @(posedge clk) t <= (s == 1'b1);
endmodule
)"),
               std::runtime_error);  // enum compared against non-enum
  EXPECT_THROW(compile(R"(
module m;
  reg r;
  always @(posedge clk) r <= 0;
  always @(posedge clk) r <= 1;
endmodule
)"),
               std::runtime_error);  // double driver
  // initial value out of domain
  EXPECT_THROW(compile(R"(
module m;
  reg [1:0] r;
  always @(posedge clk) r <= r;
  initial r = 9;
endmodule
)"),
               std::runtime_error);
}

TEST(Vl2mvCodegen, TopSelection) {
  const char* src = R"(
module a;
  wire clk;
  reg r;
  always @(posedge clk) r <= 1;
  initial r = 0;
endmodule
module b;
  wire clk;
  reg q;
  always @(posedge clk) q <= 0;
  initial q = 1;
endmodule
)";
  EXPECT_EQ(compile(src).rootName, "a");
  EXPECT_EQ(compile(src, "b").rootName, "b");
  EXPECT_THROW(compile(src, "c"), std::runtime_error);
}

}  // namespace
}  // namespace hsis::vl2mv
