// Tests for the Property Intermediate Format parser.
#include <gtest/gtest.h>

#include "pif/pif.hpp"

namespace hsis {
namespace {

TEST(Pif, CtlDeclarations) {
  PifFile f = parsePif(R"PIF(
# two formulas
ctl safety "AG !(a=1 & b=1)";
invariant quick "a=0 | b=0";
)PIF");
  ASSERT_EQ(f.properties.size(), 2u);
  EXPECT_EQ(f.ctlCount(), 2u);
  EXPECT_EQ(f.automatonCount(), 0u);
  EXPECT_EQ(f.properties[0].name, "safety");
  EXPECT_EQ(f.properties[0].ctl->kind, CtlFormula::Kind::AG);
  // invariant sugar becomes AG(expr)
  EXPECT_EQ(f.properties[1].ctl->kind, CtlFormula::Kind::AG);
  EXPECT_TRUE(f.properties[1].ctl->isInvariant());
}

TEST(Pif, AutomatonBlock) {
  PifFile f = parsePif(R"PIF(
automaton watch {
  state A init;
  state B;
  edge A -> A on "!(x=1)";
  edge A -> B on "x=1";
  edge B -> B on "1";
  accept stay A;
}
)PIF");
  ASSERT_EQ(f.properties.size(), 1u);
  const Automaton& a = f.properties[0].aut;
  EXPECT_EQ(a.numStates(), 2u);
  EXPECT_EQ(a.initialState(), 0u);
  EXPECT_EQ(a.edges().size(), 3u);
  EXPECT_EQ(a.rabinPairs().size(), 1u);
}

TEST(Pif, RabinAndBuchiAcceptance) {
  PifFile f = parsePif(R"PIF(
automaton r {
  state A init;
  state B;
  edge A -> B on "1";
  edge B -> A on "1";
  rabin fin { B } inf { A };
  accept buchi A;
}
)PIF");
  const Automaton& a = f.properties[0].aut;
  ASSERT_EQ(a.rabinPairs().size(), 2u);
  EXPECT_EQ(a.rabinPairs()[0].fin, std::vector<uint32_t>{1});
  EXPECT_EQ(a.rabinPairs()[0].inf, std::vector<uint32_t>{0});
  EXPECT_TRUE(a.rabinPairs()[1].fin.empty());
}

TEST(Pif, DefaultInitialIsFirstState) {
  PifFile f = parsePif(R"PIF(
automaton d {
  state P;
  state Q;
  edge P -> Q on "1";
  edge Q -> Q on "1";
  accept stay Q;
}
)PIF");
  EXPECT_EQ(f.properties[0].aut.initialState(), 0u);
}

TEST(Pif, FairnessBlock) {
  PifFile f = parsePif(R"PIF(
fairness {
  nostay "s=waiting";
  buchi "tick=1";
  fairedge "s=ready" -> "s=run";
}
)PIF");
  EXPECT_EQ(f.fairness.noStay.size(), 1u);
  EXPECT_EQ(f.fairness.buchi.size(), 1u);
  ASSERT_EQ(f.fairness.fairEdges.size(), 1u);
  EXPECT_EQ(f.fairness.fairEdges[0].first->toString(), "s=ready");
}

TEST(Pif, MixedFile) {
  PifFile f = parsePif(R"PIF(
fairness { nostay "a=1"; }
ctl c1 "EF a=1";
automaton a1 {
  state S init;
  edge S -> S on "1";
  accept buchi S;
}
ctl c2 "AG a=0";
)PIF");
  EXPECT_EQ(f.properties.size(), 3u);
  EXPECT_EQ(f.ctlCount(), 2u);
  EXPECT_EQ(f.automatonCount(), 1u);
  // file order preserved
  EXPECT_EQ(f.properties[0].name, "c1");
  EXPECT_EQ(f.properties[1].name, "a1");
}

TEST(Pif, Errors) {
  EXPECT_THROW(parsePif("bogus x;"), std::runtime_error);
  EXPECT_THROW(parsePif("ctl name AG"), std::runtime_error);       // no quotes
  EXPECT_THROW(parsePif("ctl name \"unterminated"), std::runtime_error);
  EXPECT_THROW(parsePif("automaton a { state S init; edge S S on \"1\"; }"),
               std::runtime_error);  // missing ->
  EXPECT_THROW(parsePif("automaton a { accept wiggle S; }"), std::runtime_error);
  EXPECT_THROW(parsePif("fairness { bogus \"1\"; }"), std::runtime_error);
}

}  // namespace
}  // namespace hsis
