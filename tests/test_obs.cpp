// Tests for hsis::obs — metric semantics, span nesting, JSON export, and
// thread safety. Every test passes in both build modes: assertions on live
// values are gated on obs::kEnabled, while API-shape and export-validity
// assertions run unconditionally (a disabled build must still produce a
// valid, empty snapshot document).
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <thread>
#include <variant>
#include <vector>

#include "hsis/environment.hpp"
#include "obs/obs.hpp"

namespace hsis::obs {
namespace {

// ------------------------------------------------- tiny JSON reader
//
// Just enough recursive-descent JSON to round-trip our own exports in
// tests without pulling in a dependency. Throws std::runtime_error on
// malformed input, which gtest surfaces as a test failure.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v;

  [[nodiscard]] bool isObject() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] bool boolean() const { return std::get<bool>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;

  [[noreturn]] void fail(const char* why) const {
    throw std::runtime_error(std::string("json: ") + why + " at offset " +
                             std::to_string(pos_));
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char peek() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return objectValue();
      case '[': return arrayValue();
      case '"': return JsonValue{stringValue()};
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return numberValue();
    }
  }

  void literal(std::string_view word) {
    skipWs();
    if (text_.substr(pos_, word.size()) != word) fail("bad literal");
    pos_ += word.size();
  }

  std::string stringValue() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u':
            // Exports only emit \u00XX control escapes.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out.push_back(static_cast<char>(
                std::stoi(std::string(text_.substr(pos_, 4)), nullptr, 16)));
            pos_ += 4;
            break;
          default: out.push_back(e); break;
        }
      } else {
        out.push_back(c);
      }
    }
    expect('"');
    return out;
  }

  JsonValue numberValue() {
    skipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected number");
    return JsonValue{std::stod(std::string(text_.substr(start, pos_ - start)))};
  }

  JsonValue arrayValue() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (true) {
      arr->push_back(value());
      char c = peek();
      ++pos_;
      if (c == ']') return JsonValue{arr};
      if (c != ',') fail("expected , or ]");
    }
  }

  JsonValue objectValue() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      std::string key = stringValue();
      expect(':');
      (*obj)[key] = value();
      char c = peek();
      ++pos_;
      if (c == '}') return JsonValue{obj};
      if (c != ',') fail("expected , or }");
    }
  }
};

JsonValue parseJson(const std::string& text) {
  return JsonParser(text).parse();
}

// ------------------------------------------------------- metric semantics

TEST(ObsCounter, AddValueReset) {
  Counter& c = counter("test.obs.counter");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  if (kEnabled) {
    EXPECT_EQ(c.value(), 42u);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, SameNameSameObject) {
  Counter& a = counter("test.obs.alias");
  Counter& b = counter("test.obs.alias");
  EXPECT_EQ(&a, &b);
}

TEST(ObsGauge, SetAddUpdateMax) {
  Gauge& g = gauge("test.obs.gauge");
  g.reset();
  g.set(10);
  g.add(-3);
  if (kEnabled) {
    EXPECT_EQ(g.value(), 7);
  }
  g.updateMax(100);
  if (kEnabled) {
    EXPECT_EQ(g.value(), 100);
  }
  g.updateMax(5);  // below current level: no change
  if (kEnabled) {
    EXPECT_EQ(g.value(), 100);
  }
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketBoundaries) {
  // Static bucket math is live in both build modes.
  EXPECT_EQ(Histogram::bucketOf(0), 0);
  EXPECT_EQ(Histogram::bucketOf(1), 1);
  EXPECT_EQ(Histogram::bucketOf(2), 2);
  EXPECT_EQ(Histogram::bucketOf(3), 2);
  EXPECT_EQ(Histogram::bucketOf(4), 3);
  EXPECT_EQ(Histogram::bucketOf(1023), 10);
  EXPECT_EQ(Histogram::bucketOf(1024), 11);
  EXPECT_EQ(Histogram::bucketOf(~0ull), 64);
  EXPECT_EQ(Histogram::bucketLow(0), 0u);
  EXPECT_EQ(Histogram::bucketLow(1), 1u);
  EXPECT_EQ(Histogram::bucketLow(11), 1024u);
  // Every value lands in the bucket whose low bound it is >= to.
  for (uint64_t v : {0ull, 1ull, 7ull, 255ull, 256ull, 1ull << 40}) {
    int b = Histogram::bucketOf(v);
    EXPECT_GE(v, Histogram::bucketLow(b));
    if (b < Histogram::kBuckets - 1) {
      EXPECT_LT(v, Histogram::bucketLow(b + 1));
    }
  }
}

TEST(ObsHistogram, RecordCountSum) {
  Histogram& h = histogram("test.obs.hist");
  h.reset();
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  if (kEnabled) {
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 11u);
    EXPECT_EQ(h.bucketCount(0), 1u);  // value 0
    EXPECT_EQ(h.bucketCount(1), 1u);  // value 1
    EXPECT_EQ(h.bucketCount(3), 2u);  // 5 twice, bucket [4,8)
  } else {
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
  }
}

TEST(ObsRegistry, CollectIsSortedAndTyped) {
  counter("test.obs.sort.c").add(3);
  gauge("test.obs.sort.g").set(-4);
  histogram("test.obs.sort.h").record(9);
  std::vector<MetricSample> samples = Registry::instance().collect();
  if (!kEnabled) {
    EXPECT_TRUE(samples.empty());
    return;
  }
  for (size_t i = 1; i < samples.size(); ++i)
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  auto find = [&](const std::string& n) -> const MetricSample* {
    for (const auto& s : samples)
      if (s.name == n) return &s;
    return nullptr;
  };
  const MetricSample* c = find("test.obs.sort.c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricSample::Kind::Counter);
  EXPECT_GE(c->value, 3);
  const MetricSample* g = find("test.obs.sort.g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, MetricSample::Kind::Gauge);
  EXPECT_EQ(g->value, -4);
  const MetricSample* h = find("test.obs.sort.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, MetricSample::Kind::Histogram);
  EXPECT_GE(h->count, 1u);
  EXPECT_FALSE(h->buckets.empty());
}

// ---------------------------------------------------------------- spans

TEST(ObsSpan, NestingAndTiming) {
  Tracer::instance().clear();
  {
    Span outer("test.span.outer");
    {
      Span inner("test.span.inner");
      // Do a sliver of work so durations are nonzero on coarse clocks.
      volatile uint64_t sink = 0;
      for (int i = 0; i < 10000; ++i) sink = sink + static_cast<uint64_t>(i);
      EXPECT_GE(inner.seconds(), 0.0);
    }
  }
  std::vector<SpanSample> spans = Tracer::instance().completed();
  if (!kEnabled) {
    EXPECT_TRUE(spans.empty());
    return;
  }
  ASSERT_EQ(spans.size(), 2u);
  // completed() sorts by start time: outer starts first.
  const SpanSample& outer = spans[0];
  const SpanSample& inner = spans[1];
  EXPECT_EQ(outer.name, "test.span.outer");
  EXPECT_EQ(inner.name, "test.span.inner");
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.parent, static_cast<int64_t>(outer.id));
  EXPECT_EQ(inner.depth, 1u);
  // Timing monotonicity: the child starts no earlier than the parent and
  // fits entirely inside it.
  EXPECT_GE(inner.startNs, outer.startNs);
  EXPECT_LE(inner.startNs + inner.durationNs,
            outer.startNs + outer.durationNs);
}

TEST(ObsSpan, RingBufferDropsOldest) {
  Tracer& tracer = Tracer::instance();
  tracer.setCapacity(4);
  for (int i = 0; i < 10; ++i) Span s("test.span.ring");
  std::vector<SpanSample> spans = tracer.completed();
  if (kEnabled) {
    EXPECT_EQ(spans.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    // The survivors are the newest spans, still sorted by start time.
    for (size_t i = 1; i < spans.size(); ++i)
      EXPECT_LE(spans[i - 1].startNs, spans[i].startNs);
  } else {
    EXPECT_TRUE(spans.empty());
    EXPECT_EQ(tracer.dropped(), 0u);
  }
  tracer.setCapacity(8192);  // restore default for later tests
}

// --------------------------------------------------------------- exports

TEST(ObsExport, JsonRoundTrip) {
  Tracer::instance().clear();
  counter("test.json.counter").reset();
  counter("test.json.counter").add(7);
  gauge("test.json.gauge").set(-12);
  histogram("test.json.hist").reset();
  histogram("test.json.hist").record(3);
  { Span s("test.json.span"); }

  JsonValue doc = parseJson(toJson(snapshot()));
  ASSERT_TRUE(doc.isObject());
  const JsonObject& root = doc.object();
  EXPECT_EQ(root.at("schema").str(), "hsis-obs-v1");
  EXPECT_EQ(root.at("enabled").boolean(), kEnabled);
  const JsonObject& metrics = root.at("metrics").object();
  const JsonArray& spans = root.at("spans").array();
  if (!kEnabled) {
    // A disabled build still produces the full document shape, just empty.
    EXPECT_TRUE(metrics.empty());
    EXPECT_TRUE(spans.empty());
    return;
  }
  EXPECT_EQ(metrics.at("test.json.counter").number(), 7.0);
  EXPECT_EQ(metrics.at("test.json.gauge").number(), -12.0);
  const JsonObject& hist = metrics.at("test.json.hist").object();
  EXPECT_EQ(hist.at("count").number(), 1.0);
  EXPECT_EQ(hist.at("sum").number(), 3.0);
  ASSERT_EQ(spans.size(), 1u);
  const JsonObject& span = spans[0].object();
  EXPECT_EQ(span.at("name").str(), "test.json.span");
  EXPECT_GE(span.at("ms").number(), 0.0);
  EXPECT_TRUE(span.at("children").array().empty());
}

TEST(ObsExport, JsonNestsChildSpans) {
  Tracer::instance().clear();
  {
    Span outer("test.tree.outer");
    Span inner("test.tree.inner");
  }
  JsonValue doc = parseJson(toJson(snapshot()));
  const JsonArray& spans = doc.object().at("spans").array();
  if (!kEnabled) {
    EXPECT_TRUE(spans.empty());
    return;
  }
  ASSERT_EQ(spans.size(), 1u);
  const JsonObject& outer = spans[0].object();
  EXPECT_EQ(outer.at("name").str(), "test.tree.outer");
  const JsonArray& children = outer.at("children").array();
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].object().at("name").str(), "test.tree.inner");
}

TEST(ObsExport, ChromeTraceAndTableAreWellFormed) {
  Tracer::instance().clear();
  { Span s("test.chrome.span"); }
  Snapshot snap = snapshot();
  JsonValue trace = parseJson(toChromeTrace(snap));
  const JsonArray& events = trace.array();
  if (kEnabled) {
    ASSERT_FALSE(events.empty());
    const JsonObject& ev = events.back().object();
    EXPECT_EQ(ev.at("ph").str(), "X");
    EXPECT_EQ(ev.at("name").str(), "test.chrome.span");
  } else {
    EXPECT_TRUE(events.empty());
  }
  // The table export never throws and always carries its headline.
  std::string table = toTable(snap);
  EXPECT_NE(table.find("== metrics =="), std::string::npos);
}

TEST(ObsExport, JsonEscapesControlAndQuoteCharacters) {
  Tracer::instance().clear();
  { Span s("test.escape.\"quote\"\n"); }
  std::string json = toJson(snapshot());
  JsonValue doc = parseJson(json);  // must stay parseable
  if (kEnabled) {
    const JsonArray& spans = doc.object().at("spans").array();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].object().at("name").str(), "test.escape.\"quote\"\n");
  }
}

// ---------------------------------------------------------- thread safety

TEST(ObsThreads, ConcurrentCountsAreExact) {
  Counter& c = counter("test.threads.counter");
  Histogram& h = histogram("test.threads.hist");
  c.reset();
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h] {
      // Registration from several threads at once must also be safe.
      Gauge& g = gauge("test.threads.gauge");
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<uint64_t>(i));
        g.updateMax(i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (kEnabled) {
    EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(gauge("test.threads.gauge").value(), kPerThread - 1);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
}

// ------------------------------------- Environment metrics equivalence
//
// Environment::Metrics is now derived from the same microsecond readings
// that feed the registry's env.* metrics; on a small model the two views
// must agree (satellite requirement: registry-derived metrics match the
// legacy hand-threaded timers).

TEST(ObsEnvironment, MetricsMatchRegistry) {
  const char* kToggleVerilog = R"(
module top;
  wire clk;
  reg b;
  always @(posedge clk) b <= !b;
  initial b = 0;
endmodule
)";
  const char* kTogglePif = R"PIF(ctl live "AG (AF b=1)";)PIF";

  resetAll();
  Environment env;
  env.readVerilog(kToggleVerilog);
  env.readPif(kTogglePif);
  env.build();
  std::vector<BugReport> reports = env.verifyAll();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].holds);

  const Environment::Metrics& m = env.metrics();
  if (kEnabled) {
    // Both views derive from the same microsecond ticks, so the seconds
    // figures agree to within one rounding of the shared integer.
    EXPECT_DOUBLE_EQ(
        m.readSeconds,
        static_cast<double>(gauge("env.read.micros").value()) * 1e-6);
    EXPECT_NEAR(m.mcSeconds,
                static_cast<double>(counter("env.mc.micros").value()) * 1e-6,
                1e-9);
    EXPECT_EQ(counter("env.props.ctl").value(), m.numCtlFormulas);
    EXPECT_EQ(counter("env.props.lc").value(), m.numLcProps);
    EXPECT_EQ(static_cast<double>(gauge("env.reached.states").value()),
              env.reachedStates());
    // The verification phases left their marks in the shared registry.
    EXPECT_GT(counter("bdd.nodes.created").value(), 0u);
    EXPECT_GT(counter("fsm.reach.iterations").value(), 0u);
  } else {
    // Disabled instrumentation must not break the legacy metrics: they
    // are computed from a real wall clock either way.
    EXPECT_GE(m.readSeconds, 0.0);
    EXPECT_EQ(counter("env.mc.micros").value(), 0u);
    EXPECT_EQ(gauge("env.reached.states").value(), 0);
  }
  EXPECT_EQ(m.numCtlFormulas, 1u);

  // statsJson() is valid JSON in both modes.
  JsonValue doc = parseJson(env.statsJson());
  EXPECT_EQ(doc.object().at("enabled").boolean(), kEnabled);
}

}  // namespace
}  // namespace hsis::obs
