// Tests for hsis::obs — metric semantics, span nesting, JSON export, and
// thread safety. Every test passes in both build modes: assertions on live
// values are gated on obs::kEnabled, while API-shape and export-validity
// assertions run unconditionally (a disabled build must still produce a
// valid, empty snapshot document).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <thread>
#include <vector>

#include "hsis/environment.hpp"
#include "obs/control.hpp"
#include "obs/jsonlite.hpp"
#include "obs/obs.hpp"

namespace hsis::obs {
namespace {

// The shared jsonlite reader (src/obs/jsonlite.hpp) round-trips our own
// exports; it throws std::runtime_error on malformed input, which gtest
// surfaces as a test failure.
using JsonValue = jsonlite::Value;
using JsonObject = jsonlite::Object;
using JsonArray = jsonlite::Array;

JsonValue parseJson(const std::string& text) { return jsonlite::parse(text); }

// ------------------------------------------------------- metric semantics

TEST(ObsCounter, AddValueReset) {
  Counter& c = counter("test.obs.counter");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  if (kEnabled) {
    EXPECT_EQ(c.value(), 42u);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, SameNameSameObject) {
  Counter& a = counter("test.obs.alias");
  Counter& b = counter("test.obs.alias");
  EXPECT_EQ(&a, &b);
}

TEST(ObsGauge, SetAddUpdateMax) {
  Gauge& g = gauge("test.obs.gauge");
  g.reset();
  g.set(10);
  g.add(-3);
  if (kEnabled) {
    EXPECT_EQ(g.value(), 7);
  }
  g.updateMax(100);
  if (kEnabled) {
    EXPECT_EQ(g.value(), 100);
  }
  g.updateMax(5);  // below current level: no change
  if (kEnabled) {
    EXPECT_EQ(g.value(), 100);
  }
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketBoundaries) {
  // Static bucket math is live in both build modes.
  EXPECT_EQ(Histogram::bucketOf(0), 0);
  EXPECT_EQ(Histogram::bucketOf(1), 1);
  EXPECT_EQ(Histogram::bucketOf(2), 2);
  EXPECT_EQ(Histogram::bucketOf(3), 2);
  EXPECT_EQ(Histogram::bucketOf(4), 3);
  EXPECT_EQ(Histogram::bucketOf(1023), 10);
  EXPECT_EQ(Histogram::bucketOf(1024), 11);
  EXPECT_EQ(Histogram::bucketOf(~0ull), 64);
  EXPECT_EQ(Histogram::bucketLow(0), 0u);
  EXPECT_EQ(Histogram::bucketLow(1), 1u);
  EXPECT_EQ(Histogram::bucketLow(11), 1024u);
  // Every value lands in the bucket whose low bound it is >= to.
  for (uint64_t v : {0ull, 1ull, 7ull, 255ull, 256ull, 1ull << 40}) {
    int b = Histogram::bucketOf(v);
    EXPECT_GE(v, Histogram::bucketLow(b));
    if (b < Histogram::kBuckets - 1) {
      EXPECT_LT(v, Histogram::bucketLow(b + 1));
    }
  }
}

TEST(ObsHistogram, RecordCountSum) {
  Histogram& h = histogram("test.obs.hist");
  h.reset();
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  if (kEnabled) {
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 11u);
    EXPECT_EQ(h.bucketCount(0), 1u);  // value 0
    EXPECT_EQ(h.bucketCount(1), 1u);  // value 1
    EXPECT_EQ(h.bucketCount(3), 2u);  // 5 twice, bucket [4,8)
  } else {
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
  }
}

TEST(ObsRegistry, CollectIsSortedAndTyped) {
  counter("test.obs.sort.c").add(3);
  gauge("test.obs.sort.g").set(-4);
  histogram("test.obs.sort.h").record(9);
  std::vector<MetricSample> samples = Registry::instance().collect();
  if (!kEnabled) {
    EXPECT_TRUE(samples.empty());
    return;
  }
  for (size_t i = 1; i < samples.size(); ++i)
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  auto find = [&](const std::string& n) -> const MetricSample* {
    for (const auto& s : samples)
      if (s.name == n) return &s;
    return nullptr;
  };
  const MetricSample* c = find("test.obs.sort.c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricSample::Kind::Counter);
  EXPECT_GE(c->value, 3);
  const MetricSample* g = find("test.obs.sort.g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, MetricSample::Kind::Gauge);
  EXPECT_EQ(g->value, -4);
  const MetricSample* h = find("test.obs.sort.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, MetricSample::Kind::Histogram);
  EXPECT_GE(h->count, 1u);
  EXPECT_FALSE(h->buckets.empty());
}

// ---------------------------------------------------------------- spans

TEST(ObsSpan, NestingAndTiming) {
  Tracer::instance().clear();
  {
    Span outer("test.span.outer");
    {
      Span inner("test.span.inner");
      // Do a sliver of work so durations are nonzero on coarse clocks.
      volatile uint64_t sink = 0;
      for (int i = 0; i < 10000; ++i) sink = sink + static_cast<uint64_t>(i);
      EXPECT_GE(inner.seconds(), 0.0);
    }
  }
  std::vector<SpanSample> spans = Tracer::instance().completed();
  if (!kEnabled) {
    EXPECT_TRUE(spans.empty());
    return;
  }
  ASSERT_EQ(spans.size(), 2u);
  // completed() sorts by start time: outer starts first.
  const SpanSample& outer = spans[0];
  const SpanSample& inner = spans[1];
  EXPECT_EQ(outer.name, "test.span.outer");
  EXPECT_EQ(inner.name, "test.span.inner");
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.parent, static_cast<int64_t>(outer.id));
  EXPECT_EQ(inner.depth, 1u);
  // Timing monotonicity: the child starts no earlier than the parent and
  // fits entirely inside it.
  EXPECT_GE(inner.startNs, outer.startNs);
  EXPECT_LE(inner.startNs + inner.durationNs,
            outer.startNs + outer.durationNs);
}

TEST(ObsSpan, RingBufferDropsOldest) {
  Tracer& tracer = Tracer::instance();
  tracer.setCapacity(4);
  for (int i = 0; i < 10; ++i) Span s("test.span.ring");
  std::vector<SpanSample> spans = tracer.completed();
  if (kEnabled) {
    EXPECT_EQ(spans.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    // The survivors are the newest spans, still sorted by start time.
    for (size_t i = 1; i < spans.size(); ++i)
      EXPECT_LE(spans[i - 1].startNs, spans[i].startNs);
  } else {
    EXPECT_TRUE(spans.empty());
    EXPECT_EQ(tracer.dropped(), 0u);
  }
  tracer.setCapacity(8192);  // restore default for later tests
}

// --------------------------------------------------------------- exports

TEST(ObsExport, JsonRoundTrip) {
  Tracer::instance().clear();
  counter("test.json.counter").reset();
  counter("test.json.counter").add(7);
  gauge("test.json.gauge").set(-12);
  histogram("test.json.hist").reset();
  histogram("test.json.hist").record(3);
  { Span s("test.json.span"); }

  JsonValue doc = parseJson(toJson(snapshot()));
  ASSERT_TRUE(doc.isObject());
  const JsonObject& root = doc.object();
  EXPECT_EQ(root.at("schema").str(), "hsis-obs-v1");
  EXPECT_EQ(root.at("enabled").boolean(), kEnabled);
  const JsonObject& metrics = root.at("metrics").object();
  const JsonArray& spans = root.at("spans").array();
  if (!kEnabled) {
    // A disabled build still produces the full document shape, just empty.
    EXPECT_TRUE(metrics.empty());
    EXPECT_TRUE(spans.empty());
    return;
  }
  EXPECT_EQ(metrics.at("test.json.counter").number(), 7.0);
  EXPECT_EQ(metrics.at("test.json.gauge").number(), -12.0);
  const JsonObject& hist = metrics.at("test.json.hist").object();
  EXPECT_EQ(hist.at("count").number(), 1.0);
  EXPECT_EQ(hist.at("sum").number(), 3.0);
  ASSERT_EQ(spans.size(), 1u);
  const JsonObject& span = spans[0].object();
  EXPECT_EQ(span.at("name").str(), "test.json.span");
  EXPECT_GE(span.at("ms").number(), 0.0);
  EXPECT_TRUE(span.at("children").array().empty());
}

TEST(ObsExport, JsonNestsChildSpans) {
  Tracer::instance().clear();
  {
    Span outer("test.tree.outer");
    Span inner("test.tree.inner");
  }
  JsonValue doc = parseJson(toJson(snapshot()));
  const JsonArray& spans = doc.object().at("spans").array();
  if (!kEnabled) {
    EXPECT_TRUE(spans.empty());
    return;
  }
  ASSERT_EQ(spans.size(), 1u);
  const JsonObject& outer = spans[0].object();
  EXPECT_EQ(outer.at("name").str(), "test.tree.outer");
  const JsonArray& children = outer.at("children").array();
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].object().at("name").str(), "test.tree.inner");
}

TEST(ObsExport, ChromeTraceAndTableAreWellFormed) {
  Tracer::instance().clear();
  { Span s("test.chrome.span"); }
  Snapshot snap = snapshot();
  JsonValue trace = parseJson(toChromeTrace(snap));
  const JsonArray& events = trace.array();
  if (kEnabled) {
    ASSERT_FALSE(events.empty());
    const JsonObject& ev = events.back().object();
    EXPECT_EQ(ev.at("ph").str(), "X");
    EXPECT_EQ(ev.at("name").str(), "test.chrome.span");
  } else {
    // A disabled build emits only the process metadata event — no spans.
    for (const JsonValue& ev : events)
      EXPECT_EQ(ev.object().at("ph").str(), "M");
  }
  // The table export never throws and always carries its headline.
  std::string table = toTable(snap);
  EXPECT_NE(table.find("== metrics =="), std::string::npos);
}

TEST(ObsExport, JsonEscapesControlAndQuoteCharacters) {
  Tracer::instance().clear();
  { Span s("test.escape.\"quote\"\n"); }
  std::string json = toJson(snapshot());
  JsonValue doc = parseJson(json);  // must stay parseable
  if (kEnabled) {
    const JsonArray& spans = doc.object().at("spans").array();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].object().at("name").str(), "test.escape.\"quote\"\n");
  }
}

// ---------------------------------------------------------- thread safety

TEST(ObsThreads, ConcurrentCountsAreExact) {
  Counter& c = counter("test.threads.counter");
  Histogram& h = histogram("test.threads.hist");
  c.reset();
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h] {
      // Registration from several threads at once must also be safe.
      Gauge& g = gauge("test.threads.gauge");
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<uint64_t>(i));
        g.updateMax(i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (kEnabled) {
    EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(gauge("test.threads.gauge").value(), kPerThread - 1);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
}

// ------------------------------------- Environment metrics equivalence
//
// Environment::Metrics is now derived from the same microsecond readings
// that feed the registry's env.* metrics; on a small model the two views
// must agree (satellite requirement: registry-derived metrics match the
// legacy hand-threaded timers).

TEST(ObsEnvironment, MetricsMatchRegistry) {
  const char* kToggleVerilog = R"(
module top;
  wire clk;
  reg b;
  always @(posedge clk) b <= !b;
  initial b = 0;
endmodule
)";
  const char* kTogglePif = R"PIF(ctl live "AG (AF b=1)";)PIF";

  resetAll();
  Environment env;
  env.readVerilog(kToggleVerilog);
  env.readPif(kTogglePif);
  env.build();
  std::vector<BugReport> reports = env.verifyAll();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].holds);

  const Environment::Metrics& m = env.metrics();
  if (kEnabled) {
    // Both views derive from the same microsecond ticks, so the seconds
    // figures agree to within one rounding of the shared integer.
    EXPECT_DOUBLE_EQ(
        m.readSeconds,
        static_cast<double>(gauge("env.read.micros").value()) * 1e-6);
    EXPECT_NEAR(m.mcSeconds,
                static_cast<double>(counter("env.mc.micros").value()) * 1e-6,
                1e-9);
    EXPECT_EQ(counter("env.props.ctl").value(), m.numCtlFormulas);
    EXPECT_EQ(counter("env.props.lc").value(), m.numLcProps);
    EXPECT_EQ(static_cast<double>(gauge("env.reached.states").value()),
              env.reachedStates());
    // The verification phases left their marks in the shared registry.
    EXPECT_GT(counter("bdd.nodes.created").value(), 0u);
    EXPECT_GT(counter("fsm.reach.iterations").value(), 0u);
  } else {
    // Disabled instrumentation must not break the legacy metrics: they
    // are computed from a real wall clock either way.
    EXPECT_GE(m.readSeconds, 0.0);
    EXPECT_EQ(counter("env.mc.micros").value(), 0u);
    EXPECT_EQ(gauge("env.reached.states").value(), 0);
  }
  EXPECT_EQ(m.numCtlFormulas, 1u);

  // statsJson() is valid JSON in both modes.
  JsonValue doc = parseJson(env.statsJson());
  EXPECT_EQ(doc.object().at("enabled").boolean(), kEnabled);
}

// ----------------------------------------------- histogram p50/p90/max

TEST(ObsHistogram, TracksMaxAndBucketedQuantiles) {
  Histogram& h = histogram("test.obs.quant");
  h.reset();
  EXPECT_EQ(h.maxValue(), 0u);
  // Nine small values and one huge outlier: p50 must sit in a low bucket,
  // p90 at the outlier's bucket only when it is the crossing point, and
  // max is exact (not a bucket bound).
  for (uint64_t v : {3ull, 3ull, 3ull, 3ull, 3ull, 5ull, 5ull, 5ull, 5ull})
    h.record(v);
  h.record(1000);
  if (!kEnabled) {
    EXPECT_EQ(h.maxValue(), 0u);
    return;
  }
  EXPECT_EQ(h.maxValue(), 1000u);

  std::vector<MetricSample> samples = Registry::instance().collect();
  const MetricSample* s = nullptr;
  for (const auto& m : samples)
    if (m.name == "test.obs.quant") s = &m;
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->max, 1000u);
  // count=10: the 5th value (3) lies in bucket [2,4) -> p50 lower bound 2;
  // the 9th value (5) lies in bucket [4,8) -> p90 lower bound 4.
  EXPECT_EQ(s->p50, 2u);
  EXPECT_EQ(s->p90, 4u);

  // The JSON export carries the same summary fields.
  JsonValue doc = parseJson(toJson(snapshot()));
  const JsonObject& hist =
      doc.object().at("metrics").object().at("test.obs.quant").object();
  EXPECT_EQ(hist.at("p50").number(), 2.0);
  EXPECT_EQ(hist.at("p90").number(), 4.0);
  EXPECT_EQ(hist.at("max").number(), 1000.0);

  // And the table mentions them.
  std::string table = toTable(snapshot());
  EXPECT_NE(table.find("p50="), std::string::npos);
  EXPECT_NE(table.find("max=1000"), std::string::npos);
}

// -------------------------------------------- chrome trace thread names

TEST(ObsExport, ChromeTraceCarriesThreadNameMetadata) {
  setThreadName("test-main");
  Tracer::instance().clear();
  { Span s("test.chrome.named"); }
  JsonValue trace = parseJson(toChromeTrace(snapshot()));
  const JsonArray& events = trace.array();
  // process_sort_index metadata is emitted even with no spans recorded.
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].object().at("ph").str(), "M");
  EXPECT_EQ(events[0].object().at("name").str(), "process_sort_index");
  if (!kEnabled) return;  // thread names ride on the compiled-out store
  bool sawName = false;
  for (const JsonValue& ev : events) {
    const JsonObject& o = ev.object();
    if (o.at("ph").str() != "M" || o.at("name").str() != "thread_name")
      continue;
    if (o.at("args").object().at("name").str() == "test-main") sawName = true;
  }
  EXPECT_TRUE(sawName);
}

// ------------------------------------------------------- abort plumbing
//
// The abort flag is control flow, not measurement: every assertion here
// runs identically in the HSIS_OBS_DISABLE build.

TEST(ObsAbort, RequestCheckClearRoundTrip) {
  clearAbort();
  EXPECT_FALSE(abortRequested());
  EXPECT_FALSE(abortInfo().has_value());
  EXPECT_NO_THROW(checkAbort());

  requestAbort("test reason", "test.phase");
  EXPECT_TRUE(abortRequested());
  ASSERT_TRUE(abortInfo().has_value());
  EXPECT_EQ(abortInfo()->reason, "test reason");
  EXPECT_EQ(abortInfo()->phase, "test.phase");
  try {
    checkAbort();
    FAIL() << "checkAbort did not throw";
  } catch (const AbortedError& e) {
    EXPECT_EQ(e.reason(), "test reason");
    EXPECT_EQ(e.phase(), "test.phase");
  }
  // First request wins; a second is ignored.
  requestAbort("other reason");
  EXPECT_EQ(abortInfo()->reason, "test reason");

  clearAbort();
  EXPECT_FALSE(abortRequested());
  EXPECT_NO_THROW(checkAbort());
}

TEST(ObsAbort, SnapshotCarriesAbortState) {
  clearAbort();
  requestAbort("snapshot reason", "snap.phase");
  JsonValue doc = parseJson(toJson(snapshot()));
  const JsonObject& aborted = doc.object().at("aborted").object();
  EXPECT_EQ(aborted.at("reason").str(), "snapshot reason");
  EXPECT_EQ(aborted.at("phase").str(), "snap.phase");
  clearAbort();
  JsonValue clean = parseJson(toJson(snapshot()));
  EXPECT_TRUE(clean.object().at("aborted").isNull());
}

TEST(ObsAbort, PhaseDefaultsToActiveSpan) {
  clearAbort();
  {
    Span s("test.abort.phase");
    EXPECT_EQ(currentPhase(), kEnabled ? "test.abort.phase" : "");
    requestAbort("from inside");
  }
  ASSERT_TRUE(abortInfo().has_value());
  EXPECT_EQ(abortInfo()->phase, kEnabled ? "test.abort.phase" : "");
  clearAbort();
  EXPECT_EQ(currentPhase(), "");
}

// ------------------------------------------------------------ heartbeat

TEST(ObsHeartbeat, SourceComputesDeltasBetweenTicks) {
  resetAll();
  HeartbeatSource source;

  counter("bdd.nodes.created").add(100);
  counter("bdd.cache.lookups").add(50);
  counter("bdd.cache.hits").add(25);
  counter("fsm.reach.iterations").add(3);
  gauge("fsm.reach.frontier.last").set(42);
  HeartbeatRecord first = source.next();
  EXPECT_EQ(first.seq, 0u);
  if (kEnabled) {
    EXPECT_EQ(first.nodesCreated, 100u);
    EXPECT_EQ(first.dNodesCreated, 100u);  // first window starts at zero
    EXPECT_EQ(first.reachIterations, 3u);
    EXPECT_EQ(first.dReachIterations, 3u);
    EXPECT_EQ(first.frontierNodes, 42);
    EXPECT_DOUBLE_EQ(first.cacheHitRate, 0.5);
  }

  counter("bdd.nodes.created").add(10);
  counter("fsm.reach.iterations").add(1);
  counter("bdd.cache.lookups").add(100);
  counter("bdd.cache.hits").add(100);
  HeartbeatRecord second = source.next();
  EXPECT_EQ(second.seq, 1u);
  EXPECT_GE(second.tSeconds, first.tSeconds);
  if (kEnabled) {
    EXPECT_EQ(second.nodesCreated, 110u);
    EXPECT_EQ(second.dNodesCreated, 10u);  // delta, not total
    EXPECT_EQ(second.dReachIterations, 1u);
    // Hit rate is over the delta window: 100/100, not 125/150.
    EXPECT_DOUBLE_EQ(second.cacheHitRate, 1.0);
  }

  // Idle window: totals hold, deltas drop to zero.
  HeartbeatRecord third = source.next();
  if (kEnabled) {
    EXPECT_EQ(third.nodesCreated, 110u);
    EXPECT_EQ(third.dNodesCreated, 0u);
    EXPECT_EQ(third.dReachIterations, 0u);
  }

  // Both render formats always produce something sane.
  EXPECT_NE(third.toTableLine().find("hsis-hb"), std::string::npos);
  JsonValue line = parseJson(third.toJsonl());
  EXPECT_EQ(line.object().at("seq").number(), 2.0);
  resetAll();
}

TEST(ObsHeartbeat, ReporterThreadStartsAndStops) {
  Heartbeat& hb = Heartbeat::instance();
  EXPECT_FALSE(hb.running());
  HeartbeatOptions opts;
  opts.intervalMs = 5;
  opts.jsonlPath = ::testing::TempDir() + "hsis_hb_test.jsonl";
  hb.start(opts);
  EXPECT_TRUE(hb.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  hb.stop();
  EXPECT_FALSE(hb.running());
  // Each emitted line is one valid JSON object with increasing seq.
  std::ifstream in(opts.jsonlPath);
  ASSERT_TRUE(in.good());
  std::string line;
  double prevSeq = -1.0;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue record = parseJson(line);
    double seq = record.object().at("seq").number();
    EXPECT_GT(seq, prevSeq);
    prevSeq = seq;
    ++lines;
  }
  EXPECT_GE(lines, 1u);
  in.close();
  std::remove(opts.jsonlPath.c_str());
}

// ------------------------------------------------------------- watchdog

TEST(ObsWatchdog, TripsAbortOnTinyWallLimit) {
  clearAbort();
  Watchdog& wd = Watchdog::instance();
  WatchdogOptions opts;
  opts.wallLimitSeconds = 0.005;
  opts.pollMs = 2;
  wd.start(opts);
  // The watchdog raises the cooperative flag; a polling loop then throws.
  bool threw = false;
  for (int i = 0; i < 2000 && !threw; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    try {
      checkAbort();
    } catch (const AbortedError& e) {
      threw = true;
      EXPECT_NE(e.reason().find("wall-clock limit"), std::string::npos);
    }
  }
  wd.stop();
  EXPECT_TRUE(threw);
  clearAbort();
}

TEST(ObsWatchdog, MemLimitUsesPeakRss) {
  // /proc/self/status probes are live in both build modes on Linux.
  uint64_t rss = currentRssKb();
  uint64_t peak = peakRssKb();
  EXPECT_GT(rss, 0u);
  EXPECT_GE(peak, rss / 2);  // peak can lag current only by page noise
  clearAbort();
  Watchdog& wd = Watchdog::instance();
  WatchdogOptions opts;
  opts.memLimitKb = 1;  // any real process exceeds 1 KiB instantly
  opts.pollMs = 2;
  wd.start(opts);
  bool tripped = false;
  for (int i = 0; i < 2000 && !tripped; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    tripped = abortRequested();
  }
  wd.stop();
  EXPECT_TRUE(tripped);
  ASSERT_TRUE(abortInfo().has_value());
  EXPECT_NE(abortInfo()->reason.find("memory limit"), std::string::npos);
  clearAbort();
}

TEST(ObsWatchdog, ArmFireRearmCycle) {
  // The hsis_serve per-request pattern: one Watchdog instance re-armed for
  // every request. After a breach the instance must come back clean — no
  // stale fired() state, no unjoined worker thread, a fresh countdown.
  clearAbort();
  Watchdog wd;  // own instance; the process singleton stays untouched
  WatchdogOptions opts;
  opts.wallLimitSeconds = 0.005;
  opts.pollMs = 2;

  // Arm 1: fire.
  wd.start(opts);
  for (int i = 0; i < 2000 && !wd.fired(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(wd.fired());
  EXPECT_FALSE(wd.running());  // a fired watchdog has parked
  EXPECT_TRUE(abortRequested());
  clearAbort();

  // Arm 2 (directly after the breach, the latent-state case): a generous
  // limit must start a fresh countdown — fired() resets and nothing trips.
  opts.wallLimitSeconds = 60.0;
  wd.start(opts);
  EXPECT_TRUE(wd.running());
  EXPECT_FALSE(wd.fired());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(abortRequested());
  wd.stop();
  EXPECT_FALSE(wd.running());

  // Arm 3 (after a clean stop): breaches still fire.
  opts.wallLimitSeconds = 0.005;
  wd.start(opts);
  for (int i = 0; i < 2000 && !wd.fired(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(wd.fired());
  wd.stop();
  clearAbort();
}

TEST(ObsTaskAbort, SlotOnlyAffectsBoundThread) {
  clearAbort();
  TaskAbort slot;
  slot.request("per-task stop", "test.phase");
  // Raised but not bound here: this thread's safe points stay quiet.
  EXPECT_FALSE(abortRequested());

  bindTaskAbort(&slot);
  EXPECT_TRUE(abortRequested());
  try {
    checkAbort();
    FAIL() << "checkAbort() must throw for a bound raised slot";
  } catch (const AbortedError& e) {
    EXPECT_NE(e.reason().find("per-task stop"), std::string::npos);
    EXPECT_EQ(e.phase(), "test.phase");
  }
  // A neighbor thread without the binding is untouched — the multi-tenant
  // guarantee the hsis_serve workers need.
  std::thread neighbor([] { EXPECT_FALSE(abortRequested()); });
  neighbor.join();

  bindTaskAbort(nullptr);
  EXPECT_FALSE(abortRequested());

  // Slots are reusable across requests.
  slot.clear();
  EXPECT_FALSE(slot.requested());
  EXPECT_FALSE(slot.info().has_value());
  slot.request("second request");
  EXPECT_TRUE(slot.requested());
  slot.clear();
}

TEST(ObsTaskAbort, WatchdogTargetRaisesSlotNotProcessFlag) {
  clearAbort();
  TaskAbort slot;
  Watchdog wd;
  WatchdogOptions opts;
  opts.wallLimitSeconds = 0.005;
  opts.pollMs = 2;
  opts.target = &slot;
  wd.start(opts);
  for (int i = 0; i < 2000 && !slot.requested(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(slot.requested());
  ASSERT_TRUE(slot.info().has_value());
  EXPECT_NE(slot.info()->reason.find("wall-clock limit"), std::string::npos);
  // The process-wide flag stayed down: only the targeted worker aborts.
  EXPECT_FALSE(abortRequested());
  wd.stop();
  slot.clear();
}

// --------------------------------------------------- non-finite doubles

TEST(ObsExport, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(jsonDouble(std::nan("")), "null");
  EXPECT_EQ(jsonDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonDouble(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonDouble(1.5), "1.5");
  EXPECT_EQ(jsonDouble(0.0), "0");
}

TEST(ObsExport, TraceWithNonFiniteCountersRoundTrips) {
  // A hand-built snapshot with poisoned counter values: the export must
  // stay parseable (null instead of bare nan/inf, which JSON forbids).
  Snapshot snap;
  CounterPoint p;
  p.tNs = 1000;
  p.liveNodes = 42;
  p.cacheHitRate = std::nan("");
  p.deadFraction = std::numeric_limits<double>::infinity();
  snap.counterPoints.push_back(p);

  JsonValue doc = parseJson(toChromeTrace(snap));
  ASSERT_TRUE(doc.isArray());
  bool sawNullRate = false;
  for (const JsonValue& ev : doc.array()) {
    const JsonObject& o = ev.object();
    const JsonValue* name = jsonlite::find(o, "name");
    if (name != nullptr && name->str() == "bdd.cache.hit_rate") {
      sawNullRate = jsonlite::find(o, "args")->object().at("rate").isNull();
    }
  }
  EXPECT_TRUE(sawNullRate);
}

// ------------------------------------------------- histogram summary json

TEST(ObsHistogram, SummaryJsonRendersNullQuantilesWhenEmpty) {
  // Regression: an untouched histogram used to render quantiles as 0,
  // which reads as "instant" in the serve stats stream. Empty must be
  // explicit: count 0, everything else null.
  Histogram& h = histogram("test.obs.summary.empty");
  h.reset();
  HistogramSummary empty = summarizeHistogram(h);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(histogramSummaryJson(empty),
            "{\"count\": 0, \"p50\": null, \"p90\": null, \"p99\": null, "
            "\"max\": null}");

  h.record(3);
  h.record(1000);
  HistogramSummary s = summarizeHistogram(h);
  std::string json = histogramSummaryJson(s);
  if (kEnabled) {
    EXPECT_EQ(s.count, 2u);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"max\": 1000"), std::string::npos);
    EXPECT_EQ(json.find("null"), std::string::npos);
  } else {
    // Disabled builds record nothing, so the summary stays empty-shaped.
    EXPECT_NE(json.find("\"p50\": null"), std::string::npos);
  }
}

// ----------------------------------------------------- jsonlite strings

TEST(ObsJsonlite, DecodesUnicodeEscapes) {
  // BMP escapes become UTF-8; a surrogate pair combines to one code point.
  JsonValue v = parseJson("\"A\\u0041 \\u00e9 \\u20ac \\ud83d\\ude00\"");
  EXPECT_EQ(v.str(), "AA \xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80");
}

TEST(ObsJsonlite, RejectsMalformedUnicodeEscapes) {
  EXPECT_THROW(parseJson("\"\\u12\""), std::runtime_error);      // short
  EXPECT_THROW(parseJson("\"\\u12zq\""), std::runtime_error);    // not hex
  EXPECT_THROW(parseJson("\"\\ud800\""), std::runtime_error);    // lone high
  EXPECT_THROW(parseJson("\"\\ude00\""), std::runtime_error);    // lone low
  EXPECT_THROW(parseJson("\"\\ud83d\\u0041\""), std::runtime_error);
}

TEST(ObsJsonlite, RejectsUnescapedControlCharacters) {
  EXPECT_THROW(parseJson("\"a\nb\""), std::runtime_error);
  EXPECT_THROW(parseJson(std::string("\"a\0b\"", 5)), std::runtime_error);
  // The escaped forms remain fine.
  EXPECT_EQ(parseJson("\"a\\nb\"").str(), "a\nb");
  EXPECT_EQ(parseJson("\"a\\u0001b\"").str(), std::string("a\x01") + "b");
}

}  // namespace
}  // namespace hsis::obs
