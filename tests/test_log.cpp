// Tests for hsis::obs::log (the structured event log) and
// hsis::obs::flight (the crash-safe flight recorder). Every test passes in
// both build modes: under HSIS_OBS_DISABLE the logger compiles out
// (enabled() is constexpr false, the ring stays empty) but the flight
// recorder stays live — a dump degrades to a valid header-only document.
//
// The crash path itself is covered by a death test: the child installs the
// recorder, opens a span, logs an event, and raises SIGSEGV; the parent
// asserts the process died with SIGSEGV and then parses the dump the
// handler left behind, line by line, with the in-repo jsonlite parser.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/control.hpp"
#include "obs/jsonlite.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"

namespace hsis::obs::log {
namespace {

namespace fs = std::filesystem;

std::string slurpFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

/// Fresh per-test scratch directory under the build tree.
fs::path scratchDir(const char* name) {
  fs::path dir = fs::temp_directory_path() / "hsis_log_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// RAII reset: each test starts from a clean ring, default level, no sinks.
struct LogReset {
  LogReset() {
    closeSinks();
    clearRing();
    setLevel(Level::Info);
  }
  ~LogReset() {
    closeSinks();
    clearRing();
    setLevel(Level::Info);
  }
};

const jsonlite::Value* field(const jsonlite::Object& obj, const char* key) {
  return jsonlite::find(obj, key);
}

// ------------------------------------------------------------------ levels

TEST(LogLevels, NamesRoundTrip) {
  for (Level l : {Level::Trace, Level::Debug, Level::Info, Level::Warn,
                  Level::Error, Level::Off}) {
    EXPECT_EQ(parseLevel(levelName(l)), l);
  }
  EXPECT_EQ(parseLevel("no-such-level"), Level::Info);
}

TEST(LogLevels, FilterGatesRecording) {
  LogReset reset;
  setLevel(Level::Warn);
  if (kEnabled) {
    EXPECT_FALSE(enabled(Level::Info));
    EXPECT_TRUE(enabled(Level::Warn));
    EXPECT_TRUE(enabled(Level::Error));
  } else {
    EXPECT_FALSE(enabled(Level::Error));
  }
  const uint64_t before = eventCount();
  HSIS_LOG_INFO("test.filter", "filtered out");
  EXPECT_EQ(eventCount(), before);
  HSIS_LOG_WARN("test.filter", "recorded");
  EXPECT_EQ(eventCount(), before + (kEnabled ? 1 : 0));
}

TEST(LogLevels, MacroDoesNotEvaluateFieldsWhenFiltered) {
  LogReset reset;
  setLevel(Level::Error);
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations; };
  HSIS_LOG_DEBUG("test.lazy", "never", {{"n", count()}});
  EXPECT_EQ(evaluations, 0);
  HSIS_LOG_ERROR("test.lazy", "always", {{"n", count()}});
  EXPECT_EQ(evaluations, kEnabled ? 1 : 0);
}

// ----------------------------------------------------------- line rendering

TEST(LogRender, RingLineIsValidJsonWithTypedFields) {
  LogReset reset;
  HSIS_LOG_INFO("test.render", "typed fields",
                {{"i", -7},
                 {"u", 42u},
                 {"f", 2.5},
                 {"yes", true},
                 {"s", "hello \"quoted\"\n"}});
  std::vector<std::string> lines = ringLines();
  if (!kEnabled) {
    EXPECT_TRUE(lines.empty());
    return;
  }
  ASSERT_EQ(lines.size(), 1u);
  jsonlite::Value v = jsonlite::parse(lines[0]);
  ASSERT_TRUE(v.isObject());
  const jsonlite::Object& obj = v.object();
  EXPECT_EQ(field(obj, "kind")->str(), "event");
  EXPECT_EQ(field(obj, "lvl")->str(), "info");
  EXPECT_EQ(field(obj, "comp")->str(), "test.render");
  EXPECT_EQ(field(obj, "msg")->str(), "typed fields");
  EXPECT_GT(field(obj, "t_ns")->number(), 0.0);
  EXPECT_GE(field(obj, "tseq")->number(), 1.0);
  ASSERT_NE(field(obj, "fields"), nullptr);
  const jsonlite::Object& f = field(obj, "fields")->object();
  EXPECT_EQ(field(f, "i")->number(), -7.0);
  EXPECT_EQ(field(f, "u")->number(), 42.0);
  EXPECT_EQ(field(f, "f")->number(), 2.5);
  EXPECT_TRUE(field(f, "yes")->boolean());
  EXPECT_EQ(field(f, "s")->str(), "hello \"quoted\"\n");
}

TEST(LogRender, OversizedLineBecomesTruncatedStandIn) {
  LogReset reset;
  // A message larger than a whole ring slot: the ring must carry a short,
  // VALID stand-in, never a torn prefix.
  std::string big(2 * kRingSlotBytes, 'x');
  HSIS_LOG_INFO("test.trunc", big, {{"payload", std::string_view(big)}});
  std::vector<std::string> lines = ringLines();
  if (!kEnabled) {
    EXPECT_TRUE(lines.empty());
    return;
  }
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_LE(lines[0].size(), kRingSlotBytes);
  jsonlite::Value v = jsonlite::parse(lines[0]);
  const jsonlite::Object& obj = v.object();
  EXPECT_TRUE(field(obj, "truncated")->boolean());
  EXPECT_EQ(field(obj, "comp")->str(), "test.trunc");
}

TEST(LogRender, PerThreadSequenceNumbers) {
  LogReset reset;
  if (!kEnabled) GTEST_SKIP() << "logger compiled out";
  auto worker = [] {
    for (int i = 0; i < 5; ++i) HSIS_LOG_INFO("test.tseq", "tick");
  };
  std::thread a(worker), b(worker);
  a.join();
  b.join();
  // Each thread numbers its own events 1..5 regardless of interleaving.
  std::map<double, std::vector<double>> perThread;
  for (const std::string& line : ringLines()) {
    jsonlite::Value v = jsonlite::parse(line);
    const jsonlite::Object& obj = v.object();
    perThread[field(obj, "tid")->number()].push_back(
        field(obj, "tseq")->number());
  }
  ASSERT_EQ(perThread.size(), 2u);
  for (auto& [tid, seqs] : perThread) {
    ASSERT_EQ(seqs.size(), 5u) << "tid " << tid;
    for (size_t i = 0; i < seqs.size(); ++i)
      EXPECT_EQ(seqs[i], static_cast<double>(i + 1));
  }
}

// -------------------------------------------------------------------- ring

TEST(LogRing, WrapsKeepingNewestOldestFirst) {
  LogReset reset;
  if (!kEnabled) GTEST_SKIP() << "logger compiled out";
  const int total = static_cast<int>(kRingSlots) + 17;
  for (int i = 0; i < total; ++i)
    HSIS_LOG_INFO("test.wrap", "n", {{"n", i}});
  EXPECT_EQ(eventCount(), static_cast<uint64_t>(total));
  std::vector<std::string> lines = ringLines();
  ASSERT_EQ(lines.size(), kRingSlots);
  // Oldest surviving event is total - kRingSlots; order is oldest-first.
  for (size_t i = 0; i < lines.size(); ++i) {
    jsonlite::Value v = jsonlite::parse(lines[i]);
    const jsonlite::Object& f = field(v.object(), "fields")->object();
    EXPECT_EQ(field(f, "n")->number(),
              static_cast<double>(total - kRingSlots + i));
  }
}

TEST(LogRing, ClearRingEmptiesIt) {
  LogReset reset;
  HSIS_LOG_INFO("test.clear", "x");
  clearRing();
  EXPECT_TRUE(ringLines().empty());
  EXPECT_EQ(eventCount(), 0u);
}

// ------------------------------------------------------------------- sinks

TEST(LogSinks, JsonlSinkWritesHeaderAndEvents) {
  LogReset reset;
  fs::path dir = scratchDir("jsonl_sink");
  std::string path = (dir / "log.jsonl").string();
  openJsonlSink(path);
  HSIS_LOG_INFO("test.sink", "first");
  HSIS_LOG_WARN("test.sink", "second", {{"k", 1}});
  closeSinks();
  std::vector<std::string> lines = splitLines(slurpFile(path));
  // Header line always written (sink open is control flow).
  ASSERT_GE(lines.size(), 1u);
  jsonlite::Value headVal = jsonlite::parse(lines[0]);
  const jsonlite::Object& head = headVal.object();
  EXPECT_EQ(field(head, "schema")->str(), "hsis-log-v1");
  if (kEnabled) {
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(field(jsonlite::parse(lines[1]).object(), "msg")->str(),
              "first");
    EXPECT_EQ(field(jsonlite::parse(lines[2]).object(), "lvl")->str(),
              "warn");
  }
}

TEST(LogSinks, HumanSinkFormatsOneLinePerEvent) {
  LogReset reset;
  fs::path dir = scratchDir("human_sink");
  std::string path = (dir / "human.txt").string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  setHumanSink(f);
  HSIS_LOG_WARN("test.human", "watch out", {{"n", 3}});
  setHumanSink(nullptr);
  std::fclose(f);
  std::string text = slurpFile(path);
  if (kEnabled) {
    EXPECT_NE(text.find("[hsis warn"), std::string::npos);
    EXPECT_NE(text.find("test.human] watch out n=3"), std::string::npos);
  } else {
    EXPECT_TRUE(text.empty());
  }
}

}  // namespace
}  // namespace hsis::obs::log

// --------------------------------------------------------- flight recorder

namespace hsis::obs::flight {
namespace {

namespace fs = std::filesystem;
using log::kRingSlotBytes;

std::string slurpFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

fs::path scratchDir(const char* name) {
  fs::path dir = fs::temp_directory_path() / "hsis_flight_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Parse every line of a dump; fails the test on any malformed line.
/// Returns the parsed objects keyed by their order in the file.
std::vector<jsonlite::Object> parseDump(const std::string& path) {
  std::vector<jsonlite::Object> out;
  for (const std::string& line : splitLines(slurpFile(path))) {
    jsonlite::Value v = jsonlite::parse(line);  // throws -> test failure
    EXPECT_TRUE(v.isObject()) << line;
    out.push_back(v.object());
  }
  return out;
}

std::string kindOf(const jsonlite::Object& obj) {
  const jsonlite::Value* k = jsonlite::find(obj, "kind");
  return k != nullptr && k->isString() ? k->str() : "";
}

/// Find the single dump file the crashed child left in `dir` (its pid is
/// not ours, so the parent globs instead of calling dumpPath()).
std::string findDump(const fs::path& dir) {
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("hsis-flight-", 0) == 0) return e.path().string();
  }
  return "";
}

TEST(FlightRecorder, InstallSetsPathAndUninstallClearsIt) {
  fs::path dir = scratchDir("install");
  install(dir.string(), "hsis_tests");
  EXPECT_TRUE(installed());
  std::string path = dumpPath();
  EXPECT_NE(path.find("hsis-flight-"), std::string::npos);
  EXPECT_NE(path.find(dir.string()), std::string::npos);
  uninstall();
  EXPECT_FALSE(installed());
  EXPECT_EQ(dumpPath(), "");
}

TEST(FlightRecorder, DumpWithoutInstallFails) {
  uninstall();
  EXPECT_FALSE(dump("not installed"));
}

TEST(FlightRecorder, NormalContextDumpCarriesPhasesAndRing) {
  log::clearRing();
  log::setLevel(log::Level::Info);
  fs::path dir = scratchDir("normal_dump");
  install(dir.string(), "hsis_tests");
  {
    Span outer("flight.outer");
    Span inner("flight.inner");
    HSIS_LOG_INFO("test.flight", "before dump", {{"marker", 99}});
    ASSERT_TRUE(dump("watchdog: test breach"));
  }
  std::string path = dumpPath();
  uninstall();

  std::vector<jsonlite::Object> objs = parseDump(path);
  ASSERT_FALSE(objs.empty());
  // Line 1: the header, with the reason and live RSS.
  EXPECT_EQ(jsonlite::find(objs[0], "schema")->str(), "hsis-flight-v1");
  EXPECT_EQ(kindOf(objs[0]), "header");
  EXPECT_EQ(jsonlite::find(objs[0], "driver")->str(), "hsis_tests");
  EXPECT_EQ(jsonlite::find(objs[0], "reason")->str(),
            "watchdog: test breach");
  EXPECT_GT(jsonlite::find(objs[0], "rss_kb")->number(), 0.0);
  EXPECT_EQ(jsonlite::find(objs[0], "obs_enabled")->boolean(), kEnabled);

  size_t phaseLines = 0, eventLines = 0;
  bool sawMarker = false, sawFrames = false;
  for (const jsonlite::Object& obj : objs) {
    const std::string kind = kindOf(obj);
    if (kind == "phase_stack") {
      ++phaseLines;
      const std::string& frames = jsonlite::find(obj, "frames")->str();
      if (frames.find("flight.outer;flight.inner") != std::string::npos)
        sawFrames = true;
    } else if (kind == "event") {
      ++eventLines;
      const jsonlite::Value* f = jsonlite::find(obj, "fields");
      if (f != nullptr &&
          jsonlite::find(f->object(), "marker") != nullptr)
        sawMarker = true;
    }
  }
  if (kEnabled) {
    EXPECT_GE(phaseLines, 1u);
    EXPECT_TRUE(sawFrames);
    EXPECT_GE(eventLines, 1u);
    EXPECT_TRUE(sawMarker);
    EXPECT_GE(jsonlite::find(objs[0], "ring_events_total")->number(), 1.0);
  } else {
    // Header-only document: spans and events are compiled out, but the
    // dump is still schema-valid (this is the disabled-mode guarantee).
    EXPECT_EQ(phaseLines, 0u);
    EXPECT_EQ(eventLines, 0u);
  }
  log::clearRing();
}

TEST(FlightRecorder, AbortRequestWritesDump) {
  log::clearRing();
  fs::path dir = scratchDir("abort_dump");
  install(dir.string(), "hsis_tests");
  std::string path = dumpPath();
  requestAbort("memory limit breached", "test.phase");
  uninstall();
  clearAbort();

  std::vector<jsonlite::Object> objs = parseDump(path);
  ASSERT_FALSE(objs.empty());
  EXPECT_EQ(kindOf(objs[0]), "header");
  EXPECT_NE(jsonlite::find(objs[0], "reason")->str().find(
                "memory limit breached"),
            std::string::npos);
  log::clearRing();
}

// The crash path proper. gtest re-executes the binary for the statement in
// threadsafe style, so the child is a fresh process: it installs the
// recorder into a directory the parent chose, produces some state, and
// dies by SIGSEGV. SA_RESETHAND + re-raise means the exit status is the
// real signal, which EXPECT_EXIT asserts; then the parent parses the dump.
TEST(FlightRecorderDeathTest, SigsegvWritesSchemaValidDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  fs::path dir = scratchDir("segv");
  EXPECT_EXIT(
      {
        log::setLevel(log::Level::Info);
        install(dir.string(), "hsis_tests");
        Span phase("crash.phase");
        HSIS_LOG_INFO("test.crash", "about to fault", {{"armed", true}});
        std::raise(SIGSEGV);
      },
      ::testing::KilledBySignal(SIGSEGV), "");

  std::string path = findDump(dir);
  ASSERT_FALSE(path.empty()) << "no dump written in " << dir;
  std::vector<jsonlite::Object> objs = parseDump(path);
  ASSERT_FALSE(objs.empty());
  EXPECT_EQ(jsonlite::find(objs[0], "schema")->str(), "hsis-flight-v1");
  EXPECT_EQ(kindOf(objs[0]), "header");
  EXPECT_NE(jsonlite::find(objs[0], "reason")->str().find("SIGSEGV"),
            std::string::npos);

  size_t phaseLines = 0, eventLines = 0;
  for (const jsonlite::Object& obj : objs) {
    if (kindOf(obj) == "phase_stack") ++phaseLines;
    if (kindOf(obj) == "event") ++eventLines;
  }
  if (kEnabled) {
    EXPECT_GE(phaseLines, 1u) << "phase stack missing from crash dump";
    EXPECT_GE(eventLines, 1u) << "ring events missing from crash dump";
  }
}

TEST(FlightRecorderDeathTest, SigabrtWritesDumpToo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  fs::path dir = scratchDir("abrt");
  EXPECT_EXIT(
      {
        install(dir.string(), "hsis_tests");
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");
  std::string path = findDump(dir);
  ASSERT_FALSE(path.empty());
  std::vector<jsonlite::Object> objs = parseDump(path);
  ASSERT_FALSE(objs.empty());
  EXPECT_NE(jsonlite::find(objs[0], "reason")->str().find("SIGABRT"),
            std::string::npos);
}

}  // namespace
}  // namespace hsis::obs::flight
