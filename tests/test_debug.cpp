// Tests for the interactive model-checking debugger and bug reports.
#include <gtest/gtest.h>

#include "blifmv/blifmv.hpp"
#include "debug/mcdebug.hpp"
#include "debug/report.hpp"
#include "vl2mv/vl2mv.hpp"

namespace hsis {
namespace {

struct DebugFixture : ::testing::Test {
  void SetUp() override {
    // 0 -> 1 -> 2 -> 0 with an escape 1 -> 3 (absorbing).
    flat = blifmv::flatten(blifmv::parse(R"(
.model loop
.mv s, ns 4
.table s ns
0 1
1 (2,3)
2 0
3 3
.latch ns s
.reset s
0
.end
)"));
    fsm = std::make_unique<Fsm>(mgr, flat);
    tr = TransitionRelation::monolithic(*fsm);
    mc = std::make_unique<CtlChecker>(*fsm, *tr);
  }
  BddManager mgr;
  blifmv::Model flat;
  std::unique_ptr<Fsm> fsm;
  std::optional<TransitionRelation> tr;
  std::unique_ptr<CtlChecker> mc;
};

TEST_F(DebugFixture, RejectsHoldingFormula) {
  EXPECT_THROW(McDebugSession(*mc, parseCtl("EF s=3")), std::invalid_argument);
}

TEST_F(DebugFixture, UnfoldsConjunction) {
  // AG s!=3  &  EF s=9-ish: use (AG s!=3) & (EF s=2): first conjunct false.
  McDebugSession dbg(*mc, parseCtl("AG s!=3 & EF s=2"));
  EXPECT_FALSE(dbg.atLeaf());
  // exactly one conjunct is false
  ASSERT_EQ(dbg.choices().size(), 1u);
  EXPECT_EQ(dbg.choices()[0].formula->kind, CtlFormula::Kind::AG);
  EXPECT_TRUE(dbg.choose(0));
  EXPECT_EQ(dbg.formula()->kind, CtlFormula::Kind::AG);
}

TEST_F(DebugFixture, AgGivesShortestPathToViolation) {
  McDebugSession dbg(*mc, parseCtl("AG s!=3"));
  // choices include the shortest-path descent
  bool foundPath = false;
  for (size_t i = 0; i < dbg.choices().size(); ++i) {
    if (dbg.choices()[i].description.find("shortest path") != std::string::npos) {
      foundPath = true;
      ASSERT_TRUE(dbg.choose(i));
      // we land on the violating state s=3 with the residual obligation
      EXPECT_EQ(fsm->decodeState(dbg.state())[0], 3u);
      EXPECT_TRUE(dbg.atLeaf());  // atom s!=3 cannot be unfolded further
      // the walked path is recorded
      EXPECT_GE(dbg.pathSoFar().size(), 3u);
    }
  }
  EXPECT_TRUE(foundPath);
}

TEST_F(DebugFixture, ExPursuesSuccessors) {
  // EX s=3 is false at the initial state (its only successor is s=1).
  McDebugSession dbg(*mc, parseCtl("EX s=3"));
  ASSERT_EQ(dbg.choices().size(), 1u);  // one successor to pursue
  EXPECT_NE(dbg.choices()[0].description.find("pursue"), std::string::npos);
  ASSERT_TRUE(dbg.choose(0));
  EXPECT_EQ(fsm->decodeState(dbg.state())[0], 1u);
  EXPECT_TRUE(dbg.atLeaf());
}

TEST_F(DebugFixture, BackTracksHistory) {
  McDebugSession dbg(*mc, parseCtl("AG s!=3"));
  std::string before = dbg.describe();
  ASSERT_FALSE(dbg.choices().empty());
  ASSERT_TRUE(dbg.choose(0));
  EXPECT_NE(dbg.describe(), before);
  EXPECT_TRUE(dbg.back());
  EXPECT_EQ(dbg.describe(), before);
  EXPECT_FALSE(dbg.back());  // at root
}

TEST_F(DebugFixture, AfUnfolds) {
  McDebugSession dbg(*mc, parseCtl("AF s=3"));
  // obligations: the subformula false here, or stay on an escaping path
  ASSERT_GE(dbg.choices().size(), 1u);
  bool sawSub = false;
  for (const auto& c : dbg.choices()) {
    if (c.formula->kind == CtlFormula::Kind::Atom) sawSub = true;
  }
  EXPECT_TRUE(sawSub);
}

TEST_F(DebugFixture, DescribeMentionsStateAndFormula) {
  McDebugSession dbg(*mc, parseCtl("AG s!=3"));
  std::string d = dbg.describe();
  EXPECT_NE(d.find("s=0"), std::string::npos);
  EXPECT_NE(d.find("FALSE"), std::string::npos);
}

TEST_F(DebugFixture, ChooseOutOfRange) {
  McDebugSession dbg(*mc, parseCtl("AG s!=3"));
  EXPECT_FALSE(dbg.choose(999));
}

TEST_F(DebugFixture, BugReportRendering) {
  McResult r = mc->check(parseCtl("AG s!=3"));
  BugReport report;
  report.paradigm = BugReport::Paradigm::ModelChecking;
  report.propertyName = "no_sink";
  report.propertyText = "AG s!=3";
  report.holds = r.holds;
  report.trace = r.counterexample;
  report.usedEarlyFailure = r.stats.usedEarlyFailure;
  std::string text = renderBugReport(report, *fsm);
  EXPECT_NE(text.find("no_sink"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("error trace"), std::string::npos);
  EXPECT_NE(text.find("s=3"), std::string::npos);
}

TEST_F(DebugFixture, LassoRendering) {
  Trace t;
  t.states.push_back(concretizeState(*fsm, fsm->stateFromValues({0})));
  t.states.push_back(concretizeState(*fsm, fsm->stateFromValues({1})));
  t.cycleStart = 1;
  std::string text = renderTrace(t, *fsm);
  EXPECT_NE(text.find("cycle"), std::string::npos);
  EXPECT_NE(text.find("loops back to step 1"), std::string::npos);
}

TEST_F(DebugFixture, SourceRenderingOnLassoWithoutLineInfo) {
  // AF s=3 fails: the 0-1-2 cycle never visits 3, so the checker yields a
  // fair lasso. BLIF-MV input carries no .lineinfo, so the source-level
  // renderer must fall back to bare change annotations — no "(line N)".
  McResult r = mc->check(parseCtl("AF s=3"));
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  ASSERT_TRUE(r.counterexample->isLasso());
  std::string text = renderTraceWithSource(*r.counterexample, *fsm);
  EXPECT_NE(text.find("-- cycle --"), std::string::npos);
  EXPECT_NE(text.find("(loops back to step"), std::string::npos);
  EXPECT_NE(text.find("back-edge changes"), std::string::npos);
  EXPECT_NE(text.find("changes:"), std::string::npos);
  EXPECT_EQ(text.find("(line"), std::string::npos);
}


// ---- source-level debugging (paper Section 8, item 7) ----

TEST(SourceLevel, LineInfoFlowsFromVerilogToTraces) {
  auto design = vl2mv::compile(R"(
module m;
  wire clk;
  reg a;
  reg [1:0] b;
  always @(posedge clk) begin
    a <= !a;
    if (a) b <= b + 1;
  end
  initial a = 0;
  initial b = 0;
endmodule
)");
  // the .lineinfo annotations are in the BLIF-MV text
  std::string text = blifmv::write(design);
  EXPECT_NE(text.find(".lineinfo a 4"), std::string::npos);
  EXPECT_NE(text.find(".lineinfo b 5"), std::string::npos);
  // and survive a parse + flatten round trip into the FSM
  auto flat = blifmv::flatten(blifmv::parse(text));
  BddManager mgr;
  Fsm fsm(mgr, flat);
  for (size_t l = 0; l < fsm.numLatches(); ++l) {
    if (fsm.latchName(l) == "a") EXPECT_EQ(fsm.latchLine(l), 4);
    if (fsm.latchName(l) == "b") EXPECT_EQ(fsm.latchLine(l), 5);
  }
  std::string map = renderSourceMap(fsm);
  EXPECT_NE(map.find("a -> line 4"), std::string::npos);

  // a failing invariant's trace annotated with source lines
  auto tr = TransitionRelation::monolithic(fsm);
  CtlChecker mc(fsm, tr);
  McResult r = mc.check(parseCtl("AG b!=2"));
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  std::string annotated = renderTraceWithSource(*r.counterexample, fsm);
  EXPECT_NE(annotated.find("changes:"), std::string::npos);
  EXPECT_NE(annotated.find("(line 5)"), std::string::npos);
}

TEST(SourceLevel, LassoRenderingCarriesLineInfo) {
  // b advances only under the free input en, so AF b=2 fails: the lasso
  // holds en=0 forever while a keeps toggling. The cycle's change
  // annotations must carry a's declaration line.
  auto design = vl2mv::compile(R"(
module m;
  wire clk;
  wire en;
  reg a;
  reg [1:0] b;
  always @(posedge clk) begin
    a <= !a;
    if (en) b <= b + 1;
  end
  initial a = 0;
  initial b = 0;
endmodule
)");
  auto flat = blifmv::flatten(design);
  BddManager mgr;
  Fsm fsm(mgr, flat);
  auto tr = TransitionRelation::monolithic(fsm);
  CtlChecker mc(fsm, tr);
  McResult r = mc.check(parseCtl("AF b=2"));
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  ASSERT_TRUE(r.counterexample->isLasso());
  std::string text = renderTraceWithSource(*r.counterexample, fsm);
  EXPECT_NE(text.find("-- cycle --"), std::string::npos);
  EXPECT_NE(text.find("(line 5)"), std::string::npos);  // reg a
}

TEST(SourceLevel, PrefixedLinesAcrossHierarchy) {
  auto design = vl2mv::compile(R"(
module top;
  wire clk;
  wire o;
  sub u1(o);
endmodule
module sub(o);
  output o;
  wire clk;
  reg r;
  always @(posedge clk) r <= !r;
  initial r = 0;
  assign o = r;
endmodule
)");
  auto flat = blifmv::flatten(design);
  EXPECT_EQ(flat.lineOf("u1.r"), 10);
}

}  // namespace
}  // namespace hsis
