// Tests for hsis::obs::ledger — record serialization, path resolution,
// locked appends (including many concurrent writers), the cross-run diff
// used by hsis_report, and the crash-armed record. The ledger is run
// identity, not measurement: everything here passes unchanged under
// HSIS_OBS_DISABLE.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/jsonlite.hpp"
#include "obs/ledger.hpp"

namespace hsis::obs::ledger {
namespace {

namespace fs = std::filesystem;

fs::path scratchDir(const char* name) {
  fs::path dir = fs::temp_directory_path() / "hsis_ledger_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Record sampleRecord() {
  Record r;
  r.runId = "1000-42";
  r.time = "2026-08-07T12:00:00Z";
  r.driver = "hsis_cli";
  r.subject = "philos";
  r.result = "fail";
  r.detail = "no_deadlock, progress_p0";
  r.digest = digestOf("no_deadlock");
  r.wallSeconds = 0.0353;
  r.peakRssKb = 9032;
  r.gitSha = "abc1234";
  r.config = "--model philos";
  r.obsEnabled = true;
  return r;
}

/// A minimal completed record for diff scenarios.
Record runRecord(const std::string& runId, const std::string& sha,
                 const std::string& subject, double wallS, uint64_t rssKb,
                 const std::string& result = "completed") {
  Record r;
  r.runId = runId;
  r.time = "2026-08-07T12:00:00Z";
  r.driver = "hsis_bench";
  r.subject = subject;
  r.result = result;
  r.wallSeconds = wallS;
  r.peakRssKb = rssKb;
  r.gitSha = sha;
  return r;
}

// --------------------------------------------------------------- identity

TEST(LedgerIdentity, RunIdIsStableAndWellFormed) {
  std::string id = runId();
  EXPECT_EQ(id, runId());
  EXPECT_NE(id.find('-'), std::string::npos);
}

TEST(LedgerIdentity, TimestampLooksLikeIso8601Utc) {
  std::string t = timestampUtc();
  ASSERT_EQ(t.size(), 20u);
  EXPECT_EQ(t[4], '-');
  EXPECT_EQ(t[10], 'T');
  EXPECT_EQ(t.back(), 'Z');
}

TEST(LedgerIdentity, DigestIsDeterministicHex) {
  EXPECT_EQ(digestOf("abc"), digestOf("abc"));
  EXPECT_NE(digestOf("abc"), digestOf("abd"));
  EXPECT_EQ(digestOf("x").size(), 16u);
}

// ------------------------------------------------------------ round trip

TEST(LedgerSerialize, ToJsonlParsesBackIdentically) {
  Record r = sampleRecord();
  std::string line = toJsonl(r);
  // The line itself is one valid JSON object of the right schema.
  jsonlite::Value v = jsonlite::parse(line);
  EXPECT_EQ(jsonlite::find(v.object(), "schema")->str(), "hsis-ledger-v1");

  size_t skipped = 0;
  std::vector<Record> back = parse(line + "\n", &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(back.size(), 1u);
  const Record& b = back[0];
  EXPECT_EQ(b.runId, r.runId);
  EXPECT_EQ(b.time, r.time);
  EXPECT_EQ(b.driver, r.driver);
  EXPECT_EQ(b.subject, r.subject);
  EXPECT_EQ(b.result, r.result);
  EXPECT_EQ(b.detail, r.detail);
  EXPECT_EQ(b.digest, r.digest);
  EXPECT_DOUBLE_EQ(b.wallSeconds, r.wallSeconds);
  EXPECT_EQ(b.peakRssKb, r.peakRssKb);
  EXPECT_EQ(b.gitSha, r.gitSha);
  EXPECT_EQ(b.config, r.config);
  EXPECT_EQ(b.obsEnabled, r.obsEnabled);
  EXPECT_EQ(b.signalName, "");
}

TEST(LedgerSerialize, EscapesHostileStrings) {
  Record r = sampleRecord();
  r.detail = "quote \" slash \\ newline \n tab \t";
  std::vector<Record> back = parse(toJsonl(r) + "\n");
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].detail, r.detail);
}

TEST(LedgerSerialize, CoverageFieldsRoundTrip) {
  Record r = sampleRecord();
  r.hasCoverage = true;
  r.covStateFraction = 0.75;
  r.covValuesReached = 5;
  r.covValuesTotal = 6;
  r.covBinsHit = 3;
  r.covBinsTotal = 4;
  std::string line = toJsonl(r);
  EXPECT_NE(line.find("\"coverage\""), std::string::npos);
  std::vector<Record> back = parse(line + "\n");
  ASSERT_EQ(back.size(), 1u);
  const Record& b = back[0];
  EXPECT_TRUE(b.hasCoverage);
  EXPECT_DOUBLE_EQ(b.covStateFraction, 0.75);
  EXPECT_EQ(b.covValuesReached, 5u);
  EXPECT_EQ(b.covValuesTotal, 6u);
  EXPECT_EQ(b.covBinsHit, 3u);
  EXPECT_EQ(b.covBinsTotal, 4u);
  // The show renderer surfaces the coverage line.
  EXPECT_NE(renderShow(back, b.runId).find("coverage:"), std::string::npos);
}

TEST(LedgerSerialize, RecordWithoutCoverageOmitsTheKey) {
  // Records from drivers that never ran coverage must serialize exactly as
  // before the field existed (crash-armed records split the line on the
  // rendered suffix, so byte layout matters).
  Record r = sampleRecord();
  std::string line = toJsonl(r);
  EXPECT_EQ(line.find("\"coverage\""), std::string::npos);
  std::vector<Record> back = parse(line + "\n");
  ASSERT_EQ(back.size(), 1u);
  EXPECT_FALSE(back[0].hasCoverage);
}

TEST(LedgerParse, SkipsTornAndForeignLines) {
  Record r = sampleRecord();
  std::string text;
  text += toJsonl(r) + "\n";
  text += "{\"schema\": \"hsis-ledger-v1\", \"run_id\": \"torn";  // torn crash
  text += "\n";
  text += "{\"schema\": \"some-other-v1\"}\n";  // wrong schema
  text += "not json at all\n";
  text += toJsonl(r) + "\n";
  size_t skipped = 0;
  std::vector<Record> out = parse(text, &skipped);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(skipped, 3u);
}

// ------------------------------------------------------------------ paths

TEST(LedgerPath, FlagWinsOverEnvironment) {
  ::setenv("HSIS_LEDGER", "/env/ledger.jsonl", 1);
  EXPECT_EQ(resolvePath("/flag/ledger.jsonl"), "/flag/ledger.jsonl");
  EXPECT_EQ(resolvePath(""), "/env/ledger.jsonl");
  ::unsetenv("HSIS_LEDGER");
}

TEST(LedgerPath, NoneDisablesFromEitherSource) {
  EXPECT_EQ(resolvePath("none"), "");
  ::setenv("HSIS_LEDGER", "none", 1);
  EXPECT_EQ(resolvePath(""), "");
  ::unsetenv("HSIS_LEDGER");
}

TEST(LedgerPath, FallsBackToHomeDotHsis) {
  ::unsetenv("HSIS_LEDGER");
  const char* savedHome = std::getenv("HOME");
  std::string saved = savedHome != nullptr ? savedHome : "";
  ::setenv("HOME", "/fake/home", 1);
  EXPECT_EQ(resolvePath(""), "/fake/home/.hsis/ledger.jsonl");
  if (savedHome != nullptr) {
    ::setenv("HOME", saved.c_str(), 1);
  } else {
    ::unsetenv("HOME");
  }
}

// ----------------------------------------------------------------- append

TEST(LedgerAppend, EmptyPathIsDisabledNotAnError) {
  EXPECT_TRUE(append("", sampleRecord()));
}

TEST(LedgerAppend, CreatesParentDirectoryAndAppends) {
  fs::path dir = scratchDir("append");
  std::string path = (dir / "nested" / "ledger.jsonl").string();
  ASSERT_TRUE(append(path, sampleRecord()));
  ASSERT_TRUE(append(path, sampleRecord()));
  std::vector<Record> out = load(path);
  EXPECT_EQ(out.size(), 2u);
}

TEST(LedgerAppend, ConcurrentWritersProduceOnlyWholeLines) {
  fs::path dir = scratchDir("concurrent");
  std::string path = (dir / "ledger.jsonl").string();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&path, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Record r = sampleRecord();
        r.subject = "w" + std::to_string(t) + "-" + std::to_string(i);
        // A long detail makes a torn interleaving far more likely if the
        // locking were broken.
        r.detail = std::string(200, static_cast<char>('a' + t));
        append(path, r);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  size_t skipped = 999;
  std::vector<Record> out = load(path, &skipped);
  EXPECT_EQ(skipped, 0u) << "torn lines in concurrently appended ledger";
  EXPECT_EQ(out.size(), static_cast<size_t>(kThreads * kPerThread));
}

// ------------------------------------------------------------------- diff

TEST(LedgerDiff, ByGitShaFlagsWallAndRssRegressions) {
  std::vector<Record> records = {
      runRecord("100-1", "aaa", "reach/gcd", 1.0, 1000),
      runRecord("100-1", "aaa", "reach/philos", 2.0, 2000),
      runRecord("200-2", "bbb", "reach/gcd", 1.5, 1000),    // wall +50%
      runRecord("200-2", "bbb", "reach/philos", 2.0, 2600),  // rss +30%
  };
  DiffResult d = diffByGitSha(records, "aaa", "bbb", 10.0, 10.0);
  EXPECT_EQ(d.wallRegressions, 1);
  EXPECT_EQ(d.rssRegressions, 1);
  ASSERT_EQ(d.rows.size(), 2u);
  EXPECT_TRUE(d.rows[0].wallRegression);   // reach/gcd (map order)
  EXPECT_FALSE(d.rows[0].rssRegression);
  EXPECT_FALSE(d.rows[1].wallRegression);  // reach/philos
  EXPECT_TRUE(d.rows[1].rssRegression);
  EXPECT_DOUBLE_EQ(d.rows[0].wallRatio, 1.5);
}

TEST(LedgerDiff, ThresholdZeroDisablesThatDimension) {
  std::vector<Record> records = {
      runRecord("100-1", "aaa", "case", 1.0, 1000),
      runRecord("200-2", "bbb", "case", 3.0, 3000),
  };
  DiffResult d = diffByGitSha(records, "aaa", "bbb", 0.0, 0.0);
  EXPECT_EQ(d.wallRegressions, 0);
  EXPECT_EQ(d.rssRegressions, 0);
}

TEST(LedgerDiff, MissingAndAbortedSubjectsAreNotedNotDiffed) {
  std::vector<Record> records = {
      runRecord("100-1", "aaa", "gone", 1.0, 1000),
      runRecord("100-1", "aaa", "broke", 1.0, 1000),
      runRecord("200-2", "bbb", "fresh", 1.0, 1000),
      runRecord("200-2", "bbb", "broke", 0.0, 0, "aborted"),
  };
  DiffResult d = diffByGitSha(records, "aaa", "bbb", 10.0, 10.0);
  EXPECT_EQ(d.wallRegressions, 0);
  ASSERT_EQ(d.rows.size(), 3u);
  std::map<std::string, std::string> notes;
  for (const DiffRow& r : d.rows) notes[r.subject] = r.note;
  EXPECT_EQ(notes["gone"], "only in old");
  EXPECT_EQ(notes["fresh"], "only in new");
  EXPECT_EQ(notes["broke"], "aborted");
}

TEST(LedgerDiff, LatestRunsPicksLastTwoRunIds) {
  std::vector<Record> records = {
      runRecord("100-1", "aaa", "case", 1.0, 1000),
      runRecord("200-2", "bbb", "case", 1.0, 1000),
      runRecord("300-3", "ccc", "case", 2.0, 1000),
  };
  std::optional<DiffResult> d = diffLatestRuns(records, 10.0, 0.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->oldLabel, "200-2");
  EXPECT_EQ(d->newLabel, "300-3");
  EXPECT_EQ(d->wallRegressions, 1);

  EXPECT_FALSE(diffLatestRuns({records[0]}, 10.0, 0.0).has_value());
}

// -------------------------------------------------------------- rendering

TEST(LedgerRender, DiffTableCarriesFlagsAndSummary) {
  std::vector<Record> records = {
      runRecord("100-1", "aaa", "case", 1.0, 1000),
      runRecord("200-2", "bbb", "case", 2.0, 1000),
  };
  DiffResult d = diffByGitSha(records, "aaa", "bbb", 10.0, 10.0);
  std::string text = renderDiff(d, /*markdown=*/false);
  EXPECT_NE(text.find("WALL-REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("1 wall regression(s), 0 RSS regression(s)"),
            std::string::npos);
  std::string md = renderDiff(d, /*markdown=*/true);
  EXPECT_NE(md.find("| case |"), std::string::npos);
  EXPECT_NE(md.find("2.00x"), std::string::npos);
}

TEST(LedgerRender, ListAndShowIncludeTheRecord) {
  std::vector<Record> records = {sampleRecord()};
  std::string list = renderList(records, 20);
  EXPECT_NE(list.find("philos"), std::string::npos);
  EXPECT_NE(list.find("fail"), std::string::npos);
  std::string show = renderShow(records, "1000-42");
  EXPECT_NE(show.find("digest:"), std::string::npos);
  EXPECT_NE(show.find("--model philos"), std::string::npos);
  EXPECT_NE(renderShow(records, "9999").find("no records match"),
            std::string::npos);
}

// ----------------------------------------------------------- crash arming

TEST(LedgerCrash, ArmedRecordIsCompletedBySignalPath) {
  fs::path dir = scratchDir("armed");
  std::string path = (dir / "ledger.jsonl").string();
  Record r = sampleRecord();
  armCrashRecord(path, r);
  // Simulate what the flight recorder's handler does on SIGSEGV.
  detail::writeArmedCrashRecord("SIGSEGV");
  disarmCrashRecord();

  size_t skipped = 0;
  std::vector<Record> out = load(path, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].result, "crashed");
  EXPECT_EQ(out[0].signalName, "SIGSEGV");
  EXPECT_EQ(out[0].subject, r.subject);
  EXPECT_EQ(out[0].runId, r.runId);
}

TEST(LedgerCrash, DisarmedRecordWritesNothing) {
  fs::path dir = scratchDir("disarmed");
  std::string path = (dir / "ledger.jsonl").string();
  armCrashRecord(path, sampleRecord());
  disarmCrashRecord();
  detail::writeArmedCrashRecord("SIGSEGV");
  EXPECT_TRUE(load(path).empty());
}

TEST(LedgerCrash, RearmReplacesThePendingRecord) {
  fs::path dir = scratchDir("rearm");
  std::string path = (dir / "ledger.jsonl").string();
  Record first = sampleRecord();
  first.subject = "first";
  Record second = sampleRecord();
  second.subject = "second";
  armCrashRecord(path, first);
  armCrashRecord(path, second);
  detail::writeArmedCrashRecord("SIGBUS");
  disarmCrashRecord();
  std::vector<Record> out = load(path);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].subject, "second");
  EXPECT_EQ(out[0].signalName, "SIGBUS");
}

}  // namespace
}  // namespace hsis::obs::ledger
