// par::checkBatch — the coarse-grain property-batch scheduler. The
// contract under test: a batch on N workers returns exactly the verdicts
// the serial session would (each worker checks against its own replica
// manager, so any divergence is a transfer or seeding bug), and abort
// unwinding is contained — a watchdog breach on one worker kills only the
// property it was checking, while a request-level abort unwinds the whole
// batch and still leaves the session resident.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ctl/ctl.hpp"
#include "hsis/session.hpp"
#include "models/models.hpp"
#include "obs/control.hpp"
#include "par/batch.hpp"

namespace {

using namespace hsis;

Session::DesignSource modelSource(const char* name) {
  const models::ModelDef* m = models::find(name);
  EXPECT_NE(m, nullptr) << name;
  Session::DesignSource src;
  src.kind = Session::DesignSource::Kind::Verilog;
  src.text = std::string(m->verilog);
  src.top = std::string(m->top);
  return src;
}

PifFile modelPif(const char* name) {
  return parsePif(std::string(models::find(name)->pif));
}

std::vector<BugReport> serialVerdicts(const char* model) {
  Session s;
  EXPECT_TRUE(s.load(modelSource(model)));
  s.build();
  PifFile pif = modelPif(model);
  s.setFairness(pif.fairness);
  std::vector<BugReport> out;
  for (const PifProperty& p : pif.properties) out.push_back(s.check(p));
  return out;
}

TEST(ParBatch, VerdictsMatchSerial) {
  // philos covers CTL under Büchi fairness; scheduler adds the language-
  // containment path (workers share the const flat model, no replica).
  for (const char* model : {"philos", "scheduler"}) {
    std::vector<BugReport> serial = serialVerdicts(model);

    Session s;
    ASSERT_TRUE(s.load(modelSource(model)));
    s.build();
    PifFile pif = modelPif(model);
    s.setFairness(pif.fairness);
    par::BatchReport batch = par::checkBatch(s, pif.properties, {.jobs = 4});

    ASSERT_EQ(batch.reports.size(), serial.size()) << model;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(batch.reports[i].propertyName, serial[i].propertyName)
          << model << " property " << i << " (input order must be kept)";
      EXPECT_EQ(batch.reports[i].holds, serial[i].holds)
          << model << " property " << serial[i].propertyName;
      EXPECT_EQ(static_cast<int>(batch.reports[i].paradigm),
                static_cast<int>(serial[i].paradigm))
          << model << " property " << serial[i].propertyName;
    }
    EXPECT_EQ(batch.jobs, 4);
    EXPECT_EQ(batch.aborted, 0u);
    EXPECT_EQ(batch.workerBusyMicros.size(),
              std::min<size_t>(4, serial.size()));
    EXPECT_GE(batch.theoreticalSpeedup(), 1.0);
    // CTL batches replicate the design once per worker.
    bool anyCtl = false;
    for (const BugReport& r : serial)
      anyCtl |= r.paradigm == BugReport::Paradigm::ModelChecking;
    if (anyCtl) {
      EXPECT_GT(batch.transferredNodes, 0u) << model;
    }
  }
}

TEST(ParBatch, JobsOneIsTheSerialPath) {
  std::vector<BugReport> serial = serialVerdicts("pingpong");

  Session s;
  ASSERT_TRUE(s.load(modelSource("pingpong")));
  s.build();
  PifFile pif = modelPif("pingpong");
  s.setFairness(pif.fairness);
  par::BatchReport batch = par::checkBatch(s, pif.properties, {.jobs = 1});

  ASSERT_EQ(batch.reports.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(batch.reports[i].holds, serial[i].holds);
  EXPECT_EQ(batch.workerBusyMicros.size(), 1u);  // no replicas, no threads
  EXPECT_EQ(batch.transferredNodes, 0u);
}

namespace {

/// An n-bit ripple counter: 18 one-bit registers plus a carry chain, all
/// boolean — no wide arithmetic tables. Its state graph is a single cycle
/// of length 2^n, which makes fixpoint costs exact and hardware-
/// independent: `EF(all ones)` must run 2^n backward iterations (each
/// adds exactly one state), and every iteration polls the abort slot.
std::string counterVerilog(int bits) {
  auto S = [](int i) { return std::to_string(i); };
  std::string v = "module bigcount;\n  wire clk;\n";
  for (int i = 0; i < bits; ++i) v += "  enum { zero, one } b" + S(i) + ";\n";
  v += "  wire a0;\n  assign a0 = (b0 == one);\n";
  for (int i = 1; i < bits; ++i)
    v += "  wire a" + S(i) + ";\n  assign a" + S(i) + " = a" + S(i - 1) +
         " && (b" + S(i) + " == one);\n";
  v += "  always @(posedge clk) begin\n"
       "    if (b0 == zero) b0 <= one; else b0 <= zero;\n  end\n";
  for (int i = 1; i < bits; ++i)
    v += "  always @(posedge clk) begin\n    if (a" + S(i - 1) +
         ") begin\n      if (b" + S(i) + " == zero) b" + S(i) +
         " <= one; else b" + S(i) + " <= zero;\n    end\n  end\n";
  for (int i = 0; i < bits; ++i) v += "  initial b" + S(i) + " = zero;\n";
  v += "endmodule\n";
  return v;
}

}  // namespace

TEST(ParBatch, WatchdogAbortsOnlyTheBreachingProperty) {
  obs::clearAbort();
  constexpr int kBits = 18;
  Session::DesignSource src;
  src.kind = Session::DesignSource::Kind::Verilog;
  src.text = counterVerilog(kBits);
  src.top = "bigcount";
  Session s;
  ASSERT_TRUE(s.load(src));
  s.build();

  // Heavy: EF of the all-ones state — 2^18 = 262144 fixpoint iterations
  // with an abort poll in each. Even at well under a microsecond per
  // iteration that is far past the 0.1s budget on any machine, so the
  // watchdog breach is deterministic, and the property aborts mid-fixpoint
  // rather than ever completing.
  std::string allOnes;
  for (int i = 0; i < kBits; ++i)
    allOnes += std::string(i > 0 ? " & " : "") + "b" + std::to_string(i) +
               "=one";
  PifProperty heavyProp;
  heavyProp.kind = PifProperty::Kind::Ctl;
  heavyProp.name = "synthetic_heavy";
  heavyProp.ctl = parseCtl("EF (" + allOnes + ")");

  // Light companions: one backward step each against the seeded reached
  // set — microseconds of work against a 0.1s budget, so they can only
  // abort if the machine stalls this thread for five orders of magnitude
  // longer than the work itself.
  PifProperty light;
  light.kind = PifProperty::Kind::Ctl;
  light.name = "light";
  light.ctl = parseCtl("EF b0=one");
  std::vector<PifProperty> props{heavyProp, light, light};

  par::BatchOptions bo;
  bo.jobs = 2;
  bo.propertyTimeoutSeconds = 0.1;
  par::BatchReport batch = par::checkBatch(s, props, bo);

  ASSERT_EQ(batch.reports.size(), 3u);
  EXPECT_EQ(batch.aborted, 1u);
  EXPECT_FALSE(batch.reports[0].holds);
  ASSERT_FALSE(batch.reports[0].notes.empty());
  EXPECT_EQ(batch.reports[0].notes.front().rfind("aborted:", 0), 0u)
      << batch.reports[0].notes.front();
  // The other worker — and the breaching worker after it re-arms — still
  // delivered real verdicts.
  EXPECT_TRUE(batch.reports[1].holds);
  EXPECT_TRUE(batch.reports[2].holds);

  // Worker-survival: the source session is untouched by the batch abort.
  EXPECT_TRUE(s.resident());
  EXPECT_TRUE(s.check(light).holds);
}

TEST(ParBatch, RequestAbortUnwindsTheWholeBatch) {
  obs::clearAbort();
  Session s;
  ASSERT_TRUE(s.load(modelSource("philos")));
  s.build();
  PifFile pif = modelPif("philos");
  s.setFairness(pif.fairness);

  // A pre-raised request slot (the hsis_serve budget-breach shape): every
  // worker sees it at its first property boundary and rethrows, so the
  // batch unwinds as a whole instead of reporting per-property aborts.
  obs::TaskAbort request;
  request.request("test: request budget breached");
  par::BatchOptions bo;
  bo.jobs = 2;
  bo.requestAbort = &request;
  EXPECT_THROW(par::checkBatch(s, pif.properties, bo), obs::AbortedError);

  // The session keeps answering on the calling thread.
  EXPECT_TRUE(s.resident());
  EXPECT_TRUE(s.check(pif.properties.front()).holds);
}

}  // namespace
