// Figure 2 of the paper, reproduced literally: the two-state invariance
// automaton checking that out1 and out2 are never asserted at the same
// time, built through the C++ API (no PIF), and checked by language
// containment against a small bus arbiter. A second, buggy arbiter shows
// the failing case and its error trace.
#include <cstdio>

#include "blifmv/blifmv.hpp"
#include "lc/lc.hpp"
#include "vl2mv/vl2mv.hpp"

using namespace hsis;

namespace {

/// The automaton of Figure 2: stay in A while !(out1 & out2); one violation
/// falls into B forever; only runs that remain in A are accepted.
Automaton figure2() {
  Automaton aut("fig2");
  aut.addState("A");
  aut.addState("B");
  aut.setInitial("A");
  aut.addEdge("A", "A", parseSigExpr("!(out1=1 & out2=1)"));
  aut.addEdge("A", "B", parseSigExpr("out1=1 & out2=1"));
  aut.addEdge("B", "B", sigTrue());
  aut.setStayAcceptance({"A"});
  return aut;
}

void checkArbiter(const char* label, const char* verilog) {
  auto design = vl2mv::compile(verilog);
  auto flat = blifmv::flatten(design);
  BddManager mgr;
  LcChecker lc(mgr, flat, figure2());
  LcResult r = lc.check();
  std::printf("[%s] language containment: %s%s\n", label,
              r.contained ? "PASS" : "FAIL",
              r.stats.usedEarlyFailure ? " (early failure detection)" : "");
  for (const std::string& n : r.notes) std::printf("  note: %s\n", n.c_str());
  if (r.trace.has_value()) {
    std::printf("  error trace:\n%s", lc.formatTrace(*r.trace).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A correct round-robin-ish arbiter: out1/out2 never together.
  checkArbiter("correct arbiter", R"(
module arb;
  wire clk;
  reg turn;
  wire out1, out2, req1, req2;
  assign req1 = $ND(0, 1);
  assign req2 = $ND(0, 1);
  assign out1 = req1 && (turn == 0 || !req2);
  assign out2 = req2 && !out1;
  always @(posedge clk) turn <= !turn;
  initial turn = 0;
endmodule
)");

  // A buggy arbiter that grants both under double request.
  checkArbiter("buggy arbiter", R"(
module arb;
  wire clk;
  reg turn;
  wire out1, out2, req1, req2;
  assign req1 = $ND(0, 1);
  assign req2 = $ND(0, 1);
  assign out1 = req1;
  assign out2 = req2;
  always @(posedge clk) turn <= !turn;
  initial turn = 0;
endmodule
)");
  return 0;
}
