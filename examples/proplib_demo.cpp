// The property library (paper future-work item 8): verify the dcnew
// controller with parameterized property templates — no CTL or ω-automata
// knowledge needed at the call sites.
#include <cstdio>

#include "hsis/environment.hpp"
#include "models/models.hpp"
#include "proplib/proplib.hpp"

using namespace hsis;

int main() {
  Environment env;
  env.readVerilog(std::string(models::find("dcnew")->verilog));
  // requesters do not idle forever
  env.addFairness(proplib::noStarvation(parseSigExpr("ch0.st=idle")));
  env.addFairness(proplib::noStarvation(parseSigExpr("ch1.st=idle")));
  env.addFairness(proplib::noStarvation(parseSigExpr("ch2.st=idle")));

  const PifProperty props[] = {
      proplib::mutualExclusion("bus_exclusive_01",
                               parseSigExpr("ch0.st=transfer"),
                               parseSigExpr("ch1.st=transfer")),
      proplib::response("ch0_served", parseSigExpr("ch0.st=request"),
                        parseSigExpr("ch0.st=transfer")),
      proplib::responseAutomaton("ch0_served_lc",
                                 parseSigExpr("ch0.st=request"),
                                 parseSigExpr("ch0.st=transfer")),
      proplib::response("ch2_served", parseSigExpr("ch2.st=request"),
                        parseSigExpr("ch2.st=transfer")),  // FAILS: starvation
      proplib::existence("can_fill_counter", parseSigExpr("total=15")),
      proplib::resettable("parity_resets", parseSigExpr("parity=0")),
      proplib::recurrence("bus_active_forever",
                          parseSigExpr("ch0.st=transfer | ch1.st=transfer | "
                                       "ch2.st=transfer")),
      proplib::precedence("request_before_transfer",
                          parseSigExpr("ch0.st=request"),
                          parseSigExpr("ch0.st=transfer")),
  };

  for (const PifProperty& p : props) {
    BugReport r = env.verify(p);
    std::printf("%-25s [%s]  %s\n", r.propertyName.c_str(),
                p.kind == PifProperty::Kind::Ctl ? "ctl" : "lc",
                r.holds ? "PASS" : "FAIL");
  }
  std::printf("\n(ch2_served fails by design: fixed-priority arbitration "
              "starves channel 2)\n");
  return 0;
}
