// A file-driven command-line front end: verify a Verilog (or BLIF-MV)
// design against a PIF property file — the closest thing to running the
// original HSIS shell.
//
//   hsis_cli design.v properties.pif
//   hsis_cli --blifmv design.mv properties.pif
//   hsis_cli --model philos          # run a bundled Table-1 design
//   hsis_cli --jobs 4 --model table1 # property batch on 4 worker threads
//
// Every form also accepts the shared observability flags:
//   --stats-json FILE    dump the full snapshot after verification
//   --heartbeat MS       one-line progress records on stderr every MS ms
//   --heartbeat-file F   ... as JSONL appended to F instead
//   --timeout-s S        abort the run past S seconds of wall clock
//   --mem-limit-mb M     abort the run past M MiB of peak RSS
//   --profile            sampling profiler: hsis-prof.folded + .census.jsonl
//   --profile-out BASE   ... writing BASE.folded + BASE.census.jsonl
//   --profile-interval-ms N  sampler tick (default 10 ms)
//   --log-level LVL      leveled event log, human lines on stderr
//   --log-file F         ... as hsis-log-v1 JSONL appended to F
//   --ledger PATH        run-ledger file (default $HSIS_LEDGER or
//                        ~/.hsis/ledger.jsonl; "none" disables)
//   --flight-dir DIR     crash flight recorder dumps into DIR
//   --cov-json FILE      write an hsis-cov-v1 coverage artifact (latch
//                        occupancy, coverpoint bins, frontier series) for
//                        `hsis_report coverage`
//   --cov-spec FILE      coverpoint/bin spec (see docs/coverage.md);
//                        default is one auto coverpoint per latch
//   --cex-dir DIR        write a replayable hsis-cex-v1 counterexample
//                        artifact (JSON + VCD) into DIR for every failing
//                        CTL check with a trace (see docs/debugging.md)
// A watchdog abort still writes the --stats-json snapshot (its "aborted"
// field carries the reason and breaching phase) and the --profile files,
// and exits with code 3. Every invocation appends one hsis-ledger-v1
// record (pass/fail/aborted/crashed, wall, peak RSS) that hsis_report
// queries.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "cex/cex.hpp"
#include "cov/cov.hpp"
#include "hsis/environment.hpp"
#include "models/models.hpp"
#include "obs/control.hpp"
#include "obs/version.hpp"
#include "par/batch.hpp"

namespace {

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path);
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: hsis_cli [OBS-FLAGS] [--blifmv] DESIGN PROPERTIES.pif\n"
               "       hsis_cli [OBS-FLAGS] --model NAME   (one of:");
  for (const auto& m : hsis::models::all())
    std::fprintf(stderr, " %s", std::string(m.name).c_str());
  std::fprintf(stderr,
               ")\nOBS-FLAGS: --stats-json FILE | --heartbeat MS | "
               "--heartbeat-file F |\n"
               "           --timeout-s S | --mem-limit-mb M | --profile |\n"
               "           --profile-out BASE | --profile-interval-ms N |\n"
               "           --log-level LVL | --log-file F | --ledger PATH |\n"
               "           --flight-dir DIR | --cov-json FILE | "
               "--cov-spec FILE |\n"
               "           --cex-dir DIR | --jobs N\n");
  return 2;
}

void writeStats(const hsis::Environment& env, const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << env.statsJson();
  std::printf("observability snapshot written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (hsis::obs::handleVersionFlag(argc, argv, "hsis_cli")) return 0;
  // hsis_cli owns --stats-json (the Environment adds derived metrics to the
  // snapshot); the process-level ledger record is written by the exit
  // exporters, with the verdict set via noteRunResult below.
  hsis::obs::ObsCliOptions obsOpts = hsis::obs::initDriverObs(
      argc, argv, {.driverName = "hsis_cli", .ownStatsJson = true});

  // --cov-spec, --cex-dir, and --jobs are cli-local (the shared strip
  // covers --cov-json only).
  std::string covSpecPath;
  std::string cexDir;
  int jobs = 1;
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--cov-spec") == 0 && i + 1 < argc) {
      covSpecPath = argv[i + 1];
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
    } else if (std::strcmp(argv[i], "--cex-dir") == 0 && i + 1 < argc) {
      cexDir = argv[i + 1];
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[i + 1]);
      if (jobs < 1) jobs = 1;
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
    } else {
      ++i;
    }
  }

  hsis::Environment env;
  // Remembered for --cex-dir: artifacts embed the design source so they
  // replay standalone.
  hsis::Session::DesignSource designSrc;
  std::string designName;

  if (argc == 3 && std::strcmp(argv[1], "--model") == 0) {
    const hsis::models::ModelDef* m = hsis::models::find(argv[2]);
    if (m == nullptr) return usage();
    hsis::obs::noteRunSubject(argv[2]);
    designName = argv[2];
    designSrc = {hsis::Session::DesignSource::Kind::Verilog,
                 std::string(m->verilog), std::string(m->top)};
    env.readVerilog(designSrc.text, designSrc.top);
    env.readPif(std::string(m->pif));
  } else if (argc == 4 && std::strcmp(argv[1], "--blifmv") == 0) {
    hsis::obs::noteRunSubject(argv[2]);
    designName = argv[2];
    designSrc = {hsis::Session::DesignSource::Kind::BlifMv, slurp(argv[2]),
                 ""};
    env.readBlifMv(designSrc.text);
    env.readPif(slurp(argv[3]));
  } else if (argc == 3) {
    hsis::obs::noteRunSubject(argv[1]);
    designName = argv[1];
    designSrc = {hsis::Session::DesignSource::Kind::Verilog, slurp(argv[1]),
                 ""};
    env.readVerilog(designSrc.text);
    env.readPif(slurp(argv[2]));
  } else {
    return usage();
  }

  int failures = 0;
  std::string failing;  // comma-joined failing property names
  return hsis::obs::driverGuard([&] {
    env.build();
    std::printf("read: %zu Verilog lines, %zu BLIF-MV lines (%.2fs)\n",
                env.metrics().linesVerilog, env.metrics().linesBlifMv,
                env.metrics().readSeconds);
    for (const std::string& n : env.notes())
      std::printf("note: %s\n", n.c_str());
    std::printf("reachable states: %.0f\n\n", env.reachedStates());

    // --jobs N>1: check the property batch on a worker-thread pool, each
    // worker on its own replica manager; reports come back in input order
    // so everything downstream (rendering, cex artifacts) is unchanged.
    std::vector<hsis::BugReport> reports;
    if (jobs > 1) {
      hsis::par::BatchReport batch = hsis::par::checkBatch(
          env.session(), env.properties(), {.jobs = jobs});
      std::printf("parallel batch: %zu properties on %d workers, "
                  "%.2fs wall (%.2fs replica setup), busy speedup %.2fx\n\n",
                  env.properties().size(), batch.jobs,
                  batch.wallMicros / 1e6, batch.transferMicros / 1e6,
                  batch.theoreticalSpeedup());
      reports = std::move(batch.reports);
    } else {
      reports = env.verifyAll();
    }

    bool cexDisabledNoted = false;
    for (const hsis::BugReport& report : reports) {
      std::printf("%s\n", renderBugReport(report, env.fsm()).c_str());
      if (!report.holds) {
        ++failures;
        if (!failing.empty()) failing += ", ";
        failing += report.propertyName;
      }
      if (!cexDir.empty() && !report.holds && report.trace.has_value() &&
          report.paradigm == hsis::BugReport::Paradigm::ModelChecking) {
        if (!hsis::cex::cexEnabled()) {
          if (!cexDisabledNoted)
            std::printf("cex: disabled (HSIS_OBS_DISABLE build or "
                        "HSIS_CEX_DISABLE set)\n");
          cexDisabledNoted = true;
          continue;
        }
        hsis::cex::BuildInputs bi;
        bi.propertyName = report.propertyName;
        bi.propertyText = report.propertyText;
        bi.designName = designName;
        bi.designDigest = designSrc.digest();
        bi.designKind =
            designSrc.kind == hsis::Session::DesignSource::Kind::Verilog
                ? "verilog"
                : "blifmv";
        bi.designTop = designSrc.top;
        bi.designText = designSrc.text;
        hsis::cex::Artifact art =
            hsis::cex::build(env.fsm(), *report.trace, bi);
        hsis::cex::verifyAndStamp(art, env.fsm(), env.tr());
        std::string base = report.propertyName.empty() ? "unnamed"
                                                       : report.propertyName;
        for (char& c : base)
          if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' &&
              c != '_')
            c = '_';
        std::string jsonPath = cexDir + "/" + base + ".cex.json";
        std::string vcdPath = cexDir + "/" + base + ".cex.vcd";
        if (hsis::cex::writeFiles(art, jsonPath, vcdPath)) {
          std::printf("cex: %s (replay %s)\n     %s\n", jsonPath.c_str(),
                      art.replay.c_str(), vcdPath.c_str());
        } else {
          std::fprintf(stderr, "cex: cannot write %s\n", jsonPath.c_str());
        }
      }
    }

    // The parallel path bypasses Environment::verify*, so fold the batch
    // reports into the same Table-1 shape the serial path accumulates.
    size_t nCtl = env.metrics().numCtlFormulas;
    size_t nLc = env.metrics().numLcProps;
    double sCtl = env.metrics().mcSeconds, sLc = env.metrics().lcSeconds;
    if (jobs > 1) {
      for (const hsis::BugReport& r : reports) {
        if (r.paradigm == hsis::BugReport::Paradigm::ModelChecking) {
          ++nCtl;
          sCtl += r.seconds;
        } else {
          ++nLc;
          sLc += r.seconds;
        }
      }
    }
    std::printf("summary: %zu CTL formulas (%.2fs), %zu LC properties "
                "(%.2fs), %d failing\n",
                nCtl, sCtl, nLc, sLc, failures);

    if (!obsOpts.covJsonPath.empty() || !covSpecPath.empty()) {
      hsis::cov::Options co;
      if (!covSpecPath.empty())
        co.points =
            hsis::cov::parseCoverSpec(slurp(covSpecPath.c_str()), env.fsm());
      // Concrete differential pass, capped so huge designs degrade to
      // symbolic-only instead of enumerating forever.
      co.simMaxStates = 5000;
      hsis::cov::Report rep = env.coverage(std::move(co));
      if (rep.enabled) {
        std::printf(
            "coverage: %.1f%% of state space, latch values %llu/%llu, "
            "bins %llu/%llu%s\n",
            rep.stateFraction() * 100.0,
            static_cast<unsigned long long>(rep.valuesReached),
            static_cast<unsigned long long>(rep.valuesTotal),
            static_cast<unsigned long long>(rep.binsHit),
            static_cast<unsigned long long>(rep.binsTotal),
            rep.simExhaustive
                ? (rep.simAgrees ? ", sim agrees" : ", SIM MISMATCH")
                : "");
      } else {
        std::printf("coverage: disabled (HSIS_OBS_DISABLE build or "
                    "HSIS_COV_DISABLE set)\n");
      }
      if (!obsOpts.covJsonPath.empty()) {
        std::ofstream out(obsOpts.covJsonPath);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n",
                       obsOpts.covJsonPath.c_str());
        } else {
          out << hsis::cov::reportToJson(rep) << "\n";
          std::printf("coverage report written to %s\n",
                      obsOpts.covJsonPath.c_str());
        }
      }
    }

    writeStats(env, obsOpts.statsJsonPath);
    if (failures == 0) {
      hsis::obs::noteRunResult("pass", "");
      return 0;
    }
    hsis::obs::noteRunResult("fail", failing,
                             hsis::obs::ledger::digestOf(failing));
    return 1;
  });
}
