// A file-driven command-line front end: verify a Verilog (or BLIF-MV)
// design against a PIF property file — the closest thing to running the
// original HSIS shell.
//
//   hsis_cli design.v properties.pif
//   hsis_cli --blifmv design.mv properties.pif
//   hsis_cli --model philos          # run a bundled Table-1 design
//
// Add --stats-json FILE to any form to dump the full observability
// snapshot (metrics registry + phase span tree) after verification.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "hsis/environment.hpp"
#include "models/models.hpp"

namespace {

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path);
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: hsis_cli [--stats-json FILE] [--blifmv] DESIGN "
               "PROPERTIES.pif\n"
               "       hsis_cli [--stats-json FILE] --model NAME   (one of:");
  for (const auto& m : hsis::models::all())
    std::fprintf(stderr, " %s", std::string(m.name).c_str());
  std::fprintf(stderr, ")\n");
  return 2;
}

/// Strip `--stats-json FILE` from argv; returns the FILE or "".
std::string extractStatsPath(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      std::string path = argv[i + 1];
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      argv[argc] = nullptr;
      return path;
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::string statsPath = extractStatsPath(argc, argv);
  hsis::Environment env;

  if (argc == 3 && std::strcmp(argv[1], "--model") == 0) {
    const hsis::models::ModelDef* m = hsis::models::find(argv[2]);
    if (m == nullptr) return usage();
    env.readVerilog(std::string(m->verilog), std::string(m->top));
    env.readPif(std::string(m->pif));
  } else if (argc == 4 && std::strcmp(argv[1], "--blifmv") == 0) {
    env.readBlifMv(slurp(argv[2]));
    env.readPif(slurp(argv[3]));
  } else if (argc == 3) {
    env.readVerilog(slurp(argv[1]));
    env.readPif(slurp(argv[2]));
  } else {
    return usage();
  }

  env.build();
  std::printf("read: %zu Verilog lines, %zu BLIF-MV lines (%.2fs)\n",
              env.metrics().linesVerilog, env.metrics().linesBlifMv,
              env.metrics().readSeconds);
  for (const std::string& n : env.notes())
    std::printf("note: %s\n", n.c_str());
  std::printf("reachable states: %.0f\n\n", env.reachedStates());

  int failures = 0;
  for (const hsis::BugReport& report : env.verifyAll()) {
    std::printf("%s\n", renderBugReport(report, env.fsm()).c_str());
    if (!report.holds) ++failures;
  }
  const auto& m = env.metrics();
  std::printf("summary: %zu CTL formulas (%.2fs), %zu LC properties (%.2fs), "
              "%d failing\n",
              m.numCtlFormulas, m.mcSeconds, m.numLcProps, m.lcSeconds,
              failures);
  if (!statsPath.empty()) {
    std::ofstream out(statsPath);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", statsPath.c_str());
      return 2;
    }
    out << env.statsJson();
    std::printf("observability snapshot written to %s\n", statsPath.c_str());
  }
  return failures == 0 ? 0 : 1;
}
