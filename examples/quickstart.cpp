// Quickstart: the whole Figure-1 toolflow in one file.
//
// A small mutual-exclusion design is written in the HSIS Verilog subset
// (with $ND non-determinism and enumerated types), its properties in PIF —
// both a CTL formula and an ω-automaton — and the environment runs both
// verification paradigms and prints the resulting bug reports.
#include <cstdio>

#include "hsis/environment.hpp"

static const char* kDesign = R"(
// two clients and a priority arbiter
module top;
  wire clk;
  enum { idle, trying, critical } p0, p1;
  wire grant0, grant1, req0, req1;
  assign req0 = $ND(0, 1);                 // the environment may request
  assign req1 = $ND(0, 1);
  assign grant0 = (p0 == trying) && !(p1 == critical);
  assign grant1 = (p1 == trying) && !(p0 == critical) && !grant0;
  always @(posedge clk) begin
    case (p0)
      idle:     if (req0) p0 <= trying;
      trying:   if (grant0) p0 <= critical;
      critical: p0 <= idle;
    endcase
  end
  always @(posedge clk) begin
    case (p1)
      idle:     if (req1) p1 <= trying;
      trying:   if (grant1) p1 <= critical;
      critical: p1 <= idle;
    endcase
  end
  initial p0 = idle;
  initial p1 = idle;
endmodule
)";

static const char* kProperties = R"PIF(
# model checking: the mutual-exclusion invariant
ctl mutex "AG !(p0=critical & p1=critical)";

# model checking: a deliberately false property, to see an error trace
ctl never_both_trying "AG !(p0=trying & p1=trying)";

# language containment: the same invariant as an automaton (paper Fig. 2)
automaton never_both_critical {
  state A init;
  state B;
  edge A -> A on "!(p0=critical & p1=critical)";
  edge A -> B on "p0=critical & p1=critical";
  edge B -> B on "1";
  accept stay A;
}
)PIF";

int main() {
  hsis::Environment env;
  env.readVerilog(kDesign);
  env.readPif(kProperties);

  std::printf("design: %zu Verilog lines -> %zu BLIF-MV lines\n",
              env.metrics().linesVerilog, env.metrics().linesBlifMv);
  std::printf("reachable states: %.0f\n\n", env.reachedStates());

  for (const hsis::BugReport& report : env.verifyAll()) {
    std::printf("%s", renderBugReport(report, env.fsm()).c_str());
    std::printf("\n");
  }
  return 0;
}
