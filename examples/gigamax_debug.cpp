// The interactive model-checking debugger (paper Section 6.2) on the
// Gigamax cache-consistency model: seed a protocol bug, watch a property
// fail, then unfold the formula one step at a time.
//
// Run with no arguments for a scripted session (always picks choice 0);
// pass "-i" to drive the choices from stdin.
#include <cstdio>
#include <cstring>

#include "debug/mcdebug.hpp"
#include "hsis/environment.hpp"
#include "models/models.hpp"

int main(int argc, char** argv) {
  bool interactive = argc > 1 && std::strcmp(argv[1], "-i") == 0;

  // Seed a bug into the Gigamax model: snooping a foreign read_shared no
  // longer demotes an owner, so two conflicting copies can coexist.
  std::string verilog(hsis::models::find("gigamax")->verilog);
  const char* good = "if (st == owned) st <= shared;   // supply data, demote";
  size_t pos = verilog.find(good);
  if (pos == std::string::npos) {
    std::fprintf(stderr, "could not seed the bug\n");
    return 1;
  }
  verilog.replace(pos, std::strlen(good), "st <= st;  // BUG: no demotion");

  hsis::Environment env;
  env.readVerilog(verilog);
  hsis::CtlRef property = hsis::parseCtl(
      "AG ((p0.st=owned -> (p1.st=invalid & p2.st=invalid)) & "
      "(p1.st=owned -> (p0.st=invalid & p2.st=invalid)))");
  hsis::BugReport report = env.verifyCtl("owner_excludes_others", property);
  std::printf("property %s: %s\n\n", report.propertyName.c_str(),
              report.holds ? "PASS" : "FAIL");
  if (report.holds) return 0;

  hsis::McDebugSession dbg(env.checker(), property);
  for (int depth = 0; depth < 12; ++depth) {
    std::printf("%s\n", dbg.describe().c_str());
    if (dbg.atLeaf()) {
      std::printf("-- reached an atomic obligation; debugging complete --\n");
      break;
    }
    const auto& choices = dbg.choices();
    for (size_t i = 0; i < choices.size(); ++i) {
      std::printf("  [%zu] %s\n", i, choices[i].description.c_str());
    }
    size_t pick = 0;
    if (interactive) {
      std::printf("choice> ");
      if (std::scanf("%zu", &pick) != 1) break;
    } else {
      std::printf("(auto-choosing 0)\n");
    }
    if (!dbg.choose(pick)) break;
  }

  std::printf("\npath walked while debugging:\n");
  for (const auto& s : dbg.pathSoFar()) {
    std::printf("  %s\n", env.fsm().formatState(s).c_str());
  }
  return 0;
}
