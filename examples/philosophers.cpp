// Dining philosophers from the model suite: verify all properties, then
// walk into the deadlock the verifier found by replaying the error trace.
#include <cstdio>

#include "hsis/environment.hpp"
#include "models/models.hpp"

int main() {
  const hsis::models::ModelDef* model = hsis::models::find("philos");
  hsis::Environment env;
  env.readVerilog(std::string(model->verilog));
  env.readPif(std::string(model->pif));

  std::printf("dining philosophers: %zu Verilog lines, %zu BLIF-MV lines, "
              "%.0f reachable states\n\n",
              env.metrics().linesVerilog, env.metrics().linesBlifMv,
              env.reachedStates());

  for (const hsis::BugReport& report : env.verifyAll()) {
    std::printf("%s\n", renderBugReport(report, env.fsm()).c_str());
  }

  // The no_deadlock counterexample ends in the all-hasleft state; verify by
  // simulation that it is indeed a livelock: every successor is itself.
  hsis::BugReport dead =
      env.verifyCtl("no_deadlock_again",
                    hsis::parseCtl("AG !(p0.st=hasleft & p1.st=hasleft & "
                                   "p2.st=hasleft & p3.st=hasleft)"));
  if (!dead.holds && dead.trace.has_value()) {
    const auto& last = dead.trace->states.back();
    hsis::Bdd deadState = env.fsm().stateFromValues(env.fsm().decodeState(last));
    hsis::Bdd successors = env.tr().image(deadState);
    std::printf("deadlock state: %s\n", env.fsm().formatState(last).c_str());
    std::printf("its only successor is itself: %s\n",
                successors == deadState ? "yes" : "no");
  }
  return 0;
}
