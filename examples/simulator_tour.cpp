// The state-based simulator (paper Section 1, feature 4) on the 2mdlc
// data-link controller: single-step through the alternating-bit protocol,
// take a random walk, and enumerate the first reachable states.
#include <cstdio>

#include "hsis/environment.hpp"
#include "models/models.hpp"

int main() {
  hsis::Environment env;
  env.readVerilog(std::string(hsis::models::find("2mdlc")->verilog));
  hsis::Simulator sim = env.makeSimulator(/*seed=*/2026);

  std::printf("initial state:\n  %s\n\n", sim.show().c_str());

  std::printf("successors of the initial state:\n");
  auto succ = sim.successors(4);
  for (size_t i = 0; i < succ.size(); ++i) {
    std::printf("  [%zu] %s\n", i, env.fsm().formatState(succ[i]).c_str());
  }

  std::printf("\nstepping into successor 0 three times:\n");
  for (int i = 0; i < 3; ++i) {
    sim.step(0);
    std::printf("  step %zu: %s\n", sim.stepsTaken(), sim.show().c_str());
  }

  std::printf("\nrandom walk of 10 steps:\n");
  sim.reset();
  for (int i = 0; i < 10; ++i) {
    if (!sim.randomStep()) break;
    std::printf("  %s\n", sim.show().c_str());
  }

  std::printf("\nbreadth-first enumeration of the first 8 states:\n");
  sim.enumerate(8, [&](const std::vector<int8_t>& s) {
    std::printf("  %s\n", env.fsm().formatState(s).c_str());
  });

  std::printf("\ntotal reachable states: %.0f\n", sim.reachableCount());
  return 0;
}
