#include "models/models.hpp"

#include <array>

// Generated from models/*.v and models/*.pif by embed.cmake.
#include "models_data.inc"

namespace hsis::models {

namespace {

const std::array<ModelDef, 6> kModels = {{
    {"philos",
     "four dining philosophers; the classic left-fork deadlock is reachable",
     k_philos_v, k_philos_pif, ""},
    {"pingpong",
     "two players exchanging a ball with fairness-bounded holding",
     k_pingpong_v, k_pingpong_pif, ""},
    {"gigamax",
     "Encore Gigamax-style snooping cache-consistency protocol, 3 processors",
     k_gigamax_v, k_gigamax_pif, ""},
    {"scheduler",
     "Milner's distributed cyclic scheduler, 8 cells in a token ring",
     k_scheduler_v, k_scheduler_pif, ""},
    {"dcnew",
     "three-channel data-transfer controller with priority arbitration "
     "(industrial-style substitute)",
     k_dcnew_v, k_dcnew_pif, ""},
    {"2mdlc",
     "two-channel message data-link controller: alternating-bit protocol "
     "over lossy corrupting wires (industrial-style substitute)",
     k_mdlc2_v, k_mdlc2_pif, ""},
}};

}  // namespace

std::span<const ModelDef> all() { return kModels; }

const ModelDef* find(std::string_view name) {
  for (const ModelDef& m : kModels)
    if (m.name == name) return &m;
  return nullptr;
}

}  // namespace hsis::models
