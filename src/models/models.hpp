// The benchmark suite of the paper's Table 1: six designs written in the
// extended Verilog subset, each with a PIF property file. The sources are
// embedded from models/*.v and models/*.pif.
//
// `philos`, `pingpong` are the paper's toy examples; `gigamax` models the
// Encore Gigamax cache-consistency protocol; `scheduler` is Milner's
// distributed cyclic scheduler; `dcnew` and `2mdlc` stand in for the
// paper's industrial designs (see DESIGN.md, Substitutions).
#pragma once

#include <optional>
#include <span>
#include <string_view>

namespace hsis::models {

struct ModelDef {
  std::string_view name;
  std::string_view description;
  std::string_view verilog;
  std::string_view pif;
  /// Top module for vl2mv (empty = first module in the file).
  std::string_view top;
};

/// All models, in Table-1 order.
std::span<const ModelDef> all();

/// Look up by name ("philos", "pingpong", "gigamax", "scheduler", "dcnew",
/// "2mdlc").
const ModelDef* find(std::string_view name);

}  // namespace hsis::models
