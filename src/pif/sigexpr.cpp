#include "pif/sigexpr.hpp"

#include <cctype>
#include <stdexcept>

namespace hsis {

namespace {

std::shared_ptr<SigExpr> mk(SigExpr::Kind k) {
  auto e = std::make_shared<SigExpr>();
  e->kind = k;
  return e;
}

}  // namespace

SigExprRef sigTrue() { return mk(SigExpr::Kind::True); }
SigExprRef sigFalse() { return mk(SigExpr::Kind::False); }

SigExprRef sigAtom(std::string signal, std::string value, bool negated) {
  auto e = mk(SigExpr::Kind::Atom);
  e->signal = std::move(signal);
  e->value = std::move(value);
  e->negatedAtom = negated;
  return e;
}

SigExprRef sigNot(SigExprRef a) {
  auto e = mk(SigExpr::Kind::Not);
  e->args.push_back(std::move(a));
  return e;
}

SigExprRef sigAnd(SigExprRef a, SigExprRef b) {
  auto e = mk(SigExpr::Kind::And);
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

SigExprRef sigOr(SigExprRef a, SigExprRef b) {
  auto e = mk(SigExpr::Kind::Or);
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

std::string SigExpr::toString() const {
  switch (kind) {
    case Kind::True:
      return "1";
    case Kind::False:
      return "0";
    case Kind::Atom: {
      std::string s = signal;
      if (!value.empty()) s += (negatedAtom ? "!=" : "=") + value;
      return s;
    }
    case Kind::Not:
      return "!(" + args[0]->toString() + ")";
    case Kind::And:
      return "(" + args[0]->toString() + " & " + args[1]->toString() + ")";
    case Kind::Or:
      return "(" + args[0]->toString() + " | " + args[1]->toString() + ")";
  }
  return "?";
}

namespace {

class ExprParser {
 public:
  explicit ExprParser(const std::string& text) : text_(text) {}

  SigExprRef parse() {
    SigExprRef e = parseOr();
    skipWs();
    if (pos_ != text_.size())
      fail("trailing characters after expression");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw std::runtime_error("expression error in \"" + text_ + "\": " + msg);
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  bool eat(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool peekIs(char c) {
    skipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  SigExprRef parseOr() {
    SigExprRef e = parseAnd();
    while (true) {
      skipWs();
      if (eat('|')) {
        eat('|');  // tolerate "||"
        e = sigOr(std::move(e), parseAnd());
      } else {
        return e;
      }
    }
  }

  SigExprRef parseAnd() {
    SigExprRef e = parseFactor();
    while (true) {
      skipWs();
      if (eat('&')) {
        eat('&');  // tolerate "&&"
        e = sigAnd(std::move(e), parseFactor());
      } else {
        return e;
      }
    }
  }

  std::string parseWord() {
    skipWs();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
          c == '.' || c == '$') {
        ++pos_;
      } else {
        break;
      }
    }
    if (start == pos_) fail("expected identifier or value");
    return text_.substr(start, pos_ - start);
  }

  SigExprRef parseFactor() {
    skipWs();
    if (eat('!')) {
      // could be '!(' or '!expr'
      return sigNot(parseFactor());
    }
    if (eat('(')) {
      SigExprRef e = parseOr();
      if (!eat(')')) fail("missing ')'");
      return e;
    }
    std::string word = parseWord();
    if (word == "1" || word == "true") return sigTrue();
    if (word == "0" || word == "false") return sigFalse();
    skipWs();
    bool negated = false;
    if (pos_ + 1 < text_.size() && text_[pos_] == '!' && text_[pos_ + 1] == '=') {
      pos_ += 2;
      negated = true;
    } else if (peekIs('=')) {
      ++pos_;
      eat('=');  // tolerate "=="
    } else {
      return sigAtom(word);  // bare boolean signal
    }
    std::string value = parseWord();
    return sigAtom(word, value, negated);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

SigExprRef parseSigExpr(const std::string& text) {
  return ExprParser(text).parse();
}

Bdd evalSigExpr(const SigExpr& e, const Fsm& fsm) {
  BddManager& mgr = fsm.mgr();
  switch (e.kind) {
    case SigExpr::Kind::True:
      return mgr.bddOne();
    case SigExpr::Kind::False:
      return mgr.bddZero();
    case SigExpr::Kind::Not:
      return !evalSigExpr(*e.args[0], fsm);
    case SigExpr::Kind::And:
      return evalSigExpr(*e.args[0], fsm) & evalSigExpr(*e.args[1], fsm);
    case SigExpr::Kind::Or:
      return evalSigExpr(*e.args[0], fsm) | evalSigExpr(*e.args[1], fsm);
    case SigExpr::Kind::Atom: {
      std::optional<MvVarId> var = fsm.signalVar(e.signal);
      if (!var.has_value())
        throw std::runtime_error("property references unknown signal " +
                                 e.signal);
      // Atoms must be state predicates: combinational signals are
      // existentially quantified out of the transition relation, so a set
      // over them would not survive image computation. (Automaton edge
      // guards may reference any signal — they are composed into the
      // product at the table level instead.)
      bool isState = false;
      for (MvVarId sv : fsm.stateVars()) isState = isState || sv == *var;
      if (!isState)
        throw std::runtime_error(
            "signal " + e.signal +
            " is combinational; CTL atoms and fairness constraints must "
            "reference latch outputs (register the signal in the design or "
            "use an automaton property)");
      const MvSpace& space = fsm.space();
      std::string value = e.value;
      if (value.empty()) {
        if (space.domain(*var) != 2)
          throw std::runtime_error("bare atom " + e.signal +
                                   " needs an explicit value (domain > 2)");
        value = "1";
      }
      std::optional<uint32_t> k = space.valueOf(*var, value);
      if (!k.has_value())
        throw std::runtime_error("value " + value + " not in domain of " +
                                 e.signal);
      Bdd lit = space.literal(*var, *k);
      return e.negatedAtom ? (space.validEncodings(*var) & !lit) : lit;
    }
  }
  return mgr.bddZero();
}

}  // namespace hsis
