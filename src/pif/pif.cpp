#include "pif/pif.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace hsis {

size_t PifFile::ctlCount() const {
  size_t n = 0;
  for (const PifProperty& p : properties)
    if (p.kind == PifProperty::Kind::Ctl) ++n;
  return n;
}

size_t PifFile::automatonCount() const {
  size_t n = 0;
  for (const PifProperty& p : properties)
    if (p.kind == PifProperty::Kind::Automaton) ++n;
  return n;
}

namespace {

class PifParser {
 public:
  explicit PifParser(const std::string& text) : text_(text) {}

  PifFile parse() {
    PifFile file;
    while (true) {
      skipWsAndComments();
      if (pos_ >= text_.size()) break;
      std::string kw = word();
      if (kw == "ctl") {
        PifProperty p;
        p.kind = PifProperty::Kind::Ctl;
        p.name = word();
        p.ctl = parseCtl(quoted());
        semi();
        file.properties.push_back(std::move(p));
      } else if (kw == "invariant") {
        PifProperty p;
        p.kind = PifProperty::Kind::Ctl;
        p.name = word();
        p.ctl = ctlAG(ctlAtomExpr(quoted()));
        semi();
        file.properties.push_back(std::move(p));
      } else if (kw == "automaton") {
        file.properties.push_back(parseAutomaton());
      } else if (kw == "fairness") {
        parseFairness(file.fairness);
      } else {
        fail("unknown directive '" + kw + "'");
      }
    }
    return file;
  }

 private:
  static CtlRef ctlAtomExpr(const std::string& expr) {
    return ctlAtom(parseSigExpr(expr));
  }

  [[noreturn]] void fail(const std::string& msg) {
    throw std::runtime_error("pif parse error (line " + std::to_string(line_) +
                             "): " + msg);
  }

  void skipWsAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string word() {
    skipWsAndComments();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
          c == '.' || c == '$') {
        ++pos_;
      } else {
        break;
      }
    }
    if (start == pos_) fail("expected identifier");
    return text_.substr(start, pos_ - start);
  }

  std::string quoted() {
    skipWsAndComments();
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected '\"'");
    ++pos_;
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    std::string s = text_.substr(start, pos_ - start);
    ++pos_;
    return s;
  }

  bool eat(char c) {
    skipWsAndComments();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }

  void semi() { expect(';'); }

  bool eatArrow() {
    skipWsAndComments();
    if (pos_ + 1 < text_.size() && text_[pos_] == '-' && text_[pos_ + 1] == '>') {
      pos_ += 2;
      return true;
    }
    return false;
  }

  PifProperty parseAutomaton() {
    PifProperty p;
    p.kind = PifProperty::Kind::Automaton;
    p.name = word();
    p.aut = Automaton(p.name);
    expect('{');
    bool initialSet = false;
    while (!eat('}')) {
      std::string kw = word();
      if (kw == "state") {
        do {
          std::string s = word();
          p.aut.addState(s);
          skipWsAndComments();
          // optional 'init' marker
          size_t save = pos_;
          int saveLine = line_;
          if (pos_ < text_.size() &&
              std::isalpha(static_cast<unsigned char>(text_[pos_])) != 0) {
            std::string mark = word();
            if (mark == "init") {
              p.aut.setInitial(s);
              initialSet = true;
            } else {
              pos_ = save;
              line_ = saveLine;
            }
          }
        } while (eat(','));
        semi();
      } else if (kw == "edge") {
        std::string from = word();
        if (!eatArrow()) fail("expected '->' in edge");
        std::string to = word();
        std::string onKw = word();
        if (onKw != "on") fail("expected 'on' in edge");
        p.aut.addEdge(from, to, parseSigExpr(quoted()));
        semi();
      } else if (kw == "accept") {
        std::string mode = word();
        std::vector<std::string> states;
        states.push_back(word());
        while (eat(',')) states.push_back(word());
        semi();
        if (mode == "stay") {
          p.aut.setStayAcceptance(states);
        } else if (mode == "buchi") {
          p.aut.setBuchiAcceptance(states);
        } else {
          fail("unknown acceptance mode '" + mode + "'");
        }
      } else if (kw == "rabin") {
        std::string finKw = word();
        if (finKw != "fin") fail("expected 'fin'");
        expect('{');
        std::vector<std::string> fin;
        if (!eat('}')) {
          fin.push_back(word());
          while (eat(',')) fin.push_back(word());
          expect('}');
        }
        std::string infKw = word();
        if (infKw != "inf") fail("expected 'inf'");
        expect('{');
        std::vector<std::string> inf;
        if (!eat('}')) {
          inf.push_back(word());
          while (eat(',')) inf.push_back(word());
          expect('}');
        }
        semi();
        p.aut.addRabinPair(fin, inf);
      } else {
        fail("unknown automaton directive '" + kw + "'");
      }
    }
    if (!initialSet && p.aut.numStates() > 0) {
      // first state is initial by default
      p.aut.setInitial(p.aut.stateName(0));
    }
    return p;
  }

  void parseFairness(FairnessSpec& spec) {
    expect('{');
    while (!eat('}')) {
      std::string kw = word();
      if (kw == "nostay") {
        spec.noStay.push_back(parseSigExpr(quoted()));
        semi();
      } else if (kw == "buchi") {
        spec.buchi.push_back(parseSigExpr(quoted()));
        semi();
      } else if (kw == "fairedge") {
        SigExprRef from = parseSigExpr(quoted());
        if (!eatArrow()) fail("expected '->' in fairedge");
        SigExprRef to = parseSigExpr(quoted());
        spec.fairEdges.emplace_back(std::move(from), std::move(to));
        semi();
      } else {
        fail("unknown fairness directive '" + kw + "'");
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

PifFile parsePif(const std::string& text) { return PifParser(text).parse(); }

}  // namespace hsis
