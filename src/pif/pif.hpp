// PIF — the Property Intermediate Format. A PIF file carries the properties
// to verify (CTL formulas and ω-automata) plus the system's fairness
// constraints, separate from the design description (paper Figure 1).
//
// Syntax (line comments with '#'):
//   ctl NAME "CTL formula";
//   invariant NAME "boolean expr";             # sugar for AG(expr)
//   automaton NAME {
//     state A init;  state B;
//     edge A -> B on "expr";
//     accept stay A B;                          # eventually remain in {A,B}
//     accept buchi A;                           # visit A infinitely often
//     rabin fin { B } inf { A };                # general edge-Rabin pair
//   }
//   fairness {
//     nostay "expr";                            # negative state-subset
//     buchi "expr";                             # visit infinitely often
//     fairedge "expr" -> "expr";                # positive fair edge
//   }
#pragma once

#include <string>
#include <vector>

#include "ctl/ctl.hpp"
#include "lc/automaton.hpp"
#include "lc/lc.hpp"

namespace hsis {

struct PifProperty {
  enum class Kind : uint8_t { Ctl, Automaton };
  Kind kind = Kind::Ctl;
  std::string name;
  CtlRef ctl;       ///< Kind::Ctl
  Automaton aut;    ///< Kind::Automaton
};

struct PifFile {
  std::vector<PifProperty> properties;
  FairnessSpec fairness;

  [[nodiscard]] size_t ctlCount() const;
  [[nodiscard]] size_t automatonCount() const;
};

/// Parse PIF text; throws std::runtime_error with line info.
PifFile parsePif(const std::string& text);

}  // namespace hsis
