// Boolean expressions over design signals — the shared atom language of
// CTL formulas, automaton edge guards, and fairness constraints in PIF.
//
// Grammar:
//   expr   := term ('|' term)*          (also "||")
//   term   := factor ('&' factor)*      (also "&&")
//   factor := '!' factor | '(' expr ')' | atom | '0' | '1'
//   atom   := SIGNAL | SIGNAL '=' VALUE | SIGNAL '!=' VALUE
// A bare SIGNAL of binary domain means SIGNAL=1. VALUE may be a symbolic
// value name or a numeral.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "fsm/fsm.hpp"

namespace hsis {

struct SigExpr {
  enum class Kind : uint8_t { True, False, Atom, Not, And, Or };
  Kind kind = Kind::True;
  std::string signal;  ///< Atom
  std::string value;   ///< Atom; empty means "=1" on a binary signal
  bool negatedAtom = false;  ///< Atom: '!=' comparison
  std::vector<std::shared_ptr<const SigExpr>> args;

  /// Render back to source syntax.
  [[nodiscard]] std::string toString() const;
};

using SigExprRef = std::shared_ptr<const SigExpr>;

SigExprRef sigTrue();
SigExprRef sigFalse();
SigExprRef sigAtom(std::string signal, std::string value = "",
                   bool negated = false);
SigExprRef sigNot(SigExprRef a);
SigExprRef sigAnd(SigExprRef a, SigExprRef b);
SigExprRef sigOr(SigExprRef a, SigExprRef b);

/// Parse the expression language above. Throws std::runtime_error.
SigExprRef parseSigExpr(const std::string& text);

/// Evaluate to a BDD over the FSM's signal variables. Unknown signals or
/// out-of-domain values throw std::runtime_error.
Bdd evalSigExpr(const SigExpr& e, const Fsm& fsm);
inline Bdd evalSigExpr(const SigExprRef& e, const Fsm& fsm) {
  return evalSigExpr(*e, fsm);
}

}  // namespace hsis
