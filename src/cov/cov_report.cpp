// Markdown rendering of coverage reports (`hsis_report coverage`).
#include <cmath>
#include <cstdio>
#include <string>

#include "cov/cov.hpp"

namespace hsis::cov {

namespace {

std::string pctStr(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", pct);
  return buf;
}

std::string countStr(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

}  // namespace

size_t latchesBelow(const Report& r, double thresholdPct) {
  size_t below = 0;
  for (const LatchOccupancy& occ : r.latches)
    if (occ.pct() < thresholdPct) ++below;
  return below;
}

std::string renderReport(const Report& r, const RenderOptions& opts) {
  std::string out = "# Coverage report: " + r.design + "\n\n";
  if (!r.enabled) {
    out += "_coverage was disabled (HSIS_OBS_DISABLE build or "
           "HSIS_COV_DISABLE set); no data._\n";
    return out;
  }

  out += "- reachable states: " + countStr(r.reachableStates) + " / " +
         countStr(r.stateSpace) + " (" + pctStr(100.0 * r.stateFraction()) +
         " of state space)\n";
  out += "- latch values reached: " + std::to_string(r.valuesReached) + "/" +
         std::to_string(r.valuesTotal);
  if (r.valuesTotal > 0) {
    out += " (" + pctStr(100.0 * static_cast<double>(r.valuesReached) /
                         static_cast<double>(r.valuesTotal)) + ")";
  }
  out += "\n";
  out += "- coverpoint bins hit: " + std::to_string(r.binsHit) + "/" +
         std::to_string(r.binsTotal) + "\n";
  out += "- reachability depth: " + std::to_string(r.depth) + "\n";
  if (r.simStates > 0) {
    out += "- sim differential: " + std::to_string(r.simStates) +
           " states enumerated, ";
    if (!r.simExhaustive) {
      out += "not exhaustive (comparison skipped)\n";
    } else {
      out += r.simAgrees ? "agrees with symbolic counts\n"
                         : "**DISAGREES with symbolic counts**\n";
    }
  }

  out += "\n## Latch occupancy\n\n";
  out += "| latch | domain | reached | occupancy | missing values |\n";
  out += "|---|---:|---:|---:|---|\n";
  for (const LatchOccupancy& occ : r.latches) {
    std::string missing;
    for (size_t k = 0; k < occ.valueNames.size(); ++k) {
      if (occ.valueReached[k]) continue;
      if (!missing.empty()) missing += ", ";
      missing += occ.valueNames[k];
    }
    if (missing.empty()) missing = "—";
    out += "| " + occ.latch + " | " + std::to_string(occ.domain) + " | " +
           std::to_string(occ.reachedValues) + " | " + pctStr(occ.pct()) +
           " | " + missing + " |\n";
  }

  if (!r.points.empty()) {
    out += "\n## Coverpoints\n\n";
    out += "| coverpoint | bin | expr | hit | states | sim hits |\n";
    out += "|---|---|---|---|---:|---:|\n";
    for (const PointResult& pr : r.points) {
      for (const BinResult& br : pr.bins) {
        std::string sim;
        if (!br.simEvaluable) {
          sim = "n/a";
        } else if (br.simHits < 0) {
          sim = "—";
        } else {
          sim = std::to_string(br.simHits);
        }
        out += "| " + pr.name + " | " + br.name + " | `" + br.expr +
               "` | " + (br.symbolicHit ? "yes" : "**no**") + " | " +
               countStr(br.symbolicStates) + " | " + sim + " |\n";
      }
    }
  }

  if (!r.frontier.empty()) {
    out += "\n## Frontier occupancy\n\n";
    out += "| depth | new states | total states |\n";
    out += "|---:|---:|---:|\n";
    for (const FrontierPoint& fp : r.frontier) {
      out += "| " + std::to_string(fp.depth) + " | " +
             countStr(fp.newStates) + " | " + countStr(fp.totalStates) +
             " |\n";
    }
  }

  if (opts.threshold >= 0.0) {
    size_t below = latchesBelow(r, opts.threshold);
    out += "\n## Threshold gate (" + pctStr(opts.threshold) + ")\n\n";
    if (below == 0) {
      out += "All latches meet the occupancy threshold.\n";
    } else {
      out += "**" + std::to_string(below) +
             " latch(es) below threshold:**\n\n";
      for (const LatchOccupancy& occ : r.latches) {
        if (occ.pct() >= opts.threshold) continue;
        out += "- " + occ.latch + ": " + pctStr(occ.pct()) + "\n";
      }
    }
  }
  return out;
}

}  // namespace hsis::cov
