#include "cov/cov.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <unordered_set>

#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace hsis::cov {

bool coverageEnabled() {
  return obs::kEnabled && std::getenv("HSIS_COV_DISABLE") == nullptr;
}

// ---- coverpoint construction ----

namespace {

PointSpec autoPointNamed(const Fsm& fsm, const std::string& signal,
                         std::string name) {
  auto v = fsm.signalVar(signal);
  if (!v) throw std::runtime_error("cov: unknown signal '" + signal + "'");
  const MvSpace& space = fsm.space();
  PointSpec p;
  p.name = std::move(name);
  for (uint32_t k = 0; k < space.domain(*v); ++k) {
    p.bins.push_back(
        {space.valueName(*v, k), sigAtom(signal, space.valueName(*v, k))});
  }
  return p;
}

}  // namespace

PointSpec autoPoint(const Fsm& fsm, const std::string& signal) {
  return autoPointNamed(fsm, signal, signal);
}

PointSpec crossPoint(const PointSpec& a, const PointSpec& b,
                     std::string name) {
  PointSpec p;
  p.name = name.empty() ? a.name + "_x_" + b.name : std::move(name);
  for (const BinSpec& ba : a.bins) {
    for (const BinSpec& bb : b.bins) {
      p.bins.push_back({ba.name + "/" + bb.name, sigAnd(ba.expr, bb.expr)});
    }
  }
  return p;
}

std::vector<PointSpec> defaultPoints(const Fsm& fsm) {
  std::vector<PointSpec> points;
  points.reserve(fsm.numLatches());
  for (size_t l = 0; l < fsm.numLatches(); ++l)
    points.push_back(autoPoint(fsm, fsm.latchName(l)));
  return points;
}

// ---- spec language ----

namespace {

class SpecParser {
 public:
  SpecParser(const std::string& text, const Fsm& fsm)
      : text_(text), fsm_(fsm) {}

  std::vector<PointSpec> parse() {
    std::vector<PointSpec> points;
    while (true) {
      skipWs();
      if (pos_ == text_.size()) break;
      std::string kw = ident("declaration keyword");
      if (kw == "coverpoint") {
        points.push_back(parseCoverpoint());
      } else if (kw == "cross") {
        points.push_back(parseCross(points));
      } else {
        fail("expected 'coverpoint' or 'cross', got '" + kw + "'");
      }
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == ';') ++pos_;
    }
    return points;
  }

 private:
  PointSpec parseCoverpoint() {
    std::string name = ident("coverpoint name");
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '{') {
      ++pos_;
      PointSpec p;
      p.name = std::move(name);
      while (true) {
        skipWs();
        if (pos_ >= text_.size()) fail("unterminated coverpoint block");
        if (text_[pos_] == '}') {
          ++pos_;
          break;
        }
        std::string kw = ident("'bin'");
        if (kw != "bin") fail("expected 'bin', got '" + kw + "'");
        std::string binName = ident("bin name");
        expect('=');
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != ';') ++pos_;
        if (pos_ >= text_.size()) fail("missing ';' after bin expression");
        std::string exprText = text_.substr(start, pos_ - start);
        ++pos_;  // ';'
        p.bins.push_back({std::move(binName), parseSigExpr(exprText)});
      }
      if (p.bins.empty()) fail("coverpoint '" + p.name + "' has no bins");
      return p;
    }
    std::string kw = ident("'auto'");
    if (kw != "auto") fail("expected '{' or 'auto', got '" + kw + "'");
    std::string signal = ident("signal name");
    return autoPointNamed(fsm_, signal, std::move(name));
  }

  PointSpec parseCross(const std::vector<PointSpec>& declared) {
    std::string name = ident("cross name");
    expect('=');
    std::string a = ident("coverpoint name");
    expect(',');
    std::string b = ident("coverpoint name");
    return crossPoint(lookup(declared, a), lookup(declared, b),
                      std::move(name));
  }

  const PointSpec& lookup(const std::vector<PointSpec>& declared,
                          const std::string& name) {
    for (const PointSpec& p : declared)
      if (p.name == name) return p;
    fail("cross references undeclared coverpoint '" + name + "'");
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  static bool identChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$' || c == '[' || c == ']' || c == '<' ||
           c == '>' || c == '-';
  }

  std::string ident(const char* what) {
    skipWs();
    size_t start = pos_;
    while (pos_ < text_.size() && identChar(text_[pos_])) ++pos_;
    if (pos_ == start) fail(std::string("expected ") + what);
    return text_.substr(start, pos_ - start);
  }

  void expect(char c) {
    skipWs();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  [[noreturn]] void fail(const std::string& msg) {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i)
      if (text_[i] == '\n') ++line;
    throw std::runtime_error("cover spec line " + std::to_string(line) +
                             ": " + msg);
  }

  const std::string& text_;
  const Fsm& fsm_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<PointSpec> parseCoverSpec(const std::string& text,
                                      const Fsm& fsm) {
  return SpecParser(text, fsm).parse();
}

// ---- analysis ----

namespace {

/// True iff every atom of the expression names a present-state (latch)
/// variable — the precondition for concrete evaluation on enumerated
/// states.
bool stateOnly(const SigExpr& e, const Fsm& fsm,
               const std::unordered_set<uint32_t>& stateVars) {
  switch (e.kind) {
    case SigExpr::Kind::True:
    case SigExpr::Kind::False:
      return true;
    case SigExpr::Kind::Atom: {
      auto v = fsm.signalVar(e.signal);
      return v && stateVars.count(*v) != 0;
    }
    case SigExpr::Kind::Not:
    case SigExpr::Kind::And:
    case SigExpr::Kind::Or:
      for (const auto& a : e.args)
        if (!stateOnly(*a, fsm, stateVars)) return false;
      return true;
  }
  return false;
}

/// Symbolic bin evaluation. Unlike evalSigExpr (CTL atoms, latch outputs
/// only), coverage bins may also reference free inputs: the reached set
/// leaves inputs unconstrained and analyze() projects the conjunction back
/// onto the state rail, so an input atom asks "is there a reached state
/// compatible with this input value" — the symbolic-only column of the
/// report. Internal combinational signals are still rejected; they are
/// quantified out of the transition relation and carry no set semantics.
Bdd evalSymbolic(const SigExpr& e, const Fsm& fsm,
                 const std::unordered_set<uint32_t>& stateOrInput) {
  BddManager& mgr = fsm.mgr();
  const MvSpace& space = fsm.space();
  switch (e.kind) {
    case SigExpr::Kind::True:
      return mgr.bddOne();
    case SigExpr::Kind::False:
      return mgr.bddZero();
    case SigExpr::Kind::Not:
      return !evalSymbolic(*e.args[0], fsm, stateOrInput);
    case SigExpr::Kind::And:
      return evalSymbolic(*e.args[0], fsm, stateOrInput) &
             evalSymbolic(*e.args[1], fsm, stateOrInput);
    case SigExpr::Kind::Or:
      return evalSymbolic(*e.args[0], fsm, stateOrInput) |
             evalSymbolic(*e.args[1], fsm, stateOrInput);
    case SigExpr::Kind::Atom: {
      std::optional<MvVarId> var = fsm.signalVar(e.signal);
      if (!var.has_value())
        throw std::runtime_error("cov: bin references unknown signal " +
                                 e.signal);
      if (stateOrInput.count(*var) == 0)
        throw std::runtime_error(
            "cov: signal " + e.signal +
            " is combinational; coverage bins must reference latch outputs "
            "or primary inputs");
      std::string value = e.value;
      if (value.empty()) {
        if (space.domain(*var) != 2)
          throw std::runtime_error("cov: bare atom " + e.signal +
                                   " needs an explicit value (domain > 2)");
        value = "1";
      }
      std::optional<uint32_t> k = space.valueOf(*var, value);
      if (!k.has_value())
        throw std::runtime_error("cov: value " + value +
                                 " not in domain of " + e.signal);
      Bdd lit = space.literal(*var, *k);
      return e.negatedAtom ? (space.validEncodings(*var) & !lit) : lit;
    }
  }
  return mgr.bddZero();
}

/// Evaluate a state-only expression on one enumerated state cube.
bool evalConcrete(const SigExpr& e, const Fsm& fsm,
                  const std::vector<int8_t>& cube) {
  const MvSpace& space = fsm.space();
  switch (e.kind) {
    case SigExpr::Kind::True:
      return true;
    case SigExpr::Kind::False:
      return false;
    case SigExpr::Kind::Atom: {
      MvVarId v = *fsm.signalVar(e.signal);
      uint32_t target = 1;
      if (!e.value.empty()) {
        auto t = space.valueOf(v, e.value);
        if (!t)
          throw std::runtime_error("cov: value '" + e.value +
                                   "' not in domain of '" + e.signal + "'");
        target = *t;
      }
      bool eq = space.decode(v, cube) == target;
      return eq != e.negatedAtom;
    }
    case SigExpr::Kind::Not:
      return !evalConcrete(*e.args[0], fsm, cube);
    case SigExpr::Kind::And:
      return evalConcrete(*e.args[0], fsm, cube) &&
             evalConcrete(*e.args[1], fsm, cube);
    case SigExpr::Kind::Or:
      return evalConcrete(*e.args[0], fsm, cube) ||
             evalConcrete(*e.args[1], fsm, cube);
  }
  return false;
}

}  // namespace

Report analyze(const Fsm& fsm, const TransitionRelation& tr,
               const Bdd& reached, const Options& opts) {
  Report rep;
  rep.design = fsm.name();
  if (!coverageEnabled()) return rep;  // valid-empty, enabled == false
  rep.enabled = true;

  obs::Span span("cov.analyze");
  static obs::Counter& reports = obs::counter("cov.reports");
  reports.add();

  BddManager& mgr = fsm.mgr();
  const MvSpace& space = fsm.space();

  // Layer 1: structural occupancy + state-space fraction.
  rep.reachableStates = fsm.countStates(reached);
  rep.stateSpace = 1.0;
  for (size_t l = 0; l < fsm.numLatches(); ++l) {
    MvVarId v = fsm.stateVar(l);
    uint32_t dom = space.domain(v);
    rep.stateSpace *= static_cast<double>(dom);
    LatchOccupancy occ;
    occ.latch = fsm.latchName(l);
    occ.domain = dom;
    for (uint32_t k = 0; k < dom; ++k) {
      bool hit = !(reached & space.literal(v, k)).isZero();
      occ.valueNames.push_back(space.valueName(v, k));
      occ.valueReached.push_back(hit);
      if (hit) ++occ.reachedValues;
    }
    rep.valuesTotal += dom;
    rep.valuesReached += occ.reachedValues;
    rep.latches.push_back(std::move(occ));
  }

  // Frontier time series (recorded during the fixpoint, passed in).
  double cumulative = 0.0;
  for (size_t d = 0; d < opts.frontierNewStates.size(); ++d) {
    cumulative += opts.frontierNewStates[d];
    rep.frontier.push_back({d, opts.frontierNewStates[d], cumulative});
  }
  if (!rep.frontier.empty()) rep.depth = rep.frontier.size() - 1;

  // Layer 2: coverpoints, symbolically.
  std::unordered_set<uint32_t> stateVars(fsm.stateVars().begin(),
                                         fsm.stateVars().end());
  std::unordered_set<uint32_t> stateOrInput = stateVars;
  stateOrInput.insert(fsm.inputVars().begin(), fsm.inputVars().end());
  std::vector<PointSpec> defaults;
  if (opts.points.empty()) defaults = defaultPoints(fsm);
  const std::vector<PointSpec>& specs =
      opts.points.empty() ? defaults : opts.points;
  for (const PointSpec& spec : specs) {
    PointResult pr;
    pr.name = spec.name;
    for (const BinSpec& bin : spec.bins) {
      BinResult br;
      br.name = bin.name;
      br.expr = bin.expr->toString();
      Bdd restricted = reached & evalSymbolic(*bin.expr, fsm, stateOrInput);
      br.symbolicHit = !restricted.isZero();
      // Project onto the state rail: states where some input/internal
      // assignment satisfies the bin.
      br.symbolicStates =
          fsm.countStates(mgr.exists(restricted, fsm.nonStateCube()));
      br.simEvaluable = stateOnly(*bin.expr, fsm, stateVars);
      ++rep.binsTotal;
      if (br.symbolicHit) {
        ++rep.binsHit;
        ++pr.binsHit;
      }
      pr.bins.push_back(std::move(br));
    }
    rep.points.push_back(std::move(pr));
  }

  // Differential pass: re-count state-only bins by exhaustive enumeration.
  if (opts.simMaxStates > 0) {
    Simulator sim(fsm, tr, opts.simSeed);
    // rep.points mirrors `specs` index-for-index; zip them to pair each
    // evaluable BinResult with its expression.
    std::vector<BinResult*> targets;
    std::vector<const SigExpr*> exprs;
    for (size_t p = 0; p < rep.points.size(); ++p) {
      for (size_t i = 0; i < rep.points[p].bins.size(); ++i) {
        if (!rep.points[p].bins[i].simEvaluable) continue;
        targets.push_back(&rep.points[p].bins[i]);
        exprs.push_back(specs[p].bins[i].expr.get());
      }
    }
    std::vector<int64_t> counts(targets.size(), 0);
    size_t visited = sim.enumerate(
        opts.simMaxStates, [&](const std::vector<int8_t>& cube) {
          for (size_t t = 0; t < targets.size(); ++t)
            if (evalConcrete(*exprs[t], fsm, cube)) ++counts[t];
        });
    rep.simStates = visited;
    rep.simExhaustive =
        static_cast<double>(visited) == rep.reachableStates &&
        rep.reachableStates > 0.0;
    if (rep.simExhaustive) {
      for (size_t t = 0; t < targets.size(); ++t) {
        targets[t]->simHits = counts[t];
        if (static_cast<double>(counts[t]) != targets[t]->symbolicStates)
          rep.simAgrees = false;
      }
    }
  }

  obs::gauge("cov.values.total").set(static_cast<int64_t>(rep.valuesTotal));
  obs::gauge("cov.values.reached")
      .set(static_cast<int64_t>(rep.valuesReached));
  obs::gauge("cov.bins.total").set(static_cast<int64_t>(rep.binsTotal));
  obs::gauge("cov.bins.hit").set(static_cast<int64_t>(rep.binsHit));
  return rep;
}

}  // namespace hsis::cov
