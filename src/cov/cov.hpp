// hsis_cov: BDD-backed verification coverage.
//
// Three layers on top of the reachability fixpoint:
//  1. Structural coverage — per-latch value occupancy (which domain values
//     each latch ever takes in the reached set), the reachable fraction of
//     the full state space via BDD sat-counting, and the per-depth
//     new-state frontier series recorded by ReachOptions::
//     recordFrontierStates.
//  2. Coverpoints and bins — named SigExpr predicates over latches and
//     inputs, evaluated symbolically against the reached BDD and (for
//     state-only bins) concretely by exhaustive simulator enumeration, with
//     a differential check between the two counts.
//  3. Reporting — the hsis-cov-v1 JSON artifact, a markdown renderer with
//     occupancy-threshold gating (hsis_report coverage), and obs metrics.
//
// Everything folds to a valid-empty no-op under HSIS_OBS_DISABLE builds or
// when HSIS_COV_DISABLE is set in the environment (the runtime A/B toggle
// used for the overhead measurement in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsm/image.hpp"
#include "pif/sigexpr.hpp"

namespace hsis::cov {

/// Master switch: true when the obs layer is compiled in and
/// HSIS_COV_DISABLE is not set. analyze() returns a valid-empty disabled
/// Report when false, so callers never need to branch.
bool coverageEnabled();

// ---- coverpoint specification ----

/// One bin: a named predicate over design signals. The bin is "hit" when
/// some reachable state (for some input, if the expression mentions
/// inputs) satisfies the predicate.
struct BinSpec {
  std::string name;
  SigExprRef expr;
};

/// A named group of bins, mirroring a functional-coverage coverpoint.
struct PointSpec {
  std::string name;
  std::vector<BinSpec> bins;
};

/// One bin per domain value of the signal, named after the value
/// ("coverpoint NAME auto SIGNAL" in the spec language). Throws
/// std::runtime_error for unknown signals.
PointSpec autoPoint(const Fsm& fsm, const std::string& signal);

/// Cross product of two coverpoints: one bin per pair, named "a/b".
PointSpec crossPoint(const PointSpec& a, const PointSpec& b,
                     std::string name = "");

/// The default battery: one auto coverpoint per latch.
std::vector<PointSpec> defaultPoints(const Fsm& fsm);

/// Parse a coverage spec file. Grammar (one declaration per statement,
/// '#' comments to end of line):
///   coverpoint NAME { bin NAME = EXPR; ... }
///   coverpoint NAME auto SIGNAL
///   cross NAME = POINT, POINT
/// where EXPR is the SigExpr language and POINT names a previously
/// declared coverpoint. Throws std::runtime_error on syntax or unknown
/// signal/point errors.
std::vector<PointSpec> parseCoverSpec(const std::string& text,
                                      const Fsm& fsm);

// ---- results ----

/// Which values of one latch's domain appear in the reached set.
struct LatchOccupancy {
  std::string latch;
  uint32_t domain = 0;
  std::vector<std::string> valueNames;  ///< one per domain value
  std::vector<bool> valueReached;       ///< one per domain value
  uint32_t reachedValues = 0;
  [[nodiscard]] double pct() const {
    return domain == 0 ? 100.0 : 100.0 * reachedValues / domain;
  }
};

/// One step of the reachability frontier time series.
struct FrontierPoint {
  size_t depth = 0;
  double newStates = 0.0;    ///< states first reached at this depth
  double totalStates = 0.0;  ///< cumulative reached states through this depth
};

struct BinResult {
  std::string name;
  std::string expr;  ///< SigExpr::toString of the predicate
  bool symbolicHit = false;
  /// Reached states satisfying the bin (for some input when the expression
  /// mentions inputs), by BDD sat-count.
  double symbolicStates = 0.0;
  /// False when the expression mentions inputs or combinational nets — the
  /// state enumerator cannot evaluate those, so the bin is symbolic-only.
  bool simEvaluable = true;
  /// Concrete hit count from simulator enumeration; -1 when not evaluated
  /// (simMaxStates == 0, enumeration not exhaustive, or not simEvaluable).
  int64_t simHits = -1;
};

struct PointResult {
  std::string name;
  std::vector<BinResult> bins;
  size_t binsHit = 0;
};

struct Report {
  /// False when coverage was disabled; all other fields are then empty.
  bool enabled = false;
  std::string design;
  double reachableStates = 0.0;
  double stateSpace = 0.0;  ///< product of all latch domains
  [[nodiscard]] double stateFraction() const {
    return stateSpace <= 0.0 ? 0.0 : reachableStates / stateSpace;
  }
  uint64_t valuesTotal = 0;    ///< Σ latch domains
  uint64_t valuesReached = 0;  ///< Σ per-latch reached values
  uint64_t binsTotal = 0;
  uint64_t binsHit = 0;
  size_t depth = 0;  ///< reachability fixpoint depth (frontier.size()-1)
  std::vector<LatchOccupancy> latches;
  std::vector<FrontierPoint> frontier;
  std::vector<PointResult> points;
  /// States visited by the concrete differential pass (0 = skipped).
  uint64_t simStates = 0;
  /// True when the enumeration covered every reachable state, making the
  /// differential comparison meaningful.
  bool simExhaustive = false;
  /// True when every sim-evaluable bin's concrete count matches its
  /// symbolic sat-count (vacuously true when the pass was skipped or not
  /// exhaustive).
  bool simAgrees = true;
};

struct Options {
  /// Coverpoints to evaluate; empty means defaultPoints(fsm).
  std::vector<PointSpec> points;
  /// Enumerate up to this many concrete states for the differential check
  /// (0 = symbolic only). The comparison is only scored when the
  /// enumeration exhausted the reachable set.
  size_t simMaxStates = 0;
  uint64_t simSeed = 1;
  /// Per-depth new-state series from the reachability fixpoint
  /// (ReachResult::frontierStates / CtlChecker::frontierNewStates).
  std::vector<double> frontierNewStates;
};

/// Analyze coverage of the reached state set (a BDD over present-state
/// variables, as produced by reachableStates or CtlChecker::reached).
Report analyze(const Fsm& fsm, const TransitionRelation& tr,
               const Bdd& reached, const Options& opts = {});

// ---- reporting ----

/// Serialize as an hsis-cov-v1 JSON document (single line, no trailing
/// newline).
std::string reportToJson(const Report& r);

/// Parse an hsis-cov-v1 document back (for hsis_report coverage). Throws
/// std::runtime_error on malformed input or schema mismatch.
Report parseReportJson(const std::string& text);

struct RenderOptions {
  /// When >= 0, append a gating section listing latches whose occupancy
  /// pct() is below the threshold.
  double threshold = -1.0;
};

/// Render a markdown coverage report.
std::string renderReport(const Report& r, const RenderOptions& opts = {});

/// Number of latches whose occupancy is below `thresholdPct` (the
/// hsis_report coverage --threshold gate).
size_t latchesBelow(const Report& r, double thresholdPct);

}  // namespace hsis::cov
