// hsis-cov-v1 serialization and the matching reader used by
// `hsis_report coverage`.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "cov/cov.hpp"
#include "obs/jsonlite.hpp"

namespace hsis::cov {

namespace {

/// Format a double compactly: integral values (state counts) print without
/// a fraction, everything else with enough digits to round-trip.
std::string num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string reportToJson(const Report& r) {
  std::string out = "{\"schema\": \"hsis-cov-v1\"";
  out += ", \"enabled\": ";
  out += r.enabled ? "true" : "false";
  out += ", \"design\": " + quoted(r.design);
  out += ", \"reachable_states\": " + num(r.reachableStates);
  out += ", \"state_space\": " + num(r.stateSpace);
  out += ", \"state_fraction\": " + num(r.stateFraction());
  out += ", \"depth\": " + std::to_string(r.depth);
  out += ", \"values\": {\"reached\": " + std::to_string(r.valuesReached) +
         ", \"total\": " + std::to_string(r.valuesTotal) + "}";
  out += ", \"bins\": {\"hit\": " + std::to_string(r.binsHit) +
         ", \"total\": " + std::to_string(r.binsTotal) + "}";

  out += ", \"latches\": [";
  for (size_t l = 0; l < r.latches.size(); ++l) {
    const LatchOccupancy& occ = r.latches[l];
    if (l) out += ", ";
    out += "{\"name\": " + quoted(occ.latch);
    out += ", \"domain\": " + std::to_string(occ.domain);
    out += ", \"reached_values\": " + std::to_string(occ.reachedValues);
    out += ", \"pct\": " + num(occ.pct());
    out += ", \"values\": [";
    for (size_t k = 0; k < occ.valueNames.size(); ++k) {
      if (k) out += ", ";
      out += "{\"name\": " + quoted(occ.valueNames[k]);
      out += ", \"reached\": ";
      out += occ.valueReached[k] ? "true" : "false";
      out += "}";
    }
    out += "]}";
  }
  out += "]";

  out += ", \"frontier\": [";
  for (size_t d = 0; d < r.frontier.size(); ++d) {
    if (d) out += ", ";
    out += "{\"depth\": " + std::to_string(r.frontier[d].depth);
    out += ", \"new_states\": " + num(r.frontier[d].newStates);
    out += ", \"total_states\": " + num(r.frontier[d].totalStates);
    out += "}";
  }
  out += "]";

  out += ", \"coverpoints\": [";
  for (size_t p = 0; p < r.points.size(); ++p) {
    const PointResult& pr = r.points[p];
    if (p) out += ", ";
    out += "{\"name\": " + quoted(pr.name);
    out += ", \"bins_hit\": " + std::to_string(pr.binsHit);
    out += ", \"bins\": [";
    for (size_t i = 0; i < pr.bins.size(); ++i) {
      const BinResult& br = pr.bins[i];
      if (i) out += ", ";
      out += "{\"name\": " + quoted(br.name);
      out += ", \"expr\": " + quoted(br.expr);
      out += ", \"hit\": ";
      out += br.symbolicHit ? "true" : "false";
      out += ", \"states\": " + num(br.symbolicStates);
      out += ", \"sim_evaluable\": ";
      out += br.simEvaluable ? "true" : "false";
      out += ", \"sim_hits\": ";
      out += br.simHits < 0 ? "null" : std::to_string(br.simHits);
      out += "}";
    }
    out += "]}";
  }
  out += "]";

  out += ", \"sim\": {\"states\": " + std::to_string(r.simStates);
  out += ", \"exhaustive\": ";
  out += r.simExhaustive ? "true" : "false";
  out += ", \"agrees\": ";
  out += r.simAgrees ? "true" : "false";
  out += "}}";
  return out;
}

namespace {

namespace jl = obs::jsonlite;

const jl::Value& need(const jl::Object& obj, const std::string& key) {
  const jl::Value* v = jl::find(obj, key);
  if (!v)
    throw std::runtime_error("hsis-cov-v1: missing field '" + key + "'");
  return *v;
}

}  // namespace

Report parseReportJson(const std::string& text) {
  jl::Value doc = jl::parse(text);
  if (!doc.isObject())
    throw std::runtime_error("hsis-cov-v1: document is not an object");
  const jl::Object& obj = doc.object();
  const jl::Value& schema = need(obj, "schema");
  if (!schema.isString() || schema.str() != "hsis-cov-v1")
    throw std::runtime_error("hsis-cov-v1: unexpected schema tag");

  Report r;
  r.enabled = need(obj, "enabled").boolean();
  r.design = need(obj, "design").str();
  r.reachableStates = need(obj, "reachable_states").number();
  r.stateSpace = need(obj, "state_space").number();
  r.depth = static_cast<size_t>(need(obj, "depth").number());
  const jl::Object& values = need(obj, "values").object();
  r.valuesReached = static_cast<uint64_t>(need(values, "reached").number());
  r.valuesTotal = static_cast<uint64_t>(need(values, "total").number());
  const jl::Object& bins = need(obj, "bins").object();
  r.binsHit = static_cast<uint64_t>(need(bins, "hit").number());
  r.binsTotal = static_cast<uint64_t>(need(bins, "total").number());

  for (const jl::Value& lv : need(obj, "latches").array()) {
    const jl::Object& lo = lv.object();
    LatchOccupancy occ;
    occ.latch = need(lo, "name").str();
    occ.domain = static_cast<uint32_t>(need(lo, "domain").number());
    occ.reachedValues =
        static_cast<uint32_t>(need(lo, "reached_values").number());
    for (const jl::Value& vv : need(lo, "values").array()) {
      const jl::Object& vo = vv.object();
      occ.valueNames.push_back(need(vo, "name").str());
      occ.valueReached.push_back(need(vo, "reached").boolean());
    }
    r.latches.push_back(std::move(occ));
  }

  for (const jl::Value& fv : need(obj, "frontier").array()) {
    const jl::Object& fo = fv.object();
    FrontierPoint fp;
    fp.depth = static_cast<size_t>(need(fo, "depth").number());
    fp.newStates = need(fo, "new_states").number();
    fp.totalStates = need(fo, "total_states").number();
    r.frontier.push_back(fp);
  }

  for (const jl::Value& pv : need(obj, "coverpoints").array()) {
    const jl::Object& po = pv.object();
    PointResult pr;
    pr.name = need(po, "name").str();
    pr.binsHit = static_cast<size_t>(need(po, "bins_hit").number());
    for (const jl::Value& bv : need(po, "bins").array()) {
      const jl::Object& bo = bv.object();
      BinResult br;
      br.name = need(bo, "name").str();
      br.expr = need(bo, "expr").str();
      br.symbolicHit = need(bo, "hit").boolean();
      br.symbolicStates = need(bo, "states").number();
      br.simEvaluable = need(bo, "sim_evaluable").boolean();
      const jl::Value& sh = need(bo, "sim_hits");
      br.simHits = sh.isNull() ? -1 : static_cast<int64_t>(sh.number());
      pr.bins.push_back(std::move(br));
    }
    r.points.push_back(std::move(pr));
  }

  const jl::Object& sim = need(obj, "sim").object();
  r.simStates = static_cast<uint64_t>(need(sim, "states").number());
  r.simExhaustive = need(sim, "exhaustive").boolean();
  r.simAgrees = need(sim, "agrees").boolean();
  return r;
}

}  // namespace hsis::cov
