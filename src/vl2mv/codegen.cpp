// vl2mv code generation: elaborate each module (with its parameter binding)
// into a BLIF-MV model. Operators become small tables over fresh
// intermediate signals; always blocks are symbolically executed into one
// next-state expression per register, which drives a .latch.
#include <cassert>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "vl2mv/ast.hpp"
#include "vl2mv/vl2mv.hpp"

namespace hsis::vl2mv {

namespace {

constexpr size_t kMaxTableRows = 1u << 14;

[[noreturn]] void cgError(int line, const std::string& msg) {
  throw std::runtime_error("vl2mv error (line " + std::to_string(line) +
                           "): " + msg);
}

ExprPtr cloneExpr(const Expr* e) {
  if (e == nullptr) return nullptr;
  auto c = std::make_unique<Expr>();
  c->kind = e->kind;
  c->value = e->value;
  c->width = e->width;
  c->name = e->name;
  c->op = e->op;
  c->line = e->line;
  for (const auto& a : e->args) c->args.push_back(cloneExpr(a.get()));
  return c;
}

ExprPtr mkId(const std::string& name, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Id;
  e->name = name;
  e->line = line;
  return e;
}

ExprPtr mkTernary(ExprPtr c, ExprPtr t, ExprPtr f) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Ternary;
  e->line = c->line;
  e->args.push_back(std::move(c));
  e->args.push_back(std::move(t));
  e->args.push_back(std::move(f));
  return e;
}

/// The type of a value: a bit-vector of some width, or an enumerated type.
struct Type {
  uint32_t domain = 2;
  int width = 1;    ///< bit width; -1 for enum types
  int enumId = -1;  ///< index into the module's enum registry; -1 = bitvec

  [[nodiscard]] bool isEnum() const { return enumId >= 0; }
  bool operator==(const Type& o) const {
    return domain == o.domain && enumId == o.enumId;
  }
};

/// A generated value: either a named signal or a constant.
struct Operand {
  bool isConst = false;
  uint64_t value = 0;   ///< for constants
  std::string signal;   ///< for signals
  Type type;
};

struct NetInfo {
  NetDecl::Kind kind = NetDecl::Kind::Wire;
  Type type;
  int line = 0;
};

uint32_t widthToDomain(int width, int line) {
  if (width < 1 || width > 16) cgError(line, "unsupported bit width");
  return 1u << width;
}

int valueWidth(uint64_t v) {
  int w = 1;
  while ((v >> w) != 0) ++w;
  return w;
}

class Compiler {
 public:
  explicit Compiler(const SourceFile& sf) : source_(sf) {}

  blifmv::Design compile(const std::string& topName) {
    if (source_.modules.empty())
      throw std::runtime_error("vl2mv: no modules in source");
    const ModuleDecl* top = &source_.modules.front();
    if (!topName.empty()) {
      top = findModule(topName);
      if (top == nullptr)
        throw std::runtime_error("vl2mv: no module named " + topName);
    }
    std::string rootModel = instantiateModule(*top, {}, top->line);
    design_.rootName = rootModel;
    return std::move(design_);
  }

  const ModuleDecl* findModule(const std::string& name) const {
    for (const ModuleDecl& m : source_.modules)
      if (m.name == name) return &m;
    return nullptr;
  }

  /// Elaborate `m` under the given parameter binding; returns the BLIF-MV
  /// model name (memoized per distinct binding).
  std::string instantiateModule(const ModuleDecl& m,
                                const std::map<std::string, int64_t>& paramOverrides,
                                int line);

  blifmv::Design& design() { return design_; }
  const SourceFile& source() const { return source_; }

 private:
  blifmv::Design design_;
  const SourceFile& source_;
  std::unordered_map<std::string, std::string> instantiated_;  // key -> model name
};

/// Per-module-elaboration state.
class ModuleCompiler {
 public:
  ModuleCompiler(Compiler& parent, const ModuleDecl& decl,
                 std::map<std::string, int64_t> params, std::string modelName)
      : parent_(parent),
        source_(parent.source()),
        decl_(decl),
        params_(std::move(params)),
        design_(parent.design()) {
    model_.name = std::move(modelName);
  }

  void run();

 private:
  // ---- constant evaluation (parameters, ranges, initial values) ----

  int64_t evalConst(const Expr* e) {
    switch (e->kind) {
      case Expr::Kind::Const:
        return static_cast<int64_t>(e->value);
      case Expr::Kind::Id: {
        auto it = params_.find(e->name);
        if (it != params_.end()) return it->second;
        // enum literal?
        if (auto lit = enumLiteral(e->name)) return lit->second;
        cgError(e->line, "'" + e->name + "' is not a constant");
      }
      case Expr::Kind::Unary: {
        int64_t a = evalConst(e->args[0].get());
        switch (e->op) {
          case Tok::Minus: return -a;
          case Tok::Tilde: return ~a;
          case Tok::Bang: return a == 0 ? 1 : 0;
          default: cgError(e->line, "bad constant unary operator");
        }
      }
      case Expr::Kind::Binary: {
        int64_t a = evalConst(e->args[0].get());
        int64_t b = evalConst(e->args[1].get());
        switch (e->op) {
          case Tok::Plus: return a + b;
          case Tok::Minus: return a - b;
          case Tok::Star: return a * b;
          case Tok::Slash: return b == 0 ? 0 : a / b;
          case Tok::Percent: return b == 0 ? 0 : a % b;
          case Tok::Shl: return a << b;
          case Tok::Shr: return a >> b;
          case Tok::Lt: return a < b;
          case Tok::Gt: return a > b;
          case Tok::GtEq: return a >= b;
          case Tok::NonBlocking: return a <= b;
          case Tok::EqEq: return a == b;
          case Tok::BangEq: return a != b;
          case Tok::AmpAmp: return (a != 0 && b != 0) ? 1 : 0;
          case Tok::PipePipe: return (a != 0 || b != 0) ? 1 : 0;
          case Tok::Amp: return a & b;
          case Tok::Pipe: return a | b;
          case Tok::Caret: return a ^ b;
          default: cgError(e->line, "bad constant binary operator");
        }
      }
      default:
        cgError(e->line, "expression is not constant");
    }
  }

  // ---- enum registry ----

  /// (enumId, value index) of an enum literal name, if any.
  std::optional<std::pair<int, uint32_t>> enumLiteral(const std::string& name) {
    auto it = enumLiterals_.find(name);
    if (it == enumLiterals_.end()) return std::nullopt;
    return it->second;
  }

  int registerEnum(const std::vector<std::string>& values, int line) {
    for (size_t i = 0; i < enums_.size(); ++i)
      if (enums_[i] == values) return static_cast<int>(i);
    int id = static_cast<int>(enums_.size());
    enums_.push_back(values);
    for (uint32_t k = 0; k < values.size(); ++k) {
      auto [it, fresh] =
          enumLiterals_.emplace(values[k], std::pair<int, uint32_t>{id, k});
      if (!fresh && enums_[it->second.first][it->second.second] != values[k])
        cgError(line, "enum literal " + values[k] + " declared twice");
    }
    return id;
  }

  // ---- net table ----

  void declareNets() {
    for (const NetDecl& d : decl_.nets) {
      NetInfo info;
      info.kind = d.kind;
      info.line = d.line;
      if (!d.enumValues.empty()) {
        int id = registerEnum(d.enumValues, d.line);
        info.type.enumId = id;
        info.type.width = -1;
        info.type.domain = static_cast<uint32_t>(d.enumValues.size());
      } else if (d.msb != nullptr) {
        int64_t msb = evalConst(d.msb.get());
        int64_t lsb = evalConst(d.lsb.get());
        if (lsb != 0 || msb < 0) cgError(d.line, "ranges must be [N:0]");
        info.type.width = static_cast<int>(msb) + 1;
        info.type.domain = widthToDomain(info.type.width, d.line);
      }
      if (nets_.contains(d.name))
        cgError(d.line, "net " + d.name + " declared twice");
      nets_.emplace(d.name, info);
      declareSignal(d.name, info.type);
    }
    for (const std::string& p : decl_.portOrder) {
      if (!nets_.contains(p))
        cgError(decl_.line, "port " + p + " has no declaration");
    }
  }

  /// Record the .mv declaration for a signal of the given type.
  void declareSignal(const std::string& name, const Type& t) {
    if (t.domain == 2 && !t.isEnum()) return;  // binary default
    blifmv::VarDecl vd;
    vd.domain = t.domain;
    if (t.isEnum()) vd.valueNames = enums_[t.enumId];
    model_.varDecls[name] = std::move(vd);
  }

  std::string freshSignal(const Type& t) {
    std::string name = "_e" + std::to_string(nextTemp_++);
    declareSignal(name, t);
    // Register as a net so the name resolves in synthesized expressions
    // (if/case merges refer to materialized condition signals by name).
    NetInfo info;
    info.kind = NetDecl::Kind::Wire;
    info.type = t;
    nets_.emplace(name, info);
    return name;
  }

  const NetInfo* netOf(const std::string& name) const {
    auto it = nets_.find(name);
    return it == nets_.end() ? nullptr : &it->second;
  }

  // ---- expression code generation ----

  std::string exprKey(const Expr* e) {
    std::ostringstream os;
    serialize(e, os);
    return os.str();
  }

  void serialize(const Expr* e, std::ostream& os) {
    os << static_cast<int>(e->kind) << ':';
    switch (e->kind) {
      case Expr::Kind::Const: os << e->value << '#' << e->width; break;
      case Expr::Kind::Id: os << e->name; break;
      default: os << static_cast<int>(e->op); break;
    }
    os << '(';
    for (const auto& a : e->args) {
      serialize(a.get(), os);
      os << ',';
    }
    os << ')';
  }

  Operand constOperand(uint64_t v, Type t) {
    Operand o;
    o.isConst = true;
    o.value = v;
    o.type = t;
    return o;
  }

  Operand signalOperand(const std::string& name, Type t) {
    Operand o;
    o.signal = name;
    o.type = t;
    return o;
  }

  static bool containsNd(const Expr* e) {
    if (e->kind == Expr::Kind::Nd) return true;
    for (const auto& a : e->args)
      if (containsNd(a.get())) return true;
    return false;
  }

  /// Main expression entry point; memoized on the serialized tree.
  /// Nondeterministic expressions are NEVER memoized: every textual $ND is
  /// an independent choice, so two occurrences of "$ND(0,1)" must compile
  /// to two distinct free sources.
  Operand genExpr(const Expr* e) {
    if (containsNd(e)) return genExprUncached(e);
    std::string key = exprKey(e);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    Operand o = genExprUncached(e);
    memo_.emplace(std::move(key), o);
    return o;
  }

  Operand genExprUncached(const Expr* e);
  Operand genBinary(const Expr* e);
  Operand genUnary(const Expr* e);
  Operand genTernary(const Expr* e);
  Operand genNd(const Expr* e);

  /// Emit a table computing `fn` over the (signal) operands, enumerating
  /// their domains; constant operands are folded.
  Operand emitFunctionTable(const std::vector<Operand>& ops, Type resultType,
                            const std::function<uint64_t(const std::vector<uint64_t>&)>& fn,
                            int line);

  /// Coerce an operand to a named signal (materializing constants).
  std::string materialize(const Operand& o, int line);

  static std::string valueToken(const Operand& o, uint64_t v,
                                const std::vector<std::vector<std::string>>& enums) {
    if (o.type.enumId >= 0) return enums[o.type.enumId][v];
    return std::to_string(v);
  }

  std::string valueToken(const Type& t, uint64_t v) const {
    if (t.enumId >= 0) return enums_[t.enumId].at(static_cast<size_t>(v));
    return std::to_string(v);
  }

  // ---- statements ----

  using Env = std::map<std::string, ExprPtr>;

  void execStmt(const Stmt* s, Env& env);

  // ---- module pieces ----

  void compileAssigns();
  void compileAlways();
  void compileInitials(const std::unordered_set<std::string>& latched);
  void compileInstances();
  void emitAlias(const std::string& from, const Type& t, const std::string& to,
                 int line);

  Compiler& parent_;
  const SourceFile& source_;
  const ModuleDecl& decl_;
  std::map<std::string, int64_t> params_;
  blifmv::Design& design_;

  blifmv::Model model_;
  std::unordered_map<std::string, NetInfo> nets_;
  std::vector<std::vector<std::string>> enums_;
  std::unordered_map<std::string, std::pair<int, uint32_t>> enumLiterals_;
  std::unordered_map<std::string, Operand> memo_;
  std::unordered_map<std::string, ExprPtr> nextState_;  // reg -> final expr
  int nextTemp_ = 0;

 public:
  blifmv::Model takeModel() { return std::move(model_); }
};

// ----------------------------------------------------------- expressions

Operand ModuleCompiler::genExprUncached(const Expr* e) {
  switch (e->kind) {
    case Expr::Kind::Const: {
      Type t;
      t.width = e->width > 0 ? e->width : valueWidth(e->value);
      t.domain = widthToDomain(t.width, e->line);
      if (e->value >= t.domain) cgError(e->line, "literal exceeds its width");
      return constOperand(e->value, t);
    }
    case Expr::Kind::Id: {
      if (auto it = params_.find(e->name); it != params_.end()) {
        uint64_t v = static_cast<uint64_t>(it->second);
        Type t;
        t.width = valueWidth(v);
        t.domain = widthToDomain(t.width, e->line);
        return constOperand(v, t);
      }
      if (const NetInfo* n = netOf(e->name)) return signalOperand(e->name, n->type);
      if (auto lit = enumLiteral(e->name)) {
        Type t;
        t.enumId = lit->first;
        t.width = -1;
        t.domain = static_cast<uint32_t>(enums_[lit->first].size());
        return constOperand(lit->second, t);
      }
      cgError(e->line, "unknown identifier " + e->name);
    }
    case Expr::Kind::Unary:
      return genUnary(e);
    case Expr::Kind::Binary:
      return genBinary(e);
    case Expr::Kind::Ternary:
      return genTernary(e);
    case Expr::Kind::Nd:
      return genNd(e);
    case Expr::Kind::Index: {
      Operand base = genExpr(e->args[0].get());
      int64_t idx = evalConst(e->args[1].get());
      if (base.type.isEnum()) cgError(e->line, "cannot index an enum value");
      if (idx < 0 || idx >= base.type.width) cgError(e->line, "index out of range");
      Type t;  // 1 bit
      if (base.isConst) return constOperand((base.value >> idx) & 1u, t);
      return emitFunctionTable(
          {base}, t, [idx](const std::vector<uint64_t>& v) { return (v[0] >> idx) & 1u; },
          e->line);
    }
    case Expr::Kind::Slice: {
      Operand base = genExpr(e->args[0].get());
      int64_t msb = evalConst(e->args[1].get());
      int64_t lsb = evalConst(e->args[2].get());
      if (base.type.isEnum()) cgError(e->line, "cannot slice an enum value");
      if (lsb < 0 || msb < lsb || msb >= base.type.width)
        cgError(e->line, "slice out of range");
      Type t;
      t.width = static_cast<int>(msb - lsb) + 1;
      t.domain = widthToDomain(t.width, e->line);
      uint64_t mask = t.domain - 1;
      if (base.isConst) return constOperand((base.value >> lsb) & mask, t);
      return emitFunctionTable(
          {base}, t,
          [lsb, mask](const std::vector<uint64_t>& v) { return (v[0] >> lsb) & mask; },
          e->line);
    }
    case Expr::Kind::Concat: {
      std::vector<Operand> ops;
      int width = 0;
      for (const auto& a : e->args) {
        Operand o = genExpr(a.get());
        if (o.type.isEnum()) cgError(e->line, "cannot concatenate enum values");
        ops.push_back(o);
        width += o.type.width;
      }
      Type t;
      t.width = width;
      t.domain = widthToDomain(width, e->line);
      std::vector<int> widths;
      for (const Operand& o : ops) widths.push_back(o.type.width);
      return emitFunctionTable(
          ops, t,
          [widths](const std::vector<uint64_t>& v) {
            uint64_t out = 0;
            for (size_t i = 0; i < v.size(); ++i)
              out = (out << widths[i]) | v[i];
            return out;
          },
          e->line);
    }
  }
  cgError(e->line, "unhandled expression");
}

Operand ModuleCompiler::genUnary(const Expr* e) {
  Operand a = genExpr(e->args[0].get());
  if (a.type.isEnum()) cgError(e->line, "operator on enum value");
  Type t = a.type;
  uint64_t mask = a.type.domain - 1;
  std::function<uint64_t(const std::vector<uint64_t>&)> fn;
  switch (e->op) {
    case Tok::Bang:
      t = Type{};  // 1 bit
      fn = [](const std::vector<uint64_t>& v) { return v[0] == 0 ? 1u : 0u; };
      break;
    case Tok::Tilde:
      fn = [mask](const std::vector<uint64_t>& v) { return ~v[0] & mask; };
      break;
    case Tok::Minus:
      fn = [mask](const std::vector<uint64_t>& v) { return (~v[0] + 1) & mask; };
      break;
    default:
      cgError(e->line, "bad unary operator");
  }
  if (a.isConst) return constOperand(fn({a.value}), t);
  return emitFunctionTable({a}, t, fn, e->line);
}

Operand ModuleCompiler::genBinary(const Expr* e) {
  Operand a = genExpr(e->args[0].get());
  Operand b = genExpr(e->args[1].get());
  bool isEqNeq = e->op == Tok::EqEq || e->op == Tok::BangEq;

  if (a.type.isEnum() || b.type.isEnum()) {
    // Enums support only ==/!= against the same enum type.
    if (!isEqNeq || !(a.type == b.type))
      cgError(e->line, "enums support only ==/!= against the same enum");
  } else if (isEqNeq && a.type.domain != b.type.domain) {
    // widen the narrower side conceptually; handled by value comparison
  }

  Type t;  // default: 1-bit result
  int wmax = std::max(a.type.width, b.type.width);
  uint64_t maskMax = (wmax >= 1 && wmax <= 16) ? ((1ull << wmax) - 1) : 1;
  std::function<uint64_t(const std::vector<uint64_t>&)> fn;
  switch (e->op) {
    case Tok::EqEq:
      fn = [](const std::vector<uint64_t>& v) { return v[0] == v[1] ? 1u : 0u; };
      break;
    case Tok::BangEq:
      fn = [](const std::vector<uint64_t>& v) { return v[0] != v[1] ? 1u : 0u; };
      break;
    case Tok::Lt:
      fn = [](const std::vector<uint64_t>& v) { return v[0] < v[1] ? 1u : 0u; };
      break;
    case Tok::Gt:
      fn = [](const std::vector<uint64_t>& v) { return v[0] > v[1] ? 1u : 0u; };
      break;
    case Tok::GtEq:
      fn = [](const std::vector<uint64_t>& v) { return v[0] >= v[1] ? 1u : 0u; };
      break;
    case Tok::NonBlocking:  // '<=' in expression position
      fn = [](const std::vector<uint64_t>& v) { return v[0] <= v[1] ? 1u : 0u; };
      break;
    case Tok::AmpAmp:
      fn = [](const std::vector<uint64_t>& v) {
        return (v[0] != 0 && v[1] != 0) ? 1u : 0u;
      };
      break;
    case Tok::PipePipe:
      fn = [](const std::vector<uint64_t>& v) {
        return (v[0] != 0 || v[1] != 0) ? 1u : 0u;
      };
      break;
    case Tok::Plus:
      t.width = wmax;
      t.domain = widthToDomain(wmax, e->line);
      fn = [maskMax](const std::vector<uint64_t>& v) { return (v[0] + v[1]) & maskMax; };
      break;
    case Tok::Minus:
      t.width = wmax;
      t.domain = widthToDomain(wmax, e->line);
      fn = [maskMax](const std::vector<uint64_t>& v) { return (v[0] - v[1]) & maskMax; };
      break;
    case Tok::Star:
      t.width = wmax;
      t.domain = widthToDomain(wmax, e->line);
      fn = [maskMax](const std::vector<uint64_t>& v) { return (v[0] * v[1]) & maskMax; };
      break;
    case Tok::Slash:
      t.width = wmax;
      t.domain = widthToDomain(wmax, e->line);
      fn = [maskMax](const std::vector<uint64_t>& v) {
        return v[1] == 0 ? 0 : (v[0] / v[1]) & maskMax;
      };
      break;
    case Tok::Percent:
      t.width = wmax;
      t.domain = widthToDomain(wmax, e->line);
      fn = [maskMax](const std::vector<uint64_t>& v) {
        return v[1] == 0 ? 0 : (v[0] % v[1]) & maskMax;
      };
      break;
    case Tok::Amp:
      t.width = wmax;
      t.domain = widthToDomain(wmax, e->line);
      fn = [](const std::vector<uint64_t>& v) { return v[0] & v[1]; };
      break;
    case Tok::Pipe:
      t.width = wmax;
      t.domain = widthToDomain(wmax, e->line);
      fn = [](const std::vector<uint64_t>& v) { return v[0] | v[1]; };
      break;
    case Tok::Caret:
      t.width = wmax;
      t.domain = widthToDomain(wmax, e->line);
      fn = [](const std::vector<uint64_t>& v) { return v[0] ^ v[1]; };
      break;
    case Tok::Shl: {
      t = a.type;
      uint64_t m = a.type.domain - 1;
      fn = [m](const std::vector<uint64_t>& v) {
        return v[1] >= 16 ? 0 : (v[0] << v[1]) & m;
      };
      break;
    }
    case Tok::Shr:
      t = a.type;
      fn = [](const std::vector<uint64_t>& v) {
        return v[1] >= 16 ? 0 : v[0] >> v[1];
      };
      break;
    default:
      cgError(e->line, "bad binary operator");
  }

  if (a.isConst && b.isConst) return constOperand(fn({a.value, b.value}), t);

  // Special compact form for ==/!= between two signals of equal domain:
  // one row per value plus a default, instead of the full cross product.
  if (isEqNeq && !a.isConst && !b.isConst && a.type.domain == b.type.domain) {
    std::string out = freshSignal(t);
    blifmv::Table tab;
    tab.inputs = {a.signal, b.signal};
    tab.output = out;
    bool eq = e->op == Tok::EqEq;
    tab.defaultValue = eq ? "0" : "1";
    for (uint64_t k = 0; k < a.type.domain; ++k) {
      blifmv::Row row;
      row.entries.push_back(blifmv::RowEntry::value(valueToken(a.type, k)));
      row.entries.push_back(blifmv::RowEntry::value(valueToken(b.type, k)));
      row.entries.push_back(blifmv::RowEntry::value(eq ? "1" : "0"));
      tab.rows.push_back(std::move(row));
    }
    model_.tables.push_back(std::move(tab));
    return signalOperand(out, t);
  }
  return emitFunctionTable({a, b}, t, fn, e->line);
}

Operand ModuleCompiler::genTernary(const Expr* e) {
  Operand c = genExpr(e->args[0].get());
  Operand t1 = genExpr(e->args[1].get());
  Operand t2 = genExpr(e->args[2].get());
  if (c.type.isEnum()) cgError(e->line, "ternary condition cannot be an enum");

  Type t;
  if (t1.type.isEnum() || t2.type.isEnum()) {
    if (!(t1.type == t2.type))
      cgError(e->line, "ternary branches have incompatible enum types");
    t = t1.type;
  } else {
    t.width = std::max(t1.type.width, t2.type.width);
    t.domain = widthToDomain(t.width, e->line);
  }
  if (c.isConst) return c.value != 0 ? t1 : t2;

  // Two-row mux using '=' entries.
  std::string out = freshSignal(t);
  blifmv::Table tab;
  tab.inputs.push_back(c.signal);
  auto branchEntry = [&](const Operand& o) -> blifmv::RowEntry {
    if (o.isConst) return blifmv::RowEntry::value(valueToken(t, o.value));
    blifmv::RowEntry re;
    re.kind = blifmv::RowEntry::Kind::Equal;
    re.eqVar = o.signal;
    return re;
  };
  if (!t1.isConst) tab.inputs.push_back(t1.signal);
  if (!t2.isConst && (t1.isConst || t2.signal != t1.signal))
    tab.inputs.push_back(t2.signal);
  tab.output = out;
  size_t nIn = tab.inputs.size();
  {
    blifmv::Row row;
    for (size_t i = 0; i < nIn; ++i) row.entries.push_back(blifmv::RowEntry::any());
    // condition != 0 (condition domain may exceed 2)
    blifmv::RowEntry ce;
    if (c.type.domain == 2) {
      ce = blifmv::RowEntry::value("1");
    } else {
      ce.kind = blifmv::RowEntry::Kind::Complement;
      ce.values = {"0"};
    }
    row.entries[0] = ce;
    row.entries.push_back(branchEntry(t1));
    tab.rows.push_back(std::move(row));
  }
  {
    blifmv::Row row;
    for (size_t i = 0; i < nIn; ++i) row.entries.push_back(blifmv::RowEntry::any());
    row.entries[0] = blifmv::RowEntry::value("0");
    row.entries.push_back(branchEntry(t2));
    tab.rows.push_back(std::move(row));
  }
  model_.tables.push_back(std::move(tab));
  return signalOperand(out, t);
}

Operand ModuleCompiler::genNd(const Expr* e) {
  std::vector<Operand> choices;
  Type t;
  bool first = true;
  for (const auto& a : e->args) {
    Operand o = genExpr(a.get());
    if (first) {
      t = o.type;
      first = false;
    } else if (o.type.isEnum() || t.isEnum()) {
      if (!(o.type == t)) cgError(e->line, "$ND choices of mixed enum types");
    } else {
      t.width = std::max(t.width, o.type.width);
      t.domain = widthToDomain(t.width, e->line);
    }
    choices.push_back(std::move(o));
  }
  std::string out = freshSignal(t);
  blifmv::Table tab;
  tab.output = out;
  // Inputs: every distinct non-constant choice signal.
  std::vector<std::string> ins;
  for (const Operand& o : choices) {
    if (!o.isConst) {
      bool dup = false;
      for (const std::string& s : ins) dup = dup || s == o.signal;
      if (!dup) ins.push_back(o.signal);
    }
  }
  tab.inputs = ins;
  for (const Operand& o : choices) {
    blifmv::Row row;
    for (size_t i = 0; i < ins.size(); ++i)
      row.entries.push_back(blifmv::RowEntry::any());
    if (o.isConst) {
      row.entries.push_back(blifmv::RowEntry::value(valueToken(t, o.value)));
    } else {
      blifmv::RowEntry re;
      re.kind = blifmv::RowEntry::Kind::Equal;
      re.eqVar = o.signal;
      row.entries.push_back(std::move(re));
    }
    tab.rows.push_back(std::move(row));
  }
  model_.tables.push_back(std::move(tab));
  return signalOperand(out, t);
}

Operand ModuleCompiler::emitFunctionTable(
    const std::vector<Operand>& ops, Type resultType,
    const std::function<uint64_t(const std::vector<uint64_t>&)>& fn, int line) {
  // Enumerate the domains of the signal operands; constants stay fixed.
  std::vector<size_t> sigIdx;
  size_t rows = 1;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].isConst) {
      sigIdx.push_back(i);
      rows *= ops[i].type.domain;
    }
  }
  if (rows > kMaxTableRows)
    cgError(line, "operator table too large (" + std::to_string(rows) +
                      " rows); reduce operand widths");

  std::string out = freshSignal(resultType);
  blifmv::Table tab;
  for (size_t i : sigIdx) tab.inputs.push_back(ops[i].signal);
  tab.output = out;

  std::vector<uint64_t> vals(ops.size(), 0);
  for (size_t i = 0; i < ops.size(); ++i)
    if (ops[i].isConst) vals[i] = ops[i].value;

  std::vector<uint64_t> counters(sigIdx.size(), 0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t k = 0; k < sigIdx.size(); ++k) vals[sigIdx[k]] = counters[k];
    uint64_t res = fn(vals);
    blifmv::Row row;
    for (size_t k = 0; k < sigIdx.size(); ++k) {
      row.entries.push_back(
          blifmv::RowEntry::value(valueToken(ops[sigIdx[k]].type, counters[k])));
    }
    if (res >= resultType.domain) cgError(line, "operator result out of range");
    row.entries.push_back(blifmv::RowEntry::value(valueToken(resultType, res)));
    tab.rows.push_back(std::move(row));
    // increment the mixed-radix counter
    for (size_t k = sigIdx.size(); k-- > 0;) {
      if (++counters[k] < ops[sigIdx[k]].type.domain) break;
      counters[k] = 0;
    }
  }
  model_.tables.push_back(std::move(tab));
  return signalOperand(out, resultType);
}

std::string ModuleCompiler::materialize(const Operand& o, int line) {
  if (!o.isConst) return o.signal;
  std::string out = freshSignal(o.type);
  blifmv::Table tab;
  tab.output = out;
  blifmv::Row row;
  row.entries.push_back(blifmv::RowEntry::value(valueToken(o.type, o.value)));
  tab.rows.push_back(std::move(row));
  model_.tables.push_back(std::move(tab));
  (void)line;
  return out;
}

void ModuleCompiler::emitAlias(const std::string& from, const Type& t,
                               const std::string& to, int line) {
  (void)line;
  (void)t;
  blifmv::Table tab;
  tab.inputs = {from};
  tab.output = to;
  blifmv::Row row;
  row.entries.push_back(blifmv::RowEntry::any());
  blifmv::RowEntry re;
  re.kind = blifmv::RowEntry::Kind::Equal;
  re.eqVar = from;
  row.entries.push_back(std::move(re));
  tab.rows.push_back(std::move(row));
  model_.tables.push_back(std::move(tab));
}

// ------------------------------------------------------------ statements

void ModuleCompiler::execStmt(const Stmt* s, Env& env) {
  switch (s->kind) {
    case Stmt::Kind::Block:
      for (const StmtPtr& st : s->stmts) execStmt(st.get(), env);
      return;
    case Stmt::Kind::NonBlocking: {
      const NetInfo* n = netOf(s->lhs);
      if (n == nullptr) cgError(s->line, "assignment to undeclared " + s->lhs);
      env[s->lhs] = cloneExpr(s->rhs.get());
      return;
    }
    case Stmt::Kind::If: {
      // Evaluate the condition once and refer to it by name in the merge.
      Operand c = genExpr(s->cond.get());
      if (c.isConst) {
        if (c.value != 0) {
          execStmt(s->thenS.get(), env);
        } else if (s->elseS != nullptr) {
          execStmt(s->elseS.get(), env);
        }
        return;
      }
      std::string cname = c.signal;
      Env thenEnv, elseEnv;
      for (const auto& [k, v] : env) {
        thenEnv[k] = cloneExpr(v.get());
        elseEnv[k] = cloneExpr(v.get());
      }
      execStmt(s->thenS.get(), thenEnv);
      if (s->elseS != nullptr) execStmt(s->elseS.get(), elseEnv);
      std::unordered_set<std::string> regs;
      for (const auto& [k, _] : thenEnv) regs.insert(k);
      for (const auto& [k, _] : elseEnv) regs.insert(k);
      for (const std::string& r : regs) {
        auto pick = [&](Env& e2) -> ExprPtr {
          auto it = e2.find(r);
          if (it != e2.end()) return std::move(it->second);
          return mkId(r, s->line);  // unassigned: hold present value
        };
        ExprPtr tv = pick(thenEnv);
        ExprPtr ev = pick(elseEnv);
        if (exprKey(tv.get()) == exprKey(ev.get())) {
          env[r] = std::move(tv);
        } else {
          env[r] = mkTernary(mkId(cname, s->line), std::move(tv), std::move(ev));
        }
      }
      return;
    }
    case Stmt::Kind::Case: {
      // Rewrite into an if/else chain on (subject == label).
      Operand subj = genExpr(s->subject.get());
      std::string sname =
          subj.isConst ? materialize(subj, s->line) : subj.signal;
      Type stype = subj.type;
      const Stmt* defaultBody = nullptr;
      // Build nested manually, from the last item backwards.
      struct Arm {
        ExprPtr cond;
        const Stmt* body;
      };
      std::vector<Arm> arms;
      for (const CaseItem& item : s->items) {
        if (item.labels.empty()) {
          defaultBody = item.body.get();
          continue;
        }
        ExprPtr cond;
        for (const ExprPtr& lab : item.labels) {
          auto eq = std::make_unique<Expr>();
          eq->kind = Expr::Kind::Binary;
          eq->op = Tok::EqEq;
          eq->line = s->line;
          eq->args.push_back(mkId(sname, s->line));
          eq->args.push_back(cloneExpr(lab.get()));
          if (cond == nullptr) {
            cond = std::move(eq);
          } else {
            auto orE = std::make_unique<Expr>();
            orE->kind = Expr::Kind::Binary;
            orE->op = Tok::PipePipe;
            orE->line = s->line;
            orE->args.push_back(std::move(cond));
            orE->args.push_back(std::move(eq));
            cond = std::move(orE);
          }
        }
        arms.push_back(Arm{std::move(cond), item.body.get()});
      }
      (void)stype;
      // Fold into env via recursive if-merging, reusing the If machinery.
      std::function<void(size_t, Env&)> rec = [&](size_t i, Env& env2) {
        if (i == arms.size()) {
          if (defaultBody != nullptr) execStmt(defaultBody, env2);
          return;
        }
        Operand c = genExpr(arms[i].cond.get());
        std::string cname = c.isConst ? materialize(c, s->line) : c.signal;
        Env thenEnv, elseEnv;
        for (const auto& [k, v] : env2) {
          thenEnv[k] = cloneExpr(v.get());
          elseEnv[k] = cloneExpr(v.get());
        }
        execStmt(arms[i].body, thenEnv);
        rec(i + 1, elseEnv);
        std::unordered_set<std::string> regs;
        for (const auto& [k, _] : thenEnv) regs.insert(k);
        for (const auto& [k, _] : elseEnv) regs.insert(k);
        for (const std::string& r : regs) {
          auto pick = [&](Env& e2) -> ExprPtr {
            auto it = e2.find(r);
            if (it != e2.end()) return std::move(it->second);
            return mkId(r, s->line);
          };
          ExprPtr tv = pick(thenEnv);
          ExprPtr ev = pick(elseEnv);
          if (exprKey(tv.get()) == exprKey(ev.get())) {
            env2[r] = std::move(tv);
          } else {
            env2[r] = mkTernary(mkId(cname, s->line), std::move(tv), std::move(ev));
          }
        }
      };
      rec(0, env);
      return;
    }
  }
}

// ---------------------------------------------------------- module pieces

void ModuleCompiler::compileAssigns() {
  for (const ContAssign& a : decl_.assigns) {
    const NetInfo* n = netOf(a.lhs);
    if (n == nullptr) cgError(a.line, "assign to undeclared net " + a.lhs);
    Operand o = genExpr(a.rhs.get());
    if (!o.type.isEnum() && !n->type.isEnum() && o.type.domain > n->type.domain)
      cgError(a.line, "assign to " + a.lhs + " loses bits");
    if (o.type.isEnum() != n->type.isEnum() ||
        (o.type.isEnum() && !(o.type == n->type)))
      cgError(a.line, "assign to " + a.lhs + ": enum type mismatch");
    if (o.isConst) {
      blifmv::Table tab;
      tab.output = a.lhs;
      blifmv::Row row;
      row.entries.push_back(blifmv::RowEntry::value(valueToken(n->type, o.value)));
      tab.rows.push_back(std::move(row));
      model_.tables.push_back(std::move(tab));
    } else if (o.type.domain == n->type.domain) {
      emitAlias(o.signal, n->type, a.lhs, a.line);
    } else {
      // widen: enumerate
      blifmv::Table tab;
      tab.inputs = {o.signal};
      tab.output = a.lhs;
      for (uint64_t k = 0; k < o.type.domain; ++k) {
        blifmv::Row row;
        row.entries.push_back(blifmv::RowEntry::value(valueToken(o.type, k)));
        row.entries.push_back(blifmv::RowEntry::value(valueToken(n->type, k)));
        tab.rows.push_back(std::move(row));
      }
      model_.tables.push_back(std::move(tab));
    }
  }
}

void ModuleCompiler::compileAlways() {
  for (const AlwaysBlock& ab : decl_.always) {
    Env env;
    execStmt(ab.body.get(), env);
    for (auto& [reg, expr] : env) {
      if (nextState_.contains(reg))
        cgError(ab.line, "register " + reg + " assigned in two always blocks");
      nextState_[reg] = std::move(expr);
    }
  }
}

void ModuleCompiler::compileInitials(
    const std::unordered_set<std::string>& latched) {
  std::unordered_map<std::string, std::vector<std::string>> resets;
  for (const InitialAssign& ia : decl_.initials) {
    const NetInfo* n = netOf(ia.lhs);
    if (n == nullptr) cgError(ia.line, "initial for undeclared " + ia.lhs);
    std::vector<const Expr*> values;
    if (ia.rhs->kind == Expr::Kind::Nd) {
      for (const ExprPtr& a : ia.rhs->args) values.push_back(a.get());
    } else {
      values.push_back(ia.rhs.get());
    }
    for (const Expr* v : values) {
      int64_t k = evalConst(v);
      if (k < 0 || static_cast<uint64_t>(k) >= n->type.domain)
        cgError(ia.line, "initial value out of domain for " + ia.lhs);
      resets[ia.lhs].push_back(valueToken(n->type, static_cast<uint64_t>(k)));
    }
  }
  for (blifmv::Latch& l : model_.latches) {
    auto it = resets.find(l.output);
    if (it != resets.end()) l.resetValues = it->second;
  }
  for (const auto& [name, vals] : resets) {
    (void)vals;
    if (!latched.contains(name))
      cgError(decl_.line, "initial for " + name +
                              ", which is not assigned in any always block");
  }
}

void ModuleCompiler::compileInstances() {
  for (const Instance& inst : decl_.instances) {
    const ModuleDecl* child = nullptr;
    for (const ModuleDecl& m : source_.modules)
      if (m.name == inst.moduleName) child = &m;
    if (child == nullptr)
      cgError(inst.line, "unknown module " + inst.moduleName);

    // Parameter binding.
    std::map<std::string, int64_t> bound;
    if (!inst.posParams.empty()) {
      if (inst.posParams.size() > child->params.size())
        cgError(inst.line, "too many parameter overrides");
      for (size_t i = 0; i < inst.posParams.size(); ++i)
        bound[child->params[i].name] = evalConst(inst.posParams[i].get());
    }
    for (const auto& [pname, pexpr] : inst.namedParams)
      bound[pname] = evalConst(pexpr.get());

    std::string childModel = parent_.instantiateModule(*child, bound, inst.line);
    const blifmv::Model* childBlif = design_.findModel(childModel);
    assert(childBlif != nullptr);

    // Port connections.
    std::vector<std::pair<std::string, const Expr*>> conns;
    if (!inst.posConns.empty()) {
      if (inst.posConns.size() > child->portOrder.size())
        cgError(inst.line, "too many connections for " + inst.moduleName);
      for (size_t i = 0; i < inst.posConns.size(); ++i)
        conns.emplace_back(child->portOrder[i], inst.posConns[i].get());
    } else {
      for (const auto& [p, e] : inst.namedConns)
        if (e != nullptr) conns.emplace_back(p, e.get());
    }

    blifmv::Subckt sc;
    sc.modelName = childModel;
    sc.instanceName = inst.instName;
    for (const auto& [port, expr] : conns) {
      // Find the port direction in the child.
      const NetDecl* pd = nullptr;
      for (const NetDecl& nd : child->nets)
        if (nd.name == port) pd = &nd;
      if (pd == nullptr || (pd->kind != NetDecl::Kind::Input &&
                            pd->kind != NetDecl::Kind::Output))
        cgError(inst.line, inst.moduleName + " has no port " + port);
      // Elaborated domain of the child-side port.
      const blifmv::VarDecl* portDecl = childBlif->declOf(port);
      uint32_t portDom = portDecl == nullptr ? 2 : portDecl->domain;

      std::string actual;
      if (pd->kind == NetDecl::Kind::Output) {
        if (expr->kind != Expr::Kind::Id || netOf(expr->name) == nullptr)
          cgError(inst.line, "output port " + port + " must connect to a net");
        if (netOf(expr->name)->type.domain != portDom)
          cgError(inst.line, "output port " + port + " domain mismatch");
        actual = expr->name;
      } else {
        Operand o = genExpr(expr);
        if (o.isConst) {
          // Materialize at the child port's domain so flattening agrees.
          if (o.value >= portDom)
            cgError(inst.line, "constant exceeds domain of port " + port);
          Type t;
          t.width = valueWidth(o.value);
          t.domain = portDom;
          std::string sig = freshSignal(t);
          blifmv::Table tab;
          tab.output = sig;
          blifmv::Row row;
          row.entries.push_back(blifmv::RowEntry::value(std::to_string(o.value)));
          tab.rows.push_back(std::move(row));
          model_.tables.push_back(std::move(tab));
          actual = sig;
        } else if (o.type.domain == portDom) {
          actual = o.signal;
        } else if (o.type.domain < portDom) {
          // Widen through an enumeration table.
          Type t;
          t.width = valueWidth(portDom - 1);
          t.domain = portDom;
          std::string sig = freshSignal(t);
          blifmv::Table tab;
          tab.inputs = {o.signal};
          tab.output = sig;
          for (uint64_t k = 0; k < o.type.domain; ++k) {
            blifmv::Row row;
            row.entries.push_back(blifmv::RowEntry::value(valueToken(o.type, k)));
            row.entries.push_back(blifmv::RowEntry::value(std::to_string(k)));
            tab.rows.push_back(std::move(row));
          }
          model_.tables.push_back(std::move(tab));
          actual = sig;
        } else {
          cgError(inst.line, "connection to port " + port + " loses bits");
        }
      }
      sc.connections.emplace_back(port, actual);
    }
    model_.subckts.push_back(std::move(sc));
  }
}

void ModuleCompiler::run() {
  declareNets();

  // Ports.
  for (const std::string& p : decl_.portOrder) {
    const NetInfo& n = nets_.at(p);
    if (n.kind == NetDecl::Kind::Input) {
      model_.inputs.push_back(p);
    } else {
      model_.outputs.push_back(p);
    }
  }

  compileAssigns();
  compileAlways();

  // Registers with a next-state expression become latches.
  std::unordered_set<std::string> latched;
  for (auto& [reg, expr] : nextState_) {
    const NetInfo* n = netOf(reg);
    // Trivial self-assignment keeps the value; still a latch.
    Operand o = genExpr(expr.get());
    std::string in;
    if (o.isConst) {
      in = materialize(o, n->line);
    } else if (o.signal == reg) {
      in = reg;
    } else {
      if (!(o.type.isEnum() == n->type.isEnum()) ||
          (o.type.isEnum() && !(o.type == n->type)) ||
          (!o.type.isEnum() && o.type.domain > n->type.domain))
        cgError(n->line, "next-state expression type mismatch for " + reg);
      if (o.type.domain == n->type.domain) {
        in = o.signal;
      } else {
        // widen through an alias table into a fresh signal of reg's domain
        std::string w = freshSignal(n->type);
        blifmv::Table tab;
        tab.inputs = {o.signal};
        tab.output = w;
        for (uint64_t k = 0; k < o.type.domain; ++k) {
          blifmv::Row row;
          row.entries.push_back(blifmv::RowEntry::value(valueToken(o.type, k)));
          row.entries.push_back(blifmv::RowEntry::value(valueToken(n->type, k)));
          tab.rows.push_back(std::move(row));
        }
        model_.tables.push_back(std::move(tab));
        in = w;
      }
    }
    model_.latches.push_back(blifmv::Latch{in, reg, {}});
    latched.insert(reg);
    // Source-level debugging: remember where the register was declared so
    // error traces can point back into the Verilog (future-work item 7).
    if (n->line > 0) model_.lineInfo[reg] = n->line;
  }

  compileInitials(latched);
  compileInstances();

  design_.models.push_back(takeModel());
}

// ------------------------------------------------------------- Compiler

std::string Compiler::instantiateModule(
    const ModuleDecl& m, const std::map<std::string, int64_t>& paramOverrides,
    int line) {
  // Resolve the full parameter binding: defaults overridden by call site.
  std::map<std::string, int64_t> params;
  {
    // Defaults may reference earlier parameters.
    for (const ParamDecl& p : m.params) {
      auto ov = paramOverrides.find(p.name);
      if (ov != paramOverrides.end()) {
        params[p.name] = ov->second;
        continue;
      }
      // Evaluate the default in the partial environment.
      // A tiny evaluator: reuse ModuleCompiler's via a throwaway instance is
      // overkill; defaults in our subset are plain constants or arithmetic
      // over earlier parameters.
      std::function<int64_t(const Expr*)> ev = [&](const Expr* e) -> int64_t {
        switch (e->kind) {
          case Expr::Kind::Const:
            return static_cast<int64_t>(e->value);
          case Expr::Kind::Id: {
            auto it = params.find(e->name);
            if (it == params.end())
              cgError(e->line, "parameter default references unknown " + e->name);
            return it->second;
          }
          case Expr::Kind::Binary: {
            int64_t a = ev(e->args[0].get());
            int64_t b = ev(e->args[1].get());
            switch (e->op) {
              case Tok::Plus: return a + b;
              case Tok::Minus: return a - b;
              case Tok::Star: return a * b;
              case Tok::Slash: return b == 0 ? 0 : a / b;
              default: cgError(e->line, "unsupported parameter expression");
            }
          }
          default:
            cgError(e->line, "unsupported parameter expression");
        }
      };
      params[p.name] = ev(p.value.get());
    }
  }
  for (const auto& [k, v] : paramOverrides) {
    bool known = false;
    for (const ParamDecl& p : m.params) known = known || p.name == k;
    if (!known) cgError(line, "module " + m.name + " has no parameter " + k);
    params[k] = v;
  }

  std::string key = m.name;
  std::string modelName = m.name;
  for (const auto& [k, v] : params) {
    key += "#" + k + "=" + std::to_string(v);
    bool overridden = paramOverrides.contains(k);
    if (overridden) modelName += "_" + k + std::to_string(v);
  }
  auto it = instantiated_.find(key);
  if (it != instantiated_.end()) return it->second;
  instantiated_.emplace(key, modelName);

  ModuleCompiler mc(*this, m, params, modelName);
  mc.run();
  return modelName;
}

}  // namespace

blifmv::Design compile(const std::string& verilogText,
                       const std::string& topName) {
  SourceFile sf = parseVerilog(verilogText);
  return Compiler(sf).compile(topName);
}

size_t verilogLineCount(const std::string& verilogText) {
  size_t n = 0;
  std::istringstream in(verilogText);
  std::string line;
  bool inBlock = false;
  while (std::getline(in, line)) {
    std::string kept;
    for (size_t i = 0; i < line.size(); ++i) {
      if (inBlock) {
        if (i + 1 < line.size() && line[i] == '*' && line[i + 1] == '/') {
          inBlock = false;
          ++i;
        }
        continue;
      }
      if (i + 1 < line.size() && line[i] == '/' && line[i + 1] == '/') break;
      if (i + 1 < line.size() && line[i] == '/' && line[i + 1] == '*') {
        inBlock = true;
        ++i;
        continue;
      }
      kept.push_back(line[i]);
    }
    if (kept.find_first_not_of(" \t\r") != std::string::npos) ++n;
  }
  return n;
}

}  // namespace hsis::vl2mv
