// Recursive-descent parser for the vl2mv Verilog subset.
#include <stdexcept>

#include "vl2mv/ast.hpp"

namespace hsis::vl2mv {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  SourceFile parse() {
    SourceFile sf;
    while (!at(Tok::End)) {
      expect(Tok::KwModule, "expected 'module'");
      sf.modules.push_back(parseModule());
    }
    return sf;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw std::runtime_error("vl2mv parse error (line " +
                             std::to_string(cur().line) + "): " + msg +
                             " (got '" + describe(cur()) + "')");
  }

  static std::string describe(const Token& t) {
    return t.text.empty() ? tokName(t.kind) : t.text;
  }

  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(size_t k = 1) const {
    size_t p = pos_ + k;
    return p < toks_.size() ? toks_[p] : toks_.back();
  }
  bool at(Tok k) const { return cur().kind == k; }
  Token take() { return toks_[pos_++]; }
  bool accept(Tok k) {
    if (at(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Token expect(Tok k, const std::string& what) {
    if (!at(k)) fail(what);
    return take();
  }
  std::string expectId(const std::string& what) {
    return expect(Tok::Identifier, what).text;
  }

  // ---- module ----

  ModuleDecl parseModule() {
    ModuleDecl m;
    m.line = cur().line;
    m.name = expectId("module name");
    if (accept(Tok::LParen)) {
      if (!at(Tok::RParen)) {
        m.portOrder.push_back(expectId("port name"));
        while (accept(Tok::Comma)) m.portOrder.push_back(expectId("port name"));
      }
      expect(Tok::RParen, "')' after port list");
    }
    expect(Tok::Semi, "';' after module header");

    while (!at(Tok::KwEndmodule)) {
      switch (cur().kind) {
        case Tok::KwParameter: parseParameter(m); break;
        case Tok::KwInput: parseNetDecl(m, NetDecl::Kind::Input); break;
        case Tok::KwOutput: parseNetDecl(m, NetDecl::Kind::Output); break;
        case Tok::KwWire: parseNetDecl(m, NetDecl::Kind::Wire); break;
        case Tok::KwReg: parseNetDecl(m, NetDecl::Kind::Reg); break;
        case Tok::KwEnum: parseEnumDecl(m); break;
        case Tok::KwAssign: parseAssign(m); break;
        case Tok::KwAlways: parseAlways(m); break;
        case Tok::KwInitial: parseInitial(m); break;
        case Tok::Identifier: parseInstance(m); break;
        case Tok::End: fail("unexpected end of file inside module");
        default: fail("unexpected token in module body");
      }
    }
    expect(Tok::KwEndmodule, "'endmodule'");
    return m;
  }

  void parseParameter(ModuleDecl& m) {
    take();  // parameter
    do {
      ParamDecl p;
      p.name = expectId("parameter name");
      expect(Tok::Assign, "'=' in parameter");
      p.value = parseExpr();
      m.params.push_back(std::move(p));
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "';' after parameter");
  }

  void parseNetDecl(ModuleDecl& m, NetDecl::Kind kind) {
    int line = cur().line;
    take();  // input/output/wire/reg
    // "output reg [..]" style
    if (kind == NetDecl::Kind::Output && accept(Tok::KwReg)) {
      // treat as Output; the codegen decides reg-ness by always-assignment
    }
    ExprPtr msb, lsb;
    if (accept(Tok::LBracket)) {
      msb = parseExpr();
      expect(Tok::Colon, "':' in range");
      lsb = parseExpr();
      expect(Tok::RBracket, "']' after range");
    }
    do {
      NetDecl d;
      d.kind = kind;
      d.line = line;
      d.name = expectId("net name");
      d.msb = cloneExpr(msb.get());
      d.lsb = cloneExpr(lsb.get());
      m.nets.push_back(std::move(d));
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "';' after declaration");
  }

  /// enum { a, b, c } name1, name2;   (extension, Section 3 of the paper)
  void parseEnumDecl(ModuleDecl& m) {
    int line = cur().line;
    take();  // enum
    expect(Tok::LBrace, "'{' after enum");
    std::vector<std::string> values;
    values.push_back(expectId("enum value"));
    while (accept(Tok::Comma)) values.push_back(expectId("enum value"));
    expect(Tok::RBrace, "'}' after enum values");
    // optional wire/reg qualifier
    NetDecl::Kind kind = NetDecl::Kind::Reg;
    if (accept(Tok::KwWire)) kind = NetDecl::Kind::Wire;
    else if (accept(Tok::KwReg)) kind = NetDecl::Kind::Reg;
    do {
      NetDecl d;
      d.kind = kind;
      d.line = line;
      d.name = expectId("enum variable name");
      d.enumValues = values;
      m.nets.push_back(std::move(d));
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "';' after enum declaration");
  }

  void parseAssign(ModuleDecl& m) {
    take();  // assign
    do {
      ContAssign a;
      a.line = cur().line;
      a.lhs = expectId("assign target");
      expect(Tok::Assign, "'=' in assign");
      a.rhs = parseExpr();
      m.assigns.push_back(std::move(a));
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "';' after assign");
  }

  void parseAlways(ModuleDecl& m) {
    AlwaysBlock ab;
    ab.line = cur().line;
    take();  // always
    expect(Tok::At, "'@' after always");
    expect(Tok::LParen, "'(' after '@'");
    if (!accept(Tok::KwPosedge)) accept(Tok::KwNegedge);
    expectId("clock signal");  // clock identity is ignored: one global clock
    expect(Tok::RParen, "')' after sensitivity list");
    ab.body = parseStmt();
    m.always.push_back(std::move(ab));
  }

  void parseInitial(ModuleDecl& m) {
    int line = cur().line;
    take();  // initial
    if (accept(Tok::KwBegin)) {
      while (!accept(Tok::KwEnd)) m.initials.push_back(parseInitialAssign(line));
    } else {
      m.initials.push_back(parseInitialAssign(line));
    }
  }

  InitialAssign parseInitialAssign(int line) {
    InitialAssign ia;
    ia.line = line;
    ia.lhs = expectId("initial target");
    if (!accept(Tok::Assign)) expect(Tok::NonBlocking, "'=' in initial");
    ia.rhs = parseExpr();
    expect(Tok::Semi, "';' after initial assignment");
    return ia;
  }

  void parseInstance(ModuleDecl& m) {
    Instance inst;
    inst.line = cur().line;
    inst.moduleName = expectId("module name");
    if (accept(Tok::Hash)) {
      expect(Tok::LParen, "'(' after '#'");
      if (at(Tok::Dot)) {
        do {
          expect(Tok::Dot, "'.'");
          std::string pname = expectId("parameter name");
          expect(Tok::LParen, "'('");
          inst.namedParams.emplace_back(pname, parseExpr());
          expect(Tok::RParen, "')'");
        } while (accept(Tok::Comma));
      } else if (!at(Tok::RParen)) {
        inst.posParams.push_back(parseExpr());
        while (accept(Tok::Comma)) inst.posParams.push_back(parseExpr());
      }
      expect(Tok::RParen, "')' after parameter overrides");
    }
    inst.instName = expectId("instance name");
    expect(Tok::LParen, "'(' after instance name");
    if (!at(Tok::RParen)) {
      if (at(Tok::Dot)) {
        do {
          expect(Tok::Dot, "'.'");
          std::string pname = expectId("port name");
          expect(Tok::LParen, "'('");
          ExprPtr e;
          if (!at(Tok::RParen)) e = parseExpr();
          expect(Tok::RParen, "')'");
          inst.namedConns.emplace_back(pname, std::move(e));
        } while (accept(Tok::Comma));
      } else {
        inst.posConns.push_back(parseExpr());
        while (accept(Tok::Comma)) inst.posConns.push_back(parseExpr());
      }
    }
    expect(Tok::RParen, "')' after connections");
    expect(Tok::Semi, "';' after instance");
    m.instances.push_back(std::move(inst));
  }

  // ---- statements ----

  StmtPtr parseStmt() {
    auto s = std::make_unique<Stmt>();
    s->line = cur().line;
    if (accept(Tok::KwBegin)) {
      s->kind = Stmt::Kind::Block;
      while (!accept(Tok::KwEnd)) s->stmts.push_back(parseStmt());
      return s;
    }
    if (accept(Tok::KwIf)) {
      s->kind = Stmt::Kind::If;
      expect(Tok::LParen, "'(' after if");
      s->cond = parseExpr();
      expect(Tok::RParen, "')' after condition");
      s->thenS = parseStmt();
      if (accept(Tok::KwElse)) s->elseS = parseStmt();
      return s;
    }
    if (accept(Tok::KwCase)) {
      s->kind = Stmt::Kind::Case;
      expect(Tok::LParen, "'(' after case");
      s->subject = parseExpr();
      expect(Tok::RParen, "')' after case subject");
      while (!at(Tok::KwEndcase)) {
        CaseItem item;
        if (accept(Tok::KwDefault)) {
          accept(Tok::Colon);
        } else {
          item.labels.push_back(parseExpr());
          while (accept(Tok::Comma)) item.labels.push_back(parseExpr());
          expect(Tok::Colon, "':' after case label");
        }
        item.body = parseStmt();
        s->items.push_back(std::move(item));
      }
      expect(Tok::KwEndcase, "'endcase'");
      return s;
    }
    // nonblocking assignment: id <= expr ;
    s->kind = Stmt::Kind::NonBlocking;
    s->lhs = expectId("assignment target");
    if (!accept(Tok::NonBlocking)) expect(Tok::Assign, "'<=' in always block");
    s->rhs = parseExpr();
    expect(Tok::Semi, "';' after assignment");
    return s;
  }

  // ---- expressions (precedence climbing) ----

  static ExprPtr cloneExpr(const Expr* e) {
    if (e == nullptr) return nullptr;
    auto c = std::make_unique<Expr>();
    c->kind = e->kind;
    c->value = e->value;
    c->width = e->width;
    c->name = e->name;
    c->op = e->op;
    c->line = e->line;
    for (const auto& a : e->args) c->args.push_back(cloneExpr(a.get()));
    return c;
  }

  static int precOf(Tok t) {
    switch (t) {
      case Tok::PipePipe: return 1;
      case Tok::AmpAmp: return 2;
      case Tok::Pipe: return 3;
      case Tok::Caret: return 4;
      case Tok::Amp: return 5;
      case Tok::EqEq:
      case Tok::BangEq: return 6;
      case Tok::Lt:
      case Tok::Gt:
      case Tok::GtEq:
      case Tok::NonBlocking: return 7;  // '<=' as less-equal inside exprs
      case Tok::Shl:
      case Tok::Shr: return 8;
      case Tok::Plus:
      case Tok::Minus: return 9;
      case Tok::Star:
      case Tok::Slash:
      case Tok::Percent: return 10;
      default: return -1;
    }
  }

  ExprPtr parseExpr() { return parseTernary(); }

  ExprPtr parseTernary() {
    ExprPtr c = parseBinary(1);
    if (accept(Tok::Question)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Ternary;
      e->line = cur().line;
      e->args.push_back(std::move(c));
      e->args.push_back(parseTernary());
      expect(Tok::Colon, "':' in ternary");
      e->args.push_back(parseTernary());
      return e;
    }
    return c;
  }

  ExprPtr parseBinary(int minPrec) {
    ExprPtr lhs = parseUnary();
    while (true) {
      int p = precOf(cur().kind);
      if (p < minPrec) break;
      Tok op = take().kind;
      ExprPtr rhs = parseBinary(p + 1);
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Binary;
      e->op = op;
      e->line = cur().line;
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parseUnary() {
    if (at(Tok::Bang) || at(Tok::Tilde) || at(Tok::Minus)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Unary;
      e->op = take().kind;
      e->line = cur().line;
      e->args.push_back(parseUnary());
      return e;
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr base = parsePrimary();
    while (accept(Tok::LBracket)) {
      ExprPtr first = parseExpr();
      auto e = std::make_unique<Expr>();
      e->line = cur().line;
      e->args.push_back(std::move(base));
      if (accept(Tok::Colon)) {
        e->kind = Expr::Kind::Slice;
        e->args.push_back(std::move(first));
        e->args.push_back(parseExpr());
      } else {
        e->kind = Expr::Kind::Index;
        e->args.push_back(std::move(first));
      }
      expect(Tok::RBracket, "']'");
      base = std::move(e);
    }
    return base;
  }

  ExprPtr parsePrimary() {
    auto e = std::make_unique<Expr>();
    e->line = cur().line;
    if (at(Tok::Number)) {
      Token t = take();
      e->kind = Expr::Kind::Const;
      e->value = t.value;
      e->width = t.width;
      return e;
    }
    if (at(Tok::Identifier)) {
      e->kind = Expr::Kind::Id;
      e->name = take().text;
      return e;
    }
    if (accept(Tok::KwNd)) {
      e->kind = Expr::Kind::Nd;
      expect(Tok::LParen, "'(' after $ND");
      e->args.push_back(parseExpr());
      while (accept(Tok::Comma)) e->args.push_back(parseExpr());
      expect(Tok::RParen, "')' after $ND");
      return e;
    }
    if (accept(Tok::LBrace)) {
      e->kind = Expr::Kind::Concat;
      e->args.push_back(parseExpr());
      while (accept(Tok::Comma)) e->args.push_back(parseExpr());
      expect(Tok::RBrace, "'}' after concatenation");
      return e;
    }
    if (accept(Tok::LParen)) {
      ExprPtr inner = parseExpr();
      expect(Tok::RParen, "')'");
      return inner;
    }
    fail("expected expression");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

SourceFile parseVerilog(const std::string& text) {
  return Parser(lex(text)).parse();
}

}  // namespace hsis::vl2mv
