// vl2mv: compile the HSIS Verilog subset into BLIF-MV [Cheng, 1994].
//
// Supported language (see docs in README):
//  - modules, ports, parameters (with #(...) overrides), wire/reg with bit
//    ranges, enumerated types ("enum { idle, busy } state;"),
//  - assign with the full expression language (logical, bitwise, relational,
//    arithmetic, shifts, ternary, constant bit-select/slice, concatenation),
//  - always @(posedge clk) with non-blocking assignments, if/else,
//    case/default,
//  - initial assignments for reset values,
//  - $ND(e1,...,ek): non-deterministic choice (Balarin-York style), usable
//    in assigns, always blocks, and initial (giving a set of reset values).
//
// Compilation is structural: every operator becomes a small multi-valued
// table and a fresh intermediate signal — exactly the "many small tables
// and intermediate variables" regime the paper's early-quantification
// machinery is designed for.
#pragma once

#include <string>

#include "blifmv/blifmv.hpp"

namespace hsis::vl2mv {

/// Compile Verilog text to a hierarchical BLIF-MV design. `topName` selects
/// the root module (default: the first module in the file). Throws
/// std::runtime_error with line information on errors.
blifmv::Design compile(const std::string& verilogText,
                       const std::string& topName = "");

/// Number of non-blank, non-comment source lines (Table 1's "# lines
/// Verilog" statistic).
size_t verilogLineCount(const std::string& verilogText);

}  // namespace hsis::vl2mv
