// Lexer for the synthesizable Verilog subset of HSIS (vl2mv front end).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsis::vl2mv {

enum class Tok : uint8_t {
  End,
  Identifier,
  Number,     ///< decimal or based literal, value in Token::value
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Colon, Dot, Hash, At, Question,
  // operators
  Assign,        // =
  NonBlocking,   // <=  (also less-equal; parser disambiguates by context)
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  AmpAmp, PipePipe,
  EqEq, BangEq, Lt, Gt, GtEq,
  Shl, Shr,
  // keywords
  KwModule, KwEndmodule, KwInput, KwOutput, KwWire, KwReg, KwAssign,
  KwAlways, KwPosedge, KwNegedge, KwIf, KwElse, KwBegin, KwEnd,
  KwCase, KwEndcase, KwDefault, KwInitial, KwParameter, KwEnum,
  KwNd,  ///< $ND
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  uint64_t value = 0;   ///< for numbers
  int width = -1;       ///< for sized literals (4'b0101 -> 4), else -1
  int line = 1;
};

struct LexError {
  std::string message;
  int line;
};

/// Tokenize; throws std::runtime_error with line info on bad input.
std::vector<Token> lex(const std::string& text);

const char* tokName(Tok t);

}  // namespace hsis::vl2mv
