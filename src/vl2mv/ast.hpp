// AST for the vl2mv Verilog subset (synthesizable Verilog extended with
// $ND non-determinism and enumerated types, per the paper's Section 3).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vl2mv/lexer.hpp"

namespace hsis::vl2mv {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : uint8_t {
    Const,    ///< number (value, width)
    Id,       ///< identifier (net, parameter, or enum literal)
    Unary,    ///< op args[0]
    Binary,   ///< args[0] op args[1]
    Ternary,  ///< args[0] ? args[1] : args[2]
    Index,    ///< args[0] [ args[1] ]  (args[1] must elaborate to a constant)
    Slice,    ///< args[0] [ args[1] : args[2] ]
    Concat,   ///< { args... }
    Nd,       ///< $ND(args...) — nondeterministic choice
  };
  Kind kind = Kind::Const;
  uint64_t value = 0;  ///< Const
  int width = -1;      ///< Const: declared width (4'b.. -> 4), -1 if bare
  std::string name;    ///< Id
  Tok op = Tok::End;   ///< Unary/Binary
  std::vector<ExprPtr> args;
  int line = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct CaseItem {
  std::vector<ExprPtr> labels;  ///< empty == default
  StmtPtr body;
};

struct Stmt {
  enum class Kind : uint8_t { NonBlocking, If, Case, Block };
  Kind kind = Kind::Block;
  // NonBlocking
  std::string lhs;
  ExprPtr rhs;
  // If
  ExprPtr cond;
  StmtPtr thenS, elseS;
  // Case
  ExprPtr subject;
  std::vector<CaseItem> items;
  // Block
  std::vector<StmtPtr> stmts;
  int line = 0;
};

struct NetDecl {
  enum class Kind : uint8_t { Input, Output, Wire, Reg };
  Kind kind = Kind::Wire;
  std::string name;
  ExprPtr msb, lsb;                    ///< null for scalar
  std::vector<std::string> enumValues; ///< non-empty: enumerated type
  int line = 0;
};

struct ParamDecl {
  std::string name;
  ExprPtr value;
};

struct ContAssign {
  std::string lhs;
  ExprPtr rhs;
  int line = 0;
};

struct AlwaysBlock {
  StmtPtr body;
  int line = 0;
};

/// `initial r = expr;` — expr must fold to constant(s); $ND yields a set.
struct InitialAssign {
  std::string lhs;
  ExprPtr rhs;
  int line = 0;
};

struct Instance {
  std::string moduleName;
  std::string instName;
  /// named connections .port(expr); empty `second` means unconnected
  std::vector<std::pair<std::string, ExprPtr>> namedConns;
  std::vector<ExprPtr> posConns;  ///< positional, used when namedConns empty
  std::vector<std::pair<std::string, ExprPtr>> namedParams;
  std::vector<ExprPtr> posParams;
  int line = 0;
};

struct ModuleDecl {
  std::string name;
  std::vector<std::string> portOrder;
  std::vector<ParamDecl> params;
  std::vector<NetDecl> nets;
  std::vector<ContAssign> assigns;
  std::vector<AlwaysBlock> always;
  std::vector<InitialAssign> initials;
  std::vector<Instance> instances;
  int line = 0;
};

struct SourceFile {
  std::vector<ModuleDecl> modules;
};

/// Parse Verilog source; throws std::runtime_error with line info.
SourceFile parseVerilog(const std::string& text);

}  // namespace hsis::vl2mv
