#include "vl2mv/lexer.hpp"

#include <cctype>
#include <stdexcept>
#include <unordered_map>

namespace hsis::vl2mv {

namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kw = {
      {"module", Tok::KwModule},       {"endmodule", Tok::KwEndmodule},
      {"input", Tok::KwInput},         {"output", Tok::KwOutput},
      {"wire", Tok::KwWire},           {"reg", Tok::KwReg},
      {"assign", Tok::KwAssign},       {"always", Tok::KwAlways},
      {"posedge", Tok::KwPosedge},     {"negedge", Tok::KwNegedge},
      {"if", Tok::KwIf},               {"else", Tok::KwElse},
      {"begin", Tok::KwBegin},         {"end", Tok::KwEnd},
      {"case", Tok::KwCase},           {"endcase", Tok::KwEndcase},
      {"default", Tok::KwDefault},     {"initial", Tok::KwInitial},
      {"parameter", Tok::KwParameter}, {"enum", Tok::KwEnum},
  };
  return kw;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("vl2mv lex error (line " + std::to_string(line) +
                           "): " + msg);
}

}  // namespace

std::vector<Token> lex(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  size_t n = text.size();

  auto peek = [&](size_t k = 0) -> char {
    return i + k < n ? text[i + k] : '\0';
  };

  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // comments
    if (c == '/' && peek(1) == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) fail(line, "unterminated block comment");
      i += 2;
      continue;
    }

    Token t;
    t.line = line;

    // identifiers / keywords / $ND
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '$') {
      size_t start = i;
      ++i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) != 0 ||
                       text[i] == '_' || text[i] == '$')) {
        ++i;
      }
      t.text = text.substr(start, i - start);
      if (t.text == "$ND" || t.text == "$nd") {
        t.kind = Tok::KwNd;
      } else if (auto it = keywords().find(t.text); it != keywords().end()) {
        t.kind = it->second;
      } else {
        if (t.text[0] == '$') fail(line, "unknown system task " + t.text);
        t.kind = Tok::Identifier;
      }
      out.push_back(std::move(t));
      continue;
    }

    // numbers: 12, 4'b1010, 8'hff, 3'd5, 'b01
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '\'') {
      uint64_t firstNum = 0;
      bool haveFirst = false;
      size_t save = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
        firstNum = firstNum * 10 + static_cast<uint64_t>(text[i] - '0');
        haveFirst = true;
        ++i;
      }
      if (i < n && text[i] == '\'') {
        ++i;
        if (i >= n) fail(line, "dangling ' in literal");
        char base = static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
        ++i;
        int radix = 0;
        switch (base) {
          case 'b': radix = 2; break;
          case 'o': radix = 8; break;
          case 'd': radix = 10; break;
          case 'h': radix = 16; break;
          default: fail(line, std::string("bad base '") + base + "' in literal");
        }
        uint64_t val = 0;
        bool any = false;
        while (i < n) {
          char d = static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
          int dv;
          if (d >= '0' && d <= '9') {
            dv = d - '0';
          } else if (d >= 'a' && d <= 'f') {
            dv = d - 'a' + 10;
          } else if (d == '_') {
            ++i;
            continue;
          } else {
            break;
          }
          if (dv >= radix) break;
          val = val * static_cast<uint64_t>(radix) + static_cast<uint64_t>(dv);
          any = true;
          ++i;
        }
        if (!any) fail(line, "empty digits in based literal");
        t.kind = Tok::Number;
        t.value = val;
        t.width = haveFirst ? static_cast<int>(firstNum) : -1;
        t.text = text.substr(save, i - save);
        out.push_back(std::move(t));
        continue;
      }
      t.kind = Tok::Number;
      t.value = firstNum;
      t.text = text.substr(save, i - save);
      out.push_back(std::move(t));
      continue;
    }

    // operators / punctuation
    auto two = [&](char a, char b) { return c == a && peek(1) == b; };
    if (two('&', '&')) { t.kind = Tok::AmpAmp; i += 2; }
    else if (two('|', '|')) { t.kind = Tok::PipePipe; i += 2; }
    else if (two('=', '=')) { t.kind = Tok::EqEq; i += 2; }
    else if (two('!', '=')) { t.kind = Tok::BangEq; i += 2; }
    else if (two('<', '=')) { t.kind = Tok::NonBlocking; i += 2; }
    else if (two('>', '=')) { t.kind = Tok::GtEq; i += 2; }
    else if (two('<', '<')) { t.kind = Tok::Shl; i += 2; }
    else if (two('>', '>')) { t.kind = Tok::Shr; i += 2; }
    else {
      ++i;
      switch (c) {
        case '(': t.kind = Tok::LParen; break;
        case ')': t.kind = Tok::RParen; break;
        case '{': t.kind = Tok::LBrace; break;
        case '}': t.kind = Tok::RBrace; break;
        case '[': t.kind = Tok::LBracket; break;
        case ']': t.kind = Tok::RBracket; break;
        case ';': t.kind = Tok::Semi; break;
        case ',': t.kind = Tok::Comma; break;
        case ':': t.kind = Tok::Colon; break;
        case '.': t.kind = Tok::Dot; break;
        case '#': t.kind = Tok::Hash; break;
        case '@': t.kind = Tok::At; break;
        case '?': t.kind = Tok::Question; break;
        case '=': t.kind = Tok::Assign; break;
        case '+': t.kind = Tok::Plus; break;
        case '-': t.kind = Tok::Minus; break;
        case '*': t.kind = Tok::Star; break;
        case '/': t.kind = Tok::Slash; break;
        case '%': t.kind = Tok::Percent; break;
        case '&': t.kind = Tok::Amp; break;
        case '|': t.kind = Tok::Pipe; break;
        case '^': t.kind = Tok::Caret; break;
        case '~': t.kind = Tok::Tilde; break;
        case '!': t.kind = Tok::Bang; break;
        case '<': t.kind = Tok::Lt; break;
        case '>': t.kind = Tok::Gt; break;
        default:
          fail(line, std::string("unexpected character '") + c + "'");
      }
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.kind = Tok::End;
  end.line = line;
  out.push_back(end);
  return out;
}

const char* tokName(Tok t) {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Identifier: return "identifier";
    case Tok::Number: return "number";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Semi: return ";";
    case Tok::Comma: return ",";
    case Tok::Colon: return ":";
    case Tok::Dot: return ".";
    case Tok::Hash: return "#";
    case Tok::At: return "@";
    case Tok::Question: return "?";
    case Tok::Assign: return "=";
    case Tok::NonBlocking: return "<=";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Percent: return "%";
    case Tok::Amp: return "&";
    case Tok::Pipe: return "|";
    case Tok::Caret: return "^";
    case Tok::Tilde: return "~";
    case Tok::Bang: return "!";
    case Tok::AmpAmp: return "&&";
    case Tok::PipePipe: return "||";
    case Tok::EqEq: return "==";
    case Tok::BangEq: return "!=";
    case Tok::Lt: return "<";
    case Tok::Gt: return ">";
    case Tok::GtEq: return ">=";
    case Tok::Shl: return "<<";
    case Tok::Shr: return ">>";
    case Tok::KwModule: return "module";
    case Tok::KwEndmodule: return "endmodule";
    case Tok::KwInput: return "input";
    case Tok::KwOutput: return "output";
    case Tok::KwWire: return "wire";
    case Tok::KwReg: return "reg";
    case Tok::KwAssign: return "assign";
    case Tok::KwAlways: return "always";
    case Tok::KwPosedge: return "posedge";
    case Tok::KwNegedge: return "negedge";
    case Tok::KwIf: return "if";
    case Tok::KwElse: return "else";
    case Tok::KwBegin: return "begin";
    case Tok::KwEnd: return "end";
    case Tok::KwCase: return "case";
    case Tok::KwEndcase: return "endcase";
    case Tok::KwDefault: return "default";
    case Tok::KwInitial: return "initial";
    case Tok::KwParameter: return "parameter";
    case Tok::KwEnum: return "enum";
    case Tok::KwNd: return "$ND";
  }
  return "?";
}

}  // namespace hsis::vl2mv
