// State-based simulator (paper Section 1, feature 4): enumerates the
// reachable states of the design under user control — single steps with
// explicit successor choice, random walks, and bounded breadth-first
// enumeration.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fsm/image.hpp"

namespace hsis {

class Simulator {
 public:
  Simulator(const Fsm& fsm, const TransitionRelation& tr, uint64_t seed = 1);

  /// Return to an initial state (the first one, deterministically).
  void reset();

  /// Teleport to an explicit state (an assignment cube over the
  /// present-state variables, as carried by Trace::states). Returns false
  /// when the cube does not encode a well-formed state. Resets stepsTaken.
  bool setState(const std::vector<int8_t>& cube);
  /// Step to the given explicit successor. Returns false when the
  /// transition current -> next is not admissible under the transition
  /// relation — the primitive behind counterexample replay (hsis_cex).
  bool stepTo(const std::vector<int8_t>& next);

  [[nodiscard]] const std::vector<int8_t>& currentState() const { return current_; }
  [[nodiscard]] std::string show() const;

  /// Distinct successor states of the current state, up to `limit`.
  [[nodiscard]] std::vector<std::vector<int8_t>> successors(size_t limit = 16) const;

  /// Step to the given successor (index into successors()). Returns false
  /// if out of range or the state is a deadlock.
  bool step(size_t choice);
  /// Step to a pseudo-random successor. Returns false on deadlock.
  bool randomStep();
  /// Run a random walk; returns the number of steps taken (may stop early
  /// at a deadlock).
  size_t randomWalk(size_t steps);

  /// Breadth-first enumeration from the initial states: calls `visit` for
  /// every distinct reachable state until `maxStates` states were reported
  /// or the state space is exhausted. Returns the number visited.
  size_t enumerate(size_t maxStates,
                   const std::function<void(const std::vector<int8_t>&)>& visit) const;

  /// Total reachable state count (full symbolic reachability).
  [[nodiscard]] double reachableCount() const;

  [[nodiscard]] size_t stepsTaken() const { return steps_; }

 private:
  /// Enumerate up to `limit` distinct states of a set.
  std::vector<std::vector<int8_t>> statesOf(const Bdd& set, size_t limit) const;
  uint64_t nextRandom();

  const Fsm* fsm_;
  const TransitionRelation* tr_;
  std::vector<int8_t> current_;
  uint64_t rng_;
  size_t steps_ = 0;
};

}  // namespace hsis
