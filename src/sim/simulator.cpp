#include "sim/simulator.hpp"

#include "fsm/trace.hpp"

namespace hsis {

Simulator::Simulator(const Fsm& fsm, const TransitionRelation& tr, uint64_t seed)
    : fsm_(&fsm), tr_(&tr), rng_(seed == 0 ? 1 : seed) {
  reset();
}

uint64_t Simulator::nextRandom() {
  // xorshift64*
  rng_ ^= rng_ >> 12;
  rng_ ^= rng_ << 25;
  rng_ ^= rng_ >> 27;
  return rng_ * 0x2545F4914F6CDD1Dull;
}

void Simulator::reset() {
  current_ = concretizeState(*fsm_, fsm_->initialStates());
  steps_ = 0;
}

std::string Simulator::show() const { return fsm_->formatState(current_); }

bool Simulator::setState(const std::vector<int8_t>& cube) {
  Bdd s = fsm_->stateFromValues(fsm_->decodeState(cube));
  if (s.isZero()) return false;
  current_ = concretizeState(*fsm_, s);
  steps_ = 0;
  return true;
}

bool Simulator::stepTo(const std::vector<int8_t>& next) {
  Bdd cur = fsm_->stateFromValues(fsm_->decodeState(current_));
  Bdd nxt = fsm_->stateFromValues(fsm_->decodeState(next));
  if (nxt.isZero() || (tr_->image(cur) & nxt).isZero()) return false;
  current_ = concretizeState(*fsm_, nxt);
  ++steps_;
  return true;
}

std::vector<std::vector<int8_t>> Simulator::statesOf(const Bdd& set,
                                                     size_t limit) const {
  std::vector<std::vector<int8_t>> out;
  Bdd rest = set;
  while (!rest.isZero() && out.size() < limit) {
    std::vector<int8_t> s = concretizeState(*fsm_, rest);
    out.push_back(s);
    rest &= !fsm_->stateFromValues(fsm_->decodeState(s));
  }
  return out;
}

std::vector<std::vector<int8_t>> Simulator::successors(size_t limit) const {
  Bdd cur = fsm_->stateFromValues(fsm_->decodeState(current_));
  return statesOf(tr_->image(cur), limit);
}

bool Simulator::step(size_t choice) {
  std::vector<std::vector<int8_t>> succ = successors(choice + 1);
  if (choice >= succ.size()) return false;
  current_ = succ[choice];
  ++steps_;
  return true;
}

bool Simulator::randomStep() {
  std::vector<std::vector<int8_t>> succ = successors(64);
  if (succ.empty()) return false;
  current_ = succ[nextRandom() % succ.size()];
  ++steps_;
  return true;
}

size_t Simulator::randomWalk(size_t steps) {
  size_t taken = 0;
  for (size_t i = 0; i < steps; ++i) {
    if (!randomStep()) break;
    ++taken;
  }
  return taken;
}

size_t Simulator::enumerate(
    size_t maxStates,
    const std::function<void(const std::vector<int8_t>&)>& visit) const {
  size_t count = 0;
  Bdd frontier = fsm_->initialStates();
  Bdd seen = frontier;
  while (!frontier.isZero() && count < maxStates) {
    for (const std::vector<int8_t>& s : statesOf(frontier, maxStates - count)) {
      visit(s);
      ++count;
      if (count >= maxStates) return count;
    }
    Bdd next = tr_->image(frontier) & !seen;
    seen |= next;
    frontier = next;
  }
  return count;
}

double Simulator::reachableCount() const {
  ReachResult r = reachableStates(*tr_, fsm_->initialStates());
  return fsm_->countStates(r.reached);
}

}  // namespace hsis
