// Image and preimage computation over the product transition relation,
// in monolithic form (T(x,y) built once via early quantification) or in
// partitioned form (clustered conjuncts, never forming the full product —
// the paper's future-work item 4, implemented here).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "bdd/bdd.hpp"
#include "fsm/fsm.hpp"
#include "fsm/quantify.hpp"

namespace hsis {

class TransitionRelation {
 public:
  /// Build the monolithic T(x,y) = ∃ nonstate . ∏ relations.
  static TransitionRelation monolithic(const Fsm& fsm,
                                       QuantMethod method = QuantMethod::Greedy,
                                       QuantExecStats* stats = nullptr);

  /// Cluster the conjuncts so that no cluster BDD exceeds `clusterLimit`
  /// nodes; non-state variables local to one cluster are quantified inside
  /// it, the rest during image computation.
  static TransitionRelation partitioned(const Fsm& fsm,
                                        size_t clusterLimit = 5000);

  /// Replicate `src` against an already-transferred Fsm (same transfer, so
  /// variable ids line up): clusters and quantification schedules are
  /// structurally copied, preserving the cluster decomposition exactly.
  static TransitionRelation transferred(const Fsm& dstFsm, BddTransfer& tx,
                                        const TransitionRelation& src);

  /// Successor states: img(S)(x) = (∃x,i. T ∧ S)[y := x].
  [[nodiscard]] Bdd image(const Bdd& statesX) const;
  /// Predecessor states: pre(S)(x) = ∃y,i. T ∧ S[x := y].
  [[nodiscard]] Bdd preimage(const Bdd& statesX) const;

  /// Restrict every cluster to a care set over present-state variables
  /// (don't-care minimization; see DESIGN.md §2 item 3). Returns a new TR.
  [[nodiscard]] TransitionRelation minimized(const Bdd& careStatesX) const;

  [[nodiscard]] bool isMonolithic() const { return clusters_.size() == 1; }
  [[nodiscard]] const Bdd& monolithicRelation() const;
  [[nodiscard]] size_t clusterCount() const { return clusters_.size(); }
  [[nodiscard]] const std::vector<Bdd>& clusters() const { return clusters_; }
  [[nodiscard]] size_t totalNodes() const;
  [[nodiscard]] const Fsm& fsm() const { return *fsm_; }

 private:
  explicit TransitionRelation(const Fsm& fsm) : fsm_(&fsm) {}
  void computeStepCubes();

  const Fsm* fsm_;
  std::vector<Bdd> clusters_;
  /// imgCubes_[i]: variables (present-state + residual non-state) to
  /// quantify right after conjoining cluster i during image computation.
  std::vector<Bdd> imgCubes_;
  /// preCubes_[i]: ditto for preimage (next-state + residual non-state).
  std::vector<Bdd> preCubes_;
};

/// Breadth-first reachability.
struct ReachOptions {
  bool keepOnionRings = false;
  /// Called after each frontier step with the newly reached states and the
  /// step index; return true to stop early (early failure detection).
  std::function<bool(const Bdd& frontier, size_t depth)> watch;
  /// If nonzero, stop after this many steps (bounded reachability).
  size_t maxSteps = 0;
  /// Record per-depth *state* counts of each frontier (the hsis_cov
  /// frontier time series): frontierStates[d] = states first reached at
  /// depth d, via Fsm::countStates. One extra linear walk per step, the
  /// same order of cost as the frontier node counts already recorded;
  /// off by default so bounded/early-exit callers pay nothing.
  bool recordFrontierStates = false;
};

struct ReachResult {
  Bdd reached;
  std::vector<Bdd> onionRings;  ///< rings[d] = states first reached at depth d
  /// New-state count per depth (recordFrontierStates); sums to the total
  /// reachable state count when the fixpoint ran to completion.
  std::vector<double> frontierStates;
  size_t depth = 0;
  bool stoppedEarly = false;
};

ReachResult reachableStates(const TransitionRelation& tr, const Bdd& init,
                            const ReachOptions& opts = {});

}  // namespace hsis
