#include "fsm/trace.hpp"

#include <map>
#include <string>

namespace hsis {

namespace {

/// Image of a single-state set through the transition relation restricted
/// to the edge set E(x,y). Debug-path use only: operands are tiny, so the
/// clusters are conjoined without early quantification.
Bdd imageVia(const TransitionRelation& tr, const Bdd& s, const Bdd& e) {
  const Fsm& fsm = tr.fsm();
  BddManager& mgr = fsm.mgr();
  Bdd acc = s & e;
  for (const Bdd& c : tr.clusters()) acc &= c;
  acc = mgr.exists(acc, fsm.presentCube() & fsm.nonStateCube());
  return fsm.nextToPresent(acc);
}

/// States of `set` that can fire an edge of E into `set`.
Bdd takeoffStates(const TransitionRelation& tr, const Bdd& set, const Bdd& e) {
  const Fsm& fsm = tr.fsm();
  BddManager& mgr = fsm.mgr();
  Bdd acc = fsm.presentToNext(set) & e;
  for (const Bdd& c : tr.clusters()) acc &= c;
  acc = mgr.exists(acc, fsm.nextCube() & fsm.nonStateCube());
  return acc & set;
}

/// BFS within `region` from the concrete-state cube `from` to `target`.
/// Appends the path states (excluding `from` itself) to `out`; returns the
/// final concrete state, or nullopt if unreachable. Zero-length when `from`
/// already satisfies target.
std::optional<std::vector<int8_t>> pathWithin(
    const TransitionRelation& tr, const Fsm& fsm, const Bdd& fromCube,
    const std::vector<int8_t>& fromState, const Bdd& region, const Bdd& target,
    std::vector<std::vector<int8_t>>& out) {
  if (!(fromCube & target).isZero()) return fromState;

  std::vector<Bdd> rings{fromCube};
  Bdd seen = fromCube;
  while (true) {
    Bdd next = tr.image(rings.back()) & region & !seen;
    if (next.isZero()) return std::nullopt;
    seen |= next;
    rings.push_back(next);
    if (!(next & target).isZero()) break;
  }
  // Backtrack from the target hit.
  size_t d = rings.size() - 1;
  std::vector<std::vector<int8_t>> rev;
  std::vector<int8_t> curAssign = concretizeState(fsm, rings[d] & target);
  Bdd cur = fsm.stateFromValues(fsm.decodeState(curAssign));
  rev.push_back(curAssign);
  for (size_t k = d; k-- > 1;) {
    Bdd prev = rings[k] & tr.preimage(cur);
    curAssign = concretizeState(fsm, prev);
    cur = fsm.stateFromValues(fsm.decodeState(curAssign));
    rev.push_back(curAssign);
  }
  for (size_t i = rev.size(); i-- > 0;) out.push_back(rev[i]);
  return out.back();
}

/// Smallest in-domain value of `v` consistent with the picked bits
/// (don't-care bits are free). Mirrors the concretizeState normalization.
uint32_t inDomainValue(const MvSpace& space, MvVarId v,
                       const std::vector<int8_t>& pick) {
  const std::vector<BddVar>& bits = space.bits(v);
  for (uint32_t val = 0; val < space.domain(v); ++val) {
    bool ok = true;
    for (size_t i = 0; i < bits.size(); ++i) {
      int8_t b = pick[bits[i]];
      if (b >= 0 && b != static_cast<int8_t>((val >> i) & 1u)) ok = false;
    }
    if (ok) return val;
  }
  return 0;
}

std::string stateKey(const Fsm& fsm, const std::vector<int8_t>& assign) {
  std::string key;
  for (uint32_t v : fsm.decodeState(assign)) {
    key += std::to_string(v);
    key += ',';
  }
  return key;
}

}  // namespace

std::vector<int8_t> concretizeState(const Fsm& fsm, const Bdd& set) {
  BddManager& mgr = fsm.mgr();
  std::vector<int8_t> pick = mgr.pickCube(set);
  const MvSpace& space = fsm.space();
  for (MvVarId v : fsm.stateVars()) {
    const std::vector<BddVar>& bits = space.bits(v);
    // Find the smallest in-domain value consistent with the picked bits.
    for (uint32_t val = 0; val < space.domain(v); ++val) {
      bool ok = true;
      for (size_t i = 0; i < bits.size(); ++i) {
        int8_t b = pick[bits[i]];
        if (b >= 0 && b != static_cast<int8_t>((val >> i) & 1u)) ok = false;
      }
      if (ok) {
        for (size_t i = 0; i < bits.size(); ++i)
          pick[bits[i]] = static_cast<int8_t>((val >> i) & 1u);
        break;
      }
    }
  }
  return pick;
}

void attachInputs(const Fsm& fsm, Trace& trace) {
  trace.inputs.clear();
  if (fsm.inputVars().empty() || trace.states.empty()) return;
  const size_t transitions =
      trace.states.size() - 1 + (trace.isLasso() ? 1 : 0);
  if (transitions == 0) return;
  BddManager& mgr = fsm.mgr();
  const MvSpace& space = fsm.space();
  trace.inputs.reserve(transitions);
  for (size_t i = 0; i < transitions; ++i) {
    const std::vector<int8_t>& nxtAssign =
        i + 1 < trace.states.size()
            ? trace.states[i + 1]
            : trace.states[static_cast<size_t>(trace.cycleStart)];
    // Both endpoints are concrete single states, so the conjunction with
    // the raw relations collapses immediately — no early quantification
    // needed on this debug-only path.
    Bdd rel = fsm.stateFromValues(fsm.decodeState(trace.states[i])) &
              fsm.presentToNext(
                  fsm.stateFromValues(fsm.decodeState(nxtAssign)));
    for (const Bdd& r : fsm.relations()) {
      rel &= r;
      if (rel.isZero()) break;
    }
    if (rel.isZero()) {
      // A trace produced by the search routines always has consistent
      // transitions; an inconsistent one (hand-built) records nothing.
      trace.inputs.clear();
      return;
    }
    std::vector<int8_t> pick = mgr.pickCube(rel);
    std::vector<uint32_t> vals;
    vals.reserve(fsm.inputVars().size());
    for (MvVarId v : fsm.inputVars())
      vals.push_back(inDomainValue(space, v, pick));
    trace.inputs.push_back(std::move(vals));
  }
}

std::optional<Trace> shortestPathTo(const TransitionRelation& tr,
                                    const Bdd& init, const Bdd& target) {
  const Fsm& fsm = tr.fsm();
  if (init.isZero()) return std::nullopt;

  std::vector<Bdd> rings{init};
  Bdd seen = init;
  while ((rings.back() & target).isZero()) {
    Bdd next = tr.image(rings.back()) & !seen;
    if (next.isZero()) return std::nullopt;
    seen |= next;
    rings.push_back(next);
  }

  size_t d = rings.size() - 1;
  Trace trace;
  std::vector<std::vector<int8_t>> rev;
  std::vector<int8_t> curAssign = concretizeState(fsm, rings[d] & target);
  Bdd cur = fsm.stateFromValues(fsm.decodeState(curAssign));
  rev.push_back(curAssign);
  for (size_t k = d; k-- > 0;) {
    Bdd prev = rings[k] & tr.preimage(cur);
    curAssign = concretizeState(fsm, prev);
    cur = fsm.stateFromValues(fsm.decodeState(curAssign));
    rev.push_back(curAssign);
  }
  for (size_t i = rev.size(); i-- > 0;) trace.states.push_back(rev[i]);
  attachInputs(fsm, trace);
  return trace;
}

std::optional<Trace> fairLasso(const TransitionRelation& tr, const Bdd& init,
                               const Bdd& Z,
                               const std::vector<Bdd>& stateConstraints,
                               const std::vector<Bdd>& edgeConstraints) {
  const Fsm& fsm = tr.fsm();
  BddManager& mgr = fsm.mgr();
  if (Z.isZero()) return std::nullopt;

  // Cyclic core: every state keeps a successor and a predecessor within W,
  // so a forward walk inside W never gets stuck.
  Bdd W = Z;
  while (true) {
    Bdd W2 = W & tr.preimage(W) & tr.image(W);
    if (W2 == W) break;
    W = W2;
  }
  if (W.isZero()) return std::nullopt;

  // Minimal prefix into the core.
  std::optional<Trace> prefix = shortestPathTo(tr, init, W);
  if (!prefix.has_value()) return std::nullopt;
  Trace trace = std::move(*prefix);
  int cycleStartIndex = static_cast<int>(trace.states.size()) - 1;

  std::vector<int8_t> cur = trace.states.back();
  Bdd curCube = fsm.stateFromValues(fsm.decodeState(cur));

  // Round-robin hops through every constraint; close at a round boundary.
  std::map<std::string, int> boundarySeen;
  boundarySeen[stateKey(fsm, cur)] = cycleStartIndex;
  std::vector<std::pair<Bdd, int>> boundaries;  // (cube, index)
  boundaries.emplace_back(curCube, cycleStartIndex);

  constexpr int kMaxRounds = 64;
  for (int round = 0; round < kMaxRounds; ++round) {
    size_t sizeAtRoundStart = trace.states.size();
    for (const Bdd& c : stateConstraints) {
      auto hop = pathWithin(tr, fsm, curCube, cur, W, W & c, trace.states);
      if (!hop.has_value()) return std::nullopt;  // approximation artefact
      cur = *hop;
      curCube = fsm.stateFromValues(fsm.decodeState(cur));
    }
    for (const Bdd& e : edgeConstraints) {
      Bdd takeoff = takeoffStates(tr, W, e);
      auto hop = pathWithin(tr, fsm, curCube, cur, W, takeoff, trace.states);
      if (!hop.has_value()) return std::nullopt;
      cur = *hop;
      curCube = fsm.stateFromValues(fsm.decodeState(cur));
      // Fire one E-edge.
      Bdd succ = imageVia(tr, curCube, e) & W;
      if (succ.isZero()) return std::nullopt;
      cur = concretizeState(fsm, succ);
      curCube = fsm.stateFromValues(fsm.decodeState(cur));
      trace.states.push_back(cur);
    }
    // A cycle needs at least one transition: if every hop was zero-length,
    // take one forced step inside the core.
    if (trace.states.size() == sizeAtRoundStart) {
      Bdd succ = tr.image(curCube) & W;
      if (succ.isZero()) return std::nullopt;
      cur = concretizeState(fsm, succ);
      curCube = fsm.stateFromValues(fsm.decodeState(cur));
      trace.states.push_back(cur);
    }
    // Boundary: did we return to a previous round boundary?
    std::string key = stateKey(fsm, cur);
    auto it = boundarySeen.find(key);
    if (it != boundarySeen.end()) {
      trace.cycleStart = it->second;
      // The final state duplicates the cycle-start state; drop it and let
      // cycleStart indicate the back edge.
      trace.states.pop_back();
      if (trace.states.empty() ||
          trace.cycleStart >= static_cast<int>(trace.states.size())) {
        // Degenerate self-loop: keep the single state.
        trace.states.push_back(cur);
        trace.cycleStart = static_cast<int>(trace.states.size()) - 1;
      }
      attachInputs(fsm, trace);
      return trace;
    }
    boundarySeen[key] = static_cast<int>(trace.states.size()) - 1;
    boundaries.emplace_back(curCube, static_cast<int>(trace.states.size()) - 1);

    // After a few rounds, try to steer back to any recorded boundary.
    if (round >= 2) {
      Bdd targets = mgr.bddZero();
      for (auto& [cube, idx] : boundaries) {
        (void)idx;
        targets |= cube;
      }
      size_t before = trace.states.size();
      auto hop = pathWithin(tr, fsm, curCube, cur, W, targets, trace.states);
      if (hop.has_value() && trace.states.size() > before) {
        cur = *hop;
        std::string k2 = stateKey(fsm, cur);
        auto hit = boundarySeen.find(k2);
        if (hit != boundarySeen.end()) {
          trace.cycleStart = hit->second;
          trace.states.pop_back();
          attachInputs(fsm, trace);
          return trace;
        }
        curCube = fsm.stateFromValues(fsm.decodeState(cur));
      }
    }
  }
  return std::nullopt;
}

}  // namespace hsis
