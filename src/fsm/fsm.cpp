// Construction of the symbolic c/s model from a flattened BLIF-MV model.
#include "fsm/fsm.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace hsis {

namespace {

[[noreturn]] void fsmError(const std::string& msg) {
  throw std::runtime_error("fsm: " + msg);
}

uint32_t domainOf(const blifmv::Model& flat, const std::string& sig) {
  const blifmv::VarDecl* d = flat.declOf(sig);
  return d == nullptr ? 2 : d->domain;
}

std::vector<std::string> namesOf(const blifmv::Model& flat,
                                 const std::string& sig) {
  const blifmv::VarDecl* d = flat.declOf(sig);
  return d == nullptr ? std::vector<std::string>{} : d->valueNames;
}

}  // namespace

Fsm::Fsm(BddManager& mgr, const blifmv::Model& flat)
    : space_(mgr), name_(flat.name) {
  checkCombinationalCycles(flat);
  buildVariables(flat);
  buildRelations(flat);
  buildInit(flat);
}

void Fsm::buildVariables(const blifmv::Model& flat) {
  BddManager& mgr = space_.mgr();

  std::unordered_set<std::string> latchOutputs;
  for (const blifmv::Latch& l : flat.latches) {
    if (!latchOutputs.insert(l.output).second)
      fsmError("latch output " + l.output + " driven by two latches");
  }

  // Present/next state variables, bit-interleaved per latch.
  for (const blifmv::Latch& l : flat.latches) {
    uint32_t dom = domainOf(flat, l.output);
    if (domainOf(flat, l.input) != dom)
      fsmError("latch " + l.output + ": input domain " +
               std::to_string(domainOf(flat, l.input)) + " != output domain " +
               std::to_string(dom));
    uint32_t nbits = MvSpace::bitsFor(dom);
    std::vector<BddVar> xb, yb;
    for (uint32_t i = 0; i < nbits; ++i) {
      xb.push_back(mgr.newVar());
      yb.push_back(mgr.newVar());
    }
    MvVarId x = space_.addVar(l.output, dom, namesOf(flat, l.output), xb);
    MvVarId y = space_.addVar(l.output + "$next", dom, namesOf(flat, l.output), yb);
    latches_.push_back(LatchInfo{l.output, l.input, x, y, flat.lineOf(l.output)});
    stateVars_.push_back(x);
    nextVars_.push_back(y);
    signalVar_[l.output] = x;
  }

  // Everything else, in a deterministic order: primary inputs, then table
  // signals in order of appearance.
  std::unordered_set<std::string> driven;  // signals with a combinational driver
  for (const blifmv::Table& t : flat.tables) driven.insert(t.output);

  auto addSignal = [&](const std::string& sig) {
    if (signalVar_.contains(sig)) return;
    MvVarId v = space_.addVar(sig, domainOf(flat, sig), namesOf(flat, sig));
    signalVar_[sig] = v;
    bool isPrimaryInput = false;
    for (const std::string& in : flat.inputs) {
      if (in == sig) isPrimaryInput = true;
    }
    if (isPrimaryInput) {
      inputVars_.push_back(v);
    } else if (!driven.contains(sig)) {
      diagnostics_.push_back("signal " + sig +
                             " is undriven; treated as a free input");
      inputVars_.push_back(v);
    } else {
      internalVars_.push_back(v);
    }
  };

  for (const std::string& in : flat.inputs) addSignal(in);
  for (const blifmv::Table& t : flat.tables) {
    for (const std::string& s : t.inputs) addSignal(s);
    addSignal(t.output);
  }
  for (const blifmv::Latch& l : flat.latches) addSignal(l.input);

  if (!inputVars_.empty()) {
    diagnostics_.push_back(
        "model has free inputs; verification expects a closed system");
  }

  // Cubes and rename maps.
  presentCube_ = space_.cube(stateVars_);
  nextCube_ = space_.cube(nextVars_);
  std::vector<MvVarId> nonState = inputVars_;
  nonState.insert(nonState.end(), internalVars_.begin(), internalVars_.end());
  nonStateCube_ = space_.cube(nonState);
  stateBits_ = space_.totalBits(stateVars_);

  uint32_t nv = mgr.numVars();
  nextToPresentMap_.resize(nv);
  presentToNextMap_.resize(nv);
  for (uint32_t i = 0; i < nv; ++i) {
    nextToPresentMap_[i] = i;
    presentToNextMap_[i] = i;
  }
  for (const LatchInfo& l : latches_) {
    const auto& xb = space_.bits(l.present);
    const auto& yb = space_.bits(l.next);
    for (size_t i = 0; i < xb.size(); ++i) {
      nextToPresentMap_[yb[i]] = xb[i];
      presentToNextMap_[xb[i]] = yb[i];
    }
  }
}

void Fsm::buildRelations(const blifmv::Model& flat) {
  BddManager& mgr = space_.mgr();
  std::unordered_set<std::string> latchOutputs;
  for (const blifmv::Latch& l : flat.latches) latchOutputs.insert(l.output);

  std::unordered_set<std::string> drivenSeen;
  for (const blifmv::Table& t : flat.tables) {
    if (latchOutputs.contains(t.output))
      fsmError("table drives latch output " + t.output);
    if (!drivenSeen.insert(t.output).second)
      fsmError("signal " + t.output + " has multiple table drivers");

    MvVarId out = signalVar_.at(t.output);
    std::vector<MvVarId> ins;
    ins.reserve(t.inputs.size());
    for (const std::string& s : t.inputs) ins.push_back(signalVar_.at(s));

    auto resolve = [&](MvVarId v, const std::string& tok) -> uint32_t {
      std::optional<uint32_t> k = space_.valueOf(v, tok);
      if (!k.has_value())
        fsmError("value '" + tok + "' not in domain of " + space_.name(v) +
                 " (table for " + t.output + ")");
      return *k;
    };

    auto inputEntryBdd = [&](MvVarId v, const blifmv::RowEntry& e) -> Bdd {
      switch (e.kind) {
        case blifmv::RowEntry::Kind::Any:
          return space_.validEncodings(v);
        case blifmv::RowEntry::Kind::Values: {
          std::vector<uint32_t> vals;
          vals.reserve(e.values.size());
          for (const std::string& s : e.values) vals.push_back(resolve(v, s));
          return space_.literalSet(v, vals);
        }
        case blifmv::RowEntry::Kind::Complement: {
          Bdd set = space_.literal(v, resolve(v, e.values.at(0)));
          return space_.validEncodings(v) & !set;
        }
        case blifmv::RowEntry::Kind::Equal:
          fsmError("'=' entry in an input column of table for " + t.output);
      }
      return mgr.bddZero();
    };

    Bdd rel = mgr.bddZero();
    Bdd covered = mgr.bddZero();
    for (const blifmv::Row& row : t.rows) {
      Bdd inCube = mgr.bddOne();
      for (size_t i = 0; i < ins.size(); ++i) {
        inCube &= inputEntryBdd(ins[i], row.entries[i]);
      }
      const blifmv::RowEntry& oe = row.entries.back();
      Bdd outSet;
      switch (oe.kind) {
        case blifmv::RowEntry::Kind::Any:
          outSet = space_.validEncodings(out);
          break;
        case blifmv::RowEntry::Kind::Values: {
          std::vector<uint32_t> vals;
          for (const std::string& s : oe.values) vals.push_back(resolve(out, s));
          outSet = space_.literalSet(out, vals);
          break;
        }
        case blifmv::RowEntry::Kind::Complement: {
          Bdd set = space_.literal(out, resolve(out, oe.values.at(0)));
          outSet = space_.validEncodings(out) & !set;
          break;
        }
        case blifmv::RowEntry::Kind::Equal: {
          // out == named input, pointwise over the common domain.
          auto it = signalVar_.find(oe.eqVar);
          if (it == signalVar_.end())
            fsmError("'=' references unknown signal " + oe.eqVar);
          MvVarId src = it->second;
          uint32_t dom = std::min(space_.domain(src), space_.domain(out));
          Bdd eq = mgr.bddZero();
          for (uint32_t k = 0; k < dom; ++k)
            eq |= space_.literal(src, k) & space_.literal(out, k);
          rel |= inCube & eq;
          covered |= inCube;
          outSet = Bdd();  // handled above
          break;
        }
      }
      if (!outSet.isNull()) {
        rel |= inCube & outSet;
        covered |= inCube;
      }
    }
    if (t.defaultValue.has_value()) {
      Bdd dflt = space_.literal(out, resolve(out, *t.defaultValue));
      rel |= (!covered) & dflt;
    }
    relations_.push_back(std::move(rel));
  }

  // Latch linking relations: y_l == value of the latch's input signal.
  for (const LatchInfo& l : latches_) {
    MvVarId src = signalVar_.at(l.inputSignal);
    if (space_.domain(src) != space_.domain(l.next))
      fsmError("latch " + l.name + ": next-state domain mismatch");
    Bdd eq = mgr.bddZero();
    for (uint32_t k = 0; k < space_.domain(src); ++k)
      eq |= space_.literal(src, k) & space_.literal(l.next, k);
    relations_.push_back(std::move(eq));
  }
}

void Fsm::buildInit(const blifmv::Model& flat) {
  BddManager& mgr = space_.mgr();
  init_ = mgr.bddOne();
  size_t li = 0;
  for (const blifmv::Latch& l : flat.latches) {
    const LatchInfo& info = latches_[li++];
    if (l.resetValues.empty())
      fsmError("latch " + l.output + " has no .reset values");
    Bdd alts = mgr.bddZero();
    for (const std::string& tok : l.resetValues) {
      std::optional<uint32_t> k = space_.valueOf(info.present, tok);
      if (!k.has_value())
        fsmError("reset value '" + tok + "' not in domain of " + l.output);
      alts |= space_.literal(info.present, *k);
    }
    init_ &= alts;
  }
}

void Fsm::checkCombinationalCycles(const blifmv::Model& flat) const {
  // Build signal -> driving table dependencies; latch outputs are sources.
  std::unordered_map<std::string, const blifmv::Table*> driver;
  for (const blifmv::Table& t : flat.tables) driver[t.output] = &t;
  std::unordered_set<std::string> latchOut;
  for (const blifmv::Latch& l : flat.latches) latchOut.insert(l.output);

  enum class Mark : uint8_t { White, Grey, Black };
  std::unordered_map<std::string, Mark> mark;
  std::vector<std::pair<std::string, size_t>> stack;  // (signal, next input idx)

  for (const auto& [sig, t] : driver) {
    if (mark[sig] != Mark::White) continue;
    stack.emplace_back(sig, 0);
    mark[sig] = Mark::Grey;
    while (!stack.empty()) {
      auto& [cur, idx] = stack.back();
      const blifmv::Table* ct = driver.at(cur);
      if (idx >= ct->inputs.size()) {
        mark[cur] = Mark::Black;
        stack.pop_back();
        continue;
      }
      const std::string& dep = ct->inputs[idx++];
      if (latchOut.contains(dep) || !driver.contains(dep)) continue;
      Mark m = mark[dep];
      if (m == Mark::Grey)
        fsmError("combinational cycle through signal " + dep);
      if (m == Mark::White) {
        mark[dep] = Mark::Grey;
        stack.emplace_back(dep, 0);
      }
    }
  }
}

std::optional<MvVarId> Fsm::signalVar(const std::string& name) const {
  auto it = signalVar_.find(name);
  if (it == signalVar_.end()) return std::nullopt;
  return it->second;
}

Bdd Fsm::nextToPresent(const Bdd& f) const {
  return space_.mgr().permute(f, nextToPresentMap_);
}

Bdd Fsm::presentToNext(const Bdd& f) const {
  return space_.mgr().permute(f, presentToNextMap_);
}

double Fsm::countStates(const Bdd& set) const {
  return space_.mgr().satCount(set, stateBits_);
}

std::vector<uint32_t> Fsm::decodeState(const std::vector<int8_t>& cube) const {
  std::vector<uint32_t> vals;
  vals.reserve(latches_.size());
  for (const LatchInfo& l : latches_) vals.push_back(space_.decode(l.present, cube));
  return vals;
}

std::string Fsm::formatState(const std::vector<int8_t>& cube) const {
  std::ostringstream os;
  for (size_t i = 0; i < latches_.size(); ++i) {
    if (i != 0) os << ", ";
    uint32_t v = space_.decode(latches_[i].present, cube);
    os << latches_[i].name << "=" << space_.valueName(latches_[i].present, v);
  }
  return os.str();
}

Bdd Fsm::stateFromValues(const std::vector<uint32_t>& values) const {
  assert(values.size() == latches_.size());
  Bdd s = space_.mgr().bddOne();
  for (size_t i = 0; i < latches_.size(); ++i)
    s &= space_.literal(latches_[i].present, values[i]);
  return s;
}

Fsm Fsm::transferred(BddTransfer& tx, const Fsm& src) {
  // Start from a plain copy (handles still on the source manager), then
  // replace every symbolic member with its structural copy and rebind the
  // variable space. Variable ids carry over verbatim: BddTransfer mirrors
  // the source's variable universe and order in the destination.
  Fsm out(src);
  out.space_.rebindManager(tx.dst());
  out.relations_ = tx.copy(src.relations_);
  out.init_ = tx.copy(src.init_);
  out.presentCube_ = tx.copy(src.presentCube_);
  out.nextCube_ = tx.copy(src.nextCube_);
  out.nonStateCube_ = tx.copy(src.nonStateCube_);
  return out;
}

}  // namespace hsis
