#include "fsm/image.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "obs/control.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"

namespace hsis {

namespace {

void noteTrBuilt(const TransitionRelation& tr) {
  obs::gauge("fsm.tr.clusters").set(static_cast<int64_t>(tr.clusterCount()));
  obs::gauge("fsm.tr.nodes").set(static_cast<int64_t>(tr.totalNodes()));
  HSIS_LOG_INFO("fsm.tr", "transition relation built",
                {{"clusters", tr.clusterCount()},
                 {"nodes", tr.totalNodes()}});
}

}  // namespace

TransitionRelation TransitionRelation::monolithic(const Fsm& fsm,
                                                  QuantMethod method,
                                                  QuantExecStats* stats) {
  obs::Span span("fsm.tr.build");
  TransitionRelation tr(fsm);
  Bdd t = productAndQuantify(fsm.mgr(), fsm.relations(), fsm.nonStateCube(),
                             method, stats);
  tr.clusters_.push_back(std::move(t));
  tr.computeStepCubes();
  noteTrBuilt(tr);
  return tr;
}

TransitionRelation TransitionRelation::partitioned(const Fsm& fsm,
                                                   size_t clusterLimit) {
  obs::Span span("fsm.tr.build");
  TransitionRelation tr(fsm);
  BddManager& mgr = fsm.mgr();

  // Execute the greedy early-quantification plan, but emit any intermediate
  // result that exceeds the size cap as a standalone cluster instead of
  // conjoining it further. A variable scheduled for quantification higher
  // up in the plan is only quantified there if no emitted cluster still
  // mentions it; the rest are quantified during image computation
  // (computeStepCubes).
  std::vector<bool> nonState(mgr.numVars(), false);
  for (BddVar v : mgr.support(fsm.nonStateCube())) nonState[v] = true;
  const std::vector<Bdd>& rels = fsm.relations();

  QuantPlan plan = planQuantification(mgr, rels, nonState, QuantMethod::Greedy);

  std::vector<bool> emittedSupport(mgr.numVars(), false);
  auto emitIfBig = [&](Bdd f) -> Bdd {
    if (f.nodeCount() <= clusterLimit) return f;
    static obs::Histogram& clusterNodes =
        obs::histogram("fsm.tr.cluster.nodes");
    clusterNodes.record(f.nodeCount());
    for (BddVar v : mgr.support(f)) emittedSupport[v] = true;
    tr.clusters_.push_back(std::move(f));
    return mgr.bddOne();
  };
  std::function<Bdd(const QuantPlanNode*)> exec =
      [&](const QuantPlanNode* node) -> Bdd {
    Bdd result;
    if (node->relation >= 0) {
      result = rels[node->relation];
      Bdd cube = mgr.bddOne();
      for (auto it = node->quantifyHere.rbegin(); it != node->quantifyHere.rend(); ++it)
        cube &= mgr.bddVar(*it);
      if (!cube.isOne()) result = mgr.exists(result, cube);
      return emitIfBig(std::move(result));
    }
    Bdd l = exec(node->left.get());
    Bdd r = exec(node->right.get());
    Bdd cube = mgr.bddOne();
    for (auto it = node->quantifyHere.rbegin(); it != node->quantifyHere.rend(); ++it) {
      if (!emittedSupport[*it]) cube &= mgr.bddVar(*it);
    }
    result = mgr.andExists(l, r, cube);
    return emitIfBig(std::move(result));
  };
  Bdd top = exec(plan.root.get());
  if (!top.isOne() || tr.clusters_.empty()) tr.clusters_.push_back(std::move(top));

  tr.computeStepCubes();
  noteTrBuilt(tr);
  return tr;
}

void TransitionRelation::computeStepCubes() {
  BddManager& mgr = fsm_->mgr();
  uint32_t nv = mgr.numVars();

  std::vector<bool> isPresent(nv, false), isNext(nv, false), isNonState(nv, false);
  for (BddVar v : mgr.support(fsm_->presentCube())) isPresent[v] = true;
  for (BddVar v : mgr.support(fsm_->nextCube())) isNext[v] = true;
  for (BddVar v : mgr.support(fsm_->nonStateCube())) isNonState[v] = true;

  // lastUse[v] = index of the last cluster whose support contains v.
  std::vector<int> lastUse(nv, -1);
  for (size_t i = 0; i < clusters_.size(); ++i) {
    for (BddVar v : mgr.support(clusters_[i])) lastUse[v] = static_cast<int>(i);
  }

  // firstUse for the preimage pass, which walks the clusters in reverse.
  std::vector<int> firstUse(nv, -1);
  for (size_t i = clusters_.size(); i-- > 0;) {
    for (BddVar v : mgr.support(clusters_[i])) firstUse[v] = static_cast<int>(i);
  }

  imgCubes_.assign(clusters_.size(), mgr.bddOne());
  preCubes_.assign(clusters_.size(), mgr.bddOne());
  for (uint32_t v = 0; v < nv; ++v) {
    bool quantForImage = isPresent[v] || isNonState[v];
    bool quantForPre = isNext[v] || isNonState[v];
    // Variables used by no cluster are folded into the first processed step
    // (they may still occur in the argument state set).
    size_t imgStep = lastUse[v] < 0 ? 0 : static_cast<size_t>(lastUse[v]);
    size_t preStep =
        firstUse[v] < 0 ? clusters_.size() - 1 : static_cast<size_t>(firstUse[v]);
    if (quantForImage) imgCubes_[imgStep] &= mgr.bddVar(v);
    if (quantForPre) preCubes_[preStep] &= mgr.bddVar(v);
  }
}

Bdd TransitionRelation::image(const Bdd& statesX) const {
  static obs::Counter& calls = obs::counter("fsm.image.calls");
  static obs::Histogram& micros = obs::histogram("fsm.image.micros");
  calls.add();
  obs::Span span("fsm.image");
  obs::WallTimer timer;
  BddManager& mgr = fsm_->mgr();
  Bdd acc = statesX;
  for (size_t i = 0; i < clusters_.size(); ++i) {
    acc = mgr.andExists(acc, clusters_[i], imgCubes_[i]);
  }
  acc = fsm_->nextToPresent(acc);
  micros.record(timer.micros());
  return acc;
}

Bdd TransitionRelation::preimage(const Bdd& statesX) const {
  static obs::Counter& calls = obs::counter("fsm.preimage.calls");
  static obs::Histogram& micros = obs::histogram("fsm.preimage.micros");
  calls.add();
  obs::Span span("fsm.preimage");
  obs::WallTimer timer;
  BddManager& mgr = fsm_->mgr();
  Bdd acc = fsm_->presentToNext(statesX);
  // Reverse cluster order: the greedy segmentation puts "early" (top of the
  // dependency order) relations first, so walking backwards kills next-state
  // variables as aggressively as the forward walk kills present-state ones.
  for (size_t i = clusters_.size(); i-- > 0;) {
    acc = mgr.andExists(acc, clusters_[i], preCubes_[i]);
  }
  micros.record(timer.micros());
  return acc;
}

TransitionRelation TransitionRelation::minimized(const Bdd& careStatesX) const {
  TransitionRelation tr(*fsm_);
  BddManager& mgr = fsm_->mgr();
  tr.clusters_.reserve(clusters_.size());
  for (const Bdd& c : clusters_) tr.clusters_.push_back(mgr.restrict(c, careStatesX));
  tr.computeStepCubes();
  return tr;
}

const Bdd& TransitionRelation::monolithicRelation() const {
  if (!isMonolithic())
    throw std::logic_error("TransitionRelation: not monolithic");
  return clusters_[0];
}

size_t TransitionRelation::totalNodes() const {
  return fsm_->mgr().sharedNodeCount(clusters_);
}

ReachResult reachableStates(const TransitionRelation& tr, const Bdd& init,
                            const ReachOptions& opts) {
  obs::Span span("fsm.reach");
  static obs::Counter& iterations = obs::counter("fsm.reach.iterations");
  static obs::Histogram& frontierNodes =
      obs::histogram("fsm.reach.frontier.nodes");
  static obs::Histogram& reachedNodes =
      obs::histogram("fsm.reach.reached.nodes");
  static obs::Histogram& frontierStatesHist =
      obs::histogram("fsm.reach.frontier.states");
  ReachResult res;
  res.reached = init;
  Bdd frontier = init;
  if (opts.keepOnionRings) res.onionRings.push_back(init);
  if (opts.recordFrontierStates) {
    double states = tr.fsm().countStates(init);
    res.frontierStates.push_back(states);
    frontierStatesHist.record(static_cast<uint64_t>(states));
  }
  if (opts.watch && opts.watch(init, 0)) {
    res.stoppedEarly = true;
    return res;
  }
  static obs::Gauge& frontierLast = obs::gauge("fsm.reach.frontier.last");
  while (!frontier.isZero()) {
    obs::checkAbort();
    iterations.add();
    size_t fsize = frontier.nodeCount();
    frontierNodes.record(fsize);
    frontierLast.set(static_cast<int64_t>(fsize));
    HSIS_LOG_DEBUG("fsm.reach", "frontier step",
                   {{"depth", res.depth},
                    {"frontier_nodes", fsize},
                    {"reached_nodes", res.reached.nodeCount()}});
    Bdd next = tr.image(frontier);
    frontier = next & !res.reached;
    if (frontier.isZero()) break;
    res.reached |= frontier;
    reachedNodes.record(res.reached.nodeCount());
    ++res.depth;
    if (opts.keepOnionRings) res.onionRings.push_back(frontier);
    if (opts.recordFrontierStates) {
      double states = tr.fsm().countStates(frontier);
      res.frontierStates.push_back(states);
      frontierStatesHist.record(static_cast<uint64_t>(states));
    }
    if (opts.watch && opts.watch(frontier, res.depth)) {
      res.stoppedEarly = true;
      break;
    }
    if (opts.maxSteps != 0 && res.depth >= opts.maxSteps) {
      res.stoppedEarly = true;
      break;
    }
  }
  obs::gauge("fsm.reach.depth").set(static_cast<int64_t>(res.depth));
  HSIS_LOG_INFO("fsm.reach", "fixpoint reached",
                {{"depth", res.depth},
                 {"reached_nodes", res.reached.nodeCount()},
                 {"stopped_early", res.stoppedEarly}});
  return res;
}


TransitionRelation TransitionRelation::transferred(
    const Fsm& dstFsm, BddTransfer& tx, const TransitionRelation& src) {
  // The quantification schedule is a function of the cluster decomposition
  // and the variable sets, both of which transfer verbatim — so the copies
  // are taken directly instead of re-running computeStepCubes (which would
  // recompute the same cubes from the replica's Fsm anyway).
  TransitionRelation tr(dstFsm);
  tr.clusters_ = tx.copy(src.clusters_);
  tr.imgCubes_ = tx.copy(src.imgCubes_);
  tr.preCubes_ = tx.copy(src.preCubes_);
  return tr;
}

}  // namespace hsis
