// The combinational/sequential (c/s) model of BLIF-MV, encoded symbolically.
//
// A flattened BLIF-MV model is turned into:
//  - one multi-valued variable per signal (MvSpace),
//  - a distinct next-state variable y_l per latch, with present/next encoding
//    bits interleaved in the BDD order (the variable-ordering strategy of
//    Aziz-Tasiran-Brayton for interacting FSMs),
//  - one relation BDD per table, plus one linking relation y_l == input(l)
//    per latch,
//  - the initial-state set from .reset declarations.
//
// The product transition relation T(x,y) = ∃ nonstate . ∏ relations is built
// by the early-quantification machinery in quantify.hpp.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "blifmv/blifmv.hpp"
#include "mvf/mvf.hpp"

namespace hsis {

class Fsm {
 public:
  /// Build from a flattened model (no .subckt left). Throws
  /// std::runtime_error on semantic errors: multiple drivers, undeclared
  /// values, latches without reset values, combinational cycles.
  Fsm(BddManager& mgr, const blifmv::Model& flat);

  /// Replicate `src` into the transfer's destination manager: all symbolic
  /// components are structurally copied and the variable space is rebound.
  /// The source manager must be quiescent for the duration (see
  /// BddTransfer); the replica is fully independent afterwards. Used by the
  /// parallel batch scheduler to give each worker its own engine.
  static Fsm transferred(BddTransfer& tx, const Fsm& src);

  [[nodiscard]] BddManager& mgr() const { return space_.mgr(); }
  [[nodiscard]] MvSpace& space() { return space_; }
  [[nodiscard]] const MvSpace& space() const { return space_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // ---- structure ----
  [[nodiscard]] size_t numLatches() const { return latches_.size(); }
  [[nodiscard]] MvVarId stateVar(size_t l) const { return latches_[l].present; }
  [[nodiscard]] MvVarId nextVar(size_t l) const { return latches_[l].next; }
  [[nodiscard]] const std::string& latchName(size_t l) const {
    return latches_[l].name;
  }
  /// HDL source line of the latch's declaration (0 = unknown); carried by
  /// .lineinfo annotations for source-level debugging.
  [[nodiscard]] int latchLine(size_t l) const { return latches_[l].sourceLine; }
  [[nodiscard]] const std::vector<MvVarId>& stateVars() const { return stateVars_; }
  [[nodiscard]] const std::vector<MvVarId>& nextVars() const { return nextVars_; }
  /// Free primary inputs of the model (empty for a closed system).
  [[nodiscard]] const std::vector<MvVarId>& inputVars() const { return inputVars_; }
  /// Combinational nets (everything that is neither state nor free input).
  [[nodiscard]] const std::vector<MvVarId>& internalVars() const {
    return internalVars_;
  }

  /// The MV variable of a named signal, if any.
  [[nodiscard]] std::optional<MvVarId> signalVar(const std::string& name) const;

  // ---- symbolic components ----
  [[nodiscard]] const Bdd& initialStates() const { return init_; }
  /// All conjuncts of the product transition relation: one per table plus
  /// one per latch (y_l == next-state signal).
  [[nodiscard]] const std::vector<Bdd>& relations() const { return relations_; }

  [[nodiscard]] const Bdd& presentCube() const { return presentCube_; }
  [[nodiscard]] const Bdd& nextCube() const { return nextCube_; }
  /// Everything that is quantified out of the product: inputs + internals.
  [[nodiscard]] const Bdd& nonStateCube() const { return nonStateCube_; }

  /// Rename a set over next-state variables to present-state variables.
  [[nodiscard]] Bdd nextToPresent(const Bdd& f) const;
  [[nodiscard]] Bdd presentToNext(const Bdd& f) const;

  /// Number of encoding bits of the present-state rail (for satCount).
  [[nodiscard]] uint32_t stateBits() const { return stateBits_; }
  /// Count states in a set over present-state variables.
  [[nodiscard]] double countStates(const Bdd& set) const;

  /// Pretty-print one state (a cube over present-state vars) as
  /// "latch=value, ...".
  [[nodiscard]] std::string formatState(const std::vector<int8_t>& cube) const;
  /// Decode latch values from an assignment cube.
  [[nodiscard]] std::vector<uint32_t> decodeState(
      const std::vector<int8_t>& cube) const;
  /// Build the present-state cube BDD for explicit latch values.
  [[nodiscard]] Bdd stateFromValues(const std::vector<uint32_t>& values) const;

  /// Non-fatal diagnostics collected during construction (incomplete or
  /// nondeterministic tables, free inputs).
  [[nodiscard]] const std::vector<std::string>& diagnostics() const {
    return diagnostics_;
  }

 private:
  struct LatchInfo {
    std::string name;        ///< latch output (present-state signal)
    std::string inputSignal; ///< combinational next-state signal
    MvVarId present;
    MvVarId next;
    int sourceLine = 0;      ///< HDL line from .lineinfo (0 = unknown)
  };

  void buildVariables(const blifmv::Model& flat);
  void buildRelations(const blifmv::Model& flat);
  void buildInit(const blifmv::Model& flat);
  void checkCombinationalCycles(const blifmv::Model& flat) const;

  MvSpace space_;
  std::string name_;
  std::vector<LatchInfo> latches_;
  std::vector<MvVarId> stateVars_, nextVars_, inputVars_, internalVars_;
  std::unordered_map<std::string, MvVarId> signalVar_;
  std::vector<Bdd> relations_;
  Bdd init_;
  Bdd presentCube_, nextCube_, nonStateCube_;
  std::vector<BddVar> nextToPresentMap_, presentToNextMap_;
  uint32_t stateBits_ = 0;
  std::vector<std::string> diagnostics_;
};

}  // namespace hsis
