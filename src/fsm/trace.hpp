// Symbolic error-trace construction: shortest paths via onion rings and
// fair lassos (prefix + cycle satisfying Büchi/edge constraints). These are
// the routines behind both debuggers — the paper's Section 6: "a set of
// routines that heuristically search for short error traces".
#pragma once

#include <optional>
#include <vector>

#include "fsm/image.hpp"

namespace hsis {

/// A linear or lasso-shaped trace. Each step is a full assignment over the
/// present-state variables (decode with Fsm::formatState).
struct Trace {
  std::vector<std::vector<int8_t>> states;
  /// Index where the cycle re-enters; -1 for a plain path. The lasso is
  /// states[0..n-1] followed by a back edge from states[n-1] to
  /// states[cycleStart].
  int cycleStart = -1;
  /// Per-transition input stimulus: inputs[i] holds one decoded value per
  /// Fsm::inputVars() entry that drives states[i] -> states[i+1]; a lasso
  /// carries one extra entry for the back edge. Empty when the model has
  /// no free inputs (closed system) or recording was skipped.
  std::vector<std::vector<uint32_t>> inputs;

  [[nodiscard]] bool isLasso() const { return cycleStart >= 0; }
  [[nodiscard]] size_t length() const { return states.size(); }
};

/// Pick one concrete state out of a non-empty set (over present-state vars):
/// all state bits are made definite.
std::vector<int8_t> concretizeState(const Fsm& fsm, const Bdd& set);

/// Shortest path from `init` to `target` (both over present-state vars).
/// Returns nullopt if unreachable. The path has minimal length among all
/// paths from init (BFS onion rings).
std::optional<Trace> shortestPathTo(const TransitionRelation& tr,
                                    const Bdd& init, const Bdd& target);

/// Find a fair lasso: a minimal-prefix path from `init` into the fair hull
/// `Z`, followed by a heuristically short cycle inside Z that visits every
/// `stateConstraints[i]` and fires an edge of every `edgeConstraints[i]`
/// (edge sets are BDDs over present x next state rails).
///
/// The prefix-to-cycle distance is minimal (the paper: "the path to the
/// cycle is minimum among all error traces"); the cycle itself is heuristic
/// (cycle minimization is NP-hard).
std::optional<Trace> fairLasso(const TransitionRelation& tr, const Bdd& init,
                               const Bdd& Z,
                               const std::vector<Bdd>& stateConstraints,
                               const std::vector<Bdd>& edgeConstraints = {});

/// Solve each transition of the trace against the raw relation conjuncts
/// (Fsm::relations(); the clustered TR pre-quantifies input rails) and
/// record one concrete input assignment per step in Trace::inputs. A no-op
/// for closed systems; clears inputs on an inconsistent trace.
void attachInputs(const Fsm& fsm, Trace& trace);

}  // namespace hsis
