// The early quantification problem [Hojati-Krishnan-Brayton, M94/11]:
// given relation BDDs R_1..R_n and a set Q of variables to existentially
// quantify, compute ∃Q. ∏R_i while keeping intermediate BDDs small by
// quantifying each variable as soon as no un-multiplied relation depends
// on it.
//
// Two planners are provided (the paper: "we have implemented two different
// packages for this problem"), plus a naive baseline for ablation:
//  - Greedy: left-deep multiplication order chosen by a dead-variable /
//    introduced-variable cost function (IWLS95 style).
//  - Tree: balanced binary clustering over relations sorted by the top
//    level of their support, quantifying at the lowest subtree that
//    encloses all occurrences of a variable.
//  - Naive: multiply everything in the given order, quantify at the end.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"

namespace hsis {

enum class QuantMethod { Naive, Greedy, Tree };

std::string toString(QuantMethod m);

/// A multiplication/quantification schedule, as a binary combine tree.
struct QuantPlanNode {
  int relation = -1;  ///< leaf: index into the relations array
  std::unique_ptr<QuantPlanNode> left, right;
  /// Variables quantified at this node, right after combining the children
  /// (empty cube == plain conjunction).
  std::vector<BddVar> quantifyHere;
};

struct QuantPlan {
  std::unique_ptr<QuantPlanNode> root;
  QuantMethod method = QuantMethod::Naive;
};

struct QuantExecStats {
  size_t peakIntermediateNodes = 0;  ///< largest intermediate result BDD
  size_t andExistsCalls = 0;
};

/// Build a schedule. `quantifiable[v]` marks BDD variables that may be
/// quantified out (all others are kept). Relations equal to constant one
/// are skipped.
QuantPlan planQuantification(BddManager& mgr, const std::vector<Bdd>& relations,
                             const std::vector<bool>& quantifiable,
                             QuantMethod method);

/// Execute a schedule. Any quantifiable variable occurring in no relation
/// at all is trivially dropped (it has no constraints).
Bdd executePlan(BddManager& mgr, const QuantPlan& plan,
                const std::vector<Bdd>& relations,
                QuantExecStats* stats = nullptr);

/// Convenience: plan + execute.
Bdd productAndQuantify(BddManager& mgr, const std::vector<Bdd>& relations,
                       const Bdd& quantifyCube, QuantMethod method,
                       QuantExecStats* stats = nullptr);

}  // namespace hsis
