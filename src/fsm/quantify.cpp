#include "fsm/quantify.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

#include "obs/obs.hpp"

namespace hsis {

std::string toString(QuantMethod m) {
  switch (m) {
    case QuantMethod::Naive:
      return "naive";
    case QuantMethod::Greedy:
      return "greedy";
    case QuantMethod::Tree:
      return "tree";
  }
  return "?";
}

namespace {

using Support = std::vector<bool>;  // indexed by BddVar

Support supportMask(BddManager& mgr, const Bdd& f) {
  Support s(mgr.numVars(), false);
  for (BddVar v : mgr.support(f)) s[v] = true;
  return s;
}

std::unique_ptr<QuantPlanNode> leaf(int i) {
  auto n = std::make_unique<QuantPlanNode>();
  n->relation = i;
  return n;
}

std::unique_ptr<QuantPlanNode> join(std::unique_ptr<QuantPlanNode> l,
                                    std::unique_ptr<QuantPlanNode> r) {
  auto n = std::make_unique<QuantPlanNode>();
  n->left = std::move(l);
  n->right = std::move(r);
  return n;
}

// ----------------------------------------------------- elimination core
//
// Both planner "packages" are variable-elimination schedulers: repeatedly
// pick a quantifiable variable, combine exactly the pending conjuncts that
// mention it, and quantify it (plus any other variable whose occurrences
// were swallowed by the merge). On the circuit-shaped relation sets vl2mv
// produces — thousands of small tables chained through intermediate
// signals — this keeps every combine local to a few conjuncts. The two
// packages differ in the selection heuristic and merge shape:
//  - Greedy: min-degree (fewest occurrences), left-deep merges;
//  - Tree:   min-width (smallest merged support), balanced merges.

struct Pending {
  std::unique_ptr<QuantPlanNode> node;
  Support supp;               ///< membership bitmap
  std::vector<BddVar> vars;   ///< the same support as a compact list
};

std::unique_ptr<QuantPlanNode> combine(std::vector<std::unique_ptr<QuantPlanNode>> nodes,
                                       bool balanced) {
  if (!balanced) {
    std::unique_ptr<QuantPlanNode> acc = std::move(nodes[0]);
    for (size_t k = 1; k < nodes.size(); ++k)
      acc = join(std::move(acc), std::move(nodes[k]));
    return acc;
  }
  while (nodes.size() > 1) {
    std::vector<std::unique_ptr<QuantPlanNode>> next;
    for (size_t k = 0; k + 1 < nodes.size(); k += 2)
      next.push_back(join(std::move(nodes[k]), std::move(nodes[k + 1])));
    if (nodes.size() % 2 == 1) next.push_back(std::move(nodes.back()));
    nodes = std::move(next);
  }
  return std::move(nodes[0]);
}

QuantPlan planByElimination(BddManager& mgr, const std::vector<bool>& quantifiable,
                            const std::vector<int>& active,
                            const std::vector<Support>& suppIn,
                            QuantMethod method) {
  uint32_t nv = mgr.numVars();
  bool minWidth = method == QuantMethod::Tree;

  std::vector<Pending> pending;
  pending.reserve(active.size());
  for (int i : active) {
    Pending p;
    p.node = leaf(i);
    p.supp = suppIn[i];
    for (uint32_t v = 0; v < nv; ++v)
      if (p.supp[v]) p.vars.push_back(v);
    pending.push_back(std::move(p));
  }

  std::vector<int> occ(nv, 0);
  for (const Pending& p : pending)
    for (BddVar v : p.vars) ++occ[v];

  auto mergeGroup = [&](std::vector<size_t>& group) {
    assert(!group.empty());
    std::sort(group.begin(), group.end());
    Support merged(nv, false);
    std::vector<int> inGroup(nv, 0);
    std::vector<BddVar> mergedVars;
    for (size_t gi : group) {
      for (BddVar v : pending[gi].vars) {
        if (!merged[v]) {
          merged[v] = true;
          mergedVars.push_back(v);
        }
        ++inGroup[v];
      }
    }
    std::vector<std::unique_ptr<QuantPlanNode>> nodes;
    nodes.reserve(group.size());
    for (size_t gi : group) nodes.push_back(std::move(pending[gi].node));
    std::unique_ptr<QuantPlanNode> node = combine(std::move(nodes), minWidth);
    std::vector<BddVar> keptVars;
    for (BddVar v : mergedVars) {
      if (quantifiable[v] && occ[v] == inGroup[v]) {
        node->quantifyHere.push_back(v);
        merged[v] = false;
        occ[v] = 0;
      } else {
        occ[v] -= inGroup[v] - 1;  // group occurrences collapse into one
        keptVars.push_back(v);
      }
    }
    pending[group[0]] =
        Pending{std::move(node), std::move(merged), std::move(keptVars)};
    for (size_t k = group.size(); k-- > 1;) {
      pending.erase(pending.begin() + static_cast<long>(group[k]));
    }
  };

  std::vector<long> widthScore(nv, 0);
  while (true) {
    BddVar best = nv;
    long bestScore = 0;
    if (minWidth) {
      // widthScore[v] ≈ Σ_{conjunct p ∋ v} |supp(p)| — a cheap proxy for
      // the size of the merged support after eliminating v.
      std::fill(widthScore.begin(), widthScore.end(), 0);
      for (const Pending& p : pending) {
        long sz = static_cast<long>(p.vars.size());
        for (BddVar v : p.vars) widthScore[v] += sz;
      }
    }
    for (uint32_t v = 0; v < nv; ++v) {
      if (!quantifiable[v] || occ[v] == 0) continue;
      long score = minWidth ? widthScore[v] : occ[v];
      if (best == nv || score < bestScore) {
        best = v;
        bestScore = score;
      }
    }
    if (best == nv) break;
    std::vector<size_t> group;
    for (size_t i = 0; i < pending.size(); ++i)
      if (pending[i].supp[best]) group.push_back(i);
    mergeGroup(group);
  }

  // Conjoin the remaining quantifier-free pieces, small supports first.
  std::vector<size_t> order(pending.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pending[a].vars.size() < pending[b].vars.size();
  });
  std::vector<std::unique_ptr<QuantPlanNode>> rest;
  rest.reserve(order.size());
  for (size_t k : order) rest.push_back(std::move(pending[k].node));
  std::unique_ptr<QuantPlanNode> root = combine(std::move(rest), false);

  QuantPlan plan;
  plan.root = std::move(root);
  plan.method = method;
  return plan;
}

// ------------------------------------------------------------------- naive

QuantPlan planNaive(const std::vector<bool>& quantifiable,
                    const std::vector<int>& active,
                    const std::vector<Support>& supp) {
  std::unique_ptr<QuantPlanNode> acc;
  for (int i : active) {
    acc = acc == nullptr ? leaf(i) : join(std::move(acc), leaf(i));
  }
  // Quantify everything at the very end.
  Support all(quantifiable.size(), false);
  for (int i : active)
    for (uint32_t v = 0; v < supp[i].size(); ++v)
      if (supp[i][v]) all[v] = true;
  for (uint32_t v = 0; v < quantifiable.size(); ++v)
    if (quantifiable[v] && all[v]) acc->quantifyHere.push_back(v);
  QuantPlan plan;
  plan.root = std::move(acc);
  plan.method = QuantMethod::Naive;
  return plan;
}

}  // namespace

QuantPlan planQuantification(BddManager& mgr, const std::vector<Bdd>& relations,
                             const std::vector<bool>& quantifiable,
                             QuantMethod method) {
  std::vector<Support> supp;
  supp.reserve(relations.size());
  std::vector<int> active;
  for (size_t i = 0; i < relations.size(); ++i) {
    supp.push_back(supportMask(mgr, relations[i]));
    if (!relations[i].isOne()) active.push_back(static_cast<int>(i));
  }
  if (active.empty()) active.push_back(0);  // degenerate: product of ones

  switch (method) {
    case QuantMethod::Greedy:
      return planByElimination(mgr, quantifiable, active, supp, method);
    case QuantMethod::Tree:
      return planByElimination(mgr, quantifiable, active, supp, method);
    case QuantMethod::Naive:
      return planNaive(quantifiable, active, supp);
  }
  return planNaive(quantifiable, active, supp);
}

namespace {

Bdd execNode(BddManager& mgr, const QuantPlanNode* node,
             const std::vector<Bdd>& relations, QuantExecStats* stats) {
  Bdd result;
  if (node->relation >= 0) {
    result = relations[node->relation];
    if (!node->quantifyHere.empty()) {
      Bdd cube = mgr.bddOne();
      for (auto it = node->quantifyHere.rbegin(); it != node->quantifyHere.rend(); ++it)
        cube &= mgr.bddVar(*it);
      result = mgr.exists(result, cube);
    }
  } else {
    Bdd l = execNode(mgr, node->left.get(), relations, stats);
    Bdd r = execNode(mgr, node->right.get(), relations, stats);
    Bdd cube = mgr.bddOne();
    for (auto it = node->quantifyHere.rbegin(); it != node->quantifyHere.rend(); ++it)
      cube &= mgr.bddVar(*it);
    result = mgr.andExists(l, r, cube);
    if (stats != nullptr) ++stats->andExistsCalls;
    static obs::Counter& andExistsCalls = obs::counter("fsm.quant.and_exists");
    andExistsCalls.add();
  }
  static obs::Histogram& intermediateNodes =
      obs::histogram("fsm.quant.intermediate.nodes");
  size_t nc = result.nodeCount();
  intermediateNodes.record(nc);
  if (stats != nullptr) {
    stats->peakIntermediateNodes = std::max(stats->peakIntermediateNodes, nc);
  }
  return result;
}

}  // namespace

Bdd executePlan(BddManager& mgr, const QuantPlan& plan,
                const std::vector<Bdd>& relations, QuantExecStats* stats) {
  obs::Span span("fsm.quant.exec");
  return execNode(mgr, plan.root.get(), relations, stats);
}

Bdd productAndQuantify(BddManager& mgr, const std::vector<Bdd>& relations,
                       const Bdd& quantifyCube, QuantMethod method,
                       QuantExecStats* stats) {
  std::vector<bool> quantifiable(mgr.numVars(), false);
  for (BddVar v : mgr.support(quantifyCube)) quantifiable[v] = true;
  QuantPlan plan = planQuantification(mgr, relations, quantifiable, method);
  return executePlan(mgr, plan, relations, stats);
}

}  // namespace hsis
