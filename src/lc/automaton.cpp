#include "lc/automaton.hpp"

#include <functional>
#include <stdexcept>
#include <unordered_set>

namespace hsis {

namespace {

[[noreturn]] void autError(const std::string& name, const std::string& msg) {
  throw std::runtime_error("automaton " + name + ": " + msg);
}

/// Resolve a value token against a declaration (symbolic name or numeral).
std::optional<uint32_t> resolveValue(const blifmv::VarDecl* decl,
                                     const std::string& tok) {
  uint32_t domain = decl == nullptr ? 2 : decl->domain;
  if (decl != nullptr) {
    for (uint32_t k = 0; k < decl->valueNames.size(); ++k)
      if (decl->valueNames[k] == tok) return k;
  }
  if (!tok.empty() && tok.find_first_not_of("0123456789") == std::string::npos) {
    unsigned long v = std::stoul(tok);
    if (v < domain) return static_cast<uint32_t>(v);
  }
  return std::nullopt;
}

/// Evaluate a guard on a concrete assignment of guard signals.
bool evalConcrete(const SigExpr& e,
                  const std::function<uint32_t(const std::string&)>& valueOfSig,
                  const std::function<const blifmv::VarDecl*(const std::string&)>& declOfSig,
                  const std::string& autName) {
  switch (e.kind) {
    case SigExpr::Kind::True:
      return true;
    case SigExpr::Kind::False:
      return false;
    case SigExpr::Kind::Not:
      return !evalConcrete(*e.args[0], valueOfSig, declOfSig, autName);
    case SigExpr::Kind::And:
      return evalConcrete(*e.args[0], valueOfSig, declOfSig, autName) &&
             evalConcrete(*e.args[1], valueOfSig, declOfSig, autName);
    case SigExpr::Kind::Or:
      return evalConcrete(*e.args[0], valueOfSig, declOfSig, autName) ||
             evalConcrete(*e.args[1], valueOfSig, declOfSig, autName);
    case SigExpr::Kind::Atom: {
      uint32_t actual = valueOfSig(e.signal);
      std::string tok = e.value.empty() ? "1" : e.value;
      std::optional<uint32_t> want = resolveValue(declOfSig(e.signal), tok);
      if (!want.has_value())
        autError(autName, "guard value '" + tok + "' not in domain of " + e.signal);
      bool eq = actual == *want;
      return e.negatedAtom ? !eq : eq;
    }
  }
  return false;
}

void collectSignals(const SigExpr& e, std::vector<std::string>& out) {
  if (e.kind == SigExpr::Kind::Atom) {
    for (const std::string& s : out)
      if (s == e.signal) return;
    out.push_back(e.signal);
  }
  for (const auto& a : e.args) collectSignals(*a, out);
}

}  // namespace

uint32_t Automaton::addState(const std::string& name) {
  if (findState(name).has_value()) autError(name_, "duplicate state " + name);
  states_.push_back(name);
  return static_cast<uint32_t>(states_.size() - 1);
}

void Automaton::setInitial(const std::string& name) {
  std::optional<uint32_t> s = findState(name);
  if (!s.has_value()) autError(name_, "unknown initial state " + name);
  initial_ = *s;
}

void Automaton::addEdge(const std::string& from, const std::string& to,
                        SigExprRef guard) {
  std::optional<uint32_t> f = findState(from);
  std::optional<uint32_t> t = findState(to);
  if (!f.has_value()) autError(name_, "unknown state " + from);
  if (!t.has_value()) autError(name_, "unknown state " + to);
  edges_.push_back(Edge{*f, *t, std::move(guard)});
}

std::optional<uint32_t> Automaton::findState(const std::string& name) const {
  for (uint32_t i = 0; i < states_.size(); ++i)
    if (states_[i] == name) return i;
  return std::nullopt;
}

void Automaton::addRabinPair(const std::vector<std::string>& fin,
                             const std::vector<std::string>& inf) {
  RabinPair p;
  for (const std::string& s : fin) {
    std::optional<uint32_t> i = findState(s);
    if (!i.has_value()) autError(name_, "unknown state " + s + " in fin set");
    p.fin.push_back(*i);
  }
  for (const std::string& s : inf) {
    std::optional<uint32_t> i = findState(s);
    if (!i.has_value()) autError(name_, "unknown state " + s + " in inf set");
    p.inf.push_back(*i);
  }
  pairs_.push_back(std::move(p));
}

void Automaton::setStayAcceptance(const std::vector<std::string>& states) {
  std::unordered_set<std::string> in(states.begin(), states.end());
  std::vector<std::string> fin;
  std::vector<std::string> inf;
  for (const std::string& s : states_) {
    if (!in.contains(s)) fin.push_back(s);
    inf.push_back(s);  // Inf = all states: any cycle qualifies
  }
  addRabinPair(fin, inf);
}

void Automaton::setBuchiAcceptance(const std::vector<std::string>& states) {
  addRabinPair({}, states);
}

std::vector<bool> Automaton::deadStates() const {
  uint32_t n = numStates();
  std::vector<bool> live(n, false);

  // Adjacency (guards assumed satisfiable; identically-false guards would
  // only make this analysis conservative in the safe direction is NOT true,
  // so callers should not add 0-guards).
  std::vector<std::vector<uint32_t>> adj(n);
  for (const Edge& e : edges_) adj[e.from].push_back(e.to);

  for (const RabinPair& pair : pairs_) {
    std::vector<bool> isFin(n, false), isInf(n, false);
    for (uint32_t s : pair.fin) isFin[s] = true;
    for (uint32_t s : pair.inf) isInf[s] = true;

    // Find states on a cycle within G\Fin that passes through an Inf state.
    // Simple O(n^2) closure: within G\Fin compute reach sets.
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (uint32_t s = 0; s < n; ++s) {
      if (isFin[s]) continue;
      // BFS in G\Fin.
      std::vector<uint32_t> stack{s};
      while (!stack.empty()) {
        uint32_t u = stack.back();
        stack.pop_back();
        for (uint32_t v : adj[u]) {
          if (isFin[v] || reach[s][v]) continue;
          reach[s][v] = true;
          stack.push_back(v);
        }
      }
    }
    std::vector<bool> good(n, false);
    for (uint32_t s = 0; s < n; ++s) {
      if (isFin[s] || !isInf[s]) continue;
      if (reach[s][s]) good[s] = true;  // Inf state on a Fin-free cycle
    }
    // Live for this pair: can reach a good state through the FULL graph.
    std::vector<bool> pairLive = good;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Edge& e : edges_) {
        if (pairLive[e.to] && !pairLive[e.from]) {
          pairLive[e.from] = true;
          changed = true;
        }
      }
    }
    for (uint32_t s = 0; s < n; ++s)
      if (pairLive[s]) live[s] = true;
  }

  std::vector<bool> dead(n, false);
  for (uint32_t s = 0; s < n; ++s) dead[s] = !live[s];
  return dead;
}

void Automaton::compose(blifmv::Model& flat, const std::string& monitorSignal,
                        size_t maxRows) const {
  if (states_.empty()) autError(name_, "no states");
  if (pairs_.empty()) autError(name_, "no acceptance condition");
  if (flat.declOf(monitorSignal) != nullptr)
    autError(name_, "monitor signal name " + monitorSignal + " collides");

  // Guard signal inventory.
  std::vector<std::string> sigs;
  for (const Edge& e : edges_) collectSignals(*e.guard, sigs);
  std::vector<uint32_t> domains;
  std::vector<const blifmv::VarDecl*> decls;
  size_t assignments = 1;
  for (const std::string& s : sigs) {
    const blifmv::VarDecl* d = flat.declOf(s);
    decls.push_back(d);
    domains.push_back(d == nullptr ? 2 : d->domain);
    assignments *= domains.back();
    if (assignments * states_.size() > maxRows)
      autError(name_, "guard enumeration too large");
  }

  // Declare monitor variables.
  blifmv::VarDecl monDecl;
  monDecl.domain = static_cast<uint32_t>(states_.size());
  monDecl.valueNames = states_;
  std::string nsName = monitorSignal + "_ns";
  flat.varDecls[monitorSignal] = monDecl;
  flat.varDecls[nsName] = monDecl;

  blifmv::Table tab;
  tab.inputs = sigs;
  tab.inputs.push_back(monitorSignal);
  tab.output = nsName;

  std::vector<uint32_t> counters(sigs.size(), 0);
  auto valueOfSig = [&](const std::string& name) -> uint32_t {
    for (size_t i = 0; i < sigs.size(); ++i)
      if (sigs[i] == name) return counters[i];
    autError(name_, "internal: unknown guard signal " + name);
  };
  auto declOfSig = [&](const std::string& name) -> const blifmv::VarDecl* {
    for (size_t i = 0; i < sigs.size(); ++i)
      if (sigs[i] == name) return decls[i];
    return nullptr;
  };
  auto tokenOf = [&](size_t sigIdx, uint32_t v) -> std::string {
    const blifmv::VarDecl* d = decls[sigIdx];
    if (d != nullptr && v < d->valueNames.size()) return d->valueNames[v];
    return std::to_string(v);
  };

  for (size_t a = 0; a < assignments; ++a) {
    for (uint32_t s = 0; s < states_.size(); ++s) {
      int target = -1;
      for (const Edge& e : edges_) {
        if (e.from != s) continue;
        if (!evalConcrete(*e.guard, valueOfSig, declOfSig, name_)) continue;
        if (target >= 0 && target != static_cast<int>(e.to))
          autError(name_, "nondeterministic at state " + states_[s] +
                              " (two guards overlap)");
        target = static_cast<int>(e.to);
      }
      if (target < 0)
        autError(name_, "incomplete at state " + states_[s] +
                            " (no guard matches some input)");
      blifmv::Row row;
      for (size_t i = 0; i < sigs.size(); ++i)
        row.entries.push_back(blifmv::RowEntry::value(tokenOf(i, counters[i])));
      row.entries.push_back(blifmv::RowEntry::value(states_[s]));
      row.entries.push_back(
          blifmv::RowEntry::value(states_[static_cast<uint32_t>(target)]));
      tab.rows.push_back(std::move(row));
    }
    for (size_t k = sigs.size(); k-- > 0;) {
      if (++counters[k] < domains[k]) break;
      counters[k] = 0;
    }
  }

  flat.tables.push_back(std::move(tab));
  flat.latches.push_back(
      blifmv::Latch{nsName, monitorSignal, {states_[initial_]}});
}

}  // namespace hsis
