#include "lc/lc.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "obs/control.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"

namespace hsis {

namespace {

/// Reachable-state counts overflow int64 on large designs; clamp for the
/// gauge (exact counts stay in LcStats::reachedStates as double).
int64_t clampToGauge(double v) {
  constexpr double kMax = 9.2e18;
  if (v >= kMax) return static_cast<int64_t>(kMax);
  if (v <= 0) return 0;
  return static_cast<int64_t>(v);
}

}  // namespace

LcChecker::LcChecker(BddManager& mgr, const blifmv::Model& flatDesign,
                     const Automaton& property, const FairnessSpec& fairness,
                     LcOptions options)
    : opts_(options) {
  obs::Span span("lc.build");
  // Compose the monitor into a copy of the design, picking a monitor
  // signal name that collides with nothing in the flat model.
  blifmv::Model product = flatDesign;
  std::unordered_set<std::string> taken;
  for (const auto& [name, decl] : product.varDecls) {
    (void)decl;
    taken.insert(name);
  }
  for (const auto& l : product.latches) {
    taken.insert(l.input);
    taken.insert(l.output);
  }
  for (const auto& t : product.tables) {
    taken.insert(t.output);
    for (const auto& in : t.inputs) taken.insert(in);
  }
  monitor_ = "_monitor";
  while (taken.contains(monitor_) || taken.contains(monitor_ + "_ns")) {
    monitor_ += "_";
  }
  property.compose(product, monitor_);

  fsm_.emplace(mgr, product);
  if (opts_.partitionedTr) {
    tr_ = TransitionRelation::partitioned(*fsm_, opts_.clusterLimit);
  } else {
    tr_ = TransitionRelation::monolithic(*fsm_, opts_.quantMethod);
  }

  std::optional<MvVarId> mv = fsm_->signalVar(monitor_);
  if (!mv.has_value()) throw std::logic_error("lc: monitor variable missing");
  monitorVar_ = *mv;
  autDead_ = property.deadStates();

  buildConstraints(property, fairness);
}

Bdd LcChecker::monitorSet(const std::vector<uint32_t>& states) const {
  Bdd s = fsm_->mgr().bddZero();
  for (uint32_t k : states) s |= fsm_->space().literal(monitorVar_, k);
  return s;
}

void LcChecker::buildConstraints(const Automaton& property,
                                 const FairnessSpec& fairness) {
  BddManager& mgr = fsm_->mgr();
  const Fsm& fsm = *fsm_;

  for (const SigExprRef& e : fairness.noStay) {
    // May not stay in S forever == visits ¬S infinitely often.
    buchiSets_.push_back(!evalSigExpr(e, fsm));
  }
  for (const SigExprRef& e : fairness.buchi) {
    buchiSets_.push_back(evalSigExpr(e, fsm));
  }
  for (const auto& [fromE, toE] : fairness.fairEdges) {
    Bdd from = evalSigExpr(fromE, fsm);
    Bdd to = evalSigExpr(toE, fsm);
    // Both sides must be over present-state variables so the target can be
    // renamed onto the next-state rail.
    std::vector<bool> isState(mgr.numVars(), false);
    for (BddVar v : mgr.support(fsm.presentCube())) isState[v] = true;
    for (BddVar v : mgr.support(from))
      if (!isState[v])
        throw std::runtime_error(
            "fair-edge constraint references a non-latch signal");
    for (BddVar v : mgr.support(to))
      if (!isState[v])
        throw std::runtime_error(
            "fair-edge constraint references a non-latch signal");
    edgeSets_.push_back(from & fsm.presentToNext(to));
  }

  // Complemented Rabin acceptance: Streett pairs (L=Inf, U=Fin).
  for (const RabinPair& p : property.rabinPairs()) {
    Bdd inf = monitorSet(p.inf);
    Bdd fin = monitorSet(p.fin);
    if (p.fin.empty()) {
      // (Inf inf-often -> false) == Inf visited finitely often; as a hull
      // constraint this is a Streett pair with empty U.
      streett_.emplace_back(inf, mgr.bddZero());
    } else {
      streett_.emplace_back(inf, fin);
    }
  }
  if (buchiSets_.empty() && edgeSets_.empty())
    buchiSets_.push_back(mgr.bddOne());  // require an infinite run
  HSIS_LOG_INFO("lc.build", "fairness constraints compiled",
                {{"buchi_sets", buchiSets_.size()},
                 {"edge_sets", edgeSets_.size()},
                 {"streett_pairs", streett_.size()}});
}

Bdd LcChecker::preVia(const Bdd& e, const Bdd& set) const {
  const Fsm& fsm = *fsm_;
  BddManager& mgr = fsm.mgr();
  Bdd acc = fsm.presentToNext(set) & e;
  for (const Bdd& c : tr_->clusters()) acc &= c;
  acc = mgr.exists(acc, fsm.nextCube() & fsm.nonStateCube());
  return acc;
}

std::optional<Trace> LcChecker::buildTrace(const Bdd& hull) {
  obs::counter("lc.trace.attempts").add();
  const Fsm& fsm = *fsm_;
  std::optional<Trace> trace =
      fairLasso(*tr_, fsm.initialStates(), hull, buchiSets_, edgeSets_);
  if (!trace.has_value()) return trace;
  // Validate the Streett pairs (complemented Rabin acceptance) on the
  // cycle; if a pair is violated, force a visit to its U set and retry.
  for (const auto& [l, u] : streett_) {
    bool hitL = false, hitU = false;
    for (size_t i = static_cast<size_t>(trace->cycleStart);
         i < trace->states.size(); ++i) {
      Bdd sc = fsm.stateFromValues(fsm.decodeState(trace->states[i]));
      if (!(sc & l).isZero()) hitL = true;
      if (!(sc & u).isZero()) hitU = true;
    }
    if (hitL && !hitU) {
      std::vector<Bdd> cs = buchiSets_;
      cs.push_back(u);
      trace = fairLasso(*tr_, fsm.initialStates(), hull, cs, edgeSets_);
      if (!trace.has_value()) return trace;
    }
  }
  return trace;
}

Bdd LcChecker::fairHull(const Bdd& within) {
  obs::Span span("lc.hull");
  static obs::Counter& iterations = obs::counter("lc.hull.iterations");
  Bdd z = within;
  uint64_t steps = 0;
  while (true) {
    obs::checkAbort();
    ++stats_.hullIterations;
    iterations.add();
    ++steps;
    HSIS_LOG_DEBUG("lc.hull", "Emerson-Lei sweep",
                   {{"iteration", steps}, {"nodes", z.nodeCount()}});
    Bdd zOld = z;

    // Emerson-Lei steps for Büchi state sets.
    for (const Bdd& b : buchiSets_) {
      // Z := Z ∧ EX E[Z U (Z ∧ B)]
      Bdd target = z & b;
      Bdd y = target;
      while (true) {
        Bdd y2 = y | (z & tr_->preimage(y));
        if (y2 == y) break;
        y = std::move(y2);
      }
      z &= tr_->preimage(y);
    }
    // Edge sets: from Z one must be able to reach (within Z) a state that
    // fires an E-edge back into Z.
    for (const Bdd& e : edgeSets_) {
      Bdd takeoff = z & preVia(e, z);
      Bdd y = takeoff;
      while (true) {
        Bdd y2 = y | (z & tr_->preimage(y));
        if (y2 == y) break;
        y = std::move(y2);
      }
      z &= y;
    }
    // Streett pairs (L,U): remove L-states that cannot reach U within Z.
    for (const auto& [l, u] : streett_) {
      Bdd y = z & u;
      while (true) {
        Bdd y2 = y | (z & tr_->preimage(y));
        if (y2 == y) break;
        y = std::move(y2);
      }
      Bdd bad = z & l & !y;
      z &= !bad;
    }

    if (z == zOld || z.isZero()) {
      HSIS_LOG_DEBUG("lc.hull", "hull converged",
                     {{"iterations", steps},
                      {"empty", z.isZero()},
                      {"nodes", z.nodeCount()}});
      return z;
    }
  }
}

LcResult LcChecker::check() {
  obs::Span span("lc.check");
  obs::counter("lc.checks").add();
  auto start = std::chrono::steady_clock::now();
  LcResult res;
  const Fsm& fsm = *fsm_;

  // A statically unsatisfiable fairness constraint means the design has no
  // fair runs at all: containment holds vacuously.
  for (const Bdd& b : buchiSets_) {
    if (b.isZero()) {
      res.contained = true;
      res.notes.push_back(
          "vacuous pass: a fairness constraint is unsatisfiable");
      res.stats = stats_;
      return res;
    }
  }

  // Dead monitor states: reaching one is an immediate failure candidate.
  std::vector<uint32_t> deadList;
  for (uint32_t s = 0; s < autDead_.size(); ++s)
    if (autDead_[s]) deadList.push_back(s);
  Bdd deadSet = monitorSet(deadList);

  Bdd hitDead;
  ReachOptions ro;
  if (opts_.earlyFailureDetection && !deadSet.isZero()) {
    ro.watch = [&](const Bdd& frontier, size_t) {
      Bdd bad = frontier & deadSet;
      if (!bad.isZero()) {
        hitDead = bad;
        return true;
      }
      return false;
    };
  }
  ReachResult rr = reachableStates(*tr_, fsm.initialStates(), ro);
  stats_.reachabilitySteps = rr.depth;

  if (!hitDead.isNull()) {
    // Early failure candidate: a reachable product state whose monitor
    // component has no accepting continuation. Confirm there actually is a
    // fair run (the fairness constraints might rule all runs out), first on
    // the partial state space, widening to the full one if needed.
    Bdd hull = fairHull(rr.reached);
    bool confirmedOnPartial = !hull.isZero();
    if (!confirmedOnPartial) {
      rr = reachableStates(*tr_, fsm.initialStates(), ReachOptions{});
      hull = fairHull(rr.reached);
    }
    if (!hull.isZero()) {
      stats_.usedEarlyFailure = true;
      obs::counter("lc.efd.failures").add();
      HSIS_LOG_WARN("lc.check", "early failure: dead monitor state reached",
                    {{"step", rr.depth},
                     {"confirmed_on_partial", confirmedOnPartial}});
      res.contained = false;
      res.notes.push_back(
          "early failure: property automaton reached a dead state (step " +
          std::to_string(rr.depth) + ")");
      if (!confirmedOnPartial) {
        res.notes.push_back(
            "fair-cycle confirmation needed the full reachable set");
      }
      if (opts_.wantTrace) {
        res.trace = buildTrace(hull);
        if (!res.trace.has_value() && confirmedOnPartial) {
          res.notes.push_back(
              "early-failure trace needed the full reachable set");
          rr = reachableStates(*tr_, fsm.initialStates(), ReachOptions{});
          hull = fairHull(rr.reached);
          res.trace = buildTrace(hull);
        }
      }
      stats_.reachedStates = fsm.countStates(rr.reached);
      obs::gauge("lc.product.states").set(clampToGauge(stats_.reachedStates));
      stats_.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      res.stats = stats_;
      return res;
    }
    // No fair cycle anywhere: fall through with the full reachable set.
  }

  stats_.reachedStates = fsm.countStates(rr.reached);
  obs::gauge("lc.product.states").set(clampToGauge(stats_.reachedStates));

  // Reachability don't cares: restrict-minimize the clusters by the
  // reachable set before the (preimage-heavy) fair-cycle computation. All
  // subsequent sources are inside the reachable set, so the minimized
  // relation is exact where it is used.
  tr_ = tr_->minimized(rr.reached);

  // Early pass detection (technique 2): a required Büchi set that is
  // unreachable means no fair run exists at all.
  for (const Bdd& b : buchiSets_) {
    if ((b & rr.reached).isZero() && !b.isOne()) {
      res.contained = true;
      res.notes.push_back(
          "vacuous pass: a fairness constraint is unsatisfiable on the "
          "reachable state space");
      res.stats = stats_;
      return res;
    }
  }

  Bdd hull = fairHull(rr.reached);
  res.contained = hull.isZero();
  HSIS_LOG_INFO("lc.check", "containment check complete",
                {{"contained", res.contained},
                 {"hull_iterations", stats_.hullIterations},
                 {"reach_depth", rr.depth}});
  if (!res.contained && opts_.wantTrace) {
    res.trace = buildTrace(hull);
    if (!res.trace.has_value()) {
      res.notes.push_back(
          "fair hull nonempty but no concrete lasso found (approximation); "
          "result may be a false failure");
    }
  }
  res.stats = stats_;
  res.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return res;
}

std::string LcChecker::formatState(const std::vector<int8_t>& s) const {
  return fsm_->formatState(s);
}

std::string LcChecker::formatTrace(const Trace& t) const {
  std::ostringstream os;
  for (size_t i = 0; i < t.states.size(); ++i) {
    if (t.cycleStart == static_cast<int>(i)) os << "-- cycle --\n";
    os << "  " << i << ": " << formatState(t.states[i]) << "\n";
  }
  if (t.isLasso()) os << "  (back to " << t.cycleStart << ")\n";
  return os.str();
}

}  // namespace hsis
