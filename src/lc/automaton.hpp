// Deterministic ω-automata with edge guards over design signals and Rabin
// acceptance — the property formalism of HSIS's language-containment
// paradigm [16]. A property automaton is compiled into a BLIF-MV monitor
// (one latch + one transition table) and composed with the design, so the
// product machine is an ordinary Fsm.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "blifmv/blifmv.hpp"
#include "pif/sigexpr.hpp"

namespace hsis {

/// Rabin pair over automaton states: a run is accepted iff for SOME pair,
/// states in `fin` are visited finitely often AND states in `inf` are
/// visited infinitely often.
struct RabinPair {
  std::vector<uint32_t> fin;
  std::vector<uint32_t> inf;
};

class Automaton {
 public:
  explicit Automaton(std::string name = "property") : name_(std::move(name)) {}

  uint32_t addState(const std::string& name);
  void setInitial(const std::string& name);
  void addEdge(const std::string& from, const std::string& to, SigExprRef guard);

  void addRabinPair(const std::vector<std::string>& fin,
                    const std::vector<std::string>& inf);
  /// Figure-2 style sugar: accepting runs eventually remain inside `states`
  /// forever. Equivalent to the Rabin pair (Fin = complement, Inf = all).
  void setStayAcceptance(const std::vector<std::string>& states);
  /// Büchi sugar: accepting runs visit `states` infinitely often.
  void setBuchiAcceptance(const std::vector<std::string>& states);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] uint32_t numStates() const { return static_cast<uint32_t>(states_.size()); }
  [[nodiscard]] const std::string& stateName(uint32_t s) const { return states_[s]; }
  [[nodiscard]] std::optional<uint32_t> findState(const std::string& name) const;
  [[nodiscard]] uint32_t initialState() const { return initial_; }
  [[nodiscard]] const std::vector<RabinPair>& rabinPairs() const { return pairs_; }

  struct Edge {
    uint32_t from, to;
    SigExprRef guard;
  };
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// States with no accepting continuation (pure graph analysis, assuming
  /// all guards satisfiable). Reaching one of these is an immediate
  /// language-containment failure — the basis of early failure detection.
  [[nodiscard]] std::vector<bool> deadStates() const;

  /// Compile into a monitor and append to the flat design model:
  /// a latch `monitorSignal` (domain = #states, symbolic value names) and a
  /// transition table enumerating guard-signal assignments. Checks that the
  /// automaton is deterministic and complete over the enumerated space;
  /// throws std::runtime_error otherwise (or when the enumeration exceeds
  /// `maxRows`).
  void compose(blifmv::Model& flatDesign, const std::string& monitorSignal,
               size_t maxRows = 1u << 16) const;

 private:
  std::string name_;
  std::vector<std::string> states_;
  std::vector<Edge> edges_;
  std::vector<RabinPair> pairs_;
  uint32_t initial_ = 0;
};

}  // namespace hsis
