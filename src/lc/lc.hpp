// Language containment checking: L(design) ⊆ L(property).
//
// The deterministic edge-Rabin property automaton is composed with the
// design as a monitor; containment fails iff the product has a reachable
// fair cycle where "fair" means:
//   - every system fairness constraint holds (Büchi sets from negative
//     state-subset constraints, edge sets from positive fair edges), and
//   - the run is NOT accepted by the property: for every Rabin pair
//     (Fin,Inf), Inf visited infinitely often implies Fin visited
//     infinitely often (the complement of deterministic Rabin is Streett).
// Emptiness is decided with the Emerson-Lei-style operator iteration of
// [17], computing an approximation of the fair states first (exact for the
// Büchi fragment).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fsm/image.hpp"
#include "fsm/trace.hpp"
#include "lc/automaton.hpp"

namespace hsis {

/// System fairness constraints (paper Section 5.1), in terms of the shared
/// signal-expression language.
struct FairnessSpec {
  /// Negative state-subset constraints: a run may not stay forever inside
  /// the set (equivalently: must visit its complement infinitely often).
  std::vector<SigExprRef> noStay;
  /// Plain Büchi constraints: visit the set infinitely often.
  std::vector<SigExprRef> buchi;
  /// Positive fair edges: an edge from a state satisfying `first` to a
  /// state satisfying `second` must be taken infinitely often. Both sides
  /// may reference latch-output signals only.
  std::vector<std::pair<SigExprRef, SigExprRef>> fairEdges;

  [[nodiscard]] bool empty() const {
    return noStay.empty() && buchi.empty() && fairEdges.empty();
  }
};

struct LcOptions {
  bool earlyFailureDetection = true;
  bool wantTrace = true;
  bool partitionedTr = true;
  size_t clusterLimit = 5000;
  QuantMethod quantMethod = QuantMethod::Greedy;
};

struct LcStats {
  size_t reachabilitySteps = 0;
  size_t hullIterations = 0;
  double reachedStates = 0.0;
  bool usedEarlyFailure = false;
  double seconds = 0.0;
};

struct LcResult {
  bool contained = false;
  std::optional<Trace> trace;  ///< counterexample lasso when !contained
  LcStats stats;
  std::vector<std::string> notes;
};

class LcChecker {
 public:
  /// Compose `property` with the flattened design and build the product
  /// machine in `mgr`. `fairness` constrains the design's infinite runs.
  LcChecker(BddManager& mgr, const blifmv::Model& flatDesign,
            const Automaton& property, const FairnessSpec& fairness = {},
            LcOptions options = {});

  LcResult check();

  /// The product FSM (design + monitor latch).
  [[nodiscard]] const Fsm& fsm() const { return *fsm_; }
  [[nodiscard]] const TransitionRelation& tr() const { return *tr_; }
  [[nodiscard]] const std::string& monitorSignal() const { return monitor_; }
  /// Pretty-print a product state, monitor state last.
  [[nodiscard]] std::string formatState(const std::vector<int8_t>& s) const;
  /// Render a whole trace.
  [[nodiscard]] std::string formatTrace(const Trace& t) const;

  // Exposed for tests and the debugger:
  /// The fair hull: approximation of states on fair (counterexample) paths.
  Bdd fairHull(const Bdd& within);
  [[nodiscard]] const std::vector<Bdd>& buchiSets() const { return buchiSets_; }
  [[nodiscard]] const std::vector<Bdd>& edgeSets() const { return edgeSets_; }
  [[nodiscard]] const std::vector<std::pair<Bdd, Bdd>>& streettPairs() const {
    return streett_;
  }

 private:
  void buildConstraints(const Automaton& property, const FairnessSpec& fairness);
  Bdd monitorSet(const std::vector<uint32_t>& states) const;
  /// Counterexample lasso from the fair hull, validated against (and if
  /// necessary re-steered through) the Streett pairs.
  std::optional<Trace> buildTrace(const Bdd& hull);
  /// States of `set` with an edge of E into `set`.
  Bdd preVia(const Bdd& e, const Bdd& set) const;

  std::string monitor_;
  std::optional<Fsm> fsm_;
  std::optional<TransitionRelation> tr_;
  LcOptions opts_;
  std::vector<bool> autDead_;
  MvVarId monitorVar_ = 0;

  std::vector<Bdd> buchiSets_;               ///< state sets: visit inf often
  std::vector<Bdd> edgeSets_;                ///< edge sets over (x,y)
  std::vector<std::pair<Bdd, Bdd>> streett_; ///< (L,U): L inf often -> U inf often
  LcStats stats_;
};

}  // namespace hsis
