#include "proplib/proplib.hpp"

#include <stdexcept>

namespace hsis::proplib {

namespace {

PifProperty ctlProperty(const std::string& name, CtlRef f) {
  PifProperty p;
  p.kind = PifProperty::Kind::Ctl;
  p.name = name;
  p.ctl = std::move(f);
  return p;
}

PifProperty autProperty(const std::string& name, Automaton a) {
  PifProperty p;
  p.kind = PifProperty::Kind::Automaton;
  p.name = name;
  p.aut = std::move(a);
  return p;
}

}  // namespace

PifProperty invariant(const std::string& name, SigExprRef p) {
  return ctlProperty(name, ctlAG(ctlAtom(std::move(p))));
}

PifProperty invariantAutomaton(const std::string& name, SigExprRef p) {
  Automaton aut(name);
  aut.addState("ok");
  aut.addState("bad");
  aut.setInitial("ok");
  aut.addEdge("ok", "ok", p);
  aut.addEdge("ok", "bad", sigNot(p));
  aut.addEdge("bad", "bad", sigTrue());
  aut.setStayAcceptance({"ok"});
  return autProperty(name, std::move(aut));
}

PifProperty mutualExclusion(const std::string& name, SigExprRef a,
                            SigExprRef b) {
  return ctlProperty(
      name, ctlAG(ctlNot(ctlAnd(ctlAtom(std::move(a)), ctlAtom(std::move(b))))));
}

PifProperty absenceAfter(const std::string& name, SigExprRef p,
                         SigExprRef trigger) {
  return ctlProperty(
      name, ctlAG(ctlImplies(ctlAtom(std::move(trigger)),
                             ctlAX(ctlAG(ctlNot(ctlAtom(std::move(p))))))));
}

PifProperty precedence(const std::string& name, SigExprRef p, SigExprRef q) {
  // q may not occur strictly before the first p; simultaneous p & q counts
  // as p first.
  Automaton aut(name);
  aut.addState("waiting");
  aut.addState("done");
  aut.addState("bad");
  aut.setInitial("waiting");
  aut.addEdge("waiting", "done", p);
  aut.addEdge("waiting", "bad", sigAnd(sigNot(p), q));
  aut.addEdge("waiting", "waiting", sigAnd(sigNot(p), sigNot(q)));
  aut.addEdge("done", "done", sigTrue());
  aut.addEdge("bad", "bad", sigTrue());
  aut.setStayAcceptance({"waiting", "done"});
  return autProperty(name, std::move(aut));
}

PifProperty cyclicOrder(const std::string& name,
                        const std::vector<SigExprRef>& events) {
  if (events.size() < 2)
    throw std::invalid_argument("cyclicOrder needs at least two events");
  Automaton aut(name);
  size_t n = events.size();
  for (size_t i = 0; i < n; ++i) aut.addState("expect" + std::to_string(i));
  aut.addState("bad");
  aut.setInitial("expect0");

  auto noneOf = [&]() {
    SigExprRef g = sigTrue();
    for (const SigExprRef& e : events) g = sigAnd(std::move(g), sigNot(e));
    return g;
  };
  for (size_t i = 0; i < n; ++i) {
    std::string here = "expect" + std::to_string(i);
    std::string next = "expect" + std::to_string((i + 1) % n);
    // only event i fires
    SigExprRef only = events[i];
    SigExprRef others = sigFalse();
    for (size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      only = sigAnd(std::move(only), sigNot(events[k]));
      others = sigOr(std::move(others), events[k]);
    }
    aut.addEdge(here, here, noneOf());
    aut.addEdge(here, next, only);
    aut.addEdge(here, "bad", others);
  }
  aut.addEdge("bad", "bad", sigTrue());
  std::vector<std::string> good;
  for (size_t i = 0; i < n; ++i) good.push_back("expect" + std::to_string(i));
  aut.setStayAcceptance(good);
  return autProperty(name, std::move(aut));
}

PifProperty existence(const std::string& name, SigExprRef p) {
  return ctlProperty(name, ctlEF(ctlAtom(std::move(p))));
}

PifProperty response(const std::string& name, SigExprRef trigger,
                     SigExprRef resp) {
  return ctlProperty(name, ctlAG(ctlImplies(ctlAtom(std::move(trigger)),
                                            ctlAF(ctlAtom(std::move(resp))))));
}

PifProperty responseAutomaton(const std::string& name, SigExprRef trigger,
                              SigExprRef resp) {
  Automaton aut(name);
  aut.addState("idle");
  aut.addState("pending");
  aut.setInitial("idle");
  // a trigger answered in the same step never leaves idle
  aut.addEdge("idle", "pending", sigAnd(trigger, sigNot(resp)));
  aut.addEdge("idle", "idle", sigOr(sigNot(trigger), resp));
  aut.addEdge("pending", "idle", resp);
  aut.addEdge("pending", "pending", sigNot(resp));
  aut.setBuchiAcceptance({"idle"});
  return autProperty(name, std::move(aut));
}

PifProperty recurrence(const std::string& name, SigExprRef p) {
  Automaton aut(name);
  aut.addState("wait");
  aut.addState("seen");
  aut.setInitial("wait");
  aut.addEdge("wait", "seen", p);
  aut.addEdge("wait", "wait", sigNot(p));
  aut.addEdge("seen", "seen", p);
  aut.addEdge("seen", "wait", sigNot(p));
  aut.setBuchiAcceptance({"seen"});
  return autProperty(name, std::move(aut));
}

PifProperty recurrenceCtl(const std::string& name, SigExprRef p) {
  return ctlProperty(name, ctlAG(ctlAF(ctlAtom(std::move(p)))));
}

PifProperty resettable(const std::string& name, SigExprRef p) {
  return ctlProperty(name, ctlAG(ctlEF(ctlAtom(std::move(p)))));
}

FairnessSpec noStarvation(SigExprRef set) {
  FairnessSpec spec;
  spec.noStay.push_back(std::move(set));
  return spec;
}

}  // namespace hsis::proplib
