// The property library (paper Section 8, future-work item 8): "a library
// of commonly used properties... parameterized so that they could be
// adapted to specific situations, and ... accessible through an interface
// that would not require knowledge of CTL or ω-automata."
//
// Every template takes signal expressions (the same atoms PIF uses) and
// returns a ready-to-verify PifProperty — either a CTL formula or a
// deterministic ω-automaton, whichever formalism suits the property class
// (paper Section 5.2 discusses why both matter).
#pragma once

#include <string>
#include <vector>

#include "pif/pif.hpp"

namespace hsis::proplib {

// ---- safety ----

/// p holds in every reachable state:  AG p.
PifProperty invariant(const std::string& name, SigExprRef p);

/// The same invariant as a Figure-2 style automaton (language containment).
PifProperty invariantAutomaton(const std::string& name, SigExprRef p);

/// a and b are never true together:  AG !(a & b).
PifProperty mutualExclusion(const std::string& name, SigExprRef a,
                            SigExprRef b);

/// After any state satisfying `trigger`, p never holds again:
/// AG (trigger -> AX AG !p).
PifProperty absenceAfter(const std::string& name, SigExprRef p,
                         SigExprRef trigger);

/// q does not occur before the first p (automaton; precedence).
PifProperty precedence(const std::string& name, SigExprRef p, SigExprRef q);

/// The events fire only in cyclic order e0, e1, ..., ek-1, e0, ...
/// (automaton). At most one event may be true per step; simultaneous
/// events are a violation.
PifProperty cyclicOrder(const std::string& name,
                        const std::vector<SigExprRef>& events);

// ---- liveness ----

/// Something good is reachable:  EF p.
PifProperty existence(const std::string& name, SigExprRef p);

/// Every request is eventually answered:  AG (trigger -> AF response).
PifProperty response(const std::string& name, SigExprRef trigger,
                     SigExprRef response);

/// The automaton form of response: runs where a trigger stays unanswered
/// forever are rejected (Büchi acceptance on the idle state).
PifProperty responseAutomaton(const std::string& name, SigExprRef trigger,
                              SigExprRef response);

/// p holds infinitely often (automaton, Büchi).
PifProperty recurrence(const std::string& name, SigExprRef p);

/// The CTL form of recurrence:  AG AF p.
PifProperty recurrenceCtl(const std::string& name, SigExprRef p);

/// From everywhere the system can return to p:  AG EF p (resettability).
PifProperty resettable(const std::string& name, SigExprRef p);

// ---- fairness helpers ----

/// "The system may not stay in `set` forever" as a FairnessSpec fragment.
FairnessSpec noStarvation(SigExprRef set);

}  // namespace hsis::proplib
