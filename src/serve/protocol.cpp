#include "serve/protocol.hpp"

#include <cstdio>

#include "obs/obs.hpp"

namespace hsis::serve {

namespace {

using obs::jsonlite::Object;
using obs::jsonlite::Value;

using obs::jsonlite::find;  // ADL would find it anyway; be explicit

std::string stringField(const Object& obj, const std::string& key,
                        std::string_view fallback = "") {
  const Value* v = find(obj, key);
  if (v == nullptr) return std::string(fallback);
  if (!v->isString())
    throw ProtocolError("field '" + key + "' must be a string");
  return v->str();
}

double numberField(const Object& obj, const std::string& key,
                   double fallback = 0.0) {
  const Value* v = find(obj, key);
  if (v == nullptr) return fallback;
  if (!v->isNumber())
    throw ProtocolError("field '" + key + "' must be a number");
  return v->number();
}

bool boolField(const Object& obj, const std::string& key, bool fallback) {
  const Value* v = find(obj, key);
  if (v == nullptr) return fallback;
  if (!std::holds_alternative<bool>(v->v))
    throw ProtocolError("field '" + key + "' must be a boolean");
  return v->boolean();
}

void appendField(std::string& out, std::string_view key,
                 std::string_view value, bool& first) {
  if (!first) out += ", ";
  first = false;
  out += '"';
  out += key;
  out += "\": ";
  out += value;
}

void appendString(std::string& out, std::string_view key,
                  std::string_view value, bool& first) {
  appendField(out, key, "\"" + escapeJson(value) + "\"", first);
}

std::string frameHead(std::string_view event, std::string_view id) {
  std::string out = "{\"schema\": \"";
  out += kSchema;
  out += "\", \"event\": \"";
  out += event;
  out += "\", \"id\": \"";
  out += escapeJson(id);
  out += '"';
  return out;
}

}  // namespace

std::string escapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------- requests

Request parseRequest(const std::string& line) {
  Value doc;
  try {
    doc = obs::jsonlite::parse(line);
  } catch (const std::exception& e) {
    throw ProtocolError(std::string("bad JSON: ") + e.what());
  }
  if (!doc.isObject()) throw ProtocolError("request must be a JSON object");
  const Object& obj = doc.object();

  Request req;
  req.id = stringField(obj, "id");
  std::string op = stringField(obj, "op");
  if (op == "ping") {
    req.op = Request::Op::Ping;
  } else if (op == "stats") {
    req.op = Request::Op::Stats;
  } else if (op == "stats-stream") {
    req.op = Request::Op::StatsStream;
    double interval = numberField(obj, "interval_ms");
    if (interval < 0)
      throw ProtocolError("'interval_ms' must be >= 0");
    req.statsIntervalMs = static_cast<uint64_t>(interval);
  } else if (op == "shutdown") {
    req.op = Request::Op::Shutdown;
  } else if (op == "check") {
    req.op = Request::Op::Check;
    CheckRequest& c = req.check;
    c.id = req.id;
    c.name = stringField(obj, "name");
    const Value* design = find(obj, "design");
    if (design == nullptr || !design->isObject())
      throw ProtocolError("check request needs a 'design' object");
    const Object& d = design->object();
    std::string kind = stringField(d, "kind", "verilog");
    if (kind == "verilog") {
      c.design.kind = Session::DesignSource::Kind::Verilog;
    } else if (kind == "blifmv") {
      c.design.kind = Session::DesignSource::Kind::BlifMv;
    } else {
      throw ProtocolError("design kind must be 'verilog' or 'blifmv'");
    }
    c.design.text = stringField(d, "text");
    if (c.design.text.empty())
      throw ProtocolError("design text must not be empty");
    c.design.top = stringField(d, "top");
    c.pif = stringField(obj, "pif");
    if (const Value* b = find(obj, "budget"); b != nullptr) {
      if (!b->isObject()) throw ProtocolError("'budget' must be an object");
      c.budget.wallSeconds = numberField(b->object(), "wall_s");
      c.budget.rssMb =
          static_cast<uint64_t>(numberField(b->object(), "rss_mb"));
    }
    c.wantTrace = boolField(obj, "want_trace", true);
    c.traceId = stringField(obj, "trace_id");
  } else {
    throw ProtocolError("unknown op '" + op + "'");
  }
  return req;
}

std::string renderRequest(const Request& request) {
  std::string out = "{";
  bool first = true;
  appendString(out, "schema", kSchema, first);
  switch (request.op) {
    case Request::Op::Ping: appendString(out, "op", "ping", first); break;
    case Request::Op::Stats: appendString(out, "op", "stats", first); break;
    case Request::Op::Shutdown:
      appendString(out, "op", "shutdown", first);
      break;
    case Request::Op::StatsStream:
      appendString(out, "op", "stats-stream", first);
      break;
    case Request::Op::Check: appendString(out, "op", "check", first); break;
  }
  appendString(out, "id", request.id, first);
  if (request.op == Request::Op::StatsStream) {
    appendField(out, "interval_ms", std::to_string(request.statsIntervalMs),
                first);
  }
  if (request.op == Request::Op::Check) {
    const CheckRequest& c = request.check;
    if (!c.name.empty()) appendString(out, "name", c.name, first);
    std::string design = "{\"kind\": \"";
    design += c.design.kind == Session::DesignSource::Kind::Verilog
                  ? "verilog"
                  : "blifmv";
    design += "\", \"text\": \"" + escapeJson(c.design.text) + "\"";
    if (!c.design.top.empty())
      design += ", \"top\": \"" + escapeJson(c.design.top) + "\"";
    design += "}";
    appendField(out, "design", design, first);
    appendString(out, "pif", c.pif, first);
    std::string budget = "{\"wall_s\": " + obs::jsonDouble(c.budget.wallSeconds) +
                         ", \"rss_mb\": " + std::to_string(c.budget.rssMb) + "}";
    appendField(out, "budget", budget, first);
    appendField(out, "want_trace", c.wantTrace ? "true" : "false", first);
    if (!c.traceId.empty()) appendString(out, "trace_id", c.traceId, first);
  }
  out += "}";
  return out;
}

// ------------------------------------------------------------------ frames

namespace {

void appendTraceId(std::string& out, std::string_view traceId) {
  if (!traceId.empty())
    out += ", \"trace_id\": \"" + escapeJson(traceId) + "\"";
}

}  // namespace

std::string acceptedFrame(std::string_view id, size_t queueDepth,
                          std::string_view traceId) {
  std::string out = frameHead("accepted", id);
  out += ", \"queue_depth\": " + std::to_string(queueDepth);
  appendTraceId(out, traceId);
  out += "}";
  return out;
}

std::string loadedFrame(std::string_view id, bool cacheHit,
                        uint64_t readMicros, std::string_view traceId) {
  std::string out = frameHead("loaded", id);
  out += ", \"cache\": \"";
  out += cacheHit ? "hit" : "miss";
  out += "\", \"read_micros\": " + std::to_string(readMicros);
  appendTraceId(out, traceId);
  out += "}";
  return out;
}

std::string verdictFrame(std::string_view id, const VerdictInfo& verdict,
                         std::string_view traceId) {
  std::string out = frameHead("verdict", id);
  out += ", \"property\": \"" + escapeJson(verdict.property) + "\"";
  out += ", \"paradigm\": \"";
  out += verdict.languageContainment ? "lc" : "ctl";
  out += "\", \"holds\": ";
  out += verdict.holds ? "true" : "false";
  out += ", \"seconds\": " + obs::jsonDouble(verdict.seconds);
  if (!verdict.trace.empty())
    out += ", \"trace\": \"" + escapeJson(verdict.trace) + "\"";
  appendTraceId(out, traceId);
  out += "}";
  return out;
}

std::string doneFrame(std::string_view id, std::string_view verdict,
                      std::string_view detail, const DoneStats& stats,
                      std::string_view traceId) {
  std::string out = frameHead("done", id);
  out += ", \"verdict\": \"";
  out += verdict;
  out += "\"";
  if (!detail.empty())
    out += ", \"detail\": \"" + escapeJson(detail) + "\"";
  out += ", \"stats\": {\"cache\": \"";
  out += stats.cacheHit ? "hit" : "miss";
  out += "\", \"read_micros\": " + std::to_string(stats.readMicros);
  out += ", \"wall_s\": " + obs::jsonDouble(stats.wallSeconds);
  out += ", \"properties\": " + std::to_string(stats.properties);
  out += ", \"failures\": " + std::to_string(stats.failures);
  const StageMicros& st = stats.stages;
  out += ", \"stages\": {\"queue\": " + std::to_string(st.queue);
  out += ", \"parse\": " + std::to_string(st.parse);
  out += ", \"tr\": " + std::to_string(st.tr);
  out += ", \"reach\": " + std::to_string(st.reach);
  out += ", \"check\": " + std::to_string(st.check);
  out += ", \"render\": " + std::to_string(st.render);
  out += "}";
  if (stats.hasCoverage) {
    out += ", \"coverage\": {\"state_fraction\": " +
           obs::jsonDouble(stats.covStateFraction);
    out += ", \"values_reached\": " + std::to_string(stats.covValuesReached);
    out += ", \"values_total\": " + std::to_string(stats.covValuesTotal);
    out += ", \"bins_hit\": " + std::to_string(stats.covBinsHit);
    out += ", \"bins_total\": " + std::to_string(stats.covBinsTotal);
    out += "}";
  }
  if (stats.hasCex) {
    out += ", \"cex\": {\"path\": \"" + escapeJson(stats.cexPath) + "\"";
    out += ", \"replay\": \"" + escapeJson(stats.cexReplay) + "\"}";
  }
  out += "}";
  appendTraceId(out, traceId);
  out += "}";
  return out;
}

std::string pongFrame(std::string_view id, std::string_view version) {
  std::string out = frameHead("pong", id);
  out += ", \"version\": \"" + escapeJson(version) + "\"}";
  return out;
}

std::string statsFrame(std::string_view id,
                       std::string_view serverJsonObject) {
  std::string out = frameHead("stats", id);
  out += ", \"server\": ";
  out += serverJsonObject;
  out += "}";
  return out;
}

std::string statsTickFrame(std::string_view id, uint64_t seq,
                           std::string_view statsJsonObject) {
  // Its own schema: consumers (hsis_top, CI asserts) key on it without
  // caring about the request/response protocol version.
  std::string out = "{\"schema\": \"hsis-serve-stats-v1\", \"event\": "
                    "\"stats-tick\", \"id\": \"";
  out += escapeJson(id);
  out += "\", \"seq\": " + std::to_string(seq);
  out += ", \"stats\": ";
  out += statsJsonObject;
  out += "}";
  return out;
}

std::string byeFrame(std::string_view id) { return frameHead("bye", id) + "}"; }

std::string errorFrame(std::string_view id, std::string_view message) {
  std::string out = frameHead("error", id);
  out += ", \"message\": \"" + escapeJson(message) + "\"}";
  return out;
}

Frame parseFrame(const std::string& line) {
  Frame frame;
  try {
    frame.body = obs::jsonlite::parse(line);
  } catch (const std::exception& e) {
    throw ProtocolError(std::string("bad frame JSON: ") + e.what());
  }
  if (!frame.body.isObject())
    throw ProtocolError("frame must be a JSON object");
  const Object& obj = frame.body.object();
  frame.event = stringField(obj, "event");
  if (frame.event.empty()) throw ProtocolError("frame missing 'event'");
  frame.id = stringField(obj, "id");
  return frame;
}

}  // namespace hsis::serve
