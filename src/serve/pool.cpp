#include "serve/pool.hpp"

#include <deque>
#include <thread>

#include "cex/cex.hpp"
#include "debug/report.hpp"
#include "obs/control.hpp"
#include "obs/ledger.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "obs/tracectx.hpp"
#include "par/batch.hpp"
#include "serve/telemetry.hpp"

namespace hsis::serve {

struct SessionPool::Job {
  CheckRequest req;
  FrameSink sink;
  std::string digest;
  uint64_t traceId = 0;    ///< resolved at admission, nonzero
  uint64_t enqueueNs = 0;  ///< admission time; queue stage + wall origin
  uint64_t dequeueNs = 0;  ///< worker pickup time (set by workerMain)
};

namespace {

/// The per-stage serve.latency.* histograms (micros). Registered once;
/// references are stable for the process lifetime (obs::Registry).
struct LatencyHistograms {
  obs::Histogram& queue = obs::histogram("serve.latency.queue");
  obs::Histogram& parse = obs::histogram("serve.latency.parse");
  obs::Histogram& tr = obs::histogram("serve.latency.tr");
  obs::Histogram& reach = obs::histogram("serve.latency.reach");
  obs::Histogram& check = obs::histogram("serve.latency.check");
  obs::Histogram& render = obs::histogram("serve.latency.render");
  obs::Histogram& total = obs::histogram("serve.latency.total");
};

LatencyHistograms& latencyHistograms() {
  static LatencyHistograms h;
  return h;
}

void recordStageLatencies(const StageMicros& st, uint64_t totalMicros) {
  LatencyHistograms& h = latencyHistograms();
  h.queue.record(st.queue);
  h.parse.record(st.parse);
  h.tr.record(st.tr);
  h.reach.record(st.reach);
  h.check.record(st.check);
  h.render.record(st.render);
  h.total.record(totalMicros);
}

}  // namespace

struct SessionPool::Worker {
  size_t index = 0;
  Session session;
  obs::TaskAbort slot;
  obs::Watchdog dog;
  std::deque<Job> queue;  ///< guarded by the pool mutex
  bool busy = false;      ///< guarded by the pool mutex
  std::thread thread;

  explicit Worker(Session::Options options) : session(options) {}
};

SessionPool::SessionPool(PoolOptions options)
    : opts_(options),
      startNs_(obs::WallTimer::nowNs()),
      cache_(options.workers == 0 ? 1 : options.workers) {
  if (opts_.workers == 0) opts_.workers = 1;
  counters_.workers = opts_.workers;
  workers_.reserve(opts_.workers);
  for (size_t i = 0; i < opts_.workers; ++i) {
    auto w = std::make_unique<Worker>(opts_.session);
    w->index = i;
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    Worker& worker = *w;
    worker.thread = std::thread([this, &worker] { workerMain(worker); });
  }
}

SessionPool::~SessionPool() { shutdown(true); }

bool SessionPool::submit(CheckRequest request, FrameSink sink) {
  // Fill in server defaults / clamp to the ceiling outside the lock.
  Budget& b = request.budget;
  if (b.wallSeconds <= 0) b.wallSeconds = opts_.defaultBudget.wallSeconds;
  if (b.rssMb == 0) b.rssMb = opts_.defaultBudget.rssMb;
  if (opts_.maxBudget.wallSeconds > 0 &&
      (b.wallSeconds <= 0 || b.wallSeconds > opts_.maxBudget.wallSeconds))
    b.wallSeconds = opts_.maxBudget.wallSeconds;
  if (opts_.maxBudget.rssMb > 0 &&
      (b.rssMb == 0 || b.rssMb > opts_.maxBudget.rssMb))
    b.rssMb = opts_.maxBudget.rssMb;
  std::string digest = request.design.digest();
  // Resolve the request's trace identity at admission so the accepted
  // frame already carries it. A client-supplied id (16 hex digits) wins;
  // anything absent or malformed gets a fresh server-assigned id.
  uint64_t traceId = obs::parseTraceId(request.traceId);
  if (traceId == 0) traceId = obs::newTraceId();
  const std::string traceHex = obs::traceIdHex(traceId);
  const uint64_t enqueueNs = obs::WallTimer::nowNs();

  std::string accepted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ++counters_.rejected;
      obs::counter("serve.requests.rejected").add();
      sink(errorFrame(request.id, "server is shutting down"));
      return false;
    }
    if (queuedTotal_ >= opts_.maxQueue) {
      ++counters_.rejected;
      obs::counter("serve.requests.rejected").add();
      sink(errorFrame(request.id,
                      "queue full (" + std::to_string(queuedTotal_) +
                          " queued), retry later"));
      return false;
    }
    // Route: resident digest -> its worker (warm session); otherwise take
    // the LRU slot, evicting that worker's cold design.
    size_t slot;
    if (std::optional<size_t> hit = cache_.find(digest)) {
      slot = *hit;
      cache_.touch(digest);
    } else {
      slot = cache_.assign(digest);
    }
    ++queuedTotal_;
    obs::gauge("serve.queue_depth").set(static_cast<int64_t>(queuedTotal_));
    ++counters_.accepted;
    obs::counter("serve.requests.accepted").add();
    accepted = acceptedFrame(request.id, queuedTotal_, traceHex);
    workers_[slot]->queue.push_back(
        Job{std::move(request), sink, std::move(digest), traceId, enqueueNs});
  }
  sink(accepted);
  cv_.notify_all();
  return true;
}

void SessionPool::workerMain(Worker& worker) {
  obs::setThreadName("serve.worker." + std::to_string(worker.index));
  // The slot outlives every request this thread runs; safe points reached
  // below observe it, so a per-request watchdog can cancel just this
  // worker's request.
  obs::bindTaskAbort(&worker.slot);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !worker.queue.empty(); });
      if (worker.queue.empty()) {
        if (stopping_) break;
        continue;
      }
      job = std::move(worker.queue.front());
      worker.queue.pop_front();
      job.dequeueNs = obs::WallTimer::nowNs();
      --queuedTotal_;
      obs::gauge("serve.queue_depth").set(static_cast<int64_t>(queuedTotal_));
      worker.busy = true;
    }
    runJob(worker, job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      worker.busy = false;
    }
  }
  obs::bindTaskAbort(nullptr);
}

void SessionPool::runJob(Worker& worker, Job& job) {
  // Bind the request's identity first: every Span, HSIS_LOG_* event, and
  // flight-recorder mirror on this thread now carries the trace id until
  // the scope closes. The span must nest inside the scope so it is stamped.
  obs::TraceContext traceCtx{job.traceId, job.req.id};
  obs::TraceScope traceScope(traceCtx);
  const std::string traceHex = obs::traceIdHex(job.traceId);
  obs::Span span("serve.request");
  const CheckRequest& req = job.req;
  std::string verdict = "error";
  std::string detail;
  DoneStats stats;
  stats.stages.queue =
      job.dequeueNs > job.enqueueNs ? (job.dequeueNs - job.enqueueNs) / 1000
                                    : 0;

  // Arm the per-request budget. Current (not peak) RSS: VmHWM is monotonic
  // over the daemon lifetime, so a peak check would trip forever once any
  // request ever crossed the limit.
  obs::WatchdogOptions wo;
  wo.wallLimitSeconds = req.budget.wallSeconds;
  wo.memLimitKb = req.budget.rssMb * 1024;
  wo.pollMs = 20;
  wo.useCurrentRss = true;
  wo.target = &worker.slot;
  if (wo.wallLimitSeconds > 0 || wo.memLimitKb > 0) worker.dog.start(wo);

  try {
    obs::WallTimer stageTimer;
    bool reloaded = worker.session.load(req.design);
    worker.session.build();
    const uint64_t loadBuildMicros = stageTimer.micros();
    stats.cacheHit = !reloaded;
    stats.readMicros = reloaded ? worker.session.lastBuildMicros() : 0;
    // Stage split: the Session separates TR construction from the rest of
    // the build; everything else under load+build (parse, flatten, FSM
    // elaboration) counts as "parse". A cache hit leaves both at ~0.
    stats.stages.tr = worker.session.lastTrMicros();
    stats.stages.parse = loadBuildMicros > stats.stages.tr
                             ? loadBuildMicros - stats.stages.tr
                             : 0;
    obs::counter(stats.cacheHit ? "serve.cache.hit" : "serve.cache.miss")
        .add();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats.cacheHit ? ++counters_.cacheHits : ++counters_.cacheMisses;
    }
    job.sink(loadedFrame(req.id, stats.cacheHit, stats.readMicros, traceHex));
    HSIS_LOG_INFO("serve.request", "design loaded",
                  {{"digest", std::string_view(job.digest)},
                   {"cache", std::string_view(stats.cacheHit ? "hit"
                                                             : "miss")},
                   {"read_micros", stats.readMicros}});

    stageTimer.restart();
    PifFile pif = parsePif(req.pif);
    worker.session.setFairness(pif.fairness);
    worker.session.setWantTraces(req.wantTrace);
    stats.stages.parse += stageTimer.micros();

    // Force the reached-state fixpoint once, as its own stage, when any
    // CTL property will need it. The checker caches the result, so the
    // per-property "check" stage below measures pure model checking — and
    // a warm re-submission reports reach ~0 instead of re-paying it.
    bool anyCtl = false;
    for (const PifProperty& p : pif.properties)
      anyCtl = anyCtl || p.kind == PifProperty::Kind::Ctl;
    if (anyCtl) {
      stageTimer.restart();
      obs::Span reachSpan("serve.stage.reach");
      (void)worker.session.checker().reached();
      // Coverage rides on the just-computed fixpoint (symbolic-only here:
      // no simulator enumeration on the serve path). A disabled report
      // leaves hasCoverage false, so legacy frame/ledger shapes survive.
      cov::Report covRep = worker.session.coverage();
      if (covRep.enabled) {
        stats.hasCoverage = true;
        stats.covStateFraction = covRep.stateFraction();
        stats.covValuesReached = covRep.valuesReached;
        stats.covValuesTotal = covRep.valuesTotal;
        stats.covBinsHit = covRep.binsHit;
        stats.covBinsTotal = covRep.binsTotal;
      }
      stats.stages.reach = stageTimer.micros();
    }

    // Multi-property requests fan out onto the batch scheduler when the
    // pool is configured for it: one replica manager per batch worker,
    // verdict frames emitted afterwards in property order. The request's
    // abort slot is relayed so a budget breach still unwinds the batch
    // (at property boundaries) with verdict "aborted".
    std::vector<BugReport> batchReports;
    bool usedBatch = false;
    if (opts_.batchJobs > 1 && pif.properties.size() > 1) {
      stageTimer.restart();
      obs::Span batchSpan("serve.stage.batch");
      par::BatchOptions bo;
      bo.jobs = opts_.batchJobs;
      bo.requestAbort = &worker.slot;
      par::BatchReport batch =
          par::checkBatch(worker.session, pif.properties, bo);
      stats.stages.check += stageTimer.micros();
      batchReports = std::move(batch.reports);
      usedBatch = true;
    }

    for (size_t pi = 0; pi < pif.properties.size(); ++pi) {
      const PifProperty& p = pif.properties[pi];
      obs::checkAbort();  // between properties, not only at engine depth
      stageTimer.restart();
      BugReport r =
          usedBatch ? std::move(batchReports[pi]) : worker.session.check(p);
      if (!usedBatch) stats.stages.check += stageTimer.micros();
      ++stats.properties;
      VerdictInfo v;
      v.property = r.propertyName;
      v.languageContainment =
          r.paradigm == BugReport::Paradigm::LanguageContainment;
      v.holds = r.holds;
      v.seconds = r.seconds;
      if (!r.holds && req.wantTrace) {
        stageTimer.restart();
        if (r.trace.has_value())
          v.trace = renderTrace(*r.trace, worker.session.fsm());
        for (const std::string& n : r.notes) {
          if (!v.trace.empty()) v.trace += '\n';
          v.trace += n;
        }
        stats.stages.render += stageTimer.micros();
      }
      if (!r.holds) {
        ++stats.failures;
        if (!detail.empty()) detail += ", ";
        detail += r.propertyName;
      }
      // Counterexample capture: the first failing CTL check with a trace
      // gets a replay-verified cex.json/cex.vcd pair under the artifact
      // dir, keyed by the request's trace id. Unlike slow capture this
      // runs before the done frame, so the done stats and the ledger
      // record both carry the pointer. LC failures live in the product
      // FSM, whose states don't decode against the design — excluded.
      if (!r.holds && r.trace.has_value() &&
          r.paradigm == BugReport::Paradigm::ModelChecking && !stats.hasCex &&
          !opts_.artifactDir.empty() && cex::cexEnabled()) {
        cex::BuildInputs bi;
        bi.propertyName = r.propertyName;
        bi.propertyText = r.propertyText;
        bi.traceId = traceHex;
        bi.designName = req.name.empty() ? job.digest : req.name;
        bi.designDigest = job.digest;
        bi.designKind =
            req.design.kind == Session::DesignSource::Kind::Verilog
                ? "verilog"
                : "blifmv";
        bi.designTop = req.design.top;
        bi.designText = req.design.text;
        cex::Artifact art = cex::build(worker.session.fsm(), *r.trace, bi);
        cex::verifyAndStamp(art, worker.session.fsm(), worker.session.tr());
        std::string dir = opts_.artifactDir + "/" + traceHex;
        if (cex::writeFiles(art, dir + "/cex.json", dir + "/cex.vcd")) {
          stats.hasCex = true;
          stats.cexPath = dir;
          stats.cexReplay = art.replay;
          obs::counter("serve.cex_captures").add();
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.cexCaptures;
          }
          HSIS_LOG_INFO("serve.request", "counterexample captured",
                        {{"property", std::string_view(r.propertyName)},
                         {"replay", std::string_view(art.replay)},
                         {"artifact_dir", std::string_view(dir)}});
        }
      }
      job.sink(verdictFrame(req.id, v, traceHex));
    }
    verdict = stats.failures == 0 ? "pass" : "fail";
  } catch (const obs::AbortedError& e) {
    verdict = "aborted";
    detail = e.reason();
  } catch (const std::exception& e) {
    verdict = "error";
    detail = e.what();
  }
  worker.dog.stop();
  worker.slot.clear();

  // A failed/aborted load leaves the session empty: drop the cache claim
  // so the next request for this digest is routed as a plain miss.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!worker.session.resident() || worker.session.digest() != job.digest)
      cache_.drop(job.digest);
    if (verdict == "pass" || verdict == "fail") {
      ++counters_.completed;
    } else if (verdict == "aborted") {
      ++counters_.aborted;
    } else {
      ++counters_.failed;
    }
    if (stats.hasCoverage) {
      ++counters_.covReports;
      counters_.covLastStateFraction = stats.covStateFraction;
      counters_.covLastValuesReached = stats.covValuesReached;
      counters_.covLastValuesTotal = stats.covValuesTotal;
      counters_.covLastBinsHit = stats.covBinsHit;
      counters_.covLastBinsTotal = stats.covBinsTotal;
    }
  }
  obs::counter(verdict == "aborted"  ? "serve.requests.aborted"
               : verdict == "error" ? "serve.requests.failed"
                                    : "serve.requests.completed")
      .add();

  // Wall is end-to-end (admission -> done), so the stage micros — queue
  // included — account for it: their sum tracks wall_s to within the
  // untimed slivers (frame I/O, counter updates).
  const uint64_t doneNs = obs::WallTimer::nowNs();
  const uint64_t totalMicros =
      doneNs > job.enqueueNs ? (doneNs - job.enqueueNs) / 1000 : 0;
  stats.wallSeconds = static_cast<double>(totalMicros) * 1e-6;
  recordStageLatencies(stats.stages, totalMicros);
  job.sink(doneFrame(req.id, verdict, detail, stats, traceHex));

  if (!opts_.ledgerPath.empty()) {
    obs::ledger::Record rec;
    rec.runId = obs::ledger::runId();
    rec.time = obs::ledger::timestampUtc();
    rec.driver = opts_.driverName;
    rec.subject = req.name.empty() ? job.digest : req.name;
    rec.result = verdict;
    rec.detail = detail;
    rec.digest = job.digest;
    rec.wallSeconds = stats.wallSeconds;
    rec.peakRssKb = obs::peakRssKb();
    rec.gitSha = obs::gitSha();
    rec.config = std::string("cache=") + (stats.cacheHit ? "hit" : "miss") +
                 " wall_budget_s=" + std::to_string(req.budget.wallSeconds) +
                 " rss_budget_mb=" + std::to_string(req.budget.rssMb);
    rec.traceId = traceHex;
    rec.stages = {{"queue", stats.stages.queue},
                  {"parse", stats.stages.parse},
                  {"tr", stats.stages.tr},
                  {"reach", stats.stages.reach},
                  {"check", stats.stages.check},
                  {"render", stats.stages.render}};
    if (stats.hasCoverage) {
      rec.hasCoverage = true;
      rec.covStateFraction = stats.covStateFraction;
      rec.covValuesReached = stats.covValuesReached;
      rec.covValuesTotal = stats.covValuesTotal;
      rec.covBinsHit = stats.covBinsHit;
      rec.covBinsTotal = stats.covBinsTotal;
    }
    if (stats.hasCex) {
      rec.cexPath = stats.cexPath;
      rec.cexReplay = stats.cexReplay;
    }
    rec.obsEnabled = obs::kEnabled;
    obs::ledger::append(opts_.ledgerPath, rec);
  }

  // Slow-request auto-capture: after the done frame, so the client never
  // waits on artifact I/O. One call site -> at most one capture/request.
  if (opts_.slowThresholdSeconds > 0 && !opts_.artifactDir.empty() &&
      stats.wallSeconds > opts_.slowThresholdSeconds) {
    SlowRequestInfo info;
    info.traceId = job.traceId;
    info.requestId = req.id;
    info.name = req.name.empty() ? job.digest : req.name;
    info.digest = job.digest;
    info.verdict = verdict;
    info.detail = detail;
    info.cacheHit = stats.cacheHit;
    info.wallSeconds = stats.wallSeconds;
    info.thresholdSeconds = opts_.slowThresholdSeconds;
    info.stages = stats.stages;
    std::string dir = writeSlowRequestArtifacts(opts_.artifactDir, info);
    if (!dir.empty()) {
      obs::counter("serve.slow_captures").add();
      HSIS_LOG_WARN("serve.request", "slow request captured",
                    {{"wall_s", stats.wallSeconds},
                     {"threshold_s", opts_.slowThresholdSeconds},
                     {"artifact_dir", std::string_view(dir)}});
    }
  }
}

void SessionPool::shutdown(bool abortInFlight) {
  std::vector<Job> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      if (abortInFlight) {
        for (auto& w : workers_) {
          // Reject everything still queued and cancel the running request;
          // the slot is only honored by a thread mid-job (runJob clears it
          // on the way out), so raising it on an idle worker is harmless —
          // its next wait loops back to the stopping_ exit.
          for (Job& job : w->queue) dropped.push_back(std::move(job));
          w->queue.clear();
          if (w->busy) w->slot.request("server shutdown");
        }
        queuedTotal_ = 0;
        obs::gauge("serve.queue_depth").set(0);
      }
    }
  }
  for (Job& job : dropped) {
    ++counters_.rejected;
    job.sink(errorFrame(job.req.id, "server shutting down"));
  }
  cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    joined_ = true;
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

SessionPool::Stats SessionPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = counters_;
  s.queueDepth = queuedTotal_;
  s.workers = workers_.size();
  s.busyWorkers = 0;
  for (const auto& w : workers_) {
    if (w->busy) ++s.busyWorkers;
  }
  s.evictions = cache_.evictions();
  s.resident = cache_.residents();
  return s;
}

std::string SessionPool::statsJsonObject() const {
  Stats s = stats();
  std::string out = "{";
  out += "\"workers\": " + std::to_string(s.workers);
  out += ", \"busy_workers\": " + std::to_string(s.busyWorkers);
  out += ", \"queue_depth\": " + std::to_string(s.queueDepth);
  out += ", \"accepted\": " + std::to_string(s.accepted);
  out += ", \"rejected\": " + std::to_string(s.rejected);
  out += ", \"completed\": " + std::to_string(s.completed);
  out += ", \"failed\": " + std::to_string(s.failed);
  out += ", \"aborted\": " + std::to_string(s.aborted);
  out += ", \"cache_hits\": " + std::to_string(s.cacheHits);
  out += ", \"cache_misses\": " + std::to_string(s.cacheMisses);
  out += ", \"evictions\": " + std::to_string(s.evictions);
  out += ", \"cex_captures\": " + std::to_string(s.cexCaptures);
  out += ", \"resident\": [";
  for (size_t i = 0; i < s.resident.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + escapeJson(s.resident[i]) + "\"";
  }
  out += "]}";
  return out;
}

std::string SessionPool::statsStreamJson() const {
  Stats s = stats();
  const uint64_t nowNs = obs::WallTimer::nowNs();
  const double tSeconds =
      nowNs > startNs_ ? static_cast<double>(nowNs - startNs_) * 1e-9 : 0.0;
  const uint64_t lookups = s.cacheHits + s.cacheMisses;
  const double hitRate =
      lookups > 0 ? static_cast<double>(s.cacheHits) /
                        static_cast<double>(lookups)
                  : 0.0;
  std::string out = "{";
  out += "\"t_s\": " + obs::jsonDouble(tSeconds);
  out += ", \"queue_depth\": " + std::to_string(s.queueDepth);
  out += ", \"workers\": " + std::to_string(s.workers);
  out += ", \"busy_workers\": " + std::to_string(s.busyWorkers);
  out += ", \"rss_kb\": " + std::to_string(obs::currentRssKb());
  out += ", \"requests\": {\"accepted\": " + std::to_string(s.accepted);
  out += ", \"rejected\": " + std::to_string(s.rejected);
  out += ", \"completed\": " + std::to_string(s.completed);
  out += ", \"failed\": " + std::to_string(s.failed);
  out += ", \"aborted\": " + std::to_string(s.aborted);
  out += "}, \"cache\": {\"hits\": " + std::to_string(s.cacheHits);
  out += ", \"misses\": " + std::to_string(s.cacheMisses);
  out += ", \"evictions\": " + std::to_string(s.evictions);
  out += ", \"hit_rate\": " + obs::jsonDouble(hitRate);
  out += "}, \"latency_us\": {";
  const LatencyHistograms& h = latencyHistograms();
  const std::pair<const char*, const obs::Histogram*> stages[] = {
      {"queue", &h.queue}, {"parse", &h.parse},   {"tr", &h.tr},
      {"reach", &h.reach}, {"check", &h.check},   {"render", &h.render},
      {"total", &h.total}};
  bool first = true;
  for (const auto& [name, hist] : stages) {
    obs::HistogramSummary sum = obs::summarizeHistogram(*hist);
    if (!first) out += ", ";
    first = false;
    out += std::string("\"") + name +
           "\": " + obs::histogramSummaryJson(sum);
  }
  // Constant-shape coverage summary (last report wins); all zeros until a
  // CTL request completed with coverage enabled.
  out += "}, \"coverage\": {\"reports\": " + std::to_string(s.covReports);
  out += ", \"state_fraction\": " + obs::jsonDouble(s.covLastStateFraction);
  out += ", \"values_reached\": " + std::to_string(s.covLastValuesReached);
  out += ", \"values_total\": " + std::to_string(s.covLastValuesTotal);
  out += ", \"bins_hit\": " + std::to_string(s.covLastBinsHit);
  out += ", \"bins_total\": " + std::to_string(s.covLastBinsTotal);
  out += "}, \"cex\": {\"captures\": " + std::to_string(s.cexCaptures);
  out += "}}";
  return out;
}

}  // namespace hsis::serve
