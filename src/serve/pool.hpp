// The hsis_serve worker pool: a fixed set of workers, each owning one
// hsis::Session (one BddManager, one resident compiled design), fed by an
// admission-controlled queue and routed through the LRU compiled-design
// cache (cache.hpp).
//
// Scheduling: a check request is routed to the worker whose Session holds
// its design digest; an unmapped digest takes the LRU worker, evicting
// that worker's cold design. Requests for one digest therefore serialize
// on one worker (and hit its warm Session), while requests for different
// designs run genuinely in parallel — the HermesBDD-motivated coarse
// grain: independent properties over separate read-mostly managers.
//
// Budgets: every request runs under the worker's own obs::Watchdog armed
// with the request's wall/RSS budget, targeting the worker's TaskAbort
// slot; a breach unwinds that request at the next engine safe point
// (AbortedError), the request answers `verdict: "aborted"`, and the
// worker's Session survives to serve the next request.
//
// Every finished request appends one hsis-ledger-v1 record and bumps the
// serve.* metrics, so hsis_report and the obs exports work on server runs
// unchanged.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace hsis::serve {

struct PoolOptions {
  size_t workers = 2;
  /// Admission control: maximum queued-not-yet-running requests across the
  /// pool; submissions beyond it are rejected with an error frame.
  size_t maxQueue = 64;
  /// Applied when a request leaves a budget dimension 0.
  Budget defaultBudget{30.0, 0};
  /// Hard ceiling per dimension (0 = none): request budgets are clamped.
  Budget maxBudget{0.0, 0};
  /// Ledger file for per-request records ("" = no ledger).
  std::string ledgerPath;
  /// "driver" field of the ledger records.
  std::string driverName = "hsis_serve";
  /// Slow-request auto-capture: a request whose wall time (enqueue -> done)
  /// exceeds this gets its profile/trace/census written under artifactDir,
  /// in a directory named by its trace id. 0 or an empty dir disables.
  double slowThresholdSeconds = 0.0;
  std::string artifactDir;
  /// Property-batch fan-out per request: a request carrying more than one
  /// property is checked by par::checkBatch on this many worker threads
  /// (each with its own replica manager) instead of serially on the
  /// session. 1 = off. Verdict frames are then emitted after the batch
  /// completes, in property order, rather than streamed one by one.
  int batchJobs = 1;
  Session::Options session;
};

/// Where a request's frames go. Called from the submitting thread
/// (accepted/error) and from the worker thread (loaded/verdict/done);
/// implementations must be thread-safe and must not throw.
using FrameSink = std::function<void(const std::string& frameLine)>;

class SessionPool {
 public:
  explicit SessionPool(PoolOptions options);
  ~SessionPool();  ///< shutdown(true)
  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Admission: route + enqueue the request and emit an `accepted` frame,
  /// or reject (queue full / shutting down) with an `error` frame and
  /// return false.
  bool submit(CheckRequest request, FrameSink sink);

  /// Stop accepting, then drain: with abortInFlight, queued requests are
  /// answered with error frames and running requests are aborted at their
  /// next safe point; without it, everything queued still runs. Joins the
  /// workers. Idempotent.
  void shutdown(bool abortInFlight);

  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;  ///< pass or fail
    uint64_t failed = 0;     ///< error verdicts
    uint64_t aborted = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t evictions = 0;
    size_t queueDepth = 0;
    size_t workers = 0;
    size_t busyWorkers = 0;
    /// Coverage summaries (hsis_cov): count of requests that produced one,
    /// plus the most recent summary (all 0 until the first CTL request
    /// completes with coverage enabled).
    uint64_t covReports = 0;
    double covLastStateFraction = 0.0;
    uint64_t covLastValuesReached = 0;
    uint64_t covLastValuesTotal = 0;
    uint64_t covLastBinsHit = 0;
    uint64_t covLastBinsTotal = 0;
    /// Requests whose failing check produced a counterexample artifact
    /// (hsis_cex) under the artifact dir.
    uint64_t cexCaptures = 0;
    std::vector<std::string> resident;  ///< digest per worker ("" = empty)
  };
  [[nodiscard]] Stats stats() const;
  /// Stats as a rendered JSON object (for the stats frame).
  [[nodiscard]] std::string statsJsonObject() const;
  /// The hsis-serve-stats-v1 time-series payload for one stats-stream
  /// tick: pool counters plus RSS and the per-stage latency quantiles from
  /// the serve.latency.* histograms.
  [[nodiscard]] std::string statsStreamJson() const;

 private:
  struct Worker;
  struct Job;
  void workerMain(Worker& worker);
  void runJob(Worker& worker, Job& job);

  PoolOptions opts_;
  uint64_t startNs_ = 0;  ///< pool construction time, t_s origin
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool joined_ = false;
  size_t queuedTotal_ = 0;
  DesignCache cache_;
  Stats counters_;  ///< guarded by mu_ (queueDepth/resident derived)
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace hsis::serve
