#include "serve/cache.hpp"

namespace hsis::serve {

DesignCache::DesignCache(size_t slots) : slots_(slots == 0 ? 1 : slots) {}

std::optional<size_t> DesignCache::find(const std::string& digest) const {
  if (digest.empty()) return std::nullopt;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].digest == digest) return i;
  }
  return std::nullopt;
}

void DesignCache::touch(const std::string& digest) {
  if (std::optional<size_t> i = find(digest)) slots_[*i].lastUse = ++tick_;
}

size_t DesignCache::assign(const std::string& digest) {
  // Reuse an existing mapping when one exists (assign is idempotent).
  if (std::optional<size_t> existing = find(digest)) {
    slots_[*existing].lastUse = ++tick_;
    return *existing;
  }
  size_t victim = 0;
  bool haveEmpty = false;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].digest.empty()) {
      victim = i;
      haveEmpty = true;
      break;
    }
    if (slots_[i].lastUse < slots_[victim].lastUse) victim = i;
  }
  if (!haveEmpty && !slots_[victim].digest.empty()) ++evictions_;
  slots_[victim].digest = digest;
  slots_[victim].lastUse = ++tick_;
  return victim;
}

void DesignCache::drop(const std::string& digest) {
  if (std::optional<size_t> i = find(digest)) {
    slots_[*i].digest.clear();
    slots_[*i].lastUse = 0;
  }
}

std::vector<std::string> DesignCache::residents() const {
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) out.push_back(s.digest);
  return out;
}

}  // namespace hsis::serve
