// The compiled-design cache of hsis_serve: an LRU map from BLIF-MV/Verilog
// source digest to the worker slot whose Session holds that design
// compiled (parsed, flattened, FSM + TR built in the worker's BddManager).
//
// The cache is a *routing* structure: capacity equals the worker-pool
// size, because the compiled artifacts live inside the workers' Sessions —
// one resident design per BddManager. A request whose digest is mapped is
// routed to that worker and skips parse/flatten/TR entirely (the Session's
// digest-keyed load() is the ground truth for hit accounting); an unmapped
// digest is assigned the least-recently-used slot, evicting whatever cold
// design that worker held.
//
// Not thread-safe: the SessionPool mutates it under its scheduling lock.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hsis::serve {

class DesignCache {
 public:
  explicit DesignCache(size_t slots);

  /// The slot whose session holds `digest`, or nullopt. Does not touch
  /// recency — call touch() once the request is actually routed.
  [[nodiscard]] std::optional<size_t> find(const std::string& digest) const;

  /// Mark `digest` most-recently-used (no-op when unmapped).
  void touch(const std::string& digest);

  /// Map a new digest: an empty slot when one exists, else the
  /// least-recently-used slot (cold-design eviction — the old mapping is
  /// dropped). Returns the chosen slot, now MRU.
  size_t assign(const std::string& digest);

  /// Drop the mapping for `digest` (failed or aborted load left the
  /// worker's session empty).
  void drop(const std::string& digest);

  /// Resident digest per slot ("" = empty), for stats frames.
  [[nodiscard]] std::vector<std::string> residents() const;

  [[nodiscard]] size_t size() const { return slots_.size(); }
  [[nodiscard]] uint64_t evictions() const { return evictions_; }

 private:
  struct Slot {
    std::string digest;  ///< "" = empty
    uint64_t lastUse = 0;
  };
  std::vector<Slot> slots_;
  uint64_t tick_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace hsis::serve
