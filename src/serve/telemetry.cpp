#include "serve/telemetry.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <unordered_map>

#include "obs/obs.hpp"
#include "obs/prof.hpp"
#include "obs/tracectx.hpp"

namespace hsis::serve {

namespace {

bool writeFile(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

std::string requestJson(const SlowRequestInfo& info) {
  std::string out = "{\"schema\": \"hsis-slow-request-v1\"";
  out += ", \"trace_id\": \"" + obs::traceIdHex(info.traceId) + "\"";
  out += ", \"id\": \"" + escapeJson(info.requestId) + "\"";
  out += ", \"name\": \"" + escapeJson(info.name) + "\"";
  out += ", \"digest\": \"" + escapeJson(info.digest) + "\"";
  out += ", \"verdict\": \"" + escapeJson(info.verdict) + "\"";
  out += ", \"detail\": \"" + escapeJson(info.detail) + "\"";
  out += ", \"cache\": \"";
  out += info.cacheHit ? "hit" : "miss";
  out += "\", \"wall_s\": " + obs::jsonDouble(info.wallSeconds);
  out += ", \"threshold_s\": " + obs::jsonDouble(info.thresholdSeconds);
  const StageMicros& st = info.stages;
  out += ", \"stages\": {\"queue\": " + std::to_string(st.queue);
  out += ", \"parse\": " + std::to_string(st.parse);
  out += ", \"tr\": " + std::to_string(st.tr);
  out += ", \"reach\": " + std::to_string(st.reach);
  out += ", \"check\": " + std::to_string(st.check);
  out += ", \"render\": " + std::to_string(st.render);
  out += "}}\n";
  return out;
}

/// The request's spans only: everything the tracer ring still holds that
/// was stamped with this trace id. Parent links into spans outside the
/// filter (e.g. long-lived daemon spans) are cut, making those spans roots.
obs::Snapshot filteredSnapshot(uint64_t traceId) {
  obs::Snapshot snap;
  for (obs::SpanSample& s : obs::Tracer::instance().completed()) {
    if (s.traceId == traceId) snap.spans.push_back(std::move(s));
  }
  snap.threadNames = obs::threadNames();
  return snap;
}

/// Folded self-time stacks from the filtered spans — the flamegraph view
/// of one request. Each line is `outer;inner <self-micros>`; self time is
/// the span's duration minus its (captured) children's.
std::string foldedProfile(const obs::Snapshot& snap) {
  std::unordered_map<uint64_t, size_t> byId;
  for (size_t i = 0; i < snap.spans.size(); ++i) byId[snap.spans[i].id] = i;
  std::vector<uint64_t> childNs(snap.spans.size(), 0);
  for (const obs::SpanSample& s : snap.spans) {
    if (s.parent < 0) continue;
    auto it = byId.find(static_cast<uint64_t>(s.parent));
    if (it != byId.end()) childNs[it->second] += s.durationNs;
  }
  // stack -> aggregated self micros (map: deterministic output order)
  std::map<std::string, uint64_t> folded;
  for (size_t i = 0; i < snap.spans.size(); ++i) {
    const obs::SpanSample& s = snap.spans[i];
    std::string stack = s.name;
    int64_t up = s.parent;
    size_t guard = 0;
    while (up >= 0 && guard++ < snap.spans.size()) {
      auto it = byId.find(static_cast<uint64_t>(up));
      if (it == byId.end()) break;
      stack = snap.spans[it->second].name + ";" + stack;
      up = snap.spans[it->second].parent;
    }
    uint64_t selfNs =
        s.durationNs > childNs[i] ? s.durationNs - childNs[i] : 0;
    folded[stack] += selfNs / 1000;
  }
  std::string out;
  for (const auto& [stack, micros] : folded) {
    out += stack + " " + std::to_string(micros) + "\n";
  }
  return out;
}

std::string censusJsonl(uint64_t traceId) {
  std::string out = "{\"schema\": \"hsis-prof-v1\", \"kind\": \"header\", "
                    "\"source\": \"slow-request\", \"trace_id\": \"" +
                    obs::traceIdHex(traceId) + "\"}\n";
  if (auto c = obs::prof::latestCensus()) {
    out += "{\"kind\": \"census\", \"seq\": " + std::to_string(c->seq);
    out += ", \"t_ns\": " + std::to_string(c->tNs);
    out += ", \"live_nodes\": " + std::to_string(c->liveNodes);
    out += ", \"allocated_nodes\": " + std::to_string(c->allocatedNodes);
    out += ", \"dead_nodes\": " + std::to_string(c->deadNodes);
    out += ", \"cache_lookups\": " + std::to_string(c->cacheLookups);
    out += ", \"cache_hits\": " + std::to_string(c->cacheHits);
    out += ", \"gc_runs\": " + std::to_string(c->gcRuns);
    out += ", \"reorderings\": " + std::to_string(c->reorderings);
    out += ", \"peak_live_nodes\": " + std::to_string(c->peakLiveNodes);
    out += ", \"dead_fraction\": " + obs::jsonDouble(c->deadFraction());
    out += "}\n";
  }
  return out;
}

}  // namespace

std::string writeSlowRequestArtifacts(const std::string& artifactRoot,
                                      const SlowRequestInfo& info) {
  if (artifactRoot.empty() || info.traceId == 0) return "";
  std::error_code ec;
  std::filesystem::path dir =
      std::filesystem::path(artifactRoot) / obs::traceIdHex(info.traceId);
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "serve: cannot create slow-request dir %s\n",
                 dir.string().c_str());
    return "";
  }
  obs::Snapshot snap = filteredSnapshot(info.traceId);
  bool ok = writeFile(dir / "request.json", requestJson(info));
  ok = writeFile(dir / "trace.json", obs::toChromeTrace(snap)) && ok;
  ok = writeFile(dir / "profile.folded", foldedProfile(snap)) && ok;
  ok = writeFile(dir / "census.jsonl", censusJsonl(info.traceId)) && ok;
  if (!ok) {
    std::fprintf(stderr, "serve: short slow-request capture in %s\n",
                 dir.string().c_str());
  }
  return dir.string();
}

}  // namespace hsis::serve
