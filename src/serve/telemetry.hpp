// hsis::serve slow-request auto-capture.
//
// When a request's wall time crosses the daemon's --slow-threshold-s, the
// worker calls writeSlowRequestArtifacts() exactly once for that request,
// and the full diagnostic bundle for the offending request lands in
// `<artifactRoot>/<trace-id>/`:
//
//   request.json    — metadata + verdict + per-stage micros
//   trace.json      — Chrome-trace (chrome://tracing / Perfetto) of the
//                     spans stamped with this request's trace id
//   profile.folded  — flamegraph-ready folded self-times of those spans
//   census.jsonl    — latest BDD census (hsis-prof-v1; header-only when no
//                     manager published one)
//
// The directory is named by the trace id, so a slow request found in
// `hsis_report requests`, a log event, or a stats dashboard resolves to
// its artifacts by the same key. Capture runs on the worker thread after
// the done frame is emitted — the client's latency is unaffected.
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"

namespace hsis::serve {

struct SlowRequestInfo {
  uint64_t traceId = 0;
  std::string requestId;
  std::string name;     ///< subject name (or digest)
  std::string digest;
  std::string verdict;
  std::string detail;
  bool cacheHit = false;
  double wallSeconds = 0.0;
  double thresholdSeconds = 0.0;
  StageMicros stages;
};

/// Write the artifact bundle for one slow request. Returns the artifact
/// directory path, or "" on I/O failure (never throws). `artifactRoot` is
/// created if missing.
std::string writeSlowRequestArtifacts(const std::string& artifactRoot,
                                      const SlowRequestInfo& info);

}  // namespace hsis::serve
