// hsis::serve wire protocol (schema hsis-serve-v1): line-delimited JSON
// over a Unix-domain socket. One request per line (client -> server), a
// stream of frames per request (server -> client), every frame tagged with
// the request id so responses for concurrent requests can interleave on
// one connection.
//
// Requests:
//   {"op": "check", "id": ID, "name": NAME,
//    "design": {"kind": "verilog"|"blifmv", "text": SRC, "top": TOP},
//    "pif": PIF, "budget": {"wall_s": S, "rss_mb": M}, "want_trace": BOOL
//    [, "trace_id": HEX16]}     // client-chosen trace id; the server
//                               // assigns one when absent, echoes it back
//   {"op": "ping", "id": ID}
//   {"op": "stats", "id": ID}
//   {"op": "stats-stream", "id": ID, "interval_ms": N}  // N=0 cancels
//   {"op": "shutdown", "id": ID}
//
// Frames (each one line; "schema" on every frame). Request-scoped frames
// (accepted/loaded/verdict/done) also carry the request's 16-hex-digit
// trace id as "trace_id" — distinct from the verdict frame's "trace",
// which remains the counterexample text:
//   {"event": "accepted", "id": ID, "queue_depth": N, "trace_id": HEX}
//   {"event": "loaded",   "id": ID, "cache": "hit"|"miss", "read_micros": N,
//    "trace_id": HEX}
//   {"event": "verdict",  "id": ID, "property": P, "paradigm": "ctl"|"lc",
//    "holds": BOOL, "seconds": S[, "trace": TEXT], "trace_id": HEX}
//   {"event": "done",     "id": ID, "verdict": "pass"|"fail"|"aborted"|
//    "error", "detail": TEXT, "stats": {"cache": ..., "read_micros": N,
//    "wall_s": S, "properties": N, "failures": N, "stages": {"queue": US,
//    "parse": US, "tr": US, "reach": US, "check": US, "render": US}
//    [, "coverage": {"state_fraction": F, "values_reached": N,
//    "values_total": N, "bins_hit": N, "bins_total": N}]
//    [, "cex": {"path": DIR, "replay": "verified"|"unverified"}]},
//    "trace_id": HEX}
//   {"event": "pong",     "id": ID, "version": TEXT}
//   {"event": "stats",    "id": ID, "server": {...}}
//   {"event": "bye",      "id": ID}
//   {"event": "error",    "id": ID, "message": TEXT}
//
// Stats-stream ticks use their own schema (hsis-serve-stats-v1), one frame
// per interval until the subscription is cancelled or the connection ends:
//   {"schema": "hsis-serve-stats-v1", "event": "stats-tick", "id": ID,
//    "seq": N, "stats": {"t_s": S, "queue_depth": N, "workers": N,
//    "busy_workers": N, "rss_kb": N, "requests": {...}, "cache": {...},
//    "latency_us": {STAGE: {"count": N, "p50": N, "p90": N, "p99": N,
//    "max": N}, ...} (quantiles null while count is 0),
//    "coverage": {"reports": N, "state_fraction": F, "values_reached": N,
//    "values_total": N, "bins_hit": N, "bins_total": N}}}
//
// Parsing reuses obs/jsonlite; rendering is direct (same idiom as the
// heartbeat/ledger JSONL writers). All functions are pure — no sockets
// here — so the tests cover the protocol without a server.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "hsis/session.hpp"
#include "obs/jsonlite.hpp"

namespace hsis::serve {

inline constexpr std::string_view kSchema = "hsis-serve-v1";

/// Malformed request line / frame. The connection survives: the server
/// answers with an error frame instead of dying.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

// ---------------------------------------------------------------- requests

/// Per-request resource budget; 0 = take the server default (which may
/// itself be "unlimited").
struct Budget {
  double wallSeconds = 0.0;
  uint64_t rssMb = 0;
};

struct CheckRequest {
  std::string id;    ///< client-chosen, echoed on every frame
  std::string name;  ///< display/subject name ("" = digest prefix)
  Session::DesignSource design;
  std::string pif;   ///< properties + fairness (PIF text)
  Budget budget;
  bool wantTrace = true;
  /// Client-chosen trace id (16 hex digits, "" = server assigns one).
  std::string traceId;
};

struct Request {
  enum class Op : uint8_t { Check, Ping, Stats, StatsStream, Shutdown };
  Op op = Op::Ping;
  std::string id;
  CheckRequest check;  ///< valid when op == Op::Check
  /// StatsStream only: tick period in ms (0 = cancel the subscription).
  uint64_t statsIntervalMs = 0;
};

/// Parse one request line. Throws ProtocolError on malformed input.
Request parseRequest(const std::string& line);
/// Render a request as one line (client side), no trailing newline.
std::string renderRequest(const Request& request);

// ------------------------------------------------------------------ frames

struct VerdictInfo {
  std::string property;
  bool languageContainment = false;
  bool holds = false;
  double seconds = 0.0;
  std::string trace;  ///< rendered counterexample text ("" = none)
};

/// Per-stage wall micros of one request's pipeline. `queue` is admission
/// to dequeue; the rest are worker time. Stages a request never entered
/// (e.g. `reach` for a pure language-containment PIF) stay 0 but are still
/// rendered, so the frame shape is constant.
struct StageMicros {
  uint64_t queue = 0;   ///< admission-enqueue -> worker-dequeue
  uint64_t parse = 0;   ///< design parse + flatten + FSM (and PIF parse)
  uint64_t tr = 0;      ///< transition-relation construction
  uint64_t reach = 0;   ///< reachable-state fixpoint (CTL properties)
  uint64_t check = 0;   ///< per-property model checking
  uint64_t render = 0;  ///< counterexample trace rendering
  [[nodiscard]] uint64_t total() const {
    return queue + parse + tr + reach + check + render;
  }
};

struct DoneStats {
  bool cacheHit = false;
  uint64_t readMicros = 0;
  double wallSeconds = 0.0;
  size_t properties = 0;
  size_t failures = 0;
  StageMicros stages;
  /// Coverage summary (hsis_cov), computed during the reach stage for CTL
  /// requests. Rendered as a "coverage" object inside "stats" only when
  /// hasCoverage is set, so pre-coverage clients see the legacy shape.
  bool hasCoverage = false;
  double covStateFraction = 0.0;
  uint64_t covValuesReached = 0;
  uint64_t covValuesTotal = 0;
  uint64_t covBinsHit = 0;
  uint64_t covBinsTotal = 0;
  /// Counterexample artifact pointer (hsis_cex), set when a failing check
  /// wrote a cex.json/cex.vcd pair under the server's artifact dir.
  /// Rendered as a "cex" object inside "stats" only when hasCex is set.
  bool hasCex = false;
  std::string cexPath;    ///< artifact directory (holds cex.json + cex.vcd)
  std::string cexReplay;  ///< "verified" | "unverified"
};

/// Request-scoped frame builders take the request's trace id (hex, "" =
/// omit the field, for pre-admission errors that never got one).
std::string acceptedFrame(std::string_view id, size_t queueDepth,
                          std::string_view traceId = {});
std::string loadedFrame(std::string_view id, bool cacheHit,
                        uint64_t readMicros, std::string_view traceId = {});
std::string verdictFrame(std::string_view id, const VerdictInfo& verdict,
                         std::string_view traceId = {});
std::string doneFrame(std::string_view id, std::string_view verdict,
                      std::string_view detail, const DoneStats& stats,
                      std::string_view traceId = {});
std::string pongFrame(std::string_view id, std::string_view version);
/// `serverJsonObject` must be a pre-rendered JSON object (e.g. from
/// SessionPool::statsJsonObject).
std::string statsFrame(std::string_view id, std::string_view serverJsonObject);
/// One hsis-serve-stats-v1 time-series frame; `statsJsonObject` is a
/// pre-rendered JSON object (SessionPool::statsStreamJson).
std::string statsTickFrame(std::string_view id, uint64_t seq,
                           std::string_view statsJsonObject);
std::string byeFrame(std::string_view id);
std::string errorFrame(std::string_view id, std::string_view message);

/// A parsed server frame (client side). `body` keeps every field.
struct Frame {
  std::string event;
  std::string id;
  obs::jsonlite::Value body;
};

/// Parse one frame line. Throws ProtocolError on malformed input.
Frame parseFrame(const std::string& line);

/// JSON string-escape (shared by the frame builders and the client).
std::string escapeJson(std::string_view s);

}  // namespace hsis::serve
