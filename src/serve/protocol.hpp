// hsis::serve wire protocol (schema hsis-serve-v1): line-delimited JSON
// over a Unix-domain socket. One request per line (client -> server), a
// stream of frames per request (server -> client), every frame tagged with
// the request id so responses for concurrent requests can interleave on
// one connection.
//
// Requests:
//   {"op": "check", "id": ID, "name": NAME,
//    "design": {"kind": "verilog"|"blifmv", "text": SRC, "top": TOP},
//    "pif": PIF, "budget": {"wall_s": S, "rss_mb": M}, "want_trace": BOOL}
//   {"op": "ping", "id": ID}
//   {"op": "stats", "id": ID}
//   {"op": "shutdown", "id": ID}
//
// Frames (each one line; "schema" on every frame):
//   {"event": "accepted", "id": ID, "queue_depth": N}
//   {"event": "loaded",   "id": ID, "cache": "hit"|"miss", "read_micros": N}
//   {"event": "verdict",  "id": ID, "property": P, "paradigm": "ctl"|"lc",
//    "holds": BOOL, "seconds": S[, "trace": TEXT]}
//   {"event": "done",     "id": ID, "verdict": "pass"|"fail"|"aborted"|
//    "error", "detail": TEXT, "stats": {"cache": ..., "read_micros": N,
//    "wall_s": S, "properties": N, "failures": N}}
//   {"event": "pong",     "id": ID, "version": TEXT}
//   {"event": "stats",    "id": ID, "server": {...}}
//   {"event": "bye",      "id": ID}
//   {"event": "error",    "id": ID, "message": TEXT}
//
// Parsing reuses obs/jsonlite; rendering is direct (same idiom as the
// heartbeat/ledger JSONL writers). All functions are pure — no sockets
// here — so the tests cover the protocol without a server.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "hsis/session.hpp"
#include "obs/jsonlite.hpp"

namespace hsis::serve {

inline constexpr std::string_view kSchema = "hsis-serve-v1";

/// Malformed request line / frame. The connection survives: the server
/// answers with an error frame instead of dying.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

// ---------------------------------------------------------------- requests

/// Per-request resource budget; 0 = take the server default (which may
/// itself be "unlimited").
struct Budget {
  double wallSeconds = 0.0;
  uint64_t rssMb = 0;
};

struct CheckRequest {
  std::string id;    ///< client-chosen, echoed on every frame
  std::string name;  ///< display/subject name ("" = digest prefix)
  Session::DesignSource design;
  std::string pif;   ///< properties + fairness (PIF text)
  Budget budget;
  bool wantTrace = true;
};

struct Request {
  enum class Op : uint8_t { Check, Ping, Stats, Shutdown };
  Op op = Op::Ping;
  std::string id;
  CheckRequest check;  ///< valid when op == Op::Check
};

/// Parse one request line. Throws ProtocolError on malformed input.
Request parseRequest(const std::string& line);
/// Render a request as one line (client side), no trailing newline.
std::string renderRequest(const Request& request);

// ------------------------------------------------------------------ frames

struct VerdictInfo {
  std::string property;
  bool languageContainment = false;
  bool holds = false;
  double seconds = 0.0;
  std::string trace;  ///< rendered counterexample text ("" = none)
};

struct DoneStats {
  bool cacheHit = false;
  uint64_t readMicros = 0;
  double wallSeconds = 0.0;
  size_t properties = 0;
  size_t failures = 0;
};

std::string acceptedFrame(std::string_view id, size_t queueDepth);
std::string loadedFrame(std::string_view id, bool cacheHit,
                        uint64_t readMicros);
std::string verdictFrame(std::string_view id, const VerdictInfo& verdict);
std::string doneFrame(std::string_view id, std::string_view verdict,
                      std::string_view detail, const DoneStats& stats);
std::string pongFrame(std::string_view id, std::string_view version);
/// `serverJsonObject` must be a pre-rendered JSON object (e.g. from
/// SessionPool::statsJsonObject).
std::string statsFrame(std::string_view id, std::string_view serverJsonObject);
std::string byeFrame(std::string_view id);
std::string errorFrame(std::string_view id, std::string_view message);

/// A parsed server frame (client side). `body` keeps every field.
struct Frame {
  std::string event;
  std::string id;
  obs::jsonlite::Value body;
};

/// Parse one frame line. Throws ProtocolError on malformed input.
Frame parseFrame(const std::string& line);

/// JSON string-escape (shared by the frame builders and the client).
std::string escapeJson(std::string_view s);

}  // namespace hsis::serve
