#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>

#include "obs/log.hpp"
#include "obs/obs.hpp"

namespace hsis::serve {

namespace {

/// Serializes frame writes from the reader thread and the pool workers
/// onto one connection, and absorbs a client hang-up: after the first
/// failed write the connection is dead and later frames are dropped (the
/// pool still finishes the request; the ledger record is the durable
/// output). Owns the fd; shared by the reader and any in-flight sinks.
class ConnWriter {
 public:
  explicit ConnWriter(int fd) : fd_(fd) {}
  ~ConnWriter() { ::close(fd_); }
  ConnWriter(const ConnWriter&) = delete;
  ConnWriter& operator=(const ConnWriter&) = delete;

  void writeLine(const std::string& line) noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return;
    std::string buf = line;
    buf += '\n';
    size_t off = 0;
    while (off < buf.size()) {
      // MSG_NOSIGNAL: a mid-stream hang-up must not SIGPIPE the daemon.
      ssize_t n =
          ::send(fd_, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        dead_ = true;
        return;
      }
      off += static_cast<size_t>(n);
    }
  }

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_;
  std::mutex mu_;
  bool dead_ = false;
};

/// Counts check requests this connection has in flight so the reader can
/// hold the writer open until every terminal frame has been delivered.
struct Pending {
  std::mutex mu;
  std::condition_variable cv;
  size_t count = 0;

  void up() {
    std::lock_guard<std::mutex> lock(mu);
    ++count;
  }
  void down() {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (count > 0) --count;
    }
    cv.notify_all();
  }
  void waitDrained() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return count == 0; });
  }
};

/// A request's stream ends with exactly one done or error frame.
bool isTerminalFrame(const std::string& line) {
  return line.find("\"event\": \"done\"") != std::string::npos ||
         line.find("\"event\": \"error\"") != std::string::npos;
}

}  // namespace

Server::Server(ServerOptions options)
    : opts_(std::move(options)), pool_(opts_.pool) {}

Server::~Server() {
  stop();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    ::unlink(opts_.socketPath.c_str());
  }
}

bool Server::bind(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr)
      *error = "socket path too long (max " +
               std::to_string(sizeof(addr.sun_path) - 1) + " bytes): " +
               opts_.socketPath;
    return false;
  }
  std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
              opts_.socketPath.size() + 1);

  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    if (error != nullptr)
      *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  ::unlink(opts_.socketPath.c_str());  // stale socket from a crashed run
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr)
      *error = "bind(" + opts_.socketPath + "): " + std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }
  if (::listen(listenFd_, 16) != 0) {
    if (error != nullptr)
      *error = std::string("listen(): ") + std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }
  return true;
}

void Server::run() {
  while (!stopping()) {
    pollfd pfd{listenFd_, POLLIN, 0};
    int r = ::poll(&pfd, 1, 200);  // bounded wait so stop() is honored
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0 || (pfd.revents & POLLIN) == 0) continue;
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    obs::counter("serve.connections").add();
    std::lock_guard<std::mutex> lock(threadsMu_);
    threads_.emplace_back([this, fd] { handleConnection(fd); });
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threadsMu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void Server::handleConnection(int fd) {
  auto writer = std::make_shared<ConnWriter>(fd);
  auto pending = std::make_shared<Pending>();
  std::string buf;

  // stats-stream subscription — reader-thread state, one per connection.
  // Re-subscribing replaces the interval; interval_ms 0 cancels. The first
  // tick fires immediately so a subscriber never waits a full interval for
  // its first frame.
  uint64_t streamIntervalNs = 0;
  uint64_t streamDueNs = 0;
  uint64_t streamSeq = 0;
  std::string streamId;
  auto maybeStreamTick = [&] {
    if (streamIntervalNs == 0) return;
    uint64_t now = obs::WallTimer::nowNs();
    if (now < streamDueNs) return;
    writer->writeLine(
        statsTickFrame(streamId, streamSeq++, pool_.statsStreamJson()));
    streamDueNs = now + streamIntervalNs;
  };

  for (;;) {
    // Drain complete lines already buffered before blocking again.
    size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (line.empty()) continue;

      Request req;
      try {
        req = parseRequest(line);
      } catch (const ProtocolError& e) {
        writer->writeLine(errorFrame("", e.what()));
        continue;
      }
      switch (req.op) {
        case Request::Op::Ping:
          writer->writeLine(pongFrame(req.id, opts_.version));
          break;
        case Request::Op::Stats:
          writer->writeLine(statsFrame(req.id, pool_.statsJsonObject()));
          break;
        case Request::Op::StatsStream:
          if (req.statsIntervalMs == 0) {
            streamIntervalNs = 0;
          } else {
            // Clamp to 10 Hz: every tick renders the full histogram table.
            uint64_t ms =
                req.statsIntervalMs < 100 ? 100 : req.statsIntervalMs;
            streamIntervalNs = ms * 1000000ull;
            streamId = req.id;
            streamSeq = 0;
            streamDueNs = 0;  // due now
          }
          break;
        case Request::Op::Shutdown:
          writer->writeLine(byeFrame(req.id));
          HSIS_LOG_INFO("serve", "shutdown requested by client");
          stop();
          break;
        case Request::Op::Check: {
          pending->up();
          bool accepted = pool_.submit(
              req.check, [writer, pending](const std::string& frame) {
                writer->writeLine(frame);
                if (isTerminalFrame(frame)) pending->down();
              });
          // A rejected submit already delivered its terminal error frame
          // through the sink, so the counter is back at rest either way.
          (void)accepted;
          break;
        }
      }
    }
    if (stopping()) break;
    maybeStreamTick();

    // Bounded wait: short enough to honor stop(), and trimmed further so
    // the next stats tick is emitted on schedule rather than up to 200 ms
    // late.
    int timeoutMs = 200;
    if (streamIntervalNs != 0) {
      uint64_t now = obs::WallTimer::nowNs();
      uint64_t waitMs =
          streamDueNs > now ? (streamDueNs - now) / 1000000ull : 0;
      if (waitMs + 1 < static_cast<uint64_t>(timeoutMs))
        timeoutMs = static_cast<int>(waitMs) + 1;
    }
    pollfd pfd{writer->fd(), POLLIN, 0};
    int r = ::poll(&pfd, 1, timeoutMs);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) continue;
    char chunk[4096];
    ssize_t n = ::recv(writer->fd(), chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client EOF
    buf.append(chunk, static_cast<size_t>(n));
  }

  // Keep the writer alive until every in-flight request has answered, so
  // a client that sent a batch then shut its write side still receives
  // all its frames.
  pending->waitDrained();
}

}  // namespace hsis::serve
