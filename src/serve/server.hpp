// The hsis_serve front end: a Unix-domain stream socket speaking the
// line-delimited hsis-serve-v1 protocol (protocol.hpp), dispatching check
// requests into the SessionPool (pool.hpp).
//
// One reader thread per connection parses request lines and answers
// ping/stats inline; a stats-stream subscription turns the reader's poll
// loop into a ticker that pushes hsis-serve-stats-v1 frames at the
// requested interval; check requests are submitted to the pool, whose
// frames are written back through a per-connection writer that serializes
// concurrent producers (the submitting reader and the worker threads) and
// survives a client that hangs up mid-stream (writes turn into no-ops, the
// verification still completes and lands in the ledger).
//
// Lifecycle: bind() creates the socket, run() accepts until stop() — which
// is a single atomic store, safe to call from a signal handler — or until
// a client sends `{"op": "shutdown"}`. run() joins every connection reader
// before returning; pool shutdown policy stays with the caller.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/pool.hpp"

namespace hsis::serve {

struct ServerOptions {
  std::string socketPath;
  /// Reported in pong frames (tools pass obs::versionString()).
  std::string version;
  PoolOptions pool;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  ///< stop() + close + unlink; does NOT shut the pool down
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Create + listen on the socket (an existing socket file is replaced).
  /// Returns false with a message on failure.
  bool bind(std::string* error);

  /// Accept/serve until stop(). Joins all connection readers on the way
  /// out. Call bind() first.
  void run();

  /// Request run() to wind down. One relaxed atomic store — callable from
  /// a signal handler.
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stopping() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

  SessionPool& pool() { return pool_; }
  [[nodiscard]] const std::string& socketPath() const {
    return opts_.socketPath;
  }

 private:
  void handleConnection(int fd);

  ServerOptions opts_;
  SessionPool pool_;
  std::atomic<bool> stop_{false};
  int listenFd_ = -1;
  std::mutex threadsMu_;
  std::vector<std::thread> threads_;
};

}  // namespace hsis::serve
