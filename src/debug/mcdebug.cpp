#include "debug/mcdebug.hpp"

#include <sstream>
#include <stdexcept>

#include "fsm/trace.hpp"

namespace hsis {

namespace {

constexpr size_t kMaxSuccessorChoices = 8;

std::vector<std::vector<int8_t>> enumerateStates(const Fsm& fsm, Bdd set,
                                                 size_t limit) {
  std::vector<std::vector<int8_t>> out;
  while (!set.isZero() && out.size() < limit) {
    std::vector<int8_t> s = concretizeState(fsm, set);
    out.push_back(s);
    set &= !fsm.stateFromValues(fsm.decodeState(s));
  }
  return out;
}

}  // namespace

McDebugSession::McDebugSession(CtlChecker& checker, CtlRef formula)
    : checker_(&checker), formula_(std::move(formula)) {
  const Fsm& fsm = checker_->fsm();
  Bdd sat = checker_->states(formula_);
  Bdd badInit = fsm.initialStates() & !sat;
  if (badInit.isZero())
    throw std::invalid_argument(
        "McDebugSession: formula holds on all initial states");
  state_ = concretizeState(fsm, badInit);
  expected_ = true;
  pathSoFar_.push_back(state_);
  computeChoices();
}

Bdd McDebugSession::stateCube(const std::vector<int8_t>& s) const {
  const Fsm& fsm = checker_->fsm();
  return fsm.stateFromValues(fsm.decodeState(s));
}

bool McDebugSession::truthAt(const CtlRef& f, const Bdd& cube) {
  return !(checker_->states(f) & cube).isZero();
}

std::string McDebugSession::describe() const {
  std::ostringstream os;
  os << "at state [" << checker_->fsm().formatState(state_) << "]: "
     << formula_->toString() << " is "
     << (expected_ ? "FALSE (expected true)" : "TRUE (expected false)");
  return os.str();
}

bool McDebugSession::atLeaf() const { return choices_.empty(); }

bool McDebugSession::choose(size_t i) {
  if (i >= choices_.size()) return false;
  history_.push_back(Frame{formula_, expected_, state_, pathSoFar_.size()});
  const Choice& c = choices_[i];
  formula_ = c.formula;
  expected_ = c.expected;
  for (const auto& s : c.path) pathSoFar_.push_back(s);
  if (c.state != state_ && (c.path.empty() || c.path.back() != c.state))
    pathSoFar_.push_back(c.state);
  state_ = c.state;
  computeChoices();
  return true;
}

bool McDebugSession::back() {
  if (history_.empty()) return false;
  Frame f = std::move(history_.back());
  history_.pop_back();
  formula_ = std::move(f.formula);
  expected_ = f.expected;
  state_ = std::move(f.state);
  pathSoFar_.resize(f.pathLen);
  computeChoices();
  return true;
}

void McDebugSession::computeChoices() {
  choices_.clear();
  const Fsm& fsm = checker_->fsm();
  const CtlFormula& f = *formula_;
  Bdd here = stateCube(state_);

  auto addHere = [&](const CtlRef& g, bool exp, const std::string& why) {
    Choice c;
    c.description = why + ": " + g->toString();
    c.formula = g;
    c.expected = exp;
    c.state = state_;
    choices_.push_back(std::move(c));
  };
  auto addSuccessors = [&](const CtlRef& g, bool exp, const Bdd& filter,
                           const std::string& why) {
    Bdd succ = checker_->tr().image(here) & filter;
    for (const auto& s : enumerateStates(fsm, succ, kMaxSuccessorChoices)) {
      Choice c;
      c.description = why + " successor [" + fsm.formatState(s) + "]";
      c.formula = g;
      c.expected = exp;
      c.state = s;
      choices_.push_back(std::move(c));
    }
  };

  Bdd satLeft = f.left != nullptr ? checker_->states(f.left) : Bdd();
  Bdd satRight = f.right != nullptr ? checker_->states(f.right) : Bdd();

  switch (f.kind) {
    case CtlFormula::Kind::True:
    case CtlFormula::Kind::False:
    case CtlFormula::Kind::Atom:
      return;  // leaf
    case CtlFormula::Kind::Not:
      addHere(f.left, !expected_, "negation: certify operand");
      return;
    case CtlFormula::Kind::And:
      if (expected_) {
        // f&g false: offer the false conjuncts (the paper's h = f+g dual).
        if ((satLeft & here).isZero()) addHere(f.left, true, "false conjunct");
        if ((satRight & here).isZero()) addHere(f.right, true, "false conjunct");
      } else {
        addHere(f.left, false, "true conjunct");
        addHere(f.right, false, "true conjunct");
      }
      return;
    case CtlFormula::Kind::Or:
      if (expected_) {
        addHere(f.left, true, "false disjunct");
        addHere(f.right, true, "false disjunct");
      } else {
        if (!(satLeft & here).isZero()) addHere(f.left, false, "true disjunct");
        if (!(satRight & here).isZero()) addHere(f.right, false, "true disjunct");
      }
      return;
    case CtlFormula::Kind::EX:
      if (expected_) {
        // EX p false: no successor satisfies p — pursue any successor.
        addSuccessors(f.left, true, checker_->fsm().mgr().bddOne(), "pursue");
      } else {
        addSuccessors(f.left, false, satLeft, "witness");
      }
      return;
    case CtlFormula::Kind::AX:
      if (expected_) {
        addSuccessors(f.left, true, !satLeft, "failing");
      } else {
        addSuccessors(f.left, false, satLeft, "witness");
      }
      return;
    case CtlFormula::Kind::AG: {
      if (expected_) {
        if ((satLeft & here).isZero()) {
          addHere(f.left, true, "subformula fails here");
        }
        // Shortest path to a state where the subformula fails.
        Bdd bad = checker_->reached() & !satLeft;
        std::optional<Trace> path = shortestPathTo(checker_->tr(), here, bad);
        if (path.has_value() && path->states.size() > 1) {
          Choice c;
          c.description = "shortest path (" +
                          std::to_string(path->states.size() - 1) +
                          " steps) to a state violating " + f.left->toString();
          c.formula = f.left;
          c.expected = true;
          c.state = path->states.back();
          c.path.assign(path->states.begin() + 1, path->states.end() - 1);
          choices_.push_back(std::move(c));
        }
      } else {
        addHere(f.left, false, "holds here and on all paths");
      }
      return;
    }
    case CtlFormula::Kind::AF:
      if (expected_) {
        // AF p false: p false here and some fair successor keeps AF p false.
        addHere(f.left, true, "subformula false here");
        addSuccessors(formula_, true,
                      checker_->reached() & !checker_->states(formula_),
                      "stay on escaping");
      } else {
        addHere(f.left, false, "eventually reached");
      }
      return;
    case CtlFormula::Kind::EG:
      if (expected_) {
        if ((satLeft & here).isZero()) {
          addHere(f.left, true, "subformula false here");
        } else {
          addSuccessors(formula_, true, checker_->fsm().mgr().bddOne(),
                        "pursue");
        }
      } else {
        addHere(f.left, false, "holds here");
        addSuccessors(formula_, false, checker_->states(formula_), "sustain");
      }
      return;
    case CtlFormula::Kind::EF:
      if (expected_) {
        addHere(f.left, true, "unreachable goal false here");
        addSuccessors(formula_, true, checker_->fsm().mgr().bddOne(), "pursue");
      } else {
        // Why EF p true: shortest path to p.
        std::optional<Trace> path =
            shortestPathTo(checker_->tr(), here, satLeft);
        if (path.has_value()) {
          Choice c;
          c.description = "witness path (" +
                          std::to_string(path->states.size() - 1) +
                          " steps) to " + f.left->toString();
          c.formula = f.left;
          c.expected = false;
          c.state = path->states.back();
          if (path->states.size() > 1)
            c.path.assign(path->states.begin() + 1, path->states.end() - 1);
          choices_.push_back(std::move(c));
        }
      }
      return;
    case CtlFormula::Kind::EU:
    case CtlFormula::Kind::AU: {
      bool universal = f.kind == CtlFormula::Kind::AU;
      if (expected_) {
        addHere(f.right, true, "until-goal false here");
        if ((satLeft & here).isZero())
          addHere(f.left, true, "until-condition false here");
        Bdd residual = checker_->reached() & !checker_->states(formula_);
        addSuccessors(formula_, true,
                      universal ? residual : checker_->fsm().mgr().bddOne(),
                      "continue along");
      } else {
        if (!(satRight & here).isZero()) {
          addHere(f.right, false, "until-goal holds here");
        } else {
          addHere(f.left, false, "until-condition holds here");
          addSuccessors(formula_, false, checker_->states(formula_), "sustain");
        }
      }
      return;
    }
  }
}

}  // namespace hsis
