// Interactive model-checking debugger (paper Section 6.2): unfold a failing
// CTL formula one step at a time. At each point the session holds a state
// and a (formula, expected-value) obligation that is violated there; the
// user picks how to descend:
//  - boolean nodes: choose which operand to certify,
//  - existential X obligations: choose which successor to pursue,
//  - universal obligations: the tool finds the shortest path to a state
//    where the residual obligation fails.
//
// The session is programmatic (choice indices), so tests can drive it; an
// interactive stdin loop lives in examples/gigamax_debug.cpp.
#pragma once

#include <string>
#include <vector>

#include "ctl/mc.hpp"

namespace hsis {

class McDebugSession {
 public:
  /// Start a session for a formula that FAILS on some initial state of the
  /// checker's FSM. Throws std::invalid_argument if it actually holds.
  McDebugSession(CtlChecker& checker, CtlRef formula);

  /// A possible way to descend from the current obligation.
  struct Choice {
    std::string description;
    CtlRef formula;            ///< residual obligation
    bool expected;             ///< expected truth value (violated here)
    std::vector<int8_t> state; ///< state where the obligation is considered
    /// states stepped through to get there (possibly empty; for universal
    /// operators the tool inserts the shortest failing path)
    std::vector<std::vector<int8_t>> path;
  };

  [[nodiscard]] const std::vector<int8_t>& state() const { return state_; }
  [[nodiscard]] const CtlRef& formula() const { return formula_; }
  [[nodiscard]] bool expected() const { return expected_; }
  /// Human-readable summary of the current obligation.
  [[nodiscard]] std::string describe() const;
  /// True when the obligation is an atom (nothing left to unfold).
  [[nodiscard]] bool atLeaf() const;

  [[nodiscard]] const std::vector<Choice>& choices() const { return choices_; }
  /// Descend into choice i. Returns false if out of range.
  bool choose(size_t i);
  /// Go back one step. Returns false at the root.
  bool back();

  /// The full path of states stepped through so far (for the bug report).
  [[nodiscard]] const std::vector<std::vector<int8_t>>& pathSoFar() const {
    return pathSoFar_;
  }

 private:
  struct Frame {
    CtlRef formula;
    bool expected;
    std::vector<int8_t> state;
    size_t pathLen;
  };

  void computeChoices();
  /// Truth of f at a concrete state under fair semantics.
  bool truthAt(const CtlRef& f, const Bdd& stateCube);
  Bdd stateCube(const std::vector<int8_t>& s) const;

  CtlChecker* checker_;
  CtlRef formula_;
  bool expected_ = true;
  std::vector<int8_t> state_;
  std::vector<Choice> choices_;
  std::vector<Frame> history_;
  std::vector<std::vector<int8_t>> pathSoFar_;
};

}  // namespace hsis
