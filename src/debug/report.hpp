// Bug reports (paper Figure 1): the artifact handed from the verifier to
// the debugger. Renders results of either paradigm as text.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ctl/mc.hpp"
#include "fsm/trace.hpp"
#include "lc/lc.hpp"

namespace hsis {

struct BugReport {
  enum class Paradigm : uint8_t { ModelChecking, LanguageContainment };
  Paradigm paradigm = Paradigm::ModelChecking;
  std::string propertyName;
  std::string propertyText;
  bool holds = false;
  std::optional<Trace> trace;
  std::vector<std::string> notes;
  double seconds = 0.0;
  bool usedEarlyFailure = false;
};

/// Render a report, decoding trace states against the given FSM (the design
/// FSM for MC, the product FSM for LC).
std::string renderBugReport(const BugReport& report, const Fsm& fsm);

/// Render a trace alone.
std::string renderTrace(const Trace& trace, const Fsm& fsm);

/// Source-level debugging (paper Section 8, item 7): the mapping from the
/// design's state-holding signals back to the HDL lines that declared them,
/// as carried by .lineinfo annotations through vl2mv and flattening.
/// Returns an empty string when no line information is available.
std::string renderSourceMap(const Fsm& fsm);

/// Trace rendering that marks, at each step, which latches changed and the
/// HDL source line of each changed latch — "the sequence of instructions
/// that led to the faulty behavior".
std::string renderTraceWithSource(const Trace& trace, const Fsm& fsm);

}  // namespace hsis
