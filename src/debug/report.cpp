#include "debug/report.hpp"

#include <sstream>

namespace hsis {

std::string renderTrace(const Trace& trace, const Fsm& fsm) {
  std::ostringstream os;
  for (size_t i = 0; i < trace.states.size(); ++i) {
    if (trace.cycleStart == static_cast<int>(i)) os << "  -- cycle --\n";
    os << "  step " << i << ": " << fsm.formatState(trace.states[i]) << "\n";
  }
  if (trace.isLasso()) os << "  (loops back to step " << trace.cycleStart << ")\n";
  return os.str();
}

std::string renderSourceMap(const Fsm& fsm) {
  std::ostringstream os;
  bool any = false;
  for (size_t l = 0; l < fsm.numLatches(); ++l) {
    if (fsm.latchLine(l) <= 0) continue;
    if (!any) os << "source map (signal -> HDL line):\n";
    any = true;
    os << "  " << fsm.latchName(l) << " -> line " << fsm.latchLine(l) << "\n";
  }
  return any ? os.str() : std::string();
}

namespace {

/// Append the "changes: latch (line N), ..." annotation for one
/// transition; `label` distinguishes forward edges from the lasso's back
/// edge. Prints nothing when no latch changes.
void appendChanges(std::ostringstream& os, const Fsm& fsm,
                   const std::vector<int8_t>& from,
                   const std::vector<int8_t>& to, const char* label) {
  std::vector<uint32_t> cur = fsm.decodeState(from);
  std::vector<uint32_t> nxt = fsm.decodeState(to);
  bool anyChange = false;
  for (size_t l = 0; l < fsm.numLatches(); ++l) {
    if (cur[l] == nxt[l]) continue;
    if (anyChange) {
      os << ", ";
    } else {
      os << "        " << label << ": ";
    }
    anyChange = true;
    os << fsm.latchName(l);
    if (fsm.latchLine(l) > 0) os << " (line " << fsm.latchLine(l) << ")";
  }
  if (anyChange) os << "\n";
}

}  // namespace

std::string renderTraceWithSource(const Trace& trace, const Fsm& fsm) {
  std::ostringstream os;
  for (size_t i = 0; i < trace.states.size(); ++i) {
    if (trace.cycleStart == static_cast<int>(i)) os << "  -- cycle --\n";
    os << "  step " << i << ": " << fsm.formatState(trace.states[i]) << "\n";
    if (i + 1 < trace.states.size())
      appendChanges(os, fsm, trace.states[i], trace.states[i + 1], "changes");
  }
  if (trace.isLasso()) {
    // The back edge is a real transition too: annotate what it flips on
    // re-entry, same source-line marking as the forward edges.
    appendChanges(os, fsm, trace.states.back(),
                  trace.states[static_cast<size_t>(trace.cycleStart)],
                  "back-edge changes");
    os << "  (loops back to step " << trace.cycleStart << ")\n";
  }
  return os.str();
}

std::string renderBugReport(const BugReport& report, const Fsm& fsm) {
  std::ostringstream os;
  os << "=== bug report: " << report.propertyName << " ===\n";
  os << "paradigm: "
     << (report.paradigm == BugReport::Paradigm::ModelChecking
             ? "CTL model checking"
             : "language containment")
     << "\n";
  os << "property: " << report.propertyText << "\n";
  os << "result:   " << (report.holds ? "PASS" : "FAIL");
  if (report.usedEarlyFailure) os << " (early failure detection)";
  os << "\n";
  for (const std::string& n : report.notes) os << "note: " << n << "\n";
  if (report.trace.has_value()) {
    os << (report.holds ? "witness:\n" : "error trace:\n");
    os << renderTrace(*report.trace, fsm);
  }
  return os.str();
}

}  // namespace hsis
