// Markdown rendering of an artifact — the `hsis_report cex` view: a step
// table with source-line column headers and cycle marking.
#include <sstream>

#include "cex/cex.hpp"

namespace hsis::cex {

namespace {

std::string valueText(const SignalInfo& sig, uint32_t val) {
  if (val < sig.valueNames.size() && !sig.valueNames[val].empty())
    return sig.valueNames[val];
  return std::to_string(val);
}

}  // namespace

std::string renderMarkdown(const Artifact& a) {
  std::ostringstream os;
  os << "# Counterexample: "
     << (a.propertyName.empty() ? std::string("(unnamed)") : a.propertyName)
     << "\n\n";
  os << "- property: `" << a.propertyText << "`\n";
  os << "- replay: **" << a.replay << "**";
  if (!a.replayNote.empty()) os << " — " << a.replayNote;
  os << "\n";
  os << "- design: " << a.designName;
  if (!a.designKind.empty()) os << " (" << a.designKind << ")";
  if (!a.designDigest.empty()) os << ", digest `" << a.designDigest << "`";
  os << "\n";
  if (!a.traceId.empty()) os << "- trace_id: `" << a.traceId << "`\n";
  if (!a.gitSha.empty()) os << "- git sha: `" << a.gitSha << "`\n";
  os << "- trace: " << a.steps.size() << " step"
     << (a.steps.size() == 1 ? "" : "s");
  if (a.isLasso())
    os << ", lasso re-entering step " << a.cycleStart;
  else
    os << ", plain path";
  os << "\n\n";

  if (a.steps.empty()) return os.str();

  os << "| step |";
  for (const SignalInfo& s : a.latches) {
    os << " " << s.name;
    if (s.sourceLine > 0) os << " (line " << s.sourceLine << ")";
    os << " |";
  }
  for (const SignalInfo& s : a.inputs) os << " in: " << s.name << " |";
  os << "\n|---|";
  for (size_t i = 0; i < a.latches.size() + a.inputs.size(); ++i) os << "---|";
  os << "\n";

  for (size_t i = 0; i < a.steps.size(); ++i) {
    const Step& step = a.steps[i];
    os << "| " << i;
    if (a.cycleStart == static_cast<int>(i)) os << " (cycle)";
    os << " |";
    for (size_t l = 0; l < a.latches.size(); ++l)
      os << " "
         << (l < step.latchValues.size()
                 ? valueText(a.latches[l], step.latchValues[l])
                 : std::string("?"))
         << " |";
    for (size_t k = 0; k < a.inputs.size(); ++k)
      os << " "
         << (k < step.inputValues.size()
                 ? valueText(a.inputs[k], step.inputValues[k])
                 : std::string("-"))
         << " |";
    os << "\n";
  }
  if (a.isLasso())
    os << "\nThe final step loops back to step " << a.cycleStart << ".\n";
  return os.str();
}

}  // namespace hsis::cex
