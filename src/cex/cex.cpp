// Artifact assembly: decode a failing check's Trace into the hsis-cex-v1
// signal/step shape, with source-line attribution and run identity.
#include "cex/cex.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/control.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"

namespace hsis::cex {

bool cexEnabled() {
  return obs::kEnabled && std::getenv("HSIS_CEX_DISABLE") == nullptr;
}

namespace {

SignalInfo signalInfoOf(const MvSpace& space, MvVarId v, int sourceLine) {
  SignalInfo info;
  info.name = space.name(v);
  info.domain = space.domain(v);
  info.bits = MvSpace::bitsFor(info.domain);
  info.valueNames = space.valueNames(v);
  info.sourceLine = sourceLine;
  return info;
}

}  // namespace

Artifact build(const Fsm& fsm, const Trace& trace, const BuildInputs& in) {
  obs::Span span("cex.build");
  Artifact a;
  a.traceId = in.traceId;
  a.gitSha = obs::gitSha();
  a.designName = in.designName.empty() ? fsm.name() : in.designName;
  a.designDigest = in.designDigest;
  a.designKind = in.designKind;
  a.designTop = in.designTop;
  a.designText = in.designText;
  a.propertyName = in.propertyName;
  a.propertyText = in.propertyText;
  a.propertyDigest = obs::ledger::digestOf(in.propertyText);
  a.cycleStart = trace.cycleStart;

  const MvSpace& space = fsm.space();
  a.latches.reserve(fsm.numLatches());
  for (size_t l = 0; l < fsm.numLatches(); ++l)
    a.latches.push_back(
        signalInfoOf(space, fsm.stateVar(l), fsm.latchLine(l)));
  if (!trace.inputs.empty()) {
    a.inputs.reserve(fsm.inputVars().size());
    for (MvVarId v : fsm.inputVars())
      a.inputs.push_back(signalInfoOf(space, v, 0));
  }

  a.steps.reserve(trace.states.size());
  for (size_t i = 0; i < trace.states.size(); ++i) {
    Step step;
    step.latchValues = fsm.decodeState(trace.states[i]);
    if (i < trace.inputs.size()) step.inputValues = trace.inputs[i];
    a.steps.push_back(std::move(step));
  }
  // A lasso's back-edge stimulus rides on the final step (its outgoing
  // transition is the back edge).
  if (trace.isLasso() && trace.inputs.size() == trace.states.size() &&
      !a.steps.empty())
    a.steps.back().inputValues = trace.inputs.back();
  return a;
}

void verifyAndStamp(Artifact& a, const Fsm& fsm,
                    const TransitionRelation& tr) {
  ReplayResult r = replay(a, fsm, tr);
  a.replay = r.verified ? "verified" : "unverified";
  a.replayNote = r.note;
  obs::counter(r.verified ? "cex.replay.verified" : "cex.replay.failed")
      .add();
}

bool writeFiles(const Artifact& a, const std::string& jsonPath,
                const std::string& vcdPath) {
  auto writeOne = [](const std::string& path, const std::string& text) {
    std::error_code ec;
    std::filesystem::path p(path);
    if (p.has_parent_path())
      std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(path);
    if (!out) return false;
    out << text;
    return static_cast<bool>(out);
  };
  bool ok = writeOne(jsonPath, toJson(a) + "\n");
  ok = writeOne(vcdPath, toVcd(a)) && ok;
  return ok;
}

}  // namespace hsis::cex
