// IEEE 1364 value-change-dump export of an hsis-cex-v1 artifact, so any
// standard waveform viewer (gtkwave etc.) opens the failure.
#include <algorithm>
#include <sstream>

#include "cex/cex.hpp"

namespace hsis::cex {

namespace {

/// Printable VCD identifier codes: '!'..'~', then two-char codes. The
/// spec allows any string of printable characters.
std::string idCode(size_t index) {
  const char lo = '!';
  const size_t range = '~' - '!' + 1;
  std::string id;
  do {
    id += static_cast<char>(lo + index % range);
    index /= range;
  } while (index > 0);
  return id;
}

struct Column {
  const SignalInfo* sig;
  std::string id;
  bool isInput;
  size_t index;  ///< position inside latchValues / inputValues
};

uint32_t valueAt(const Artifact& a, const Column& c, size_t step,
                 uint32_t prev) {
  const Step& s = a.steps[step];
  if (!c.isInput) return s.latchValues[c.index];
  // The final step of a plain path has no outgoing transition, so no
  // stimulus was recorded; hold the previous value for the viewer.
  if (c.index >= s.inputValues.size()) return prev;
  return s.inputValues[c.index];
}

void emitValue(std::ostringstream& os, const Column& c, uint32_t val) {
  uint32_t width = std::max<uint32_t>(c.sig->bits, 1);
  if (width == 1) {
    os << (val & 1u) << c.id << "\n";
    return;
  }
  os << "b";
  for (uint32_t b = width; b-- > 0;) os << ((val >> b) & 1u);
  os << " " << c.id << "\n";
}

}  // namespace

std::string toVcd(const Artifact& a) {
  std::ostringstream os;
  os << "$date\n    (hsis)\n$end\n";
  os << "$version\n    hsis_cex " << kSchema << "\n$end\n";
  os << "$comment\n    property: " << a.propertyName;
  if (!a.traceId.empty()) os << "\n    trace_id: " << a.traceId;
  if (a.isLasso())
    os << "\n    lasso: cycle starts at step " << a.cycleStart
       << ", unrolled twice";
  os << "\n$end\n";
  os << "$timescale 1ns $end\n";
  os << "$scope module "
     << (a.designName.empty() ? std::string("design") : a.designName)
     << " $end\n";

  std::vector<Column> cols;
  for (size_t i = 0; i < a.latches.size(); ++i)
    cols.push_back({&a.latches[i], idCode(cols.size()), false, i});
  for (size_t i = 0; i < a.inputs.size(); ++i)
    cols.push_back({&a.inputs[i], idCode(cols.size()), true, i});
  for (const Column& c : cols)
    os << "$var wire " << std::max<uint32_t>(c.sig->bits, 1) << " " << c.id
       << " " << c.sig->name << " $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";
  if (a.steps.empty()) return os.str();

  // Timeline: the trace's steps, then — for a lasso — the cycle replayed a
  // second time so the repetition is visible in the waveform.
  std::vector<size_t> timeline;
  for (size_t i = 0; i < a.steps.size(); ++i) timeline.push_back(i);
  size_t unrollAt = timeline.size();
  if (a.isLasso())
    for (size_t i = static_cast<size_t>(a.cycleStart); i < a.steps.size(); ++i)
      timeline.push_back(i);

  std::vector<uint32_t> prev(cols.size(), 0);
  for (size_t t = 0; t < timeline.size(); ++t) {
    if (a.isLasso() && t == unrollAt)
      os << "$comment lasso: cycle re-enters step " << a.cycleStart
         << " $end\n";
    os << "#" << t << "\n";
    if (t == 0) os << "$dumpvars\n";
    for (size_t k = 0; k < cols.size(); ++k) {
      uint32_t val = valueAt(a, cols[k], timeline[t], prev[k]);
      if (t == 0 || val != prev[k]) emitValue(os, cols[k], val);
      prev[k] = val;
    }
    if (t == 0) os << "$end\n";
  }
  os << "#" << timeline.size() << "\n";
  return os.str();
}

}  // namespace hsis::cex
