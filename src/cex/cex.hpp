// hsis_cex: replayable counterexample artifacts (schema hsis-cex-v1).
//
// The paper's Section 6 pitch is that short error traces make verification
// usable; this layer turns a failing check's Trace into a self-contained
// artifact a user can open anywhere:
//
//  1. Artifact assembly — the path/lasso with per-step latch *and* input
//     bindings decoded through the MvSpace, Verilog source-line attribution
//     via the .lineinfo chain (Fsm::latchLine), the violated property text
//     + digest, and the run's trace_id / git sha / design digest for the
//     ledger join. The design source itself is embedded, so replay and
//     re-rendering need nothing but the file.
//  2. VCD export — IEEE 1364 $var/value-change output so any standard
//     waveform viewer opens the failure; a lasso's cycle is unrolled twice
//     and marked with a $comment.
//  3. Replay verification — the trace is driven through the state-based
//     simulator (src/sim) step by step: the first state must be initial,
//     every transition admissible (with the recorded inputs pinned against
//     the raw relations), and the final state/cycle must violate the
//     property. Artifacts are stamped `replay: verified|unverified`.
//
// Everything folds to a no-op under HSIS_OBS_DISABLE builds or when
// HSIS_CEX_DISABLE is set (the cov/slow-capture gating pattern); disabled
// paths build no artifacts and write no files.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fsm/image.hpp"
#include "fsm/trace.hpp"

namespace hsis::cex {

inline constexpr std::string_view kSchema = "hsis-cex-v1";

/// Master switch: true when the obs layer is compiled in and
/// HSIS_CEX_DISABLE is not set. Callers gate artifact building on this so
/// the disabled configuration costs one getenv per failing property.
bool cexEnabled();

/// One signal column of the artifact: a latch or a free primary input,
/// with enough metadata to decode values and render a VCD $var.
struct SignalInfo {
  std::string name;
  uint32_t domain = 0;
  uint32_t bits = 0;  ///< binary encoding width (VCD vector width)
  std::vector<std::string> valueNames;  ///< symbolic names ({} = numeric)
  int sourceLine = 0;  ///< HDL line via .lineinfo (0 = unknown; inputs 0)
};

/// One trace step: decoded values aligned with Artifact::latches, plus the
/// input stimulus driving the *outgoing* transition (empty on the final
/// step of a plain path, and whenever the model has no free inputs).
struct Step {
  std::vector<uint32_t> latchValues;
  std::vector<uint32_t> inputValues;
};

struct Artifact {
  // ---- run identity (ledger join) ----
  std::string traceId;  ///< 16-hex request trace id ("" = none)
  std::string gitSha;
  // ---- design, embedded so the artifact is self-contained ----
  std::string designName;
  std::string designDigest;
  std::string designKind;  ///< "verilog" | "blifmv" | "" (not embedded)
  std::string designTop;
  std::string designText;
  // ---- the violated property ----
  std::string propertyName;
  std::string propertyText;    ///< CTL text (CtlFormula::toString shape)
  std::string propertyDigest;  ///< FNV-1a of propertyText
  // ---- the trace ----
  int cycleStart = -1;  ///< lasso re-entry step; -1 = plain path
  std::vector<SignalInfo> latches;
  std::vector<SignalInfo> inputs;  ///< empty when no stimulus was recorded
  std::vector<Step> steps;
  // ---- replay stamp ----
  std::string replay = "unverified";  ///< "verified" | "unverified"
  std::string replayNote;  ///< why unverified ("" when verified)

  [[nodiscard]] bool isLasso() const { return cycleStart >= 0; }
};

/// Everything build() needs beyond the machine itself. The design source
/// fields may stay empty (artifact still renders; replayFromSource won't).
struct BuildInputs {
  std::string propertyName;
  std::string propertyText;
  std::string traceId;
  std::string designName;
  std::string designDigest;
  std::string designKind;
  std::string designTop;
  std::string designText;
};

/// Assemble an artifact from a failing check's trace (does not replay —
/// call verifyAndStamp or replay* for the stamp). Wrapped in a "cex.build"
/// span; the caller must have checked cexEnabled().
Artifact build(const Fsm& fsm, const Trace& trace, const BuildInputs& in);

// ---- serialization ----

/// One-line hsis-cex-v1 JSON document (no trailing newline).
std::string toJson(const Artifact& a);
/// Parse an hsis-cex-v1 document. Throws std::runtime_error on malformed
/// input or a schema mismatch.
Artifact parseJson(const std::string& text);

// ---- VCD export ----

/// Render the trace as an IEEE 1364 value-change dump: one $var per latch
/// and recorded input, multi-bit signals as b-vectors, one timestep per
/// trace step. A lasso's cycle is unrolled twice, the re-entry marked with
/// a $comment, so viewers show the repeating suffix.
std::string toVcd(const Artifact& a);

// ---- replay verification ----

struct ReplayResult {
  bool verified = false;
  std::string note;  ///< first failed check ("" when verified)
};

/// Drive the artifact's trace through the simulator against an
/// already-built machine: initial-state membership, per-step admissibility
/// (inputs pinned when recorded), and property violation at the end state
/// (AG) or on every cycle state (AF lasso). Properties outside those
/// replayable shapes verify the trace dynamics only and come back
/// unverified with an explanatory note.
ReplayResult replay(const Artifact& a, const Fsm& fsm,
                    const TransitionRelation& tr);

/// Recompile the embedded design source and replay against it — the
/// `hsis_report cex --replay` path. Unverified (with a note) when no
/// source is embedded or it no longer compiles.
ReplayResult replayFromSource(const Artifact& a);

/// replay() + stamp the artifact, bumping the cex.replay.verified /
/// cex.replay.failed counters.
void verifyAndStamp(Artifact& a, const Fsm& fsm,
                    const TransitionRelation& tr);

// ---- reporting ----

/// Markdown step table with per-signal source lines (hsis_report cex).
std::string renderMarkdown(const Artifact& a);

/// Write the JSON + VCD pair. Returns false on I/O failure (never
/// throws); creates parent directories.
bool writeFiles(const Artifact& a, const std::string& jsonPath,
                const std::string& vcdPath);

}  // namespace hsis::cex
