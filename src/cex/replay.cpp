// Replay verification: drive an artifact's trace through the state-based
// simulator and confirm it still demonstrates the property violation.
#include <stdexcept>

#include "cex/cex.hpp"
#include "ctl/ctl.hpp"
#include "hsis/session.hpp"
#include "sim/simulator.hpp"

namespace hsis::cex {

namespace {

/// The checker's propositional semantics (CtlChecker::evalPropositional is
/// private): atoms straight through evalSigExpr, booleans on top.
Bdd evalProp(const CtlRef& f, const Fsm& fsm) {
  switch (f->kind) {
    case CtlFormula::Kind::True:
      return fsm.mgr().bddOne();
    case CtlFormula::Kind::False:
      return fsm.mgr().bddZero();
    case CtlFormula::Kind::Atom:
      return evalSigExpr(*f->atom, fsm);
    case CtlFormula::Kind::Not:
      return !evalProp(f->left, fsm);
    case CtlFormula::Kind::And:
      return evalProp(f->left, fsm) & evalProp(f->right, fsm);
    case CtlFormula::Kind::Or:
      return evalProp(f->left, fsm) | evalProp(f->right, fsm);
    default:
      throw std::runtime_error("not propositional");
  }
}

ReplayResult fail(const std::string& note) { return {false, note}; }

}  // namespace

ReplayResult replay(const Artifact& a, const Fsm& fsm,
                    const TransitionRelation& tr) {
  if (a.steps.empty()) return fail("empty trace");
  if (a.latches.size() != fsm.numLatches())
    return fail("latch count mismatch: artifact has " +
                std::to_string(a.latches.size()) + ", design has " +
                std::to_string(fsm.numLatches()));

  // Decode every step back into a state set; reject out-of-domain values
  // before they reach the BDD layer.
  const MvSpace& space = fsm.space();
  std::vector<Bdd> states;
  states.reserve(a.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    const std::vector<uint32_t>& vals = a.steps[i].latchValues;
    if (vals.size() != fsm.numLatches())
      return fail("step " + std::to_string(i) + " has wrong latch count");
    for (size_t l = 0; l < vals.size(); ++l)
      if (vals[l] >= space.domain(fsm.stateVar(l)))
        return fail("step " + std::to_string(i) + ": value of " +
                    fsm.latchName(l) + " out of domain");
    states.push_back(fsm.stateFromValues(vals));
  }

  // 1. The trace must start in an initial state.
  if ((states[0] & fsm.initialStates()).isZero())
    return fail("step 0 is not an initial state");

  // 2. Every transition (and a lasso's back edge) must be admissible,
  //    checked by actually stepping the simulator.
  Simulator sim(fsm, tr);
  if (!sim.setState(concretizeState(fsm, states[0])))
    return fail("step 0 is not a valid state");
  const bool lasso = a.isLasso();
  const size_t transitions = a.steps.size() - 1 + (lasso ? 1 : 0);
  const bool pinInputs = !a.inputs.empty() &&
                         a.inputs.size() == fsm.inputVars().size();
  for (size_t i = 0; i < transitions; ++i) {
    const size_t next =
        i + 1 < a.steps.size() ? i + 1 : static_cast<size_t>(a.cycleStart);
    const char* what = i + 1 < a.steps.size() ? "transition " : "back edge ";
    if (!sim.stepTo(concretizeState(fsm, states[next])))
      return fail(std::string(what) + std::to_string(i) + " -> " +
                  std::to_string(next) + " is not admissible");
    // With recorded stimulus, additionally require the transition to be
    // takeable under exactly those input values — pinned against the raw
    // (unquantified) relation conjuncts.
    if (!pinInputs || a.steps[i].inputValues.size() != a.inputs.size())
      continue;
    Bdd rel = states[i] & fsm.presentToNext(states[next]);
    const std::vector<MvVarId>& ins = fsm.inputVars();
    for (size_t k = 0; k < ins.size() && !rel.isZero(); ++k) {
      uint32_t v = a.steps[i].inputValues[k];
      if (v >= space.domain(ins[k]))
        return fail("step " + std::to_string(i) + ": recorded input " +
                    space.name(ins[k]) + " out of domain");
      rel &= space.literal(ins[k], v);
    }
    for (const Bdd& r : fsm.relations()) {
      rel &= r;
      if (rel.isZero()) break;
    }
    if (rel.isZero())
      return fail("recorded inputs at step " + std::to_string(i) +
                  " do not admit the transition");
  }

  // 3. The property must actually be violated where the trace claims.
  CtlRef formula;
  try {
    formula = parseCtl(a.propertyText);
  } catch (const std::exception& e) {
    return fail(std::string("property text does not parse: ") + e.what());
  }
  try {
    if (formula->kind == CtlFormula::Kind::AG &&
        formula->left->isPropositional()) {
      // AG p counterexample: a path ending in a ¬p state.
      Bdd p = evalProp(formula->left, fsm);
      if (!(states.back() & p).isZero())
        return fail("final state does not violate the AG body");
    } else if (formula->kind == CtlFormula::Kind::AF &&
               formula->left->isPropositional()) {
      // AF p counterexample: a (fair) lasso avoiding p on the whole cycle.
      if (!lasso) return fail("AF counterexample must be a lasso");
      Bdd p = evalProp(formula->left, fsm);
      for (size_t i = static_cast<size_t>(a.cycleStart); i < states.size();
           ++i)
        if (!(states[i] & p).isZero())
          return fail("cycle step " + std::to_string(i) +
                      " satisfies the AF body");
    } else {
      return fail(
          "property shape not replayable (trace dynamics checked only)");
    }
  } catch (const std::exception& e) {
    return fail(std::string("property evaluation failed: ") + e.what());
  }
  return {true, ""};
}

ReplayResult replayFromSource(const Artifact& a) {
  if (a.designText.empty())
    return fail("no design source embedded in artifact");
  Session::DesignSource src;
  if (a.designKind == "verilog") {
    src.kind = Session::DesignSource::Kind::Verilog;
  } else if (a.designKind == "blifmv") {
    src.kind = Session::DesignSource::Kind::BlifMv;
  } else {
    return fail("unknown design kind '" + a.designKind + "'");
  }
  src.text = a.designText;
  src.top = a.designTop;
  try {
    Session session;
    session.load(src);
    session.build();
    if (!a.designDigest.empty() && session.digest() != a.designDigest)
      return fail("design digest mismatch: artifact " + a.designDigest +
                  ", recompiled " + session.digest());
    return replay(a, session.fsm(), session.tr());
  } catch (const std::exception& e) {
    return fail(std::string("design no longer compiles: ") + e.what());
  }
}

}  // namespace hsis::cex
