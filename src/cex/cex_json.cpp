// hsis-cex-v1 serialization and the matching reader used by
// `hsis_report cex` and `hsis_client --cex-out`.
#include <cstdio>
#include <stdexcept>

#include "cex/cex.hpp"
#include "obs/jsonlite.hpp"

namespace hsis::cex {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void appendSignals(std::string& out, const std::vector<SignalInfo>& sigs) {
  out += "[";
  for (size_t i = 0; i < sigs.size(); ++i) {
    const SignalInfo& s = sigs[i];
    if (i) out += ", ";
    out += "{\"name\": " + quoted(s.name);
    out += ", \"domain\": " + std::to_string(s.domain);
    out += ", \"bits\": " + std::to_string(s.bits);
    out += ", \"values\": [";
    for (size_t k = 0; k < s.valueNames.size(); ++k) {
      if (k) out += ", ";
      out += quoted(s.valueNames[k]);
    }
    out += "], \"line\": " + std::to_string(s.sourceLine);
    out += "}";
  }
  out += "]";
}

void appendValues(std::string& out, const std::vector<uint32_t>& vals) {
  out += "[";
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(vals[i]);
  }
  out += "]";
}

}  // namespace

std::string toJson(const Artifact& a) {
  std::string out = "{\"schema\": \"hsis-cex-v1\"";
  out += ", \"trace_id\": " + quoted(a.traceId);
  out += ", \"git_sha\": " + quoted(a.gitSha);
  out += ", \"design\": {\"name\": " + quoted(a.designName);
  out += ", \"digest\": " + quoted(a.designDigest);
  out += ", \"kind\": " + quoted(a.designKind);
  out += ", \"top\": " + quoted(a.designTop);
  out += ", \"text\": " + quoted(a.designText);
  out += "}, \"property\": {\"name\": " + quoted(a.propertyName);
  out += ", \"text\": " + quoted(a.propertyText);
  out += ", \"digest\": " + quoted(a.propertyDigest);
  out += "}, \"replay\": " + quoted(a.replay);
  out += ", \"replay_note\": " + quoted(a.replayNote);
  out += ", \"cycle_start\": " + std::to_string(a.cycleStart);
  out += ", \"latches\": ";
  appendSignals(out, a.latches);
  out += ", \"inputs\": ";
  appendSignals(out, a.inputs);
  out += ", \"steps\": [";
  for (size_t i = 0; i < a.steps.size(); ++i) {
    if (i) out += ", ";
    out += "{\"latches\": ";
    appendValues(out, a.steps[i].latchValues);
    out += ", \"inputs\": ";
    appendValues(out, a.steps[i].inputValues);
    out += "}";
  }
  out += "]}";
  return out;
}

namespace {

namespace jl = obs::jsonlite;

const jl::Value& need(const jl::Object& obj, const std::string& key) {
  const jl::Value* v = jl::find(obj, key);
  if (!v)
    throw std::runtime_error("hsis-cex-v1: missing field '" + key + "'");
  return *v;
}

std::vector<SignalInfo> parseSignals(const jl::Value& v) {
  std::vector<SignalInfo> sigs;
  for (const jl::Value& sv : v.array()) {
    const jl::Object& so = sv.object();
    SignalInfo s;
    s.name = need(so, "name").str();
    s.domain = static_cast<uint32_t>(need(so, "domain").number());
    s.bits = static_cast<uint32_t>(need(so, "bits").number());
    for (const jl::Value& nv : need(so, "values").array())
      s.valueNames.push_back(nv.str());
    s.sourceLine = static_cast<int>(need(so, "line").number());
    sigs.push_back(std::move(s));
  }
  return sigs;
}

std::vector<uint32_t> parseValues(const jl::Value& v) {
  std::vector<uint32_t> vals;
  for (const jl::Value& nv : v.array())
    vals.push_back(static_cast<uint32_t>(nv.number()));
  return vals;
}

}  // namespace

Artifact parseJson(const std::string& text) {
  jl::Value doc = jl::parse(text);
  if (!doc.isObject())
    throw std::runtime_error("hsis-cex-v1: document is not an object");
  const jl::Object& obj = doc.object();
  const jl::Value& schema = need(obj, "schema");
  if (!schema.isString() || schema.str() != kSchema)
    throw std::runtime_error("hsis-cex-v1: unexpected schema tag");

  Artifact a;
  a.traceId = need(obj, "trace_id").str();
  a.gitSha = need(obj, "git_sha").str();
  const jl::Object& design = need(obj, "design").object();
  a.designName = need(design, "name").str();
  a.designDigest = need(design, "digest").str();
  a.designKind = need(design, "kind").str();
  a.designTop = need(design, "top").str();
  a.designText = need(design, "text").str();
  const jl::Object& prop = need(obj, "property").object();
  a.propertyName = need(prop, "name").str();
  a.propertyText = need(prop, "text").str();
  a.propertyDigest = need(prop, "digest").str();
  a.replay = need(obj, "replay").str();
  a.replayNote = need(obj, "replay_note").str();
  a.cycleStart = static_cast<int>(need(obj, "cycle_start").number());
  a.latches = parseSignals(need(obj, "latches"));
  a.inputs = parseSignals(need(obj, "inputs"));
  for (const jl::Value& sv : need(obj, "steps").array()) {
    const jl::Object& so = sv.object();
    Step step;
    step.latchValues = parseValues(need(so, "latches"));
    step.inputValues = parseValues(need(so, "inputs"));
    if (step.latchValues.size() != a.latches.size())
      throw std::runtime_error("hsis-cex-v1: step width != latch count");
    a.steps.push_back(std::move(step));
  }
  if (a.cycleStart >= static_cast<int>(a.steps.size()))
    throw std::runtime_error("hsis-cex-v1: cycle_start out of range");
  return a;
}

}  // namespace hsis::cex
