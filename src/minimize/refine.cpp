#include "minimize/refine.hpp"

namespace hsis {

RefinementResult simulationRefinement(
    const Fsm& impl, const TransitionRelation& trImpl, const Bdd& implReached,
    const Fsm& spec, const TransitionRelation& trSpec, const Bdd& specReached,
    const std::vector<std::pair<Bdd, Bdd>>& observations) {
  BddManager& mgr = impl.mgr();
  RefinementResult res;

  // Monolithic transition relations over each machine's (x, y) rails.
  Bdd ti = mgr.bddOne();
  for (const Bdd& c : trImpl.clusters()) ti &= c;
  ti = mgr.exists(ti, impl.nonStateCube());
  Bdd ts = mgr.bddOne();
  for (const Bdd& c : trSpec.clusters()) ts &= c;
  ts = mgr.exists(ts, spec.nonStateCube());

  // Restrict to the reachable care sets (they are image-closed).
  ti = mgr.restrict(ti, implReached);
  ts = mgr.restrict(ts, specReached);

  // present -> next rename covering both machines' rails at once.
  uint32_t nv = mgr.numVars();
  std::vector<BddVar> toNext(nv);
  for (uint32_t v = 0; v < nv; ++v) toNext[v] = v;
  const MvSpace& si = impl.space();
  for (size_t l = 0; l < impl.numLatches(); ++l) {
    const auto& xb = si.bits(impl.stateVar(l));
    const auto& yb = si.bits(impl.nextVar(l));
    for (size_t k = 0; k < xb.size(); ++k) toNext[xb[k]] = yb[k];
  }
  const MvSpace& ss = spec.space();
  for (size_t l = 0; l < spec.numLatches(); ++l) {
    const auto& xb = ss.bits(spec.stateVar(l));
    const auto& yb = ss.bits(spec.nextVar(l));
    for (size_t k = 0; k < xb.size(); ++k) toNext[xb[k]] = yb[k];
  }

  // Initial relation: reachable pairs that agree on every observation.
  Bdd s = implReached & specReached;
  for (const auto& [pi, ps] : observations) {
    s &= (pi & ps) | ((!pi) & (!ps));
  }

  // Greatest fixpoint: every implementation move is matched.
  while (true) {
    ++res.refinementIterations;
    Bdd sy = mgr.permute(s, toNext);  // over (y_impl, y_spec)
    Bdd matched = mgr.andExists(ts, sy, spec.nextCube());   // (x_spec, y_impl)
    Bdd bad = mgr.andExists(ti, !matched, impl.nextCube()); // (x_impl, x_spec)
    Bdd s2 = s & !bad;
    if (s2 == s) break;
    s = std::move(s2);
  }
  res.simulation = s;

  // Every initial implementation state must relate to some initial
  // specification state.
  Bdd initMatched = mgr.andExists(s, spec.initialStates(), spec.presentCube());
  res.refines = impl.initialStates().leq(initMatched);
  if (!res.refines) {
    Bdd unmatched = impl.initialStates() & !initMatched;
    if (!unmatched.isZero()) res.unmatchedInitial = unmatched;
  }
  return res;
}

}  // namespace hsis
