// Hierarchical verification (paper Section 8, item 3): "techniques that
// compare lower level designs with higher level ones to guarantee that
// re-evaluation of properties proved at higher levels is not needed."
//
// The check is a symbolic simulation preorder: every move of the
// implementation can be matched by the (typically more abstract, more
// nondeterministic) specification while agreeing on the given observations.
// Simulation implies trace containment, so every linear-time property and
// every ACTL property proved on the specification carries down — exactly
// the top-down refinement methodology of the paper's Section 2.
#pragma once

#include <string>
#include <vector>

#include "fsm/image.hpp"

namespace hsis {

struct RefinementResult {
  /// Does every implementation behaviour simulate into the specification?
  bool refines = false;
  /// Greatest simulation relation S(x_impl, x_spec) over the two machines'
  /// present-state rails (both FSMs must live in the same BddManager).
  Bdd simulation;
  size_t refinementIterations = 0;
  /// When !refines: an initial implementation state with no matching
  /// initial specification state, if that is the reason (else null).
  Bdd unmatchedInitial;
};

/// Check that `impl` refines `spec` modulo the observation pairs: each pair
/// (p_impl, p_spec) is a predicate over the respective machine's
/// present-state variables that must agree on related states.
///
/// Both FSMs must have been built in the SAME BddManager (construct one
/// after the other); the relations range over disjoint variable rails.
/// Care sets restrict the computation to the two reachable sets.
RefinementResult simulationRefinement(
    const Fsm& impl, const TransitionRelation& trImpl, const Bdd& implReached,
    const Fsm& spec, const TransitionRelation& trSpec, const Bdd& specReached,
    const std::vector<std::pair<Bdd, Bdd>>& observations);

}  // namespace hsis
