// State minimization by bisimulation (paper Section 1, feature 6 and
// Section 2 item 3): symbolic partition refinement computing the coarsest
// bisimulation that respects a set of observations, plus the machinery to
// use equivalence classes as don't cares for BDD minimization.
#pragma once

#include <vector>

#include "fsm/image.hpp"

namespace hsis {

struct BisimResult {
  /// Equivalence relation E(x, x') over two copies of the state rail; the
  /// shadow rail's variables are listed in `shadowMap`.
  Bdd equivalence;
  /// One representative state per class (the lexicographically least).
  Bdd representatives;
  /// Number of equivalence classes among `careStates`.
  double classCount = 0.0;
  size_t refinementIterations = 0;
  /// map[v] = shadow BDD variable for state-rail variable v (identity
  /// elsewhere), for use with BddManager::permute.
  std::vector<BddVar> shadowMap;
  std::vector<BddVar> shadowMapInverse;
};

/// Compute the coarsest bisimulation on `careStates` (usually the reachable
/// set) that distinguishes states with different values of any observation
/// BDD (each over present-state variables). Allocates shadow state
/// variables in the manager on first use.
///
/// Two care states s ~ t iff every observation agrees on them and every
/// transition of s can be matched by a transition of t into an equivalent
/// state (and vice versa).
BisimResult bisimulation(const Fsm& fsm, const TransitionRelation& tr,
                         const std::vector<Bdd>& observations,
                         const Bdd& careStates);

/// Shrink a class-closed state set using the equivalence: the result agrees
/// with `set` on representative states and is don't-care elsewhere
/// (restrict-minimized). Expanding back: expandByEquivalence.
Bdd shrinkToRepresentatives(const Fsm& fsm, const BisimResult& bisim,
                            const Bdd& set);

/// Expand a representative-only set to the full union of its classes.
Bdd expandByEquivalence(const Fsm& fsm, const BisimResult& bisim,
                        const Bdd& repSet);

}  // namespace hsis
