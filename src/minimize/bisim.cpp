#include "minimize/bisim.hpp"

namespace hsis {

BisimResult bisimulation(const Fsm& fsm, const TransitionRelation& tr,
                         const std::vector<Bdd>& observations,
                         const Bdd& careStates) {
  BddManager& mgr = fsm.mgr();
  const MvSpace& space = fsm.space();
  BisimResult res;

  // Shadow rails: one fresh variable per present/next state bit, inserted
  // directly below its original in the variable order — the equivalence
  // relation E(x,x') is near-diagonal, and a diagonal over distant rails
  // has exponential BDDs.
  uint32_t nvBefore = mgr.numVars();
  std::vector<BddVar> xBits, yBits, x2Bits, y2Bits;
  for (size_t l = 0; l < fsm.numLatches(); ++l) {
    for (BddVar b : space.bits(fsm.stateVar(l))) xBits.push_back(b);
    for (BddVar b : space.bits(fsm.nextVar(l))) yBits.push_back(b);
  }
  for (size_t i = 0; i < xBits.size(); ++i)
    x2Bits.push_back(mgr.newVarAtLevel(mgr.level(xBits[i]) + 1));
  for (size_t i = 0; i < yBits.size(); ++i)
    y2Bits.push_back(mgr.newVarAtLevel(mgr.level(yBits[i]) + 1));

  uint32_t nv = mgr.numVars();
  std::vector<BddVar> shadowMap(nv), shadowInv(nv), pairToNext(nv);
  for (uint32_t v = 0; v < nv; ++v) {
    shadowMap[v] = v;
    shadowInv[v] = v;
    pairToNext[v] = v;
  }
  for (size_t i = 0; i < xBits.size(); ++i) {
    shadowMap[xBits[i]] = x2Bits[i];
    shadowInv[x2Bits[i]] = xBits[i];
    pairToNext[xBits[i]] = yBits[i];
    pairToNext[x2Bits[i]] = y2Bits[i];
  }
  for (size_t i = 0; i < yBits.size(); ++i) shadowMap[yBits[i]] = y2Bits[i];
  res.shadowMap = shadowMap;
  res.shadowMapInverse = shadowInv;
  (void)nvBefore;

  Bdd x2Cube = mgr.bddOne();
  for (size_t i = x2Bits.size(); i-- > 0;) x2Cube &= mgr.bddVar(x2Bits[i]);
  Bdd y2Cube = mgr.bddOne();
  for (size_t i = y2Bits.size(); i-- > 0;) y2Cube &= mgr.bddVar(y2Bits[i]);

  // Monolithic transition relation over (x,y) and its shadow copy.
  Bdd t = mgr.bddOne();
  for (const Bdd& c : tr.clusters()) t &= c;
  t = mgr.exists(t, fsm.nonStateCube());
  Bdd t2 = mgr.permute(t, shadowMap);

  Bdd care2 = mgr.permute(careStates, shadowMap);

  // Initial partition: agree on every observation.
  Bdd e = careStates & care2;
  for (const Bdd& obs : observations) {
    Bdd obs2 = mgr.permute(obs, shadowMap);
    e &= (obs & obs2) | ((!obs) & (!obs2));
  }

  // Refinement to the greatest fixpoint.
  while (true) {
    ++res.refinementIterations;
    Bdd ey = mgr.permute(e, pairToNext);  // E over (y, y2)
    // cond1: every move of x is matched by a move of x2.
    Bdd inner1 = mgr.andExists(t2, ey, y2Cube);            // (x2, y)
    Bdd bad1 = mgr.andExists(t, !inner1, fsm.nextCube());  // (x, x2)
    // cond2: every move of x2 is matched by a move of x.
    Bdd inner2 = mgr.andExists(t, ey, fsm.nextCube());     // (x, y2)
    Bdd bad2 = mgr.andExists(t2, !inner2, y2Cube);         // (x, x2)
    Bdd e2 = e & !bad1 & !bad2;
    if (e2 == e) break;
    e = std::move(e2);
  }
  res.equivalence = e;

  // Representatives: lexicographically least state of each class.
  // less(x2, x) over the state-bit sequence, most significant bit last in
  // xBits order (any fixed order gives a canonical pick).
  Bdd less = mgr.bddZero();
  for (size_t i = 0; i < xBits.size(); ++i) {
    Bdd xb = mgr.bddVar(xBits[i]);
    Bdd x2b = mgr.bddVar(x2Bits[i]);
    // x2 < x at this bit, all higher (later) bits equal.
    Bdd eqHigher = mgr.bddOne();
    for (size_t j = i + 1; j < xBits.size(); ++j) {
      Bdd a = mgr.bddVar(xBits[j]);
      Bdd b = mgr.bddVar(x2Bits[j]);
      eqHigher &= (a & b) | ((!a) & (!b));
    }
    less |= (!x2b) & xb & eqHigher;
  }
  res.representatives = careStates & !mgr.exists(e & less, x2Cube);
  res.classCount = mgr.satCount(res.representatives, fsm.stateBits());
  return res;
}

Bdd shrinkToRepresentatives(const Fsm& fsm, const BisimResult& bisim,
                            const Bdd& set) {
  return fsm.mgr().restrict(set, bisim.representatives);
}

Bdd expandByEquivalence(const Fsm& fsm, const BisimResult& bisim,
                        const Bdd& repSet) {
  BddManager& mgr = fsm.mgr();
  Bdd rep2 = mgr.permute(repSet, bisim.shadowMap);
  // ∃x2: E(x,x2) ∧ repSet(x2)
  Bdd x2Cube = mgr.bddOne();
  const MvSpace& space = fsm.space();
  for (size_t l = fsm.numLatches(); l-- > 0;) {
    for (BddVar b : space.bits(fsm.stateVar(l))) {
      x2Cube &= mgr.bddVar(bisim.shadowMap[b]);
    }
  }
  return mgr.andExists(bisim.equivalence, rep2, x2Cube);
}

}  // namespace hsis
