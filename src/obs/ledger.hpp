// hsis::obs::ledger — the cross-run verification ledger.
//
// Every driver (hsis_cli, hsis_bench, the bench_* experiments) appends one
// JSONL record per verification run to a shared history file — by default
// `~/.hsis/ledger.jsonl`, overridden by $HSIS_LEDGER or `--ledger PATH`
// (`--ledger none` disables). A record (schema `hsis-ledger-v1`) carries
// the run identity (run id, wall-clock timestamp, driver, git sha, config),
// the subject (design / property / suite case), the outcome (pass / fail /
// aborted / crashed, with a counterexample digest or abort reason), and the
// cost (wall seconds, peak RSS).
//
// Appends use O_APPEND plus an exclusive flock so concurrent drivers (a
// parallel bench sweep, CI shards on a shared volume) interleave whole
// lines, never bytes. The ledger stays LIVE under HSIS_OBS_DISABLE: run
// identity is control flow, not measurement.
//
// CRASH ARMING. A crashed process cannot run its exit path, so a driver
// arms a pre-rendered "crashed" record up front: the line (minus the
// signal name) is serialized and the ledger fd opened at arm time, and the
// flight recorder's signal handler completes and appends it with
// async-signal-safe writes only. A normal exit disarms and appends the
// real record instead.
//
// `tools/hsis_report` (list / show / diff / regressions) reads this file;
// the query + rendering logic lives here so tests cover it directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hsis::obs::ledger {

// ------------------------------------------------------------------ record

struct Record {
  std::string runId;      ///< "<unix-seconds>-<pid>"; shared by one process
  std::string time;       ///< ISO-8601 UTC, e.g. "2026-08-07T12:34:56Z"
  std::string driver;     ///< "hsis_cli", "hsis_bench", "bench_reach", ...
  std::string subject;    ///< design / "suite/case" / property name
  std::string result;     ///< "pass" | "fail" | "aborted" | "crashed" |
                          ///< "completed" (no pass/fail semantics)
  std::string detail;     ///< failing properties, abort reason, ...
  std::string digest;     ///< counterexample digest ("" when none)
  double wallSeconds = 0.0;
  uint64_t peakRssKb = 0;
  std::string gitSha;
  std::string config;     ///< free-form flag/config summary
  /// Request trace id in hex (hsis_serve requests; "" elsewhere). Joins
  /// the record against the daemon's log events, spans, and slow-request
  /// artifact directory for the same request.
  std::string traceId;
  /// Per-stage wall micros (e.g. "queue", "parse", "tr", "reach", "check",
  /// "render"), in stage order. Empty for drivers without stage timing.
  std::vector<std::pair<std::string, uint64_t>> stages;
  /// Coverage summary (hsis_cov); rendered only when hasCoverage is set so
  /// pre-coverage records keep their exact byte shape.
  bool hasCoverage = false;
  double covStateFraction = 0.0;
  uint64_t covValuesReached = 0;
  uint64_t covValuesTotal = 0;
  uint64_t covBinsHit = 0;
  uint64_t covBinsTotal = 0;
  /// Counterexample artifact pointer (hsis_cex): the directory holding
  /// cex.json/cex.vcd for this request's failing check, and the replay
  /// stamp. Both "" when no artifact was captured.
  std::string cexPath;
  std::string cexReplay;  ///< "verified" | "unverified" | ""
  bool obsEnabled = true;
  std::string signalName; ///< "SIGSEGV" etc. for crashed records, else ""
};

/// This process's run id (stable for the process lifetime).
std::string runId();
/// Wall-clock timestamp "YYYY-MM-DDTHH:MM:SSZ" (UTC), now.
std::string timestampUtc();
/// FNV-1a hex digest of arbitrary text (counterexample digests).
std::string digestOf(std::string_view text);

/// One JSONL line, no trailing newline.
std::string toJsonl(const Record& record);

/// Resolve the ledger path: `flagValue` (from --ledger) wins, then
/// $HSIS_LEDGER, then `~/.hsis/ledger.jsonl`. "none" (from either source)
/// or an unresolvable home yields "" = ledger disabled.
std::string resolvePath(const std::string& flagValue);

/// Append one record under O_APPEND + flock(LOCK_EX). Creates the parent
/// directory. Returns false (and warns on stderr) on I/O failure; never
/// throws. Empty path = disabled = true.
bool append(const std::string& path, const Record& record);

// ------------------------------------------------------------------- query

/// Parse ledger text (JSONL). Lines that are not valid hsis-ledger-v1
/// records are skipped (a torn crash line must not poison the history);
/// `skipped`, when given, receives the count.
std::vector<Record> parse(std::string_view text, size_t* skipped = nullptr);
/// Read + parse a ledger file ({} when missing).
std::vector<Record> load(const std::string& path, size_t* skipped = nullptr);

/// One row of a cross-run comparison.
struct DiffRow {
  std::string subject;
  double oldWallS = 0.0, newWallS = 0.0;
  double wallRatio = 0.0;  ///< new/old, 0 when either side missing
  uint64_t oldRssKb = 0, newRssKb = 0;
  double rssRatio = 0.0;
  bool wallRegression = false;
  bool rssRegression = false;
  std::string note;  ///< "", "only in old", "only in new", "aborted", ...
};

struct DiffResult {
  std::string oldLabel, newLabel;  ///< run ids or shas being compared
  std::vector<DiffRow> rows;
  int wallRegressions = 0;
  int rssRegressions = 0;
};

/// Diff the most recent run of `shaOld` against the most recent run of
/// `shaNew`, per subject. Thresholds in percent flag regressions (<= 0
/// disables that dimension).
DiffResult diffByGitSha(const std::vector<Record>& records,
                        const std::string& shaOld, const std::string& shaNew,
                        double wallThresholdPct, double rssThresholdPct);

/// Diff the latest run (by run id, in file order) against the previous
/// one, per subject — the `hsis_report regressions` statistic. Returns
/// nullopt when the ledger holds fewer than two runs.
std::optional<DiffResult> diffLatestRuns(const std::vector<Record>& records,
                                         double wallThresholdPct,
                                         double rssThresholdPct);

/// Render a DiffResult as an aligned text table or a markdown table, with
/// wall and RSS columns and a regression summary line.
std::string renderDiff(const DiffResult& diff, bool markdown);
/// One line per record: run id, time, driver, subject, result, wall, RSS.
std::string renderList(const std::vector<Record>& records, size_t limit);
/// Every field of the records of one run id, human-readable.
std::string renderShow(const std::vector<Record>& records,
                       const std::string& runIdPrefix);
/// Per-request view: one row per record carrying stage timings (hsis_serve
/// traffic), with trace id, per-stage milliseconds, and a SLOW flag when
/// the wall time exceeds `slowThresholdSeconds` (<= 0 disables). `limit`
/// keeps only the most recent N rows (0 = all); `outliers`, when given,
/// receives the flagged-row count.
std::string renderRequests(const std::vector<Record>& records,
                           double slowThresholdSeconds, size_t limit,
                           size_t* outliers = nullptr);

// ------------------------------------------------------------ crash arming

/// Pre-render a "crashed" record for `record` (result/signal filled at
/// crash time) and open `path` O_APPEND so the flight recorder's signal
/// handler can complete it with async-signal-safe writes only. Re-arming
/// replaces the pending record. Empty path disarms.
void armCrashRecord(const std::string& path, const Record& record);
/// Forget the armed record and close its fd (normal exit path).
void disarmCrashRecord();

namespace detail {
/// Signal path: append the armed record with the given signal name using
/// only write(). No-op when nothing is armed. Called by the flight
/// recorder's handler.
void writeArmedCrashRecord(const char* signalName) noexcept;
}  // namespace detail

}  // namespace hsis::obs::ledger
