// Snapshot assembly and the three export formats. Compiled in both the
// enabled and the HSIS_OBS_DISABLE build: a disabled build exports a valid
// empty document so downstream tooling needs no special casing.
#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <unordered_map>

#include "obs/control.hpp"
#include "obs/prof.hpp"
#include "obs/tracectx.hpp"

namespace hsis::obs {

namespace {

// Metric names are dotted identifiers and span names are chosen by this
// codebase, but escape defensively so the output is always valid JSON.
void appendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string formatMs(uint64_t ns) {
  return jsonDouble(static_cast<double>(ns) * 1e-6);
}

/// Earliest span start, used as the time origin for start_ms.
uint64_t baseStartNs(const Snapshot& snap) {
  uint64_t base = ~0ull;
  for (const SpanSample& s : snap.spans) base = std::min(base, s.startNs);
  return snap.spans.empty() ? 0 : base;
}

/// Children of each span, index into snap.spans; roots under key -1.
/// A span whose parent was dropped from the ring (or is still open at
/// snapshot time) is treated as a root.
std::unordered_map<int64_t, std::vector<size_t>> buildTree(
    const Snapshot& snap) {
  std::unordered_map<uint64_t, size_t> byId;
  for (size_t i = 0; i < snap.spans.size(); ++i) byId[snap.spans[i].id] = i;
  std::unordered_map<int64_t, std::vector<size_t>> children;
  for (size_t i = 0; i < snap.spans.size(); ++i) {
    int64_t p = snap.spans[i].parent;
    if (p >= 0 && !byId.contains(static_cast<uint64_t>(p))) p = -1;
    children[p].push_back(i);
  }
  return children;
}

void appendSpanJson(std::string& out, const Snapshot& snap,
                    const std::unordered_map<int64_t, std::vector<size_t>>& tree,
                    size_t idx, int indent) {
  const SpanSample& s = snap.spans[idx];
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out += pad + "{";
  appendEscaped(out, "name");
  out += ": ";
  appendEscaped(out, s.name);
  out += ", \"ms\": " + formatMs(s.durationNs);
  out += ", \"start_ms\": " + formatMs(s.startNs - baseStartNs(snap));
  out += ", \"children\": [";
  auto it = tree.find(static_cast<int64_t>(s.id));
  if (it != tree.end() && !it->second.empty()) {
    out += '\n';
    for (size_t k = 0; k < it->second.size(); ++k) {
      appendSpanJson(out, snap, tree, it->second[k], indent + 1);
      if (k + 1 < it->second.size()) out += ',';
      out += '\n';
    }
    out += pad;
  }
  out += "]}";
}

}  // namespace

std::string jsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

Snapshot snapshot() {
  Snapshot snap;
  snap.metrics = Registry::instance().collect();
  snap.spans = Tracer::instance().completed();
  snap.droppedSpans = Tracer::instance().dropped();
  snap.threadNames = threadNames();
  for (const prof::ProfSample& s : prof::Profiler::instance().samples()) {
    if (!s.census.has_value()) continue;
    CounterPoint p;
    p.tNs = s.tNs;
    p.liveNodes = s.census->liveNodes;
    p.allocatedNodes = s.census->allocatedNodes;
    p.rssKb = s.rssKb;
    p.cacheHitRate = s.dCacheLookups == 0
                         ? 0.0
                         : static_cast<double>(s.dCacheHits) /
                               static_cast<double>(s.dCacheLookups);
    p.deadFraction = s.census->deadFraction();
    snap.counterPoints.push_back(std::move(p));
  }
  if (auto abort = abortInfo()) {
    snap.aborted = true;
    snap.abortReason = abort->reason;
    snap.abortPhase = abort->phase;
  }
  return snap;
}

std::string toJson(const Snapshot& snap) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"hsis-obs-v1\",\n";
  out += "  \"enabled\": ";
  out += kEnabled ? "true" : "false";
  out += ",\n  \"metrics\": {";
  for (size_t i = 0; i < snap.metrics.size(); ++i) {
    const MetricSample& m = snap.metrics[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    appendEscaped(out, m.name);
    out += ": ";
    if (m.kind == MetricSample::Kind::Histogram) {
      out += "{\"count\": " + std::to_string(m.count) +
             ", \"sum\": " + std::to_string(m.sum) +
             ", \"p50\": " + std::to_string(m.p50) +
             ", \"p90\": " + std::to_string(m.p90) +
             ", \"p99\": " + std::to_string(m.p99) +
             ", \"max\": " + std::to_string(m.max) + ", \"buckets\": {";
      for (size_t b = 0; b < m.buckets.size(); ++b) {
        if (b != 0) out += ", ";
        appendEscaped(out, std::to_string(m.buckets[b].first));
        out += ": " + std::to_string(m.buckets[b].second);
      }
      out += "}}";
    } else {
      out += std::to_string(m.value);
    }
  }
  out += snap.metrics.empty() ? "},\n" : "\n  },\n";
  out += "  \"aborted\": ";
  if (snap.aborted) {
    out += "{\"reason\": ";
    appendEscaped(out, snap.abortReason);
    out += ", \"phase\": ";
    appendEscaped(out, snap.abortPhase);
    out += "},\n";
  } else {
    out += "null,\n";
  }
  out += "  \"dropped_spans\": " + std::to_string(snap.droppedSpans) + ",\n";
  out += "  \"spans\": [";
  auto tree = buildTree(snap);
  auto roots = tree.find(-1);
  if (roots != tree.end() && !roots->second.empty()) {
    out += '\n';
    for (size_t k = 0; k < roots->second.size(); ++k) {
      appendSpanJson(out, snap, tree, roots->second[k], 2);
      if (k + 1 < roots->second.size()) out += ',';
      out += '\n';
    }
    out += "  ";
  }
  out += "]\n}\n";
  return out;
}

std::string toChromeTrace(const Snapshot& snap) {
  std::string out = "[";
  bool first = true;
  auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  // Metadata ("ph": "M") events first: name each thread the process called
  // setThreadName() on, pin "main" to the top of the track list, and give
  // the process itself a sort index so multi-process merges stay ordered.
  sep();
  out += " {\"name\": \"process_sort_index\", \"ph\": \"M\", \"pid\": 1"
         ", \"args\": {\"sort_index\": 0}}";
  for (const auto& [tid, name] : snap.threadNames) {
    uint64_t shortTid = tid % 1000000;  // same transform as the X events
    sep();
    out += " {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1";
    out += ", \"tid\": " + std::to_string(shortTid);
    out += ", \"args\": {\"name\": ";
    appendEscaped(out, name);
    out += "}}";
    sep();
    out += " {\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1";
    out += ", \"tid\": " + std::to_string(shortTid);
    out += ", \"args\": {\"sort_index\": ";
    out += name == "main" ? "0" : "1";
    out += "}}";
  }
  for (const SpanSample& s : snap.spans) {
    sep();
    out += " {\"name\": ";
    appendEscaped(out, s.name);
    out += ", \"cat\": \"hsis\", \"ph\": \"X\", \"pid\": 1";
    out += ", \"tid\": " + std::to_string(s.threadId % 1000000);
    out += ", \"ts\": " + std::to_string(s.startNs / 1000);
    out += ", \"dur\": " + std::to_string(s.durationNs / 1000);
    if (s.traceId != 0) {
      out += ", \"args\": {\"trace\": ";
      appendEscaped(out, traceIdHex(s.traceId));
      out += "}";
    }
    out += "}";
  }
  // Counter ("C") events from the profiler census series, so node
  // population, RSS, and cache-hit dynamics render as area tracks on the
  // same timeline as the phase spans.
  auto counter = [&](const char* name, uint64_t ts, const char* key,
                     const std::string& value) {
    sep();
    out += " {\"name\": \"";
    out += name;
    out += "\", \"cat\": \"hsis\", \"ph\": \"C\", \"pid\": 1";
    out += ", \"ts\": " + std::to_string(ts);
    out += ", \"args\": {\"";
    out += key;
    out += "\": " + value + "}}";
  };
  for (const CounterPoint& p : snap.counterPoints) {
    uint64_t ts = p.tNs / 1000;
    counter("bdd.live_nodes", ts, "nodes", std::to_string(p.liveNodes));
    counter("bdd.allocated_nodes", ts, "nodes",
            std::to_string(p.allocatedNodes));
    counter("process.rss_kb", ts, "kb", std::to_string(p.rssKb));
    counter("bdd.cache.hit_rate", ts, "rate", jsonDouble(p.cacheHitRate));
    counter("bdd.dead_fraction", ts, "fraction", jsonDouble(p.deadFraction));
  }
  out += "\n]\n";
  return out;
}

std::string toTable(const Snapshot& snap) {
  std::ostringstream os;
  os << "== metrics ==\n";
  for (const MetricSample& m : snap.metrics) {
    if (m.kind == MetricSample::Kind::Histogram) {
      os << "  " << m.name << "  count=" << m.count << " sum=" << m.sum;
      if (m.count != 0) {
        os << " mean=" << (double)m.sum / (double)m.count << " p50=" << m.p50
           << " p90=" << m.p90 << " p99=" << m.p99 << " max=" << m.max;
      }
      os << "\n";
      for (const auto& [low, cnt] : m.buckets) {
        os << "    >= " << low << ": " << cnt << "\n";
      }
    } else {
      os << "  " << m.name << " = " << m.value << "\n";
    }
  }
  os << "== spans ==";
  if (snap.droppedSpans != 0) os << " (" << snap.droppedSpans << " dropped)";
  os << "\n";
  auto tree = buildTree(snap);
  // Depth-first through the reconstructed tree, indenting per level.
  std::function<void(int64_t, int)> walk = [&](int64_t parent, int depth) {
    auto it = tree.find(parent);
    if (it == tree.end()) return;
    for (size_t idx : it->second) {
      const SpanSample& s = snap.spans[idx];
      os << "  " << std::string(static_cast<size_t>(depth) * 2, ' ')
         << s.name << "  " << formatMs(s.durationNs) << " ms\n";
      walk(static_cast<int64_t>(s.id), depth + 1);
    }
  };
  walk(-1, 0);
  return os.str();
}

std::string snapshotJson() { return toJson(snapshot()); }

}  // namespace hsis::obs
