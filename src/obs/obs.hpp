// hsis::obs — the observability subsystem: a process-wide metrics registry
// (named counters, gauges, log2-bucketed histograms), a phase tracer
// producing nested timed spans, and snapshot/export APIs (JSON, Chrome
// trace, human-readable table).
//
// Design notes:
//  - The hot path is a single relaxed atomic RMW per event: metric objects
//    are registered once (mutex-protected, cold) and then bumped through a
//    stable reference forever after. Instrumentation is cheap enough to
//    leave on in release builds.
//  - This module depends on no other hsis library, so every layer (bdd,
//    fsm, ctl, lc, hsis) can link it.
//  - Metric names follow `<module>.<thing>[.<aspect>]`, e.g.
//    `bdd.cache.hits`, `fsm.reach.iterations` (see docs/observability.md).
//  - Compiling with -DHSIS_OBS_DISABLE turns every instrumentation call
//    into an inline no-op; the snapshot/export API remains and produces a
//    valid (empty, `"disabled": true`) document, so callers never need
//    their own #ifdefs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hsis::obs {

/// True when instrumentation is compiled in (no HSIS_OBS_DISABLE).
#if defined(HSIS_OBS_DISABLE)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// ------------------------------------------------------------- snapshots
//
// The snapshot structs are unconditional: a disabled build still exports a
// valid (empty) snapshot, so downstream JSON consumers need no variants.

struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  /// Counter value / gauge value (gauge may be negative, stored widened).
  int64_t value = 0;
  /// Histogram only: number of recorded samples and their sum.
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Histogram only: largest recorded value (exact) and approximate
  /// quantiles (the inclusive lower bound of the bucket where the
  /// cumulative count crosses the quantile), so bench reports need no
  /// bucket math downstream.
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  /// Histogram only: (inclusive lower bound, count) per non-empty bucket.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

struct SpanSample {
  std::string name;
  uint64_t id = 0;        ///< unique per span, process-wide
  int64_t parent = -1;    ///< id of enclosing span, -1 for roots
  uint32_t depth = 0;     ///< nesting depth at creation (0 = root)
  uint64_t threadId = 0;
  uint64_t startNs = 0;   ///< monotonic clock, ns
  uint64_t durationNs = 0;
  /// Bound request trace id at span creation (obs/tracectx.hpp), 0 when
  /// the span ran outside any request.
  uint64_t traceId = 0;
};

/// One profiler census tick, reduced to the scalar series the Chrome-trace
/// export renders as counter ("C") tracks alongside the phase spans.
struct CounterPoint {
  uint64_t tNs = 0;  ///< monotonic clock, same epoch as SpanSample::startNs
  uint64_t liveNodes = 0;
  uint64_t allocatedNodes = 0;
  uint64_t rssKb = 0;
  double cacheHitRate = 0.0;  ///< over the sample window
  double deadFraction = 0.0;
};

struct Snapshot {
  std::vector<MetricSample> metrics;  ///< sorted by name
  std::vector<SpanSample> spans;      ///< completed spans, in start order
  uint64_t droppedSpans = 0;          ///< ring-buffer overflow count
  /// Census time series from the sampling profiler (obs/prof), empty when
  /// the profiler never ran. Rendered as Chrome-trace counter events.
  std::vector<CounterPoint> counterPoints;
  /// Threads that registered a name via setThreadName (tid as hashed by the
  /// tracer -> name), sorted by name. Drives the Chrome-trace "M" metadata.
  std::vector<std::pair<uint64_t, std::string>> threadNames;
  /// Cooperative-abort state at snapshot time (see obs/control.hpp): when
  /// a watchdog or caller requested an abort, the exported JSON carries
  /// `"aborted": {reason, phase}` so a killed run still explains itself.
  bool aborted = false;
  std::string abortReason;
  std::string abortPhase;
};

/// Capture the full registry plus the tracer's completed spans.
Snapshot snapshot();

/// Machine-readable export: the `hsis-obs-v1` schema used by the
/// BENCH_*.json trajectory files. Metrics are a flat name->value object;
/// spans are a nested tree with per-phase wall times in milliseconds.
std::string toJson(const Snapshot& snap);

/// chrome://tracing / Perfetto compatible event array.
std::string toChromeTrace(const Snapshot& snap);

/// Human-readable table (metrics sorted by name, span tree indented).
std::string toTable(const Snapshot& snap);

/// Convenience: toJson(snapshot()).
std::string snapshotJson();

/// Render a double as a JSON number token. Non-finite values (NaN, ±Inf)
/// come out as `null` — whatever pathological rate a metric produces, the
/// exported document stays valid JSON. Every exporter in this subsystem
/// routes doubles through here.
std::string jsonDouble(double v);

// ------------------------------------------------------------ primitives

#if !defined(HSIS_OBS_DISABLE)

/// Monotonically increasing event count. All operations are relaxed
/// atomics: totals are exact, cross-metric ordering is not guaranteed.
class Counter {
 public:
  void add(uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A point-in-time level (table size, cluster count, depth...).
class Gauge {
 public:
  void set(int64_t x) noexcept { v_.store(x, std::memory_order_relaxed); }
  void add(int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Raise the gauge to `x` if it is below it (high-water mark).
  void updateMax(int64_t x) noexcept {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < x &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2-bucketed histogram: bucket 0 holds the value 0, bucket b >= 1
/// holds values in [2^(b-1), 2^b). One relaxed RMW per record on the
/// bucket plus count/sum tallies.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // 0, then one per bit width 1..64

  void record(uint64_t v) noexcept {
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (cur < v &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Largest value ever recorded (exact, unlike the bucketed quantiles).
  [[nodiscard]] uint64_t maxValue() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t bucketCount(int b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

  /// Which bucket a value lands in.
  static int bucketOf(uint64_t v) noexcept {
    int b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }
  /// Inclusive lower bound of a bucket.
  static uint64_t bucketLow(int b) noexcept {
    return b == 0 ? 0 : 1ull << (b - 1);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// The process-wide named-metric registry. Registration (the first lookup
/// of a name) takes a mutex; the returned reference is stable for the
/// process lifetime, so call sites cache it and never pay the lock again.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zero every metric (references stay valid). For tests and for
  /// per-run deltas in drivers.
  void resetAll();

  [[nodiscard]] std::vector<MetricSample> collect() const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Cold-path conveniences; cache the result on hot paths.
inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}
inline void resetAll() { Registry::instance().resetAll(); }

// ---------------------------------------------------------------- tracer

/// Completed-span sink: a fixed-capacity in-memory ring buffer. Spans are
/// appended on destruction (children before parents); when the buffer is
/// full the oldest spans are dropped and counted.
class Tracer {
 public:
  static Tracer& instance();

  /// Default 8192 completed spans; resizing clears the buffer.
  void setCapacity(size_t n);
  [[nodiscard]] std::vector<SpanSample> completed() const;
  [[nodiscard]] uint64_t dropped() const;
  void clear();

 private:
  friend class Span;
  Tracer() = default;
  void emit(SpanSample&& s);
  struct Impl;
  Impl& impl() const;
};

/// Give the calling thread a human-readable name for trace exports
/// (Perfetto `thread_name` metadata). First call per thread wins.
void setThreadName(std::string_view name);
/// All registered (tid, name) pairs, sorted by name.
std::vector<std::pair<uint64_t, std::string>> threadNames();

/// RAII timed span: `obs::Span reach{"fsm.reach"};`. Nesting is tracked
/// per thread; the span records its parent and depth at construction and
/// appends itself to the tracer when destroyed.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Wall time elapsed since construction, in seconds (readable before
  /// the span closes).
  [[nodiscard]] double seconds() const;

 private:
  std::string name_;
  uint64_t id_;
  int64_t parent_;
  uint32_t depth_;
  uint64_t startNs_;
  uint64_t traceId_;
};

#else  // HSIS_OBS_DISABLE -------------------------------------------------

// Every primitive keeps its exact API but compiles to nothing. Reads
// return zero so callers (and tests) behave deterministically.

class Counter {
 public:
  void add(uint64_t = 1) noexcept {}
  [[nodiscard]] uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(int64_t) noexcept {}
  void add(int64_t) noexcept {}
  void updateMax(int64_t) noexcept {}
  [[nodiscard]] int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  static constexpr int kBuckets = 65;
  void record(uint64_t) noexcept {}
  [[nodiscard]] uint64_t count() const noexcept { return 0; }
  [[nodiscard]] uint64_t sum() const noexcept { return 0; }
  [[nodiscard]] uint64_t maxValue() const noexcept { return 0; }
  [[nodiscard]] uint64_t bucketCount(int) const noexcept { return 0; }
  void reset() noexcept {}
  static int bucketOf(uint64_t v) noexcept {
    int b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }
  static uint64_t bucketLow(int b) noexcept {
    return b == 0 ? 0 : 1ull << (b - 1);
  }
};

class Registry {
 public:
  static Registry& instance();
  Counter& counter(std::string_view) { return dummyCounter_; }
  Gauge& gauge(std::string_view) { return dummyGauge_; }
  Histogram& histogram(std::string_view) { return dummyHistogram_; }
  void resetAll() {}
  [[nodiscard]] std::vector<MetricSample> collect() const { return {}; }

 private:
  static Counter dummyCounter_;
  static Gauge dummyGauge_;
  static Histogram dummyHistogram_;
};

inline Counter& counter(std::string_view n) {
  return Registry::instance().counter(n);
}
inline Gauge& gauge(std::string_view n) {
  return Registry::instance().gauge(n);
}
inline Histogram& histogram(std::string_view n) {
  return Registry::instance().histogram(n);
}
inline void resetAll() {}

class Tracer {
 public:
  static Tracer& instance();
  void setCapacity(size_t) {}
  [[nodiscard]] std::vector<SpanSample> completed() const { return {}; }
  [[nodiscard]] uint64_t dropped() const { return 0; }
  void clear() {}
};

inline void setThreadName(std::string_view) {}
inline std::vector<std::pair<uint64_t, std::string>> threadNames() {
  return {};
}

class Span {
 public:
  explicit Span(std::string_view) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  [[nodiscard]] double seconds() const { return 0.0; }
};

#endif  // HSIS_OBS_DISABLE

// ------------------------------------------------------- histogram summary

/// A histogram reduced to its headline numbers, for callers (the serve
/// stats stream) that want quantiles without carrying the bucket vector.
/// Quantiles are bucket lower bounds, the same approximation
/// Registry::collect() exports. A disabled build returns all-zero.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

HistogramSummary summarizeHistogram(const Histogram& h);

/// Render a summary as a JSON object with the fixed key set
/// {"count", "p50", "p90", "p99", "max"}. An empty histogram (count == 0)
/// has no quantiles, so p50/p90/p99/max render as `null` rather than a
/// misleading 0 — the serve.latency.* rows before the first request, and
/// every row under HSIS_OBS_DISABLE, read as "no data", not "instant".
std::string histogramSummaryJson(const HistogramSummary& s);

// ------------------------------------------------------------ wall clock

/// Plain monotonic stopwatch. NOT instrumentation: it works identically
/// with HSIS_OBS_DISABLE, for callers whose own results (e.g. reported
/// metrics tables) need real time regardless of observability.
class WallTimer {
 public:
  WallTimer() : startNs_(nowNs()) {}
  void restart() { startNs_ = nowNs(); }
  [[nodiscard]] double seconds() const {
    return static_cast<double>(nowNs() - startNs_) * 1e-9;
  }
  [[nodiscard]] uint64_t micros() const { return (nowNs() - startNs_) / 1000; }
  /// Monotonic clock, nanoseconds since an arbitrary epoch.
  static uint64_t nowNs();

 private:
  uint64_t startNs_;
};

}  // namespace hsis::obs
