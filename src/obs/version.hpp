// Shared --version output for every hsis binary: the git SHA the build was
// made from plus the schema identifiers of every JSON/JSONL artifact this
// tree can emit, so a dump file and the binary that should read it can be
// matched without guessing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hsis::obs {

/// Schema identifiers of every export format, in the order they landed.
const std::vector<std::string>& schemaVersions();

/// e.g. "hsis_serve 3395d30 (schemas: hsis-obs-v1 hsis-bench-v1 ...)"
std::string versionString(std::string_view tool);

/// When argv carries --version (anywhere), print versionString(tool) to
/// stdout and return true; the caller exits 0. Call before other parsing.
bool handleVersionFlag(int argc, char** argv, std::string_view tool);

}  // namespace hsis::obs
