// hsis::obs — request-scoped trace context.
//
// A TraceContext is the identity of one unit of externally submitted work
// (an hsis_serve check request): a 64-bit trace id plus the client-chosen
// request id. Binding it to a thread (TraceScope) makes every Span, every
// HSIS_LOG_* event, and every flight-recorder dump produced on that thread
// carry the trace id, so one request's footprint can be pulled out of a
// multi-tenant daemon's telemetry — the span ring, the JSONL log, the
// ledger, and a crash dump all join on the same 16-hex-digit key.
//
// The binding is the same thread-local pattern as bindTaskAbort: one
// pointer store on bind/unbind, one thread-local load on the hot query
// (`currentTraceId()`), and the bound context must outlive the binding.
// Everything here stays LIVE under HSIS_OBS_DISABLE — request identity is
// control flow, not measurement (same rule as the ledger and abort flag).
//
// For the flight recorder, bound contexts are mirrored into a small fixed
// table of atomic (thread id, trace id) slots that the signal handler can
// read without locks or allocation: a daemon crashing mid-request dumps
// one `{"kind": "active_trace", ...}` line per in-flight request, so the
// crash is attributable to the request(s) that were running.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hsis::obs {

struct TraceContext {
  uint64_t traceId = 0;   ///< nonzero; 0 means "no trace"
  std::string requestId;  ///< client-chosen request id ("" when unknown)
};

/// 16 lowercase hex digits, zero-padded ("0000…0000" for id 0).
std::string traceIdHex(uint64_t id);
/// Parse 1..16 hex digits; 0 on empty or malformed input.
uint64_t parseTraceId(std::string_view hex) noexcept;
/// A fresh nonzero process-unique trace id (mixed from time, pid, and a
/// process-wide counter; not cryptographic).
uint64_t newTraceId();

/// Bind `ctx` as the calling thread's trace context (nullptr unbinds).
/// The context must outlive the binding. Also claims/releases a slot in
/// the signal-safe active-trace table.
void bindTraceContext(const TraceContext* ctx);
[[nodiscard]] const TraceContext* currentTraceContext() noexcept;
/// Hot-path query: the bound trace id, or 0 when the thread has none.
[[nodiscard]] uint64_t currentTraceId() noexcept;

/// RAII binding: `obs::TraceScope scope(ctx);` for the span of a request.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& ctx) { bindTraceContext(&ctx); }
  ~TraceScope() { bindTraceContext(nullptr); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

/// Every (thread id, trace id) pair currently bound, normal-context copy
/// (thread ids use the tracer's hash, matching SpanSample::threadId).
std::vector<std::pair<uint64_t, uint64_t>> activeTraces();

namespace trace_detail {
inline constexpr size_t kMaxActiveTraces = 64;
/// Signal-safe raw read of one active-trace slot: no locks, no allocation.
/// Returns false when the slot is empty (or `i` out of range).
bool activeTraceSlot(size_t i, uint64_t* threadId, uint64_t* traceId) noexcept;
}  // namespace trace_detail

}  // namespace hsis::obs
