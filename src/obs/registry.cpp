// Registry storage: name -> metric maps with stable references. A deque
// never relocates elements, so a reference handed out once stays valid for
// the process lifetime even as registration continues.
#include "obs/obs.hpp"

#include <chrono>

#ifndef HSIS_OBS_DISABLE
#include <algorithm>
#include <deque>
#include <mutex>
#include <unordered_map>
#endif

namespace hsis::obs {

uint64_t WallTimer::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#ifndef HSIS_OBS_DISABLE

struct Registry::Impl {
  mutable std::mutex mu;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::unordered_map<std::string, size_t> counterIdx;
  std::unordered_map<std::string, size_t> gaugeIdx;
  std::unordered_map<std::string, size_t> histogramIdx;
};

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  // Intentionally leaked: exporters may run from atexit handlers after
  // ordinary static destructors, so the registry must outlive everything.
  static Impl* impl = new Impl;
  return *impl;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto [it, fresh] = im.counterIdx.try_emplace(std::string(name), im.counters.size());
  if (fresh) im.counters.emplace_back();
  return im.counters[it->second];
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto [it, fresh] = im.gaugeIdx.try_emplace(std::string(name), im.gauges.size());
  if (fresh) im.gauges.emplace_back();
  return im.gauges[it->second];
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto [it, fresh] =
      im.histogramIdx.try_emplace(std::string(name), im.histograms.size());
  if (fresh) im.histograms.emplace_back();
  return im.histograms[it->second];
}

void Registry::resetAll() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (Counter& c : im.counters) c.reset();
  for (Gauge& g : im.gauges) g.reset();
  for (Histogram& h : im.histograms) h.reset();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::vector<MetricSample> Registry::collect() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<MetricSample> out;
  out.reserve(im.counterIdx.size() + im.gaugeIdx.size() +
              im.histogramIdx.size());
  for (const auto& [name, idx] : im.counterIdx) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::Counter;
    s.value = static_cast<int64_t>(im.counters[idx].value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, idx] : im.gaugeIdx) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::Gauge;
    s.value = im.gauges[idx].value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, idx] : im.histogramIdx) {
    const Histogram& h = im.histograms[idx];
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::Histogram;
    s.count = h.count();
    s.sum = h.sum();
    s.value = static_cast<int64_t>(s.count);
    s.max = h.maxValue();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      uint64_t c = h.bucketCount(b);
      if (c != 0) s.buckets.emplace_back(Histogram::bucketLow(b), c);
    }
    // Bucketed quantiles: the inclusive lower bound of the bucket where the
    // cumulative count first crosses the quantile. Exact for max (tracked
    // separately); a lower bound for p50/p90, good enough for a table.
    if (s.count > 0) {
      uint64_t n50 = (s.count + 1) / 2;          // ceil(count * 0.50)
      uint64_t n90 = (s.count * 9 + 9) / 10;     // ceil(count * 0.90)
      uint64_t n99 = (s.count * 99 + 99) / 100;  // ceil(count * 0.99)
      uint64_t cum = 0;
      for (const auto& [low, c] : s.buckets) {
        uint64_t prev = cum;
        cum += c;
        if (prev < n50 && n50 <= cum) s.p50 = low;
        if (prev < n90 && n90 <= cum) s.p90 = low;
        if (prev < n99 && n99 <= cum) s.p99 = low;
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

HistogramSummary summarizeHistogram(const Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.sum = h.sum();
  s.max = h.maxValue();
  if (s.count == 0) return s;
  const uint64_t n50 = (s.count + 1) / 2;
  const uint64_t n90 = (s.count * 9 + 9) / 10;
  const uint64_t n99 = (s.count * 99 + 99) / 100;
  uint64_t cum = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const uint64_t c = h.bucketCount(b);
    if (c == 0) continue;
    const uint64_t prev = cum;
    cum += c;
    const uint64_t low = Histogram::bucketLow(b);
    if (prev < n50 && n50 <= cum) s.p50 = low;
    if (prev < n90 && n90 <= cum) s.p90 = low;
    if (prev < n99 && n99 <= cum) s.p99 = low;
  }
  return s;
}

#else  // HSIS_OBS_DISABLE

HistogramSummary summarizeHistogram(const Histogram&) { return {}; }

Counter Registry::dummyCounter_;
Gauge Registry::dummyGauge_;
Histogram Registry::dummyHistogram_;

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

#endif  // HSIS_OBS_DISABLE

std::string histogramSummaryJson(const HistogramSummary& s) {
  // Key set is part of the contract (consumers assert it); only the values
  // switch between numbers and null.
  std::string out = "{\"count\": " + std::to_string(s.count);
  auto quantile = [&](const char* name, uint64_t v) {
    out += ", \"";
    out += name;
    out += "\": ";
    out += s.count == 0 ? "null" : std::to_string(v);
  };
  quantile("p50", s.p50);
  quantile("p90", s.p90);
  quantile("p99", s.p99);
  quantile("max", s.max);
  out += "}";
  return out;
}

}  // namespace hsis::obs
