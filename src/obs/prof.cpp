// The sampling profiler: census rendezvous, the Sampler thread, folded
// stack aggregation, and the hsis-prof-v1 JSONL export. See prof.hpp for
// the design; the thread/ring mechanics mirror the heartbeat and tracer.
#include "obs/prof.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/control.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"

namespace hsis::obs::prof {

// -------------------------------------------------------- census rendezvous

namespace detail {
std::atomic_bool g_censusRequested{false};
}  // namespace detail

namespace {

struct CensusBoard {
  std::mutex mu;
  std::optional<BddCensus> latest;
  uint64_t nextSeq = 1;
};

CensusBoard& censusBoard() {
  static CensusBoard* b = new CensusBoard;  // leaked, see registry.cpp
  return *b;
}

}  // namespace

bool censusRequested() noexcept {
  return detail::g_censusRequested.load(std::memory_order_relaxed);
}

void requestCensus() noexcept {
  detail::g_censusRequested.store(true, std::memory_order_relaxed);
}

void publishCensus(BddCensus c) {
  CensusBoard& b = censusBoard();
  std::lock_guard<std::mutex> lock(b.mu);
  c.seq = b.nextSeq++;
  c.tNs = WallTimer::nowNs();
  // Keep the flight recorder's pre-serialized census current: a crash
  // between publications then still reports the latest BDD heap shape.
  if (flight::detail::wantsPublish()) {
    std::string line = "{\"kind\": \"census\", \"seq\": " +
                       std::to_string(c.seq) +
                       ", \"t_ns\": " + std::to_string(c.tNs) +
                       ", \"live_nodes\": " + std::to_string(c.liveNodes) +
                       ", \"allocated_nodes\": " +
                       std::to_string(c.allocatedNodes) +
                       ", \"dead_nodes\": " + std::to_string(c.deadNodes) +
                       ", \"cache_lookups\": " + std::to_string(c.cacheLookups) +
                       ", \"cache_hits\": " + std::to_string(c.cacheHits) +
                       ", \"gc_runs\": " + std::to_string(c.gcRuns) +
                       ", \"reorderings\": " + std::to_string(c.reorderings) +
                       ", \"peak_live_nodes\": " +
                       std::to_string(c.peakLiveNodes) + "}\n";
    flight::detail::publishCensusLine(line);
  }
  b.latest = std::move(c);
  detail::g_censusRequested.store(false, std::memory_order_relaxed);
}

std::optional<BddCensus> latestCensus() {
  CensusBoard& b = censusBoard();
  std::lock_guard<std::mutex> lock(b.mu);
  return b.latest;
}

void clearCensus() {
  CensusBoard& b = censusBoard();
  std::lock_guard<std::mutex> lock(b.mu);
  b.latest.reset();
  b.nextSeq = 1;
  detail::g_censusRequested.store(false, std::memory_order_relaxed);
}

// ------------------------------------------------------------ JSONL export

namespace {

void appendEscapedJson(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string ProfSample::toJsonl() const {
  std::string out;
  out.reserve(512);
  out += "{\"kind\": \"sample\", \"seq\": " + std::to_string(seq);
  out += ", \"t_s\": " + jsonDouble(tSeconds);
  out += ", \"rss_kb\": " + std::to_string(rssKb);
  out += ", \"stacks\": [";
  for (size_t i = 0; i < folded.size(); ++i) {
    if (i != 0) out += ", ";
    appendEscapedJson(out, folded[i]);
  }
  out += "]";
  if (census.has_value()) {
    const BddCensus& c = *census;
    out += ", \"census_seq\": " + std::to_string(c.seq);
    out += ", \"live_nodes\": " + std::to_string(c.liveNodes);
    out += ", \"allocated_nodes\": " + std::to_string(c.allocatedNodes);
    out += ", \"free_nodes\": " + std::to_string(c.freeNodes);
    out += ", \"dead_nodes\": " + std::to_string(c.deadNodes);
    out += ", \"dead_fraction\": " + jsonDouble(c.deadFraction());
    out += ", \"unique_buckets\": " + std::to_string(c.uniqueBuckets);
    out += ", \"unique_load\": " + jsonDouble(c.uniqueLoad());
    out += ", \"cache_entries\": " + std::to_string(c.cacheEntries);
    out += ", \"cache_used\": " + std::to_string(c.cacheUsed);
    out += ", \"cache_lookups\": " + std::to_string(c.cacheLookups);
    out += ", \"cache_hits\": " + std::to_string(c.cacheHits);
    out += ", \"d_cache_lookups\": " + std::to_string(dCacheLookups);
    out += ", \"d_cache_hits\": " + std::to_string(dCacheHits);
    out += ", \"gc_runs\": " + std::to_string(c.gcRuns);
    out += ", \"d_gc_runs\": " + std::to_string(dGcRuns);
    out += ", \"reorder_count\": " + std::to_string(c.reorderings);
    out += ", \"d_reorder_count\": " + std::to_string(dReorderings);
    out += ", \"peak_live_nodes\": " + std::to_string(c.peakLiveNodes);
    out += ", \"level_nodes\": [";
    for (size_t i = 0; i < c.levelNodes.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(c.levelNodes[i]);
    }
    out += "]";
  } else {
    out += ", \"census_seq\": null";
  }
  out += "}";
  return out;
}

// ----------------------------------------------------------------- sampler

struct Profiler::Impl {
  mutable std::mutex mu;
  std::condition_variable cv;
  bool stopRequested = false;
  bool running = false;
  std::thread worker;
  ProfOptions opts;

  // Sample ring (oldest dropped past capacity) + folded-stack aggregate.
  std::vector<ProfSample> ring;
  size_t head = 0;
  bool wrapped = false;
  uint64_t taken = 0;
  uint64_t dropped = 0;
  std::map<std::string, uint64_t> foldedCounts;

  // Per-tick state.
  uint64_t startNs = WallTimer::nowNs();
  uint64_t lastCensusSeq = 0;
  uint64_t lastCacheLookups = 0;
  uint64_t lastCacheHits = 0;
  uint64_t lastGcRuns = 0;
  uint64_t lastReorderings = 0;

  std::ofstream spill;
  bool spillHeaderWritten = false;
};

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

Profiler::Impl& Profiler::impl() const {
  static Impl* impl = new Impl;  // leaked, see registry.cpp
  return *impl;
}

std::string Profiler::headerJson() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::string out = "{\"schema\": \"hsis-prof-v1\", \"kind\": \"header\"";
  out += ", \"enabled\": ";
  out += kEnabled ? "true" : "false";
  out += ", \"interval_ms\": " + std::to_string(im.opts.intervalMs);
  out += ", \"ring_capacity\": " + std::to_string(im.opts.ringCapacity);
  out += "}";
  return out;
}

void Profiler::sampleOnce() {
  if constexpr (!kEnabled) return;
  Impl& im = impl();

  // Gather outside the lock: phaseStacks/latestCensus take their own.
  std::vector<PhaseStackSnapshot> stacks = phaseStacks();
  std::optional<BddCensus> census = latestCensus();
  // Ask for a fresh census for the *next* tick; the engine answers at its
  // next safe point, so each sample carries the latest one available.
  requestCensus();

  ProfSample s;
  s.tNs = WallTimer::nowNs();
  s.rssKb = currentRssKb();
  for (const PhaseStackSnapshot& st : stacks) {
    if (!st.frames.empty()) s.folded.push_back(st.folded());
  }
  s.census = std::move(census);

  std::lock_guard<std::mutex> lock(im.mu);
  s.seq = im.taken++;
  s.tSeconds = static_cast<double>(s.tNs - im.startNs) * 1e-9;
  if (s.census.has_value()) {
    // Deltas vs the previously sampled census. A manager restart (new
    // manager with smaller totals) would underflow; clamp to zero.
    auto delta = [](uint64_t now, uint64_t before) {
      return now >= before ? now - before : 0;
    };
    s.dCacheLookups = delta(s.census->cacheLookups, im.lastCacheLookups);
    s.dCacheHits = delta(s.census->cacheHits, im.lastCacheHits);
    s.dGcRuns = delta(s.census->gcRuns, im.lastGcRuns);
    s.dReorderings = delta(s.census->reorderings, im.lastReorderings);
    if (s.census->seq == im.lastCensusSeq) {
      // Same census as last tick (engine between safe points): totals
      // unchanged, deltas are zero by construction.
      s.dCacheLookups = s.dCacheHits = s.dGcRuns = s.dReorderings = 0;
    }
    im.lastCensusSeq = s.census->seq;
    im.lastCacheLookups = s.census->cacheLookups;
    im.lastCacheHits = s.census->cacheHits;
    im.lastGcRuns = s.census->gcRuns;
    im.lastReorderings = s.census->reorderings;
  }
  for (const std::string& f : s.folded) im.foldedCounts[f]++;

  if (im.spill.is_open()) {
    if (!im.spillHeaderWritten) {
      im.spillHeaderWritten = true;
      std::string header = "{\"schema\": \"hsis-prof-v1\", \"kind\": \"header\"";
      header += ", \"enabled\": ";
      header += kEnabled ? "true" : "false";
      header += ", \"interval_ms\": " + std::to_string(im.opts.intervalMs);
      header +=
          ", \"ring_capacity\": " + std::to_string(im.opts.ringCapacity);
      header += "}";
      im.spill << header << '\n';
    }
    im.spill << s.toJsonl() << '\n';
    im.spill.flush();
  }

  if (im.ring.size() < im.opts.ringCapacity) {
    im.ring.push_back(std::move(s));
  } else {
    im.ring[im.head] = std::move(s);
    im.head = (im.head + 1) % im.opts.ringCapacity;
    im.wrapped = true;
    ++im.dropped;
  }
}

void Profiler::start(ProfOptions options) {
  if constexpr (!kEnabled) {
    // Keep the options (header/export reflect them) but never sample.
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.opts = std::move(options);
    return;
  }
  stop();
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.opts = std::move(options);
    if (im.opts.intervalMs == 0) im.opts.intervalMs = 1;
    if (im.opts.ringCapacity == 0) im.opts.ringCapacity = 1;
    im.stopRequested = false;
    im.running = true;
    im.ring.clear();
    im.head = 0;
    im.wrapped = false;
    im.taken = 0;
    im.dropped = 0;
    im.foldedCounts.clear();
    im.startNs = WallTimer::nowNs();
    im.lastCensusSeq = 0;
    im.lastCacheLookups = im.lastCacheHits = 0;
    im.lastGcRuns = im.lastReorderings = 0;
    im.spill = std::ofstream();
    im.spillHeaderWritten = false;
    if (!im.opts.jsonlPath.empty()) {
      std::error_code ec;
      std::filesystem::path p(im.opts.jsonlPath);
      if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
      im.spill.open(im.opts.jsonlPath, std::ios::trunc);
      if (!im.spill) {
        std::fprintf(stderr, "prof: cannot write %s\n",
                     im.opts.jsonlPath.c_str());
        // Forget the path so the exit-time export falls back to writing
        // the ring view instead of trusting a spill that never opened.
        im.opts.jsonlPath.clear();
      }
    }
  }
  im.worker = std::thread([this, &im] {
    setThreadName("obs.prof");
    std::unique_lock<std::mutex> lock(im.mu);
    while (!im.cv.wait_for(lock, std::chrono::milliseconds(im.opts.intervalMs),
                           [&im] { return im.stopRequested; })) {
      lock.unlock();
      sampleOnce();
      lock.lock();
    }
  });
}

void Profiler::stop() {
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (!im.running) return;
    im.stopRequested = true;
  }
  im.cv.notify_all();
  if (im.worker.joinable()) im.worker.join();
  std::lock_guard<std::mutex> lock(im.mu);
  im.running = false;
  if (im.spill.is_open()) im.spill.close();
}

bool Profiler::running() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.running;
}

void Profiler::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.ring.clear();
  im.head = 0;
  im.wrapped = false;
  im.taken = 0;
  im.dropped = 0;
  im.foldedCounts.clear();
  im.startNs = WallTimer::nowNs();
  im.lastCensusSeq = 0;
  im.lastCacheLookups = im.lastCacheHits = 0;
  im.lastGcRuns = im.lastReorderings = 0;
}

uint64_t Profiler::sampleCount() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.taken;
}

uint64_t Profiler::droppedSamples() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.dropped;
}

std::vector<ProfSample> Profiler::samples() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<ProfSample> out;
  out.reserve(im.ring.size());
  if (im.wrapped) {
    out.insert(out.end(), im.ring.begin() + static_cast<long>(im.head),
               im.ring.end());
    out.insert(out.end(), im.ring.begin(),
               im.ring.begin() + static_cast<long>(im.head));
  } else {
    out = im.ring;
  }
  return out;
}

std::string Profiler::foldedStacks() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::string out;
  for (const auto& [stack, count] : im.foldedCounts) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string Profiler::censusJsonl() const {
  std::string out = headerJson() + "\n";
  for (const ProfSample& s : samples()) out += s.toJsonl() + "\n";
  return out;
}

bool Profiler::writeFolded(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "prof: cannot write %s\n", path.c_str());
    return false;
  }
  out << foldedStacks();
  return true;
}

bool Profiler::writeCensusJsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "prof: cannot write %s\n", path.c_str());
    return false;
  }
  out << censusJsonl();
  return true;
}

std::string Profiler::spillPath() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.opts.jsonlPath;
}

void writeProfileFiles(const std::string& basePath) {
  if (basePath.empty()) return;
  Profiler& p = Profiler::instance();
  const std::string spill = p.spillPath();
  p.stop();
  std::error_code ec;
  std::filesystem::path base(basePath);
  if (base.has_parent_path())
    std::filesystem::create_directories(base.parent_path(), ec);
  p.writeFolded(basePath + ".folded");
  const std::string censusPath = basePath + ".census.jsonl";
  // When the run spilled write-through to this same file it already holds
  // the complete series (possibly longer than the ring); rewriting from
  // the ring would truncate history. A spill that never took a sample
  // (disabled build, aborted before the first tick) is rewritten so the
  // file at least carries a parseable header line.
  const bool spillHoldsSeries = spill == censusPath && p.sampleCount() > 0;
  if (!spillHoldsSeries) p.writeCensusJsonl(censusPath);
}

}  // namespace hsis::obs::prof
