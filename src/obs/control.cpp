// Abort flag, phase stack, RSS probes, heartbeat reporter, resource
// watchdog, and the shared CLI flag handling. Compiled identically in
// enabled and HSIS_OBS_DISABLE builds: cancelling a runaway run is control
// flow, not measurement (see control.hpp).
#include "obs/control.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "obs/prof.hpp"

namespace hsis::obs {

// ------------------------------------------------------------ abort flag

namespace detail {
std::atomic<bool> g_abortRequested{false};
}  // namespace detail

namespace {

std::mutex& abortMutex() {
  static std::mutex mu;
  return mu;
}

AbortInfo& abortStore() {
  static AbortInfo* info = new AbortInfo;  // leaked, like the registry
  return *info;
}

std::string formatMb(uint64_t kb) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fMB", static_cast<double>(kb) / 1024.0);
  return buf;
}

}  // namespace

AbortedError::AbortedError(std::string reason, std::string phase)
    : std::runtime_error("aborted: " + reason +
                         (phase.empty() ? "" : " (phase " + phase + ")")),
      reason_(std::move(reason)),
      phase_(std::move(phase)) {}

void requestAbort(std::string_view reason, std::string_view phase) {
  {
    std::lock_guard<std::mutex> lock(abortMutex());
    if (detail::g_abortRequested.load(std::memory_order_relaxed)) return;
    AbortInfo& info = abortStore();
    info.reason = std::string(reason);
    info.phase = phase.empty() ? currentPhase() : std::string(phase);
    detail::g_abortRequested.store(true, std::memory_order_release);
  }
  // Last-gasp evidence at breach time, before the abort unwinds anything:
  // the flight recorder (when installed) captures the ring, phase stacks,
  // and latest census as they were when the limit was hit.
  if (flight::installed()) {
    HSIS_LOG_WARN("obs.abort", "abort requested",
                  {{"reason", std::string_view(reason)}});
    flight::dump("abort: " + std::string(reason));
  }
}

void clearAbort() {
  std::lock_guard<std::mutex> lock(abortMutex());
  detail::g_abortRequested.store(false, std::memory_order_release);
  abortStore() = AbortInfo{};
}

std::optional<AbortInfo> abortInfo() {
  std::lock_guard<std::mutex> lock(abortMutex());
  if (!detail::g_abortRequested.load(std::memory_order_acquire))
    return std::nullopt;
  return abortStore();
}

void throwAborted() {
  // A task-slot abort on this thread wins over the process flag: it names
  // the request being cancelled, which is the reason the unwind happens.
  if (TaskAbort* slot = detail::t_taskAbort;
      slot != nullptr && slot->requested()) {
    std::optional<AbortInfo> info = slot->info();
    if (info.has_value()) throw AbortedError(info->reason, info->phase);
  }
  std::optional<AbortInfo> info = abortInfo();
  if (!info.has_value()) info = AbortInfo{"abort requested", ""};
  throw AbortedError(info->reason, info->phase);
}

// ------------------------------------------------------- task abort slots

namespace detail {
thread_local TaskAbort* t_taskAbort = nullptr;
}  // namespace detail

void TaskAbort::request(std::string_view reason, std::string_view phase) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (flag_.load(std::memory_order_relaxed)) return;  // first request wins
    reason_ = std::string(reason);
    phase_ = phase.empty() ? currentPhase() : std::string(phase);
    flag_.store(true, std::memory_order_release);
  }
  if (flight::installed()) {
    HSIS_LOG_WARN("obs.abort", "task abort requested",
                  {{"reason", std::string_view(reason)}});
  }
}

void TaskAbort::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  flag_.store(false, std::memory_order_release);
  reason_.clear();
  phase_.clear();
}

std::optional<AbortInfo> TaskAbort::info() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!flag_.load(std::memory_order_acquire)) return std::nullopt;
  return AbortInfo{reason_, phase_};
}

void bindTaskAbort(TaskAbort* slot) { detail::t_taskAbort = slot; }

TaskAbort* boundTaskAbort() { return detail::t_taskAbort; }

// ----------------------------------------------------------- phase stack

namespace {

struct PhaseEntry {
  uint64_t threadId;
  uint64_t spanId;
  std::string name;
};

struct PhaseStack {
  std::mutex mu;
  // All open spans process-wide in start order (so per-thread frames fall
  // out in nesting order). The back entry is "the most recently started
  // still-open phase", which is the right answer for watchdog/heartbeat
  // reporting; the per-thread grouping is what the sampling profiler folds.
  std::vector<PhaseEntry> active;
};

PhaseStack& phaseStack() {
  static PhaseStack* ps = new PhaseStack;  // leaked, see registry.cpp
  return *ps;
}

/// Re-render every thread's live stack as `{"kind": "phase_stack", ...}`
/// JSONL for the flight recorder's pre-serialized buffer. Caller holds
/// ps.mu, so the rendered block is a consistent cut; publishing under the
/// lock keeps the buffer ordered with the stack mutations.
void publishPhaseLinesLocked(const PhaseStack& ps) {
  // Same grouping as phaseStacks(): one line per thread, frames in start
  // (== nesting) order, rendered in the folded flamegraph form.
  std::vector<uint64_t> tids;
  for (const PhaseEntry& e : ps.active) {
    if (std::find(tids.begin(), tids.end(), e.threadId) == tids.end())
      tids.push_back(e.threadId);
  }
  std::string block;
  for (uint64_t tid : tids) {
    block += "{\"kind\": \"phase_stack\", \"tid\": " + std::to_string(tid) +
             ", \"frames\": \"";
    bool first = true;
    for (const PhaseEntry& e : ps.active) {
      if (e.threadId != tid) continue;
      if (!first) block += ';';
      first = false;
      block += e.name;
    }
    block += "\"}\n";
  }
  flight::detail::publishPhaseLines(block);
}

}  // namespace

namespace detail {

void notePhaseStart(uint64_t threadId, uint64_t spanId, std::string_view name) {
  PhaseStack& ps = phaseStack();
  std::lock_guard<std::mutex> lock(ps.mu);
  ps.active.push_back(PhaseEntry{threadId, spanId, std::string(name)});
  if (flight::detail::wantsPublish()) publishPhaseLinesLocked(ps);
}

void notePhaseEnd(uint64_t threadId, uint64_t spanId) {
  PhaseStack& ps = phaseStack();
  std::lock_guard<std::mutex> lock(ps.mu);
  for (size_t i = ps.active.size(); i-- > 0;) {
    if (ps.active[i].threadId == threadId && ps.active[i].spanId == spanId) {
      ps.active.erase(ps.active.begin() + static_cast<long>(i));
      if (flight::detail::wantsPublish()) publishPhaseLinesLocked(ps);
      return;
    }
  }
}

}  // namespace detail

std::string currentPhase() {
  PhaseStack& ps = phaseStack();
  std::lock_guard<std::mutex> lock(ps.mu);
  return ps.active.empty() ? std::string() : ps.active.back().name;
}

std::string PhaseStackSnapshot::folded() const {
  std::string out;
  for (size_t i = 0; i < frames.size(); ++i) {
    if (i != 0) out += ';';
    out += frames[i];
  }
  return out;
}

std::vector<PhaseStackSnapshot> phaseStacks() {
  PhaseStack& ps = phaseStack();
  std::lock_guard<std::mutex> lock(ps.mu);
  // Group by thread, preserving the start order within each thread (spans
  // are strictly scoped per thread, so start order == nesting order).
  std::vector<PhaseStackSnapshot> out;
  for (const PhaseEntry& e : ps.active) {
    PhaseStackSnapshot* snap = nullptr;
    for (PhaseStackSnapshot& s : out) {
      if (s.threadId == e.threadId) {
        snap = &s;
        break;
      }
    }
    if (snap == nullptr) {
      out.push_back(PhaseStackSnapshot{e.threadId, {}});
      snap = &out.back();
    }
    snap->frames.push_back(e.name);
  }
  std::sort(out.begin(), out.end(),
            [](const PhaseStackSnapshot& a, const PhaseStackSnapshot& b) {
              return a.threadId < b.threadId;
            });
  return out;
}

// --------------------------------------------------------- process memory

namespace {

/// Parse a "Vm...: N kB" line from /proc/self/status.
uint64_t procStatusKb(const char* key) {
  std::ifstream in("/proc/self/status");
  if (!in) return 0;
  std::string line;
  size_t keyLen = std::strlen(key);
  while (std::getline(in, line)) {
    if (line.compare(0, keyLen, key) != 0) continue;
    return static_cast<uint64_t>(
        std::strtoull(line.c_str() + keyLen, nullptr, 10));
  }
  return 0;
}

}  // namespace

uint64_t currentRssKb() { return procStatusKb("VmRSS:"); }
uint64_t peakRssKb() { return procStatusKb("VmHWM:"); }

// -------------------------------------------------------------- heartbeat

HeartbeatSource::HeartbeatSource() : startNs_(WallTimer::nowNs()) {}

HeartbeatRecord HeartbeatSource::next() {
  HeartbeatRecord r;
  r.seq = seq_++;
  r.tSeconds = static_cast<double>(WallTimer::nowNs() - startNs_) * 1e-9;
  r.phase = currentPhase();
  r.rssKb = currentRssKb();
  r.liveNodes = gauge("bdd.unique.size").value();
  r.nodesCreated = counter("bdd.nodes.created").value();
  r.cacheLookups = counter("bdd.cache.lookups").value();
  r.cacheHits = counter("bdd.cache.hits").value();
  r.reachIterations = counter("fsm.reach.iterations").value();
  r.frontierNodes = gauge("fsm.reach.frontier.last").value();
  r.hullIterations = counter("lc.hull.iterations").value();

  r.dNodesCreated = r.nodesCreated - lastNodesCreated_;
  r.dReachIterations = r.reachIterations - lastReach_;
  r.dHullIterations = r.hullIterations - lastHull_;
  uint64_t dLookups = r.cacheLookups - lastLookups_;
  uint64_t dHits = r.cacheHits - lastHits_;
  r.cacheHitRate =
      dLookups == 0 ? 0.0
                    : static_cast<double>(dHits) / static_cast<double>(dLookups);

  lastNodesCreated_ = r.nodesCreated;
  lastLookups_ = r.cacheLookups;
  lastHits_ = r.cacheHits;
  lastReach_ = r.reachIterations;
  lastHull_ = r.hullIterations;
  return r;
}

std::string HeartbeatRecord::toTableLine() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "[hsis-hb %llu] t=%.1fs phase=%s rss=%s live=%lld "
                "+nodes=%llu hit=%.1f%% reach=%llu(+%llu) frontier=%lld "
                "hull=%llu(+%llu)",
                static_cast<unsigned long long>(seq), tSeconds,
                phase.empty() ? "-" : phase.c_str(), formatMb(rssKb).c_str(),
                static_cast<long long>(liveNodes),
                static_cast<unsigned long long>(dNodesCreated),
                cacheHitRate * 100.0,
                static_cast<unsigned long long>(reachIterations),
                static_cast<unsigned long long>(dReachIterations),
                static_cast<long long>(frontierNodes),
                static_cast<unsigned long long>(hullIterations),
                static_cast<unsigned long long>(dHullIterations));
  return buf;
}

std::string HeartbeatRecord::toJsonl() const {
  // Phase names are dotted identifiers from this codebase; escape the two
  // characters that could break the line anyway.
  std::string p;
  for (char c : phase) {
    if (c == '"' || c == '\\') p += '\\';
    p += c;
  }
  char buf[512];
  // Doubles go through jsonDouble so a pathological rate (NaN/Inf) can
  // never produce an invalid JSONL record.
  std::snprintf(
      buf, sizeof buf,
      "{\"seq\": %llu, \"t_s\": %s, \"phase\": \"%s\", \"rss_kb\": %llu, "
      "\"live_nodes\": %lld, \"nodes_created\": %llu, \"d_nodes\": %llu, "
      "\"cache_hit_rate\": %s, \"reach_iterations\": %llu, "
      "\"d_reach_iterations\": %llu, \"frontier_nodes\": %lld, "
      "\"hull_iterations\": %llu, \"d_hull_iterations\": %llu}",
      static_cast<unsigned long long>(seq), jsonDouble(tSeconds).c_str(),
      p.c_str(), static_cast<unsigned long long>(rssKb),
      static_cast<long long>(liveNodes),
      static_cast<unsigned long long>(nodesCreated),
      static_cast<unsigned long long>(dNodesCreated),
      jsonDouble(cacheHitRate).c_str(),
      static_cast<unsigned long long>(reachIterations),
      static_cast<unsigned long long>(dReachIterations),
      static_cast<long long>(frontierNodes),
      static_cast<unsigned long long>(hullIterations),
      static_cast<unsigned long long>(dHullIterations));
  return buf;
}

struct Heartbeat::Impl {
  std::mutex mu;
  std::condition_variable cv;
  bool stopRequested = false;
  bool running = false;
  std::thread worker;
  HeartbeatOptions opts;
};

Heartbeat& Heartbeat::instance() {
  static Heartbeat h;
  return h;
}

Heartbeat::Impl& Heartbeat::impl() const {
  static Impl* impl = new Impl;  // leaked, see registry.cpp
  return *impl;
}

void Heartbeat::start(HeartbeatOptions options) {
  stop();
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.opts = std::move(options);
    if (im.opts.intervalMs == 0) im.opts.intervalMs = 1;
    im.stopRequested = false;
    im.running = true;
  }
  im.worker = std::thread([&im] {
    setThreadName("obs.heartbeat");
    HeartbeatSource source;
    std::ofstream jsonl;
    if (!im.opts.jsonlPath.empty())
      jsonl.open(im.opts.jsonlPath, std::ios::app);
    std::unique_lock<std::mutex> lock(im.mu);
    while (!im.cv.wait_for(lock, std::chrono::milliseconds(im.opts.intervalMs),
                           [&im] { return im.stopRequested; })) {
      lock.unlock();
      HeartbeatRecord rec = source.next();
      if (jsonl.is_open()) {
        jsonl << rec.toJsonl() << '\n';
        jsonl.flush();
      } else {
        std::fprintf(stderr, "%s\n", rec.toTableLine().c_str());
      }
      lock.lock();
    }
  });
}

void Heartbeat::stop() {
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (!im.running) return;
    im.stopRequested = true;
  }
  im.cv.notify_all();
  if (im.worker.joinable()) im.worker.join();
  std::lock_guard<std::mutex> lock(im.mu);
  im.running = false;
}

bool Heartbeat::running() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.running;
}

// --------------------------------------------------------------- watchdog

struct Watchdog::Impl {
  std::mutex mu;
  std::condition_variable cv;
  bool stopRequested = false;
  bool running = false;
  bool fired = false;
  std::thread worker;
  WatchdogOptions opts;
};

Watchdog::Watchdog() : impl_(std::make_unique<Impl>()) {}

Watchdog::~Watchdog() { stop(); }

Watchdog& Watchdog::instance() {
  // Leaked like the registry: the process-level watchdog may be observed
  // by atexit exporters, so it must not die in static destruction.
  static Watchdog* w = new Watchdog;
  return *w;
}

void Watchdog::start(WatchdogOptions options) {
  stop();  // joins any previous arming — no state carries over
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.opts = options;
    if (im.opts.pollMs == 0) im.opts.pollMs = 1;
    im.stopRequested = false;
    im.fired = false;
    im.running = true;
  }
  im.worker = std::thread([&im] {
    setThreadName("obs.watchdog");
    WallTimer timer;  // the budget clock starts at start()
    auto breach = [&im](const char* msg) {
      // Raise the configured flag first, then record the breach. A target
      // slot cancels just that task; otherwise the whole process aborts.
      if (im.opts.target != nullptr) {
        im.opts.target->request(msg);
      } else {
        requestAbort(msg);
      }
      std::lock_guard<std::mutex> lock(im.mu);
      im.fired = true;
      im.running = false;
    };
    std::unique_lock<std::mutex> lock(im.mu);
    while (!im.cv.wait_for(lock, std::chrono::milliseconds(im.opts.pollMs),
                           [&im] { return im.stopRequested; })) {
      const WatchdogOptions& o = im.opts;
      lock.unlock();
      double wall = timer.seconds();
      if (o.wallLimitSeconds > 0 && wall > o.wallLimitSeconds) {
        char msg[128];
        std::snprintf(msg, sizeof msg,
                      "wall-clock limit %gs exceeded (%.2fs elapsed)",
                      o.wallLimitSeconds, wall);
        breach(msg);
        return;
      }
      if (o.memLimitKb > 0) {
        uint64_t rss = o.useCurrentRss ? currentRssKb() : peakRssKb();
        if (rss > o.memLimitKb) {
          char msg[128];
          std::snprintf(msg, sizeof msg, "memory limit %s exceeded (%s %s)",
                        formatMb(o.memLimitKb).c_str(),
                        o.useCurrentRss ? "RSS" : "peak RSS",
                        formatMb(rss).c_str());
          breach(msg);
          return;
        }
      }
      lock.lock();
    }
  });
}

void Watchdog::stop() {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.stopRequested = true;
  }
  im.cv.notify_all();
  // Join even when the worker already fired and parked (running == false
  // but the thread object is still joinable) — the old early-return on
  // !running left a fired watchdog's thread unjoined across re-arms.
  if (im.worker.joinable()) im.worker.join();
  std::lock_guard<std::mutex> lock(im.mu);
  im.running = false;
}

bool Watchdog::running() const {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  return im.running;
}

bool Watchdog::fired() const {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  return im.fired;
}

// -------------------------------------------------------------- CLI flags

namespace {

/// Remove argv[i..i+n) and shift the rest down (argv stays NULL-terminated).
void eraseArgs(int& argc, char** argv, int i, int n) {
  for (int j = i; j + n <= argc; ++j) argv[j] = argv[j + n];
  argc -= n;
  argv[argc] = nullptr;
}

}  // namespace

ObsCliOptions stripObsCliFlags(int& argc, char** argv) {
  ObsCliOptions opts;
  for (int i = 1; i < argc;) {
    const char* a = argv[i];
    const bool hasValue = i + 1 < argc;
    if (std::strcmp(a, "--stats-json") == 0 && hasValue) {
      opts.statsJsonPath = argv[i + 1];
      eraseArgs(argc, argv, i, 2);
    } else if (std::strcmp(a, "--heartbeat") == 0 && hasValue) {
      opts.heartbeatMs =
          static_cast<uint64_t>(std::strtoull(argv[i + 1], nullptr, 10));
      eraseArgs(argc, argv, i, 2);
    } else if (std::strcmp(a, "--heartbeat-file") == 0 && hasValue) {
      opts.heartbeatFile = argv[i + 1];
      eraseArgs(argc, argv, i, 2);
    } else if (std::strcmp(a, "--timeout-s") == 0 && hasValue) {
      opts.timeoutSeconds = std::strtod(argv[i + 1], nullptr);
      eraseArgs(argc, argv, i, 2);
    } else if (std::strcmp(a, "--mem-limit-mb") == 0 && hasValue) {
      opts.memLimitMb =
          static_cast<uint64_t>(std::strtoull(argv[i + 1], nullptr, 10));
      eraseArgs(argc, argv, i, 2);
    } else if (std::strcmp(a, "--profile") == 0) {
      opts.profile = true;
      eraseArgs(argc, argv, i, 1);
    } else if (std::strcmp(a, "--profile-out") == 0 && hasValue) {
      opts.profile = true;
      opts.profileBasePath = argv[i + 1];
      eraseArgs(argc, argv, i, 2);
    } else if (std::strcmp(a, "--profile-interval-ms") == 0 && hasValue) {
      opts.profile = true;
      opts.profileIntervalMs =
          static_cast<uint64_t>(std::strtoull(argv[i + 1], nullptr, 10));
      eraseArgs(argc, argv, i, 2);
    } else if (std::strcmp(a, "--log-level") == 0 && hasValue) {
      opts.logLevel = argv[i + 1];
      eraseArgs(argc, argv, i, 2);
    } else if (std::strcmp(a, "--log-file") == 0 && hasValue) {
      opts.logFile = argv[i + 1];
      eraseArgs(argc, argv, i, 2);
    } else if (std::strcmp(a, "--ledger") == 0 && hasValue) {
      opts.ledgerPath = argv[i + 1];
      eraseArgs(argc, argv, i, 2);
    } else if (std::strcmp(a, "--flight-dir") == 0 && hasValue) {
      opts.flightDir = argv[i + 1];
      eraseArgs(argc, argv, i, 2);
    } else if (std::strcmp(a, "--cov-json") == 0 && hasValue) {
      opts.covJsonPath = argv[i + 1];
      eraseArgs(argc, argv, i, 2);
    } else {
      ++i;
    }
  }
  return opts;
}

// ----------------------------------------------------------- exit exporters
//
// One atexit hook owns every exit-time artifact, in a fixed order (the old
// scheme of per-artifact atexit registrations depended on LIFO registration
// order across translation units — see control.hpp for the contract):
//
//   1. stop reporter threads   nothing mutates the registry mid-export
//   2. profiler files          read the final census/sample state
//   3. stats snapshot + trace  read the final registry/span state
//   4. ledger record, disarm   records cost, so it goes last
//
// The flight recorder is deliberately absent: it fires at crash/abort time.

namespace {

struct ExitState {
  std::mutex mu;
  std::atomic<bool> ran{false};
  bool registered = false;
  bool profile = false;
  std::string profileBase;
  std::string statsJsonPath;  ///< exporter-owned --stats-json dump
  std::string ledgerPath;     ///< "" = ledger disabled for this process
  bool processRecord = false; ///< append `pending` at exit (not ownLedger)
  bool resultSet = false;     ///< driver called noteRunResult
  ledger::Record pending;
  std::string driverName;
  uint64_t startNs = 0;
};

ExitState& exitState() {
  static ExitState* st = new ExitState;  // leaked, see registry.cpp
  return *st;
}

void writeStatsSnapshot(const std::string& path) {
  Snapshot snap = snapshot();
  {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
      return;
    }
    out << toJson(snap);
  }
  std::ofstream trace(path + ".trace.json");
  if (trace) trace << toChromeTrace(snap);
}

void runExitExporters() {
  ExitState& st = exitState();
  if (st.ran.exchange(true)) return;
  stopObsThreads();
  std::lock_guard<std::mutex> lock(st.mu);
  if (st.profile) prof::writeProfileFiles(st.profileBase);
  if (!st.statsJsonPath.empty()) writeStatsSnapshot(st.statsJsonPath);
  if (st.processRecord && !st.ledgerPath.empty()) {
    ledger::Record rec = st.pending;
    if (!st.resultSet) {
      if (std::optional<AbortInfo> abort = abortInfo()) {
        rec.result = "aborted";
        rec.detail = abort->reason;
      }
    }
    rec.wallSeconds =
        static_cast<double>(WallTimer::nowNs() - st.startNs) * 1e-9;
    rec.peakRssKb = peakRssKb();
    ledger::append(st.ledgerPath, rec);
  }
  ledger::disarmCrashRecord();
}

}  // namespace

void applyObsCliOptions(const ObsCliOptions& options) {
  setThreadName("main");
  ExitState& st = exitState();
  if (!options.logLevel.empty()) {
    log::setLevel(log::parseLevel(options.logLevel));
    // An explicit level is a request to SEE the events, so attach the
    // human sink; the default (ring-only) keeps driver stdout/stderr clean.
    log::setHumanSink(stderr);
  }
  if (!options.logFile.empty()) log::openJsonlSink(options.logFile);
  std::string flightDir = options.flightDir;
  if (flightDir.empty()) {
    const char* env = std::getenv("HSIS_FLIGHT_DIR");
    if (env != nullptr) flightDir = env;
  }
  if (!flightDir.empty()) {
    std::lock_guard<std::mutex> lock(st.mu);
    flight::install(flightDir, st.driverName);
  }
  if (options.heartbeatMs > 0 || !options.heartbeatFile.empty()) {
    HeartbeatOptions ho;
    ho.intervalMs = options.heartbeatMs > 0 ? options.heartbeatMs : 1000;
    ho.jsonlPath = options.heartbeatFile;
    Heartbeat::instance().start(ho);
  }
  if (options.timeoutSeconds > 0 || options.memLimitMb > 0) {
    WatchdogOptions wo;
    wo.wallLimitSeconds = options.timeoutSeconds;
    wo.memLimitKb = options.memLimitMb * 1024;
    Watchdog::instance().start(wo);
  }
  if (options.profile) {
    const std::string base = options.profileBasePath.empty()
                                 ? std::string("hsis-prof")
                                 : options.profileBasePath;
    {
      std::lock_guard<std::mutex> lock(st.mu);
      st.profile = true;
      st.profileBase = base;
    }
    prof::ProfOptions po;
    if (options.profileIntervalMs > 0) po.intervalMs = options.profileIntervalMs;
    // Write-through spill: even a SIGKILLed run leaves the census series.
    po.jsonlPath = base + ".census.jsonl";
    prof::Profiler::instance().start(po);
  }
  {
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.registered) {
      st.registered = true;
      std::atexit(runExitExporters);
    }
  }
}

void stopObsThreads() {
  Heartbeat::instance().stop();
  Watchdog::instance().stop();
  prof::Profiler::instance().stop();
}

// ------------------------------------------------------------ driver setup

std::string gitSha() {
  if (const char* env = std::getenv("HSIS_GIT_SHA")) return env;
  std::string sha;
  if (std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      sha = buf;
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    }
    ::pclose(p);
  }
  return sha.empty() ? "unknown" : sha;
}

ObsCliOptions initDriverObs(int& argc, char** argv,
                            const DriverObsInit& init) {
  ObsCliOptions opts = stripObsCliFlags(argc, argv);
  ExitState& st = exitState();
  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.startNs = WallTimer::nowNs();
    st.driverName = init.driverName;
    if (!init.ownStatsJson) st.statsJsonPath = opts.statsJsonPath;
    st.ledgerPath = ledger::resolvePath(opts.ledgerPath);

    ledger::Record r;
    r.runId = ledger::runId();
    r.time = ledger::timestampUtc();
    r.driver = init.driverName;
    r.result = "completed";
    r.gitSha = gitSha();
    r.obsEnabled = kEnabled;
    // The post-strip argv is the driver-specific configuration.
    for (int i = 1; i < argc; ++i) {
      if (i > 1) r.config += ' ';
      r.config += argv[i];
    }
    st.pending = r;
    st.processRecord = !init.ownLedger;
    st.resultSet = false;
    // Arm the crash record even for ownLedger drivers: a crash forfeits
    // their per-case records, so the process-level "crashed" line is the
    // only trace left.
    if (!st.ledgerPath.empty()) ledger::armCrashRecord(st.ledgerPath, r);
  }
  applyObsCliOptions(opts);
  return opts;
}

std::string activeLedgerPath() {
  ExitState& st = exitState();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.ledgerPath;
}

ledger::Record baseLedgerRecord() {
  ExitState& st = exitState();
  std::lock_guard<std::mutex> lock(st.mu);
  ledger::Record r = st.pending;
  r.subject.clear();
  r.result = "completed";
  r.detail.clear();
  r.digest.clear();
  return r;
}

void noteRunSubject(std::string_view subject) {
  ExitState& st = exitState();
  std::lock_guard<std::mutex> lock(st.mu);
  st.pending.subject = std::string(subject);
}

void noteRunResult(std::string_view result, std::string_view detail,
                   std::string_view digest) {
  ExitState& st = exitState();
  std::lock_guard<std::mutex> lock(st.mu);
  st.pending.result = std::string(result);
  st.pending.detail = std::string(detail);
  st.pending.digest = std::string(digest);
  st.resultSet = true;
}

}  // namespace hsis::obs
