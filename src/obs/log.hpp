// hsis::obs::log — the structured event log, and hsis::obs::flight — the
// crash-safe flight recorder built on top of it.
//
// LOGGER. Events are leveled (trace/debug/info/warn/error), carry a dotted
// component name (same convention as metrics: `bdd.gc`, `fsm.reach`), a
// message, and typed key-value fields. Every event gets a per-thread
// sequence number and a monotonic timestamp at record time. Each accepted
// event is rendered ONCE to a JSONL line (schema `hsis-log-v1`) and then
// fanned out to up to three places:
//
//   1. the in-memory RING — a fixed set of lock-free slots holding the most
//      recent rendered lines. Always on; this is what the flight recorder
//      dumps after a crash.
//   2. the JSONL sink — a file opened by `--log-file` (append).
//   3. the human sink — `[hsis info +1.234s bdd.gc] msg k=v` lines on a
//      FILE*, enabled when `--log-level` is given explicitly.
//
// The hot path when a level is filtered out is one relaxed atomic load
// (`enabled()`); call sites go through the HSIS_LOG_* macros so the field
// expressions are never evaluated for a filtered event. Under
// HSIS_OBS_DISABLE `enabled()` is constexpr false and every call site
// folds away entirely.
//
// FLIGHT RECORDER. `flight::install(dir)` registers SIGSEGV/SIGABRT/SIGBUS
// handlers (and arms the watchdog-abort path, see control.cpp). On a crash
// the handler writes `DIR/hsis-flight-<pid>.jsonl` — schema
// `hsis-flight-v1` — using ONLY async-signal-safe calls (open/write/close)
// over PRE-SERIALIZED buffers:
//
//   header line    rendered at install time (pid, argv, git sha) plus the
//                  crash reason / signal and the current RSS, formatted by
//                  a tiny signal-safe integer writer;
//   phase_stack    re-rendered into a double buffer on every span
//                  start/end while the recorder is installed (control.cpp);
//   census         re-rendered on every BddCensus publication (prof.cpp);
//   event lines    the logger ring, newest-overwrites-oldest.
//
// A watchdog or user abort (`requestAbort`) dumps the same file from
// normal context. Under HSIS_OBS_DISABLE spans and log events are compiled
// out, so the dump degrades to a valid header(+census) document — run
// identity is control flow, not measurement, and stays live.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace hsis::obs::log {

// ----------------------------------------------------------------- levels

enum class Level : int { Trace = 0, Debug, Info, Warn, Error, Off };

/// "trace"/"debug"/"info"/"warn"/"error"/"off".
std::string_view levelName(Level level) noexcept;
/// Parse a level name (case-sensitive, as printed). Returns Info on junk.
Level parseLevel(std::string_view name) noexcept;

namespace detail {
extern std::atomic<int> g_level;  // default Info
}  // namespace detail

#if !defined(HSIS_OBS_DISABLE)
/// Hot-path filter: one relaxed load.
inline bool enabled(Level level) noexcept {
  return static_cast<int>(level) >=
         detail::g_level.load(std::memory_order_relaxed);
}
#else
inline constexpr bool enabled(Level) noexcept { return false; }
#endif

void setLevel(Level level) noexcept;
[[nodiscard]] Level level() noexcept;

// ----------------------------------------------------------------- fields

/// One typed key-value pair. The constructors cover the integer spellings
/// call sites actually use so brace-init never hits an ambiguity.
struct Field {
  enum class Kind { I64, U64, F64, Bool, Str };
  std::string_view key;
  Kind kind;
  int64_t i = 0;
  uint64_t u = 0;
  double d = 0.0;
  std::string_view s;

  // Fundamental types, not the fixed-width aliases: int64_t/uint64_t map
  // onto (unsigned) long or long long depending on the ABI, so spelling the
  // aliases here would collide with one of these.
  Field(std::string_view k, int v) : key(k), kind(Kind::I64), i(v) {}
  Field(std::string_view k, long v) : key(k), kind(Kind::I64), i(v) {}
  Field(std::string_view k, long long v) : key(k), kind(Kind::I64), i(v) {}
  Field(std::string_view k, unsigned v) : key(k), kind(Kind::U64), u(v) {}
  Field(std::string_view k, unsigned long v) : key(k), kind(Kind::U64), u(v) {}
  Field(std::string_view k, unsigned long long v)
      : key(k), kind(Kind::U64), u(v) {}
  Field(std::string_view k, double v) : key(k), kind(Kind::F64), d(v) {}
  Field(std::string_view k, bool v) : key(k), kind(Kind::Bool), u(v ? 1 : 0) {}
  Field(std::string_view k, std::string_view v)
      : key(k), kind(Kind::Str), s(v) {}
  Field(std::string_view k, const char* v) : key(k), kind(Kind::Str), s(v) {}
};

// ------------------------------------------------------------------ record

/// Record one event: render the `hsis-log-v1` JSONL line and fan it out to
/// the ring and any open sinks. Call through the HSIS_LOG_* macros so
/// fields are not built for filtered levels. Thread-safe.
void event(Level level, std::string_view component, std::string_view message,
           std::initializer_list<Field> fields = {});

// ------------------------------------------------------------------- sinks

/// Append `hsis-log-v1` JSONL to `path` (a header line is written first on
/// a fresh file). Empty path (or open failure) closes the sink.
void openJsonlSink(const std::string& path);
/// Human-readable one-line records on `f` (nullptr = off). Not owned.
void setHumanSink(std::FILE* f);
/// Close the JSONL sink and detach the human sink.
void closeSinks();

// -------------------------------------------------------------------- ring

/// Number of ring slots and the rendered-line capacity of each. Lines
/// longer than the slot are truncated at a field boundary (the line stays
/// valid JSON).
inline constexpr size_t kRingSlots = 256;
inline constexpr size_t kRingSlotBytes = 512;

/// Copy of the current ring contents (rendered JSONL lines, oldest first).
/// Best effort under concurrent writers; complete when quiescent.
std::vector<std::string> ringLines();
/// Empty the ring (tests, per-run resets).
void clearRing();
/// Total events accepted (recorded to the ring) since process start.
uint64_t eventCount();

namespace detail {
/// Raw slot access for the flight recorder's signal path: no allocation,
/// no locks. Returns the slot's data pointer and stores its published
/// length (0 = empty or mid-write).
const char* ringSlot(uint64_t index, uint32_t* len) noexcept;
}  // namespace detail

}  // namespace hsis::obs::log

// ------------------------------------------------------------- call macros
//
// HSIS_LOG_INFO("bdd.gc", "sweep complete", {{"freed", freed}, {"live", n}});
//
// The guard means field expressions are evaluated only when the level is
// live; under HSIS_OBS_DISABLE `enabled()` is constexpr false and the whole
// statement folds to nothing.

#define HSIS_LOG_AT(lvl, component, ...)                        \
  do {                                                          \
    if (::hsis::obs::log::enabled(lvl))                         \
      ::hsis::obs::log::event(lvl, component, __VA_ARGS__);     \
  } while (0)

#define HSIS_LOG_TRACE(component, ...) \
  HSIS_LOG_AT(::hsis::obs::log::Level::Trace, component, __VA_ARGS__)
#define HSIS_LOG_DEBUG(component, ...) \
  HSIS_LOG_AT(::hsis::obs::log::Level::Debug, component, __VA_ARGS__)
#define HSIS_LOG_INFO(component, ...) \
  HSIS_LOG_AT(::hsis::obs::log::Level::Info, component, __VA_ARGS__)
#define HSIS_LOG_WARN(component, ...) \
  HSIS_LOG_AT(::hsis::obs::log::Level::Warn, component, __VA_ARGS__)
#define HSIS_LOG_ERROR(component, ...) \
  HSIS_LOG_AT(::hsis::obs::log::Level::Error, component, __VA_ARGS__)

// --------------------------------------------------------- flight recorder

namespace hsis::obs::flight {

/// Install the crash handlers (SIGSEGV, SIGABRT, SIGBUS) and pre-render
/// the run-identity header. Dumps land in `dir` (created if missing) as
/// `hsis-flight-<pid>.jsonl`. Idempotent; a second call re-points the
/// directory. `driver` names the process in the header ("" keeps the
/// previous name). Live under HSIS_OBS_DISABLE. Setting $HSIS_FLIGHT_DIR
/// auto-installs at load time in any binary linking hsis_obs (CI uses
/// this to collect dumps from crashed unit tests).
void install(const std::string& dir, const std::string& driver = "");
[[nodiscard]] bool installed() noexcept;
/// The dump path this process would write ("" before install).
[[nodiscard]] std::string dumpPath();

/// Write the dump from NORMAL context (watchdog breach, user abort, or a
/// test). Returns false when the recorder is not installed or the file
/// cannot be written. Reuses the same pre-serialized buffers as the signal
/// path so both produce the same document.
bool dump(std::string_view reason);

/// Uninstall handlers and forget the directory (tests). Previously written
/// dump files are left on disk.
void uninstall();

namespace detail {
/// Publish a pre-rendered block of `{"kind": "phase_stack", ...}` JSONL
/// lines (newline-terminated) for the signal path. Called from the phase
/// bookkeeping in control.cpp whenever the recorder is installed.
void publishPhaseLines(const std::string& lines);
/// Same for the single `{"kind": "census", ...}` line (prof.cpp).
void publishCensusLine(const std::string& line);
/// One relaxed load; gates the re-render work at the publish sites.
[[nodiscard]] bool wantsPublish() noexcept;
}  // namespace detail

}  // namespace hsis::obs::flight
