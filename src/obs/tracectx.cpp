#include "obs/tracectx.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include <unistd.h>

namespace hsis::obs {

namespace {

// Mirrors trace.cpp's thread-id derivation so active-trace entries join
// against SpanSample::threadId.
uint64_t currentThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

// One slot per bound thread; the signal handler walks this table with
// relaxed atomic loads only. tid == 0 marks an empty slot (the hash of a
// real thread id is astronomically unlikely to be 0; a thread that does
// hash to 0 simply goes unmirrored, losing nothing but its crash line).
struct ActiveSlot {
  std::atomic<uint64_t> tid{0};
  std::atomic<uint64_t> traceId{0};
};
ActiveSlot g_active[trace_detail::kMaxActiveTraces];

thread_local const TraceContext* t_traceCtx = nullptr;
thread_local size_t t_activeSlot = trace_detail::kMaxActiveTraces;

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string traceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

uint64_t parseTraceId(std::string_view hex) noexcept {
  // Strict: exactly the 16-digit form traceIdHex() produces. A lenient
  // parse would let "dead" and "000000000000dead" alias one trace.
  if (hex.size() != 16) return 0;
  uint64_t v = 0;
  for (char c : hex) {
    uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<uint64_t>(c - 'A' + 10);
    else return 0;
    v = (v << 4) | digit;
  }
  return v;
}

uint64_t newTraceId() {
  static std::atomic<uint64_t> counter{0};
  static const uint64_t seed = [] {
    auto now = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return splitmix64(now ^ (static_cast<uint64_t>(::getpid()) << 32));
  }();
  uint64_t id = 0;
  while (id == 0) id = splitmix64(seed ^ counter.fetch_add(1, std::memory_order_relaxed));
  return id;
}

void bindTraceContext(const TraceContext* ctx) {
  if (ctx != nullptr && ctx->traceId != 0) {
    t_traceCtx = ctx;
    if (t_activeSlot >= trace_detail::kMaxActiveTraces) {
      const uint64_t tid = currentThreadId();
      for (size_t i = 0; i < trace_detail::kMaxActiveTraces; ++i) {
        uint64_t expected = 0;
        if (g_active[i].tid.compare_exchange_strong(expected, tid,
                                                    std::memory_order_acq_rel)) {
          t_activeSlot = i;
          break;
        }
      }
      // Table full: the binding still works, only the crash mirror is lost.
    }
    if (t_activeSlot < trace_detail::kMaxActiveTraces)
      g_active[t_activeSlot].traceId.store(ctx->traceId, std::memory_order_release);
  } else {
    t_traceCtx = nullptr;
    if (t_activeSlot < trace_detail::kMaxActiveTraces) {
      g_active[t_activeSlot].traceId.store(0, std::memory_order_release);
      g_active[t_activeSlot].tid.store(0, std::memory_order_release);
      t_activeSlot = trace_detail::kMaxActiveTraces;
    }
  }
}

const TraceContext* currentTraceContext() noexcept { return t_traceCtx; }

uint64_t currentTraceId() noexcept {
  return t_traceCtx != nullptr ? t_traceCtx->traceId : 0;
}

std::vector<std::pair<uint64_t, uint64_t>> activeTraces() {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (size_t i = 0; i < trace_detail::kMaxActiveTraces; ++i) {
    uint64_t tid, trace;
    if (trace_detail::activeTraceSlot(i, &tid, &trace)) out.emplace_back(tid, trace);
  }
  return out;
}

namespace trace_detail {

bool activeTraceSlot(size_t i, uint64_t* threadId, uint64_t* traceId) noexcept {
  if (i >= kMaxActiveTraces) return false;
  const uint64_t tid = g_active[i].tid.load(std::memory_order_acquire);
  const uint64_t trace = g_active[i].traceId.load(std::memory_order_acquire);
  if (tid == 0 || trace == 0) return false;
  *threadId = tid;
  *traceId = trace;
  return true;
}

}  // namespace trace_detail

}  // namespace hsis::obs
