#include "obs/version.hpp"

#include <cstdio>
#include <cstring>

#include "obs/control.hpp"

namespace hsis::obs {

const std::vector<std::string>& schemaVersions() {
  static const std::vector<std::string> kSchemas = {
      "hsis-obs-v1",    // metrics/span snapshots (obs.hpp)
      "hsis-bench-v1",  // BENCH_<suite>.json baselines (bench_schema.hpp)
      "hsis-prof-v1",   // sampling-profiler census JSONL (prof.hpp)
      "hsis-log-v1",    // structured event log JSONL (log.hpp)
      "hsis-flight-v1", // crash flight-recorder dumps (log.hpp)
      "hsis-ledger-v1", // cross-run verification ledger (ledger.hpp)
      "hsis-serve-v1",  // hsis_serve wire protocol (serve/protocol.hpp)
      "hsis-serve-stats-v1",   // stats-stream ticks (serve/protocol.hpp)
      "hsis-slow-request-v1",  // slow-request capture (serve/telemetry.hpp)
      "hsis-cov-v1",    // coverage reports (cov/cov.hpp)
      "hsis-cex-v1",    // counterexample artifacts (cex/cex.hpp)
  };
  return kSchemas;
}

std::string versionString(std::string_view tool) {
  std::string out(tool);
  out += ' ';
  out += gitSha();
  out += " (schemas:";
  for (const std::string& s : schemaVersions()) {
    out += ' ';
    out += s;
  }
  out += ')';
  return out;
}

bool handleVersionFlag(int argc, char** argv, std::string_view tool) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::string v = versionString(tool);
      std::printf("%s\n", v.c_str());
      return true;
    }
  }
  return false;
}

}  // namespace hsis::obs
