#include "obs/jsonlite.hpp"

#include <cctype>
#include <cstdint>
#include <stdexcept>

namespace hsis::obs::jsonlite {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = value();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;

  [[noreturn]] void fail(const char* why) const {
    throw std::runtime_error(std::string("json: ") + why + " at offset " +
                             std::to_string(pos_));
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char peek() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  Value value() {
    switch (peek()) {
      case '{': return objectValue();
      case '[': return arrayValue();
      case '"': return Value{stringValue()};
      case 't': literal("true"); return Value{true};
      case 'f': literal("false"); return Value{false};
      case 'n': literal("null"); return Value{nullptr};
      default: return numberValue();
    }
  }

  void literal(std::string_view word) {
    skipWs();
    if (text_.substr(pos_, word.size()) != word) fail("bad literal");
    pos_ += word.size();
  }

  /// Four hex digits after a \u, or fail.
  uint32_t hex4() {
    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return v;
  }

  void appendUtf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string stringValue() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            uint32_t cp = hex4();
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00..\uDFFF.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u')
                fail("lone high surrogate");
              pos_ += 2;
              uint32_t lo = hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              fail("lone low surrogate");
            }
            appendUtf8(out, cp);
            break;
          }
          default: out.push_back(e); break;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        // RFC 8259: control characters must be escaped inside strings.
        --pos_;
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    expect('"');
    return out;
  }

  Value numberValue() {
    skipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected number");
    return Value{std::stod(std::string(text_.substr(start, pos_ - start)))};
  }

  Value arrayValue() {
    expect('[');
    auto arr = std::make_shared<Array>();
    if (peek() == ']') {
      ++pos_;
      return Value{arr};
    }
    while (true) {
      arr->push_back(value());
      char c = peek();
      ++pos_;
      if (c == ']') return Value{arr};
      if (c != ',') fail("expected , or ]");
    }
  }

  Value objectValue() {
    expect('{');
    auto obj = std::make_shared<Object>();
    if (peek() == '}') {
      ++pos_;
      return Value{obj};
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = stringValue();
      expect(':');
      (*obj)[key] = value();
      char c = peek();
      ++pos_;
      if (c == '}') return Value{obj};
      if (c != ',') fail("expected , or }");
    }
  }
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse(); }

const Value* find(const Object& obj, const std::string& key) {
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

}  // namespace hsis::obs::jsonlite
