// hsis::obs::prof — the in-process sampling profiler.
//
// A background Sampler thread wakes every `intervalMs` (default 10 ms) and
// records one ProfSample:
//
//  (a) the live per-thread phase stacks (obs/control) folded into
//      `phaseA;phaseB;phaseC` frames — the aggregate over a run is the
//      classic folded-stack format consumed directly by flamegraph.pl and
//      speedscope;
//  (b) the most recent BddCensus published by a BddManager (live nodes per
//      variable level, unique-table load, cache traffic, GC/reorder event
//      counts, dead-node fraction) plus the process RSS.
//
// The census is pulled through a cooperative rendezvous rather than by
// touching manager internals from the sampler thread: the sampler raises a
// request flag (one relaxed load to poll), and the manager publishes an
// exact census at its next safe point — the same public-op boundary where
// GC and abort checks already live — so no BDD data structure is ever read
// concurrently with a mutation.
//
// Samples land in a fixed-capacity in-memory ring; when `jsonlPath` is set
// every sample is additionally spilled as one JSONL record (schema
// `hsis-prof-v1`, header line first), so even a run killed by the watchdog
// leaves a complete time series of *where* the time and the nodes went.
//
// Under HSIS_OBS_DISABLE the sampler never starts and every query returns
// an empty (but valid) document; the BddCensus struct and the rendezvous
// stay compiled so BddManager::census() remains usable as plain
// introspection.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hsis::obs::prof {

// ------------------------------------------------------------- BDD census

/// One exact population snapshot of a BddManager, computed by the manager
/// itself (owning thread, safe point) via BddManager::census(). All counts
/// refer to that single manager; when several managers are alive the last
/// publisher wins, which matches how the `bdd.*` registry gauges behave.
struct BddCensus {
  uint64_t seq = 0;   ///< publication sequence number (stamped on publish)
  uint64_t tNs = 0;   ///< monotonic publication time (stamped on publish)

  uint64_t liveNodes = 0;       ///< nodes currently in the unique table
  uint64_t allocatedNodes = 0;  ///< arena slots, terminals excluded
  uint64_t freeNodes = 0;       ///< free-list length
  /// Nodes in the unique table but unreachable from any externally
  /// referenced node — exactly what the next mark-and-sweep would reclaim.
  uint64_t deadNodes = 0;
  uint64_t uniqueBuckets = 0;   ///< unique-table bucket count
  uint64_t cacheEntries = 0;    ///< operation-cache capacity
  uint64_t cacheUsed = 0;       ///< occupied operation-cache slots
  uint64_t cacheLookups = 0;    ///< manager-lifetime totals (ITE/quantify/...)
  uint64_t cacheHits = 0;
  uint64_t gcRuns = 0;
  uint64_t reorderings = 0;
  uint64_t peakLiveNodes = 0;
  /// Shared-phase shape: how many per-thread computed caches are attached
  /// (cacheEntries/cacheUsed sum across all of them) and how many segment
  /// counters stripe the unique table (1 in serial mode).
  uint64_t threadCaches = 1;
  uint64_t uniqueShards = 1;
  /// Live nodes per variable level (index = level). Invariant:
  /// sum(levelNodes) == liveNodes.
  std::vector<uint64_t> levelNodes;

  [[nodiscard]] double deadFraction() const {
    return liveNodes == 0
               ? 0.0
               : static_cast<double>(deadNodes) / static_cast<double>(liveNodes);
  }
  [[nodiscard]] double uniqueLoad() const {
    return uniqueBuckets == 0 ? 0.0
                              : static_cast<double>(liveNodes) /
                                    static_cast<double>(uniqueBuckets);
  }
};

// Census rendezvous. Live in both build modes (it is control flow, like
// the abort flag): the sampler — or a test — raises the request, the
// manager answers at its next safe point with a single relaxed load of
// overhead on every other public op.
namespace detail {
extern std::atomic_bool g_censusRequested;
}  // namespace detail

[[nodiscard]] bool censusRequested() noexcept;
void requestCensus() noexcept;
/// Store `c` as the latest census (stamps seq/tNs) and lower the request
/// flag. Called by BddManager at a safe point.
void publishCensus(BddCensus c);
/// The most recently published census, or nullopt when none ever was.
[[nodiscard]] std::optional<BddCensus> latestCensus();
/// Forget the latest census and lower the request flag (tests).
void clearCensus();

// ---------------------------------------------------------------- sampler

/// One profiler tick.
struct ProfSample {
  uint64_t seq = 0;
  uint64_t tNs = 0;       ///< monotonic clock — aligns with span startNs
  double tSeconds = 0.0;  ///< since the profiler started
  uint64_t rssKb = 0;
  /// One `a;b;c` folded stack per thread that had open phase spans at
  /// sample time (outermost frame first). Empty when the process was idle.
  std::vector<std::string> folded;
  /// Latest published census; absent until a manager first publishes.
  /// `census->seq` dedups repeats when the engine outruns publication.
  std::optional<BddCensus> census;
  /// Census deltas vs the previous sample's census (0 on the first).
  uint64_t dCacheLookups = 0;
  uint64_t dCacheHits = 0;
  uint64_t dGcRuns = 0;
  uint64_t dReorderings = 0;

  /// One JSONL record, no trailing newline ({"kind": "sample", ...}).
  [[nodiscard]] std::string toJsonl() const;
};

struct ProfOptions {
  uint64_t intervalMs = 10;
  size_t ringCapacity = 1 << 14;  ///< samples kept in memory
  /// When set, every sample is appended to this file as it is taken
  /// (header line first), so the series survives any kind of death.
  std::string jsonlPath;
};

/// The background sampler. start() is idempotent (restarts with the new
/// options and a cleared ring); stop() joins the thread and flushes the
/// spill file. `sampleOnce()` is the exact per-tick body, public so tests
/// drive deterministic ticks without a thread or a clock.
class Profiler {
 public:
  static Profiler& instance();

  void start(ProfOptions options);
  void stop();
  [[nodiscard]] bool running() const;
  /// Drop all samples and folded-stack aggregates (ring stays allocated).
  void clear();

  /// Take one sample right now (also what the thread calls every tick).
  void sampleOnce();

  [[nodiscard]] uint64_t sampleCount() const;  ///< lifetime, incl. dropped
  [[nodiscard]] uint64_t droppedSamples() const;
  [[nodiscard]] std::vector<ProfSample> samples() const;  ///< ring copy

  /// Aggregated folded stacks: one `phaseA;phaseB;phaseC <count>` line per
  /// distinct stack, sorted, newline-terminated. Feed to flamegraph.pl.
  [[nodiscard]] std::string foldedStacks() const;
  /// The `{"schema": "hsis-prof-v1", "kind": "header", ...}` first line.
  [[nodiscard]] std::string headerJson() const;
  /// Header plus every ring sample as JSONL (for when no spill file ran).
  [[nodiscard]] std::string censusJsonl() const;

  bool writeFolded(const std::string& path) const;
  /// Writes header + ring samples. When a spill file was configured the
  /// spill already holds the full series; this still writes the ring view.
  bool writeCensusJsonl(const std::string& path) const;
  /// The configured spill path ("" when none). Lets writeProfileFiles
  /// avoid truncating a write-through spill with the shorter ring view.
  [[nodiscard]] std::string spillPath() const;

 private:
  Profiler() = default;
  struct Impl;
  Impl& impl() const;
};

/// The exit-time export used by the shared CLI flag handling: stop the
/// profiler (if running) and write `<base>.folded` plus
/// `<base>.census.jsonl`. Safe to call multiple times. Both files are
/// written even in a disabled build or after an aborted run (the census
/// file is then header-only), so downstream scripts never hit a missing
/// file; a write-through spill already at `<base>.census.jsonl` is left
/// untouched rather than truncated to the ring view.
void writeProfileFiles(const std::string& basePath);

}  // namespace hsis::obs::prof
