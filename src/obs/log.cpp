// Structured logger (leveled events -> ring + JSONL/human sinks) and the
// crash-safe flight recorder. See log.hpp for the design; the signal path
// at the bottom of this file touches only pre-serialized buffers with
// async-signal-safe calls.
#include "obs/log.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "obs/control.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "obs/tracectx.hpp"

namespace hsis::obs::log {

// ----------------------------------------------------------------- levels

namespace detail {
std::atomic<int> g_level{static_cast<int>(Level::Info)};
}  // namespace detail

std::string_view levelName(Level level) noexcept {
  switch (level) {
    case Level::Trace: return "trace";
    case Level::Debug: return "debug";
    case Level::Info: return "info";
    case Level::Warn: return "warn";
    case Level::Error: return "error";
    case Level::Off: return "off";
  }
  return "info";
}

Level parseLevel(std::string_view name) noexcept {
  for (Level l : {Level::Trace, Level::Debug, Level::Info, Level::Warn,
                  Level::Error, Level::Off}) {
    if (name == levelName(l)) return l;
  }
  return Level::Info;
}

void setLevel(Level level) noexcept {
  detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level level() noexcept {
  return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
}

// -------------------------------------------------------------- rendering

namespace {

void appendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendFieldValue(std::string& out, const Field& f) {
  switch (f.kind) {
    case Field::Kind::I64: out += std::to_string(f.i); break;
    case Field::Kind::U64: out += std::to_string(f.u); break;
    case Field::Kind::F64: out += jsonDouble(f.d); break;
    case Field::Kind::Bool: out += f.u ? "true" : "false"; break;
    case Field::Kind::Str: appendEscaped(out, f.s); break;
  }
}

uint64_t currentThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

/// Logger epoch: the first event's timestamp anchors the human sink's
/// relative seconds.
uint64_t epochNs() {
  static const uint64_t epoch = WallTimer::nowNs();
  return epoch;
}

// ------------------------------------------------------------------- ring
//
// Fixed slots written lock-free: a writer claims an index with one
// fetch_add, invalidates the slot (len = 0), copies the rendered line, and
// publishes the length with release. The crash handler reads lengths with
// acquire and write()s only slots that are whole. A torn slot (writer
// preempted mid-copy on another thread at crash time) stays invisible.

struct RingSlot {
  std::atomic<uint32_t> len{0};
  char data[log::kRingSlotBytes];
};

RingSlot g_ring[log::kRingSlots];
std::atomic<uint64_t> g_ringCursor{0};  // total accepted events

// ------------------------------------------------------------------ sinks

struct Sinks {
  std::mutex mu;
  std::ofstream jsonl;
  std::string jsonlPath;
  std::FILE* human = nullptr;
};

Sinks& sinks() {
  static Sinks* s = new Sinks;  // leaked, see registry.cpp
  return *s;
}

}  // namespace

void openJsonlSink(const std::string& path) {
  Sinks& s = sinks();
  std::lock_guard<std::mutex> lock(s.mu);
  s.jsonl.close();
  s.jsonlPath.clear();
  if (path.empty()) return;
  std::error_code ec;
  std::filesystem::path p(path);
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), ec);
  bool fresh = !std::filesystem::exists(p, ec) ||
               std::filesystem::file_size(p, ec) == 0;
  s.jsonl.open(path, std::ios::app);
  if (!s.jsonl) {
    std::fprintf(stderr, "log: cannot write %s\n", path.c_str());
    return;
  }
  s.jsonlPath = path;
  if (fresh) {
    s.jsonl << "{\"schema\": \"hsis-log-v1\", \"kind\": \"header\", "
               "\"enabled\": "
            << (kEnabled ? "true" : "false") << ", \"pid\": " << ::getpid()
            << "}\n";
  }
}

void setHumanSink(std::FILE* f) {
  Sinks& s = sinks();
  std::lock_guard<std::mutex> lock(s.mu);
  s.human = f;
}

void closeSinks() {
  Sinks& s = sinks();
  std::lock_guard<std::mutex> lock(s.mu);
  s.jsonl.close();
  s.jsonlPath.clear();
  s.human = nullptr;
}

// ------------------------------------------------------------------ record

void event(Level level, std::string_view component, std::string_view message,
           std::initializer_list<Field> fields) {
  if (!enabled(level)) return;
  // Epoch first: it latches on the first call, so sampling the clock before
  // it would put the first event a hair before its own epoch and wrap the
  // unsigned elapsed-seconds below.
  const uint64_t epoch = epochNs();
  const uint64_t tNs = WallTimer::nowNs();
  thread_local uint64_t tseq = 0;
  ++tseq;
  const uint64_t tid = currentThreadId();
  const uint64_t trace = currentTraceId();

  // One rendering serves the ring and both sinks.
  std::string line;
  line.reserve(192);
  line += "{\"kind\": \"event\", \"lvl\": \"";
  line += levelName(level);
  line += "\", \"t_ns\": " + std::to_string(tNs);
  line += ", \"tid\": " + std::to_string(tid);
  line += ", \"tseq\": " + std::to_string(tseq);
  if (trace != 0) line += ", \"trace\": \"" + traceIdHex(trace) + "\"";
  line += ", \"comp\": ";
  appendEscaped(line, component);
  line += ", \"msg\": ";
  appendEscaped(line, message);
  if (fields.size() != 0) {
    line += ", \"fields\": {";
    bool first = true;
    for (const Field& f : fields) {
      if (!first) line += ", ";
      first = false;
      appendEscaped(line, f.key);
      line += ": ";
      appendFieldValue(line, f);
    }
    line += "}";
  }
  line += "}";

  // Ring: claim a slot, invalidate, copy, publish. Lines that do not fit
  // are replaced by a short valid stand-in so the crash dump never carries
  // a torn JSON document.
  {
    std::string ringLine;
    const std::string* src = &line;
    if (line.size() > kRingSlotBytes) {
      ringLine = "{\"kind\": \"event\", \"lvl\": \"";
      ringLine += levelName(level);
      ringLine += "\", \"t_ns\": " + std::to_string(tNs);
      ringLine += ", \"tid\": " + std::to_string(tid);
      ringLine += ", \"tseq\": " + std::to_string(tseq);
      if (trace != 0) ringLine += ", \"trace\": \"" + traceIdHex(trace) + "\"";
      ringLine += ", \"comp\": ";
      appendEscaped(ringLine, component);
      ringLine += ", \"msg\": ";
      appendEscaped(ringLine, message.substr(0, 128));
      ringLine += ", \"truncated\": true}";
      src = &ringLine;
    }
    const uint64_t idx =
        g_ringCursor.fetch_add(1, std::memory_order_relaxed) % kRingSlots;
    RingSlot& slot = g_ring[idx];
    slot.len.store(0, std::memory_order_release);
    const size_t n = src->size() < kRingSlotBytes ? src->size() : kRingSlotBytes;
    std::memcpy(slot.data, src->data(), n);
    slot.len.store(static_cast<uint32_t>(n), std::memory_order_release);
  }

  Sinks& s = sinks();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.jsonl.is_open()) {
    s.jsonl << line << '\n';
    s.jsonl.flush();
  }
  if (s.human != nullptr) {
    std::string human;
    human.reserve(128);
    human += "[hsis ";
    human += levelName(level);
    char t[32];
    std::snprintf(t, sizeof t, " +%.3fs ",
                  static_cast<double>(tNs - epoch) * 1e-9);
    human += t;
    human += component;
    human += "] ";
    human += message;
    for (const Field& f : fields) {
      human += ' ';
      human += f.key;
      human += '=';
      switch (f.kind) {
        case Field::Kind::I64: human += std::to_string(f.i); break;
        case Field::Kind::U64: human += std::to_string(f.u); break;
        case Field::Kind::F64: {
          char buf[32];
          std::snprintf(buf, sizeof buf, "%g", f.d);
          human += buf;
          break;
        }
        case Field::Kind::Bool: human += f.u ? "true" : "false"; break;
        case Field::Kind::Str: human += f.s; break;
      }
    }
    std::fprintf(s.human, "%s\n", human.c_str());
  }
}

// -------------------------------------------------------------- ring reads

std::vector<std::string> ringLines() {
  std::vector<std::string> out;
  const uint64_t total = g_ringCursor.load(std::memory_order_acquire);
  const uint64_t count = total < kRingSlots ? total : kRingSlots;
  const uint64_t first = total - count;
  out.reserve(count);
  for (uint64_t i = first; i < total; ++i) {
    RingSlot& slot = g_ring[i % kRingSlots];
    uint32_t n = slot.len.load(std::memory_order_acquire);
    if (n == 0 || n > kRingSlotBytes) continue;
    std::string line(slot.data, n);
    // A writer may have recycled the slot mid-copy; only keep lines whose
    // length is still the one we read.
    if (slot.len.load(std::memory_order_acquire) == n)
      out.push_back(std::move(line));
  }
  return out;
}

void clearRing() {
  for (RingSlot& slot : g_ring) slot.len.store(0, std::memory_order_release);
  g_ringCursor.store(0, std::memory_order_release);
}

uint64_t eventCount() {
  return g_ringCursor.load(std::memory_order_relaxed);
}

namespace detail {

const char* ringSlot(uint64_t index, uint32_t* len) noexcept {
  if (index >= kRingSlots) {
    *len = 0;
    return nullptr;
  }
  *len = g_ring[index].len.load(std::memory_order_acquire);
  return g_ring[index].data;
}

}  // namespace detail

}  // namespace hsis::obs::log

// --------------------------------------------------------- flight recorder

namespace hsis::obs::flight {

namespace {

/// Double-buffered pre-rendered block: writers render into the inactive
/// half (serialized by pubMu; publish never runs in signal context) and
/// flip; the signal handler reads whichever half is published.
/// `active == -1` means never published.
struct PreRendered {
  static constexpr size_t kCap = 16384;
  char buf[2][kCap];
  std::atomic<uint32_t> len[2]{};
  std::atomic<int> active{-1};
  std::mutex pubMu;

  void publish(const std::string& s) {
    std::lock_guard<std::mutex> lock(pubMu);
    int cur = active.load(std::memory_order_relaxed);
    int next = cur == 0 ? 1 : 0;
    size_t n = s.size() < kCap ? s.size() : 0;  // oversized -> drop, stay valid
    len[next].store(0, std::memory_order_release);
    std::memcpy(buf[next], s.data(), n);
    len[next].store(static_cast<uint32_t>(n), std::memory_order_release);
    active.store(next, std::memory_order_release);
  }
};

struct FlightState {
  std::atomic<bool> installed{false};
  std::atomic<bool> dumping{false};
  // Pre-rendered at install/identity time. Fixed buffers so the signal
  // path never touches a std::string.
  char path[512];
  char headerPrefix[1024];  // up to but excluding the "reason" value
  size_t headerPrefixLen = 0;
  long pageKb = 4;
  PreRendered phases;
  PreRendered census;
  std::mutex mu;  // guards install/uninstall/identity (cold)
  std::string dir;
  std::string driver;
};

FlightState& state() {
  static FlightState* s = new FlightState;  // leaked, see registry.cpp
  return *s;
}

// ---- async-signal-safe formatting helpers

size_t safeAppend(char* dst, size_t cap, size_t at, const char* s, size_t n) {
  if (at >= cap) return at;
  size_t room = cap - at;
  if (n > room) n = room;
  std::memcpy(dst + at, s, n);
  return at + n;
}

size_t safeAppendStr(char* dst, size_t cap, size_t at, const char* s) {
  return safeAppend(dst, cap, at, s, std::strlen(s));
}

size_t safeAppendU64(char* dst, size_t cap, size_t at, uint64_t v) {
  char tmp[24];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) {
    if (at < cap) dst[at++] = tmp[n - 1 - i];
  }
  return at;
}

/// 16 zero-padded lowercase hex digits (the trace-id wire format), without
/// snprintf — safe in a handler.
size_t safeAppendHex16(char* dst, size_t cap, size_t at, uint64_t v) {
  static const char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    if (at < cap) dst[at++] = kHex[(v >> shift) & 0xf];
  }
  return at;
}

/// Current RSS in KiB via /proc/self/statm (field 2, pages). Only
/// open/read/close — safe in a handler.
uint64_t signalSafeRssKb(long pageKb) {
  int fd = ::open("/proc/self/statm", O_RDONLY);
  if (fd < 0) return 0;
  char buf[128];
  ssize_t n = ::read(fd, buf, sizeof buf - 1);
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  // skip first field (size), parse second (resident pages)
  char* p = buf;
  while (*p != '\0' && *p != ' ') ++p;
  while (*p == ' ') ++p;
  uint64_t pages = 0;
  while (*p >= '0' && *p <= '9') pages = pages * 10 + (*p++ - '0');
  return pages * static_cast<uint64_t>(pageKb);
}

void writeAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w <= 0) return;
    off += static_cast<size_t>(w);
  }
}

/// The dump writer shared by the signal handler and the normal-context
/// path: open/write/close over pre-serialized buffers only.
void writeDump(const char* reason) {
  FlightState& st = state();
  int fd = ::open(st.path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;

  // Header: pre-rendered prefix + reason + live RSS.
  char head[1400];
  size_t at = 0;
  at = safeAppend(head, sizeof head, at, st.headerPrefix, st.headerPrefixLen);
  // reason is trusted internal text (signal name / watchdog message); strip
  // the two JSON-breaking characters instead of full escaping.
  for (const char* p = reason; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\' || static_cast<unsigned char>(*p) < 0x20)
      continue;
    if (at < sizeof head) head[at++] = *p;
  }
  at = safeAppendStr(head, sizeof head, at, "\", \"rss_kb\": ");
  at = safeAppendU64(head, sizeof head, at, signalSafeRssKb(st.pageKb));
  at = safeAppendStr(head, sizeof head, at, ", \"ring_events_total\": ");
  at = safeAppendU64(head, sizeof head, at, log::eventCount());
  at = safeAppendStr(head, sizeof head, at, "}\n");
  writeAll(fd, head, at);

  // In-flight request traces: one line per bound TraceContext, read from
  // the lock-free active-trace table, so a crash mid-request names the
  // request(s) that were running. Same hex format as the log events'
  // "trace" field.
  for (size_t i = 0; i < trace_detail::kMaxActiveTraces; ++i) {
    uint64_t tid = 0, traceId = 0;
    if (!trace_detail::activeTraceSlot(i, &tid, &traceId)) continue;
    char line[128];
    size_t n = 0;
    n = safeAppendStr(line, sizeof line, n,
                      "{\"kind\": \"active_trace\", \"tid\": ");
    n = safeAppendU64(line, sizeof line, n, tid);
    n = safeAppendStr(line, sizeof line, n, ", \"trace\": \"");
    n = safeAppendHex16(line, sizeof line, n, traceId);
    n = safeAppendStr(line, sizeof line, n, "\"}\n");
    writeAll(fd, line, n);
  }

  // Phase stacks, then census (each a pre-rendered, newline-terminated
  // block; -1 = never published).
  for (PreRendered* pr : {&st.phases, &st.census}) {
    int a = pr->active.load(std::memory_order_acquire);
    if (a < 0) continue;
    uint32_t n = pr->len[a].load(std::memory_order_acquire);
    if (n > 0 && n <= PreRendered::kCap) writeAll(fd, pr->buf[a], n);
  }

  // The event ring, oldest slot first, via the signal-safe raw accessor
  // (the public copy API allocates). Slots being rewritten at crash time
  // read len == 0 and are skipped.
  const uint64_t cursor = log::eventCount();
  const uint64_t total =
      cursor < log::kRingSlots ? cursor : log::kRingSlots;
  for (uint64_t i = cursor - total; i < cursor; ++i) {
    uint32_t n = 0;
    const char* data = log::detail::ringSlot(i % log::kRingSlots, &n);
    if (data == nullptr || n == 0 || n > log::kRingSlotBytes) continue;
    writeAll(fd, data, n);
    writeAll(fd, "\n", 1);
  }
  ::close(fd);
}

void handleSignal(int sig) {
  FlightState& st = state();
  // One dump per process; a fault inside the dump falls through to the
  // default action immediately.
  if (!st.dumping.exchange(true)) {
    const char* name = sig == SIGSEGV   ? "SIGSEGV"
                       : sig == SIGABRT ? "SIGABRT"
                       : sig == SIGBUS  ? "SIGBUS"
                                        : "signal";
    char reason[64];
    size_t at = 0;
    at = safeAppendStr(reason, sizeof reason - 1, at, "crash: ");
    at = safeAppendStr(reason, sizeof reason - 1, at, name);
    reason[at] = '\0';
    writeDump(reason);
    ledger::detail::writeArmedCrashRecord(name);
  }
  // SA_RESETHAND restored the default handler; re-deliver so the process
  // dies with the original signal status (death tests assert on it).
  ::raise(sig);
}

}  // namespace

void install(const std::string& dir, const std::string& driver) {
  FlightState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  st.dir = dir;
  if (!driver.empty()) st.driver = driver;
  std::string path =
      (std::filesystem::path(dir) /
       ("hsis-flight-" + std::to_string(::getpid()) + ".jsonl"))
          .string();
  std::snprintf(st.path, sizeof st.path, "%s", path.c_str());
  st.pageKb = ::sysconf(_SC_PAGESIZE) / 1024;
  if (st.pageKb <= 0) st.pageKb = 4;

  // Pre-render the header up to (and including) the opening quote of the
  // "reason" value; writeDump appends the reason, RSS, and closes the
  // object.
  const char* sha = std::getenv("HSIS_GIT_SHA");
  std::string prefix = "{\"schema\": \"hsis-flight-v1\", \"kind\": \"header\"";
  prefix += ", \"pid\": " + std::to_string(::getpid());
  prefix += ", \"obs_enabled\": ";
  prefix += kEnabled ? "true" : "false";
  prefix += ", \"driver\": \"" + st.driver + "\"";
  prefix += ", \"git_sha\": \"" + std::string(sha != nullptr ? sha : "unknown") +
            "\"";
  prefix += ", \"reason\": \"";
  st.headerPrefixLen = prefix.size() < sizeof st.headerPrefix
                           ? prefix.size()
                           : sizeof st.headerPrefix;
  std::memcpy(st.headerPrefix, prefix.data(), st.headerPrefixLen);

  if (!st.installed.exchange(true)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = handleSignal;
    sa.sa_flags = SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    for (int sig : {SIGSEGV, SIGABRT, SIGBUS}) ::sigaction(sig, &sa, nullptr);
  }
  st.dumping.store(false);
}

bool installed() noexcept {
  return state().installed.load(std::memory_order_relaxed);
}

namespace {

// $HSIS_FLIGHT_DIR arms the recorder in ANY binary linking hsis_obs —
// including the unit-test runner, which never goes through the driver
// bootstrap. This is what lets CI collect dumps from a crashed test. A
// later install() (from initDriverObs) re-points the directory and sets
// the driver name.
const bool g_envAutoInstalled = [] {
  const char* dir = std::getenv("HSIS_FLIGHT_DIR");
  if (dir != nullptr && *dir != '\0') install(dir);
  return true;
}();

}  // namespace

std::string dumpPath() {
  FlightState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.installed.load() ? std::string(st.path) : std::string();
}

bool dump(std::string_view reason) {
  FlightState& st = state();
  if (!st.installed.load(std::memory_order_acquire)) return false;
  // Refresh the pre-rendered phase stacks from normal context so the dump
  // reflects "now" even if no span moved since the last publish.
  if (kEnabled) {
    std::string block;
    for (const PhaseStackSnapshot& snap : phaseStacks()) {
      block += "{\"kind\": \"phase_stack\", \"tid\": " +
               std::to_string(snap.threadId) + ", \"frames\": \"" +
               snap.folded() + "\"}\n";
    }
    if (!block.empty()) detail::publishPhaseLines(block);
  }
  std::string r(reason);
  writeDump(r.c_str());
  return true;
}

void uninstall() {
  FlightState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  if (st.installed.exchange(false)) {
    for (int sig : {SIGSEGV, SIGABRT, SIGBUS}) ::signal(sig, SIG_DFL);
  }
  st.dir.clear();
  st.path[0] = '\0';
}

namespace detail {

void publishPhaseLines(const std::string& lines) {
  state().phases.publish(lines);
}

void publishCensusLine(const std::string& line) {
  state().census.publish(line);
}

bool wantsPublish() noexcept { return installed(); }

}  // namespace detail

}  // namespace hsis::obs::flight
