// hsis::obs control surfaces — the parts of the observability subsystem
// that act on a run instead of merely recording it:
//
//  - a process-wide cooperative ABORT FLAG with a reason and phase. Long
//    loops (BDD manager safe points, reachability, CTL fixpoints, the LC
//    hull) poll `checkAbort()`; a breach unwinds via `AbortedError` so
//    callers can still dump a valid stats snapshot with `"aborted"` set.
//  - a RESOURCE WATCHDOG thread that trips the abort flag when a
//    wall-clock or peak-RSS limit is exceeded.
//  - a HEARTBEAT reporter thread that emits a compact one-line progress
//    record (stderr table or JSONL) every N ms, with deltas, so a stuck
//    `fsm.reach` or `lc.hull` is visible while it runs.
//  - shared `--heartbeat/--timeout-s/--mem-limit-mb/--stats-json` flag
//    handling for every driver (bench drivers, hsis_cli, hsis_bench).
//
// Unlike the metrics/span instrumentation, everything here stays LIVE
// under HSIS_OBS_DISABLE: aborting a runaway run is control flow, not
// measurement. In a disabled build the heartbeat still ticks (wall time
// and RSS are real; registry-derived fields read zero) and the watchdog
// still aborts — only the breach *phase* is empty, because phase tracking
// rides on the compiled-out spans.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/ledger.hpp"

namespace hsis::obs {

// ------------------------------------------------------------ abort flag

struct AbortInfo {
  std::string reason;  ///< e.g. "wall-clock limit 1.0s exceeded (1.05s)"
  std::string phase;   ///< innermost active span when the flag was raised
};

/// Thrown by `checkAbort()` at a cooperative safe point after an abort was
/// requested. Catch it at the driver level, dump stats, exit cleanly.
class AbortedError : public std::runtime_error {
 public:
  AbortedError(std::string reason, std::string phase);
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }
  [[nodiscard]] const std::string& phase() const noexcept { return phase_; }

 private:
  std::string reason_;
  std::string phase_;
};

/// A per-task cancellation slot for multi-tenant processes (the hsis_serve
/// worker pool): one slot per worker, bound to the thread running its
/// requests. `checkAbort()` honors both the process-wide flag and the slot
/// bound to the calling thread, so a per-request watchdog can abort one
/// worker's request without unwinding its neighbors. Slots are reusable:
/// clear() re-arms the slot for the next request.
class TaskAbort {
 public:
  /// Raise this slot's flag. First request wins until clear().
  void request(std::string_view reason, std::string_view phase = {});
  /// Lower the flag and forget the stored reason (between requests).
  void clear();
  /// Hot-path query: one relaxed load.
  [[nodiscard]] bool requested() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }
  /// The stored reason/phase, or nullopt when not requested.
  [[nodiscard]] std::optional<AbortInfo> info() const;

 private:
  std::atomic<bool> flag_{false};
  mutable std::mutex mu_;
  std::string reason_;
  std::string phase_;
};

namespace detail {
extern std::atomic<bool> g_abortRequested;
extern thread_local TaskAbort* t_taskAbort;
}  // namespace detail

/// Bind `slot` as the calling thread's task-abort slot (nullptr unbinds).
/// Safe points reached on this thread then observe slot aborts too. The
/// slot must outlive the binding.
void bindTaskAbort(TaskAbort* slot);
[[nodiscard]] TaskAbort* boundTaskAbort();

/// Hot-path query: a relaxed load of the process flag plus, when the
/// calling thread has a bound task slot, one more relaxed load.
inline bool abortRequested() noexcept {
  if (detail::g_abortRequested.load(std::memory_order_relaxed)) return true;
  TaskAbort* slot = detail::t_taskAbort;
  return slot != nullptr && slot->requested();
}

/// Raise the flag. First request wins; later ones are ignored. `phase`
/// defaults to the currently active phase span.
void requestAbort(std::string_view reason, std::string_view phase = {});
/// Lower the flag and forget the stored reason (tests, per-case resets).
void clearAbort();
/// The stored reason/phase, or nullopt when no abort is pending.
std::optional<AbortInfo> abortInfo();

[[noreturn]] void throwAborted();  ///< cold path of checkAbort()

/// Cooperative cancellation point: throws AbortedError iff an abort has
/// been requested. Costs one relaxed load when it has not.
inline void checkAbort() {
  if (abortRequested()) throwAborted();
}

// ----------------------------------------------------------- phase stack
//
// A live view of the active phase spans, kept per thread so the watchdog,
// heartbeat, and sampling profiler can say *what* each thread was running.
// Fed by Span construction/destruction; empty under HSIS_OBS_DISABLE.

namespace detail {
void notePhaseStart(uint64_t threadId, uint64_t spanId, std::string_view name);
void notePhaseEnd(uint64_t threadId, uint64_t spanId);
}  // namespace detail

/// Name of the innermost active phase span across all threads (the most
/// recently started still-open one), or "" if none.
std::string currentPhase();

/// One thread's open phase spans at a point in time, outermost first.
/// `threadId` matches SpanSample::threadId (the tracer's hashed tid).
struct PhaseStackSnapshot {
  uint64_t threadId = 0;
  std::vector<std::string> frames;

  /// The flamegraph folded form: `outer;middle;inner`.
  [[nodiscard]] std::string folded() const;
};

/// Snapshot every thread's live phase stack (threads with no open span are
/// omitted), ordered by thread id. This is what the sampling profiler
/// (obs/prof) records every tick.
std::vector<PhaseStackSnapshot> phaseStacks();

// --------------------------------------------------------- process memory

/// Current resident set size in KiB (Linux /proc/self/status VmRSS;
/// 0 where unavailable).
uint64_t currentRssKb();
/// Peak resident set size in KiB (VmHWM; 0 where unavailable).
uint64_t peakRssKb();

// -------------------------------------------------------------- heartbeat

/// One progress tick: registry totals plus deltas since the previous tick.
/// Field selection follows what a stuck verification run needs first:
/// where it is (phase, reach/hull iterations), how big the frontier is,
/// and whether memory is still growing (live nodes, RSS).
struct HeartbeatRecord {
  uint64_t seq = 0;
  double tSeconds = 0.0;  ///< since the source was created
  std::string phase;
  uint64_t rssKb = 0;
  int64_t liveNodes = 0;         ///< bdd.unique.size
  uint64_t nodesCreated = 0;     ///< bdd.nodes.created (total)
  uint64_t dNodesCreated = 0;    ///< ... delta this window
  uint64_t cacheLookups = 0;     ///< bdd.cache.lookups (total)
  uint64_t cacheHits = 0;        ///< bdd.cache.hits (total)
  double cacheHitRate = 0.0;     ///< hits/lookups over the delta window
  uint64_t reachIterations = 0;  ///< fsm.reach.iterations (total)
  uint64_t dReachIterations = 0;
  int64_t frontierNodes = 0;     ///< fsm.reach.frontier.last
  uint64_t hullIterations = 0;   ///< lc.hull.iterations (total)
  uint64_t dHullIterations = 0;

  /// `[hsis-hb 3] t=1.5s phase=fsm.reach rss=120MB live=45k ...`
  [[nodiscard]] std::string toTableLine() const;
  /// One JSON object, no trailing newline.
  [[nodiscard]] std::string toJsonl() const;
};

/// Produces HeartbeatRecords with correct deltas between successive
/// next() calls. Separate from the reporter thread so tests can drive
/// ticks deterministically.
class HeartbeatSource {
 public:
  HeartbeatSource();
  HeartbeatRecord next();

 private:
  uint64_t startNs_;
  uint64_t seq_ = 0;
  uint64_t lastNodesCreated_ = 0;
  uint64_t lastLookups_ = 0;
  uint64_t lastHits_ = 0;
  uint64_t lastReach_ = 0;
  uint64_t lastHull_ = 0;
};

struct HeartbeatOptions {
  uint64_t intervalMs = 1000;
  /// Append JSONL records here; empty = one-line table records on stderr.
  std::string jsonlPath;
};

/// The opt-in background reporter thread. start() is idempotent (restarts
/// with the new options); stop() joins the thread.
class Heartbeat {
 public:
  static Heartbeat& instance();
  void start(HeartbeatOptions options);
  void stop();
  [[nodiscard]] bool running() const;

 private:
  Heartbeat() = default;
  struct Impl;
  Impl& impl() const;
};

// --------------------------------------------------------------- watchdog

struct WatchdogOptions {
  double wallLimitSeconds = 0.0;  ///< 0 = no wall-clock limit
  uint64_t memLimitKb = 0;        ///< RSS limit; 0 = none
  uint64_t pollMs = 50;
  /// Poll current RSS (VmRSS) instead of peak RSS (VmHWM). VmHWM is
  /// monotonic over the process lifetime, so a watchdog re-armed per
  /// request would trip forever once any earlier request peaked past the
  /// limit — per-request budgets want the current level.
  bool useCurrentRss = false;
  /// Breach target: raise this task slot instead of the process-wide
  /// abort flag (the hsis_serve per-request budget path).
  TaskAbort* target = nullptr;
};

/// Background thread that polls wall clock and RSS against the registered
/// limits and raises the abort flag (process-wide or a TaskAbort slot) on
/// breach, then parks. The wall clock starts at start().
///
/// Watchdogs are re-armable: start() after a stop — or after a breach —
/// begins a fresh countdown with no state carried over (fired() resets,
/// the wall clock restarts). `instance()` is the shared process-level
/// watchdog driven by --timeout-s/--mem-limit-mb; drivers with per-request
/// budgets construct their own instances.
class Watchdog {
 public:
  Watchdog();
  ~Watchdog();  ///< stops (joins) a running watchdog
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  static Watchdog& instance();
  void start(WatchdogOptions options);
  void stop();
  /// Armed and neither fired nor stopped yet.
  [[nodiscard]] bool running() const;
  /// True when the watchdog breached a limit since the last start().
  [[nodiscard]] bool fired() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// -------------------------------------------------------------- CLI flags

/// The shared observability flag set every driver understands:
///   --stats-json PATH        dump the hsis-obs-v1 snapshot at exit
///   --heartbeat MS           start the heartbeat reporter (stderr)
///   --heartbeat-file F       ... appending JSONL records to F instead
///   --timeout-s S            watchdog wall-clock limit
///   --mem-limit-mb M         watchdog peak-RSS limit
///   --profile                start the sampling profiler (obs/prof);
///                            writes hsis-prof.folded + hsis-prof.census.jsonl
///   --profile-out BASE       ... writing BASE.folded + BASE.census.jsonl
///   --profile-interval-ms N  sampler interval (default 10 ms)
///   --log-level LVL          trace|debug|info|warn|error|off; also turns
///                            on human-readable log lines on stderr
///   --log-file F             append hsis-log-v1 JSONL events to F
///   --ledger PATH            run-ledger file ("none" disables; default
///                            $HSIS_LEDGER or ~/.hsis/ledger.jsonl)
///   --flight-dir DIR         install the crash flight recorder, dumps
///                            land in DIR (default $HSIS_FLIGHT_DIR)
struct ObsCliOptions {
  std::string statsJsonPath;
  uint64_t heartbeatMs = 0;
  std::string heartbeatFile;
  double timeoutSeconds = 0.0;
  uint64_t memLimitMb = 0;
  bool profile = false;            ///< --profile or --profile-out seen
  std::string profileBasePath;     ///< empty = default "hsis-prof"
  uint64_t profileIntervalMs = 0;  ///< 0 = profiler default (10 ms)
  std::string logLevel;            ///< "" = default (info, ring only)
  std::string logFile;             ///< "" = no JSONL log sink
  std::string ledgerPath;          ///< "" = default resolution, "none" = off
  std::string flightDir;           ///< "" = $HSIS_FLIGHT_DIR or off
  /// --cov-json FILE: where the driver writes its hsis-cov-v1 coverage
  /// report. Parsed here so every driver spells the flag the same way, but
  /// always driver-owned (obs cannot depend on cov): the exit exporters
  /// never touch it.
  std::string covJsonPath;
};

/// Scan argv, remove every recognized flag (and value), return the result.
ObsCliOptions stripObsCliFlags(int& argc, char** argv);
/// Start heartbeat/watchdog/profiler/logger/flight recorder per the
/// options (names the calling thread "main" for trace exports) and
/// register the exit exporters.
void applyObsCliOptions(const ObsCliOptions& options);
/// Stop (join) the heartbeat, watchdog, and profiler threads if running.
void stopObsThreads();

// ------------------------------------------------------------ driver setup
//
// The one-call observability bootstrap every driver shares (bench_*,
// hsis_bench, hsis_cli) — previously a per-driver header copy
// (bench/obs_dump.hpp). It strips the shared flags, applies them, arms the
// run-ledger record for this process, and registers the EXIT EXPORTERS,
// which run exactly once, in this fixed order (see docs/observability.md):
//
//   1. stop the reporter threads (heartbeat, watchdog, sampling profiler)
//      so nothing mutates the registry mid-export;
//   2. profiler files (BASE.folded + BASE.census.jsonl) when --profile ran;
//   3. the --stats-json snapshot + its .trace.json Chrome view (unless the
//      driver owns that flag itself, e.g. hsis_bench's baseline);
//   4. the run-ledger record (result, wall, peak RSS, abort state), then
//      the crash-armed record is disarmed.
//
// The flight recorder is NOT an exit exporter: it fires at abort/crash
// time (requestAbort or a fatal signal), before this sequence begins.
// Abort paths unwind via AbortedError into driverGuard, which records the
// abort and returns exit code 3; the atexit exporters then still run.

struct DriverObsInit {
  std::string driverName;    ///< ledger "driver" field, e.g. "bench_reach"
  bool ownStatsJson = false; ///< driver interprets --stats-json itself
  bool ownLedger = false;    ///< driver appends per-case ledger records
};

/// Strip + apply the shared flags and set up the exit exporters for a
/// driver process. Call first thing in main, before other arg parsing.
ObsCliOptions initDriverObs(int& argc, char** argv,
                            const DriverObsInit& init);

/// The resolved ledger path for this process ("" = disabled). Valid after
/// initDriverObs; for drivers that append their own per-case records.
std::string activeLedgerPath();
/// A ledger record pre-filled with this process's run identity (run id,
/// timestamp, driver, git sha, config, obs_enabled). Valid after
/// initDriverObs.
ledger::Record baseLedgerRecord();
/// Set the subject / result of the process-level ledger record appended by
/// the exit exporters. Drivers call this once the outcome is known; the
/// default is "completed" (or "aborted"/reason when the abort flag is up).
void noteRunSubject(std::string_view subject);
void noteRunResult(std::string_view result, std::string_view detail,
                   std::string_view digest = {});

/// Best-effort commit id: $HSIS_GIT_SHA (set by CI) or `git rev-parse
/// --short HEAD`, else "unknown".
std::string gitSha();

/// Run the driver body; on a watchdog/user abort print what happened,
/// record the abort in the run ledger, and return exit code 3 (the exit
/// exporters still write every artifact, with "aborted" set).
template <typename Fn>
int driverGuard(Fn&& body) {
  try {
    return body();
  } catch (const AbortedError& e) {
    std::fflush(stdout);
    std::fprintf(stderr, "\naborted: %s", e.reason().c_str());
    if (!e.phase().empty()) std::fprintf(stderr, " (in %s)", e.phase().c_str());
    std::fprintf(stderr, "\n");
    noteRunResult("aborted", e.reason());
    return 3;
  }
}

}  // namespace hsis::obs
