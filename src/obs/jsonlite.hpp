// Just enough recursive-descent JSON to read back this repo's own exports
// (hsis-obs-v1 snapshots, BENCH_*.json, heartbeat JSONL) without pulling
// in a dependency. Shared by perf_compare, hsis_bench, and the tests.
// Throws std::runtime_error on malformed input.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hsis::obs::jsonlite {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<Array>, std::shared_ptr<Object>>
      v;

  [[nodiscard]] bool isNull() const {
    return std::holds_alternative<std::nullptr_t>(v);
  }
  [[nodiscard]] bool isObject() const {
    return std::holds_alternative<std::shared_ptr<Object>>(v);
  }
  [[nodiscard]] bool isArray() const {
    return std::holds_alternative<std::shared_ptr<Array>>(v);
  }
  [[nodiscard]] bool isNumber() const {
    return std::holds_alternative<double>(v);
  }
  [[nodiscard]] bool isString() const {
    return std::holds_alternative<std::string>(v);
  }
  [[nodiscard]] const Object& object() const {
    return *std::get<std::shared_ptr<Object>>(v);
  }
  [[nodiscard]] const Array& array() const {
    return *std::get<std::shared_ptr<Array>>(v);
  }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] bool boolean() const { return std::get<bool>(v); }
};

/// Parse a complete JSON document (throws std::runtime_error on error).
Value parse(std::string_view text);

/// Object member lookup that returns nullptr instead of throwing.
const Value* find(const Object& obj, const std::string& key);

}  // namespace hsis::obs::jsonlite
