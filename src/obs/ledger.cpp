// Run ledger: JSONL append with flock, jsonlite-based queries, diff /
// regression analysis, report rendering, and the crash-armed record. See
// ledger.hpp. Compiled identically under HSIS_OBS_DISABLE.
#include "obs/ledger.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "obs/jsonlite.hpp"
#include "obs/obs.hpp"

namespace hsis::obs::ledger {

// ---------------------------------------------------------------- identity

std::string runId() {
  static const std::string id = [] {
    return std::to_string(static_cast<long long>(::time(nullptr))) + "-" +
           std::to_string(::getpid());
  }();
  return id;
}

std::string timestampUtc() {
  std::time_t now = ::time(nullptr);
  std::tm tm{};
  ::gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string digestOf(std::string_view text) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

// --------------------------------------------------------------- rendering

namespace {

void appendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string toJsonl(const Record& r) {
  std::string out;
  out.reserve(320);
  out += "{\"schema\": \"hsis-ledger-v1\", \"run_id\": ";
  appendEscaped(out, r.runId);
  out += ", \"time\": ";
  appendEscaped(out, r.time);
  out += ", \"driver\": ";
  appendEscaped(out, r.driver);
  out += ", \"subject\": ";
  appendEscaped(out, r.subject);
  out += ", \"result\": ";
  appendEscaped(out, r.result);
  out += ", \"detail\": ";
  appendEscaped(out, r.detail);
  out += ", \"digest\": ";
  appendEscaped(out, r.digest);
  out += ", \"wall_s\": " + jsonDouble(r.wallSeconds);
  out += ", \"peak_rss_kb\": " + std::to_string(r.peakRssKb);
  out += ", \"git_sha\": ";
  appendEscaped(out, r.gitSha);
  out += ", \"config\": ";
  appendEscaped(out, r.config);
  // Request-telemetry fields are optional so non-serve records (and every
  // record written before them) keep their exact shape. They must stay
  // BEFORE "signal": armCrashRecord splits the line at `"signal": null}`.
  if (!r.traceId.empty()) {
    out += ", \"trace_id\": ";
    appendEscaped(out, r.traceId);
  }
  if (!r.stages.empty()) {
    out += ", \"stages\": {";
    bool first = true;
    for (const auto& [name, micros] : r.stages) {
      if (!first) out += ", ";
      first = false;
      appendEscaped(out, name);
      out += ": " + std::to_string(micros);
    }
    out += "}";
  }
  if (r.hasCoverage) {
    out += ", \"coverage\": {\"state_fraction\": " +
           jsonDouble(r.covStateFraction);
    out += ", \"values_reached\": " + std::to_string(r.covValuesReached);
    out += ", \"values_total\": " + std::to_string(r.covValuesTotal);
    out += ", \"bins_hit\": " + std::to_string(r.covBinsHit);
    out += ", \"bins_total\": " + std::to_string(r.covBinsTotal);
    out += "}";
  }
  if (!r.cexPath.empty()) {
    out += ", \"cex\": {\"path\": ";
    appendEscaped(out, r.cexPath);
    out += ", \"replay\": ";
    appendEscaped(out, r.cexReplay);
    out += "}";
  }
  out += ", \"obs_enabled\": ";
  out += r.obsEnabled ? "true" : "false";
  out += ", \"signal\": ";
  if (r.signalName.empty()) {
    out += "null";
  } else {
    appendEscaped(out, r.signalName);
  }
  out += "}";
  return out;
}

// ------------------------------------------------------------------ append

std::string resolvePath(const std::string& flagValue) {
  std::string path = flagValue;
  if (path.empty()) {
    if (const char* env = std::getenv("HSIS_LEDGER"); env != nullptr)
      path = env;
  }
  if (path == "none") return "";
  if (!path.empty()) return path;
  const char* home = std::getenv("HOME");
  if (home == nullptr || *home == '\0') return "";
  return std::string(home) + "/.hsis/ledger.jsonl";
}

bool append(const std::string& path, const Record& record) {
  if (path.empty()) return true;
  std::error_code ec;
  std::filesystem::path p(path);
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), ec);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    std::fprintf(stderr, "ledger: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line = toJsonl(record) + "\n";
  // flock serializes whole-line appends across processes; O_APPEND already
  // makes the single write atomic on local filesystems, the lock covers
  // network mounts and any future multi-write records.
  (void)::flock(fd, LOCK_EX);
  size_t off = 0;
  bool ok = true;
  while (off < line.size()) {
    ssize_t w = ::write(fd, line.data() + off, line.size() - off);
    if (w <= 0) {
      ok = false;
      break;
    }
    off += static_cast<size_t>(w);
  }
  (void)::flock(fd, LOCK_UN);
  ::close(fd);
  if (!ok) std::fprintf(stderr, "ledger: short write to %s\n", path.c_str());
  return ok;
}

// ------------------------------------------------------------------- query

namespace {

bool parseLine(std::string_view line, Record& r) {
  namespace jl = jsonlite;
  jl::Value root;
  try {
    root = jl::parse(line);
  } catch (const std::exception&) {
    return false;
  }
  if (!root.isObject()) return false;
  const jl::Object& o = root.object();
  const jl::Value* schema = jl::find(o, "schema");
  if (schema == nullptr || !schema->isString() ||
      schema->str() != "hsis-ledger-v1")
    return false;
  auto str = [&](const char* key, std::string& dst) {
    if (const jl::Value* v = jl::find(o, key); v != nullptr && v->isString())
      dst = v->str();
  };
  str("run_id", r.runId);
  str("time", r.time);
  str("driver", r.driver);
  str("subject", r.subject);
  str("result", r.result);
  str("detail", r.detail);
  str("digest", r.digest);
  str("git_sha", r.gitSha);
  str("config", r.config);
  str("trace_id", r.traceId);
  str("signal", r.signalName);
  if (const jl::Value* v = jl::find(o, "stages");
      v != nullptr && v->isObject()) {
    // jsonlite objects are key-sorted maps; stage-name keys happen to sort
    // usefully, but consumers must not rely on pipeline order here.
    for (const auto& [name, val] : v->object()) {
      if (val.isNumber())
        r.stages.emplace_back(name, static_cast<uint64_t>(val.number()));
    }
  }
  if (const jl::Value* v = jl::find(o, "coverage");
      v != nullptr && v->isObject()) {
    const jl::Object& cov = v->object();
    r.hasCoverage = true;
    auto num = [&](const char* key) -> double {
      const jl::Value* f = jl::find(cov, key);
      return f != nullptr && f->isNumber() ? f->number() : 0.0;
    };
    r.covStateFraction = num("state_fraction");
    r.covValuesReached = static_cast<uint64_t>(num("values_reached"));
    r.covValuesTotal = static_cast<uint64_t>(num("values_total"));
    r.covBinsHit = static_cast<uint64_t>(num("bins_hit"));
    r.covBinsTotal = static_cast<uint64_t>(num("bins_total"));
  }
  if (const jl::Value* v = jl::find(o, "cex"); v != nullptr && v->isObject()) {
    const jl::Object& cex = v->object();
    if (const jl::Value* f = jl::find(cex, "path");
        f != nullptr && f->isString())
      r.cexPath = f->str();
    if (const jl::Value* f = jl::find(cex, "replay");
        f != nullptr && f->isString())
      r.cexReplay = f->str();
  }
  if (const jl::Value* v = jl::find(o, "wall_s"); v != nullptr && v->isNumber())
    r.wallSeconds = v->number();
  if (const jl::Value* v = jl::find(o, "peak_rss_kb");
      v != nullptr && v->isNumber())
    r.peakRssKb = static_cast<uint64_t>(v->number());
  if (const jl::Value* v = jl::find(o, "obs_enabled");
      v != nullptr && !v->isNull())
    r.obsEnabled = v->boolean();
  return true;
}

}  // namespace

std::vector<Record> parse(std::string_view text, size_t* skipped) {
  std::vector<Record> out;
  size_t bad = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    // Trim trailing CR and skip blanks.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.remove_suffix(1);
    if (line.empty()) continue;
    Record r;
    if (parseLine(line, r)) {
      out.push_back(std::move(r));
    } else {
      ++bad;
    }
  }
  if (skipped != nullptr) *skipped = bad;
  return out;
}

std::vector<Record> load(const std::string& path, size_t* skipped) {
  std::ifstream in(path);
  if (!in) {
    if (skipped != nullptr) *skipped = 0;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), skipped);
}

// -------------------------------------------------------------------- diff

namespace {

/// Distinct run ids in first-appearance (i.e. chronological append) order.
std::vector<std::string> runIdsInOrder(const std::vector<Record>& records) {
  std::vector<std::string> ids;
  for (const Record& r : records) {
    if (std::find(ids.begin(), ids.end(), r.runId) == ids.end())
      ids.push_back(r.runId);
  }
  return ids;
}

/// subject -> last record of that subject within the given run id.
std::map<std::string, const Record*> bySubject(
    const std::vector<Record>& records, const std::string& runId) {
  std::map<std::string, const Record*> out;
  for (const Record& r : records) {
    if (r.runId == runId) out[r.subject] = &r;
  }
  return out;
}

DiffResult diffRuns(const std::vector<Record>& records,
                    const std::string& oldRun, const std::string& newRun,
                    double wallPct, double rssPct) {
  DiffResult result;
  result.oldLabel = oldRun;
  result.newLabel = newRun;
  const double wallLimit = 1.0 + wallPct / 100.0;
  const double rssLimit = 1.0 + rssPct / 100.0;
  auto olds = bySubject(records, oldRun);
  auto news = bySubject(records, newRun);
  for (const auto& [subject, oldRec] : olds) {
    DiffRow row;
    row.subject = subject;
    auto it = news.find(subject);
    if (it == news.end()) {
      row.note = "only in old";
      result.rows.push_back(std::move(row));
      continue;
    }
    const Record* newRec = it->second;
    if (oldRec->result == "aborted" || oldRec->result == "crashed" ||
        newRec->result == "aborted" || newRec->result == "crashed") {
      row.note = newRec->result == "pass" || newRec->result == "completed"
                     ? oldRec->result
                     : newRec->result;
      result.rows.push_back(std::move(row));
      continue;
    }
    row.oldWallS = oldRec->wallSeconds;
    row.newWallS = newRec->wallSeconds;
    row.oldRssKb = oldRec->peakRssKb;
    row.newRssKb = newRec->peakRssKb;
    if (row.oldWallS > 0.0) {
      row.wallRatio = row.newWallS / row.oldWallS;
      row.wallRegression = wallPct > 0.0 && row.wallRatio > wallLimit;
    }
    if (row.oldRssKb > 0) {
      row.rssRatio = static_cast<double>(row.newRssKb) /
                     static_cast<double>(row.oldRssKb);
      row.rssRegression = rssPct > 0.0 && row.rssRatio > rssLimit;
    }
    if (oldRec->result != newRec->result) {
      row.note = oldRec->result + " -> " + newRec->result;
    }
    if (row.wallRegression) ++result.wallRegressions;
    if (row.rssRegression) ++result.rssRegressions;
    result.rows.push_back(std::move(row));
  }
  for (const auto& [subject, newRec] : news) {
    (void)newRec;
    if (olds.count(subject) != 0) continue;
    DiffRow row;
    row.subject = subject;
    row.note = "only in new";
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace

DiffResult diffByGitSha(const std::vector<Record>& records,
                        const std::string& shaOld, const std::string& shaNew,
                        double wallThresholdPct, double rssThresholdPct) {
  // The most recent run id carrying each sha (file order = append order).
  std::string oldRun, newRun;
  for (const Record& r : records) {
    if (r.gitSha == shaOld) oldRun = r.runId;
    if (r.gitSha == shaNew) newRun = r.runId;
  }
  DiffResult result = diffRuns(records, oldRun, newRun, wallThresholdPct,
                               rssThresholdPct);
  result.oldLabel = shaOld + (oldRun.empty() ? " (no runs)" : " @" + oldRun);
  result.newLabel = shaNew + (newRun.empty() ? " (no runs)" : " @" + newRun);
  return result;
}

std::optional<DiffResult> diffLatestRuns(const std::vector<Record>& records,
                                         double wallThresholdPct,
                                         double rssThresholdPct) {
  std::vector<std::string> ids = runIdsInOrder(records);
  if (ids.size() < 2) return std::nullopt;
  return diffRuns(records, ids[ids.size() - 2], ids[ids.size() - 1],
                  wallThresholdPct, rssThresholdPct);
}

// --------------------------------------------------------------- rendering

namespace {

std::string fmtMs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", seconds * 1e3);
  return buf;
}

std::string fmtRatio(double ratio) {
  if (ratio == 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", ratio);
  return buf;
}

}  // namespace

std::string renderDiff(const DiffResult& diff, bool markdown) {
  std::string out;
  out += "old: " + diff.oldLabel + "   new: " + diff.newLabel + "\n";
  if (markdown) {
    out += "\n| case | old wall (ms) | new wall (ms) | wall | old RSS (KiB) "
           "| new RSS (KiB) | RSS | note |\n";
    out += "|---|---:|---:|---:|---:|---:|---:|---|\n";
    for (const DiffRow& r : diff.rows) {
      std::string note = r.note;
      if (r.wallRegression) note += note.empty() ? "WALL-REGRESSION"
                                                 : " WALL-REGRESSION";
      if (r.rssRegression) note += note.empty() ? "RSS-REGRESSION"
                                                : " RSS-REGRESSION";
      out += "| " + r.subject + " | " + fmtMs(r.oldWallS) + " | " +
             fmtMs(r.newWallS) + " | " + fmtRatio(r.wallRatio) + " | " +
             std::to_string(r.oldRssKb) + " | " + std::to_string(r.newRssKb) +
             " | " + fmtRatio(r.rssRatio) + " | " + note + " |\n";
    }
  } else {
    char line[256];
    std::snprintf(line, sizeof line, "%-40s %10s %10s %7s %12s %12s %7s\n",
                  "case", "old(ms)", "new(ms)", "wall", "old-rss(K)",
                  "new-rss(K)", "rss");
    out += line;
    for (const DiffRow& r : diff.rows) {
      if (!r.note.empty() && r.wallRatio == 0.0 && r.rssRatio == 0.0) {
        std::snprintf(line, sizeof line, "%-40s %s\n", r.subject.c_str(),
                      ("(" + r.note + ")").c_str());
        out += line;
        continue;
      }
      std::string flags;
      if (r.wallRegression) flags += "  WALL-REGRESSION";
      if (r.rssRegression) flags += "  RSS-REGRESSION";
      if (!r.note.empty()) flags += "  (" + r.note + ")";
      std::snprintf(line, sizeof line,
                    "%-40s %10s %10s %7s %12llu %12llu %7s%s\n",
                    r.subject.c_str(), fmtMs(r.oldWallS).c_str(),
                    fmtMs(r.newWallS).c_str(), fmtRatio(r.wallRatio).c_str(),
                    static_cast<unsigned long long>(r.oldRssKb),
                    static_cast<unsigned long long>(r.newRssKb),
                    fmtRatio(r.rssRatio).c_str(), flags.c_str());
      out += line;
    }
  }
  char summary[128];
  std::snprintf(summary, sizeof summary,
                "%d wall regression(s), %d RSS regression(s)\n",
                diff.wallRegressions, diff.rssRegressions);
  out += summary;
  return out;
}

std::string renderList(const std::vector<Record>& records, size_t limit) {
  std::string out;
  char line[320];
  std::snprintf(line, sizeof line, "%-18s %-20s %-12s %-36s %-9s %10s %10s\n",
                "run", "time", "driver", "subject", "result", "wall(ms)",
                "rss(K)");
  out += line;
  size_t start = limit > 0 && records.size() > limit ? records.size() - limit
                                                     : 0;
  for (size_t i = start; i < records.size(); ++i) {
    const Record& r = records[i];
    std::snprintf(line, sizeof line,
                  "%-18s %-20s %-12s %-36s %-9s %10s %10llu\n",
                  r.runId.c_str(), r.time.c_str(), r.driver.c_str(),
                  r.subject.c_str(), r.result.c_str(),
                  fmtMs(r.wallSeconds).c_str(),
                  static_cast<unsigned long long>(r.peakRssKb));
    out += line;
  }
  return out;
}

std::string renderShow(const std::vector<Record>& records,
                       const std::string& runIdPrefix) {
  std::string out;
  for (const Record& r : records) {
    if (r.runId.compare(0, runIdPrefix.size(), runIdPrefix) != 0) continue;
    out += "run " + r.runId + "  (" + r.time + ")\n";
    out += "  driver:   " + r.driver + "\n";
    out += "  subject:  " + r.subject + "\n";
    out += "  result:   " + r.result +
           (r.signalName.empty() ? "" : " (" + r.signalName + ")") + "\n";
    if (!r.detail.empty()) out += "  detail:   " + r.detail + "\n";
    if (!r.digest.empty()) out += "  digest:   " + r.digest + "\n";
    out += "  wall:     " + fmtMs(r.wallSeconds) + " ms\n";
    out += "  peak rss: " + std::to_string(r.peakRssKb) + " KiB\n";
    out += "  git sha:  " + r.gitSha + "\n";
    if (!r.config.empty()) out += "  config:   " + r.config + "\n";
    if (!r.traceId.empty()) out += "  trace:    " + r.traceId + "\n";
    if (!r.stages.empty()) {
      out += "  stages:  ";
      for (const auto& [name, micros] : r.stages) {
        out += " " + name + "=" + fmtMs(static_cast<double>(micros) * 1e-6) +
               "ms";
      }
      out += "\n";
    }
    if (r.hasCoverage) {
      char cov[160];
      std::snprintf(cov, sizeof cov,
                    "  coverage: %.1f%% of state space, values %llu/%llu, "
                    "bins %llu/%llu\n",
                    r.covStateFraction * 100.0,
                    static_cast<unsigned long long>(r.covValuesReached),
                    static_cast<unsigned long long>(r.covValuesTotal),
                    static_cast<unsigned long long>(r.covBinsHit),
                    static_cast<unsigned long long>(r.covBinsTotal));
      out += cov;
    }
    if (!r.cexPath.empty())
      out += "  cex:      " + r.cexPath + " (replay " + r.cexReplay + ")\n";
    out += "  obs:      " + std::string(r.obsEnabled ? "enabled" : "disabled") +
           "\n";
  }
  if (out.empty()) out = "no records match run id '" + runIdPrefix + "'\n";
  return out;
}

std::string renderRequests(const std::vector<Record>& records,
                           double slowThresholdSeconds, size_t limit,
                           size_t* outliers) {
  // The per-request view: only records that carry stage timings (i.e.
  // hsis_serve traffic) qualify; plain CLI/bench records have no stages.
  std::vector<const Record*> reqs;
  for (const Record& r : records) {
    if (!r.stages.empty()) reqs.push_back(&r);
  }
  size_t flagged = 0;
  std::string out;
  if (reqs.empty()) {
    if (outliers != nullptr) *outliers = 0;
    return "no request records (records with stage timings) in this ledger\n";
  }
  static constexpr const char* kStageOrder[] = {"queue", "parse",  "tr",
                                                "reach", "check", "render"};
  char line[512];
  std::snprintf(line, sizeof line,
                "%-20s %-24s %-8s %-16s %9s %8s %8s %8s %8s %8s %8s\n",
                "time", "subject", "result", "trace", "wall(ms)", "queue",
                "parse", "tr", "reach", "check", "render");
  out += line;
  size_t start = limit > 0 && reqs.size() > limit ? reqs.size() - limit : 0;
  for (size_t i = start; i < reqs.size(); ++i) {
    const Record& r = *reqs[i];
    auto stageMs = [&](const char* name) -> std::string {
      for (const auto& [n, micros] : r.stages) {
        if (n == name) return fmtMs(static_cast<double>(micros) * 1e-6);
      }
      return "-";
    };
    const bool slow =
        slowThresholdSeconds > 0.0 && r.wallSeconds > slowThresholdSeconds;
    if (slow) ++flagged;
    std::snprintf(line, sizeof line,
                  "%-20s %-24s %-8s %-16s %9s %8s %8s %8s %8s %8s %8s%s\n",
                  r.time.c_str(), r.subject.c_str(), r.result.c_str(),
                  r.traceId.empty() ? "-" : r.traceId.c_str(),
                  fmtMs(r.wallSeconds).c_str(), stageMs("queue").c_str(),
                  stageMs("parse").c_str(), stageMs("tr").c_str(),
                  stageMs("reach").c_str(), stageMs("check").c_str(),
                  stageMs("render").c_str(), slow ? "  SLOW" : "");
    out += line;
    // Stages outside the canonical pipeline still show up, appended as an
    // extra detail line, so nothing recorded is invisible.
    std::string extra;
    for (const auto& [n, micros] : r.stages) {
      bool known = false;
      for (const char* k : kStageOrder) known = known || n == k;
      if (!known)
        extra += " " + n + "=" + fmtMs(static_cast<double>(micros) * 1e-6) +
                 "ms";
    }
    if (!extra.empty()) out += "    other:" + extra + "\n";
  }
  char summary[128];
  std::snprintf(summary, sizeof summary,
                "%zu request(s), %zu outlier(s) past %.3fs\n",
                reqs.size() - start, flagged,
                slowThresholdSeconds > 0.0 ? slowThresholdSeconds : 0.0);
  out += summary;
  if (outliers != nullptr) *outliers = flagged;
  return out;
}

// ------------------------------------------------------------ crash arming

namespace {

struct ArmedCrash {
  std::mutex mu;
  int fd = -1;
  // Pre-rendered line split around the signal name:
  //   prefix  ... "signal": "
  //   suffix  "}\n
  char prefix[1024];
  std::atomic<uint32_t> prefixLen{0};
};

ArmedCrash& armed() {
  static ArmedCrash* a = new ArmedCrash;  // leaked, see registry.cpp
  return *a;
}

}  // namespace

void armCrashRecord(const std::string& path, const Record& record) {
  ArmedCrash& a = armed();
  std::lock_guard<std::mutex> lock(a.mu);
  if (a.fd >= 0) {
    ::close(a.fd);
    a.fd = -1;
  }
  a.prefixLen.store(0, std::memory_order_release);
  if (path.empty()) return;
  std::error_code ec;
  std::filesystem::path p(path);
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), ec);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;

  Record r = record;
  r.result = "crashed";
  r.signalName = "";  // rendered as null; we substitute below
  std::string line = toJsonl(r);
  // Split at the trailing `"signal": null}` so the handler can append the
  // actual signal name.
  const std::string tail = "\"signal\": null}";
  size_t cut = line.rfind(tail);
  if (cut == std::string::npos) {
    ::close(fd);
    return;
  }
  std::string prefix = line.substr(0, cut) + "\"signal\": \"";
  if (prefix.size() > sizeof a.prefix) {
    ::close(fd);
    return;
  }
  std::memcpy(a.prefix, prefix.data(), prefix.size());
  a.fd = fd;
  a.prefixLen.store(static_cast<uint32_t>(prefix.size()),
                    std::memory_order_release);
}

void disarmCrashRecord() {
  ArmedCrash& a = armed();
  std::lock_guard<std::mutex> lock(a.mu);
  a.prefixLen.store(0, std::memory_order_release);
  if (a.fd >= 0) {
    ::close(a.fd);
    a.fd = -1;
  }
}

namespace detail {

void writeArmedCrashRecord(const char* signalName) noexcept {
  // Signal context: no locks, no allocation. prefixLen gates validity; the
  // fd stays open for the process lifetime once armed.
  ArmedCrash& a = armed();
  uint32_t n = a.prefixLen.load(std::memory_order_acquire);
  if (n == 0 || a.fd < 0) return;
  char buf[1100];
  if (n > sizeof buf - 32) return;
  std::memcpy(buf, a.prefix, n);
  size_t at = n;
  for (const char* p = signalName; *p != '\0' && at < sizeof buf - 4; ++p)
    buf[at++] = *p;
  buf[at++] = '"';
  buf[at++] = '}';
  buf[at++] = '\n';
  size_t off = 0;
  while (off < at) {
    ssize_t w = ::write(a.fd, buf + off, at - off);
    if (w <= 0) break;
    off += static_cast<size_t>(w);
  }
}

}  // namespace detail

}  // namespace hsis::obs::ledger
