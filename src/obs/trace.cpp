// Phase tracer: per-thread span nesting plus a process-wide ring buffer of
// completed spans. Span construction is two clock reads and a thread-local
// push; completion takes a short mutex to append to the ring.
#include "obs/obs.hpp"

#ifndef HSIS_OBS_DISABLE

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>

#include "obs/control.hpp"
#include "obs/tracectx.hpp"

namespace hsis::obs {

namespace {

std::atomic<uint64_t> g_nextSpanId{1};

struct ThreadStack {
  // Active span ids, innermost last. thread_local so nesting needs no lock.
  std::vector<uint64_t> active;
};

ThreadStack& threadStack() {
  thread_local ThreadStack ts;
  return ts;
}

uint64_t currentThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

struct ThreadNameTable {
  std::mutex mu;
  std::map<uint64_t, std::string> names;
};

ThreadNameTable& threadNameTable() {
  static ThreadNameTable* t = new ThreadNameTable;  // leaked, see Registry
  return *t;
}

}  // namespace

void setThreadName(std::string_view name) {
  ThreadNameTable& t = threadNameTable();
  std::lock_guard<std::mutex> lock(t.mu);
  t.names.try_emplace(currentThreadId(), std::string(name));
}

std::vector<std::pair<uint64_t, std::string>> threadNames() {
  ThreadNameTable& t = threadNameTable();
  std::lock_guard<std::mutex> lock(t.mu);
  std::vector<std::pair<uint64_t, std::string>> out(t.names.begin(),
                                                    t.names.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second < b.second : a.first < b.first;
  });
  return out;
}

struct Tracer::Impl {
  mutable std::mutex mu;
  std::vector<SpanSample> ring;
  size_t capacity = 8192;
  size_t head = 0;  ///< next write position once the ring is full
  bool wrapped = false;
  uint64_t dropped = 0;
};

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

Tracer::Impl& Tracer::impl() const {
  // Intentionally leaked; see Registry::impl().
  static Impl* impl = new Impl;
  return *impl;
}

void Tracer::setCapacity(size_t n) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.capacity = n == 0 ? 1 : n;
  im.ring.clear();
  im.head = 0;
  im.wrapped = false;
  im.dropped = 0;
}

void Tracer::emit(SpanSample&& s) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.ring.size() < im.capacity) {
    im.ring.push_back(std::move(s));
    return;
  }
  im.ring[im.head] = std::move(s);
  im.head = (im.head + 1) % im.capacity;
  im.wrapped = true;
  ++im.dropped;
}

std::vector<SpanSample> Tracer::completed() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<SpanSample> out;
  out.reserve(im.ring.size());
  if (im.wrapped) {
    // Oldest surviving entry sits at head.
    out.insert(out.end(), im.ring.begin() + static_cast<long>(im.head),
               im.ring.end());
    out.insert(out.end(), im.ring.begin(),
               im.ring.begin() + static_cast<long>(im.head));
  } else {
    out = im.ring;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanSample& a, const SpanSample& b) {
              return a.startNs != b.startNs ? a.startNs < b.startNs
                                            : a.id < b.id;
            });
  return out;
}

uint64_t Tracer::dropped() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.dropped;
}

void Tracer::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.ring.clear();
  im.head = 0;
  im.wrapped = false;
  im.dropped = 0;
}

Span::Span(std::string_view name)
    : name_(name),
      id_(g_nextSpanId.fetch_add(1, std::memory_order_relaxed)),
      startNs_(WallTimer::nowNs()),
      traceId_(currentTraceId()) {
  ThreadStack& ts = threadStack();
  parent_ = ts.active.empty() ? -1 : static_cast<int64_t>(ts.active.back());
  depth_ = static_cast<uint32_t>(ts.active.size());
  ts.active.push_back(id_);
  detail::notePhaseStart(currentThreadId(), id_, name_);
}

Span::~Span() {
  uint64_t end = WallTimer::nowNs();
  detail::notePhaseEnd(currentThreadId(), id_);
  ThreadStack& ts = threadStack();
  // Spans are strictly scoped RAII objects, so ours is the innermost.
  if (!ts.active.empty() && ts.active.back() == id_) ts.active.pop_back();
  SpanSample s;
  s.name = std::move(name_);
  s.id = id_;
  s.parent = parent_;
  s.depth = depth_;
  s.threadId = currentThreadId();
  s.startNs = startNs_;
  s.durationNs = end - startNs_;
  s.traceId = traceId_;
  Tracer::instance().emit(std::move(s));
}

double Span::seconds() const {
  return static_cast<double>(WallTimer::nowNs() - startNs_) * 1e-9;
}

}  // namespace hsis::obs

#endif  // !HSIS_OBS_DISABLE
