// A small fork-join task pool for the parallel BDD apply (and anything
// else that forks strict, stack-scoped subproblems).
//
// Design constraints, in order:
//  - Tasks are STACK-ALLOCATED in the forker's frame and joined before the
//    frame unwinds, so the pool never owns task lifetime. The deque holds
//    raw pointers; the unqueue-or-wait join protocol below guarantees no
//    worker can touch a task after its join returned:
//      * submit() enqueues the task,
//      * a worker (or a helping joiner) *pops* the task under the lock —
//        popping IS claiming; a task is never reachable from the deque and
//        claimed at the same time,
//      * join first tries tryUnqueue(): if the task is still queued it is
//        removed and run inline by the joiner (zero handoff when all
//        workers are busy — the fork degrades to plain recursion),
//      * otherwise some worker popped it: the joiner helps drain other
//        tasks (runOne) until the task's done flag is set. The claimer is
//        inside run() the whole time, so the task outlives every access.
//  - run() is noexcept: tasks capture failures themselves (the BDD layer
//    stores an exception_ptr and rethrows at the join).
//  - A central mutex-guarded deque, not per-thread work-stealing: forks
//    are coarse by construction (the BDD layer splits only above a
//    node-count cutoff and below a fixed depth), so the deque sees a few
//    dozen pushes per operation, not millions — contention is irrelevant
//    and the simple structure keeps the join protocol auditable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace hsis::par {

class ForkJoin {
 public:
  struct Task {
    virtual ~Task() = default;
    /// Execute the task. Must not throw — capture failures in the task.
    virtual void run() noexcept = 0;
    /// Set (release) by whoever ran the task; joiners acquire-poll it.
    std::atomic<bool> done{false};
  };

  /// Spawn `threads` workers (0 is valid: every fork is then claimed back
  /// by its joiner and run inline — useful as a degenerate baseline).
  explicit ForkJoin(int threads);
  ~ForkJoin();
  ForkJoin(const ForkJoin&) = delete;
  ForkJoin& operator=(const ForkJoin&) = delete;

  [[nodiscard]] int threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task. The caller must join it (see class comment) before
  /// the task object's lifetime ends.
  void submit(Task* t);

  /// Pop one queued task and run it to completion on the calling thread.
  /// Returns false when the deque was empty. Safe to call from any thread;
  /// joiners use it to help instead of blocking.
  bool runOne();

  /// If `t` is still queued, remove it and return true — the caller now
  /// owns execution. Returns false when some worker already popped it.
  bool tryUnqueue(Task* t);

 private:
  void workerLoop();
  static void execute(Task* t) {
    t->run();
    t->done.store(true, std::memory_order_release);
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task*> dq_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hsis::par
