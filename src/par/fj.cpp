#include "par/fj.hpp"

#include <algorithm>

namespace hsis::par {

ForkJoin::ForkJoin(int threads) {
  if (threads < 0) threads = 0;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ForkJoin::~ForkJoin() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Contract: all tasks were joined by their forkers before destruction;
  // anything still queued at this point is a usage bug upstream.
}

void ForkJoin::submit(Task* t) {
  {
    std::lock_guard<std::mutex> g(mu_);
    dq_.push_back(t);
  }
  cv_.notify_one();
}

bool ForkJoin::runOne() {
  Task* t = nullptr;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (dq_.empty()) return false;
    t = dq_.front();
    dq_.pop_front();
  }
  execute(t);
  return true;
}

bool ForkJoin::tryUnqueue(Task* t) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = std::find(dq_.begin(), dq_.end(), t);
  if (it == dq_.end()) return false;
  dq_.erase(it);
  return true;
}

void ForkJoin::workerLoop() {
  for (;;) {
    Task* t = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !dq_.empty(); });
      if (stop_ && dq_.empty()) return;
      t = dq_.front();
      dq_.pop_front();
    }
    execute(t);
  }
}

}  // namespace hsis::par
