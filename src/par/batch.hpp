// Coarse-grain parallel verification: check the independent properties of
// ONE loaded design on a pool of worker threads.
//
// The unit of parallelism is the property, and the isolation unit is the
// BddManager. Each worker owns a full replica of the design's symbolic
// machine — FSM, transition relation, fairness sets, and the already
// computed reachable set — moved over ONCE by structural copy
// (BddTransfer), so after setup the workers share no BDD state at all:
// no unique-table contention, no cache interference, no GC coordination.
// This is the coarse-grain half of the parallel engine; the fine-grain
// half (sharded unique table + fork-join apply inside one manager) lives
// in the BDD layer itself (BddManager::beginShared).
//
// Replicas are built serially on the calling thread — transfers read the
// source manager, whose handle refcounts are not synchronized in serial
// mode — then handed to the workers, which do the rest (checker
// construction, don't-care minimization, the checks) fully concurrently.
//
// Language-containment properties need no replica: each LC check builds
// its own product manager from the flattened model anyway (exactly like
// Session::checkAutomaton), so any worker can take one.
//
// Abort semantics mirror hsis_serve's per-request contract: every worker
// binds its own obs::TaskAbort slot, so a per-property abort (watchdog
// breach, explicit request) unwinds that property only — the report gets
// an "aborted:" note and the worker moves on. A process-wide abort stops
// the whole batch and rethrows after every worker has unwound.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "debug/report.hpp"
#include "hsis/session.hpp"
#include "obs/control.hpp"
#include "pif/pif.hpp"

namespace hsis::par {

struct BatchOptions {
  /// Worker threads. <= 1 checks serially on the calling thread (exactly
  /// Session::check per property, no replicas built).
  int jobs = 1;
  /// Per-property wall-clock budget in seconds (0 = none). Breach aborts
  /// only the offending property, via the worker's TaskAbort slot.
  double propertyTimeoutSeconds = 0.0;
  /// Optional batch-wide abort relay (e.g. hsis_serve's per-request
  /// budget slot, owned by the submitting thread). Workers poll it at
  /// property boundaries: once raised, the whole batch unwinds and
  /// checkBatch rethrows AbortedError. Mid-property engine work is not
  /// interrupted by this relay — only the worker's own slot reaches the
  /// engine's safe points — so a breach surfaces at the next boundary.
  const obs::TaskAbort* requestAbort = nullptr;
};

struct BatchReport {
  /// One report per input property, in input order. An aborted property's
  /// report carries holds=false and an "aborted: <reason>" note.
  std::vector<BugReport> reports;
  /// Wall time each worker spent inside checks (excludes idle/join time).
  std::vector<uint64_t> workerBusyMicros;
  uint64_t wallMicros = 0;
  /// Replica setup on the calling thread (serial, before workers start).
  uint64_t transferMicros = 0;
  /// Total nodes structurally copied into all replicas.
  size_t transferredNodes = 0;
  int jobs = 1;
  size_t aborted = 0;  ///< properties that hit a per-property abort

  /// Busy-time bound on the batch speedup: sum of per-worker busy time
  /// over the longest worker. What the schedule would gain over serial
  /// execution given enough cores — reported alongside measured wall time
  /// because the two diverge on core-starved hosts.
  [[nodiscard]] double theoreticalSpeedup() const;
};

/// Check `properties` against the session's loaded design on `jobs` worker
/// threads. The session must have a design loaded; it is built (and its
/// reachability computed) on the calling thread first. The session itself
/// is not touched concurrently — workers run on replicas.
BatchReport checkBatch(Session& session,
                       std::span<const PifProperty> properties,
                       const BatchOptions& options = {});

}  // namespace hsis::par
