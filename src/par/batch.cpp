#include "par/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "ctl/mc.hpp"
#include "fsm/fsm.hpp"
#include "fsm/image.hpp"
#include "lc/lc.hpp"
#include "obs/control.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "pif/sigexpr.hpp"

namespace hsis::par {

namespace {

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t toMicros(double seconds) {
  return seconds > 0 ? static_cast<uint64_t>(seconds * 1e6) : 0;
}

/// One worker's private copy of the design's symbolic machine. Everything
/// here lives in the replica's own manager; after construction the worker
/// never touches the source manager again.
struct Replica {
  BddManager mgr;
  std::unique_ptr<Fsm> fsm;                ///< heap: TR/checker hold pointers
  std::optional<TransitionRelation> tr;
  std::vector<Bdd> fairSets;
  // Seed for CtlChecker::seedReachability, transferred from the primary
  // checker so no worker reruns the reachability fixpoint.
  Bdd reached;
  std::vector<Bdd> onionRings;
  std::vector<double> frontierStates;
  size_t reachSteps = 0;
  /// Built on the worker thread (don't-care minimization of the seeded
  /// reached set runs there, concurrently across replicas).
  std::unique_ptr<CtlChecker> checker;
};

/// Build one replica against the (quiescent) source session. Runs on the
/// calling thread — serial-mode handle refcounts on the source manager are
/// not synchronized, so transfers must not overlap.
std::unique_ptr<Replica> buildReplica(Session& session, CtlChecker& primary,
                                      size_t& transferredNodes) {
  auto rep = std::make_unique<Replica>();
  BddTransfer tx(session.manager(), rep->mgr);
  rep->fsm = std::make_unique<Fsm>(Fsm::transferred(tx, session.fsm()));
  rep->tr.emplace(
      TransitionRelation::transferred(*rep->fsm, tx, session.tr()));
  // Fairness Büchi sets are cheap propositional evaluations — rebuild them
  // against the replica FSM rather than transferring (same construction as
  // Session::ctlFairnessSets; the fair-edge approximation note is already
  // on the session from building the primary checker).
  const FairnessSpec& fairness = session.fairness();
  for (const SigExprRef& e : fairness.noStay)
    rep->fairSets.push_back(!evalSigExpr(e, *rep->fsm));
  for (const SigExprRef& e : fairness.buchi)
    rep->fairSets.push_back(evalSigExpr(e, *rep->fsm));
  for (const auto& [from, to] : fairness.fairEdges) {
    (void)from;
    rep->fairSets.push_back(evalSigExpr(to, *rep->fsm));
  }
  rep->reached = tx.copy(primary.reached());
  rep->onionRings = tx.copy(primary.onionRings());
  rep->frontierStates = primary.frontierNewStates();
  rep->reachSteps = primary.lastStats().reachabilitySteps;
  transferredNodes += tx.copiedNodes();
  return rep;
}

/// The per-worker half of replica setup: checker construction plus
/// reachability seeding (which runs the don't-care TR minimization).
void finishReplica(Replica& rep, const Session::Options& opts) {
  McOptions mo;
  mo.earlyFailureDetection = opts.earlyFailureDetection;
  mo.useReachedDontCares = opts.useReachedDontCares;
  mo.wantTrace = opts.wantTraces;
  rep.checker = std::make_unique<CtlChecker>(*rep.fsm, *rep.tr,
                                             rep.fairSets, mo);
  rep.checker->seedReachability(
      std::move(rep.reached), std::move(rep.onionRings),
      std::move(rep.frontierStates), rep.reachSteps);
}

/// Session::checkCtl against a replica checker (same report shape, same
/// metrics — counters are atomic, spans are per-thread).
BugReport checkCtlOn(CtlChecker& checker, const std::string& name,
                     const CtlRef& formula) {
  BugReport report;
  report.paradigm = BugReport::Paradigm::ModelChecking;
  report.propertyName = name;
  report.propertyText = formula->toString();
  obs::Span span("env.verify.ctl");
  McResult r = checker.check(formula);
  report.holds = r.holds;
  report.trace = r.counterexample;
  report.seconds = r.stats.seconds;
  report.usedEarlyFailure = r.stats.usedEarlyFailure;
  obs::counter("env.mc.micros").add(toMicros(r.stats.seconds));
  obs::counter("env.props.ctl").add();
  return report;
}

/// Session::checkAutomaton, reconstructed from the session's const state.
/// Needs no replica: the containment check builds its own product manager
/// from the flattened model, so it is manager-independent by design.
BugReport checkAutomatonOn(const blifmv::Model& flat,
                           const FairnessSpec& fairness,
                           const Session::Options& opts,
                           const std::string& name, const Automaton& aut) {
  BugReport report;
  report.paradigm = BugReport::Paradigm::LanguageContainment;
  report.propertyName = name;
  report.propertyText = "automaton " + aut.name() + " (" +
                        std::to_string(aut.numStates()) + " states)";
  LcOptions lo;
  lo.earlyFailureDetection = opts.earlyFailureDetection;
  lo.wantTrace = opts.wantTraces;
  lo.partitionedTr = opts.partitionedTr;
  lo.clusterLimit = opts.clusterLimit;
  lo.quantMethod = opts.quantMethod;
  obs::Span span("env.verify.lc");
  BddManager productMgr;
  LcChecker lc(productMgr, flat, aut, fairness, lo);
  LcResult r = lc.check();
  report.holds = r.contained;
  report.notes = r.notes;
  report.seconds = r.stats.seconds;
  report.usedEarlyFailure = r.stats.usedEarlyFailure;
  if (r.trace.has_value()) {
    report.notes.push_back("error trace (design + monitor):\n" +
                           lc.formatTrace(*r.trace));
  }
  obs::counter("env.lc.micros").add(toMicros(r.stats.seconds));
  obs::counter("env.props.lc").add();
  return report;
}

}  // namespace

double BatchReport::theoreticalSpeedup() const {
  uint64_t total = 0, longest = 0;
  for (uint64_t b : workerBusyMicros) {
    total += b;
    longest = std::max(longest, b);
  }
  if (longest == 0) return 1.0;
  return static_cast<double>(total) / static_cast<double>(longest);
}

BatchReport checkBatch(Session& session,
                       std::span<const PifProperty> properties,
                       const BatchOptions& options) {
  BatchReport out;
  out.jobs = std::max(1, options.jobs);
  out.reports.resize(properties.size());
  uint64_t wallStart = nowMicros();

  int workers = std::min<int>(out.jobs, static_cast<int>(properties.size()));
  if (workers <= 1) {
    // Serial path: exactly Session::check, property by property.
    out.workerBusyMicros.assign(1, 0);
    for (size_t i = 0; i < properties.size(); ++i) {
      uint64_t t0 = nowMicros();
      out.reports[i] = session.check(properties[i]);
      out.workerBusyMicros[0] += nowMicros() - t0;
    }
    out.wallMicros = nowMicros() - wallStart;
    return out;
  }

  bool anyCtl = false;
  for (const PifProperty& p : properties)
    anyCtl |= p.kind == PifProperty::Kind::Ctl;

  // Build everything shared up front, on this thread: the design machine,
  // the primary checker, and — when any CTL property needs it — the
  // reachability fixpoint that every replica is seeded with.
  session.build();
  CtlChecker& primary = session.checker();
  std::vector<std::unique_ptr<Replica>> replicas;
  uint64_t transferStart = nowMicros();
  if (anyCtl) {
    (void)primary.reached();
    replicas.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w)
      replicas.push_back(
          buildReplica(session, primary, out.transferredNodes));
  }
  out.transferMicros = nowMicros() - transferStart;
  HSIS_LOG_INFO("par.batch", "replicas built",
                {{"workers", workers},
                 {"properties", properties.size()},
                 {"transferred_nodes", out.transferredNodes},
                 {"transfer_micros", out.transferMicros}});

  out.workerBusyMicros.assign(static_cast<size_t>(workers), 0);
  std::atomic<size_t> next{0};
  std::atomic<size_t> abortedCount{0};
  std::exception_ptr fatal;
  std::mutex fatalMu;
  const blifmv::Model& flat = session.flatModel();
  const FairnessSpec& fairness = session.fairness();
  const Session::Options& opts = session.options();

  auto workerBody = [&](int w) {
    obs::TaskAbort slot;
    obs::bindTaskAbort(&slot);
    Replica* rep = anyCtl ? replicas[static_cast<size_t>(w)].get() : nullptr;
    try {
      if (rep != nullptr) finishReplica(*rep, opts);
      for (;;) {
        if (options.requestAbort != nullptr &&
            options.requestAbort->requested()) {
          auto info = options.requestAbort->info();
          throw obs::AbortedError(info ? info->reason : "request aborted",
                                  info ? info->phase : "par.batch");
        }
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= properties.size()) break;
        const PifProperty& p = properties[i];
        std::optional<obs::Watchdog> wd;
        if (options.propertyTimeoutSeconds > 0) {
          wd.emplace();
          // Poll at ~1/4 of the budget (clamped to [1ms, 50ms]) so budgets
          // below the default 50ms poll can still fire close to on time.
          uint64_t pollMs = static_cast<uint64_t>(
              options.propertyTimeoutSeconds * 250.0);
          pollMs = std::min<uint64_t>(50, std::max<uint64_t>(1, pollMs));
          wd->start({.wallLimitSeconds = options.propertyTimeoutSeconds,
                     .pollMs = pollMs,
                     .target = &slot});
        }
        uint64_t t0 = nowMicros();
        try {
          if (p.kind == PifProperty::Kind::Ctl) {
            out.reports[i] = checkCtlOn(*rep->checker, p.name, p.ctl);
          } else {
            out.reports[i] =
                checkAutomatonOn(flat, fairness, opts, p.name, p.aut);
          }
        } catch (const obs::AbortedError& e) {
          if (obs::detail::g_abortRequested.load(std::memory_order_relaxed))
            throw;  // process-wide: stop the whole batch
          // Per-property abort (watchdog breach or explicit request on this
          // worker's slot): report it, re-arm, take the next property.
          BugReport& r = out.reports[i];
          r.propertyName = p.name;
          r.paradigm = p.kind == PifProperty::Kind::Ctl
                           ? BugReport::Paradigm::ModelChecking
                           : BugReport::Paradigm::LanguageContainment;
          r.holds = false;
          r.notes.push_back("aborted: " + e.reason());
          abortedCount.fetch_add(1, std::memory_order_relaxed);
          slot.clear();
        }
        out.workerBusyMicros[static_cast<size_t>(w)] += nowMicros() - t0;
        if (wd.has_value()) wd->stop();
      }
    } catch (...) {
      std::lock_guard<std::mutex> g(fatalMu);
      if (!fatal) fatal = std::current_exception();
      // Pull the remaining properties so the other workers drain quickly;
      // a process-wide abort reaches them at their own safe points anyway.
      next.store(properties.size(), std::memory_order_relaxed);
    }
    obs::bindTaskAbort(nullptr);
  };

  {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(workerBody, w);
    for (auto& t : pool) t.join();
  }
  if (fatal) std::rethrow_exception(fatal);

  out.aborted = abortedCount.load();
  out.wallMicros = nowMicros() - wallStart;
  obs::counter("par.batch.properties").add(properties.size());
  obs::gauge("par.batch.jobs").set(workers);
  HSIS_LOG_INFO("par.batch", "batch complete",
                {{"properties", properties.size()},
                 {"workers", workers},
                 {"wall_micros", out.wallMicros},
                 {"aborted", out.aborted}});
  return out;
}

}  // namespace hsis::par
