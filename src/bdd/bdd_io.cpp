// Graphviz export for debugging and documentation.
#include "bdd/bdd.hpp"

#include <sstream>
#include <unordered_set>

namespace hsis {

std::string BddManager::toDot(std::span<const Bdd> roots,
                              std::span<const std::string> rootNames,
                              const std::vector<std::string>& varNames) const {
  std::ostringstream os;
  os << "digraph bdd {\n  rankdir=TB;\n";
  os << "  n0 [label=\"0\", shape=box];\n  n1 [label=\"1\", shape=box];\n";
  std::unordered_set<uint32_t> seen{0, 1};
  std::vector<uint32_t> stack;
  for (size_t i = 0; i < roots.size(); ++i) {
    if (roots[i].isNull()) continue;
    std::string name =
        i < rootNames.size() ? rootNames[i] : "f" + std::to_string(i);
    os << "  r" << i << " [label=\"" << name << "\", shape=plaintext];\n";
    os << "  r" << i << " -> n" << roots[i].index() << ";\n";
    stack.push_back(roots[i].index());
  }
  while (!stack.empty()) {
    uint32_t n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    const Node& nd = nodes_[n];
    std::string label = nd.var < varNames.size() && !varNames[nd.var].empty()
                            ? varNames[nd.var]
                            : "x" + std::to_string(nd.var);
    os << "  n" << n << " [label=\"" << label << "\"];\n";
    os << "  n" << n << " -> n" << nd.lo << " [style=dashed];\n";
    os << "  n" << n << " -> n" << nd.hi << ";\n";
    stack.push_back(nd.lo);
    stack.push_back(nd.hi);
  }
  os << "}\n";
  return os.str();
}

}  // namespace hsis
