// Graphviz export for debugging and documentation. Complement edges are
// drawn with an odot arrow tail; the single terminal renders as "1" (FALSE
// is a complemented edge into it).
#include "bdd/bdd.hpp"

#include <sstream>
#include <unordered_set>

namespace hsis {

std::string BddManager::toDot(std::span<const Bdd> roots,
                              std::span<const std::string> rootNames,
                              const std::vector<std::string>& varNames) const {
  std::ostringstream os;
  os << "digraph bdd {\n  rankdir=TB;\n";
  os << "  n1 [label=\"1\", shape=box];\n";
  std::unordered_set<uint32_t> seen{0, 1};
  std::vector<uint32_t> stack;
  auto edgeAttrs = [](uint32_t e, bool dashed) {
    std::string a;
    if (dashed) a += "style=dashed";
    if (eIsNeg(e)) {
      if (!a.empty()) a += ", ";
      a += "arrowtail=odot, dir=both";  // complement mark
    }
    return a.empty() ? std::string() : " [" + a + "]";
  };
  for (size_t i = 0; i < roots.size(); ++i) {
    if (roots[i].isNull()) continue;
    uint32_t e = roots[i].index();
    std::string name =
        i < rootNames.size() ? rootNames[i] : "f" + std::to_string(i);
    os << "  r" << i << " [label=\"" << name << "\", shape=plaintext];\n";
    os << "  r" << i << " -> n" << eIdx(e) << edgeAttrs(e, false) << ";\n";
    stack.push_back(eIdx(e));
  }
  while (!stack.empty()) {
    uint32_t n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    const Node& nd = nodes_[n];
    std::string label = nd.var < varNames.size() && !varNames[nd.var].empty()
                            ? varNames[nd.var]
                            : "x" + std::to_string(nd.var);
    os << "  n" << n << " [label=\"" << label << "\"];\n";
    os << "  n" << n << " -> n" << eIdx(nd.lo) << edgeAttrs(nd.lo, true) << ";\n";
    os << "  n" << n << " -> n" << eIdx(nd.hi) << edgeAttrs(nd.hi, false) << ";\n";
    if (!isTerm(nd.lo)) stack.push_back(eIdx(nd.lo));
    if (!isTerm(nd.hi)) stack.push_back(eIdx(nd.hi));
  }
  os << "}\n";
  return os.str();
}

}  // namespace hsis
