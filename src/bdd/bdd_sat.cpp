// Structural queries: support, model counting, cube extraction, node counts.
#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace hsis {

void BddManager::supportRec(uint32_t f, std::vector<bool>& seen,
                            std::vector<bool>& inSupp) {
  if (isTerm(f) || seen[f]) return;
  seen[f] = true;
  inSupp[nodes_[f].var] = true;
  supportRec(nodes_[f].lo, seen, inSupp);
  supportRec(nodes_[f].hi, seen, inSupp);
}

std::vector<BddVar> BddManager::support(const Bdd& f) {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<bool> inSupp(numVars(), false);
  supportRec(f.index(), seen, inSupp);
  std::vector<BddVar> out;
  // Report in order-of-levels so callers get a canonical sequence.
  for (uint32_t l = 0; l < numVars(); ++l) {
    BddVar v = invPerm_[l];
    if (inSupp[v]) out.push_back(v);
  }
  return out;
}

Bdd BddManager::supportCube(const Bdd& f) {
  std::vector<BddVar> s = support(f);
  Bdd cube = bddOne();
  // Build bottom-up (deepest literal first) so each mkNode is O(1).
  for (auto it = s.rbegin(); it != s.rend(); ++it) cube &= bddVar(*it);
  return cube;
}

double BddManager::satCount(const Bdd& f, uint32_t nvars) {
  // count(f) over variables at levels [0, nvars); each skipped level doubles.
  std::unordered_map<uint32_t, double> memo;
  // fraction(f) = (number of minterms of f) / 2^(vars below f's level)
  // computed as a density to stay stable for wide supports.
  auto rec = [&](auto&& self, uint32_t n) -> double {
    if (n == 0) return 0.0;
    if (n == 1) return 1.0;
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    double d = 0.5 * (self(self, nodes_[n].lo) + self(self, nodes_[n].hi));
    memo.emplace(n, d);
    return d;
  };
  double density = rec(rec, f.index());
  return density * std::pow(2.0, static_cast<double>(nvars));
}

std::vector<int8_t> BddManager::pickCube(const Bdd& f) {
  if (f.isNull() || f.isZero()) return {};
  std::vector<int8_t> out(numVars(), -1);
  uint32_t n = f.index();
  while (!isTerm(n)) {
    const Node& nd = nodes_[n];
    if (nd.lo != 0) {
      out[nd.var] = 0;
      n = nd.lo;
    } else {
      out[nd.var] = 1;
      n = nd.hi;
    }
  }
  assert(n == 1);
  return out;
}

Bdd BddManager::cubeFromAssignment(std::span<const int8_t> assign) {
  // Build deepest-literal-first for linear cost.
  std::vector<std::pair<uint32_t, BddVar>> lits;  // (level, var)
  for (uint32_t v = 0; v < assign.size() && v < numVars(); ++v) {
    if (assign[v] >= 0) lits.emplace_back(perm_[v], v);
  }
  std::sort(lits.begin(), lits.end());
  Bdd cube = bddOne();
  for (auto it = lits.rbegin(); it != lits.rend(); ++it) {
    cube &= bddLiteral(it->second, assign[it->second] == 1);
  }
  return cube;
}

size_t BddManager::nodeCount(const Bdd& f) const {
  std::unordered_set<uint32_t> seen;
  std::vector<uint32_t> stack{f.index()};
  while (!stack.empty()) {
    uint32_t n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (!isTerm(n)) {
      stack.push_back(nodes_[n].lo);
      stack.push_back(nodes_[n].hi);
    }
  }
  return seen.size();
}

size_t BddManager::sharedNodeCount(std::span<const Bdd> roots) const {
  std::unordered_set<uint32_t> seen;
  std::vector<uint32_t> stack;
  for (const Bdd& r : roots)
    if (!r.isNull()) stack.push_back(r.index());
  while (!stack.empty()) {
    uint32_t n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (!isTerm(n)) {
      stack.push_back(nodes_[n].lo);
      stack.push_back(nodes_[n].hi);
    }
  }
  return seen.size();
}

}  // namespace hsis
