// Structural queries: support, model counting, cube extraction, node counts.
// All walkers strip the complement bit before touching the arena and apply
// it when the query is polarity-sensitive (satCount, pickCube).
#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>  // toDot only

namespace hsis {

void BddManager::supportRec(uint32_t f, std::vector<bool>& seen,
                            std::vector<bool>& inSupp) {
  uint32_t n = eIdx(f);  // support is polarity-independent
  if (isTerm(n) || seen[n]) return;
  seen[n] = true;
  inSupp[nodes_[n].var] = true;
  supportRec(nodes_[n].lo, seen, inSupp);
  supportRec(nodes_[n].hi, seen, inSupp);
}

std::vector<BddVar> BddManager::support(const Bdd& f) {
  // arenaEnd(), not nodes_.size(): in a shared phase the arena vector's
  // size marker can be mid-update by a grower, while the bump pointer is
  // an atomic snapshot that bounds every published node index.
  std::vector<bool> seen(arenaEnd(), false);
  std::vector<bool> inSupp(numVars(), false);
  supportRec(f.index(), seen, inSupp);
  std::vector<BddVar> out;
  // Report in order-of-levels so callers get a canonical sequence.
  for (uint32_t l = 0; l < numVars(); ++l) {
    BddVar v = invPerm_[l];
    if (inSupp[v]) out.push_back(v);
  }
  return out;
}

Bdd BddManager::supportCube(const Bdd& f) {
  std::vector<BddVar> s = support(f);
  Bdd cube = bddOne();
  // Build bottom-up (deepest literal first) so each mkNode is O(1).
  for (auto it = s.rbegin(); it != s.rend(); ++it) cube &= bddVar(*it);
  return cube;
}

double BddManager::satDensity(uint32_t rootEdge, std::vector<char>& inSupp) {
  // The satisfying-assignment *density* of the function: the fraction of
  // all assignments (over any space covering the support) that satisfy it.
  // Level-independent — each node contributes 0.5*(lo + hi) regardless of
  // how many levels its children skip — which is why the caller must check
  // that the requested space actually covers the support. The density is
  // memoized per *node*; a complemented edge reads 1 - d, so f and !f
  // share the memo table. Support variables are marked as a side effect,
  // giving the caller the validity check for free (same walk).
  std::unordered_map<uint32_t, double> memo;
  auto rec = [&](auto&& self, uint32_t e) -> double {
    uint32_t n = eIdx(e);
    bool neg = eIsNeg(e);
    if (isTerm(n)) return neg ? 0.0 : 1.0;
    double d;
    auto it = memo.find(n);
    if (it != memo.end()) {
      d = it->second;
    } else {
      inSupp[nodes_[n].var] = 1;
      d = 0.5 * (self(self, nodes_[n].lo) + self(self, nodes_[n].hi));
      memo.emplace(n, d);
    }
    return neg ? 1.0 - d : d;
  };
  return rec(rec, rootEdge);
}

double BddManager::satCount(const Bdd& f, uint32_t nvars) {
  std::vector<char> inSupp(numVars(), 0);
  double density = satDensity(f.index(), inSupp);
  uint32_t suppSize = 0;
  for (char c : inSupp) suppSize += c != 0 ? 1u : 0u;
  if (suppSize > nvars)
    throw std::invalid_argument(
        "BddManager::satCount: function depends on " +
        std::to_string(suppSize) + " variables, more than the " +
        std::to_string(nvars) + "-variable space requested");
  // ldexp, not pow: exact scaling by a power of two up to the full double
  // exponent range (pow accumulates rounding above 2^53-ish inputs).
  return std::ldexp(density, static_cast<int>(nvars));
}

double BddManager::satCount(const Bdd& f, std::span<const BddVar> vars) {
  std::vector<char> allowed(numVars(), 0);
  uint32_t nvars = 0;
  for (BddVar v : vars) {
    if (v >= numVars())
      throw std::invalid_argument("BddManager::satCount: unknown variable " +
                                  std::to_string(v));
    if (allowed[v] == 0) ++nvars;  // duplicates count once
    allowed[v] = 1;
  }
  std::vector<char> inSupp(numVars(), 0);
  double density = satDensity(f.index(), inSupp);
  for (BddVar v = 0; v < numVars(); ++v) {
    if (inSupp[v] != 0 && allowed[v] == 0)
      throw std::invalid_argument(
          "BddManager::satCount: support variable " + std::to_string(v) +
          " is outside the given variable set");
  }
  return std::ldexp(density, static_cast<int>(nvars));
}

std::vector<int8_t> BddManager::pickCube(const Bdd& f) {
  if (f.isNull() || f.isZero()) return {};
  std::vector<int8_t> out(numVars(), -1);
  uint32_t e = f.index();
  while (!isTerm(e)) {
    uint32_t n = eIdx(e), s = eSign(e);
    uint32_t lo = nodes_[n].lo ^ s;
    // Canonical form: a cofactor edge equals kZeroEdge iff that branch is
    // identically false, so any non-zero branch is satisfiable.
    if (lo != kZeroEdge) {
      out[nodes_[n].var] = 0;
      e = lo;
    } else {
      out[nodes_[n].var] = 1;
      e = nodes_[n].hi ^ s;
    }
  }
  assert(e == kOneEdge);
  return out;
}

Bdd BddManager::cubeFromAssignment(std::span<const int8_t> assign) {
  // Build deepest-literal-first for linear cost.
  std::vector<std::pair<uint32_t, BddVar>> lits;  // (level, var)
  for (uint32_t v = 0; v < assign.size() && v < numVars(); ++v) {
    if (assign[v] >= 0) lits.emplace_back(perm_[v], v);
  }
  std::sort(lits.begin(), lits.end());
  Bdd cube = bddOne();
  for (auto it = lits.rbegin(); it != lits.rend(); ++it) {
    cube &= bddLiteral(it->second, assign[it->second] == 1);
  }
  return cube;
}

uint32_t BddManager::beginVisit() const {
  // Epoch-stamped visitation: no hashing, no per-call clearing. The stamp
  // array trails the arena lazily; a wrapped epoch (once per 2^32 walks)
  // resets it wholesale.
  // Size from arenaEnd(), not nodes_.size(): during a shared phase the
  // vector's size field may be mid-update by a concurrent grower, while
  // the bump pointer is an atomic snapshot bounding every published index.
  size_t end = arenaEnd();
  if (visitStamp_.size() < end) visitStamp_.resize(end, 0);
  if (++visitEpoch_ == 0) {
    std::fill(visitStamp_.begin(), visitStamp_.end(), 0u);
    visitEpoch_ = 1;
  }
  return visitEpoch_;
}

size_t BddManager::countFrom(std::vector<uint32_t>& stack,
                             uint32_t epoch) const {
  size_t count = 0;
  while (!stack.empty()) {
    uint32_t n = stack.back();
    stack.pop_back();
    if (visitStamp_[n] == epoch) continue;
    visitStamp_[n] = epoch;
    ++count;
    if (!isTerm(n)) {
      stack.push_back(eIdx(nodes_[n].lo));
      stack.push_back(eIdx(nodes_[n].hi));
    }
  }
  return count;
}

size_t BddManager::nodeCount(const Bdd& f) const {
  // visitStamp_/visitEpoch_ are single-walker scratch; serialize counters.
  std::lock_guard<std::mutex> lk(visitMu_);
  uint32_t epoch = beginVisit();
  std::vector<uint32_t> stack{eIdx(f.index())};
  return countFrom(stack, epoch);
}

size_t BddManager::sharedNodeCount(std::span<const Bdd> roots) const {
  std::lock_guard<std::mutex> lk(visitMu_);
  uint32_t epoch = beginVisit();
  std::vector<uint32_t> stack;
  for (const Bdd& r : roots)
    if (!r.isNull()) stack.push_back(eIdx(r.index()));
  return countFrom(stack, epoch);
}

}  // namespace hsis
