// Node arena, unique table, computed cache, reference counting, and
// mark-and-sweep garbage collection with a cache keep-alive sweep.
//
// The shared-phase machinery (thread contexts, CAS insertion, the
// stop-the-world protocol) lives in bdd_concurrent.cpp; this file is the
// serial core plus the structural passes (GC, census) that both modes share.
#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/control.hpp"
#include "obs/log.hpp"

namespace hsis {

namespace {

/// Unique-table bucket of a node triple: one multiply per field, top bits.
inline uint32_t uniqueBucketOf(uint32_t var, uint32_t lo, uint32_t hi,
                               uint32_t mask) {
  uint64_t h = static_cast<uint64_t>(var) * 0x9e3779b97f4a7c15ull ^
               static_cast<uint64_t>(lo) * 0xff51afd7ed558ccdull ^
               static_cast<uint64_t>(hi) * 0xc4ceb9fe1a85ec53ull;
  return static_cast<uint32_t>(h >> 32) & mask;
}

}  // namespace

// ---------------------------------------------------------------- manager

BddManager::BddManager(uint32_t numVars)
    : obsCacheLookups_(obs::counter("bdd.cache.lookups")),
      obsCacheHits_(obs::counter("bdd.cache.hits")),
      obsCacheAged_(obs::counter("bdd.cache.aged")),
      obsNodesCreated_(obs::counter("bdd.nodes.created")),
      obsGcRuns_(obs::counter("bdd.gc.runs")),
      obsGcReclaimed_(obs::counter("bdd.gc.reclaimed")),
      obsReorderings_(obs::counter("bdd.reorder.count")),
      obsCacheKept_(obs::counter("bdd.cache.gc_kept")),
      obsCacheDropped_(obs::counter("bdd.cache.gc_dropped")),
      obsUniqueSize_(obs::gauge("bdd.unique.size")),
      obsUniquePeak_(obs::gauge("bdd.unique.peak")),
      obsUniqueBuckets_(obs::gauge("bdd.unique.buckets")) {
  nodes_.reserve(1 << 12);
  // Slot 0 is reserved (no edge ever points at it; keeps arena loops and
  // level arithmetic starting at 2 as before complement edges). Slot 1 is
  // the single ONE terminal; FALSE is its complemented edge. Neither is in
  // the unique table; both carry permanent references.
  nodes_.push_back({kTermLevel, 0, 0, kNil, kRefSaturated});
  nodes_.push_back({kTermLevel, 1, 1, kNil, kRefSaturated});

  uniqueTable_.assign(1 << 12, kNil);
  uniqueMask_ = static_cast<uint32_t>(uniqueTable_.size() - 1);
  obsUniqueBuckets_.set(static_cast<int64_t>(uniqueTable_.size()));

  mainCtx_.cache.assign(size_t{1} << 13, CacheSet{});  // 2^14 entries
  mainCtx_.cacheMask = static_cast<uint32_t>(mainCtx_.cache.size() - 1);

  for (uint32_t i = 0; i < numVars; ++i) newVar();
}

BddManager::~BddManager() {
  assert(!sharedMode_ && "destroying a BddManager while in a shared phase");
  flushObs(mainCtx_);
  for (auto& c : workerCtxs_) flushObs(*c);
}

BddVar BddManager::newVar() {
  assert(!sharedMode_ && "newVar during a shared phase is not supported");
  BddVar v = static_cast<BddVar>(perm_.size());
  perm_.push_back(v);
  invPerm_.push_back(v);
  return v;
}

BddVar BddManager::newVarAtLevel(uint32_t lvl) {
  BddVar v = newVar();
  if (lvl >= perm_.size()) return v;
  // Shift levels [lvl, end) down by one and place v at lvl.
  for (uint32_t l = static_cast<uint32_t>(invPerm_.size()) - 1; l > lvl; --l) {
    invPerm_[l] = invPerm_[l - 1];
    perm_[invPerm_[l]] = l;
  }
  invPerm_[lvl] = v;
  perm_[v] = lvl;
  return v;
}

Bdd BddManager::bddVar(BddVar v) {
  assert(v < perm_.size());
  ScopedOp guard(this);
  return makeHandle(mkNode(v, kZeroEdge, kOneEdge));
}

Bdd BddManager::bddLiteral(BddVar v, bool positive) {
  ScopedOp guard(this);
  return makeHandle(positive ? mkNode(v, kZeroEdge, kOneEdge)
                             : mkNode(v, kOneEdge, kZeroEdge));
}

Bdd BddManager::bddOne() { return makeHandle(kOneEdge); }
Bdd BddManager::bddZero() { return makeHandle(kZeroEdge); }

// ------------------------------------------------------------- node layer

uint32_t BddManager::mkNode(BddVar var, uint32_t lo, uint32_t hi) {
  if (lo == hi) return lo;
  // Canonical form: the low edge is never complemented. A node whose low
  // edge would be complemented is stored as its own negation, and the
  // complement moves to the returned edge:
  //   node(v, !l, h) == !node(v, l, !h)
  uint32_t outSign = eSign(lo);
  if (outSign != 0) {
    lo = eNot(lo);
    hi = eNot(hi);
  }
  if (sharedMode_) return mkNodeShared(ctx(), var, lo, hi) | outSign;
  uint32_t bucket = uniqueBucketOf(var, lo, hi, uniqueMask_);
  for (uint32_t n = uniqueTable_[bucket]; n != kNil; n = nodes_[n].next) {
    const Node& nd = nodes_[n];
    if (nd.var == var && nd.lo == lo && nd.hi == hi) return n | outSign;
  }
  uint32_t idx;
  if (!freeList_.empty()) {
    idx = freeList_.back();
    freeList_.pop_back();
    nodes_[idx] = Node{var, lo, hi, kNil, 0};
  } else {
    idx = static_cast<uint32_t>(nodes_.size());
    if ((idx & kComplBit) != 0)
      throw std::length_error("BddManager: node arena full");
    nodes_.push_back(Node{var, lo, hi, kNil, 0});
  }
  nodes_[idx].next = uniqueTable_[bucket];
  uniqueTable_[bucket] = idx;
  ++uniqueCount_;
  ++mainCtx_.created;
  if (uniqueCount_ > stats_.peakLiveNodes) stats_.peakLiveNodes = uniqueCount_;
  if (uniqueCount_ > uniqueTable_.size()) growUnique();
  // Keep the operation cache proportional to the node count, or deep
  // recursions degenerate into exponential recomputation.
  if (uniqueCount_ > mainCtx_.cache.size() * 2) growCache(mainCtx_);
  return idx | outSign;
}

void BddManager::growCache(ThreadCtx& tc) {
  // The cache is private to `tc`, so growth needs no coordination even in a
  // shared phase — only the owner's outstanding probes are invalidated, and
  // they rehash via the generation check.
  std::vector<CacheSet> old = std::move(tc.cache);
  tc.cache.assign(old.size() * 2, CacheSet{});
  tc.cacheMask = static_cast<uint32_t>(tc.cache.size() - 1);
  ++tc.cacheGen;  // slot numbering changed: outstanding probes must rehash
  for (const CacheSet& s : old) {
    for (const CacheEntry& e : s.way) {
      if (e.k1 == ~0ull && e.k2 == ~0ull) continue;
      // Re-inserted entries land in way 0 of their new set; collisions
      // during the rebuild fall back to the normal 2-way replacement.
      uint32_t slot = cacheSlotOf(e.k1, e.k2 & ~kCacheAgeBit, tc.cacheMask);
      CacheEntry* set = tc.cache[slot].way;
      if (set[0].k1 == ~0ull && set[0].k2 == ~0ull) {
        set[0] = e;
      } else {
        set[1] = e;
      }
    }
  }
}

void BddManager::uniqueInsert(uint32_t n) {
  const Node& nd = nodes_[n];
  uint32_t bucket = uniqueBucketOf(nd.var, nd.lo, nd.hi, uniqueMask_);
  nodes_[n].next = uniqueTable_[bucket];
  uniqueTable_[bucket] = n;
  ++uniqueCount_;
  // Re-inserts during level swaps grow the table too; without this the
  // peak could read below the live count right after a reordering.
  if (uniqueCount_ > stats_.peakLiveNodes) stats_.peakLiveNodes = uniqueCount_;
}

void BddManager::uniqueRemove(uint32_t n) {
  const Node& nd = nodes_[n];
  uint32_t bucket = uniqueBucketOf(nd.var, nd.lo, nd.hi, uniqueMask_);
  uint32_t* link = &uniqueTable_[bucket];
  while (*link != kNil) {
    if (*link == n) {
      *link = nodes_[n].next;
      nodes_[n].next = kNil;
      --uniqueCount_;
      return;
    }
    link = &nodes_[*link].next;
  }
  assert(false && "uniqueRemove: node not in table");
}

void BddManager::growUnique() {
  // Grow 4x: the table is rebuilt wholesale and rehashing is the dominant
  // cost of a build-up phase, so overshoot rather than rehash per doubling.
  std::vector<uint32_t> old = std::move(uniqueTable_);
  uniqueTable_.assign(old.size() * 4, kNil);
  uniqueMask_ = static_cast<uint32_t>(uniqueTable_.size() - 1);
  obsUniqueBuckets_.set(static_cast<int64_t>(uniqueTable_.size()));
  for (uint32_t head : old) {
    for (uint32_t n = head; n != kNil;) {
      uint32_t next = nodes_[n].next;
      const Node& nd = nodes_[n];
      uint32_t bucket = uniqueBucketOf(nd.var, nd.lo, nd.hi, uniqueMask_);
      nodes_[n].next = uniqueTable_[bucket];
      uniqueTable_[bucket] = n;
      n = next;
    }
  }
}

void BddManager::maybeGcOrSift() {
  ThreadCtx& tc = ctx();
  if (tc.opDepth > 0) return;
  // Cooperative cancellation point: we are at a public-op boundary with no
  // raw node indices live on any recursion stack, so unwinding here cannot
  // corrupt manager state.
  obs::checkAbort();
  if (!sharedMode_) {
    // Census rendezvous with the sampling profiler: it raised a flag from
    // its own thread; we answer here, where nothing is mid-mutation, so the
    // sampler never reads manager structures concurrently. One relaxed load
    // when no profiler is running.
    if (obs::prof::censusRequested()) obs::prof::publishCensus(census());
    if (nodes_.size() - freeList_.size() > gcThreshold_) {
      size_t freed = gcImpl();
      size_t live = nodes_.size() - freeList_.size();
      if (freed < live / 3) {
        gcThreshold_ = live * 2;
        HSIS_LOG_DEBUG("bdd.gc", "sweep reclaimed little, threshold raised",
                       {{"freed", freed},
                        {"live", live},
                        {"threshold", gcThreshold_}});
      } else {
        HSIS_LOG_DEBUG("bdd.gc", "sweep complete",
                       {{"freed", freed}, {"live", live}});
      }
    }
    return;
  }
  // Shared phase: both the census rendezvous and GC are deep stop-the-world
  // events — any one worker at an op boundary can win the election and run
  // them; losers just continue (the winner is doing the work, and a new op
  // entry parks until it finishes). The coordinator itself must skip these
  // triggers or gc() inside sift() would try to elect twice.
  if (tc.stwCoordinator) return;
  if (obs::prof::censusRequested()) {
    stwDeepRun(tc, [&] {
      if (obs::prof::censusRequested()) obs::prof::publishCensus(census());
    });
  }
  if (approxLive() > gcThreshold_) {
    stwDeepRun(tc, [&] {
      size_t live = approxLive();
      if (live <= gcThreshold_) return;  // someone collected before us
      size_t freed = gcImpl();
      live = approxLive();
      if (freed < live / 3) gcThreshold_ = live * 2;
      HSIS_LOG_DEBUG("bdd.gc", "shared sweep complete",
                     {{"freed", freed}, {"live", live}});
    });
  }
}

void BddManager::flushObs(ThreadCtx& tc) {
  // Satellite of the threading work: these adds land on relaxed atomics in
  // the obs registry, so a flush racing another thread's flush (or a reader
  // snapshotting the registry) is race-free by construction.
  obsCacheLookups_.add(tc.cacheLookups - tc.flushedLookups);
  tc.flushedLookups = tc.cacheLookups;
  obsCacheHits_.add(tc.cacheHits - tc.flushedHits);
  tc.flushedHits = tc.cacheHits;
  obsCacheAged_.add(tc.cacheAged - tc.flushedAged);
  tc.flushedAged = tc.cacheAged;
  obsNodesCreated_.add(tc.created - tc.flushedCreated);
  tc.flushedCreated = tc.created;
  if (!sharedMode_) {
    // Structure gauges describe shared state; in a shared phase they are
    // refreshed at stop-the-world points (gc, growth, endShared) instead of
    // on every worker's op exit.
    obsUniqueSize_.set(static_cast<int64_t>(uniqueCount_));
    obsUniquePeak_.updateMax(static_cast<int64_t>(stats_.peakLiveNodes));
  }
}

const BddStats& BddManager::stats() const {
  stats_.liveNodes = sharedMode_ ? approxLive() : uniqueCount_;
  stats_.allocatedNodes = arenaEnd();
  uint64_t lookups = retiredLookups_, hits = retiredHits_;
  {
    std::unique_lock<std::mutex> lock(ctxMu_, std::defer_lock);
    if (sharedMode_) lock.lock();
    lookups += mainCtx_.cacheLookups;
    hits += mainCtx_.cacheHits;
    for (const auto& c : workerCtxs_) {
      lookups += c->cacheLookups;
      hits += c->cacheHits;
    }
  }
  stats_.cacheLookups = lookups;
  stats_.cacheHits = hits;
  return stats_;
}

// ----------------------------------------------------------------- GC core

std::vector<uint8_t> BddManager::markReachable() const {
  // Every node reachable from an externally referenced node survives.
  // Iterative DFS over the arena; child edges strip the complement bit.
  // Free slots (var == kNil) are never roots, and children of live nodes
  // are live, so the walk cannot enter one. In a shared phase the loop
  // covers the resized arena too: virgin slots read var == kNil (their
  // NSDMI default) and are skipped.
  std::vector<uint8_t> marked(nodes_.size(), 0);
  marked[0] = marked[1] = 1;
  std::vector<uint32_t> stack;
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kNil && nodes_[i].ref > 0 && !marked[i]) {
      stack.assign(1, i);
      while (!stack.empty()) {
        uint32_t n = stack.back();
        stack.pop_back();
        if (marked[n]) continue;
        marked[n] = 1;
        uint32_t lo = eIdx(nodes_[n].lo), hi = eIdx(nodes_[n].hi);
        if (!marked[lo]) stack.push_back(lo);
        if (!marked[hi]) stack.push_back(hi);
      }
    }
  }
  return marked;
}

void BddManager::cacheKeepAlive(ThreadCtx& tc,
                                const std::vector<uint8_t>& marked) {
  // Keep-alive sweep: a cached result stays valid as long as every node it
  // mentions survived the collection — operand edges, the result edge, and
  // for ternary ops the third operand. Entries whose nodes all survived are
  // left in place (their slot depends only on the key, which is unchanged);
  // the rest are dropped before their arena slots can be reused.
  size_t kept = 0, dropped = 0;
  // Every index a cache entry can mention is < nodes_.size() == the mask
  // length: entries referencing dead nodes are dropped at the GC that
  // freed them, so no entry outlives the arena coordinates it was keyed on.
  auto alive = [&](uint32_t e) { return marked[eIdx(e)] != 0; };
  for (CacheSet& s : tc.cache)
  for (CacheEntry& e : s.way) {
    if (e.k1 == ~0ull && e.k2 == ~0ull) continue;
    uint32_t a = static_cast<uint32_t>(e.k1 >> 32);
    uint32_t b = static_cast<uint32_t>(e.k1);
    uint32_t c = static_cast<uint32_t>(e.k2);
    Op op = static_cast<Op>(static_cast<uint8_t>(e.k2 >> 32));
    bool ok = alive(a) && alive(e.result);
    // Permute packs a map id (not an edge) in its second field; Leq packs
    // a boolean in the result. Both are always "alive".
    if (op != Op::Permute) ok = ok && alive(b);
    ok = ok && alive(c);
    if (ok) {
      ++kept;
    } else {
      e = CacheEntry{};
      ++dropped;
    }
  }
  obsCacheKept_.add(kept);
  obsCacheDropped_.add(dropped);
}

size_t BddManager::gc() {
  if (!sharedMode_) return gcImpl();
  ThreadCtx& tc = ctx();
  if (tc.stwCoordinator) return gcImpl();  // already quiesced (e.g. sift)
  size_t freed = 0;
  stwDeepRun(tc, [&] { freed = gcImpl(); });
  return freed;
}

size_t BddManager::gcImpl() {
  std::vector<uint8_t> marked = markReachable();

  // Sweep by rebuilding the unique table wholesale: clearing buckets and
  // re-chaining survivors is O(arena), where unlinking each dead node
  // individually would walk its bucket chain again per death.
  std::fill(uniqueTable_.begin(), uniqueTable_.end(), kNil);
  uniqueCount_ = 0;
  size_t freed = 0;
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var == kNil) continue;  // already on the free list
    if (marked[i]) {
      uniqueInsert(i);
    } else {
      nodes_[i].var = kNil;  // sentinel: slot is free (reorder scans rely on it)
      nodes_[i].next = kNil;
      freeList_.push_back(i);
      ++freed;
    }
  }
  if (sharedMode_) {
    // uniqueCount_ was just recounted exactly; the shard deltas it
    // approximated are folded in, so zero them.
    for (uint32_t s = 0; s < kNumShards; ++s)
      shardCounts_[s].n.store(0, std::memory_order_relaxed);
    if (uniqueCount_ > stats_.peakLiveNodes)
      stats_.peakLiveNodes = uniqueCount_;
    obsUniqueSize_.set(static_cast<int64_t>(uniqueCount_));
    obsUniquePeak_.updateMax(static_cast<int64_t>(stats_.peakLiveNodes));
  }
  // The computed cache survives collection minus entries touching freed
  // nodes — fixpoint loops that negate/intersect the same live state sets
  // every iteration keep their hits across GCs. Every attached thread's
  // cache gets the same keep-alive sweep (we are quiesced: serial mode, or
  // under the deep stop-the-world).
  cacheKeepAlive(mainCtx_, marked);
  for (auto& c : workerCtxs_) cacheKeepAlive(*c, marked);
  ++stats_.gcRuns;
  stats_.liveNodes = uniqueCount_;
  stats_.allocatedNodes = nodes_.size();
  obsGcRuns_.add();
  obsGcReclaimed_.add(freed);
  flushObs(ctx());
  return freed;
}

void BddManager::clearCaches() {
  std::unique_lock<std::mutex> lock(ctxMu_, std::defer_lock);
  if (sharedMode_) lock.lock();
  for (auto& s : mainCtx_.cache) s = CacheSet{};
  for (auto& c : workerCtxs_)
    for (auto& s : c->cache) s = CacheSet{};
}

obs::prof::BddCensus BddManager::census() const {
  obs::prof::BddCensus c;
  c.liveNodes = sharedMode_ ? approxLive() : uniqueCount_;
  c.allocatedNodes = nodes_.size() - 2;  // terminal + reserved slot excluded
  c.freeNodes = freeList_.size();
  c.uniqueBuckets = uniqueTable_.size();
  c.threadCaches = 1 + workerCtxs_.size();
  c.uniqueShards = sharedMode_ ? kNumShards : 1;
  uint64_t lookups = retiredLookups_, hits = retiredHits_;
  auto fold = [&](const ThreadCtx& tc) {
    c.cacheEntries += tc.cache.size() * 2;
    for (const CacheSet& s : tc.cache)
      for (const CacheEntry& e : s.way)
        if (e.k1 != ~0ull || e.k2 != ~0ull) ++c.cacheUsed;
    lookups += tc.cacheLookups;
    hits += tc.cacheHits;
  };
  fold(mainCtx_);
  for (const auto& tc : workerCtxs_) fold(*tc);
  c.cacheLookups = lookups;
  c.cacheHits = hits;
  c.gcRuns = stats_.gcRuns;
  c.reorderings = stats_.reorderings;
  c.peakLiveNodes = stats_.peakLiveNodes;

  c.levelNodes.assign(perm_.size(), 0);
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kNil) ++c.levelNodes[perm_[nodes_[i].var]];
  }

  // Dead = in the unique table but unreachable from any externally
  // referenced node: the same mark pass gc() runs, so deadNodes is exactly
  // what the next sweep would reclaim (and 0 right after one).
  std::vector<uint8_t> marked = markReachable();
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kNil && !marked[i]) ++c.deadNodes;
  }
  return c;
}

}  // namespace hsis
