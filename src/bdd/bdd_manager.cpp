// Node arena, unique table, computed cache, reference counting, and
// mark-and-sweep garbage collection with a cache keep-alive sweep.
#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/control.hpp"
#include "obs/log.hpp"

namespace hsis {

namespace {

/// Unique-table bucket of a node triple: one multiply per field, top bits.
inline uint32_t uniqueBucketOf(uint32_t var, uint32_t lo, uint32_t hi,
                               uint32_t mask) {
  uint64_t h = static_cast<uint64_t>(var) * 0x9e3779b97f4a7c15ull ^
               static_cast<uint64_t>(lo) * 0xff51afd7ed558ccdull ^
               static_cast<uint64_t>(hi) * 0xc4ceb9fe1a85ec53ull;
  return static_cast<uint32_t>(h >> 32) & mask;
}

}  // namespace

// ---------------------------------------------------------------- manager

BddManager::BddManager(uint32_t numVars)
    : obsCacheLookups_(obs::counter("bdd.cache.lookups")),
      obsCacheHits_(obs::counter("bdd.cache.hits")),
      obsNodesCreated_(obs::counter("bdd.nodes.created")),
      obsGcRuns_(obs::counter("bdd.gc.runs")),
      obsGcReclaimed_(obs::counter("bdd.gc.reclaimed")),
      obsReorderings_(obs::counter("bdd.reorder.count")),
      obsCacheKept_(obs::counter("bdd.cache.gc_kept")),
      obsCacheDropped_(obs::counter("bdd.cache.gc_dropped")),
      obsUniqueSize_(obs::gauge("bdd.unique.size")),
      obsUniquePeak_(obs::gauge("bdd.unique.peak")),
      obsUniqueBuckets_(obs::gauge("bdd.unique.buckets")) {
  nodes_.reserve(1 << 12);
  // Slot 0 is reserved (no edge ever points at it; keeps arena loops and
  // level arithmetic starting at 2 as before complement edges). Slot 1 is
  // the single ONE terminal; FALSE is its complemented edge. Neither is in
  // the unique table; both carry permanent references.
  nodes_.push_back({kTermLevel, 0, 0, kNil, kRefSaturated});
  nodes_.push_back({kTermLevel, 1, 1, kNil, kRefSaturated});

  uniqueTable_.assign(1 << 12, kNil);
  uniqueMask_ = static_cast<uint32_t>(uniqueTable_.size() - 1);
  obsUniqueBuckets_.set(static_cast<int64_t>(uniqueTable_.size()));
  cache_.assign(1 << 14, CacheEntry{});
  cacheMask_ = static_cast<uint32_t>(cache_.size() - 1);

  for (uint32_t i = 0; i < numVars; ++i) newVar();
}

BddManager::~BddManager() { flushObs(); }

BddVar BddManager::newVar() {
  BddVar v = static_cast<BddVar>(perm_.size());
  perm_.push_back(v);
  invPerm_.push_back(v);
  return v;
}

BddVar BddManager::newVarAtLevel(uint32_t lvl) {
  BddVar v = newVar();
  if (lvl >= perm_.size()) return v;
  // Shift levels [lvl, end) down by one and place v at lvl.
  for (uint32_t l = static_cast<uint32_t>(invPerm_.size()) - 1; l > lvl; --l) {
    invPerm_[l] = invPerm_[l - 1];
    perm_[invPerm_[l]] = l;
  }
  invPerm_[lvl] = v;
  perm_[v] = lvl;
  return v;
}

Bdd BddManager::bddVar(BddVar v) {
  assert(v < perm_.size());
  ScopedOp guard(this);
  return makeHandle(mkNode(v, kZeroEdge, kOneEdge));
}

Bdd BddManager::bddLiteral(BddVar v, bool positive) {
  ScopedOp guard(this);
  return makeHandle(positive ? mkNode(v, kZeroEdge, kOneEdge)
                             : mkNode(v, kOneEdge, kZeroEdge));
}

Bdd BddManager::bddOne() { return makeHandle(kOneEdge); }
Bdd BddManager::bddZero() { return makeHandle(kZeroEdge); }

// ------------------------------------------------------------- node layer

uint32_t BddManager::mkNode(BddVar var, uint32_t lo, uint32_t hi) {
  if (lo == hi) return lo;
  // Canonical form: the low edge is never complemented. A node whose low
  // edge would be complemented is stored as its own negation, and the
  // complement moves to the returned edge:
  //   node(v, !l, h) == !node(v, l, !h)
  uint32_t outSign = eSign(lo);
  if (outSign != 0) {
    lo = eNot(lo);
    hi = eNot(hi);
  }
  uint32_t bucket = uniqueBucketOf(var, lo, hi, uniqueMask_);
  for (uint32_t n = uniqueTable_[bucket]; n != kNil; n = nodes_[n].next) {
    const Node& nd = nodes_[n];
    if (nd.var == var && nd.lo == lo && nd.hi == hi) return n | outSign;
  }
  uint32_t idx;
  if (!freeList_.empty()) {
    idx = freeList_.back();
    freeList_.pop_back();
    nodes_[idx] = Node{var, lo, hi, kNil, 0};
  } else {
    idx = static_cast<uint32_t>(nodes_.size());
    if ((idx & kComplBit) != 0)
      throw std::length_error("BddManager: node arena full");
    nodes_.push_back(Node{var, lo, hi, kNil, 0});
  }
  nodes_[idx].next = uniqueTable_[bucket];
  uniqueTable_[bucket] = idx;
  ++uniqueCount_;
  ++createdTotal_;
  if (uniqueCount_ > stats_.peakLiveNodes) stats_.peakLiveNodes = uniqueCount_;
  if (uniqueCount_ > uniqueTable_.size()) growUnique();
  // Keep the operation cache proportional to the node count, or deep
  // recursions degenerate into exponential recomputation.
  if (uniqueCount_ > cache_.size()) growCache();
  return idx | outSign;
}

void BddManager::growCache() {
  std::vector<CacheEntry> old = std::move(cache_);
  cache_.assign(old.size() * 2, CacheEntry{});
  cacheMask_ = static_cast<uint32_t>(cache_.size() - 1);
  ++cacheGen_;  // slot numbering changed: outstanding probes must rehash
  for (const CacheEntry& e : old) {
    if (e.k1 == ~0ull && e.k2 == ~0ull) continue;
    cache_[cacheSlotOf(e.k1, e.k2)] = e;
  }
}

void BddManager::uniqueInsert(uint32_t n) {
  const Node& nd = nodes_[n];
  uint32_t bucket = uniqueBucketOf(nd.var, nd.lo, nd.hi, uniqueMask_);
  nodes_[n].next = uniqueTable_[bucket];
  uniqueTable_[bucket] = n;
  ++uniqueCount_;
  // Re-inserts during level swaps grow the table too; without this the
  // peak could read below the live count right after a reordering.
  if (uniqueCount_ > stats_.peakLiveNodes) stats_.peakLiveNodes = uniqueCount_;
}

void BddManager::uniqueRemove(uint32_t n) {
  const Node& nd = nodes_[n];
  uint32_t bucket = uniqueBucketOf(nd.var, nd.lo, nd.hi, uniqueMask_);
  uint32_t* link = &uniqueTable_[bucket];
  while (*link != kNil) {
    if (*link == n) {
      *link = nodes_[n].next;
      nodes_[n].next = kNil;
      --uniqueCount_;
      return;
    }
    link = &nodes_[*link].next;
  }
  assert(false && "uniqueRemove: node not in table");
}

void BddManager::growUnique() {
  // Grow 4x: the table is rebuilt wholesale and rehashing is the dominant
  // cost of a build-up phase, so overshoot rather than rehash per doubling.
  std::vector<uint32_t> old = std::move(uniqueTable_);
  uniqueTable_.assign(old.size() * 4, kNil);
  uniqueMask_ = static_cast<uint32_t>(uniqueTable_.size() - 1);
  obsUniqueBuckets_.set(static_cast<int64_t>(uniqueTable_.size()));
  for (uint32_t head : old) {
    for (uint32_t n = head; n != kNil;) {
      uint32_t next = nodes_[n].next;
      const Node& nd = nodes_[n];
      uint32_t bucket = uniqueBucketOf(nd.var, nd.lo, nd.hi, uniqueMask_);
      nodes_[n].next = uniqueTable_[bucket];
      uniqueTable_[bucket] = n;
      n = next;
    }
  }
}

void BddManager::maybeGcOrSift() {
  if (opDepth_ > 0) return;
  // Cooperative cancellation point: we are at a public-op boundary with no
  // raw node indices live on any recursion stack, so unwinding here cannot
  // corrupt manager state.
  obs::checkAbort();
  // Census rendezvous with the sampling profiler: it raised a flag from
  // its own thread; we answer here, where nothing is mid-mutation, so the
  // sampler never reads manager structures concurrently. One relaxed load
  // when no profiler is running.
  if (obs::prof::censusRequested()) obs::prof::publishCensus(census());
  if (nodes_.size() - freeList_.size() > gcThreshold_) {
    size_t freed = gc();
    size_t live = nodes_.size() - freeList_.size();
    if (freed < live / 3) {
      gcThreshold_ = live * 2;
      HSIS_LOG_DEBUG("bdd.gc", "sweep reclaimed little, threshold raised",
                     {{"freed", freed},
                      {"live", live},
                      {"threshold", gcThreshold_}});
    } else {
      HSIS_LOG_DEBUG("bdd.gc", "sweep complete",
                     {{"freed", freed}, {"live", live}});
    }
  }
}

void BddManager::flushObs() {
  obsCacheLookups_.add(stats_.cacheLookups - flushedLookups_);
  flushedLookups_ = stats_.cacheLookups;
  obsCacheHits_.add(stats_.cacheHits - flushedHits_);
  flushedHits_ = stats_.cacheHits;
  obsNodesCreated_.add(createdTotal_ - flushedCreated_);
  flushedCreated_ = createdTotal_;
  obsUniqueSize_.set(static_cast<int64_t>(uniqueCount_));
  obsUniquePeak_.updateMax(static_cast<int64_t>(stats_.peakLiveNodes));
}

// ----------------------------------------------------------------- GC core

std::vector<uint8_t> BddManager::markReachable() const {
  // Every node reachable from an externally referenced node survives.
  // Iterative DFS over the arena; child edges strip the complement bit.
  // Free slots (var == kNil) are never roots, and children of live nodes
  // are live, so the walk cannot enter one.
  std::vector<uint8_t> marked(nodes_.size(), 0);
  marked[0] = marked[1] = 1;
  std::vector<uint32_t> stack;
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kNil && nodes_[i].ref > 0 && !marked[i]) {
      stack.assign(1, i);
      while (!stack.empty()) {
        uint32_t n = stack.back();
        stack.pop_back();
        if (marked[n]) continue;
        marked[n] = 1;
        uint32_t lo = eIdx(nodes_[n].lo), hi = eIdx(nodes_[n].hi);
        if (!marked[lo]) stack.push_back(lo);
        if (!marked[hi]) stack.push_back(hi);
      }
    }
  }
  return marked;
}

void BddManager::cacheKeepAlive(const std::vector<uint8_t>& marked) {
  // Keep-alive sweep: a cached result stays valid as long as every node it
  // mentions survived the collection — operand edges, the result edge, and
  // for ternary ops the third operand. Entries whose nodes all survived are
  // left in place (their slot depends only on the key, which is unchanged);
  // the rest are dropped before their arena slots can be reused.
  size_t kept = 0, dropped = 0;
  // Every index a cache entry can mention is < nodes_.size() == the mask
  // length: entries referencing dead nodes are dropped at the GC that
  // freed them, so no entry outlives the arena coordinates it was keyed on.
  auto alive = [&](uint32_t e) { return marked[eIdx(e)] != 0; };
  for (CacheEntry& e : cache_) {
    if (e.k1 == ~0ull && e.k2 == ~0ull) continue;
    uint32_t a = static_cast<uint32_t>(e.k1 >> 32);
    uint32_t b = static_cast<uint32_t>(e.k1);
    uint32_t c = static_cast<uint32_t>(e.k2);
    Op op = static_cast<Op>(static_cast<uint8_t>(e.k2 >> 32));
    bool ok = alive(a) && alive(e.result);
    // Permute packs a map id (not an edge) in its second field; Leq packs
    // a boolean in the result. Both are always "alive".
    if (op != Op::Permute) ok = ok && alive(b);
    ok = ok && alive(c);
    if (ok) {
      ++kept;
    } else {
      e = CacheEntry{};
      ++dropped;
    }
  }
  obsCacheKept_.add(kept);
  obsCacheDropped_.add(dropped);
}

size_t BddManager::gc() {
  std::vector<uint8_t> marked = markReachable();

  // Sweep by rebuilding the unique table wholesale: clearing buckets and
  // re-chaining survivors is O(arena), where unlinking each dead node
  // individually would walk its bucket chain again per death.
  std::fill(uniqueTable_.begin(), uniqueTable_.end(), kNil);
  uniqueCount_ = 0;
  size_t freed = 0;
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var == kNil) continue;  // already on the free list
    if (marked[i]) {
      uniqueInsert(i);
    } else {
      nodes_[i].var = kNil;  // sentinel: slot is free (reorder scans rely on it)
      nodes_[i].next = kNil;
      freeList_.push_back(i);
      ++freed;
    }
  }
  // The computed cache survives collection minus entries touching freed
  // nodes — fixpoint loops that negate/intersect the same live state sets
  // every iteration keep their hits across GCs.
  cacheKeepAlive(marked);
  ++stats_.gcRuns;
  stats_.liveNodes = uniqueCount_;
  stats_.allocatedNodes = nodes_.size();
  obsGcRuns_.add();
  obsGcReclaimed_.add(freed);
  flushObs();
  return freed;
}

void BddManager::clearCaches() {
  for (auto& e : cache_) e = CacheEntry{};
}

obs::prof::BddCensus BddManager::census() const {
  obs::prof::BddCensus c;
  c.liveNodes = uniqueCount_;
  c.allocatedNodes = nodes_.size() - 2;  // terminal + reserved slot excluded
  c.freeNodes = freeList_.size();
  c.uniqueBuckets = uniqueTable_.size();
  c.cacheEntries = cache_.size();
  for (const CacheEntry& e : cache_) {
    if (e.k1 != ~0ull || e.k2 != ~0ull) ++c.cacheUsed;
  }
  c.cacheLookups = stats_.cacheLookups;
  c.cacheHits = stats_.cacheHits;
  c.gcRuns = stats_.gcRuns;
  c.reorderings = stats_.reorderings;
  c.peakLiveNodes = stats_.peakLiveNodes;

  c.levelNodes.assign(perm_.size(), 0);
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kNil) ++c.levelNodes[perm_[nodes_[i].var]];
  }

  // Dead = in the unique table but unreachable from any externally
  // referenced node: the same mark pass gc() runs, so deadNodes is exactly
  // what the next sweep would reclaim (and 0 right after one).
  std::vector<uint8_t> marked = markReachable();
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kNil && !marked[i]) ++c.deadNodes;
  }
  return c;
}

}  // namespace hsis
